// Fig. 14 — one federated complex service on a 16-node service overlay
// (simulated wide-area substrate): the constructed topology, the
// end-to-end delay of the live session, and the last-hop throughput.
// The paper measured ~934.5 ms end-to-end delay and ~69374 B/s last-hop
// throughput for its 16-node PlanetLab deployment.
#include "bench_util.h"
#include "federation/scenario.h"

namespace {

using namespace iov;               // NOLINT
using namespace iov::bench;       // NOLINT
using namespace iov::federation;  // NOLINT

}  // namespace

int main() {
  print_header(
      "Fig 14: a federated complex service on 16 nodes (simulated "
      "substrate, sFlow, DAG requirement)",
      "a live service session across the selected instances; paper "
      "measured ~934.5 ms end-to-end delay, last-hop ~69.4 KB/s");

  FederationScenarioConfig config;
  config.strategy = FederationStrategy::kSFlow;
  config.nodes = 16;
  config.universe_types = 6;
  config.seed = 14;
  config.requests = 1;
  config.requirement_length = 6;
  config.allow_branches = true;
  config.tail = seconds(30.0);
  const auto result = run_federation_scenario(config);

  if (result.requests.empty() || !result.requests[0].ok) {
    std::printf("federation did not complete\n");
    return 1;
  }
  const auto& r = result.requests[0];

  std::printf("\n-- constructed complex service --\n");
  print_row({"service type", "instance"}, 14);
  for (const auto& [type, id] : r.mapping) {
    print_row({strf("%u", type), id.to_string()}, 14);
  }
  std::printf("\ndigraph federated {\n");
  // Edges follow the requirement DAG over selected instances; the
  // mapping is a function, so reconstruct edges from the chain of types.
  const auto types = r.mapping;
  for (auto it = types.begin(); it != types.end(); ++it) {
    auto next = std::next(it);
    if (next != types.end()) {
      std::printf("  \"%u@%s\" -> \"%u@%s\";\n", it->first,
                  it->second.to_string().c_str(), next->first,
                  next->second.to_string().c_str());
    }
  }
  std::printf("}\n");

  std::printf("\n-- session measurements --\n");
  print_row({"metric", "measured", "paper"}, 24);
  print_row({"end-to-end delay (ms)", strf("%.1f", r.mean_delay_ms),
             "934.5"},
            24);
  print_row({"last-hop throughput (B/s)", strf("%.0f", r.goodput), "69374"},
            24);
  print_row({"selected instances", strf("%zu", r.hops), "9"}, 24);
  std::printf(
      "\nnote: absolute delay depends on the drawn latencies; the shape is "
      "a sub-second multi-hop delay and a last-hop rate bounded by the "
      "slowest selected last mile.\n");
  return 0;
}
