// Fig. 9 + Table 3 — the five-node tree-construction comparison (§3.3):
// source S (200 KB/s) and receivers joining in the order D, A, C, B with
// last-mile bandwidths D=100, A=500, C=200, B=100 KB/s, under the
// all-unicast, randomized, and node-stress-aware algorithms.
//
// Reported, per algorithm: per-receiver end-to-end throughput (Fig 9),
// node degree and node stress (Table 3), and the resulting tree.
#include <map>

#include "bench_util.h"
#include "trees/scenario.h"

namespace {

using namespace iov;         // NOLINT
using namespace iov::bench;  // NOLINT
using namespace iov::trees;  // NOLINT

TreeExperimentResult run(TreeStrategy strategy) {
  TreeExperimentConfig config;
  config.strategy = strategy;
  config.seed = 4;
  config.source_bandwidth = 200e3;
  // Join order D, A, C, B (paper Fig 9), with the paper's bandwidths.
  config.receiver_bandwidth = {100e3, 500e3, 200e3, 100e3};
  config.join_spacing = seconds(2.0);
  config.settle = seconds(3.0);
  config.measure = seconds(15.0);
  return run_tree_experiment(config);
}

}  // namespace

int main() {
  print_header(
      "Fig 9 / Table 3: tree construction on five nodes (simulated "
      "substrate; S=200, joins D=100, A=500, C=200, B=100 KB/s)",
      "unicast: every receiver ~50 KB/s, S stress 2.0; randomized: "
      "uneven, some ~50 some ~100; ns-aware: ~100 KB/s everywhere, "
      "S stress 1.0 and load pushed to high-bandwidth A");

  static const char* kNames[] = {"S", "D", "A", "C", "B"};
  std::map<TreeStrategy, TreeExperimentResult> results;
  for (const auto strategy :
       {TreeStrategy::kAllUnicast, TreeStrategy::kRandomized,
        TreeStrategy::kNsAware}) {
    results.emplace(strategy, run(strategy));
  }

  std::printf("\n-- Fig 9: per-receiver end-to-end throughput (KB/s) --\n");
  print_row({"node", "last-mile", "unicast", "random", "ns-aware"}, 12);
  for (std::size_t i = 1; i < 5; ++i) {
    std::vector<std::string> row{
        kNames[i],
        kb(results.begin()->second.nodes[i].last_mile)};
    for (const auto strategy :
         {TreeStrategy::kAllUnicast, TreeStrategy::kRandomized,
          TreeStrategy::kNsAware}) {
      row.push_back(kb(results.at(strategy).nodes[i].goodput));
    }
    print_row(row, 12);
  }

  std::printf("\n-- Table 3: node degree --\n");
  print_row({"node", "unicast", "random", "ns-aware"}, 12);
  for (std::size_t i = 0; i < 5; ++i) {
    std::vector<std::string> row{kNames[i]};
    for (const auto strategy :
         {TreeStrategy::kAllUnicast, TreeStrategy::kRandomized,
          TreeStrategy::kNsAware}) {
      row.push_back(strf("%zu", results.at(strategy).nodes[i].degree));
    }
    print_row(row, 12);
  }

  std::printf("\n-- Table 3: node stress (1/100 KB/s) --\n");
  print_row({"node", "unicast", "random", "ns-aware"}, 12);
  for (std::size_t i = 0; i < 5; ++i) {
    std::vector<std::string> row{kNames[i]};
    for (const auto strategy :
         {TreeStrategy::kAllUnicast, TreeStrategy::kRandomized,
          TreeStrategy::kNsAware}) {
      row.push_back(strf("%.2f", results.at(strategy).nodes[i].stress));
    }
    print_row(row, 12);
  }

  std::printf("\n-- ns-aware tree (Fig 9(g) analogue, graphviz) --\n%s",
              results.at(TreeStrategy::kNsAware).dot.c_str());
  return 0;
}
