// Fig. 6 — correctness of the engine, verified with a seven-node
// topology of real engines over loopback TCP, driven by the observer.
//
//        A            A -> B, A -> C
//       / \           B -> D, B -> F
//      B   C          C -> D, C -> G
//      |\ /|          D -> E
//      | D |          E -> F, E -> G
//      |/ \|
//      F<-E->G   (F also fed by B, G also fed by C)
//
// Four phases, exactly the paper's walkthrough:
//  (a) A capped at 400 KB/s per-node total, buffers of 5 messages:
//      links out of A carry ~200 each, DE/EF/EG ~400;
//  (b) D's uplink set to 30 KB/s at runtime: back-pressure drags every
//      link except EF/EG to ~15, DE/EF/EG to ~30;
//  (c) B terminated by the observer: its links close, CD converges to 30,
//      the rest are undisturbed;
//  (d) G terminated: F still receives via C, D and E;
//  (e) churn: a chaos FaultPlan injects loss on CD and throttles DE
//      through the observer control plane (DESIGN.md §7) — the surviving
//      path keeps flowing and the faults-injected counter records the
//      plan.
#include <map>
#include <memory>
#include <vector>

#include "algorithm/relay.h"
#include "apps/sink.h"
#include "apps/source.h"
#include "bench_util.h"
#include "chaos/fault_plan.h"
#include "chaos/real_driver.h"
#include "chaos/verify.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "obs/metric_names.h"
#include "observer/observer.h"

namespace {

using namespace iov;         // NOLINT
using namespace iov::bench;  // NOLINT
using engine::Engine;
using engine::EngineConfig;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;
constexpr Duration kSettle = seconds(6.0);
constexpr Duration kDrain = seconds(8.0);  // lets kernel backlogs drain
// Phase (b) drains ~230 KB of queued data per path at 15 KB/s.
constexpr Duration kLongDrain = seconds(40.0);

struct Node {
  std::unique_ptr<Engine> engine;
  RelayAlgorithm* relay = nullptr;
};

Node make_node(const NodeId& observer, double node_total = 0.0) {
  auto algorithm = std::make_unique<RelayAlgorithm>();
  Node n;
  n.relay = algorithm.get();
  EngineConfig config;
  config.recv_buffer_msgs = 5;  // the paper's small-buffer setting
  config.send_buffer_msgs = 5;
  config.socket_buffer_bytes = 32 * 1024;  // 2004-era TCP buffering
  config.bandwidth.node_total = node_total;
  config.observer = observer;
  n.engine = std::make_unique<Engine>(config, std::move(algorithm));
  return n;
}

const std::vector<std::pair<char, char>> kLinks = {
    {'A', 'B'}, {'A', 'C'}, {'B', 'D'}, {'B', 'F'}, {'C', 'D'},
    {'C', 'G'}, {'D', 'E'}, {'E', 'F'}, {'E', 'G'}};

// Cumulative bytes sent on each directed link, read at the sender.
std::map<std::string, u64> capture_links(const std::map<char, Node>& nodes) {
  std::map<std::string, u64> out;
  for (const auto& [src, dst] : kLinks) {
    const Node& s = nodes.at(src);
    const std::string name = std::string(1, src) + dst;
    if (!s.engine->running() || !nodes.at(dst).engine->running()) continue;
    for (const auto& link : s.engine->snapshot().links) {
      if (link.peer == nodes.at(dst).engine->self()) {
        out[name] = link.down.total_bytes;
      }
    }
  }
  return out;
}

// Prints each link's average rate over the interval between two captures
// (kernel backlogs make instantaneous rates bursty at low emulated
// bandwidths; the paper reports converged averages).
void print_links(const std::map<std::string, u64>& before,
                 const std::map<std::string, u64>& after, double interval_s) {
  std::vector<std::string> header;
  std::vector<std::string> row;
  for (const auto& [src, dst] : kLinks) {
    const std::string name = std::string(1, src) + dst;
    header.push_back(name + " KB/s");
    if (after.count(name) == 0 || before.count(name) == 0) {
      row.push_back("[closed]");
    } else {
      const double rate =
          static_cast<double>(after.at(name) - before.at(name)) / interval_s;
      row.push_back(kb(rate));
    }
  }
  print_row(header, 10);
  print_row(row, 10);
}

constexpr Duration kMeasure = seconds(10.0);

void run_phase(const std::map<char, Node>& nodes, Duration drain) {
  sleep_for(drain);
  const auto before = capture_links(nodes);
  sleep_for(kMeasure);
  const auto after = capture_links(nodes);
  print_links(before, after, to_seconds(kMeasure));
}

}  // namespace

int main() {
  print_header(
      "Fig 6: engine correctness on the seven-node topology (real engines "
      "over loopback, observer-driven, 5-message buffers)",
      "(a) ~200 on A's subtree links, ~400 on DE/EF/EG; (b) D uplink 30 "
      "KB/s drags all but EF/EG to ~15 via back-pressure; (c) kill B: CD "
      "-> 30, others undisturbed; (d) kill G: F still served");

  observer::Observer obs{observer::ObserverConfig{}};
  if (!obs.start()) return 1;

  std::map<char, Node> nodes;
  nodes.emplace('A', make_node(obs.address(), 400e3));
  for (const char c : {'B', 'C', 'D', 'E', 'F', 'G'}) {
    nodes.emplace(c, make_node(obs.address()));
  }
  nodes.at('A').engine->register_app(
      kApp, std::make_shared<apps::BackToBackSource>(kPayload));
  auto sink_f = std::make_shared<apps::SinkApp>();
  auto sink_g = std::make_shared<apps::SinkApp>();
  nodes.at('F').engine->register_app(kApp, sink_f);
  nodes.at('G').engine->register_app(kApp, sink_g);

  for (auto& [name, node] : nodes) {
    if (!node.engine->start()) return 1;
  }
  const auto wire = [&](char src, char dst) {
    nodes.at(src).relay->add_child(kApp, nodes.at(dst).engine->self());
  };
  wire('A', 'B');
  wire('A', 'C');
  wire('B', 'D');
  wire('B', 'F');
  wire('C', 'D');
  wire('C', 'G');
  wire('D', 'E');
  wire('E', 'F');
  wire('E', 'G');
  nodes.at('F').relay->set_consume(kApp, true);
  nodes.at('G').relay->set_consume(kApp, true);

  nodes.at('A').engine->deploy_source(kApp);

  std::printf("\n(a) A capped at 400 KB/s per-node total\n");
  run_phase(nodes, kSettle);

  std::printf("\n(b) D uplink set to 30 KB/s at runtime (via observer)\n");
  obs.set_bandwidth(nodes.at('D').engine->self(), engine::kBwNodeUp, 30e3);
  run_phase(nodes, kLongDrain);

  std::printf("\n(c) node B terminated by the observer\n");
  obs.terminate_node(nodes.at('B').engine->self());
  run_phase(nodes, kDrain);
  std::printf("F keeps receiving: %s KB/s at its sink\n",
              kb(sink_f->stats(RealClock::instance().now()).rate_bps).c_str());

  std::printf("\n(d) node G terminated by the observer\n");
  obs.terminate_node(nodes.at('G').engine->self());
  run_phase(nodes, kDrain);
  std::printf("F still receives via C, D, E: %s KB/s\n",
              kb(sink_f->stats(RealClock::instance().now()).rate_bps).c_str());

  std::printf("\n(e) churn: chaos plan (loss on CD, slow-link on DE)\n");
  chaos::FaultPlan plan;
  plan.loss(seconds(0.5), "C", "D", 0.15)
      .slow_link(seconds(1.0), "D", "E", 20e3);
  chaos::Binding binding;
  for (const char c : {'C', 'D', 'E'}) {
    binding.emplace(std::string(1, c), nodes.at(c).engine->self());
  }
  chaos::RealChaosDriver driver(obs, plan, binding);
  driver.run();
  std::printf("%s", driver.trace_text().c_str());
  run_phase(nodes, kDrain);
  std::printf(
      "F under churn: %s KB/s; faults injected: %.0f\n",
      kb(sink_f->stats(RealClock::instance().now()).rate_bps).c_str(),
      chaos::counter_value(obs.metrics().snapshot(),
                           obs::names::kChaosFaultsInjectedTotal));

  for (auto& [name, node] : nodes) node.engine->stop();
  for (auto& [name, node] : nodes) node.engine->join();
  obs.stop();
  obs.join();
  return 0;
}
