// Figs. 10-13 — the wide-area (PlanetLab-scale) tree-construction
// experiment on the simulated substrate: 81 nodes, per-node last-mile
// bandwidth uniform in [50, 200] KB/s, source at 100 KB/s, under the
// three algorithms.
//
//  Fig 11(a): end-to-end throughput per receiver (summarized and as a
//             sorted series);
//  Fig 11(b): cumulative distribution of node stress vs the ideal
//             (vertical line at the source-rate stress);
//  Fig 12:    a 10-node ns-aware topology (graphviz);
//  Fig 13:    the 81-node ns-aware topology (graphviz).
#include "bench_util.h"
#include "common/rng.h"
#include "trees/scenario.h"

namespace {

using namespace iov;         // NOLINT
using namespace iov::bench;  // NOLINT
using namespace iov::trees;  // NOLINT

constexpr std::size_t kReceivers = 80;  // 81 nodes including the source

TreeExperimentConfig planetlab_config(TreeStrategy strategy,
                                      std::size_t receivers) {
  TreeExperimentConfig config;
  config.strategy = strategy;
  config.seed = 1904;  // MIDDLEWARE 2004
  config.source_bandwidth = 100e3;
  Rng rng(42);
  for (std::size_t i = 0; i < receivers; ++i) {
    // "per-node available bandwidth ... uniform distribution of 50 to
    // 200 KBps" (§3.3).
    config.receiver_bandwidth.push_back(rng.uniform(50e3, 200e3));
  }
  config.join_spacing = millis(600);
  config.settle = seconds(5.0);
  config.measure = seconds(15.0);
  return config;
}

}  // namespace

int main() {
  print_header(
      "Fig 10-13: tree construction with 81 wide-area nodes (simulated "
      "PlanetLab: last mile U(50,200) KB/s, source 100 KB/s)",
      "ns-aware: stress CDF hugs the ideal and end-to-end throughput far "
      "above unicast/random; unicast concentrates stress at the source");

  std::printf("\n-- Fig 11(a): end-to-end throughput per receiver --\n");
  print_row({"algorithm", "mean KB/s", "min KB/s", "max KB/s", "attached"});
  EmpiricalCdf stress_cdfs[3];
  std::string dot81;
  int idx = 0;
  for (const auto strategy :
       {TreeStrategy::kAllUnicast, TreeStrategy::kRandomized,
        TreeStrategy::kNsAware}) {
    const auto result =
        run_tree_experiment(planetlab_config(strategy, kReceivers));
    RunningStats goodput;
    for (const auto* r : result.receivers()) {
      if (r->in_tree) goodput.add(r->goodput);
      stress_cdfs[idx].add(r->stress);
    }
    stress_cdfs[idx].add(result.source().stress);
    print_row({strategy_name(strategy), kb(goodput.mean()),
               kb(goodput.min()), kb(goodput.max()),
               strf("%.0f%%", result.attach_rate() * 100.0)});
    if (strategy == TreeStrategy::kNsAware) dot81 = result.dot;
    ++idx;
  }

  std::printf(
      "\n-- Fig 11(b): cumulative distribution of node stress "
      "(1/100 KB/s) --\n");
  print_row({"stress <=", "unicast", "random", "ns-aware"}, 12);
  for (const double x : {1.0, 2.0, 3.0, 5.0, 10.0, 20.0, 40.0, 80.0}) {
    print_row({strf("%.0f", x), strf("%.2f", stress_cdfs[0].at(x)),
               strf("%.2f", stress_cdfs[1].at(x)),
               strf("%.2f", stress_cdfs[2].at(x))},
              12);
  }
  std::printf(
      "(the ideal case is a step at the source's stress; ns-aware should "
      "be the closest curve)\n");

  std::printf("\n-- Fig 12: 10-node ns-aware topology --\n");
  const auto small =
      run_tree_experiment(planetlab_config(TreeStrategy::kNsAware, 9));
  std::printf("%s", small.dot.c_str());

  std::printf("\n-- Fig 13: 81-node ns-aware topology --\n%s", dot81.c_str());
  return 0;
}
