// Scale harness for the shared epoll reactor (DESIGN.md §9): N real
// engines in one process, every link a real loopback TCP connection,
// arranged as a fanout-8 dissemination tree (parent of node i is
// (i-1)/8). The root streams a CBR feed; every interior node relays it
// to its children and every leaf consumes it through a SinkApp.
//
// What this measures — the resource budgets the reactor exists to fix:
//   * OS threads: one engine thread per node + the fixed reactor pool,
//     INDEPENDENT of the node×peer count (legacy mode needs two more
//     threads per link per side, ~5x the process total at fanout 8).
//   * open fds: listener + wake eventfd + one socket per link end.
//   * VmRSS per node.
// plus delivery: distinct messages and corruption at the leaf sinks
// (payload pattern check), so a silently-wedged tree cannot pass.
//
// Budgets asserted (exit non-zero on violation):
//   * threads <= nodes + reactor workers + 16 slack — i.e. ZERO
//     per-link threads;
//   * fds <= 4 per node + 2 per link + 64 slack;
//   * every leaf sink saw data, no corruption anywhere.
//
// Flags:
//   --nodes <n>   tree size (default 1000)
//   --secs <s>    measured window after the tree settles (default 5)
//   --out <path>  JSON artifact (default BENCH_scale.json)
//   --smoke       ~15 s CI variant: 200 nodes, short window (the tier-1
//                 gate; the committed BENCH_scale.json comes from a full
//                 1000-node run)
#include <dirent.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "algorithm/relay.h"
#include "apps/sink.h"
#include "apps/source.h"
#include "bench_util.h"
#include "common/clock.h"
#include "engine/engine.h"

namespace {

using namespace iov;         // NOLINT
using namespace iov::bench;  // NOLINT
using engine::Engine;
using engine::EngineConfig;

constexpr u32 kApp = 1;
constexpr std::size_t kFanout = 8;
constexpr std::size_t kPayload = 1024;

std::size_t open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n > 0 ? n - 3 : 0;  // ".", "..", the DIR's own fd
}

std::size_t thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<std::size_t>(std::stoul(line.substr(8)));
    }
  }
  return 0;
}

/// VmRSS in bytes.
std::size_t rss_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return static_cast<std::size_t>(std::stoul(line.substr(6))) * 1024;
    }
  }
  return 0;
}

struct Node {
  std::unique_ptr<Engine> engine;
  RelayAlgorithm* relay = nullptr;
  std::shared_ptr<apps::SinkApp> sink;  // leaves only
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t nodes_n = 1000;
  double secs = 5.0;
  std::string out = "BENCH_scale.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--nodes") == 0 && i + 1 < argc) {
      nodes_n = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--secs") == 0 && i + 1 < argc) {
      secs = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      nodes_n = 200;
      secs = 2.0;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--nodes n] [--secs s] [--out path] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  print_header(
      strf("Reactor scale: %zu real-socket nodes, fanout-%zu tree",
           nodes_n, kFanout)
          .c_str(),
      "total OS threads independent of node x peer count (DESIGN.md 9)");

  RealClock clock;
  const std::size_t fd_base = open_fd_count();
  const std::size_t thread_base = thread_count();
  const std::size_t rss_base = rss_bytes();

  // Per-node queues stay small: 1000 nodes x deep buffers would swamp
  // RSS and hide the per-node fixed cost this bench is budgeting.
  EngineConfig config;
  config.recv_buffer_msgs = 16;
  config.send_buffer_msgs = 16;
  config.default_switch_weight = 8;
  // A 1000-node tree does not need 256 KB of locked socket buffer per
  // link end on loopback; 32 KB keeps kernel memory proportional too.
  config.socket_buffer_bytes = 32 * 1024;
  // No observer: reports would be 1000 streams of control traffic.
  config.report_interval = seconds(3600.0);

  std::vector<Node> nodes;
  nodes.reserve(nodes_n);
  for (std::size_t i = 0; i < nodes_n; ++i) {
    auto algorithm = std::make_unique<RelayAlgorithm>();
    Node n;
    n.relay = algorithm.get();
    n.engine = std::make_unique<Engine>(config, std::move(algorithm));
    const bool leaf = kFanout * i + 1 >= nodes_n;
    if (leaf) {
      n.sink = std::make_shared<apps::SinkApp>(kPayload);
      n.engine->register_app(kApp, n.sink);
    } else if (i == 0) {
      // ~64 KB/s CBR: enough to keep every link active for the whole
      // window without saturating a 1-core CI box at depth 4.
      n.engine->register_app(
          kApp, std::make_shared<apps::CbrSource>(kPayload, 64 * 1024.0));
    }
    if (!n.engine->start()) {
      std::fprintf(stderr, "FAIL: node %zu failed to start\n", i);
      return 1;
    }
    nodes.push_back(std::move(n));
  }

  // Wire the tree: parent relays to child; leaves consume.
  for (std::size_t i = 1; i < nodes_n; ++i) {
    nodes[(i - 1) / kFanout].relay->add_child(kApp,
                                              nodes[i].engine->self());
  }
  for (auto& n : nodes) {
    if (n.sink) n.relay->set_consume(kApp, true);
  }
  nodes[0].engine->deploy_source(kApp);

  // Let the dial wave finish (every link is created by the first
  // message crossing it), then measure a steady window.
  sleep_for(seconds(smoke ? 2.0 : 5.0));
  u64 d0 = 0;
  for (const auto& n : nodes) {
    if (n.sink) d0 += n.sink->stats(clock.now()).distinct;
  }
  const TimePoint t0 = clock.now();
  sleep_for(seconds(secs));
  const double elapsed = to_seconds(clock.now() - t0);

  const std::size_t threads = thread_count() - thread_base;
  const std::size_t fds = open_fd_count() - fd_base;
  const std::size_t rss = rss_bytes() - rss_base;
  std::size_t links = 0;
  u64 delivered = 0;
  u64 corrupt = 0;
  std::size_t leaves = 0;
  std::size_t starved_leaves = 0;
  for (const auto& n : nodes) {
    links += n.engine->snapshot().links.size();
    if (!n.sink) continue;
    ++leaves;
    const auto s = n.sink->stats(clock.now());
    delivered += s.distinct;
    corrupt += s.corrupt;
    if (s.distinct == 0) ++starved_leaves;
  }
  links /= 2;  // every link counted once per side
  const double leaf_rate =
      static_cast<double>(delivered - d0) / elapsed / leaves;

  for (auto& n : nodes) n.engine->stop();
  for (auto& n : nodes) n.engine->join();

  print_row({"nodes", "links", "threads", "fds", "rss-mb", "leaf-msg/s"},
            12);
  print_row({std::to_string(nodes_n), std::to_string(links),
             std::to_string(threads), std::to_string(fds),
             strf("%.1f", rss / 1e6), strf("%.1f", leaf_rate)},
            12);
  std::printf("per node: %.2f threads, %.2f fds, %.1f KB RSS\n",
              static_cast<double>(threads) / nodes_n,
              static_cast<double>(fds) / nodes_n,
              static_cast<double>(rss) / nodes_n / 1024.0);

  std::FILE* f = std::fopen(out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"scale\",\n"
               "  \"nodes\": %zu,\n  \"links\": %zu,\n  \"fanout\": %zu,\n"
               "  \"payload_bytes\": %zu,\n"
               "  \"threads\": %zu,\n  \"threads_per_node\": %.3f,\n"
               "  \"fds\": %zu,\n  \"fds_per_node\": %.3f,\n"
               "  \"rss_bytes\": %zu,\n  \"rss_per_node_kb\": %.1f,\n"
               "  \"leaves\": %zu,\n  \"delivered_distinct\": %llu,\n"
               "  \"leaf_msgs_per_sec\": %.2f,\n  \"corrupt\": %llu\n}\n",
               nodes_n, links, kFanout, kPayload, threads,
               static_cast<double>(threads) / nodes_n, fds,
               static_cast<double>(fds) / nodes_n, rss,
               static_cast<double>(rss) / nodes_n / 1024.0, leaves,
               static_cast<unsigned long long>(delivered), leaf_rate,
               static_cast<unsigned long long>(corrupt));
  std::fclose(f);
  std::printf("wrote %s\n", out.c_str());

  // --- Budgets ---------------------------------------------------------------
  bool fail = false;
  // Zero per-link threads: one engine thread per node, the fixed pool,
  // and slack for the observer-retry machinery. Legacy mode would need
  // +4 threads per tree edge and blow through this immediately.
  const std::size_t thread_budget = nodes_n + 16;
  if (threads > thread_budget) {
    std::fprintf(stderr, "FAIL: %zu threads > budget %zu\n", threads,
                 thread_budget);
    fail = true;
  }
  const std::size_t fd_budget = 4 * nodes_n + 2 * links + 64;
  if (fds > fd_budget) {
    std::fprintf(stderr, "FAIL: %zu fds > budget %zu\n", fds, fd_budget);
    fail = true;
  }
  if (starved_leaves > 0) {
    std::fprintf(stderr, "FAIL: %zu of %zu leaves saw no data\n",
                 starved_leaves, leaves);
    fail = true;
  }
  if (corrupt > 0) {
    std::fprintf(stderr, "FAIL: %llu corrupt payloads\n",
                 static_cast<unsigned long long>(corrupt));
    fail = true;
  }
  return fail ? 1 : 0;
}
