// Fig. 17 — total control-message overhead (sAware vs sFederate) as the
// network size varies from 5 to 40 nodes, over a 10-minute window with
// 50 new service requirements requested per minute. The paper observes
// both grow gradually with network size, with sFederate growing at a
// slower rate than sAware.
#include "bench_util.h"
#include "federation/scenario.h"

namespace {

using namespace iov;               // NOLINT
using namespace iov::bench;       // NOLINT
using namespace iov::federation;  // NOLINT

}  // namespace

int main() {
  print_header(
      "Fig 17: total control overhead vs network size (5-40 nodes, 50 "
      "requirements/min for 10 minutes, simulated substrate)",
      "both message families grow gradually with size; sFederate grows "
      "more slowly than sAware");

  print_row({"nodes", "sAware bytes", "sFederate bytes", "completion"});
  for (const std::size_t n : {5u, 10u, 15u, 20u, 25u, 30u, 35u, 40u}) {
    FederationScenarioConfig config;
    config.strategy = FederationStrategy::kSFlow;
    config.nodes = n;
    config.universe_types = 4;
    config.seed = 1700 + n;
    config.requests = 500;  // 50/min over 10 minutes
    config.request_interval = millis(1200);
    config.requirement_length = 3;
    config.deploy_streams = false;  // Fig 17 measures control traffic
    config.tail = seconds(10.0);
    const auto result = run_federation_scenario(config);
    print_row({strf("%zu", n),
               strf("%llu", (unsigned long long)result.aware_bytes),
               strf("%llu", (unsigned long long)result.federate_bytes),
               strf("%.0f%%", result.completion_rate() * 100.0)});
  }
  return 0;
}
