// Shared helpers for the figure/table reproduction harnesses: consistent
// headers and aligned table printing, so every bench prints rows in the
// shape the paper reports (see EXPERIMENTS.md for the mapping).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/strings.h"

namespace iov::bench {

inline void print_header(const char* experiment, const char* paper_claim) {
  std::printf(
      "\n==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("paper: %s\n", paper_claim);
  std::printf(
      "==============================================================\n");
}

inline void print_row(const std::vector<std::string>& cells,
                      std::size_t width = 16) {
  std::printf("%s\n", format_row(cells, width).c_str());
}

/// Bytes/second rendered as "N.N" kilobytes/second.
inline std::string kb(double bytes_per_sec) {
  return strf("%.1f", bytes_per_sec / 1000.0);
}

/// Bytes/second rendered as "N.NN" megabytes/second.
inline std::string mb(double bytes_per_sec) {
  return strf("%.2f", bytes_per_sec / 1e6);
}

}  // namespace iov::bench
