// Fig. 8 — the network-coding case study (§3.2) on the deterministic
// simulator: the seven-node butterfly-style topology with source A
// (400 KB/s) splitting streams a/b via helpers B and C, and node D's
// 200 KB/s uplink as the bottleneck.
//
//  (a) without coding, D forwards plain blocks: D receives the full
//      400 KB/s but F and G top out at ~300 KB/s each;
//  (b) with a+b coding in GF(2^8) at D, F and G decode both streams and
//      reach ~400 KB/s effective throughput; B, C and E are helpers.
#include <memory>

#include "apps/sink.h"
#include "apps/source.h"
#include "bench_util.h"
#include "coding/coding_algorithm.h"
#include "sim/sim_net.h"

namespace {

using namespace iov;         // NOLINT
using namespace iov::bench;  // NOLINT
using coding::CodingAlgorithm;
using sim::SimEngine;
using sim::SimNet;
using sim::SimNodeConfig;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;
constexpr double kRun = 20.0;

struct NodeRates {
  double d = 0, e = 0, f = 0, g = 0;
};

NodeRates run_butterfly(bool code_at_d) {
  SimNet net;
  SimNodeConfig big;
  big.recv_buffer_msgs = 10000;
  big.send_buffer_msgs = 10000;

  struct N {
    SimEngine* engine;
    CodingAlgorithm* alg;
  };
  const auto add = [&]() {
    auto algorithm = std::make_unique<CodingAlgorithm>();
    N n{nullptr, algorithm.get()};
    n.engine = &net.add_node(std::move(algorithm), big);
    return n;
  };
  N a = add(), b = add(), c = add(), d = add(), e = add(), f = add(),
    g = add();

  a.engine->register_app(kApp,
                         std::make_shared<apps::BackToBackSource>(kPayload));
  auto sink_d = std::make_shared<apps::SinkApp>();
  auto sink_f = std::make_shared<apps::SinkApp>();
  auto sink_g = std::make_shared<apps::SinkApp>();
  d.engine->register_app(kApp, sink_d);
  f.engine->register_app(kApp, sink_f);
  g.engine->register_app(kApp, sink_g);

  a.engine->bandwidth().set_node_up(400e3);
  d.engine->bandwidth().set_node_up(200e3);

  a.alg->set_source_split(kApp, {b.engine->self(), c.engine->self()});
  b.alg->add_relay(kApp, d.engine->self());
  b.alg->add_relay(kApp, f.engine->self());
  c.alg->add_relay(kApp, d.engine->self());
  c.alg->add_relay(kApp, g.engine->self());
  if (code_at_d) {
    d.alg->set_coder(kApp, 2, {1, 1}, {e.engine->self()});
  } else {
    d.alg->add_relay(kApp, e.engine->self());
  }
  d.alg->set_decoder(kApp, 2, kPayload);
  e.alg->add_relay(kApp, f.engine->self());
  e.alg->add_relay(kApp, g.engine->self());
  f.alg->set_decoder(kApp, 2, kPayload);
  g.alg->set_decoder(kApp, 2, kPayload);

  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(kRun));

  // "Effective throughput": distinct application data delivered locally.
  NodeRates rates;
  rates.d = static_cast<double>(sink_d->stats(0).bytes) / kRun;
  rates.f = static_cast<double>(sink_f->stats(0).bytes) / kRun;
  rates.g = static_cast<double>(sink_g->stats(0).bytes) / kRun;
  rates.e = net.link_rate(d.engine->self(), e.engine->self());
  return rates;
}

}  // namespace

int main() {
  print_header(
      "Fig 8: network coding on the butterfly (simulated substrate, "
      "GF(2^8) a+b at node D, D uplink 200 KB/s, source 400 KB/s)",
      "(a) without coding: D=400, F=G=~300 KB/s; (b) with coding: "
      "D=F=G=~400 KB/s at the cost of E becoming a helper");

  const NodeRates plain = run_butterfly(false);
  const NodeRates coded = run_butterfly(true);

  print_row({"node", "no coding KB/s", "a+b coding KB/s", "paper (a)",
             "paper (b)"});
  print_row({"D", kb(plain.d), kb(coded.d), "400", "400"});
  print_row({"F", kb(plain.f), kb(coded.f), "300", "400"});
  print_row({"G", kb(plain.g), kb(coded.g), "300", "400"});
  std::printf(
      "\ntrade-off: with coding, E relays only the coded stream "
      "(measured DE link: %s KB/s) and becomes a helper alongside B, C.\n",
      kb(coded.e).c_str());
  return 0;
}
