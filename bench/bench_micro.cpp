// Microbenchmarks (google-benchmark) for the hot paths behind the
// engine's performance claims (§2.4): header encode/decode, message
// construction and zero-copy clone, bounded-queue handoff, token-bucket
// accounting, GF(2^8) coding kernels, and the simulator's event loop.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "coding/decoder.h"
#include "coding/gf256.h"
#include "common/bounded_queue.h"
#include "common/rng.h"
#include "message/codec.h"
#include "message/msg.h"
#include "net/framing.h"
#include "net/socket.h"
#include "net/token_bucket.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"

namespace iov {
namespace {

void BM_HeaderEncode(benchmark::State& state) {
  const auto m = Msg::data(NodeId::loopback(1234), 7, 42,
                           Buffer::pattern(5000, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::encode_header(*m));
  }
}
BENCHMARK(BM_HeaderEncode);

void BM_HeaderDecode(benchmark::State& state) {
  const auto m = Msg::data(NodeId::loopback(1234), 7, 42,
                           Buffer::pattern(5000, 1));
  const auto bytes = codec::encode_header(*m);
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec::decode_header(bytes.data()));
  }
}
BENCHMARK(BM_HeaderDecode);

void BM_MsgConstruct(benchmark::State& state) {
  const auto payload = Buffer::pattern(static_cast<std::size_t>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Msg::data(NodeId::loopback(1), 1, 0, payload));
  }
}
BENCHMARK(BM_MsgConstruct)->Arg(100)->Arg(5000);

void BM_MsgCloneZeroCopy(benchmark::State& state) {
  const auto m = Msg::data(NodeId::loopback(1), 1, 0, Buffer::pattern(5000, 9));
  for (auto _ : state) {
    benchmark::DoNotOptimize(m->clone());
  }
}
BENCHMARK(BM_MsgCloneZeroCopy);

void BM_BoundedQueuePushPop(benchmark::State& state) {
  BoundedQueue<MsgPtr> queue(16);
  const auto m = Msg::data(NodeId::loopback(1), 1, 0, Buffer::pattern(5000, 9));
  for (auto _ : state) {
    queue.try_push(m);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_BoundedQueuePushPop);

void BM_TokenBucketAcquire(benchmark::State& state) {
  TokenBucket bucket(1e9, 1e9);
  TimePoint now = 0;
  for (auto _ : state) {
    now += 1000;
    benchmark::DoNotOptimize(bucket.acquire(5024, now));
  }
}
BENCHMARK(BM_TokenBucketAcquire);

void BM_GfMul(benchmark::State& state) {
  Rng rng(1);
  const u8 a = static_cast<u8>(rng.below(256));
  u8 b = 1;
  for (auto _ : state) {
    b = coding::gf_mul(a | 1, b | 1);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_GfMul);

void BM_GfAxpy(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<u8> dst(n, 3);
  std::vector<u8> src(n, 7);
  for (auto _ : state) {
    coding::gf_axpy(dst.data(), src.data(), 29, n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(n));
}
BENCHMARK(BM_GfAxpy)->Arg(1024)->Arg(5000)->Arg(65536);

void BM_GaussianDecode(benchmark::State& state) {
  const std::size_t k = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kBlock = 5000;
  Rng rng(2);
  std::vector<std::vector<u8>> blocks(k, std::vector<u8>(kBlock));
  for (auto& block : blocks) {
    for (auto& byte : block) byte = static_cast<u8>(rng.below(256));
  }
  std::vector<std::vector<u8>> coeffs;
  std::vector<std::vector<u8>> rows;
  for (std::size_t i = 0; i < k; ++i) {
    std::vector<u8> c(k);
    for (auto& v : c) v = static_cast<u8>(rng.below(256));
    coeffs.push_back(c);
    rows.push_back(coding::GaussianDecoder::combine(blocks, c));
  }
  for (auto _ : state) {
    coding::GaussianDecoder dec(k, kBlock);
    for (std::size_t i = 0; i < k; ++i) {
      dec.add_row(coeffs[i], rows[i].data(), rows[i].size());
    }
    if (dec.complete()) benchmark::DoNotOptimize(dec.block(0));
  }
}
BENCHMARK(BM_GaussianDecode)->Arg(2)->Arg(8)->Arg(32);

// The observability layer rides every hot path (switch, link threads), so
// its primitives must stay in the low-nanosecond range.
void BM_MetricsCounterInc(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("iov_bench_counter");
  for (auto _ : state) {
    c.inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsHistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("iov_bench_histogram");
  double x = 1e-6;
  for (auto _ : state) {
    h.observe(x);
    x = x < 1.0 ? x * 1.5 : 1e-6;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_MetricsHistogramObserve);

void BM_MetricsSnapshotSerialize(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 8; ++i) {
    registry.counter("iov_bench_counter", {{"i", std::to_string(i)}}).inc(i);
    registry.histogram("iov_bench_histogram", {{"i", std::to_string(i)}})
        .observe(1e-3 * i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.snapshot().serialize());
  }
}
BENCHMARK(BM_MetricsSnapshotSerialize);

void BM_MetricsSnapshotParse(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 8; ++i) {
    registry.counter("iov_bench_counter", {{"i", std::to_string(i)}}).inc(i);
    registry.histogram("iov_bench_histogram", {{"i", std::to_string(i)}})
        .observe(1e-3 * i);
  }
  const std::string wire = registry.snapshot().serialize();
  for (auto _ : state) {
    obs::MetricsSnapshot snap;
    obs::MetricsSnapshot::parse(wire, &snap);
    benchmark::DoNotOptimize(snap.samples.size());
  }
}
BENCHMARK(BM_MetricsSnapshotParse);

// --- Wire path: legacy per-message reads/writes vs the batched
// scatter-gather + bulk-decode path (DESIGN.md §8), over real loopback
// TCP. One iteration moves a fixed batch of messages writer->reader;
// the batch is sized to stay inside the kernel socket buffers so a
// single thread can write then read without deadlock.

struct WirePair {
  std::optional<TcpListener> listener;
  std::optional<TcpConn> client;
  std::optional<TcpConn> server;

  bool open() {
    listener = TcpListener::listen(0);
    if (!listener) return false;
    client = TcpConn::connect(NodeId::loopback(listener->port()),
                              seconds(1.0));
    if (!client || !wait_readable(listener->fd(), seconds(1.0))) return false;
    server = listener->accept();
    return server.has_value();
  }
};

std::vector<MsgPtr> wire_batch_msgs(std::size_t payload) {
  // Keep a full batch under ~32 KB of in-flight bytes.
  const std::size_t n = std::max<std::size_t>(
      1, std::min<std::size_t>(kMaxWireBatch,
                               (32 * 1024) / (payload + Msg::kHeaderSize)));
  std::vector<MsgPtr> msgs;
  for (std::size_t i = 0; i < n; ++i) {
    msgs.push_back(Msg::data(NodeId::loopback(1), 1, static_cast<u32>(i),
                             Buffer::pattern(payload, static_cast<u32>(i))));
  }
  return msgs;
}

void BM_WireRoundTripLegacy(benchmark::State& state) {
  WirePair pair;
  if (!pair.open()) {
    state.SkipWithError("loopback pair failed");
    return;
  }
  const auto msgs = wire_batch_msgs(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    for (const auto& m : msgs) {
      if (!write_msg(*pair.client, *m)) {
        state.SkipWithError("write failed");
        return;
      }
    }
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      benchmark::DoNotOptimize(read_msg(*pair.server));
    }
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(msgs.size()));
  state.SetBytesProcessed(
      static_cast<i64>(state.iterations()) *
      static_cast<i64>(msgs.size() * (state.range(0) + Msg::kHeaderSize)));
}
BENCHMARK(BM_WireRoundTripLegacy)->Arg(64)->Arg(1024)->Arg(65536);

void BM_WireRoundTripBatched(benchmark::State& state) {
  WirePair pair;
  if (!pair.open()) {
    state.SkipWithError("loopback pair failed");
    return;
  }
  const auto msgs = wire_batch_msgs(static_cast<std::size_t>(state.range(0)));
  FrameReader reader(*pair.server);
  for (auto _ : state) {
    if (!write_batch(*pair.client, msgs.data(), msgs.size())) {
      state.SkipWithError("write failed");
      return;
    }
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      benchmark::DoNotOptimize(reader.next());
    }
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) *
                          static_cast<i64>(msgs.size()));
  state.SetBytesProcessed(
      static_cast<i64>(state.iterations()) *
      static_cast<i64>(msgs.size() * (state.range(0) + Msg::kHeaderSize)));
}
BENCHMARK(BM_WireRoundTripBatched)->Arg(64)->Arg(1024)->Arg(65536);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue queue;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      queue.schedule_at(i * 1000, [&fired] { ++fired; });
    }
    queue.run_all();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueChurn);

}  // namespace
}  // namespace iov

BENCHMARK_MAIN();
