// Fig. 19 — end-to-end bandwidth of federated complex services under
// different network sizes, comparing sFlow against the fixed and random
// selection algorithms. The paper's claim: "the sFlow algorithm
// consistently produces federated complex services with higher
// end-to-end throughput, regardless of the network size".
#include "bench_util.h"
#include "federation/scenario.h"

namespace {

using namespace iov;               // NOLINT
using namespace iov::bench;       // NOLINT
using namespace iov::federation;  // NOLINT

double mean_bandwidth(FederationStrategy strategy, std::size_t nodes,
                      u64 seed) {
  // Average over independent seeds; each run deploys 16 concurrent
  // sessions so selection quality shows up as congestion.
  double sum = 0.0;
  constexpr int kRepeats = 5;
  for (int repeat = 0; repeat < kRepeats; ++repeat) {
    FederationScenarioConfig config;
    config.strategy = strategy;
    config.nodes = nodes;
    // A wide type universe spreads the designated source nodes, so the
    // measured bandwidth reflects the quality of the *selected* hops
    // rather than a shared first hop.
    config.universe_types = 5;
    config.seed = seed + static_cast<u64>(repeat) * 1013;
    config.requests = 12;
    // ~3 sessions live at a time: enough cross-traffic that load-blind
    // selection hurts, not so much that every path saturates.
    config.request_interval = seconds(3.0);
    config.stream_duration = seconds(8.0);
    config.requirement_length = 4;
    config.allow_branches = false;
    // Strongly heterogeneous wide-area paths.
    config.link_lo = 10e3;
    config.link_hi = 200e3;
    config.tail = seconds(30.0);
    sum += run_federation_scenario(config).mean_goodput_ok();
  }
  return sum / kRepeats;
}

}  // namespace

int main() {
  print_header(
      "Fig 19: end-to-end bandwidth of federated services vs network size "
      "(10 concurrent requirements, simulated substrate)",
      "sFlow > fixed > random at every size");

  print_row({"nodes", "sFlow B/s", "fixed B/s", "random B/s"});
  for (const std::size_t n : {5u, 10u, 15u, 20u, 25u, 30u, 35u, 40u}) {
    const u64 seed = 1900 + n;
    print_row({strf("%zu", n),
               strf("%.0f", mean_bandwidth(FederationStrategy::kSFlow, n, seed)),
               strf("%.0f", mean_bandwidth(FederationStrategy::kFixed, n, seed)),
               strf("%.0f",
                    mean_bandwidth(FederationStrategy::kRandom, n, seed))});
  }
  return 0;
}
