// Fig. 18 — per-node control-message overhead in a 30-node service
// overlay over a 22-minute window with 50 new requirements per minute.
// The paper sees a few heavily used nodes (the designated source
// service nodes) with up to ~40 KB of sFederate overhead, a middle tier
// around ~17 KB, and ~11 nodes with very low overhead because their
// services are never selected.
#include <algorithm>

#include "bench_util.h"
#include "federation/scenario.h"

namespace {

using namespace iov;               // NOLINT
using namespace iov::bench;       // NOLINT
using namespace iov::federation;  // NOLINT

}  // namespace

int main() {
  print_header(
      "Fig 18: per-node control overhead, 30-node service overlay, 50 "
      "requirements/min for 22 minutes (simulated substrate)",
      "a skewed distribution: designated/source-heavy nodes carry the "
      "most sFederate overhead, unselected nodes almost none");

  FederationScenarioConfig config;
  config.strategy = FederationStrategy::kSFlow;
  config.nodes = 30;
  config.universe_types = 5;
  config.seed = 18;
  config.requests = 1100;  // 50/min over 22 minutes
  config.request_interval = millis(1200);
  config.requirement_length = 3;
  config.deploy_streams = false;
  config.tail = seconds(10.0);
  const auto result = run_federation_scenario(config);

  struct Row {
    NodeId id;
    u64 aware;
    u64 federate;
  };
  std::vector<Row> rows;
  for (const auto& [id, aware] : result.aware_bytes_per_node) {
    const u64 federate = result.federate_bytes_per_node.count(id)
                             ? result.federate_bytes_per_node.at(id)
                             : 0;
    rows.push_back({id, aware, federate});
  }
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.federate > b.federate; });

  print_row({"node", "sFederate bytes", "sAware bytes"}, 18);
  std::size_t quiet = 0;
  u64 max_federate = 0;
  for (const auto& row : rows) {
    print_row({row.id.to_string(),
               strf("%llu", (unsigned long long)row.federate),
               strf("%llu", (unsigned long long)row.aware)},
              18);
    max_federate = std::max(max_federate, row.federate);
    if (row.federate < max_federate / 20) ++quiet;
  }
  std::printf(
      "\ncompletion %.0f%%; %zu of %zu nodes carried <5%% of the peak "
      "sFederate overhead (paper: 11 of 30 with very low overhead).\n",
      result.completion_rate() * 100.0, quiet, rows.size());
  return 0;
}
