// Fig. 16 — sAware control overhead over time while a 30-node service
// overlay network is being established, with an average of three new
// services participating every (virtual) minute over a 22-minute run.
// The paper observes the overhead "starts to significantly decrease
// after 10 minutes, and is moderate and acceptable over the entire
// period".
#include "bench_util.h"
#include "federation/scenario.h"

namespace {

using namespace iov;               // NOLINT
using namespace iov::bench;       // NOLINT
using namespace iov::federation;  // NOLINT

}  // namespace

int main() {
  print_header(
      "Fig 16: total sAware overhead over time, 30-node service overlay, "
      "~3 new services per minute for 10 minutes (simulated substrate)",
      "overhead peaks during the establishment wave and significantly "
      "decreases after ~10 minutes");

  FederationScenarioConfig config;
  config.strategy = FederationStrategy::kSFlow;
  config.nodes = 30;
  config.universe_types = 6;
  config.seed = 16;
  config.service_interval = seconds(20.0);  // 3 per minute, 30 services
  config.requests = 0;
  config.deploy_streams = false;
  config.tail = seconds(22.0 * 60.0) - seconds(20.0) * 30;
  const auto result = run_federation_scenario(config);

  print_row({"minute", "sAware bytes"}, 12);
  for (std::size_t i = 0; i < result.aware_timeline.size() && i < 22; ++i) {
    print_row({strf("%zu", i + 1), strf("%.0f", result.aware_timeline[i])},
              12);
  }
  std::printf("\ntotal sAware over the run: %llu bytes\n",
              static_cast<unsigned long long>(result.aware_bytes));
  return 0;
}
