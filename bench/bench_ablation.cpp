// Ablations of the engine design choices the paper calls out (§2.2
// "Performance considerations" and §2.4):
//
//  (1) zero copying — "Such performance is simply not achievable if ...
//      zero message copying is not enforced": the same 3-node relay chain
//      run with the stock zero-copy relay vs. a relay that deep-copies
//      every payload at every hop;
//  (2) buffer capacity — how receiver/sender buffer depth trades
//      end-to-end latency (Fig 6's prompt back-pressure) against
//      throughput smoothing, on the deterministic substrate;
//  (3) switching granularity — the sim engine's per-event byte budget
//      (its model of finite switching capacity) vs. delivered goodput.
#include <memory>

#include "algorithm/relay.h"
#include "apps/sink.h"
#include "apps/source.h"
#include "bench_util.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "sim/sim_net.h"

namespace {

using namespace iov;         // NOLINT
using namespace iov::bench;  // NOLINT

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;

// A relay that defeats the engine's zero-copy design: every forwarded
// message gets a fresh deep-copied payload.
class DeepCopyRelay : public RelayAlgorithm {
 protected:
  Disposition on_data(const MsgPtr& m) override {
    // deliver_local is a no-op unless this node registered the app.
    engine().deliver_local(m);
    for (const auto& child : children(m->app())) {
      auto copy = m->clone_with_payload(
          Buffer::copy(m->payload()->data(), m->payload_size()));
      engine().send(copy, child);
    }
    return Disposition::kDone;
  }
};

double run_real_chain(bool zero_copy, int n) {
  std::vector<std::unique_ptr<engine::Engine>> engines;
  std::vector<RelayAlgorithm*> relays;
  auto sink = std::make_shared<apps::SinkApp>();
  for (int i = 0; i < n; ++i) {
    std::unique_ptr<RelayAlgorithm> algorithm;
    if (zero_copy) {
      algorithm = std::make_unique<RelayAlgorithm>();
    } else {
      algorithm = std::make_unique<DeepCopyRelay>();
    }
    relays.push_back(algorithm.get());
    auto node = std::make_unique<engine::Engine>(engine::EngineConfig{},
                                                 std::move(algorithm));
    if (i == 0) {
      node->register_app(kApp,
                         std::make_shared<apps::BackToBackSource>(kPayload));
    }
    if (i == n - 1) node->register_app(kApp, sink);
    if (!node->start()) std::exit(1);
    engines.push_back(std::move(node));
  }
  for (int i = 0; i + 1 < n; ++i) {
    relays[i]->add_child(kApp, engines[i + 1]->self());
  }
  relays[n - 1]->set_consume(kApp, true);
  engines[0]->deploy_source(kApp);

  sleep_for(millis(400));
  const TimePoint t0 = RealClock::instance().now();
  const u64 bytes0 = sink->stats(t0).bytes;
  sleep_for(millis(1500));
  const TimePoint t1 = RealClock::instance().now();
  const u64 bytes1 = sink->stats(t1).bytes;
  engines[0]->terminate_source(kApp);
  for (auto& node : engines) node->stop();
  for (auto& node : engines) node->join();
  return static_cast<double>(bytes1 - bytes0) / to_seconds(t1 - t0);
}

// Virtual-time convergence of Fig 6-style back-pressure for a given
// buffer depth: how long until the source link settles near the
// downstream bottleneck rate.
struct BufferResult {
  double source_rate;   // source-link rate over the last window
  double sink_goodput;  // delivered at the sink over the whole run
};

BufferResult run_buffer_depth(std::size_t depth) {
  sim::SimNet net;
  sim::SimNodeConfig config;
  config.recv_buffer_msgs = depth;
  config.send_buffer_msgs = depth;
  struct N {
    sim::SimEngine* engine;
    RelayAlgorithm* relay;
  };
  const auto add = [&] {
    auto algorithm = std::make_unique<RelayAlgorithm>();
    N n{nullptr, algorithm.get()};
    n.engine = &net.add_node(std::move(algorithm), config);
    return n;
  };
  N a = add(), b = add(), c = add();
  auto sink = std::make_shared<apps::SinkApp>();
  a.engine->register_app(kApp,
                         std::make_shared<apps::BackToBackSource>(kPayload));
  c.engine->register_app(kApp, sink);
  a.engine->bandwidth().set_node_up(400e3);
  b.engine->bandwidth().set_node_up(30e3);  // the bottleneck
  a.relay->add_child(kApp, b.engine->self());
  b.relay->add_child(kApp, c.engine->self());
  c.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);

  constexpr double kRun = 30.0;
  net.run_for(seconds(kRun - 10.0));
  const u64 ab0 = net.link_delivered_bytes(a.engine->self(), b.engine->self());
  net.run_for(seconds(10.0));
  BufferResult result;
  result.source_rate =
      static_cast<double>(net.link_delivered_bytes(a.engine->self(),
                                                   b.engine->self()) -
                          ab0) /
      10.0;
  result.sink_goodput = static_cast<double>(sink->stats(0).bytes) / kRun;
  return result;
}

}  // namespace

int main() {
  print_header(
      "Ablation 1: zero-copy forwarding vs deep copy per hop (3 real "
      "engines, loopback, back-to-back 5 KB messages)",
      "§2.4: the paper attributes its raw switching rate to enforcing "
      "zero message copying");
  const double zero_copy = run_real_chain(true, 3);
  const double deep_copy = run_real_chain(false, 3);
  print_row({"relay", "end-to-end MB/s"});
  print_row({"zero-copy (stock)", mb(zero_copy)});
  print_row({"deep-copy per hop", mb(deep_copy)});
  print_row({"ratio", strf("%.2fx", zero_copy / deep_copy)});
  std::printf(
      "\nnote: on 2004 hardware payload copies competed with the switch for\n"
      "memory bandwidth, hence the paper's emphasis; on modern hosts a 5 KB\n"
      "memcpy is cheap next to the syscall path, so the measured gap is\n"
      "small — the zero-copy design's remaining value is allocation\n"
      "pressure and cache footprint at high fan-out.\n");

  print_header(
      "Ablation 2: buffer depth vs back-pressure (simulated 3-node chain, "
      "30 KB/s bottleneck at the relay, 30 s run)",
      "small buffers throttle the source to the bottleneck rate quickly "
      "(Fig 6); deep buffers defer it (Fig 7)");
  print_row({"buffer msgs", "source-link KB/s", "sink KB/s"});
  for (const std::size_t depth : {2u, 5u, 10u, 100u, 1000u, 10000u}) {
    const BufferResult r = run_buffer_depth(depth);
    print_row({strf("%zu", depth), kb(r.source_rate), kb(r.sink_goodput)});
  }

  print_header(
      "Ablation 3: simulator switching-capacity model (default link rate) "
      "vs chain goodput (8-node simulated chain, no caps)",
      "the per-event byte budget bounds how fast the simulated engines "
      "switch; goodput should track it");
  print_row({"switch capacity MB/s", "sink MB/s"});
  for (const double rate : {5e6, 20e6, 50e6, 200e6}) {
    sim::SimNet::Config net_config;
    net_config.default_link_rate = rate;
    sim::SimNet net(net_config);
    std::vector<sim::SimEngine*> engines;
    std::vector<RelayAlgorithm*> relays;
    auto sink = std::make_shared<apps::SinkApp>();
    for (int i = 0; i < 8; ++i) {
      auto algorithm = std::make_unique<RelayAlgorithm>();
      relays.push_back(algorithm.get());
      engines.push_back(&net.add_node(std::move(algorithm),
                                      sim::SimNodeConfig{}));
    }
    engines[0]->register_app(
        kApp, std::make_shared<apps::BackToBackSource>(kPayload));
    engines[7]->register_app(kApp, sink);
    for (int i = 0; i < 7; ++i) {
      relays[static_cast<std::size_t>(i)]->add_child(
          kApp, engines[static_cast<std::size_t>(i) + 1]->self());
    }
    relays[7]->set_consume(kApp, true);
    net.deploy(engines[0]->self(), kApp);
    net.run_for(seconds(5.0));
    print_row({mb(rate), mb(static_cast<double>(sink->stats(0).bytes) / 5.0)});
  }
  return 0;
}
