// Flash-crowd streaming churn under increasing churn rates (the
// scenario tier's headline numbers): the same seeded flash-crowd
// workload is run on the deterministic simulator at three session-length
// tiers — long sessions (gentle churn) down to short sessions (viewers
// churning several times inside the horizon) — and the per-viewer
// continuity accounting is reported the way a streaming operator would
// read it: rejoin-latency percentiles, stream-gap seconds, and the
// tree-shape (depth / degree / orphan) curves over the run.
//
// Emits a JSON artifact (default BENCH_streaming.json) with one entry
// per churn rate: schedule composition, rejoin p50/p90/p99, first-packet
// percentiles, gap-second aggregates, and the sampled shape curves.
//
// Flags:
//   --out <path>   JSON output path (default BENCH_streaming.json)
//   --smoke        small/fast CI variant (~10 s): fewer viewers, shorter
//                  horizon; exits non-zero if any churn rate leaves a
//                  permanent orphan behind, delivers no frames, or loses
//                  a rejoin entirely — the recovery guarantees the
//                  scenario tier exists to defend.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "scenario/streaming_churn.h"

namespace {

using namespace iov;         // NOLINT
using namespace iov::bench;  // NOLINT
using scenario::StreamingChurnConfig;
using scenario::StreamingChurnResult;

struct RateResult {
  std::string label;
  double mean_session_seconds = 0;
  std::size_t viewers = 0;
  std::size_t joins = 0;
  std::size_t drops = 0;
  std::size_t departs = 0;
  double events_per_viewer_minute = 0;
  u64 frames = 0;
  std::size_t orphans = 0;
  std::size_t unrecovered_drops = 0;
  std::size_t rejoins = 0;
  double rejoin_p50 = 0, rejoin_p90 = 0, rejoin_p99 = 0;
  double first_packet_p50 = 0, first_packet_p90 = 0;
  double gap_total = 0, gap_mean = 0, gap_max = 0;
  StreamingChurnResult result;  // shape curves serialized from here
};

RateResult run_rate(const char* label, double mean_session, bool smoke,
                    u64 seed) {
  StreamingChurnConfig config;
  config.churn.viewers = smoke ? 150 : 2000;
  config.churn.seed = seed;
  config.churn.waves = 3;
  config.churn.wave_spacing = smoke ? seconds(3.0) : seconds(6.0);
  config.churn.wave_spread = seconds(2.0);
  config.churn.mean_session_seconds = mean_session;
  config.churn.depart_fraction = 0.3;
  config.churn.correlated_fraction = 0.2;
  config.churn.shocks = 2;
  config.churn.horizon = smoke ? seconds(10.0) : seconds(24.0);
  config.fps = 1.0;
  config.settle = smoke ? seconds(6.0) : seconds(8.0);

  RateResult r;
  r.label = label;
  r.mean_session_seconds = mean_session;
  r.viewers = config.churn.viewers;
  r.result = scenario::run_sim_streaming_churn(config);
  const auto& result = r.result;

  r.joins = result.schedule.count(scenario::ChurnAction::kJoin);
  r.drops = result.schedule.count(scenario::ChurnAction::kDrop);
  r.departs = result.schedule.count(scenario::ChurnAction::kDepart);
  r.events_per_viewer_minute =
      static_cast<double>(result.schedule.events.size()) /
      static_cast<double>(config.churn.viewers) /
      (to_seconds(config.churn.horizon) / 60.0);
  r.frames = result.frames_delivered();
  r.orphans = result.permanent_orphans();

  EmpiricalCdf rejoin, first_packet;
  double gap_total = 0;
  for (const auto& v : result.viewers) {
    rejoin.add_all(v.continuity.rejoin_latencies);
    r.rejoins += v.continuity.rejoin_latencies.size();
    r.unrecovered_drops += v.continuity.unrecovered_drops;
    if (v.continuity.first_packet_latency >= 0) {
      first_packet.add(v.continuity.first_packet_latency);
    }
    gap_total += v.continuity.gap_seconds;
  }
  if (r.rejoins > 0) {
    r.rejoin_p50 = rejoin.quantile(0.50);
    r.rejoin_p90 = rejoin.quantile(0.90);
    r.rejoin_p99 = rejoin.quantile(0.99);
  }
  r.first_packet_p50 = first_packet.quantile(0.50);
  r.first_packet_p90 = first_packet.quantile(0.90);
  r.gap_total = gap_total;
  r.gap_mean = gap_total / static_cast<double>(config.churn.viewers);
  r.gap_max = result.max_gap_seconds();
  return r;
}

void write_json(const std::string& path,
                const std::vector<RateResult>& rates) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"streaming\",\n  \"rates\": [\n");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& r = rates[i];
    std::fprintf(
        f,
        "    {\"rate\": \"%s\", \"mean_session_seconds\": %.1f, "
        "\"viewers\": %zu,\n"
        "     \"joins\": %zu, \"drops\": %zu, \"departs\": %zu, "
        "\"events_per_viewer_minute\": %.3f,\n"
        "     \"frames_delivered\": %llu, \"permanent_orphans\": %zu, "
        "\"unrecovered_drops\": %zu,\n"
        "     \"rejoins\": %zu, \"rejoin_seconds\": "
        "{\"p50\": %.3f, \"p90\": %.3f, \"p99\": %.3f},\n"
        "     \"first_packet_seconds\": {\"p50\": %.3f, \"p90\": %.3f},\n"
        "     \"gap_seconds\": {\"total\": %.3f, \"mean_per_viewer\": %.4f, "
        "\"max\": %.3f},\n",
        r.label.c_str(), r.mean_session_seconds, r.viewers, r.joins, r.drops,
        r.departs, r.events_per_viewer_minute,
        static_cast<unsigned long long>(r.frames), r.orphans,
        r.unrecovered_drops, r.rejoins, r.rejoin_p50, r.rejoin_p90,
        r.rejoin_p99, r.first_packet_p50, r.first_packet_p90, r.gap_total,
        r.gap_mean, r.gap_max);
    // Tree-shape evolution: one parallel array per curve, sampled once a
    // second by the runner.
    const auto& shape = r.result.shape;
    auto curve = [&](const char* name, auto get, const char* fmt) {
      std::fprintf(f, "     \"%s\": [", name);
      for (std::size_t j = 0; j < shape.size(); ++j) {
        std::fprintf(f, fmt, get(shape[j]));
        if (j + 1 < shape.size()) std::fprintf(f, ", ");
      }
      std::fprintf(f, "]");
    };
    std::fprintf(f, "     \"shape\": {\n");
    curve("t_seconds", [](const auto& s) { return to_seconds(s.at); },
          "%.1f");
    std::fprintf(f, ",\n");
    curve("in_tree", [](const auto& s) { return s.in_tree; }, "%zu");
    std::fprintf(f, ",\n");
    curve("orphans", [](const auto& s) { return s.orphans; }, "%zu");
    std::fprintf(f, ",\n");
    curve("depth", [](const auto& s) { return s.depth; }, "%zu");
    std::fprintf(f, ",\n");
    curve("max_degree", [](const auto& s) { return s.max_degree; }, "%zu");
    std::fprintf(f, ",\n");
    curve("mean_degree", [](const auto& s) { return s.mean_degree; },
          "%.2f");
    std::fprintf(f, "\n     }}%s\n", i + 1 < rates.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_streaming.json";
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out path] [--smoke]\n", argv[0]);
      return 2;
    }
  }

  print_header(
      "Flash-crowd streaming churn vs churn rate (deterministic sim)",
      "rejoin latency, stream gaps and tree shape stay bounded as "
      "sessions shorten (scenario tier; docs/SCENARIOS.md)");
  print_row({"rate", "sess(s)", "ev/v/min", "rejoin-p50", "rejoin-p99",
             "gap-mean", "depth", "orphans"},
            12);

  // Three churn rates: session lengths from "most viewers outlast the
  // horizon" down to "everyone churns repeatedly".
  const double scale = smoke ? 0.4 : 1.0;
  std::vector<RateResult> rates;
  rates.push_back(run_rate("low", 40.0 * scale, smoke, 101));
  rates.push_back(run_rate("medium", 15.0 * scale, smoke, 102));
  rates.push_back(run_rate("high", 6.0 * scale, smoke, 103));

  for (const auto& r : rates) {
    const std::size_t final_depth =
        r.result.shape.empty() ? 0 : r.result.shape.back().depth;
    print_row({r.label, strf("%.0f", r.mean_session_seconds),
               strf("%.2f", r.events_per_viewer_minute),
               strf("%.3f", r.rejoin_p50), strf("%.3f", r.rejoin_p99),
               strf("%.4f", r.gap_mean), strf("%zu", final_depth),
               strf("%zu", r.orphans)},
              12);
  }

  write_json(out, rates);

  bool fail = false;
  for (const auto& r : rates) {
    if (r.orphans != 0) {
      std::fprintf(stderr, "FAIL: %s churn left %zu permanent orphans\n",
                   r.label.c_str(), r.orphans);
      fail = true;
    }
    if (r.frames == 0) {
      std::fprintf(stderr, "FAIL: %s churn delivered no frames\n",
                   r.label.c_str());
      fail = true;
    }
    if (!r.result.verify_failures.empty()) {
      std::fprintf(stderr, "FAIL: %s churn verify: %s\n", r.label.c_str(),
                   r.result.verify_failures.front().c_str());
      fail = true;
    }
  }
  return fail ? 1 : 0;
}
