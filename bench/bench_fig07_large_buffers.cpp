// Fig. 7 — the effects of bottleneck bandwidth under *large* buffers
// (10000 messages): unlike Fig 6's small-buffer runs, a bottleneck only
// affects its own downstream links within the experiment's horizon,
// because upstream nodes can keep filling the deep sender buffers.
//
//  (a) same seven-node topology, D uplink 30 KB/s from the start:
//      only DE/EF/EG drop to ~30; A's subtree still runs at ~200;
//  (b) link EF additionally capped to 15 KB/s: EF -> 15, EG unaffected.
#include <map>
#include <memory>

#include "algorithm/relay.h"
#include "apps/sink.h"
#include "apps/source.h"
#include "bench_util.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "observer/observer.h"

namespace {

using namespace iov;         // NOLINT
using namespace iov::bench;  // NOLINT
using engine::Engine;
using engine::EngineConfig;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;
constexpr Duration kSettle = seconds(6.0);

struct Node {
  std::unique_ptr<Engine> engine;
  RelayAlgorithm* relay = nullptr;
};

Node make_node(const NodeId& observer, double node_total = 0.0) {
  auto algorithm = std::make_unique<RelayAlgorithm>();
  Node n;
  n.relay = algorithm.get();
  EngineConfig config;
  config.recv_buffer_msgs = 10000;  // the large-buffer setting
  config.send_buffer_msgs = 10000;
  config.socket_buffer_bytes = 64 * 1024;
  config.bandwidth.node_total = node_total;
  config.observer = observer;
  n.engine = std::make_unique<Engine>(config, std::move(algorithm));
  return n;
}

std::string link_rate(const std::map<char, Node>& nodes, char src, char dst) {
  for (const auto& link : nodes.at(src).engine->snapshot().links) {
    if (link.peer == nodes.at(dst).engine->self()) {
      return kb(link.down.rate_bps);
    }
  }
  return "-";
}

void print_links(const std::map<char, Node>& nodes) {
  static const std::vector<std::pair<char, char>> kLinks = {
      {'A', 'B'}, {'A', 'C'}, {'B', 'D'}, {'B', 'F'}, {'C', 'D'},
      {'C', 'G'}, {'D', 'E'}, {'E', 'F'}, {'E', 'G'}};
  std::vector<std::string> header;
  std::vector<std::string> row;
  for (const auto& [src, dst] : kLinks) {
    header.push_back(std::string(1, src) + dst + " KB/s");
    row.push_back(link_rate(nodes, src, dst));
  }
  print_row(header, 10);
  print_row(row, 10);
}

}  // namespace

int main() {
  print_header(
      "Fig 7: bottlenecks under 10000-message buffers (real engines over "
      "loopback)",
      "(a) D uplink 30 KB/s only slows DE/EF/EG; A's subtree keeps ~200. "
      "(b) per-link EF at 15 KB/s leaves EG untouched");

  observer::Observer obs{observer::ObserverConfig{}};
  if (!obs.start()) return 1;

  std::map<char, Node> nodes;
  nodes.emplace('A', make_node(obs.address(), 400e3));
  for (const char c : {'B', 'C', 'D', 'E', 'F', 'G'}) {
    nodes.emplace(c, make_node(obs.address()));
  }
  nodes.at('A').engine->register_app(
      kApp, std::make_shared<apps::BackToBackSource>(kPayload));
  auto sink_f = std::make_shared<apps::SinkApp>();
  auto sink_g = std::make_shared<apps::SinkApp>();
  nodes.at('F').engine->register_app(kApp, sink_f);
  nodes.at('G').engine->register_app(kApp, sink_g);
  for (auto& [name, node] : nodes) {
    if (!node.engine->start()) return 1;
  }
  const auto wire = [&](char src, char dst) {
    nodes.at(src).relay->add_child(kApp, nodes.at(dst).engine->self());
  };
  wire('A', 'B');
  wire('A', 'C');
  wire('B', 'D');
  wire('B', 'F');
  wire('C', 'D');
  wire('C', 'G');
  wire('D', 'E');
  wire('E', 'F');
  wire('E', 'G');
  nodes.at('F').relay->set_consume(kApp, true);
  nodes.at('G').relay->set_consume(kApp, true);

  // Wait for every node's bootstrap to reach the observer, then place
  // D's uplink bottleneck before traffic starts.
  while (obs.alive_count() < nodes.size()) sleep_for(millis(20));
  if (!obs.set_bandwidth(nodes.at('D').engine->self(), engine::kBwNodeUp,
                         30e3)) {
    std::fprintf(stderr, "failed to reach node D via the observer\n");
    return 1;
  }
  sleep_for(millis(300));
  nodes.at('A').engine->deploy_source(kApp);

  std::printf("\n(a) D uplink 30 KB/s, large buffers\n");
  sleep_for(kSettle);
  print_links(nodes);

  std::printf("\n(b) per-link bandwidth of EF set to 15 KB/s\n");
  obs.set_bandwidth(nodes.at('E').engine->self(), engine::kBwLinkUp, 15e3,
                    nodes.at('F').engine->self());
  sleep_for(kSettle);
  print_links(nodes);

  std::printf(
      "\nnote: with 10000-message buffers the back pressure of Fig 6 is\n"
      "deferred — it would reappear once the deep buffers fill (paper "
      "§2.4).\n");

  for (auto& [name, node] : nodes) node.engine->stop();
  for (auto& [name, node] : nodes) node.engine->join();
  obs.stop();
  obs.join();
  return 0;
}
