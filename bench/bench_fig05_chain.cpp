// Fig. 5 — raw performance of the iOverlay engine.
//
// Virtualized nodes on one host form a chain; a back-to-back source at
// one end pushes 5 KB messages as fast as possible to the other end.
// Reported per chain length: end-to-end throughput and total bandwidth
// (throughput x number of links), i.e. the volume of messages the
// engines switched concurrently. The paper (dual P-III 1 GHz, Linux 2.4)
// saw 48.4 MB/s for 2 nodes falling to 424 KB/s at 32 nodes, with a
// one-switch overhead of ~3.3% at 3 nodes; absolute numbers here differ
// with hardware, but the 1/(n-1)-style decay and the small 3-node
// overhead are the reproduced shape.
#include <memory>
#include <vector>

#include "algorithm/relay.h"
#include "apps/sink.h"
#include "apps/source.h"
#include "bench_util.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "obs/metric_names.h"

namespace {

using namespace iov;          // NOLINT
using namespace iov::bench;   // NOLINT
using engine::Engine;
using engine::EngineConfig;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;  // the paper's 5 KB messages
constexpr Duration kWarmup = millis(400);
constexpr Duration kMeasure = millis(1200);

struct ChainResult {
  double end_to_end = 0.0;     // bytes/s
  double total = 0.0;          // bytes/s across all links
  double switch_latency = 0.0;  // mean seconds a message sat in a recv buffer
};

/// Mean of the iov_switch_latency_seconds histogram of one engine's
/// metric registry — the per-hop cost the figure's decay comes from.
double mean_switch_latency(const engine::Engine& e) {
  for (const auto& s : e.metrics().snapshot().samples) {
    if (s.name == obs::names::kSwitchLatencySeconds && s.hist.count > 0) {
      return s.hist.sum / static_cast<double>(s.hist.count);
    }
  }
  return 0.0;
}

ChainResult run_chain(int n) {
  std::vector<std::unique_ptr<Engine>> engines;
  std::vector<RelayAlgorithm*> relays;
  auto sink = std::make_shared<apps::SinkApp>();

  for (int i = 0; i < n; ++i) {
    auto algorithm = std::make_unique<RelayAlgorithm>();
    relays.push_back(algorithm.get());
    EngineConfig config;
    config.recv_buffer_msgs = 10;
    config.send_buffer_msgs = 10;
    auto engine = std::make_unique<Engine>(config, std::move(algorithm));
    if (i == 0) {
      engine->register_app(kApp,
                           std::make_shared<apps::BackToBackSource>(kPayload));
    }
    if (i == n - 1) engine->register_app(kApp, sink);
    if (!engine->start()) {
      std::fprintf(stderr, "failed to start engine %d\n", i);
      std::exit(1);
    }
    engines.push_back(std::move(engine));
  }
  for (int i = 0; i + 1 < n; ++i) {
    relays[i]->add_child(kApp, engines[i + 1]->self());
  }
  relays[n - 1]->set_consume(kApp, true);
  engines[0]->deploy_source(kApp);

  sleep_for(kWarmup);
  const TimePoint t0 = RealClock::instance().now();
  const u64 bytes0 = sink->stats(t0).bytes;
  sleep_for(kMeasure);
  const TimePoint t1 = RealClock::instance().now();
  const u64 bytes1 = sink->stats(t1).bytes;

  engines[0]->terminate_source(kApp);

  ChainResult result;
  // First relay-only node when n > 2 (the representative switch); the
  // sink for n == 2 — the source node never receives and would read 0.
  result.switch_latency = mean_switch_latency(*engines[n > 2 ? 1 : n - 1]);

  for (auto& engine : engines) engine->stop();
  for (auto& engine : engines) engine->join();

  result.end_to_end =
      static_cast<double>(bytes1 - bytes0) / to_seconds(t1 - t0);
  result.total = result.end_to_end * static_cast<double>(n - 1);
  return result;
}

}  // namespace

int main() {
  print_header(
      "Fig 5: raw engine performance (chain of virtualized nodes, "
      "back-to-back 5 KB messages over loopback TCP)",
      "2-node total 48.4 MB/s; 3-node 46.8 MB/s (one-switch overhead "
      "~3.3%); throughput decays ~1/(n-1); 32-node end-to-end still "
      "exceeds typical wide-area rates");

  print_row({"nodes", "end-to-end MB/s", "total MB/s", "vs 2-node e2e",
             "switch lat us"});
  double two_node_e2e = 0.0;
  for (const int n : {2, 3, 4, 5, 6, 8, 12, 16, 32}) {
    const ChainResult r = run_chain(n);
    if (n == 2) two_node_e2e = r.end_to_end;
    print_row({strf("%d", n), mb(r.end_to_end), mb(r.total),
               strf("%.1f%%", r.end_to_end / two_node_e2e * 100.0),
               strf("%.1f", r.switch_latency * 1e6)});
  }
  std::printf(
      "\nnote: absolute rates depend on host CPU. The reproduced shape is\n"
      "the monotone end-to-end decay as threads multiply. Unlike the\n"
      "paper's dual-P-III (saturated already at 2 nodes, so total\n"
      "bandwidth stayed ~flat at ~48 MB/s), this host's 2-node case is\n"
      "not CPU-bound: total bandwidth first *grows* with link-level\n"
      "pipelining, then the paper's context-switch decay takes over.\n");
  return 0;
}
