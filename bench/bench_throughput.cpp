// Wire-path batching ablation (DESIGN.md §8): loopback pair and relay
// chain, back-to-back traffic, measured with the batched zero-copy wire
// path (scatter-gather sends + FrameReader bulk decode, the default)
// and with the legacy per-message knobs (`wire_batch_msgs = 1`,
// `wire_bulk_reader = false`) — the pre-change syscall pattern, kept as
// a live configuration precisely so this comparison stays honest.
//
// Reports messages/s and MB/s from the terminal sink, plus
// syscalls-per-wire-message summed over every link of every engine
// (iov_link_syscalls_total / iov_link_messages_total). Emits a JSON
// artifact (default BENCH_throughput.json; see
// tools/run_bench_throughput.sh).
//
// Flags:
//   --out <path>   JSON output path (default BENCH_throughput.json)
//   --secs <s>     measured window per configuration (default 1.0)
//   --smoke        ~5 s CI variant: chain @ 1 KB only, short windows,
//                  exits non-zero if the batched path fails to beat one
//                  syscall per message.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "algorithm/relay.h"
#include "apps/sink.h"
#include "apps/source.h"
#include "bench_util.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "obs/metric_names.h"

namespace {

using namespace iov;         // NOLINT
using namespace iov::bench;  // NOLINT
using engine::Engine;
using engine::EngineConfig;

constexpr u32 kApp = 1;

struct RunResult {
  std::string topology;
  std::size_t payload = 0;
  bool batched = false;
  double msgs_per_sec = 0;
  double bytes_per_sec = 0;
  double syscalls_per_msg = 0;
  u64 sink_msgs = 0;
};

struct Node {
  std::unique_ptr<Engine> engine;
  RelayAlgorithm* relay = nullptr;
};

Node make_node(bool batched) {
  auto algorithm = std::make_unique<RelayAlgorithm>();
  Node n;
  n.relay = algorithm.get();
  EngineConfig config;
  config.recv_buffer_msgs = 1024;
  config.send_buffer_msgs = 1024;
  // Deep switch rounds so sources and relays hand the sender thread
  // enough backlog for full-size flushes.
  config.default_switch_weight = 64;
  // Pin the socket buffers explicitly (to the engine default) so both
  // modes always run the same locked size regardless of future default
  // changes: auto-tuned buffers are subject to the kernel's window
  // clamp, which intermittently collapses a saturated loopback link into
  // RTO-paced retransmission stalls (see
  // EngineConfig::socket_buffer_bytes) and would make the legacy
  // baseline bimodal.
  config.socket_buffer_bytes = 256 * 1024;
  config.wire_batch_msgs = batched ? 32 : 1;
  config.wire_bulk_reader = batched;
  n.engine = std::make_unique<Engine>(config, std::move(algorithm));
  return n;
}

/// Sums a counter metric across every link (all peers, both dirs).
u64 sum_counter(const Engine& e, const char* name) {
  double total = 0;
  for (const auto& s : e.metrics().snapshot().samples) {
    if (s.name == name) total += s.value;
  }
  return static_cast<u64>(total);
}

/// `hops` engines in a line: source at [0], sink at [hops-1].
RunResult run_case(std::size_t hops, std::size_t payload, bool batched,
                   double secs) {
  RealClock clock;
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < hops; ++i) nodes.push_back(make_node(batched));

  nodes.front().engine->register_app(
      kApp, std::make_shared<apps::BackToBackSource>(payload));
  auto sink = std::make_shared<apps::SinkApp>();
  nodes.back().engine->register_app(kApp, sink);
  for (auto& n : nodes) {
    if (!n.engine->start()) {
      std::fprintf(stderr, "engine start failed\n");
      std::exit(1);
    }
  }
  for (std::size_t i = 0; i + 1 < hops; ++i) {
    nodes[i].relay->add_child(kApp, nodes[i + 1].engine->self());
  }
  nodes.back().relay->set_consume(kApp, true);
  nodes.front().engine->deploy_source(kApp);

  sleep_for(seconds(secs * 0.3));  // dial + settle
  const auto s0 = sink->stats(clock.now());
  u64 sys0 = 0;
  u64 wire0 = 0;
  for (const auto& n : nodes) {
    sys0 += sum_counter(*n.engine, obs::names::kLinkSyscallsTotal);
    wire0 += sum_counter(*n.engine, obs::names::kLinkMessagesTotal);
  }
  const TimePoint t0 = clock.now();
  sleep_for(seconds(secs));
  const auto s1 = sink->stats(clock.now());
  u64 sys1 = 0;
  u64 wire1 = 0;
  for (const auto& n : nodes) {
    sys1 += sum_counter(*n.engine, obs::names::kLinkSyscallsTotal);
    wire1 += sum_counter(*n.engine, obs::names::kLinkMessagesTotal);
  }
  const double elapsed = to_seconds(clock.now() - t0);

  for (auto& n : nodes) n.engine->stop();
  for (auto& n : nodes) n.engine->join();

  RunResult r;
  r.topology = hops == 2 ? "pair" : "chain" + std::to_string(hops);
  r.payload = payload;
  r.batched = batched;
  r.sink_msgs = s1.msgs - s0.msgs;
  r.msgs_per_sec = static_cast<double>(s1.msgs - s0.msgs) / elapsed;
  r.bytes_per_sec = static_cast<double>(s1.bytes - s0.bytes) / elapsed;
  r.syscalls_per_msg =
      wire1 > wire0
          ? static_cast<double>(sys1 - sys0) / static_cast<double>(wire1 - wire0)
          : 0.0;
  return r;
}

void print_result(const RunResult& r) {
  print_row({r.topology, std::to_string(r.payload),
             r.batched ? "batched" : "legacy",
             strf("%.0f", r.msgs_per_sec), mb(r.bytes_per_sec),
             strf("%.3f", r.syscalls_per_msg)},
            12);
}

const RunResult* find(const std::vector<RunResult>& results,
                      const std::string& topology, std::size_t payload,
                      bool batched) {
  for (const auto& r : results) {
    if (r.topology == topology && r.payload == payload &&
        r.batched == batched) {
      return &r;
    }
  }
  return nullptr;
}

void write_json(const std::string& path,
                const std::vector<RunResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"topology\": \"%s\", \"payload_bytes\": %zu, "
                 "\"mode\": \"%s\", \"msgs_per_sec\": %.1f, "
                 "\"mbytes_per_sec\": %.3f, \"syscalls_per_msg\": %.4f, "
                 "\"sink_msgs\": %llu}%s\n",
                 r.topology.c_str(), r.payload,
                 r.batched ? "batched" : "legacy", r.msgs_per_sec,
                 r.bytes_per_sec / 1e6, r.syscalls_per_msg,
                 static_cast<unsigned long long>(r.sink_msgs),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  const RunResult* legacy = find(results, "chain4", 1024, false);
  const RunResult* batched = find(results, "chain4", 1024, true);
  if (legacy != nullptr && batched != nullptr &&
      legacy->msgs_per_sec > 0) {
    std::fprintf(f,
                 ",\n  \"summary\": {\"chain_1kb_speedup\": %.2f, "
                 "\"chain_1kb_batched_syscalls_per_msg\": %.4f, "
                 "\"chain_1kb_legacy_syscalls_per_msg\": %.4f}",
                 batched->msgs_per_sec / legacy->msgs_per_sec,
                 batched->syscalls_per_msg, legacy->syscalls_per_msg);
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_throughput.json";
  double secs = 1.0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--secs") == 0 && i + 1 < argc) {
      secs = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out path] [--secs s] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  print_header(
      "Wire-path batching: loopback pair + 4-node chain throughput",
      "batched scatter-gather sends + bulk decode vs the legacy "
      "3-syscalls-per-message path (DESIGN.md §8)");
  print_row({"topology", "payload", "mode", "msgs/s", "MB/s", "sys/msg"}, 12);

  std::vector<RunResult> results;
  const std::vector<std::size_t> payloads =
      smoke ? std::vector<std::size_t>{1024}
            : std::vector<std::size_t>{64, 1024, 65536};
  const double window = smoke ? 0.4 : secs;
  for (const std::size_t hops : {std::size_t{2}, std::size_t{4}}) {
    if (smoke && hops == 2) continue;
    for (const std::size_t payload : payloads) {
      for (const bool batched : {false, true}) {
        results.push_back(run_case(hops, payload, batched, window));
        print_result(results.back());
      }
    }
  }

  write_json(out, results);

  const RunResult* legacy = find(results, "chain4", 1024, false);
  const RunResult* batched = find(results, "chain4", 1024, true);
  if (legacy != nullptr && batched != nullptr && legacy->msgs_per_sec > 0) {
    std::printf("chain @ 1 KB: %.2fx msgs/s, syscalls/msg %.3f -> %.3f\n",
                batched->msgs_per_sec / legacy->msgs_per_sec,
                legacy->syscalls_per_msg, batched->syscalls_per_msg);
    if (smoke && batched->syscalls_per_msg >= 1.0) {
      std::fprintf(stderr,
                   "FAIL: batched path did not beat 1 syscall/message\n");
      return 1;
    }
  }
  return 0;
}
