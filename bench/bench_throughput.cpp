// Wire-path batching ablation (DESIGN.md §8): loopback pair and relay
// chain, back-to-back traffic, measured with the batched zero-copy wire
// path (scatter-gather sends + FrameReader bulk decode, the default)
// and with the legacy per-message knobs (`wire_batch_msgs = 1`,
// `wire_bulk_reader = false`) — the pre-change syscall pattern, kept as
// a live configuration precisely so this comparison stays honest.
//
// Reports messages/s and MB/s from the terminal sink, plus
// syscalls-per-wire-message summed over every link of every engine
// (iov_link_syscalls_total / iov_link_messages_total). Emits a JSON
// artifact (default BENCH_throughput.json; see
// tools/run_bench_throughput.sh).
//
// Each configuration is run several times (3 by default, 1 in smoke);
// the JSON keeps the historical field names for the means and adds
// `*_sd` run-to-run standard deviations plus `runs`. The measured
// window scales with payload size (4x at 64 KB) so the per-run message
// count stays high enough for a stable estimate at every tier. Batched
// rows also record `pool_hit_rate` — the slab pool's share of recycled
// large-frame payload acquisitions over the window (~1.0 means zero
// per-message payload allocations; DESIGN.md §8).
//
// Flags:
//   --out <path>   JSON output path (default BENCH_throughput.json)
//   --secs <s>     base measured window per run (default 1.0)
//   --smoke        ~10 s CI variant: chain @ 1 KB + 64 KB, one short
//                  window each; exits non-zero if the batched path fails
//                  to beat one syscall per message at 1 KB or falls more
//                  than 15% behind the legacy path at 64 KB (the
//                  regression this fast path exists to prevent).
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "algorithm/relay.h"
#include "apps/sink.h"
#include "apps/source.h"
#include "bench_util.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "obs/metric_names.h"

namespace {

using namespace iov;         // NOLINT
using namespace iov::bench;  // NOLINT
using engine::Engine;
using engine::EngineConfig;

constexpr u32 kApp = 1;

struct RunResult {
  std::string topology;
  std::size_t payload = 0;
  bool batched = false;
  double msgs_per_sec = 0;
  double bytes_per_sec = 0;
  double syscalls_per_msg = 0;
  u64 sink_msgs = 0;
  /// Share of large-frame slab acquisitions served from the freelist
  /// during the window, summed over every engine; negative when the
  /// config never touched the pool (small frames or legacy mode).
  double pool_hit_rate = -1.0;
  // Aggregation across repeats (mean fields above, spread here).
  int runs = 1;
  double msgs_per_sec_sd = 0;
  double bytes_per_sec_sd = 0;
};

struct Node {
  std::unique_ptr<Engine> engine;
  RelayAlgorithm* relay = nullptr;
};

Node make_node(bool batched) {
  auto algorithm = std::make_unique<RelayAlgorithm>();
  Node n;
  n.relay = algorithm.get();
  EngineConfig config;
  config.recv_buffer_msgs = 1024;
  config.send_buffer_msgs = 1024;
  // Deep switch rounds so sources and relays hand the sender thread
  // enough backlog for full-size flushes.
  config.default_switch_weight = 64;
  // Pin the socket buffers explicitly (to the engine default) so both
  // modes always run the same locked size regardless of future default
  // changes: auto-tuned buffers are subject to the kernel's window
  // clamp, which intermittently collapses a saturated loopback link into
  // RTO-paced retransmission stalls (see
  // EngineConfig::socket_buffer_bytes) and would make the legacy
  // baseline bimodal.
  config.socket_buffer_bytes = 256 * 1024;
  config.wire_batch_msgs = batched ? 32 : 1;
  config.wire_bulk_reader = batched;
  // The legacy rows are the full pre-change configuration: per-message
  // syscalls AND the thread-per-link substrate. The reactor ignores
  // wire_bulk_reader (it always runs the bulk decoder), so leaving it
  // on the default substrate would silently re-batch the reads this
  // row exists to ablate.
  config.reactor_threads = batched ? -1 : 0;
  n.engine = std::make_unique<Engine>(config, std::move(algorithm));
  return n;
}

/// Sums a counter metric across every link (all peers, both dirs).
u64 sum_counter(const Engine& e, const char* name) {
  double total = 0;
  for (const auto& s : e.metrics().snapshot().samples) {
    if (s.name == name) total += s.value;
  }
  return static_cast<u64>(total);
}

/// Sums a counter, keeping only samples carrying `key`=`value`.
u64 sum_counter_labeled(const Engine& e, const char* name, const char* key,
                        const char* value) {
  double total = 0;
  for (const auto& s : e.metrics().snapshot().samples) {
    if (s.name != name) continue;
    for (const auto& kv : s.labels) {
      if (kv.first == key && kv.second == value) {
        total += s.value;
        break;
      }
    }
  }
  return static_cast<u64>(total);
}

/// `hops` engines in a line: source at [0], sink at [hops-1].
RunResult run_case(std::size_t hops, std::size_t payload, bool batched,
                   double secs) {
  RealClock clock;
  std::vector<Node> nodes;
  for (std::size_t i = 0; i < hops; ++i) nodes.push_back(make_node(batched));

  nodes.front().engine->register_app(
      kApp, std::make_shared<apps::BackToBackSource>(payload));
  auto sink = std::make_shared<apps::SinkApp>();
  nodes.back().engine->register_app(kApp, sink);
  for (auto& n : nodes) {
    if (!n.engine->start()) {
      std::fprintf(stderr, "engine start failed\n");
      std::exit(1);
    }
  }
  for (std::size_t i = 0; i + 1 < hops; ++i) {
    nodes[i].relay->add_child(kApp, nodes[i + 1].engine->self());
  }
  nodes.back().relay->set_consume(kApp, true);
  nodes.front().engine->deploy_source(kApp);

  sleep_for(seconds(secs * 0.3));  // dial + settle
  const auto s0 = sink->stats(clock.now());
  u64 sys0 = 0;
  u64 wire0 = 0;
  u64 hit0 = 0;
  u64 miss0 = 0;
  for (const auto& n : nodes) {
    sys0 += sum_counter(*n.engine, obs::names::kLinkSyscallsTotal);
    wire0 += sum_counter(*n.engine, obs::names::kLinkMessagesTotal);
    hit0 += sum_counter_labeled(*n.engine, obs::names::kPoolSlabAcquiresTotal,
                                "result", "hit");
    miss0 += sum_counter_labeled(*n.engine, obs::names::kPoolSlabAcquiresTotal,
                                 "result", "miss");
  }
  const TimePoint t0 = clock.now();
  sleep_for(seconds(secs));
  const auto s1 = sink->stats(clock.now());
  u64 sys1 = 0;
  u64 wire1 = 0;
  u64 hit1 = 0;
  u64 miss1 = 0;
  for (const auto& n : nodes) {
    sys1 += sum_counter(*n.engine, obs::names::kLinkSyscallsTotal);
    wire1 += sum_counter(*n.engine, obs::names::kLinkMessagesTotal);
    hit1 += sum_counter_labeled(*n.engine, obs::names::kPoolSlabAcquiresTotal,
                                "result", "hit");
    miss1 += sum_counter_labeled(*n.engine, obs::names::kPoolSlabAcquiresTotal,
                                 "result", "miss");
  }
  const double elapsed = to_seconds(clock.now() - t0);

  for (auto& n : nodes) n.engine->stop();
  for (auto& n : nodes) n.engine->join();

  RunResult r;
  r.topology = hops == 2 ? "pair" : "chain" + std::to_string(hops);
  r.payload = payload;
  r.batched = batched;
  r.sink_msgs = s1.msgs - s0.msgs;
  r.msgs_per_sec = static_cast<double>(s1.msgs - s0.msgs) / elapsed;
  r.bytes_per_sec = static_cast<double>(s1.bytes - s0.bytes) / elapsed;
  r.syscalls_per_msg =
      wire1 > wire0
          ? static_cast<double>(sys1 - sys0) / static_cast<double>(wire1 - wire0)
          : 0.0;
  const u64 acquires = (hit1 - hit0) + (miss1 - miss0);
  if (acquires > 0) {
    r.pool_hit_rate = static_cast<double>(hit1 - hit0) /
                      static_cast<double>(acquires);
  }
  return r;
}

/// The measured window for one run: large payloads move ~65x the bytes
/// per message, so at the same wall time the 64 KB rows used to settle
/// on only a few thousand messages — too few for a stable estimate.
double window_for(std::size_t payload, double base_secs) {
  return payload >= 64 * 1024 ? base_secs * 4 : base_secs;
}

/// Runs a configuration `reps` times and folds the runs into one result:
/// means under the historical field names, run-to-run stddev alongside.
RunResult run_config(std::size_t hops, std::size_t payload, bool batched,
                     double base_secs, int reps) {
  std::vector<RunResult> runs;
  for (int i = 0; i < reps; ++i) {
    runs.push_back(run_case(hops, payload, batched,
                            window_for(payload, base_secs)));
  }
  RunResult agg = runs.front();
  if (runs.size() > 1) {
    double sum_m = 0;
    double sum_b = 0;
    double sum_s = 0;
    double hit_num = 0;
    int hit_n = 0;
    u64 msgs = 0;
    for (const auto& r : runs) {
      sum_m += r.msgs_per_sec;
      sum_b += r.bytes_per_sec;
      sum_s += r.syscalls_per_msg;
      msgs += r.sink_msgs;
      if (r.pool_hit_rate >= 0) {
        hit_num += r.pool_hit_rate;
        ++hit_n;
      }
    }
    const double n = static_cast<double>(runs.size());
    agg.msgs_per_sec = sum_m / n;
    agg.bytes_per_sec = sum_b / n;
    agg.syscalls_per_msg = sum_s / n;
    agg.sink_msgs = msgs;
    agg.pool_hit_rate = hit_n > 0 ? hit_num / hit_n : -1.0;
    double var_m = 0;
    double var_b = 0;
    for (const auto& r : runs) {
      var_m += (r.msgs_per_sec - agg.msgs_per_sec) *
               (r.msgs_per_sec - agg.msgs_per_sec);
      var_b += (r.bytes_per_sec - agg.bytes_per_sec) *
               (r.bytes_per_sec - agg.bytes_per_sec);
    }
    agg.msgs_per_sec_sd = std::sqrt(var_m / (n - 1));
    agg.bytes_per_sec_sd = std::sqrt(var_b / (n - 1));
  }
  agg.runs = static_cast<int>(runs.size());
  return agg;
}

void print_result(const RunResult& r) {
  print_row({r.topology, std::to_string(r.payload),
             r.batched ? "batched" : "legacy",
             strf("%.0f", r.msgs_per_sec), mb(r.bytes_per_sec),
             strf("%.3f", r.syscalls_per_msg),
             r.pool_hit_rate >= 0 ? strf("%.3f", r.pool_hit_rate) : "-",
             r.runs > 1 ? strf("%.1f%%", 100.0 * r.bytes_per_sec_sd /
                                             r.bytes_per_sec)
                        : "-"},
            12);
}

const RunResult* find(const std::vector<RunResult>& results,
                      const std::string& topology, std::size_t payload,
                      bool batched) {
  for (const auto& r : results) {
    if (r.topology == topology && r.payload == payload &&
        r.batched == batched) {
      return &r;
    }
  }
  return nullptr;
}

void write_json(const std::string& path,
                const std::vector<RunResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"throughput\",\n  \"runs\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"topology\": \"%s\", \"payload_bytes\": %zu, "
                 "\"mode\": \"%s\", \"msgs_per_sec\": %.1f, "
                 "\"mbytes_per_sec\": %.3f, \"syscalls_per_msg\": %.4f, "
                 "\"sink_msgs\": %llu, \"runs\": %d, "
                 "\"msgs_per_sec_sd\": %.1f, \"mbytes_per_sec_sd\": %.3f",
                 r.topology.c_str(), r.payload,
                 r.batched ? "batched" : "legacy", r.msgs_per_sec,
                 r.bytes_per_sec / 1e6, r.syscalls_per_msg,
                 static_cast<unsigned long long>(r.sink_msgs), r.runs,
                 r.msgs_per_sec_sd, r.bytes_per_sec_sd / 1e6);
    if (r.pool_hit_rate >= 0) {
      std::fprintf(f, ", \"pool_hit_rate\": %.4f", r.pool_hit_rate);
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]");
  const RunResult* legacy = find(results, "chain4", 1024, false);
  const RunResult* batched = find(results, "chain4", 1024, true);
  const RunResult* legacy64 = find(results, "chain4", 65536, false);
  const RunResult* batched64 = find(results, "chain4", 65536, true);
  std::string summary;
  if (legacy != nullptr && batched != nullptr && legacy->msgs_per_sec > 0) {
    summary += strf(
        "\"chain_1kb_speedup\": %.2f, "
        "\"chain_1kb_batched_syscalls_per_msg\": %.4f, "
        "\"chain_1kb_legacy_syscalls_per_msg\": %.4f",
        batched->msgs_per_sec / legacy->msgs_per_sec,
        batched->syscalls_per_msg, legacy->syscalls_per_msg);
  }
  if (legacy64 != nullptr && batched64 != nullptr &&
      legacy64->bytes_per_sec > 0) {
    if (!summary.empty()) summary += ", ";
    summary += strf("\"chain_64kb_speedup\": %.2f",
                    batched64->bytes_per_sec / legacy64->bytes_per_sec);
    if (batched64->pool_hit_rate >= 0) {
      summary += strf(", \"chain_64kb_pool_hit_rate\": %.4f",
                      batched64->pool_hit_rate);
    }
  }
  if (!summary.empty()) {
    std::fprintf(f, ",\n  \"summary\": {%s}", summary.c_str());
  }
  std::fprintf(f, "\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string out = "BENCH_throughput.json";
  double secs = 1.0;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else if (std::strcmp(argv[i], "--secs") == 0 && i + 1 < argc) {
      secs = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--out path] [--secs s] [--smoke]\n",
                   argv[0]);
      return 2;
    }
  }

  print_header(
      "Wire-path batching: loopback pair + 4-node chain throughput",
      "batched scatter-gather sends + bulk decode vs the legacy "
      "3-syscalls-per-message path (DESIGN.md §8)");
  print_row({"topology", "payload", "mode", "msgs/s", "MB/s", "sys/msg",
             "pool-hit", "sd"},
            12);

  std::vector<RunResult> results;
  const std::vector<std::size_t> payloads =
      smoke ? std::vector<std::size_t>{1024, 65536}
            : std::vector<std::size_t>{64, 1024, 65536};
  const double window = smoke ? 0.4 : secs;
  const int reps = smoke ? 1 : 3;
  for (const std::size_t hops : {std::size_t{2}, std::size_t{4}}) {
    if (smoke && hops == 2) continue;
    for (const std::size_t payload : payloads) {
      for (const bool batched : {false, true}) {
        results.push_back(run_config(hops, payload, batched, window, reps));
        print_result(results.back());
      }
    }
  }

  write_json(out, results);

  bool fail = false;
  const RunResult* legacy = find(results, "chain4", 1024, false);
  const RunResult* batched = find(results, "chain4", 1024, true);
  if (legacy != nullptr && batched != nullptr && legacy->msgs_per_sec > 0) {
    std::printf("chain @ 1 KB: %.2fx msgs/s, syscalls/msg %.3f -> %.3f\n",
                batched->msgs_per_sec / legacy->msgs_per_sec,
                legacy->syscalls_per_msg, batched->syscalls_per_msg);
    if (smoke && batched->syscalls_per_msg >= 1.0) {
      std::fprintf(stderr,
                   "FAIL: batched path did not beat 1 syscall/message\n");
      fail = true;
    }
  }
  const RunResult* legacy64 = find(results, "chain4", 65536, false);
  const RunResult* batched64 = find(results, "chain4", 65536, true);
  if (legacy64 != nullptr && batched64 != nullptr &&
      legacy64->bytes_per_sec > 0) {
    std::printf("chain @ 64 KB: %.2fx MB/s, pool hit rate %.3f\n",
                batched64->bytes_per_sec / legacy64->bytes_per_sec,
                batched64->pool_hit_rate);
    // The perf guard for the regression this PR fixed: the batched path
    // must stay at least in the legacy path's ballpark at 64 KB. The
    // 0.85 margin absorbs single-run noise on a loaded CI core — before
    // the slab-pool fast path this ratio sat around 0.8, so the guard
    // still catches a reintroduction.
    if (smoke && batched64->bytes_per_sec < 0.85 * legacy64->bytes_per_sec) {
      std::fprintf(stderr,
                   "FAIL: batched 64 KB throughput %.1f MB/s fell below "
                   "0.85x legacy (%.1f MB/s)\n",
                   batched64->bytes_per_sec / 1e6,
                   legacy64->bytes_per_sec / 1e6);
      fail = true;
    }
  }
  return fail ? 1 : 0;
}
