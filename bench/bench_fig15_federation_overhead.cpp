// Fig. 15 — control overhead and bandwidth during one federation session
// on 16 nodes: (a) per-node sAware vs sFederate message overhead;
// (b) per-node total traffic, sorted by the node's bandwidth
// availability, showing that untouched nodes stay untouched.
#include <algorithm>

#include "bench_util.h"
#include "federation/scenario.h"

namespace {

using namespace iov;               // NOLINT
using namespace iov::bench;       // NOLINT
using namespace iov::federation;  // NOLINT

}  // namespace

int main() {
  print_header(
      "Fig 15: per-node control overhead and bandwidth, one federation "
      "session on 16 nodes (simulated substrate, sFlow)",
      "(a) sAware overhead dominates sFederate, which stays small; "
      "(b) several nodes are left untouched by the session");

  FederationScenarioConfig config;
  config.strategy = FederationStrategy::kSFlow;
  config.nodes = 16;
  config.universe_types = 6;
  config.seed = 15;
  config.requests = 1;
  config.requirement_length = 6;
  config.tail = seconds(30.0);
  const auto result = run_federation_scenario(config);

  std::printf("\n-- (a) per-node control message overhead (bytes sent) --\n");
  print_row({"node", "sAware", "sFederate", "capacity KB/s"}, 18);
  u64 aware_total = 0;
  u64 federate_total = 0;
  for (const auto& traffic : result.node_traffic) {
    const u64 aware = result.aware_bytes_per_node.count(traffic.id)
                          ? result.aware_bytes_per_node.at(traffic.id)
                          : 0;
    const u64 federate = result.federate_bytes_per_node.count(traffic.id)
                             ? result.federate_bytes_per_node.at(traffic.id)
                             : 0;
    aware_total += aware;
    federate_total += federate;
    print_row({traffic.id.to_string(), strf("%llu", (unsigned long long)aware),
               strf("%llu", (unsigned long long)federate),
               kb(traffic.capacity)},
              18);
  }
  std::printf("totals: sAware %llu B, sFederate(+ack+path) %llu B\n",
              static_cast<unsigned long long>(aware_total),
              static_cast<unsigned long long>(federate_total));

  std::printf(
      "\n-- (b) per-node total traffic, sorted by bandwidth "
      "availability --\n");
  auto sorted = result.node_traffic;
  std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
    return a.capacity > b.capacity;
  });
  print_row({"node", "capacity KB/s", "sent B", "received B"}, 18);
  std::size_t untouched = 0;
  for (const auto& traffic : sorted) {
    print_row({traffic.id.to_string(), kb(traffic.capacity),
               strf("%llu", (unsigned long long)traffic.sent_bytes),
               strf("%llu", (unsigned long long)traffic.received_bytes)},
              18);
    // "Untouched" in the data-plane sense: only control chatter.
    if (traffic.sent_bytes + traffic.received_bytes < 20000) ++untouched;
  }
  std::printf(
      "\n%zu of %zu nodes were essentially untouched by the session "
      "(paper: seven of 16).\n",
      untouched, sorted.size());
  return 0;
}
