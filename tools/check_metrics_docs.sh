#!/usr/bin/env bash
# Docs-consistency check: every metric name registered in
# src/obs/metric_names.h must be documented as a table row in
# docs/METRICS.md, and every metric the docs table documents must exist
# in the header. Run from anywhere:
#
#   tools/check_metrics_docs.sh [repo_root]
#
# Wired up as the `check_metrics_docs` ctest.
set -euo pipefail

ROOT=${1:-$(cd "$(dirname "$0")/.." && pwd)}
HEADER="$ROOT/src/obs/metric_names.h"
DOC="$ROOT/docs/METRICS.md"

fail=0
for f in "$HEADER" "$DOC"; do
  if [ ! -f "$f" ]; then
    echo "check_metrics_docs: missing $f" >&2
    fail=1
  fi
done
[ "$fail" -eq 0 ] || exit 1

# Names in code: every quoted "iov_..." string constant in the header.
code_names=$(grep -o '"iov_[a-z0-9_]*"' "$HEADER" | tr -d '"' | sort -u)

# Names in docs: table rows whose first cell is the backticked name
# (`| \`iov_...\` | ...`). Prose mentions don't count — a metric is only
# "documented" once it has its reference-table row.
doc_names=$(grep -o '^| `iov_[a-z0-9_]*`' "$DOC" | grep -o 'iov_[a-z0-9_]*' \
            | sort -u)

undocumented=$(comm -23 <(echo "$code_names") <(echo "$doc_names"))
phantom=$(comm -13 <(echo "$code_names") <(echo "$doc_names"))

if [ -n "$undocumented" ]; then
  echo "check_metrics_docs: registered in $HEADER but missing a table row" \
       "in $DOC:" >&2
  echo "$undocumented" | sed 's/^/  /' >&2
  fail=1
fi
if [ -n "$phantom" ]; then
  echo "check_metrics_docs: documented in $DOC but not registered in" \
       "$HEADER:" >&2
  echo "$phantom" | sed 's/^/  /' >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  count=$(echo "$code_names" | wc -l)
  echo "check_metrics_docs: OK ($count metrics, docs and code agree)"
fi
exit "$fail"
