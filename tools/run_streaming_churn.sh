#!/usr/bin/env bash
# Regenerates the committed BENCH_streaming.json at the repo root: the
# flash-crowd streaming churn scenario at three churn rates on the
# deterministic simulator (rejoin percentiles, per-viewer gap seconds,
# tree depth/degree curves — see docs/SCENARIOS.md).
#
#   tools/run_streaming_churn.sh                  # Release build, full run
#   tools/run_streaming_churn.sh --smoke          # fast CI variant
#   tools/run_streaming_churn.sh --build-dir <d>  # reuse an existing
#                                                 # configured build tree
#
# With --smoke the artifact goes to the build tree, not the repo root, so
# a quick check never clobbers the committed full-size numbers. The
# `run_streaming_churn` ctest (label: slow) runs this script in smoke
# mode against the current build directory.
set -euo pipefail
cd "$(dirname "$0")/.."

SMOKE=0
BUILD=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) SMOKE=1 ;;
    --build-dir) BUILD=$2; shift ;;
    *) echo "usage: $0 [--smoke] [--build-dir <dir>]" >&2; exit 2 ;;
  esac
  shift
done

if [[ -z "$BUILD" ]]; then
  BUILD=build-release
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi
cmake --build "$BUILD" -j "$(nproc)" --target bench_streaming

if [[ "$SMOKE" == 1 ]]; then
  "$BUILD"/bench/bench_streaming --smoke \
      --out "$BUILD"/BENCH_streaming_smoke.json
else
  "$BUILD"/bench/bench_streaming --out BENCH_streaming.json
fi
