// iov_observerd — the observer as a standalone daemon with an
// interactive control console (the headless stand-in for the paper's
// Windows GUI).
//
//   iov_observerd [--port N] [--trace FILE] [--subset K]
//
// Console commands (one per line on stdin):
//   list                         alive nodes and their last report
//   dot                          Graphviz dump of the overlay topology
//   traces [N]                   last N trace records (default 10)
//   metrics                      Prometheus text export of all node +
//                                observer metrics (docs/METRICS.md)
//   metrics-json                 the same aggregate as a JSON array
//   metrics-csv                  the same aggregate as CSV
//   report <node>                request an immediate report (feeds the
//                                report round-trip histogram)
//   deploy <node> <app>          deploy an application source
//   stop-source <node> <app>     terminate an application source
//   join <node> <app> [hint]     ask a node to join a session
//   leave <node> <app>           ask a node to leave a session
//   bw <node> <scope> <bps> [peer]
//                                scope: total|up|down|link-up|link-down
//   control <node> <p0> <p1> [text]   algorithm-specific control message
//   kill <node>                  terminate a node
//   sever <node> <peer>          tear down the node's link to peer as if
//                                it had failed (chaos injection)
//   loss <node> <peer> <p>       drop fraction p of messages node sends
//                                to peer (0 disables)
//   quit                         shut the observer down
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

#include "common/strings.h"
#include "engine/engine.h"
#include "observer/observer.h"

namespace {

using namespace iov;  // NOLINT

std::optional<i32> parse_scope(const std::string& s) {
  if (s == "total") return engine::kBwNodeTotal;
  if (s == "up") return engine::kBwNodeUp;
  if (s == "down") return engine::kBwNodeDown;
  if (s == "link-up") return engine::kBwLinkUp;
  if (s == "link-down") return engine::kBwLinkDown;
  return std::nullopt;
}

void cmd_list(const observer::Observer& obs) {
  for (const auto& info : obs.nodes()) {
    std::printf("%-22s %-5s", info.id.to_string().c_str(),
                info.alive ? "alive" : "dead");
    if (info.last_report) {
      const auto& r = *info.last_report;
      std::printf(" up=%zu down=%zu src=%zu joined=%zu  %s",
                  r.upstreams.size(), r.downstreams.size(),
                  r.source_apps.size(), r.joined_apps.size(),
                  r.algorithm_status.c_str());
    }
    std::printf("\n");
  }
  std::printf("%zu alive\n", obs.alive_count());
}

}  // namespace

int main(int argc, char** argv) {
  observer::ObserverConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) std::exit(2);
      return argv[++i];
    };
    if (arg == "--port") {
      config.port = static_cast<u16>(std::atoi(next()));
    } else if (arg == "--trace") {
      config.trace_path = next();
    } else if (arg == "--subset") {
      config.bootstrap_subset = static_cast<std::size_t>(std::atoi(next()));
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--trace FILE] [--subset K]\n",
                   argv[0]);
      return 2;
    }
  }

  observer::Observer obs(config);
  if (!obs.start()) {
    std::fprintf(stderr, "failed to bind port %u\n", config.port);
    return 1;
  }
  std::printf("observer listening at %s — type 'help' for commands\n",
              obs.address().to_string().c_str());
  std::fflush(stdout);

  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string cmd;
    in >> cmd;
    if (cmd.empty()) continue;

    const auto node_arg = [&]() -> std::optional<NodeId> {
      std::string text;
      in >> text;
      const auto id = NodeId::parse(text);
      if (!id) std::printf("bad node id '%s'\n", text.c_str());
      return id;
    };
    const auto report = [&](bool ok) {
      std::printf(ok ? "ok\n" : "failed (node connected?)\n");
    };

    if (cmd == "quit" || cmd == "exit") {
      break;
    } else if (cmd == "help") {
      std::printf(
          "list | dot | traces [N] | metrics | metrics-json | metrics-csv | "
          "report <node> | deploy <node> <app> | stop-source "
          "<node> <app> | join <node> <app> [hint] | leave <node> <app> | "
          "bw <node> total|up|down|link-up|link-down <bps> [peer] | "
          "control <node> <p0> <p1> [text] | kill <node> | "
          "sever <node> <peer> | loss <node> <peer> <p> | quit\n");
    } else if (cmd == "list") {
      cmd_list(obs);
    } else if (cmd == "dot") {
      std::printf("%s", obs.topology_dot().c_str());
    } else if (cmd == "metrics") {
      std::printf("%s", obs.prometheus_text().c_str());
    } else if (cmd == "metrics-json") {
      std::printf("%s", obs.metrics_json().c_str());
    } else if (cmd == "metrics-csv") {
      std::printf("%s", obs.metrics_csv().c_str());
    } else if (cmd == "report") {
      const auto id = node_arg();
      if (id) report(obs.request_report(*id));
    } else if (cmd == "traces") {
      std::size_t n = 10;
      in >> n;
      const auto traces = obs.traces();
      const std::size_t start = traces.size() > n ? traces.size() - n : 0;
      for (std::size_t i = start; i < traces.size(); ++i) {
        std::printf("[%s] %s\n", traces[i].node.to_string().c_str(),
                    traces[i].text.c_str());
      }
    } else if (cmd == "deploy" || cmd == "stop-source" || cmd == "leave") {
      const auto id = node_arg();
      u32 app = 0;
      in >> app;
      if (!id) continue;
      if (cmd == "deploy") {
        report(obs.deploy(*id, app));
      } else if (cmd == "stop-source") {
        report(obs.terminate_source(*id, app));
      } else {
        report(obs.leave_app(*id, app));
      }
    } else if (cmd == "join") {
      const auto id = node_arg();
      u32 app = 0;
      std::string hint;
      in >> app >> hint;
      if (id) report(obs.join_app(*id, app, hint));
    } else if (cmd == "bw") {
      const auto id = node_arg();
      std::string scope_text;
      double rate = 0.0;
      std::string peer_text;
      in >> scope_text >> rate >> peer_text;
      const auto scope = parse_scope(scope_text);
      if (!id || !scope) {
        std::printf("bad scope '%s'\n", scope_text.c_str());
        continue;
      }
      NodeId peer;
      if (!peer_text.empty()) {
        const auto parsed = NodeId::parse(peer_text);
        if (parsed) peer = *parsed;
      }
      report(obs.set_bandwidth(*id, *scope, rate, peer));
    } else if (cmd == "control") {
      const auto id = node_arg();
      i32 p0 = 0;
      i32 p1 = 0;
      std::string text;
      in >> p0 >> p1;
      std::getline(in, text);
      if (id) {
        report(obs.send_control(*id, MsgType::kControl, p0, p1,
                                trim(text)));
      }
    } else if (cmd == "kill") {
      const auto id = node_arg();
      if (id) report(obs.terminate_node(*id));
    } else if (cmd == "sever") {
      const auto id = node_arg();
      const auto peer = node_arg();
      if (id && peer) report(obs.sever_link(*id, *peer));
    } else if (cmd == "loss") {
      const auto id = node_arg();
      const auto peer = node_arg();
      double p = 0.0;
      in >> p;
      if (id && peer) report(obs.set_loss(*id, *peer, p));
    } else {
      std::printf("unknown command '%s' (try 'help')\n", cmd.c_str());
    }
    std::fflush(stdout);
  }

  obs.stop();
  obs.join();
  return 0;
}
