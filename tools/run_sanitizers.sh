#!/usr/bin/env bash
# Builds the whole tree twice — once under ASan+UBSan, once under TSan —
# and runs the full ctest suite in each (README "Verification recipe").
#
#   tools/run_sanitizers.sh [address|thread]   # default: both
set -euo pipefail
cd "$(dirname "$0")/.."

FLAVOURS=${1:-"address thread"}
JOBS=$(nproc)

for flavour in $FLAVOURS; do
  BUILD=build-${flavour/address/asan}
  BUILD=${BUILD/thread/tsan}
  echo "=== $flavour sanitizer -> $BUILD ==="
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DIOV_SANITIZE="$flavour" >/dev/null
  cmake --build "$BUILD" -j "$JOBS"
  # Second-guess timer slop under sanitizer overhead, not correctness:
  # the suites' own timing tolerances already absorb it. The scenario
  # tier (churn harness, streaming-churn smoke) runs here too; only the
  # minutes-scale `slow` runs (the 10k-viewer determinism test) are
  # excluded — sanitizer overhead would push them past any sane timeout.
  # The reactor-path tier-1 tests (test_reactor and every real-socket
  # engine suite, which default to the shared epoll reactor) are part of
  # this run: the thread flavour is the proof that the lock-free
  # per-link state machines race neither each other nor the engine.
  (cd "$BUILD" && ctest --output-on-failure -LE slow -j "$JOBS")
done
echo "sanitizer runs complete: $FLAVOURS"
