#!/usr/bin/env bash
# Collects per-node local trace files into one time-sorted log — the
# paper's "iOverlay provides scripts to collect them after algorithm
# execution" (§2.2). Nodes write local traces when launched with a
# local_trace_path (iov_node --trace-file PATH).
#
#   tools/collect_traces.sh <output> <trace-file>...
set -euo pipefail
if [ $# -lt 2 ]; then
  echo "usage: $0 <output> <trace-file>..." >&2
  exit 2
fi
OUT=$1
shift
# Every line starts with "[   seconds] node ..."; a lexicographic sort on
# the fixed-width timestamp field is a chronological merge.
cat "$@" | sort -k1,1 > "$OUT"
echo "merged $# trace files, $(wc -l < "$OUT") records -> $OUT"
