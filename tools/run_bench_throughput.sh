#!/usr/bin/env bash
# Builds bench_throughput in Release and regenerates the committed
# BENCH_throughput.json at the repo root: batched wire path vs the
# legacy per-message path on a loopback pair and a 4-node relay chain
# (DESIGN.md §8).
#
#   tools/run_bench_throughput.sh [--secs <s>]   # default 1.0 s/config
set -euo pipefail
cd "$(dirname "$0")/.."

SECS=1.0
if [[ "${1:-}" == "--secs" && -n "${2:-}" ]]; then SECS=$2; fi

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-release -j "$(nproc)" --target bench_throughput
./build-release/bench/bench_throughput --secs "$SECS" --out BENCH_throughput.json
