#!/usr/bin/env bash
# Demo deployment script (the paper's "by taking advantage of the
# deployment scripts in iOverlay, we are able to deploy, run, terminate
# and collect data from all nodes, with one command for each operation"):
# spins up an observer plus a small chain of virtualized relay nodes as
# real processes on this machine, deploys a stream through the observer's
# console protocol, shows the topology, and tears everything down.
#
#   tools/run_local_overlay.sh [build_dir] [nodes] [--chaos plan_file]
#
# With --chaos, the kill/sever/loss/slow-link lines of the FaultPlan DSL
# (DESIGN.md §7) are replayed against the live overlay through the
# observer console: node names n1..nN bind to the spawned processes.
set -euo pipefail

BUILD=build
NODES=4
CHAOS_PLAN=""
POSITIONAL=0
while [ $# -gt 0 ]; do
  case "$1" in
    --chaos)
      CHAOS_PLAN=$2; shift 2 ;;
    *)
      POSITIONAL=$((POSITIONAL + 1))
      if [ "$POSITIONAL" -eq 1 ]; then BUILD=$1; else NODES=$1; fi
      shift ;;
  esac
done
if [ -n "$CHAOS_PLAN" ] && [ ! -f "$CHAOS_PLAN" ]; then
  echo "chaos plan '$CHAOS_PLAN' not found" >&2
  exit 2
fi

OBS_PORT=7800
BASE_PORT=7810
APP=1

cleanup() {
  kill "${PIDS[@]}" "${OBS_PID}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

mkfifo /tmp/iov_obs_ctl.$$ || true
# Keep the console's stdin open for the daemon's whole life.
(exec 3<>/tmp/iov_obs_ctl.$$; "$BUILD"/tools/iov_observerd --port $OBS_PORT <&3 &
 echo $! > /tmp/iov_obs_pid.$$) &
sleep 0.5
OBS_PID=$(cat /tmp/iov_obs_pid.$$)
echo "observer pid $OBS_PID at 127.0.0.1:$OBS_PORT"

PIDS=()
for i in $(seq 1 "$NODES"); do
  PORT=$((BASE_PORT + i))
  ARGS=(--observer 127.0.0.1:$OBS_PORT --port $PORT)
  if [ "$i" -eq 1 ]; then
    ARGS+=(--source $APP:5000)
  fi
  if [ "$i" -eq "$NODES" ]; then
    ARGS+=(--sink $APP)
  fi
  "$BUILD"/tools/iov_node "${ARGS[@]}" &
  PIDS+=($!)
done
sleep 1

CTL() { echo "$1" > /tmp/iov_obs_ctl.$$; }

# Maps a plan node name (n1..nN, or a literal ip:port) to its address.
addr_of() {
  case "$1" in
    n*) echo "127.0.0.1:$((BASE_PORT + ${1#n}))" ;;
    *) echo "$1" ;;
  esac
}

# Replays the kill/sever/loss/slow-link lines of a FaultPlan file against
# the live overlay (partition/heal have no single-command console verb).
run_chaos() {
  local start now due rest t verb a b v
  start=$(date +%s.%N)
  while IFS= read -r line; do
    line=${line%%#*}
    read -r _ t verb rest <<<"$line" || true
    [ -z "${verb:-}" ] && continue
    due=$(awk -v s="$start" -v t="$t" 'BEGIN { print s + t }')
    now=$(date +%s.%N)
    sleep "$(awk -v d="$due" -v n="$now" 'BEGIN { print (d > n) ? d - n : 0 }')"
    read -r a b v <<<"$rest" || true
    case "$verb" in
      kill)      echo "chaos: kill $a";      CTL "kill $(addr_of "$a")" ;;
      sever)     echo "chaos: sever $a $b";  CTL "sever $(addr_of "$a") $(addr_of "$b")" ;;
      loss)      echo "chaos: loss $a $b $v"; CTL "loss $(addr_of "$a") $(addr_of "$b") $v" ;;
      slow-link) echo "chaos: slow $a $b $v"; CTL "bw $(addr_of "$a") link-up $v $(addr_of "$b")" ;;
      *)         echo "chaos: skipping '$verb' (sim-only verb)" ;;
    esac
  done < "$CHAOS_PLAN"
}

# Wire the chain through the relay control messages and deploy.
for i in $(seq 1 $((NODES - 1))); do
  SRC=127.0.0.1:$((BASE_PORT + i))
  DST=127.0.0.1:$((BASE_PORT + i + 1))
  CTL "control $SRC 1 $APP $DST"   # RelayAlgorithm::kAddChild
done
CTL "join 127.0.0.1:$((BASE_PORT + NODES)) $APP"
CTL "deploy 127.0.0.1:$((BASE_PORT + 1)) $APP"

if [ -n "$CHAOS_PLAN" ]; then
  echo "replaying chaos plan $CHAOS_PLAN"
  run_chaos
fi

sleep 3
CTL "list"
CTL "dot"
# Pull a fresh report (and metrics snapshot) from every node, then print
# the aggregate Prometheus view (docs/METRICS.md).
for i in $(seq 1 "$NODES"); do
  CTL "report 127.0.0.1:$((BASE_PORT + i))"
done
sleep 1
CTL "metrics"
sleep 1
CTL "quit"
sleep 0.5
echo "demo complete"
