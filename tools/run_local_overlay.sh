#!/usr/bin/env bash
# Demo deployment script (the paper's "by taking advantage of the
# deployment scripts in iOverlay, we are able to deploy, run, terminate
# and collect data from all nodes, with one command for each operation"):
# spins up an observer plus a small chain of virtualized relay nodes as
# real processes on this machine, deploys a stream through the observer's
# console protocol, shows the topology, and tears everything down.
#
#   tools/run_local_overlay.sh [build_dir] [nodes]
set -euo pipefail

BUILD=${1:-build}
NODES=${2:-4}
OBS_PORT=7800
BASE_PORT=7810
APP=1

cleanup() {
  kill "${PIDS[@]}" "${OBS_PID}" 2>/dev/null || true
  wait 2>/dev/null || true
}
trap cleanup EXIT

mkfifo /tmp/iov_obs_ctl.$$ || true
# Keep the console's stdin open for the daemon's whole life.
(exec 3<>/tmp/iov_obs_ctl.$$; "$BUILD"/tools/iov_observerd --port $OBS_PORT <&3 &
 echo $! > /tmp/iov_obs_pid.$$) &
sleep 0.5
OBS_PID=$(cat /tmp/iov_obs_pid.$$)
echo "observer pid $OBS_PID at 127.0.0.1:$OBS_PORT"

PIDS=()
for i in $(seq 1 "$NODES"); do
  PORT=$((BASE_PORT + i))
  ARGS=(--observer 127.0.0.1:$OBS_PORT --port $PORT)
  if [ "$i" -eq 1 ]; then
    ARGS+=(--source $APP:5000)
  fi
  if [ "$i" -eq "$NODES" ]; then
    ARGS+=(--sink $APP)
  fi
  "$BUILD"/tools/iov_node "${ARGS[@]}" &
  PIDS+=($!)
done
sleep 1

CTL() { echo "$1" > /tmp/iov_obs_ctl.$$; }

# Wire the chain through the relay control messages and deploy.
for i in $(seq 1 $((NODES - 1))); do
  SRC=127.0.0.1:$((BASE_PORT + i))
  DST=127.0.0.1:$((BASE_PORT + i + 1))
  CTL "control $SRC 1 $APP $DST"   # RelayAlgorithm::kAddChild
done
CTL "join 127.0.0.1:$((BASE_PORT + NODES)) $APP"
CTL "deploy 127.0.0.1:$((BASE_PORT + 1)) $APP"

sleep 3
CTL "list"
CTL "dot"
# Pull a fresh report (and metrics snapshot) from every node, then print
# the aggregate Prometheus view (docs/METRICS.md).
for i in $(seq 1 "$NODES"); do
  CTL "report 127.0.0.1:$((BASE_PORT + i))"
done
sleep 1
CTL "metrics"
sleep 1
CTL "quit"
sleep 0.5
echo "demo complete"
