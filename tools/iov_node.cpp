// iov_node — run one iOverlay node as a standalone process.
//
// The multi-process face of the middleware: start an observer
// (iov_observerd), then launch any number of nodes against it — on one
// machine (virtualized nodes, distinct ports) or many. The node runs
// until the observer terminates it or SIGINT/SIGTERM arrives.
//
//   iov_node --observer 127.0.0.1:7000 [options]
//
// Options:
//   --port N              publicized port (default: ephemeral)
//   --algorithm NAME      relay | tree-unicast | tree-random | tree-ns
//                         (default relay)
//   --last-mile BPS       advertised last-mile bandwidth for the tree
//                         algorithms and the node's emulated uplink
//   --bw-up/--bw-down/--bw-total BPS   emulated bandwidth caps
//   --buffers N           receiver/sender buffer capacity in messages
//   --source APP:BYTES[:BPS]  register a source app (CBR when BPS given,
//                         back-to-back otherwise); deploy via observer
//   --sink APP            register a measuring sink for session APP
//   --socket-buffers B    cap kernel socket buffers (back-pressure demos)
//   --trace-file PATH     log kTrace locally (collect_traces.sh)
//   --seed S              deterministic per-node random stream
//   --metrics             print this node's metric registry (Prometheus
//                         text, docs/METRICS.md) on exit
//   --verbose             info-level logging
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "algorithm/relay.h"
#include "apps/sink.h"
#include "apps/source.h"
#include "common/clock.h"
#include "common/logging.h"
#include "common/strings.h"
#include "engine/engine.h"
#include "trees/tree_algorithm.h"

namespace {

using namespace iov;  // NOLINT

volatile std::sig_atomic_t g_stop = 0;
void handle_signal(int) { g_stop = 1; }

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --observer ip:port [--port N] [--algorithm "
               "relay|tree-unicast|tree-random|tree-ns] [--last-mile BPS] "
               "[--bw-up BPS] [--bw-down BPS] [--bw-total BPS] [--buffers N] "
               "[--source APP:BYTES[:BPS]] [--sink APP] [--socket-buffers B] "
               "[--trace-file PATH] "
               "[--seed S] [--metrics] [--verbose]\n",
               argv0);
  std::exit(2);
}

double parse_double(const char* s) { return std::strtod(s, nullptr); }

}  // namespace

int main(int argc, char** argv) {
  engine::EngineConfig config;
  std::string algorithm_name = "relay";
  double last_mile = 0.0;
  struct SourceSpec {
    u32 app;
    std::size_t bytes;
    double rate;  // 0 = back-to-back
  };
  std::vector<SourceSpec> source_specs;
  std::vector<u32> sink_apps;
  bool dump_metrics = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--observer") {
      const auto id = NodeId::parse(next());
      if (!id) usage(argv[0]);
      config.observer = *id;
    } else if (arg == "--port") {
      config.port = static_cast<u16>(std::atoi(next()));
    } else if (arg == "--algorithm") {
      algorithm_name = next();
    } else if (arg == "--last-mile") {
      last_mile = parse_double(next());
    } else if (arg == "--bw-up") {
      config.bandwidth.node_up = parse_double(next());
    } else if (arg == "--bw-down") {
      config.bandwidth.node_down = parse_double(next());
    } else if (arg == "--bw-total") {
      config.bandwidth.node_total = parse_double(next());
    } else if (arg == "--buffers") {
      config.recv_buffer_msgs = static_cast<std::size_t>(std::atoi(next()));
      config.send_buffer_msgs = config.recv_buffer_msgs;
    } else if (arg == "--socket-buffers") {
      config.socket_buffer_bytes = std::atoi(next());
    } else if (arg == "--trace-file") {
      config.local_trace_path = next();
    } else if (arg == "--seed") {
      config.seed = static_cast<u64>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--source") {
      const auto parts = split(next(), ':');
      if (parts.size() < 2) usage(argv[0]);
      SourceSpec spec{};
      spec.app = static_cast<u32>(std::atoi(parts[0].c_str()));
      spec.bytes = static_cast<std::size_t>(std::atoi(parts[1].c_str()));
      spec.rate = parts.size() > 2 ? parse_double(parts[2].c_str()) : 0.0;
      source_specs.push_back(spec);
    } else if (arg == "--sink") {
      sink_apps.push_back(static_cast<u32>(std::atoi(next())));
    } else if (arg == "--metrics") {
      dump_metrics = true;
    } else if (arg == "--verbose") {
      Logger::instance().set_level(LogLevel::kInfo);
    } else {
      usage(argv[0]);
    }
  }

  if (last_mile > 0.0 && config.bandwidth.node_up == 0.0) {
    config.bandwidth.node_up = last_mile;
  }

  std::unique_ptr<Algorithm> algorithm;
  if (algorithm_name == "relay") {
    algorithm = std::make_unique<RelayAlgorithm>();
  } else if (algorithm_name == "tree-unicast") {
    algorithm = std::make_unique<trees::TreeAlgorithm>(
        trees::TreeStrategy::kAllUnicast, last_mile);
  } else if (algorithm_name == "tree-random") {
    algorithm = std::make_unique<trees::TreeAlgorithm>(
        trees::TreeStrategy::kRandomized, last_mile);
  } else if (algorithm_name == "tree-ns") {
    algorithm = std::make_unique<trees::TreeAlgorithm>(
        trees::TreeStrategy::kNsAware, last_mile);
  } else {
    usage(argv[0]);
  }

  engine::Engine node(config, std::move(algorithm));
  for (const auto& spec : source_specs) {
    if (spec.rate > 0.0) {
      node.register_app(spec.app,
                        std::make_shared<apps::CbrSource>(spec.bytes,
                                                          spec.rate));
    } else {
      node.register_app(spec.app,
                        std::make_shared<apps::BackToBackSource>(spec.bytes));
    }
  }
  for (const u32 app : sink_apps) {
    node.register_app(app, std::make_shared<apps::SinkApp>());
  }

  if (!node.start()) {
    std::fprintf(stderr, "failed to start (port %u busy?)\n", config.port);
    return 1;
  }
  std::printf("iov_node %s (%s) up%s\n", node.self().to_string().c_str(),
              algorithm_name.c_str(),
              config.observer.valid() ? "" : " [standalone]");
  std::fflush(stdout);

  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  while (node.running() && !g_stop) sleep_for(millis(100));
  node.stop();
  node.join();
  if (dump_metrics) {
    std::fputs(node.metrics().snapshot().to_prometheus().c_str(), stdout);
  }
  std::printf("iov_node %s down\n", node.self().to_string().c_str());
  return 0;
}
