// FakeEngine — an in-memory EngineApi for unit-testing algorithms
// without any substrate: records every send(), trace() and timer, lets
// tests inject messages and fire timers by hand, and exposes settable
// link stats. Complements the real-engine and simulator integration
// tests with fast, surgical algorithm-level checks.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "algorithm/algorithm.h"
#include "algorithm/engine_api.h"

namespace iov::test {

class FakeEngine : public EngineApi {
 public:
  explicit FakeEngine(NodeId self = NodeId::loopback(1000), u64 seed = 1)
      : self_(self), rng_(seed) {}

  /// Binds and returns the algorithm for chaining.
  template <class A>
  A& attach(A& algorithm) {
    algorithm.bind(*this);
    return algorithm;
  }

  // --- Test-side controls ----------------------------------------------------

  struct Sent {
    MsgPtr msg;
    NodeId dest;
  };
  std::vector<Sent> sent;
  std::vector<MsgPtr> delivered_local;
  std::vector<std::string> traces;
  std::vector<std::pair<Duration, i32>> timers;
  std::vector<NodeId> closed_links;
  bool shutdown_requested = false;

  /// Messages sent to `dest`, in order.
  std::vector<MsgPtr> sent_to(const NodeId& dest) const {
    std::vector<MsgPtr> out;
    for (const auto& s : sent) {
      if (s.dest == dest) out.push_back(s.msg);
    }
    return out;
  }

  std::size_t count_type(MsgType t) const {
    std::size_t n = 0;
    for (const auto& s : sent) n += (s.msg->type() == t) ? 1 : 0;
    return n;
  }

  void advance(Duration d) { now_ += d; }
  void set_now(TimePoint t) { now_ = t; }
  void set_source(u32 app, bool on) { sources_[app] = on; }
  void set_upstreams(std::vector<NodeId> ups) { upstreams_ = std::move(ups); }
  void set_downstreams(std::vector<NodeId> downs) {
    downstreams_ = std::move(downs);
  }
  void set_upstream_stats(const NodeId& peer, LinkStats stats) {
    up_stats_[peer] = stats;
  }
  void set_downstream_stats(const NodeId& peer, LinkStats stats) {
    down_stats_[peer] = stats;
  }

  // --- EngineApi ----------------------------------------------------------------

  void send(const MsgPtr& m, const NodeId& dest) override {
    sent.push_back({m, dest});
  }
  NodeId self() const override { return self_; }
  TimePoint now() const override { return now_; }
  Rng& rng() override { return rng_; }
  void set_timer(Duration delay, i32 timer_id) override {
    timers.push_back({delay, timer_id});
  }
  std::vector<NodeId> upstreams() const override { return upstreams_; }
  std::vector<NodeId> downstreams() const override { return downstreams_; }
  std::optional<LinkStats> upstream_stats(
      const NodeId& peer) const override {
    const auto it = up_stats_.find(peer);
    if (it == up_stats_.end()) return std::nullopt;
    return it->second;
  }
  std::optional<LinkStats> downstream_stats(
      const NodeId& peer) const override {
    const auto it = down_stats_.find(peer);
    if (it == down_stats_.end()) return std::nullopt;
    return it->second;
  }
  BandwidthEmulator& bandwidth() override { return bandwidth_; }
  void deliver_local(const MsgPtr& m) override {
    delivered_local.push_back(m);
  }
  bool is_source(u32 app) const override {
    const auto it = sources_.find(app);
    return it != sources_.end() && it->second;
  }
  void trace(std::string_view text) override {
    traces.emplace_back(text);
  }
  void close_link(const NodeId& peer) override {
    closed_links.push_back(peer);
  }
  void shutdown() override { shutdown_requested = true; }

 private:
  NodeId self_;
  TimePoint now_ = 0;
  Rng rng_;
  BandwidthEmulator bandwidth_;
  std::vector<NodeId> upstreams_;
  std::vector<NodeId> downstreams_;
  std::map<NodeId, LinkStats> up_stats_;
  std::map<NodeId, LinkStats> down_stats_;
  std::map<u32, bool> sources_;
};

}  // namespace iov::test
