// GossipAlgorithm: dedup semantics (FakeEngine) and epidemic coverage on
// the simulated substrate.
#include "algorithm/gossip.h"

#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "fake_engine.h"
#include "sim/sim_net.h"

namespace iov {
namespace {

using test::FakeEngine;

constexpr u32 kApp = 1;

TEST(Gossip, FirstSightForwardsDuplicateSuppressed) {
  FakeEngine engine;
  GossipAlgorithm gossip(/*fanout=*/3, /*p=*/1.0);
  engine.attach(gossip);
  for (u16 p = 5001; p <= 5010; ++p) {
    gossip.known_hosts().add(NodeId::loopback(p), engine.self());
  }
  const auto m =
      Msg::data(NodeId::loopback(5001), kApp, 7, Buffer::pattern(32, 7));
  gossip.process(m);
  EXPECT_EQ(engine.sent.size(), 3u);  // fanout targets
  EXPECT_EQ(gossip.seen_count(), 1u);
  gossip.process(m->clone());
  EXPECT_EQ(engine.sent.size(), 3u);  // duplicate: nothing more sent
  EXPECT_EQ(gossip.suppressed(), 1u);
}

TEST(Gossip, ConsumeDeliversOnce) {
  FakeEngine engine;
  GossipAlgorithm gossip(2, 1.0);
  engine.attach(gossip);
  gossip.set_consume(kApp, true);
  const auto m =
      Msg::data(NodeId::loopback(5001), kApp, 1, Buffer::pattern(8, 1));
  gossip.process(m);
  gossip.process(m->clone());
  EXPECT_EQ(engine.delivered_local.size(), 1u);
}

TEST(Gossip, MemoryBoundEvictsOldest) {
  FakeEngine engine;
  GossipAlgorithm gossip(1, 1.0, /*memory=*/4);
  engine.attach(gossip);
  const NodeId origin = NodeId::loopback(5001);
  for (u32 seq = 0; seq < 6; ++seq) {
    gossip.process(Msg::data(origin, kApp, seq, Buffer::pattern(4, seq)));
  }
  EXPECT_EQ(gossip.seen_count(), 6u);
  // seq 0 was evicted from memory, so it floods again as "new".
  gossip.process(Msg::data(origin, kApp, 0, Buffer::pattern(4, 0)));
  EXPECT_EQ(gossip.seen_count(), 7u);
  EXPECT_EQ(gossip.suppressed(), 0u);
}

TEST(Gossip, EpidemicCoverageOnSimulatedOverlay) {
  sim::SimNet net;
  struct Member {
    sim::SimEngine* engine;
    GossipAlgorithm* alg;
    std::shared_ptr<apps::SinkApp> sink;
  };
  std::vector<Member> members;
  constexpr int kNodes = 24;
  constexpr u64 kMsgs = 10;
  for (int i = 0; i < kNodes; ++i) {
    auto algorithm = std::make_unique<GossipAlgorithm>(4, 1.0);
    Member m;
    m.alg = algorithm.get();
    m.engine = &net.add_node(std::move(algorithm), sim::SimNodeConfig{});
    m.sink = std::make_shared<apps::SinkApp>();
    m.engine->register_app(kApp, m.sink);
    m.alg->set_consume(kApp, true);
    members.push_back(std::move(m));
  }
  for (const auto& m : members) net.bootstrap(m.engine->self(), 8);
  // Node 0 becomes the source (replacing its sink registration; the
  // coverage assertions below only inspect nodes 1..N-1).
  members[0].engine->register_app(
      kApp, std::make_shared<apps::BackToBackSource>(500, kMsgs));
  net.run_for(millis(50));
  net.deploy(members[0].engine->self(), kApp);
  net.run_for(seconds(10.0));

  // Epidemics are probabilistic: each message's flood covers almost all
  // nodes (fanout 4 > the epidemic threshold), but individual misses are
  // legitimate. Assert near-complete aggregate coverage and exact dedup.
  u64 total_distinct = 0;
  for (int i = 1; i < kNodes; ++i) {
    const auto stats = members[static_cast<std::size_t>(i)].sink->stats(0);
    total_distinct += stats.distinct;
    EXPECT_GE(stats.distinct, kMsgs - 3) << "node " << i;
    EXPECT_EQ(stats.duplicates, 0u) << "node " << i;
  }
  EXPECT_GE(total_distinct, (kNodes - 1) * kMsgs * 95 / 100);
  // Redundant copies did arrive and were suppressed somewhere.
  u64 suppressed = 0;
  for (const auto& m : members) suppressed += m.alg->suppressed();
  EXPECT_GT(suppressed, 0u);
}

}  // namespace
}  // namespace iov
