// RelayAlgorithm unit tests against FakeEngine: zero-copy fan-out,
// per-app isolation, runtime control reconfiguration, consume flags, and
// broken-link pruning.
#include "algorithm/relay.h"

#include <gtest/gtest.h>

#include "fake_engine.h"

namespace iov {
namespace {

using test::FakeEngine;

const NodeId kChild1 = NodeId::loopback(2001);
const NodeId kChild2 = NodeId::loopback(2002);
const NodeId kUpstream = NodeId::loopback(2003);

MsgPtr data_msg(u32 app, u32 seq = 0) {
  return Msg::data(kUpstream, app, seq, Buffer::pattern(64, seq));
}

TEST(RelayAlgorithm, ForwardsSameMessageToAllChildren) {
  FakeEngine engine;
  RelayAlgorithm relay;
  engine.attach(relay);
  relay.add_child(1, kChild1);
  relay.add_child(1, kChild2);
  const auto m = data_msg(1);
  relay.process(m);
  ASSERT_EQ(engine.sent.size(), 2u);
  // Zero copy: the identical MsgPtr goes to each child.
  EXPECT_EQ(engine.sent[0].msg.get(), m.get());
  EXPECT_EQ(engine.sent[1].msg.get(), m.get());
}

TEST(RelayAlgorithm, AppsAreIsolated) {
  FakeEngine engine;
  RelayAlgorithm relay;
  engine.attach(relay);
  relay.add_child(1, kChild1);
  relay.add_child(2, kChild2);
  relay.process(data_msg(1));
  ASSERT_EQ(engine.sent.size(), 1u);
  EXPECT_EQ(engine.sent[0].dest, kChild1);
  relay.process(data_msg(2));
  ASSERT_EQ(engine.sent.size(), 2u);
  EXPECT_EQ(engine.sent[1].dest, kChild2);
}

TEST(RelayAlgorithm, NoChildrenConsumesSilently) {
  FakeEngine engine;
  RelayAlgorithm relay;
  engine.attach(relay);
  relay.process(data_msg(1));
  EXPECT_TRUE(engine.sent.empty());
  EXPECT_TRUE(engine.delivered_local.empty());
}

TEST(RelayAlgorithm, ConsumeDeliversLocallyAndForwards) {
  FakeEngine engine;
  RelayAlgorithm relay;
  engine.attach(relay);
  relay.add_child(1, kChild1);
  relay.set_consume(1, true);
  relay.process(data_msg(1));
  EXPECT_EQ(engine.delivered_local.size(), 1u);
  EXPECT_EQ(engine.sent.size(), 1u);
  relay.set_consume(1, false);
  relay.process(data_msg(1, 1));
  EXPECT_EQ(engine.delivered_local.size(), 1u);  // unchanged
}

TEST(RelayAlgorithm, ControlMessagesReconfigureAtRuntime) {
  FakeEngine engine;
  RelayAlgorithm relay;
  engine.attach(relay);
  relay.process(Msg::control(MsgType::kControl, NodeId(), kControlApp,
                             RelayAlgorithm::kAddChild, 1,
                             kChild1.to_string()));
  EXPECT_EQ(relay.children(1).count(kChild1), 1u);
  relay.process(Msg::control(MsgType::kControl, NodeId(), kControlApp,
                             RelayAlgorithm::kRemoveChild, 1,
                             kChild1.to_string()));
  EXPECT_TRUE(relay.children(1).empty());
}

TEST(RelayAlgorithm, MalformedControlIgnored) {
  FakeEngine engine;
  RelayAlgorithm relay;
  engine.attach(relay);
  relay.process(Msg::control(MsgType::kControl, NodeId(), kControlApp,
                             RelayAlgorithm::kAddChild, 1, "not-an-address"));
  EXPECT_TRUE(relay.children(1).empty());
  relay.process(Msg::control(MsgType::kControl, NodeId(), kControlApp,
                             /*unknown op*/ 99, 1, kChild1.to_string()));
  EXPECT_TRUE(relay.children(1).empty());
}

TEST(RelayAlgorithm, JoinControlSetsConsume) {
  FakeEngine engine;
  RelayAlgorithm relay;
  engine.attach(relay);
  relay.process(Msg::control(MsgType::kSJoin, NodeId(), kControlApp, 1));
  relay.process(data_msg(1));
  EXPECT_EQ(engine.delivered_local.size(), 1u);
}

TEST(RelayAlgorithm, BrokenLinkPrunesChildEverywhere) {
  FakeEngine engine;
  RelayAlgorithm relay;
  engine.attach(relay);
  relay.add_child(1, kChild1);
  relay.add_child(2, kChild1);
  relay.add_child(2, kChild2);
  relay.process(Msg::control(MsgType::kBrokenLink, kChild1, kControlApp));
  EXPECT_TRUE(relay.children(1).empty());
  EXPECT_EQ(relay.children(2).count(kChild2), 1u);
  EXPECT_EQ(relay.children(2).size(), 1u);
}

TEST(RelayAlgorithm, StatusMentionsEdgeCount) {
  FakeEngine engine;
  RelayAlgorithm relay;
  engine.attach(relay);
  relay.add_child(1, kChild1);
  relay.add_child(1, kChild2);
  EXPECT_NE(relay.status().find("edges=2"), std::string::npos);
}

}  // namespace
}  // namespace iov
