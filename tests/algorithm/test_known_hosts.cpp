#include "algorithm/known_hosts.h"

#include <gtest/gtest.h>

namespace iov {
namespace {

const NodeId kSelf = NodeId::loopback(1000);

TEST(KnownHosts, AddIgnoresSelfAndInvalid) {
  KnownHosts hosts;
  EXPECT_FALSE(hosts.add(kSelf, kSelf));
  EXPECT_FALSE(hosts.add(NodeId(), kSelf));
  EXPECT_TRUE(hosts.empty());
  EXPECT_TRUE(hosts.add(NodeId::loopback(1001), kSelf));
  EXPECT_EQ(hosts.size(), 1u);
}

TEST(KnownHosts, AddIsIdempotent) {
  KnownHosts hosts;
  EXPECT_TRUE(hosts.add(NodeId::loopback(1001), kSelf));
  EXPECT_FALSE(hosts.add(NodeId::loopback(1001), kSelf));
  EXPECT_EQ(hosts.size(), 1u);
}

TEST(KnownHosts, RemoveAfterFailure) {
  KnownHosts hosts;
  hosts.add(NodeId::loopback(1001), kSelf);
  EXPECT_TRUE(hosts.remove(NodeId::loopback(1001)));
  EXPECT_FALSE(hosts.remove(NodeId::loopback(1001)));
  EXPECT_TRUE(hosts.empty());
}

TEST(KnownHosts, AllIsSortedAndStable) {
  KnownHosts hosts;
  hosts.add(NodeId::loopback(1003), kSelf);
  hosts.add(NodeId::loopback(1001), kSelf);
  hosts.add(NodeId::loopback(1002), kSelf);
  const auto all = hosts.all();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], NodeId::loopback(1001));
  EXPECT_EQ(all[2], NodeId::loopback(1003));
}

TEST(KnownHosts, ListRoundTrip) {
  KnownHosts hosts;
  hosts.add(NodeId::loopback(1001), kSelf);
  hosts.add(NodeId::loopback(1002), kSelf);
  KnownHosts other;
  EXPECT_EQ(other.add_from_list(hosts.to_list(), kSelf), 2u);
  EXPECT_TRUE(other.contains(NodeId::loopback(1001)));
  EXPECT_TRUE(other.contains(NodeId::loopback(1002)));
}

TEST(KnownHosts, AddFromListSkipsJunkAndSelf) {
  KnownHosts hosts;
  const auto added = hosts.add_from_list(
      "127.0.0.1:1001, garbage ,,127.0.0.1:1000,127.0.0.1:70000", kSelf);
  EXPECT_EQ(added, 1u);  // only 1001; self and junk skipped
  EXPECT_TRUE(hosts.contains(NodeId::loopback(1001)));
}

TEST(KnownHosts, SampleBounds) {
  KnownHosts hosts;
  for (u16 p = 1001; p <= 1010; ++p) hosts.add(NodeId::loopback(p), kSelf);
  Rng rng(5);
  EXPECT_EQ(hosts.sample(3, rng).size(), 3u);
  EXPECT_EQ(hosts.sample(50, rng).size(), 10u);
}

}  // namespace
}  // namespace iov
