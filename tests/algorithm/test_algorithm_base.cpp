// Unit tests of the iAlgorithm base class defaults (paper §2.2/§2.3
// Table 2) against the in-memory FakeEngine: bootstrap handling,
// throughput bookkeeping, ping/pong echo, the gossip disseminate()
// utility, control dispatch, and KnownHosts hygiene.
#include "algorithm/algorithm.h"

#include <gtest/gtest.h>

#include "fake_engine.h"
#include "message/codec.h"

namespace iov {
namespace {

using test::FakeEngine;

const NodeId kPeerA = NodeId::loopback(2001);
const NodeId kPeerB = NodeId::loopback(2002);
const NodeId kObserver = NodeId::loopback(9);

class PlainAlgorithm : public Algorithm {
 public:
  using Algorithm::disseminate;
  using Algorithm::downstream_rate;
  using Algorithm::ping;
  using Algorithm::upstream_rate;
  std::vector<std::pair<NodeId, Duration>> pongs;
  std::vector<std::pair<u32, std::string>> announces;
  std::vector<i32> controls;

 protected:
  void on_pong(const NodeId& peer, Duration rtt) override {
    pongs.push_back({peer, rtt});
  }
  void on_announce(u32 app, std::string_view source) override {
    announces.push_back({app, std::string(source)});
  }
  void on_control(const MsgPtr& m) override {
    controls.push_back(m->param(0));
  }
};

TEST(AlgorithmBase, BootReplyPopulatesKnownHosts) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  const auto reply = Msg::control(
      MsgType::kBootReply, kObserver, kControlApp, 0, 0,
      kPeerA.to_string() + "," + kPeerB.to_string());
  alg.process(reply);
  EXPECT_TRUE(alg.known_hosts().contains(kPeerA));
  EXPECT_TRUE(alg.known_hosts().contains(kPeerB));
  // The observer itself must not be learned as an overlay host.
  EXPECT_FALSE(alg.known_hosts().contains(kObserver));
}

TEST(AlgorithmBase, PeerMessagesTeachOrigins) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  alg.process(Msg::data(kPeerA, 1, 0, Buffer::pattern(4, 0)));
  EXPECT_TRUE(alg.known_hosts().contains(kPeerA));
  // Observer-plane message origins are not learned.
  alg.process(Msg::control(MsgType::kSDeploy, kObserver, kControlApp, 1));
  EXPECT_FALSE(alg.known_hosts().contains(kObserver));
}

TEST(AlgorithmBase, DefaultDataHandlerDeliversLocally) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  const auto m = Msg::data(kPeerA, 1, 7, Buffer::pattern(16, 7));
  EXPECT_EQ(alg.process(m), Disposition::kDone);
  ASSERT_EQ(engine.delivered_local.size(), 1u);
  EXPECT_EQ(engine.delivered_local[0].get(), m.get());
  EXPECT_TRUE(engine.sent.empty());  // no forwarding by default
}

TEST(AlgorithmBase, ThroughputReportsAreRecorded) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  alg.process(Msg::control(MsgType::kUpThroughput, kPeerA, kControlApp,
                           125000));
  alg.process(Msg::control(MsgType::kDownThroughput, kPeerA, kControlApp,
                           50000));
  EXPECT_DOUBLE_EQ(alg.upstream_rate(kPeerA), 125000.0);
  EXPECT_DOUBLE_EQ(alg.downstream_rate(kPeerA), 50000.0);
  EXPECT_DOUBLE_EQ(alg.upstream_rate(kPeerB), 0.0);
}

TEST(AlgorithmBase, BrokenLinkClearsRatesAndHosts) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  alg.process(Msg::data(kPeerA, 1, 0, Buffer::pattern(4, 0)));
  alg.process(Msg::control(MsgType::kUpThroughput, kPeerA, kControlApp, 99));
  alg.process(Msg::control(MsgType::kBrokenLink, kPeerA, kControlApp));
  EXPECT_DOUBLE_EQ(alg.upstream_rate(kPeerA), 0.0);
}

TEST(AlgorithmBase, BrokenSourceForgetsTheSource) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  alg.process(Msg::data(kPeerA, 1, 0, Buffer::pattern(4, 0)));
  ASSERT_TRUE(alg.known_hosts().contains(kPeerA));
  alg.process(std::make_shared<Msg>(MsgType::kBrokenSource, kPeerA, 1, 0,
                                    Buffer::empty_buffer()));
  EXPECT_FALSE(alg.known_hosts().contains(kPeerA));
}

TEST(AlgorithmBase, PingSendsProbeAndPongEchoes) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  engine.set_now(seconds(3.0));
  alg.ping(kPeerA);
  ASSERT_EQ(engine.sent.size(), 1u);
  EXPECT_EQ(engine.sent[0].msg->type(), MsgType::kPing);
  EXPECT_EQ(engine.sent[0].dest, kPeerA);
  // The probe payload carries the send timestamp.
  EXPECT_EQ(codec::read_u64(engine.sent[0].msg->payload()->data()),
            static_cast<u64>(seconds(3.0)));

  // Receiving a ping produces a pong with the same payload.
  alg.process(engine.sent[0].msg->clone());
  ASSERT_EQ(engine.sent.size(), 2u);
  EXPECT_EQ(engine.sent[1].msg->type(), MsgType::kPong);
  EXPECT_EQ(engine.sent[1].msg->payload()->bytes(),
            engine.sent[0].msg->payload()->bytes());
}

TEST(AlgorithmBase, PongComputesRtt) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  engine.set_now(seconds(1.0));
  alg.ping(kPeerA);
  engine.set_now(seconds(1.0) + millis(250));
  auto pong = std::make_shared<Msg>(MsgType::kPong, kPeerA, kControlApp, 0,
                                    engine.sent[0].msg->payload());
  alg.process(pong);
  ASSERT_EQ(alg.pongs.size(), 1u);
  EXPECT_EQ(alg.pongs[0].first, kPeerA);
  EXPECT_EQ(alg.pongs[0].second, millis(250));
}

TEST(AlgorithmBase, DisseminateProbabilityZeroAndOne) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  std::vector<NodeId> targets;
  for (u16 p = 3000; p < 3020; ++p) targets.push_back(NodeId::loopback(p));
  const auto m = Msg::control(MsgType::kControl, engine.self(), kControlApp);

  EXPECT_EQ(alg.disseminate(m, targets, 0.0), 0u);
  EXPECT_TRUE(engine.sent.empty());
  EXPECT_EQ(alg.disseminate(m, targets, 1.0), 20u);
  EXPECT_EQ(engine.sent.size(), 20u);
  // Each copy is a clone, not the original reference (non-data clone rule).
  for (const auto& s : engine.sent) EXPECT_NE(s.msg.get(), m.get());
}

TEST(AlgorithmBase, DisseminateFrequencyTracksP) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  std::vector<NodeId> targets;
  for (u16 p = 0; p < 1000; ++p) {
    targets.push_back(NodeId(0x0a000001 + p, 1));
  }
  const auto m = Msg::control(MsgType::kControl, engine.self(), kControlApp);
  const std::size_t sent = alg.disseminate(m, targets, 0.3);
  EXPECT_NEAR(static_cast<double>(sent), 300.0, 60.0);
}

TEST(AlgorithmBase, DisseminateSkipsSelf) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  const auto m = Msg::control(MsgType::kControl, engine.self(), kControlApp);
  EXPECT_EQ(alg.disseminate(m, {engine.self(), kPeerA}, 1.0), 1u);
}

TEST(AlgorithmBase, AnnounceAndControlDispatch) {
  FakeEngine engine;
  PlainAlgorithm alg;
  engine.attach(alg);
  alg.process(Msg::control(MsgType::kSAnnounce, kObserver, kControlApp, 5, 0,
                           kPeerA.to_string()));
  ASSERT_EQ(alg.announces.size(), 1u);
  EXPECT_EQ(alg.announces[0].first, 5u);
  EXPECT_EQ(alg.announces[0].second, kPeerA.to_string());

  alg.process(Msg::control(MsgType::kControl, kObserver, kControlApp, 42, 7));
  ASSERT_EQ(alg.controls.size(), 1u);
  EXPECT_EQ(alg.controls[0], 42);
}

TEST(AlgorithmBase, TimerDispatch) {
  FakeEngine engine;
  struct TimerCounter : Algorithm {
    std::vector<i32> fired;
    void on_timer(i32 id) override { fired.push_back(id); }
  } alg;
  engine.attach(alg);
  alg.process(Msg::control(MsgType::kTimer, engine.self(), kControlApp, 11));
  alg.process(Msg::control(MsgType::kTimer, engine.self(), kControlApp, 12));
  EXPECT_EQ(alg.fired, (std::vector<i32>{11, 12}));
}

TEST(AlgorithmBase, UnknownUserTypeGoesToOnUser) {
  FakeEngine engine;
  struct UserCounter : Algorithm {
    std::size_t users = 0;
    Disposition on_user(const MsgPtr&) override {
      ++users;
      return Disposition::kHold;
    }
  } alg;
  engine.attach(alg);
  const auto m = Msg::control(static_cast<MsgType>(0x0999), kPeerA,
                              kControlApp);
  EXPECT_EQ(alg.process(m), Disposition::kHold);
  EXPECT_EQ(alg.users, 1u);
}

}  // namespace
}  // namespace iov
