#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace iov {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(13), 13u);
  }
}

TEST(Rng, BelowCoversFullRange) {
  Rng rng(7);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const i64 v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(50.0, 200.0);
    EXPECT_GE(v, 50.0);
    EXPECT_LT(v, 200.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyApproximatesP) {
  Rng rng(19);
  int hits = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / kN, 4.0, 0.15);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleSizeAndDistinctness) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto s = rng.sample(v, 4);
  EXPECT_EQ(s.size(), 4u);
  std::set<int> distinct(s.begin(), s.end());
  EXPECT_EQ(distinct.size(), 4u);

  auto all = rng.sample(v, 99);
  EXPECT_EQ(all.size(), v.size());
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(37);
  Rng child = parent.split();
  // The child stream should not reproduce the parent's next outputs.
  Rng parent_copy(37);
  (void)parent_copy.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (child() == parent()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(41);
  Rng b(41);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(ca(), cb());
}

}  // namespace
}  // namespace iov
