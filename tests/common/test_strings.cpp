#include "common/strings.h"

#include <gtest/gtest.h>

namespace iov {
namespace {

TEST(Strings, SplitBasic) {
  const auto parts = split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 5u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[4], "");
}

TEST(Strings, SplitNoSeparator) {
  const auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(Strings, SplitEmptyInput) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("\t\n abc \r\n"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, StartsWith) {
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_TRUE(starts_with("foo", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_FALSE(starts_with("barfoo", "foo"));
  EXPECT_TRUE(starts_with("anything", ""));
}

TEST(Strings, ParseU64Valid) {
  unsigned long long v = 0;
  EXPECT_TRUE(parse_u64("0", 100, &v));
  EXPECT_EQ(v, 0u);
  EXPECT_TRUE(parse_u64("100", 100, &v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(parse_u64("18446744073709551615", ~0ULL, &v));
  EXPECT_EQ(v, ~0ULL);
}

TEST(Strings, ParseU64Rejects) {
  unsigned long long v = 0;
  EXPECT_FALSE(parse_u64("", 100, &v));
  EXPECT_FALSE(parse_u64("101", 100, &v));       // over max
  EXPECT_FALSE(parse_u64("-1", 100, &v));        // sign
  EXPECT_FALSE(parse_u64("12a", 100, &v));       // non-digit
  EXPECT_FALSE(parse_u64(" 5", 100, &v));        // whitespace
  EXPECT_FALSE(parse_u64("18446744073709551616", ~0ULL, &v));  // overflow
}

TEST(Strings, Strf) {
  EXPECT_EQ(strf("x=%d y=%s", 5, "abc"), "x=5 y=abc");
  EXPECT_EQ(strf("%.2f", 1.5), "1.50");
  EXPECT_EQ(strf("empty"), "empty");
}

}  // namespace
}  // namespace iov
