#include "common/stats.h"

#include <gtest/gtest.h>

namespace iov {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStats, SingleSampleVarianceZero) {
  RunningStats s;
  s.add(3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(EmpiricalCdf, AtAndQuantile) {
  EmpiricalCdf cdf;
  for (int i = 1; i <= 100; ++i) cdf.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(cdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.at(50.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(100.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.at(1000.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(cdf.quantile(0.01), 1.0);
}

TEST(EmpiricalCdf, InterleavedAddAndQuery) {
  EmpiricalCdf cdf;
  cdf.add(10.0);
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 1.0);
  cdf.add(20.0);  // must re-sort lazily
  EXPECT_DOUBLE_EQ(cdf.at(10.0), 0.5);
  EXPECT_DOUBLE_EQ(cdf.at(20.0), 1.0);
}

TEST(EmpiricalCdf, TableIsMonotone) {
  EmpiricalCdf cdf;
  for (int i = 0; i < 50; ++i) cdf.add(static_cast<double>(i % 10));
  const auto table = cdf.table(0.0, 10.0, 21);
  ASSERT_EQ(table.size(), 21u);
  for (std::size_t i = 1; i < table.size(); ++i) {
    EXPECT_GE(table[i].second, table[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(table.back().second, 1.0);
}

TEST(TimeSeriesBins, AccumulatesIntoCorrectBins) {
  TimeSeriesBins bins(seconds(60.0));
  bins.add(seconds(5.0), 100.0);
  bins.add(seconds(59.0), 50.0);
  bins.add(seconds(61.0), 25.0);
  bins.add(seconds(200.0), 10.0);
  EXPECT_EQ(bins.bin_count(), 4u);
  EXPECT_DOUBLE_EQ(bins.bin(0), 150.0);
  EXPECT_DOUBLE_EQ(bins.bin(1), 25.0);
  EXPECT_DOUBLE_EQ(bins.bin(2), 0.0);
  EXPECT_DOUBLE_EQ(bins.bin(3), 10.0);
  EXPECT_DOUBLE_EQ(bins.bin(99), 0.0);
}

TEST(TimeSeriesBins, NegativeTimeIgnored) {
  TimeSeriesBins bins(seconds(1.0));
  bins.add(-1, 5.0);
  EXPECT_EQ(bins.bin_count(), 0u);
}

TEST(FormatRow, PadsCells) {
  const auto row = format_row({"a", "bb", "ccc"}, 4);
  EXPECT_EQ(row, "a   bb  ccc");
}

TEST(FormatRow, LongCellGetsSingleSpace) {
  const auto row = format_row({"verylongcell", "x"}, 4);
  EXPECT_EQ(row, "verylongcell x");
}

}  // namespace
}  // namespace iov
