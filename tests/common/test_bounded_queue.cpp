// The bounded circular queue is the shared buffer between engine and
// link threads; these tests pin down FIFO order, capacity, blocking and
// close semantics, plus a producer/consumer stress run.
#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace iov {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 8; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CapacityEnforced) {
  BoundedQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(4));
  EXPECT_EQ(q.size(), 3u);
  q.try_pop();
  EXPECT_TRUE(q.try_push(4));
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));
}

TEST(BoundedQueue, WrapAroundKeepsOrder) {
  BoundedQueue<int> q(4);
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 10; ++round) {
    while (q.try_push(next_in)) ++next_in;
    for (int i = 0; i < 2; ++i) {
      auto v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_out++);
    }
  }
}

TEST(BoundedQueue, PushBlocksUntilSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.size(), 1u);  // producer is blocked
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, PopBlocksUntilElement) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(q.push(42));
  consumer.join();
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BoundedQueue, CloseWakesBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
}

TEST(BoundedQueue, CloseDrainsRemainingElements) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PopForTimesOut) {
  BoundedQueue<int> q(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(millis(30)).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(BoundedQueue, PopForReturnsElement) {
  BoundedQueue<int> q(1);
  q.try_push(5);
  EXPECT_EQ(q.pop_for(millis(30)).value(), 5);
}

TEST(BoundedQueue, MoveOnlyElements) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(9)));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 9);
}

TEST(BoundedQueue, StressSpscPreservesSequence) {
  BoundedQueue<int> q(16);
  constexpr int kCount = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    ASSERT_EQ(*v, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
}

// --- Batch operations (DESIGN.md §8) --------------------------------------

TEST(BoundedQueueBatch, TryPopBatchDrainsInFifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.try_push(i));
  std::vector<int> out;
  EXPECT_EQ(q.try_pop_batch(out, 4), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(q.try_pop_batch(out, 4), 2u);  // appends the remainder
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(q.try_pop_batch(out, 4), 0u);  // empty
}

TEST(BoundedQueueBatch, FifoAcrossMixedSingleAndBatchOps) {
  BoundedQueue<int> q(16);
  std::vector<int> in{0, 1, 2};
  EXPECT_EQ(q.try_push_batch(in), 3u);
  ASSERT_TRUE(q.try_push(3));
  std::vector<int> in2{4, 5};
  EXPECT_EQ(q.push_batch(in2), 2u);
  EXPECT_EQ(q.try_pop().value(), 0);
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 3), 3u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.pop().value(), 4);
  EXPECT_EQ(q.pop().value(), 5);
}

TEST(BoundedQueueBatch, TryPushBatchStopsAtCapacity) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.try_push(0));
  std::vector<int> in{1, 2, 3, 4, 5};
  EXPECT_EQ(q.try_push_batch(in), 3u);  // only 3 slots free
  EXPECT_TRUE(q.full());
  std::vector<int> out;
  EXPECT_EQ(q.try_pop_batch(out, 10), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
}

TEST(BoundedQueueBatch, PopBatchBlocksUntilElement) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(q.pop_batch(out, 8), 2u);
    EXPECT_EQ(out, (std::vector<int>{7, 8}));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::vector<int> in{7, 8};
  EXPECT_EQ(q.push_batch(in), 2u);
  consumer.join();
}

TEST(BoundedQueueBatch, FullQueueBlocksBatchPusherUntilDrained) {
  BoundedQueue<int> q(2);
  std::vector<int> in{0, 1, 2, 3, 4};
  std::thread producer([&] { EXPECT_EQ(q.push_batch(in), 5u); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.size(), 2u);  // producer blocked on back-pressure
  int expected = 0;
  while (expected < 5) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, expected++);
  }
  producer.join();
}

TEST(BoundedQueueBatch, CloseMidBatchPushReturnsShortCount) {
  BoundedQueue<int> q(2);
  std::vector<int> in{0, 1, 2, 3};
  std::thread producer([&] {
    // Accepts the first 2, then blocks; close() releases it short.
    EXPECT_LT(q.push_batch(in), 4u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
}

TEST(BoundedQueueBatch, CloseDrainsThenPopBatchReturnsZero) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  std::vector<int> out;
  EXPECT_EQ(q.pop_batch(out, 8), 2u);  // remaining elements still drain
  EXPECT_EQ(q.pop_batch(out, 8), 0u);  // closed and drained
  EXPECT_EQ(q.try_pop_batch(out, 8), 0u);
}

TEST(BoundedQueueBatch, PopBatchForTimesOut) {
  BoundedQueue<int> q(2);
  std::vector<int> out;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(q.pop_batch_for(out, 4, millis(30)), 0u);
  EXPECT_GE(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(25));
  q.try_push(9);
  EXPECT_EQ(q.pop_batch_for(out, 4, millis(30)), 1u);
  EXPECT_EQ(out, (std::vector<int>{9}));
}

TEST(BoundedQueueBatch, MoveOnlyElements) {
  BoundedQueue<std::unique_ptr<int>> q(4);
  std::vector<std::unique_ptr<int>> in;
  in.push_back(std::make_unique<int>(1));
  in.push_back(std::make_unique<int>(2));
  EXPECT_EQ(q.try_push_batch(in), 2u);
  std::vector<std::unique_ptr<int>> out;
  EXPECT_EQ(q.try_pop_batch(out, 4), 2u);
  EXPECT_EQ(*out[0], 1);
  EXPECT_EQ(*out[1], 2);
}

TEST(BoundedQueueBatch, StressBatchProducersAndConsumers) {
  // Batch pushers against batch poppers through a tiny queue: everything
  // arrives exactly once (and TSan gets a workout on the batch paths).
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 4000;
  constexpr int kProducers = 2;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<int> in;
      for (int i = 0; i < kPerProducer; i += 16) {
        in.clear();
        for (int j = i; j < i + 16 && j < kPerProducer; ++j) {
          in.push_back(p * kPerProducer + j);
        }
        ASSERT_EQ(q.push_batch(in), in.size());
      }
    });
  }
  std::vector<int> seen;
  std::mutex seen_mu;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> out;
      while (true) {
        out.clear();
        if (q.pop_batch(out, 8) == 0) return;
        std::lock_guard<std::mutex> lock(seen_mu);
        seen.insert(seen.end(), out.begin(), out.end());
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kPerProducer * kProducers));
  for (int i = 0; i < kPerProducer * kProducers; ++i) EXPECT_EQ(seen[i], i);
}

TEST(BoundedQueue, StressMpmcDeliversEverythingOnce) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  std::mutex seen_mu;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        std::lock_guard<std::mutex> lock(seen_mu);
        seen.push_back(*v);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kPerProducer * kProducers));
  for (int i = 0; i < kPerProducer * kProducers; ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace iov
