// The bounded circular queue is the shared buffer between engine and
// link threads; these tests pin down FIFO order, capacity, blocking and
// close semantics, plus a producer/consumer stress run.
#include "common/bounded_queue.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace iov {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.try_push(i));
  for (int i = 0; i < 8; ++i) {
    auto v = q.try_pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CapacityEnforced) {
  BoundedQueue<int> q(3);
  EXPECT_EQ(q.capacity(), 3u);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.try_push(4));
  EXPECT_EQ(q.size(), 3u);
  q.try_pop();
  EXPECT_TRUE(q.try_push(4));
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  EXPECT_TRUE(q.try_push(7));
  EXPECT_FALSE(q.try_push(8));
}

TEST(BoundedQueue, WrapAroundKeepsOrder) {
  BoundedQueue<int> q(4);
  int next_in = 0;
  int next_out = 0;
  for (int round = 0; round < 10; ++round) {
    while (q.try_push(next_in)) ++next_in;
    for (int i = 0; i < 2; ++i) {
      auto v = q.try_pop();
      ASSERT_TRUE(v.has_value());
      EXPECT_EQ(*v, next_out++);
    }
  }
}

TEST(BoundedQueue, PushBlocksUntilSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread producer([&] { EXPECT_TRUE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(q.size(), 1u);  // producer is blocked
  EXPECT_EQ(q.pop().value(), 1);
  producer.join();
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, PopBlocksUntilElement) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 42);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(q.push(42));
  consumer.join();
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(1);
  std::thread consumer([&] { EXPECT_FALSE(q.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
}

TEST(BoundedQueue, CloseWakesBlockedPush) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::thread producer([&] { EXPECT_FALSE(q.push(2)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
}

TEST(BoundedQueue, CloseDrainsRemainingElements) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PopForTimesOut) {
  BoundedQueue<int> q(1);
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(q.pop_for(millis(30)).has_value());
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(25));
}

TEST(BoundedQueue, PopForReturnsElement) {
  BoundedQueue<int> q(1);
  q.try_push(5);
  EXPECT_EQ(q.pop_for(millis(30)).value(), 5);
}

TEST(BoundedQueue, MoveOnlyElements) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  EXPECT_TRUE(q.try_push(std::make_unique<int>(9)));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 9);
}

TEST(BoundedQueue, StressSpscPreservesSequence) {
  BoundedQueue<int> q(16);
  constexpr int kCount = 20000;
  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) ASSERT_TRUE(q.push(i));
    q.close();
  });
  int expected = 0;
  while (auto v = q.pop()) {
    ASSERT_EQ(*v, expected++);
  }
  producer.join();
  EXPECT_EQ(expected, kCount);
}

TEST(BoundedQueue, StressMpmcDeliversEverythingOnce) {
  BoundedQueue<int> q(8);
  constexpr int kPerProducer = 5000;
  constexpr int kProducers = 3;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> seen;
  std::mutex seen_mu;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        std::lock_guard<std::mutex> lock(seen_mu);
        seen.push_back(*v);
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kPerProducer * kProducers));
  for (int i = 0; i < kPerProducer * kProducers; ++i) EXPECT_EQ(seen[i], i);
}

}  // namespace
}  // namespace iov
