#include "common/node_id.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace iov {
namespace {

TEST(NodeId, DefaultIsInvalid) {
  NodeId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id.to_string(), "0.0.0.0:0");
}

TEST(NodeId, ToStringRoundTrip) {
  const NodeId id(0xc0a80164, 8080);  // 192.168.1.100
  EXPECT_EQ(id.to_string(), "192.168.1.100:8080");
  const auto parsed = NodeId::parse(id.to_string());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, id);
}

TEST(NodeId, LoopbackHelper) {
  const NodeId id = NodeId::loopback(9000);
  EXPECT_EQ(id.to_string(), "127.0.0.1:9000");
  EXPECT_TRUE(id.valid());
}

TEST(NodeId, ParseRejectsMalformed) {
  EXPECT_FALSE(NodeId::parse("").has_value());
  EXPECT_FALSE(NodeId::parse("1.2.3.4").has_value());
  EXPECT_FALSE(NodeId::parse("1.2.3:80").has_value());
  EXPECT_FALSE(NodeId::parse("1.2.3.4.5:80").has_value());
  EXPECT_FALSE(NodeId::parse("256.2.3.4:80").has_value());
  EXPECT_FALSE(NodeId::parse("1.2.3.4:65536").has_value());
  EXPECT_FALSE(NodeId::parse("1.2.3.4:-1").has_value());
  EXPECT_FALSE(NodeId::parse("a.b.c.d:80").has_value());
  EXPECT_FALSE(NodeId::parse("1.2.3.4:port").has_value());
}

TEST(NodeId, ParseBoundaryValues) {
  const auto max = NodeId::parse("255.255.255.255:65535");
  ASSERT_TRUE(max.has_value());
  EXPECT_EQ(max->ip(), 0xffffffffu);
  EXPECT_EQ(max->port(), 65535);

  const auto zero = NodeId::parse("0.0.0.0:0");
  ASSERT_TRUE(zero.has_value());
  EXPECT_FALSE(zero->valid());
}

TEST(NodeId, OrderingIsTotal) {
  const NodeId a(1, 5);
  const NodeId b(1, 6);
  const NodeId c(2, 0);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_LT(a, c);
  EXPECT_EQ(a, NodeId(1, 5));
}

TEST(NodeId, HashSpreadsPorts) {
  // Virtualized nodes differ only in port; the hash must not collide
  // pathologically.
  std::unordered_set<std::size_t> hashes;
  for (u16 port = 1000; port < 2000; ++port) {
    hashes.insert(std::hash<NodeId>{}(NodeId::loopback(port)));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace iov
