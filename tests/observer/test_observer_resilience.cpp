// Observer-plane resilience: nodes reconnect to a restarted observer,
// reports fall back from a dead proxy to the direct connection, and the
// engine keeps running through observer outages.
#include <gtest/gtest.h>

#include "engine/engine.h"
#include "observer/observer.h"
#include "observer/proxy.h"
#include "../engine/engine_test_util.h"

namespace iov::observer {
namespace {

using engine::Engine;
using engine::EngineConfig;
using test::RecordingRelay;
using test::wait_until;

TEST(ObserverResilience, NodeReconnectsToRestartedObserver) {
  // Pin the observer to a fixed port so a restart lands where nodes dial.
  u16 port = 0;
  {
    // Grab an ephemeral port number to reuse.
    auto probe = TcpListener::listen(0);
    ASSERT_TRUE(probe.has_value());
    port = probe->port();
  }
  ObserverConfig obs_config;
  obs_config.port = port;
  auto obs = std::make_unique<Observer>(obs_config);
  ASSERT_TRUE(obs->start());

  EngineConfig config;
  config.observer = NodeId::loopback(port);
  config.report_interval = millis(100);
  Engine node(config, std::make_unique<RecordingRelay>());
  ASSERT_TRUE(node.start());
  ASSERT_TRUE(wait_until([&] { return obs->alive_count() == 1; }));

  // Observer goes away entirely...
  obs->stop();
  obs->join();
  obs.reset();
  // The node shrugs it off: it must stay up the whole time, not merely
  // be up when a fixed nap ends.
  EXPECT_TRUE(test::holds_for([&] { return node.running(); }, millis(300)));

  // ...and comes back on the same port; the node re-boots against it.
  auto obs2 = std::make_unique<Observer>(obs_config);
  ASSERT_TRUE(obs2->start());
  ASSERT_TRUE(wait_until([&] { return obs2->alive_count() == 1; },
                         seconds(10.0)));
  ASSERT_TRUE(wait_until([&] {
    const auto info = obs2->node(node.self());
    return info && info->last_report.has_value();
  }));

  node.stop();
  node.join();
}

TEST(ObserverResilience, ReportsFallBackWhenProxyDies) {
  Observer obs{ObserverConfig{}};
  ASSERT_TRUE(obs.start());
  ProxyConfig proxy_config;
  proxy_config.observer = obs.address();
  auto proxy = std::make_unique<Proxy>(proxy_config);
  ASSERT_TRUE(proxy->start());

  EngineConfig config;
  config.observer = obs.address();
  config.report_proxy = proxy->address();
  config.report_interval = millis(100);
  Engine node(config, std::make_unique<RecordingRelay>());
  ASSERT_TRUE(node.start());
  ASSERT_TRUE(wait_until([&] {
    const auto info = obs.node(node.self());
    return info && info->last_report.has_value();
  }));
  EXPECT_GT(proxy->relayed(), 0u);

  // Kill the proxy; reports must keep arriving via the direct connection.
  proxy->stop();
  proxy->join();
  proxy.reset();
  // Bounded drain window: a report already in flight through the proxy
  // must not be mistaken for direct-connection traffic below.
  sleep_for(millis(300));
  const auto before = obs.node(node.self())->last_seen;
  ASSERT_TRUE(wait_until([&] {
    const auto info = obs.node(node.self());
    return info && info->last_seen > before;
  }));

  node.stop();
  node.join();
}

TEST(ObserverResilience, StandaloneNodeNeedsNoObserver) {
  Engine node(EngineConfig{}, std::make_unique<RecordingRelay>());
  ASSERT_TRUE(node.start());
  EXPECT_TRUE(test::holds_for([&] { return node.running(); }, millis(300)));
  node.stop();
  node.join();
}

}  // namespace
}  // namespace iov::observer
