// Observer integration: bootstrap replies with alive subsets, report
// collection, control-panel commands reaching nodes, trace logging, the
// topology dump, and report relaying through the proxy.
#include "observer/observer.h"

#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "engine/engine.h"
#include "observer/proxy.h"
#include "../engine/engine_test_util.h"

namespace iov::observer {
namespace {

using engine::Engine;
using engine::EngineConfig;
using test::RecordingRelay;
using test::wait_until;

constexpr u32 kApp = 1;

struct Node {
  std::unique_ptr<Engine> engine;
  RecordingRelay* relay = nullptr;
};

Node make_node(const NodeId& observer, const NodeId& proxy = NodeId()) {
  auto algorithm = std::make_unique<RecordingRelay>();
  Node n;
  n.relay = algorithm.get();
  EngineConfig config;
  config.observer = observer;
  config.report_proxy = proxy;
  config.report_interval = millis(100);
  // Small locked socket buffers (the fig06 "2004-era" setting): keeps
  // in-flight kernel inventory tiny so terminate-then-count assertions
  // settle fast, and locked buffers are exempt from the memory-pressure
  // window clamp that can stall saturated auto-tuned loopback links
  // (see EngineConfig::socket_buffer_bytes).
  config.socket_buffer_bytes = 32 * 1024;
  n.engine = std::make_unique<Engine>(config, std::move(algorithm));
  return n;
}

TEST(Observer, BootstrapRegistersNodes) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());
  Node a = make_node(obs.address());
  Node b = make_node(obs.address());
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 2; }));
  const auto info = obs.node(a.engine->self());
  ASSERT_TRUE(info.has_value());
  EXPECT_TRUE(info->alive);
}

TEST(Observer, BootstrapReplyPopulatesKnownHosts) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());
  Node a = make_node(obs.address());
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 1; }));
  // The second node's bootstrap reply must name the first.
  Node b = make_node(obs.address());
  ASSERT_TRUE(b.engine->start());
  ASSERT_TRUE(wait_until([&] {
    return b.relay->knows(a.engine->self());
  }));
}

TEST(Observer, BootstrapSubsetSizeHonored) {
  ObserverConfig config;
  config.bootstrap_subset = 2;
  Observer obs(config);
  ASSERT_TRUE(obs.start());
  std::vector<Node> nodes;
  for (int i = 0; i < 5; ++i) {
    nodes.push_back(make_node(obs.address()));
    ASSERT_TRUE(nodes.back().engine->start());
    ASSERT_TRUE(wait_until(
        [&] { return obs.alive_count() == static_cast<std::size_t>(i + 1); }));
  }
  // The last node bootstrapped against 4 alive peers but may learn at
  // most the configured 2 from the reply.
  ASSERT_TRUE(wait_until(
      [&] { return !nodes.back().relay->hosts_snapshot().empty(); }));
  EXPECT_LE(nodes.back().relay->hosts_snapshot().size(), 2u);
}

TEST(Observer, CollectsPeriodicReports) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());
  Node a = make_node(obs.address());
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(wait_until([&] {
    const auto info = obs.node(a.engine->self());
    return info && info->last_report.has_value();
  }));
  EXPECT_EQ(obs.node(a.engine->self())->last_report->node, a.engine->self());
}

TEST(Observer, ControlPanelDeploysAndTerminates) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());
  Node a = make_node(obs.address());
  Node b = make_node(obs.address());
  auto sink = std::make_shared<apps::SinkApp>();
  a.engine->register_app(kApp, std::make_shared<apps::BackToBackSource>(1000));
  b.engine->register_app(kApp, sink);
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 2; }));

  ASSERT_TRUE(obs.deploy(a.engine->self(), kApp));
  ASSERT_TRUE(wait_until([&] { return sink->stats(0).msgs > 20; }));

  ASSERT_TRUE(obs.terminate_source(a.engine->self(), kApp));
  // The stream freezes once the terminate lands and queues drain: wait
  // for the delivery count to go quiet instead of napping a fixed time.
  EXPECT_TRUE(test::wait_stable<u64>([&] { return sink->stats(0).msgs; },
                                     millis(300))
                  .has_value());
}

TEST(Observer, SetBandwidthThrottlesNode) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());
  Node a = make_node(obs.address());
  Node b = make_node(obs.address());
  auto sink = std::make_shared<apps::SinkApp>();
  a.engine->register_app(kApp, std::make_shared<apps::BackToBackSource>(5000));
  b.engine->register_app(kApp, sink);
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 2; }));
  ASSERT_TRUE(obs.set_bandwidth(a.engine->self(), engine::kBwNodeUp, 50e3));
  ASSERT_TRUE(obs.deploy(a.engine->self(), kApp));

  sleep_for(seconds(2.0));
  ASSERT_TRUE(obs.terminate_source(a.engine->self(), kApp));
  const double goodput = sink->mean_goodput();
  EXPECT_GT(goodput, 25e3);
  EXPECT_LT(goodput, 60e3);
}

TEST(Observer, TerminateNodeMarksItDead) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());
  Node a = make_node(obs.address());
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 1; }));
  ASSERT_TRUE(obs.terminate_node(a.engine->self()));
  ASSERT_TRUE(wait_until([&] { return !a.engine->running(); }));
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 0; }));
  a.engine->join();
}

// Algorithm that emits one trace line when started.
class TracingAlgorithm : public Algorithm {
 public:
  void on_start() override { engine().set_timer(millis(50), 1); }
  void on_timer(i32) override { engine().trace("hello from the node"); }
};

TEST(Observer, TraceRecordsArriveCentrally) {
  ObserverConfig config;
  Observer obs(config);
  ASSERT_TRUE(obs.start());
  EngineConfig node_config;
  node_config.observer = obs.address();
  Engine engine(node_config, std::make_unique<TracingAlgorithm>());
  ASSERT_TRUE(engine.start());
  ASSERT_TRUE(wait_until([&] { return !obs.traces().empty(); }));
  const auto traces = obs.traces();
  EXPECT_EQ(traces[0].node, engine.self());
  EXPECT_EQ(traces[0].text, "hello from the node");
}

TEST(Observer, TopologyDotListsEdges) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());
  Node a = make_node(obs.address());
  Node b = make_node(obs.address());
  a.engine->register_app(kApp,
                         std::make_shared<apps::BackToBackSource>(1000));
  b.engine->register_app(kApp, std::make_shared<apps::SinkApp>());
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 2; }));
  ASSERT_TRUE(obs.deploy(a.engine->self(), kApp));
  ASSERT_TRUE(wait_until([&] {
    return obs.topology_dot().find("->") != std::string::npos;
  }));
  const auto dot = obs.topology_dot();
  EXPECT_NE(dot.find(a.engine->self().to_string()), std::string::npos);
  EXPECT_NE(dot.find(b.engine->self().to_string()), std::string::npos);
}

TEST(Observer, ProxyRelaysReports) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());
  ProxyConfig proxy_config;
  proxy_config.observer = obs.address();
  Proxy proxy(proxy_config);
  ASSERT_TRUE(proxy.start());

  Node a = make_node(obs.address(), proxy.address());
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(wait_until([&] {
    const auto info = obs.node(a.engine->self());
    return info && info->last_report.has_value();
  }));
  EXPECT_GT(proxy.relayed(), 0u);
}

}  // namespace
}  // namespace iov::observer
