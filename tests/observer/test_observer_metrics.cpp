// Observability integration: a live two-node loopback overlay ships
// metrics-bearing v2 reports that the observer parses, aggregates and
// exports; v1 (metrics-less) reports from old nodes are still accepted;
// the report round-trip histogram closes.
#include "observer/observer.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "apps/sink.h"
#include "apps/source.h"
#include "engine/engine.h"
#include "net/framing.h"
#include "obs/metric_names.h"
#include "../engine/engine_test_util.h"

namespace iov::observer {
namespace {

using engine::Engine;
using engine::EngineConfig;
using test::RecordingRelay;
using test::wait_until;

constexpr u32 kApp = 1;

struct Node {
  std::unique_ptr<Engine> engine;
  RecordingRelay* relay = nullptr;
};

Node make_node(const NodeId& observer) {
  auto algorithm = std::make_unique<RecordingRelay>();
  Node n;
  n.relay = algorithm.get();
  EngineConfig config;
  config.observer = observer;
  config.report_interval = millis(100);
  n.engine = std::make_unique<Engine>(config, std::move(algorithm));
  return n;
}

const obs::MetricSample* find_sample(const obs::MetricsSnapshot& snap,
                                     std::string_view name) {
  for (const auto& s : snap.samples) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

TEST(ObserverMetrics, TwoNodeOverlayDeliversMetricsToObserver) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());
  Node a = make_node(obs.address());
  Node b = make_node(obs.address());
  auto sink = std::make_shared<apps::SinkApp>();
  a.engine->register_app(kApp, std::make_shared<apps::BackToBackSource>(1000));
  b.engine->register_app(kApp, sink);
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 2; }));
  ASSERT_TRUE(obs.deploy(a.engine->self(), kApp));
  ASSERT_TRUE(wait_until([&] { return sink->stats(0).msgs > 20; }));

  // b switches real data (a sources it locally), so b's periodic report
  // must eventually carry a non-empty switch-latency histogram.
  ASSERT_TRUE(wait_until([&] {
    const auto info = obs.node(b.engine->self());
    if (!info || !info->last_metrics) return false;
    const auto* s = find_sample(*info->last_metrics,
                                obs::names::kSwitchLatencySeconds);
    return s != nullptr && s->hist.count > 0;
  }));

  const auto snap = *obs.node(b.engine->self())->last_metrics;

  // Per-link counters and queue gauges for the a->b link.
  bool up_bytes_seen = false;
  bool queue_depth_seen = false;
  bool capacity_positive = false;
  for (const auto& s : snap.samples) {
    const bool from_a = std::find(s.labels.begin(), s.labels.end(),
                                  std::make_pair(std::string("peer"),
                                                 a.engine->self().to_string()))
                        != s.labels.end();
    if (!from_a) continue;
    if (s.name == obs::names::kLinkBytesTotal && s.value > 0) {
      up_bytes_seen = true;
    }
    if (s.name == obs::names::kLinkQueueDepth) queue_depth_seen = true;
    if (s.name == obs::names::kLinkQueueCapacity && s.value > 0) {
      capacity_positive = true;
    }
  }
  EXPECT_TRUE(up_bytes_seen);
  EXPECT_TRUE(queue_depth_seen);
  EXPECT_TRUE(capacity_positive);

  // The aggregate exports label every sample with its node.
  const std::string prom = obs.prometheus_text();
  EXPECT_NE(prom.find("# TYPE iov_switch_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("node=\"" + b.engine->self().to_string() + "\""),
            std::string::npos);
  EXPECT_NE(prom.find("node=\"observer\""), std::string::npos);
  EXPECT_NE(obs.metrics_json().find("iov_link_bytes_total"),
            std::string::npos);
  EXPECT_NE(obs.metrics_csv().find("iov_observer_reports_total"),
            std::string::npos);

  ASSERT_TRUE(obs.terminate_source(a.engine->self(), kApp));
}

TEST(ObserverMetrics, RequestReportClosesRttHistogram) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());
  Node a = make_node(obs.address());
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 1; }));
  ASSERT_TRUE(obs.request_report(a.engine->self()));
  ASSERT_TRUE(wait_until([&] {
    const auto snap = obs.metrics().snapshot();
    const auto* s = find_sample(snap, obs::names::kObserverReportRttSeconds);
    return s != nullptr && s->hist.count > 0;
  }));
}

TEST(ObserverMetrics, V1ReportWithoutMetricsStillAccepted) {
  Observer obs(ObserverConfig{});
  ASSERT_TRUE(obs.start());

  // Impersonate an old node: raw control connection, v1 report payload
  // (no ver=, no metrics= lines).
  const NodeId self = NodeId::loopback(45678);
  auto conn = TcpConn::connect(obs.address(), seconds(1.0));
  ASSERT_TRUE(conn.has_value());
  ASSERT_TRUE(write_hello(*conn, Hello{ConnKind::kControl, self}));
  const std::string v1 =
      "node=" + self.to_string() + "\nuptime=7\nup=\ndown=\nsrc=\n"
      "joined=\nalg=old node\n";
  ASSERT_TRUE(write_msg(
      *conn, *Msg::text_msg(MsgType::kReport, self, kControlApp, v1)));

  ASSERT_TRUE(wait_until([&] {
    const auto info = obs.node(self);
    return info && info->last_report.has_value();
  }));
  const auto info = obs.node(self);
  EXPECT_EQ(info->last_report->version, 1);
  EXPECT_EQ(info->last_report->algorithm_status, "old node");
  EXPECT_FALSE(info->last_metrics.has_value());

  // Nothing about a v1 report is malformed.
  const auto snap = obs.metrics().snapshot();
  const auto* malformed =
      find_sample(snap, obs::names::kObserverMalformedReportsTotal);
  ASSERT_NE(malformed, nullptr);
  EXPECT_EQ(malformed->value, 0.0);
}

}  // namespace
}  // namespace iov::observer
