// Streaming application tests: GOP structure and pacing of the source,
// playout accounting at the sink, and end-to-end quality on the simulator
// under sufficient vs insufficient bandwidth — the delay-sensitive
// workload class of §2.4.
#include "apps/streaming.h"

#include <gtest/gtest.h>

#include "algorithm/relay.h"
#include "sim/sim_net.h"

namespace iov::apps {
namespace {

const NodeId kSelf = NodeId::loopback(1);
constexpr u32 kApp = 1;

TEST(VideoSource, GopStructureAndPacing) {
  VideoSource source(10.0, /*gop=*/5, /*iframe=*/5000, /*pframe=*/1000);
  EXPECT_DOUBLE_EQ(source.mean_bitrate(), 10.0 * (5000 + 4 * 1000) / 5.0);

  // Nothing before its frame time.
  ASSERT_NE(source.next_message(kApp, kSelf, 0), nullptr);  // frame 0 at t=0
  EXPECT_EQ(source.next_message(kApp, kSelf, millis(50)), nullptr);
  const auto frame1 = source.next_message(kApp, kSelf, millis(100));
  ASSERT_NE(frame1, nullptr);

  // Collect a full GOP and check sizes/types.
  std::vector<MsgPtr> frames{frame1};
  for (int i = 2; i <= 5; ++i) {
    frames.push_back(source.next_message(kApp, kSelf, millis(100) * i));
    ASSERT_NE(frames.back(), nullptr);
  }
  FrameInfo info;
  ASSERT_TRUE(FrameInfo::parse(*frames[3], &info));  // frame 4: P
  EXPECT_EQ(info.type, FrameType::kPFrame);
  EXPECT_EQ(frames[3]->payload_size(), 1000u);
  ASSERT_TRUE(FrameInfo::parse(*frames[4], &info));  // frame 5: next I
  EXPECT_EQ(info.type, FrameType::kIFrame);
  EXPECT_EQ(frames[4]->payload_size(), 5000u);
  EXPECT_EQ(info.frame_id, 5u);
  EXPECT_EQ(info.emitted, millis(500));
}

TEST(PlayoutSink, OnTimeAndLateAccounting) {
  PlayoutSink sink(10.0, /*startup=*/millis(200));
  VideoSource source(10.0, 5, 2000, 1000);
  // Frame 0 emitted at t=0, arrives at t=50ms: base = 250ms.
  auto f0 = source.next_message(kApp, kSelf, 0);
  sink.deliver(f0, millis(50));
  auto s = sink.stats(millis(50));
  EXPECT_EQ(s.on_time, 1u);
  EXPECT_EQ(s.playout_base, millis(250));

  // Frame 1 (due at base + 100 = 350ms) arrives at 300: on time.
  auto f1 = source.next_message(kApp, kSelf, millis(100));
  sink.deliver(f1, millis(300));
  // Frame 2 (due 450ms) arrives at 600: late.
  auto f2 = source.next_message(kApp, kSelf, millis(200));
  sink.deliver(f2, millis(600));
  // A duplicate of frame 2 is not double counted.
  sink.deliver(f2->clone(), millis(650));

  s = sink.stats(millis(700));
  EXPECT_EQ(s.received, 3u);
  EXPECT_EQ(s.on_time, 2u);
  EXPECT_EQ(s.late, 1u);
  EXPECT_EQ(s.duplicates, 1u);
  EXPECT_GT(s.mean_delay_ms, 0.0);
}

TEST(PlayoutSink, MissingFramesCountAgainstQuality) {
  PlayoutSink sink(10.0, millis(100));
  VideoSource source(10.0, 5, 2000, 1000);
  sink.deliver(source.next_message(kApp, kSelf, 0), millis(10));
  // base = 110ms; at t = 1.11s ten frames are due but only one arrived.
  const auto s = sink.stats(millis(1110));
  EXPECT_EQ(s.missing(millis(1110)), 9u);
  EXPECT_NEAR(s.on_time_ratio(millis(1110)), 0.1, 0.01);
}

TEST(Streaming, QualityDependsOnBandwidthEndToEnd) {
  // 200 KB/s video over a relay: clean when the path affords it, heavy
  // late/missing when the relay is capped below the bitrate.
  const auto run = [](double relay_cap) {
    sim::SimNet net;
    auto alg_a = std::make_unique<RelayAlgorithm>();
    auto alg_b = std::make_unique<RelayAlgorithm>();
    auto alg_c = std::make_unique<RelayAlgorithm>();
    auto* relay_a = alg_a.get();
    auto* relay_b = alg_b.get();
    auto* relay_c = alg_c.get();
    sim::SimNodeConfig small;  // delay-sensitive: small buffers (§2.4)
    small.recv_buffer_msgs = 5;
    small.send_buffer_msgs = 5;
    auto& a = net.add_node(std::move(alg_a), small);
    auto& b = net.add_node(std::move(alg_b), small);
    auto& c = net.add_node(std::move(alg_c), small);
    auto source = std::make_shared<VideoSource>(25.0, 10, 20000, 6000);
    auto sink = std::make_shared<PlayoutSink>(25.0, millis(500));
    a.register_app(kApp, source);
    c.register_app(kApp, sink);
    b.bandwidth().set_node_up(relay_cap);
    relay_a->add_child(kApp, b.self());
    relay_b->add_child(kApp, c.self());
    relay_c->set_consume(kApp, true);
    net.deploy(a.self(), kApp);
    net.run_for(seconds(20.0));
    return sink->stats(net.now()).on_time_ratio(net.now());
  };

  const double clean = run(400e3);   // plenty of headroom (~193 KB/s video)
  const double starved = run(60e3);  // well under the bitrate
  EXPECT_GT(clean, 0.95);
  EXPECT_LT(starved, 0.5);
}

}  // namespace
}  // namespace iov::apps
