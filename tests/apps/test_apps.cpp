// Application-layer tests: source production semantics (bounded,
// back-to-back, CBR pacing, timestamps) and sink accounting (duplicates,
// corruption, goodput, delay).
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "message/codec.h"

namespace iov::apps {
namespace {

const NodeId kSelf = NodeId::loopback(1);
const NodeId kOrigin = NodeId::loopback(2);

TEST(BackToBackSource, AlwaysReadyUntilBound) {
  BackToBackSource source(100, /*max_msgs=*/3);
  EXPECT_NE(source.next_message(1, kSelf, 0), nullptr);
  EXPECT_NE(source.next_message(1, kSelf, 0), nullptr);
  EXPECT_NE(source.next_message(1, kSelf, 0), nullptr);
  EXPECT_EQ(source.next_message(1, kSelf, 0), nullptr);
  EXPECT_EQ(source.produced(), 3u);
}

TEST(BackToBackSource, UnboundedKeepsProducing) {
  BackToBackSource source(10);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(source.next_message(1, kSelf, 0), nullptr);
  }
}

TEST(BackToBackSource, MessagesCarryPatternedPayload) {
  BackToBackSource source(64);
  const auto m0 = source.next_message(7, kSelf, 0);
  const auto m1 = source.next_message(7, kSelf, 0);
  EXPECT_EQ(m0->app(), 7u);
  EXPECT_EQ(m0->origin(), kSelf);
  EXPECT_EQ(m0->payload()->bytes(), Buffer::pattern(64, 0)->bytes());
  EXPECT_EQ(m1->payload()->bytes(), Buffer::pattern(64, 1)->bytes());
}

TEST(CbrSource, PacesToConfiguredRate) {
  CbrSource source(1000, 10e3);  // 10 messages/second
  // Nothing before the allowance accrues.
  EXPECT_EQ(source.next_message(1, kSelf, 0), nullptr);
  // After exactly 1 second, 10 messages are available.
  int available = 0;
  while (source.next_message(1, kSelf, seconds(1.0))) ++available;
  EXPECT_EQ(available, 10);
  // Half a second later, 5 more.
  available = 0;
  while (source.next_message(1, kSelf, seconds(1.5))) ++available;
  EXPECT_EQ(available, 5);
}

TEST(CbrSource, TimestampedEmbedsEmissionTime) {
  CbrSource source(100, 1e6, /*timestamped=*/true);
  // The allowance clock starts at the first poll.
  EXPECT_EQ(source.next_message(1, kSelf, seconds(1.0)), nullptr);
  const auto m = source.next_message(1, kSelf, seconds(2.0));
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(codec::read_u64(m->payload()->data()),
            static_cast<u64>(seconds(2.0)));
}

TEST(SinkApp, CountsDistinctAndDuplicates) {
  SinkApp sink;
  const auto m = Msg::data(kOrigin, 1, 5, Buffer::pattern(10, 5));
  sink.deliver(m, 0);
  sink.deliver(m, 10);      // duplicate (same origin+seq)
  sink.deliver(m->clone(), 20);  // still the same identity
  const auto other = Msg::data(kSelf, 1, 5, Buffer::pattern(10, 5));
  sink.deliver(other, 30);  // different origin: distinct
  const auto stats = sink.stats(40);
  EXPECT_EQ(stats.msgs, 4u);
  EXPECT_EQ(stats.distinct, 2u);
  EXPECT_EQ(stats.duplicates, 2u);
}

TEST(SinkApp, DetectsCorruption) {
  SinkApp sink(/*expected_payload_bytes=*/32);
  sink.deliver(Msg::data(kOrigin, 1, 3, Buffer::pattern(32, 3)), 0);
  EXPECT_EQ(sink.stats(0).corrupt, 0u);
  // Wrong seed for the sequence number: corrupt.
  sink.deliver(Msg::data(kOrigin, 1, 4, Buffer::pattern(32, 99)), 0);
  EXPECT_EQ(sink.stats(0).corrupt, 1u);
  // Wrong size: corrupt.
  sink.deliver(Msg::data(kOrigin, 1, 5, Buffer::pattern(16, 5)), 0);
  EXPECT_EQ(sink.stats(0).corrupt, 2u);
}

TEST(SinkApp, MeanGoodputOverDeliverySpan) {
  SinkApp sink;
  for (int i = 0; i < 11; ++i) {
    sink.deliver(Msg::data(kOrigin, 1, static_cast<u32>(i),
                           Buffer::pattern(1000, 0)),
                 millis(100) * i);
  }
  // 11 kB over 1.0 s of delivery span.
  EXPECT_NEAR(sink.mean_goodput(), 11000.0, 1.0);
}

TEST(SinkApp, DelayTrackingFromTimestamps) {
  SinkApp sink;
  sink.track_delay(true);
  std::vector<u8> payload(20, 0);
  codec::write_u64(payload.data(), static_cast<u64>(seconds(1.0)));
  sink.deliver(Msg::data(kOrigin, 1, 0, Buffer::wrap(std::move(payload))),
               seconds(1.0) + millis(300));
  EXPECT_NEAR(sink.mean_delay(), static_cast<double>(millis(300)), 1.0);
  EXPECT_NEAR(sink.max_delay(), static_cast<double>(millis(300)), 1.0);
}

TEST(SinkApp, DelayIgnoresImplausibleTimestamps) {
  SinkApp sink;
  sink.track_delay(true);
  std::vector<u8> payload(20, 0);
  codec::write_u64(payload.data(), static_cast<u64>(seconds(100.0)));
  // "Sent" in the future relative to delivery: ignored.
  sink.deliver(Msg::data(kOrigin, 1, 0, Buffer::wrap(std::move(payload))),
               seconds(1.0));
  EXPECT_EQ(sink.mean_delay(), 0.0);
}

TEST(SinkApp, SinksNeverProduce) {
  SinkApp sink;
  EXPECT_EQ(sink.next_message(1, kSelf, 0), nullptr);
}

}  // namespace
}  // namespace iov::apps
