#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace iov::sim {
namespace {

TEST(EventQueue, ExecutesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run_all();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NowAdvancesToEventTime) {
  EventQueue q;
  TimePoint seen = -1;
  q.schedule_at(1234, [&] { seen = q.now(); });
  q.run_all();
  EXPECT_EQ(seen, 1234);
}

TEST(EventQueue, RunUntilStopsAtBoundary) {
  EventQueue q;
  int fired = 0;
  q.schedule_at(10, [&] { ++fired; });
  q.schedule_at(20, [&] { ++fired; });
  q.schedule_at(30, [&] { ++fired; });
  EXPECT_EQ(q.run_until(20), 2u);  // inclusive boundary
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
  q.run_for(10);
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, RunUntilAdvancesTimeEvenWithoutEvents) {
  EventQueue q;
  q.run_until(500);
  EXPECT_EQ(q.now(), 500);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) q.schedule_in(10, recurse);
  };
  q.schedule_in(10, recurse);
  q.run_all();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(q.now(), 50);
}

TEST(EventQueue, PastScheduleClampsToNow) {
  EventQueue q;
  q.run_until(100);
  TimePoint seen = -1;
  q.schedule_at(10, [&] { seen = q.now(); });  // in the past
  q.run_all();
  EXPECT_EQ(seen, 100);
}

TEST(EventQueue, NegativeDelayClamps) {
  EventQueue q;
  q.run_until(50);
  TimePoint seen = -1;
  q.schedule_in(-20, [&] { seen = q.now(); });
  q.run_all();
  EXPECT_EQ(seen, 50);
}

}  // namespace
}  // namespace iov::sim
