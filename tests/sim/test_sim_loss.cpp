// Emulated wire loss on the simulated substrate: drop rates are honored
// statistically, losses land in the QoS meters, and lossless links are
// untouched.
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "sim/sim_net.h"
#include "trees/tree_algorithm.h"
#include "../engine/engine_test_util.h"

namespace iov::sim {
namespace {

using apps::BackToBackSource;
using apps::SinkApp;
using test::RecordingRelay;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 1000;

struct SimNode {
  SimEngine* engine = nullptr;
  RecordingRelay* relay = nullptr;
};

SimNode add_relay_node(SimNet& net) {
  auto algorithm = std::make_unique<RecordingRelay>();
  SimNode n;
  n.relay = algorithm.get();
  n.engine = &net.add_node(std::move(algorithm), SimNodeConfig{});
  return n;
}

TEST(SimLoss, DropRateIsHonoredStatistically) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  auto sink = std::make_shared<SinkApp>();
  constexpr u64 kMsgs = 2000;
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, kMsgs));
  b.engine->register_app(kApp, sink);
  net.set_loss(a.engine->self(), b.engine->self(), 0.25);
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(30.0));

  const double received = static_cast<double>(sink->stats(0).msgs);
  EXPECT_NEAR(received / kMsgs, 0.75, 0.05);
  // Dropped messages are accounted as losses at the receiving side.
  const auto up = b.engine->upstream_stats(a.engine->self());
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(up->lost_msgs + static_cast<u64>(received), kMsgs);
}

TEST(SimLoss, ZeroLossDeliversEverything) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, 500));
  b.engine->register_app(kApp, sink);
  net.set_loss(a.engine->self(), b.engine->self(), 0.0);
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(10.0));
  EXPECT_EQ(sink->stats(0).distinct, 500u);
}

TEST(SimLoss, LossIsDirectional) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  auto sink_a = std::make_shared<SinkApp>();
  auto sink_b = std::make_shared<SinkApp>();
  constexpr u32 kAppBack = 2;
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, 400));
  a.engine->register_app(kAppBack, sink_a);
  b.engine->register_app(kAppBack,
                         std::make_shared<BackToBackSource>(kPayload, 400));
  b.engine->register_app(kApp, sink_b);
  net.set_loss(a.engine->self(), b.engine->self(), 1.0);  // a->b black hole
  a.relay->add_child(kApp, b.engine->self());
  b.relay->add_child(kAppBack, a.engine->self());
  a.relay->set_consume(kAppBack, true);
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);
  net.deploy(b.engine->self(), kAppBack);
  net.run_for(seconds(15.0));

  EXPECT_EQ(sink_b->stats(0).msgs, 0u);        // everything a->b dropped
  EXPECT_EQ(sink_a->stats(0).distinct, 400u);  // b->a untouched
}

TEST(SimLoss, LossyProtocolPathStillConvergesViaRetry) {
  // Tree construction over 30%-lossy links: join queries and acks can
  // vanish, but the periodic rejoin retry eventually attaches everyone.
  SimNet net;
  struct Member {
    SimEngine* engine;
    trees::TreeAlgorithm* alg;
  };
  std::vector<Member> members;
  const auto add = [&](double bw) {
    auto algorithm = std::make_unique<trees::TreeAlgorithm>(
        trees::TreeStrategy::kNsAware, bw);
    Member m{nullptr, algorithm.get()};
    SimNodeConfig config;
    config.bandwidth.node_up = bw;
    m.engine = &net.add_node(std::move(algorithm), config);
    return m;
  };
  members.push_back(add(100e3));  // source
  for (int i = 0; i < 3; ++i) members.push_back(add(100e3));
  // Lossy world, configured before any link exists.
  for (const auto& x : members) {
    for (const auto& y : members) {
      if (x.engine != y.engine) {
        net.set_loss(x.engine->self(), y.engine->self(), 0.3);
      }
    }
  }
  for (const auto& m : members) net.bootstrap(m.engine->self(), 8);
  const std::string announce = members[0].engine->self().to_string();
  for (const auto& m : members) {
    net.post(m.engine->self(),
             Msg::control(MsgType::kSAnnounce, NodeId(), kControlApp,
                          static_cast<i32>(kApp), 0, announce));
  }
  members[0].engine->register_app(
      kApp, std::make_shared<apps::CbrSource>(kPayload, 100e3));
  net.deploy(members[0].engine->self(), kApp);
  net.run_for(millis(200));
  for (std::size_t i = 1; i < members.size(); ++i) {
    net.join_app(members[i].engine->self(), kApp);
  }
  net.run_for(seconds(60.0));
  for (std::size_t i = 1; i < members.size(); ++i) {
    EXPECT_TRUE(members[i].alg->in_tree(kApp)) << "receiver " << i;
  }
}

}  // namespace
}  // namespace iov::sim
