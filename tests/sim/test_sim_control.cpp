// Observer-style control over the simulated substrate: kSetBandwidth at
// runtime, join/leave plumbing, close_link semantics, and trace/accounting
// edge cases.
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "engine/engine.h"  // BandwidthScope
#include "sim/sim_net.h"
#include "../engine/engine_test_util.h"

namespace iov::sim {
namespace {

using apps::BackToBackSource;
using apps::SinkApp;
using test::RecordingRelay;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;

struct SimNode {
  SimEngine* engine = nullptr;
  RecordingRelay* relay = nullptr;
};

SimNode add_relay_node(SimNet& net) {
  auto algorithm = std::make_unique<RecordingRelay>();
  SimNode n;
  n.relay = algorithm.get();
  n.engine = &net.add_node(std::move(algorithm), SimNodeConfig{});
  return n;
}

TEST(SimControl, SetBandwidthControlMessageThrottlesAtRuntime) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  b.engine->register_app(kApp, sink);
  a.engine->bandwidth().set_node_up(200e3);
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(5.0));
  const u64 fast = sink->stats(0).bytes;
  EXPECT_GT(static_cast<double>(fast) / 5.0, 150e3);

  // The observer tightens A's uplink mid-run via the control plane.
  net.post(a.engine->self(),
           Msg::control(MsgType::kSetBandwidth, NodeId(), kControlApp,
                        engine::kBwNodeUp, 20000));
  net.run_for(seconds(5.0));   // drain queued backlog
  const u64 mid = sink->stats(0).bytes;
  net.run_for(seconds(10.0));
  const double slow_rate =
      static_cast<double>(sink->stats(0).bytes - mid) / 10.0;
  EXPECT_LT(slow_rate, 30e3);
  EXPECT_GT(slow_rate, 10e3);
}

SimNode add_big_relay_node(SimNet& net) {
  auto algorithm = std::make_unique<RecordingRelay>();
  SimNode n;
  n.relay = algorithm.get();
  SimNodeConfig big;  // deep buffers so the link cap stays contained
  big.recv_buffer_msgs = 10000;
  big.send_buffer_msgs = 10000;
  n.engine = &net.add_node(std::move(algorithm), big);
  return n;
}

TEST(SimControl, SetLinkBandwidthViaControlText) {
  SimNet net;
  SimNode a = add_big_relay_node(net);
  SimNode b = add_big_relay_node(net);
  SimNode c = add_big_relay_node(net);
  auto sink_b = std::make_shared<SinkApp>();
  auto sink_c = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  b.engine->register_app(kApp, sink_b);
  c.engine->register_app(kApp, sink_c);
  a.engine->bandwidth().set_node_up(200e3);
  a.relay->add_child(kApp, b.engine->self());
  a.relay->add_child(kApp, c.engine->self());
  b.relay->set_consume(kApp, true);
  c.relay->set_consume(kApp, true);
  net.post(a.engine->self(),
           Msg::control(MsgType::kSetBandwidth, NodeId(), kControlApp,
                        engine::kBwLinkUp, 15000,
                        b.engine->self().to_string()));
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(10.0));
  const double rate_b = static_cast<double>(sink_b->stats(0).bytes) / 10.0;
  const double rate_c = static_cast<double>(sink_c->stats(0).bytes) / 10.0;
  EXPECT_LT(rate_b, 20e3);
  EXPECT_GT(rate_c, 50e3);  // back-pressure shares A's uplink unevenly
}

TEST(SimControl, CloseLinkNotifiesPeerOnly) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, 20));
  b.engine->register_app(kApp, std::make_shared<SinkApp>());
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(2.0));

  // A's algorithm deliberately drops the link.
  struct Closer : Algorithm {};
  a.engine->close_link(b.engine->self());
  net.run_for(seconds(1.0));
  // The peer hears a broken link; the initiator does not.
  EXPECT_TRUE(b.relay->saw(MsgType::kBrokenLink, a.engine->self()));
  EXPECT_FALSE(a.relay->saw(MsgType::kBrokenLink, b.engine->self()));
}

TEST(SimControl, JoinAndLeaveRoundTrip) {
  SimNet net;
  SimNode a = add_relay_node(net);
  net.join_app(a.engine->self(), 7, "hint-arg");
  net.run_for(millis(10));
  EXPECT_EQ(a.relay->count(MsgType::kSJoin), 1u);
  net.post(a.engine->self(),
           Msg::control(MsgType::kSLeave, NodeId(), kControlApp, 7));
  net.run_for(millis(10));
  EXPECT_EQ(a.relay->count(MsgType::kSLeave), 1u);
}

TEST(SimControl, AccountingPerDestMatchesPerNode) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, 25));
  b.engine->register_app(kApp, std::make_shared<SinkApp>());
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(3.0));
  const auto& acct = net.accounting();
  const auto sent = acct.per_node.at(a.engine->self()).at(MsgType::kData);
  const auto recvd = acct.per_dest.at(b.engine->self()).at(MsgType::kData);
  EXPECT_EQ(sent.msgs, 25u);
  EXPECT_EQ(sent.bytes, recvd.bytes);
  EXPECT_EQ(acct.bytes_of(MsgType::kData), sent.bytes);
}

}  // namespace
}  // namespace iov::sim
