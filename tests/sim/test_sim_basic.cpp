// SimNet basics: delivery, determinism from seeds, virtual-time
// bandwidth caps, timers, bootstrap, control plane, failure Domino, and
// protocol accounting.
#include "sim/sim_net.h"

#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "../engine/engine_test_util.h"

namespace iov::sim {
namespace {

using apps::BackToBackSource;
using apps::CbrSource;
using apps::SinkApp;
using test::RecordingRelay;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;

struct SimNode {
  SimEngine* engine = nullptr;
  RecordingRelay* relay = nullptr;
};

SimNode add_relay_node(SimNet& net, SimNodeConfig config = {}) {
  auto algorithm = std::make_unique<RecordingRelay>();
  SimNode n;
  n.relay = algorithm.get();
  n.engine = &net.add_node(std::move(algorithm), config);
  return n;
}

TEST(SimBasic, BoundedStreamDeliveredIntact) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  auto sink = std::make_shared<SinkApp>(kPayload);
  constexpr u64 kMsgs = 100;
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, kMsgs));
  b.engine->register_app(kApp, sink);
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);

  net.run_for(seconds(10.0));
  const auto stats = sink->stats(net.now());
  EXPECT_EQ(stats.distinct, kMsgs);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
}

TEST(SimBasic, ChainDeliveryAndOrdering) {
  SimNet net;
  std::vector<SimNode> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(add_relay_node(net));
  auto sink = std::make_shared<SinkApp>(kPayload);
  constexpr u64 kMsgs = 50;
  nodes[0].engine->register_app(
      kApp, std::make_shared<BackToBackSource>(kPayload, kMsgs));
  nodes[4].engine->register_app(kApp, sink);
  for (int i = 0; i < 4; ++i) {
    nodes[i].relay->add_child(kApp, nodes[i + 1].engine->self());
  }
  nodes[4].relay->set_consume(kApp, true);
  net.deploy(nodes[0].engine->self(), kApp);
  net.run_for(seconds(10.0));
  EXPECT_EQ(sink->stats(net.now()).distinct, kMsgs);
}

TEST(SimBasic, IdenticalSeedsGiveIdenticalRuns) {
  auto run = [](u64 seed) {
    SimNet::Config config;
    config.seed = seed;
    SimNet net(config);
    SimNode a = add_relay_node(net);
    SimNode b = add_relay_node(net);
    SimNode c = add_relay_node(net);
    auto sink_b = std::make_shared<SinkApp>();
    auto sink_c = std::make_shared<SinkApp>();
    SimNodeConfig capped;
    a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
    b.engine->register_app(kApp, sink_b);
    c.engine->register_app(kApp, sink_c);
    a.engine->bandwidth().set_node_up(200e3);
    a.relay->add_child(kApp, b.engine->self());
    a.relay->add_child(kApp, c.engine->self());
    b.relay->set_consume(kApp, true);
    c.relay->set_consume(kApp, true);
    net.deploy(a.engine->self(), kApp);
    net.run_for(seconds(5.0));
    return std::make_tuple(sink_b->stats(net.now()).msgs,
                           sink_c->stats(net.now()).msgs,
                           net.accounting().bytes_of(MsgType::kData));
  };
  EXPECT_EQ(run(7), run(7));
  // And a different seed still delivers (sanity that runs are live).
  EXPECT_GT(std::get<0>(run(8)), 0u);
}

TEST(SimBasic, UplinkCapBoundsVirtualTimeThroughput) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  b.engine->register_app(kApp, sink);
  a.engine->bandwidth().set_node_up(100e3);  // 100 KB/s
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);

  net.run_for(seconds(20.0));
  const auto stats = sink->stats(net.now());
  const double goodput = static_cast<double>(stats.bytes) / 20.0;
  EXPECT_GT(goodput, 85e3);
  EXPECT_LT(goodput, 105e3);
}

TEST(SimBasic, PerLinkCapIsolatesSiblings) {
  // A fans out to B and C with *large* buffers; capping link A->B leaves
  // A->C at full source rate (the Fig 7(b) property).
  SimNet net;
  SimNodeConfig big;
  big.recv_buffer_msgs = 10000;
  big.send_buffer_msgs = 10000;
  SimNode a = add_relay_node(net, big);
  SimNode b = add_relay_node(net, big);
  SimNode c = add_relay_node(net, big);
  auto sink_b = std::make_shared<SinkApp>();
  auto sink_c = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<CbrSource>(kPayload, 200e3));
  b.engine->register_app(kApp, sink_b);
  c.engine->register_app(kApp, sink_c);
  a.engine->bandwidth().set_link_up(b.engine->self(), 15e3);
  a.relay->add_child(kApp, b.engine->self());
  a.relay->add_child(kApp, c.engine->self());
  b.relay->set_consume(kApp, true);
  c.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);

  net.run_for(seconds(20.0));
  const double rate_b = static_cast<double>(sink_b->stats(0).bytes) / 20.0;
  const double rate_c = static_cast<double>(sink_c->stats(0).bytes) / 20.0;
  EXPECT_LT(rate_b, 20e3);
  EXPECT_GT(rate_c, 150e3);
}

TEST(SimBasic, TimersFireAtVirtualTimes) {
  struct TimerAlg : Algorithm {
    std::vector<std::pair<i32, TimePoint>> fired;
    void on_start() override {
      engine().set_timer(seconds(1.0), 1);
      engine().set_timer(seconds(3.0), 3);
      engine().set_timer(seconds(2.0), 2);
    }
    void on_timer(i32 id) override { fired.push_back({id, engine().now()}); }
  };
  SimNet net;
  auto algorithm = std::make_unique<TimerAlg>();
  auto* alg = algorithm.get();
  net.add_node(std::move(algorithm));
  net.run_for(seconds(5.0));
  ASSERT_EQ(alg->fired.size(), 3u);
  EXPECT_EQ(alg->fired[0].first, 1);
  EXPECT_EQ(alg->fired[1].first, 2);
  EXPECT_EQ(alg->fired[2].first, 3);
  EXPECT_EQ(alg->fired[0].second, seconds(1.0));
  EXPECT_EQ(alg->fired[2].second, seconds(3.0));
}

TEST(SimBasic, BootstrapFillsKnownHosts) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  SimNode c = add_relay_node(net);
  net.run_for(millis(1));
  net.bootstrap(c.engine->self(), 8);
  net.run_for(millis(1));
  EXPECT_TRUE(c.relay->known_hosts().contains(a.engine->self()));
  EXPECT_TRUE(c.relay->known_hosts().contains(b.engine->self()));
  EXPECT_FALSE(c.relay->known_hosts().contains(c.engine->self()));
}

TEST(SimBasic, KillNodeTriggersDomino) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  SimNode c = add_relay_node(net);
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  c.engine->register_app(kApp, sink);
  a.relay->add_child(kApp, b.engine->self());
  b.relay->add_child(kApp, c.engine->self());
  c.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(1.0));
  ASSERT_GT(sink->stats(0).msgs, 0u);

  net.kill_node(a.engine->self());
  net.run_for(seconds(1.0));
  EXPECT_TRUE(b.relay->saw(MsgType::kBrokenLink, a.engine->self()));
  EXPECT_TRUE(c.relay->saw(MsgType::kBrokenSource, a.engine->self()));
}

TEST(SimBasic, TerminateSourceStopsFlow) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  b.engine->register_app(kApp, sink);
  a.engine->bandwidth().set_node_up(100e3);
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(2.0));
  net.terminate_source(a.engine->self(), kApp);
  net.run_for(seconds(1.0));
  const u64 frozen = sink->stats(0).msgs;
  net.run_for(seconds(2.0));
  EXPECT_EQ(sink->stats(0).msgs, frozen);
}

TEST(SimBasic, AccountingSeparatesTypes) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, 10));
  b.engine->register_app(kApp, sink);
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(2.0));

  const auto& acct = net.accounting();
  EXPECT_EQ(acct.bytes_of(MsgType::kData), 10 * (kPayload + Msg::kHeaderSize));
  EXPECT_EQ(acct.node_bytes_of(a.engine->self(), MsgType::kData),
            10 * (kPayload + Msg::kHeaderSize));
  EXPECT_EQ(acct.node_bytes_of(b.engine->self(), MsgType::kData), 0u);
}

TEST(SimBasic, TraceCollection) {
  struct Tracer : Algorithm {
    void on_start() override { engine().trace("sim trace line"); }
  };
  SimNet net;
  auto& node = net.add_node(std::make_unique<Tracer>());
  net.run_for(millis(1));
  ASSERT_EQ(net.traces().size(), 1u);
  EXPECT_EQ(net.traces()[0].node, node.self());
  EXPECT_EQ(net.traces()[0].text, "sim trace line");
}

TEST(SimBasic, LatencyDelaysDelivery) {
  SimNet net;
  SimNode a = add_relay_node(net);
  SimNode b = add_relay_node(net);
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, 1));
  b.engine->register_app(kApp, sink);
  net.set_latency(a.engine->self(), b.engine->self(), millis(250));
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);

  net.run_for(millis(200));
  EXPECT_EQ(sink->stats(0).msgs, 0u);  // still in flight
  net.run_for(millis(200));
  EXPECT_EQ(sink->stats(0).msgs, 1u);
  EXPECT_GE(sink->stats(0).first_delivery, millis(250));
}

}  // namespace
}  // namespace iov::sim
