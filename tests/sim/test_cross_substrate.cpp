// Cross-substrate validation: the same topology, bandwidth caps and
// workload run on the real engine (threads + loopback TCP) and on the
// simulator must produce comparable steady-state throughput. This is the
// direct evidence behind DESIGN.md's claim that the simulated substrate
// can stand in for the testbed experiments.
#include <gtest/gtest.h>

#include <set>

#include "apps/sink.h"
#include "apps/source.h"
#include "chaos/fault_plan.h"
#include "chaos/real_driver.h"
#include "chaos/sim_driver.h"
#include "chaos/verify.h"
#include "engine/engine.h"
#include "observer/observer.h"
#include "scenario/streaming_churn.h"
#include "sim/sim_net.h"
#include "../engine/engine_test_util.h"

namespace iov {
namespace {

using test::RecordingRelay;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;
constexpr double kCap = 80e3;  // relay uplink cap, bytes/s

// 3-node chain A -> B -> C with B's uplink capped; returns the sink's
// goodput in bytes/s over the measurement window.
double run_real(Duration measure) {
  auto alg_a = std::make_unique<RecordingRelay>();
  auto alg_b = std::make_unique<RecordingRelay>();
  auto alg_c = std::make_unique<RecordingRelay>();
  auto* relay_a = alg_a.get();
  auto* relay_b = alg_b.get();
  auto* relay_c = alg_c.get();
  engine::EngineConfig capped;
  capped.bandwidth.node_up = kCap;
  capped.socket_buffer_bytes = 32 * 1024;
  engine::Engine a(engine::EngineConfig{}, std::move(alg_a));
  engine::Engine b(capped, std::move(alg_b));
  engine::Engine c(engine::EngineConfig{}, std::move(alg_c));
  auto sink = std::make_shared<apps::SinkApp>();
  a.register_app(kApp, std::make_shared<apps::BackToBackSource>(kPayload));
  c.register_app(kApp, sink);
  EXPECT_TRUE(a.start());
  EXPECT_TRUE(b.start());
  EXPECT_TRUE(c.start());
  relay_a->add_child(kApp, b.self());
  relay_b->add_child(kApp, c.self());
  relay_c->set_consume(kApp, true);
  a.deploy_source(kApp);

  sleep_for(seconds(1.0));  // warm up / converge
  const u64 before = sink->stats(0).bytes;
  sleep_for(measure);
  const u64 after = sink->stats(0).bytes;
  a.stop();
  b.stop();
  c.stop();
  a.join();
  b.join();
  c.join();
  return static_cast<double>(after - before) / to_seconds(measure);
}

double run_sim(Duration measure) {
  sim::SimNet net;
  auto alg_a = std::make_unique<RecordingRelay>();
  auto alg_b = std::make_unique<RecordingRelay>();
  auto alg_c = std::make_unique<RecordingRelay>();
  auto* relay_a = alg_a.get();
  auto* relay_b = alg_b.get();
  auto* relay_c = alg_c.get();
  sim::SimNodeConfig config;
  auto& a = net.add_node(std::move(alg_a), config);
  auto& b = net.add_node(std::move(alg_b), config);
  auto& c = net.add_node(std::move(alg_c), config);
  auto sink = std::make_shared<apps::SinkApp>();
  a.register_app(kApp, std::make_shared<apps::BackToBackSource>(kPayload));
  c.register_app(kApp, sink);
  b.bandwidth().set_node_up(kCap);
  relay_a->add_child(kApp, b.self());
  relay_b->add_child(kApp, c.self());
  relay_c->set_consume(kApp, true);
  net.deploy(a.self(), kApp);

  net.run_for(seconds(3.0));
  const u64 before = sink->stats(0).bytes;
  net.run_for(measure);
  const u64 after = sink->stats(0).bytes;
  return static_cast<double>(after - before) / to_seconds(measure);
}

// Runs the same kill-B-mid-stream FaultPlan on a 3-node chain and
// returns which abstract nodes still participate in the session
// afterwards: "A" if the source is still sourcing, "B" if the middle
// relay is still up, "C" if the sink still receives fresh bytes.
std::set<std::string> real_survivors_after_kill() {
  observer::Observer obs{observer::ObserverConfig{}};
  EXPECT_TRUE(obs.start());
  std::set<std::string> survivors;
  {
    auto alg_a = std::make_unique<RecordingRelay>();
    auto alg_b = std::make_unique<RecordingRelay>();
    auto alg_c = std::make_unique<RecordingRelay>();
    auto* relay_a = alg_a.get();
    auto* relay_b = alg_b.get();
    auto* relay_c = alg_c.get();
    engine::EngineConfig config;
    config.observer = obs.address();
    engine::Engine a(config, std::move(alg_a));
    engine::Engine b(config, std::move(alg_b));
    engine::Engine c(config, std::move(alg_c));
    auto sink = std::make_shared<apps::SinkApp>();
    a.register_app(kApp, std::make_shared<apps::BackToBackSource>(kPayload));
    c.register_app(kApp, sink);
    EXPECT_TRUE(a.start());
    EXPECT_TRUE(b.start());
    EXPECT_TRUE(c.start());
    relay_a->add_child(kApp, b.self());
    relay_b->add_child(kApp, c.self());
    relay_c->set_consume(kApp, true);
    a.deploy_source(kApp);
    EXPECT_TRUE(test::wait_until(
        [&] { return sink->stats(0).bytes > 10000; }, seconds(10.0)));

    chaos::FaultPlan plan;
    plan.kill(millis(100), "B");
    chaos::RealChaosDriver driver(obs, plan, chaos::Binding{{"B", b.self()}});
    driver.run();
    // Wait for the Domino to reach C, then for queues to drain.
    EXPECT_TRUE(test::wait_until(
        [&] {
          return !b.running() &&
                 relay_c->count(MsgType::kBrokenLink) +
                         relay_c->count(MsgType::kBrokenSource) >
                     0;
        },
        seconds(10.0)));

    if (a.running() && a.is_source(kApp)) survivors.insert("A");
    if (b.running()) survivors.insert("B");
    // C survives iff its byte count never goes quiet: poll for
    // stability instead of comparing two arbitrary sample instants.
    if (!test::wait_stable<u64>([&] { return sink->stats(0).bytes; },
                                seconds(1.0), seconds(5.0))
             .has_value()) {
      survivors.insert("C");
    }

    a.stop();
    b.stop();
    c.stop();
    a.join();
    b.join();
    c.join();
  }
  obs.stop();
  obs.join();
  return survivors;
}

std::set<std::string> sim_survivors_after_kill() {
  sim::SimNet net;
  auto alg_a = std::make_unique<RecordingRelay>();
  auto alg_b = std::make_unique<RecordingRelay>();
  auto alg_c = std::make_unique<RecordingRelay>();
  auto* relay_a = alg_a.get();
  auto* relay_b = alg_b.get();
  auto* relay_c = alg_c.get();
  auto& a = net.add_node(std::move(alg_a));
  auto& b = net.add_node(std::move(alg_b));
  auto& c = net.add_node(std::move(alg_c));
  auto sink = std::make_shared<apps::SinkApp>();
  a.register_app(kApp, std::make_shared<apps::BackToBackSource>(kPayload));
  c.register_app(kApp, sink);
  relay_a->add_child(kApp, b.self());
  relay_b->add_child(kApp, c.self());
  relay_c->set_consume(kApp, true);
  net.deploy(a.self(), kApp);
  net.run_for(seconds(2.0));

  chaos::FaultPlan plan;
  plan.kill(millis(100), "B");
  chaos::SimChaosDriver driver(net, plan, chaos::Binding{{"B", b.self()}});
  driver.run_for(seconds(6.0));
  EXPECT_EQ(chaos::verify_domino_teardown(net).to_string(), "ok");

  std::set<std::string> survivors;
  if (a.alive() && a.is_source(kApp)) survivors.insert("A");
  if (b.alive()) survivors.insert("B");
  const u64 settled = sink->stats(0).bytes;
  net.run_for(seconds(1.0));
  if (sink->stats(0).bytes > settled) survivors.insert("C");
  return survivors;
}

// The same fault plan must kill the same sessions on both substrates:
// the source keeps sourcing, the killed relay is gone, and the sink's
// session is torn down by the Domino (paper §2.2).
TEST(CrossSubstrate, KillMidStreamSurvivalAgrees) {
  const std::set<std::string> real = real_survivors_after_kill();
  const std::set<std::string> simulated = sim_survivors_after_kill();
  EXPECT_EQ(real, simulated);
  EXPECT_EQ(real, (std::set<std::string>{"A"}));
}

// One churn schedule, two substrates. generate_churn is pure, so both
// runners execute the exact same join/drop/depart sequence; afterwards
// the *outcomes* must agree: the same viewers permanently departed, the
// same viewers survived in the tree, every survivor actually received
// frames, and nobody ended up a permanent orphan. Wall-clock jitter on
// the real substrate means latency aggregates are compared with loose
// bounds, not equality.
TEST(CrossSubstrate, StreamingChurnOutcomeAgrees) {
  scenario::StreamingChurnConfig config;
  config.churn.viewers = 6;
  config.churn.seed = 11;
  config.churn.waves = 1;
  config.churn.wave_spacing = seconds(1.0);
  config.churn.wave_spread = seconds(1.0);
  config.churn.mean_session_seconds = 6.0;
  config.churn.depart_fraction = 0.5;
  config.churn.correlated_fraction = 0.0;
  config.churn.shocks = 0;
  config.churn.horizon = seconds(6.0);
  config.fps = 4.0;
  config.settle = seconds(5.0);

  const auto real = scenario::run_real_streaming_churn(config);
  const auto simulated = scenario::run_sim_streaming_churn(config);

  // Identical config -> identical schedule, on both substrates.
  EXPECT_EQ(real.schedule.to_string(), simulated.schedule.to_string());

  auto outcome_sets = [](const scenario::StreamingChurnResult& r) {
    std::set<std::size_t> departed, survived;
    for (const auto& v : r.viewers) {
      if (v.departed) departed.insert(v.viewer);
      if (v.ever_joined && !v.departed && v.alive_in_tree)
        survived.insert(v.viewer);
    }
    return std::make_pair(departed, survived);
  };
  const auto [real_departed, real_survived] = outcome_sets(real);
  const auto [sim_departed, sim_survived] = outcome_sets(simulated);
  EXPECT_EQ(real_departed, sim_departed);
  EXPECT_EQ(real_survived, sim_survived);
  EXPECT_FALSE(real_survived.empty());

  EXPECT_EQ(real.permanent_orphans(), 0u) << real.trace_text();
  EXPECT_EQ(simulated.permanent_orphans(), 0u) << simulated.trace_text();
  EXPECT_TRUE(real.verify_failures.empty())
      << real.verify_failures.front();
  EXPECT_TRUE(simulated.verify_failures.empty())
      << simulated.verify_failures.front();

  // Every survivor streamed on both substrates, with a sane first-packet
  // latency; the substrates' aggregate continuity must be in the same
  // ballpark (loose: the real engine pays wall-clock scheduling costs).
  for (const auto* r : {&real, &simulated}) {
    for (const auto& v : r->viewers) {
      if (!v.ever_joined || v.departed) continue;
      EXPECT_GT(v.continuity.frames, 0u) << "viewer " << v.viewer;
      EXPECT_GE(v.continuity.first_packet_latency, 0.0);
      EXPECT_LT(v.continuity.first_packet_latency, 5.0);
      EXPECT_LT(v.continuity.gap_seconds, to_seconds(config.settle));
    }
  }
}

TEST(CrossSubstrate, CappedChainThroughputAgrees) {
  const double real = run_real(seconds(4.0));
  const double simulated = run_sim(seconds(10.0));
  // Both must sit at the bottleneck cap (minus header overhead), and
  // agree with each other within 25%.
  EXPECT_GT(real, 0.6 * kCap);
  EXPECT_LT(real, 1.1 * kCap);
  EXPECT_GT(simulated, 0.6 * kCap);
  EXPECT_LT(simulated, 1.1 * kCap);
  EXPECT_NEAR(real / simulated, 1.0, 0.25)
      << "real=" << real << " sim=" << simulated;
}

}  // namespace
}  // namespace iov
