// Back-pressure semantics of the simulated substrate — the properties
// behind the paper's Fig 6/7: with small buffers a bottleneck anywhere
// throttles the whole session ("flow conservation" through relays and
// sibling throttling at fan-out nodes); with large buffers the effect is
// delayed and confined downstream.
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "sim/sim_net.h"
#include "../engine/engine_test_util.h"

namespace iov::sim {
namespace {

using apps::BackToBackSource;
using apps::SinkApp;
using test::RecordingRelay;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;

struct SimNode {
  SimEngine* engine = nullptr;
  RecordingRelay* relay = nullptr;
};

SimNode add_relay_node(SimNet& net, SimNodeConfig config) {
  auto algorithm = std::make_unique<RecordingRelay>();
  SimNode n;
  n.relay = algorithm.get();
  n.engine = &net.add_node(std::move(algorithm), config);
  return n;
}

SimNodeConfig small_buffers() {
  SimNodeConfig c;
  c.recv_buffer_msgs = 5;
  c.send_buffer_msgs = 5;
  return c;
}

SimNodeConfig large_buffers() {
  SimNodeConfig c;
  c.recv_buffer_msgs = 10000;
  c.send_buffer_msgs = 10000;
  return c;
}

// Average delivered rate of link a->b over the window [t0, now].
double window_rate(const SimNet& net, const NodeId& a, const NodeId& b,
                   u64 bytes_before, TimePoint t0) {
  const double dt = to_seconds(net.now() - t0);
  return (static_cast<double>(net.link_delivered_bytes(a, b)) -
          static_cast<double>(bytes_before)) /
         dt;
}

TEST(SimBackPressure, RelayBottleneckThrottlesUpstream) {
  // A -> B -> C, B's uplink capped at 30 KB/s, small buffers: the A->B
  // link must converge to ~30 KB/s too (back-pressure through B).
  SimNet net;
  SimNode a = add_relay_node(net, small_buffers());
  SimNode b = add_relay_node(net, small_buffers());
  SimNode c = add_relay_node(net, small_buffers());
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  c.engine->register_app(kApp, sink);
  a.engine->bandwidth().set_node_up(400e3);
  b.engine->bandwidth().set_node_up(30e3);
  a.relay->add_child(kApp, b.engine->self());
  b.relay->add_child(kApp, c.engine->self());
  c.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);

  // Let the system converge, then measure over a clean window.
  net.run_for(seconds(10.0));
  const TimePoint t0 = net.now();
  const u64 ab0 = net.link_delivered_bytes(a.engine->self(), b.engine->self());
  const u64 bc0 = net.link_delivered_bytes(b.engine->self(), c.engine->self());
  net.run_for(seconds(10.0));
  const double ab = window_rate(net, a.engine->self(), b.engine->self(), ab0, t0);
  const double bc = window_rate(net, b.engine->self(), c.engine->self(), bc0, t0);
  EXPECT_NEAR(bc, 30e3, 4e3);
  EXPECT_NEAR(ab, 30e3, 4e3);  // throttled by back-pressure, not by A's cap
}

TEST(SimBackPressure, FanOutSiblingThrottledWithSmallBuffers) {
  // A copies to B and C; link A->B capped. With small buffers A cannot
  // run ahead on C, so C's rate converges down to B's (Fig 6(b) at node
  // B: "since BD is currently the bottleneck and messages have to be
  // copied to both downstreams, both AB and BF are therefore throttled").
  SimNet net;
  SimNode a = add_relay_node(net, small_buffers());
  SimNode b = add_relay_node(net, small_buffers());
  SimNode c = add_relay_node(net, small_buffers());
  auto sink_b = std::make_shared<SinkApp>();
  auto sink_c = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  b.engine->register_app(kApp, sink_b);
  c.engine->register_app(kApp, sink_c);
  a.engine->bandwidth().set_node_up(400e3);
  a.engine->bandwidth().set_link_up(b.engine->self(), 30e3);
  a.relay->add_child(kApp, b.engine->self());
  a.relay->add_child(kApp, c.engine->self());
  b.relay->set_consume(kApp, true);
  c.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);

  net.run_for(seconds(10.0));
  const TimePoint t0 = net.now();
  const u64 ac0 = net.link_delivered_bytes(a.engine->self(), c.engine->self());
  net.run_for(seconds(10.0));
  const double ac = window_rate(net, a.engine->self(), c.engine->self(), ac0, t0);
  EXPECT_NEAR(ac, 30e3, 5e3);
}

TEST(SimBackPressure, FanOutSiblingUnaffectedWithLargeBuffers) {
  // Same topology with 10000-message buffers: "with large sender thread
  // buffers, the throttling effects on other more capable downstreams are
  // significantly delayed" (Fig 7(b)).
  SimNet net;
  SimNode a = add_relay_node(net, large_buffers());
  SimNode b = add_relay_node(net, large_buffers());
  SimNode c = add_relay_node(net, large_buffers());
  auto sink_b = std::make_shared<SinkApp>();
  auto sink_c = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  b.engine->register_app(kApp, sink_b);
  c.engine->register_app(kApp, sink_c);
  a.engine->bandwidth().set_node_up(400e3);
  a.engine->bandwidth().set_link_up(b.engine->self(), 30e3);
  a.relay->add_child(kApp, b.engine->self());
  a.relay->add_child(kApp, c.engine->self());
  b.relay->set_consume(kApp, true);
  c.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);

  net.run_for(seconds(20.0));
  const double rate_b = static_cast<double>(sink_b->stats(0).bytes) / 20.0;
  const double rate_c = static_cast<double>(sink_c->stats(0).bytes) / 20.0;
  EXPECT_NEAR(rate_b, 30e3, 5e3);
  // C keeps receiving at roughly the source's full rate (wire ~400 KB/s
  // minus header overhead).
  EXPECT_GT(rate_c, 300e3);
}

TEST(SimBackPressure, FlowConservationThroughRelay) {
  // A relay that neither merges nor drops must forward exactly what it
  // receives: delivered bytes into B equal bytes B pushed to C, modulo
  // what is still queued in B's buffers.
  SimNet net;
  SimNode a = add_relay_node(net, small_buffers());
  SimNode b = add_relay_node(net, small_buffers());
  SimNode c = add_relay_node(net, small_buffers());
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  c.engine->register_app(kApp, sink);
  a.engine->bandwidth().set_node_up(100e3);
  a.relay->add_child(kApp, b.engine->self());
  b.relay->add_child(kApp, c.engine->self());
  c.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(10.0));

  const u64 in_b = net.link_delivered_bytes(a.engine->self(), b.engine->self());
  const u64 out_b =
      net.link_delivered_bytes(b.engine->self(), c.engine->self());
  EXPECT_GT(in_b, 0u);
  EXPECT_LE(out_b, in_b);
  // Buffers hold at most ~(recv 5 + send 5 + 2 in flight) messages.
  EXPECT_LE(in_b - out_b, 15 * (kPayload + Msg::kHeaderSize));
}

TEST(SimBackPressure, BoundedBuffersNeverOverfill) {
  SimNet net;
  SimNode a = add_relay_node(net, small_buffers());
  SimNode b = add_relay_node(net, small_buffers());
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  b.engine->register_app(kApp, sink);
  b.engine->bandwidth().set_node_down(10e3);  // slow consumer
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  net.deploy(a.engine->self(), kApp);

  for (int i = 0; i < 10; ++i) {
    net.run_for(seconds(1.0));
    const auto down = a.engine->downstream_stats(b.engine->self());
    ASSERT_TRUE(down.has_value());
    EXPECT_LE(down->buffer_len, down->buffer_cap);
  }
}

}  // namespace
}  // namespace iov::sim
