// The acceptance-scale scenario: a 10k-viewer flash crowd on the
// deterministic simulator, run twice from the same seed — the two runs
// must be byte-identical (schedule, executed fault plan, chaos trace,
// shape curve, per-viewer continuity, verify output, and the metrics
// snapshot all fingerprint the same). Labeled `slow`; excluded from the
// tier-1 sweep but run by the full ctest.
#include <gtest/gtest.h>

#include "scenario/streaming_churn.h"

namespace iov::scenario {
namespace {

StreamingChurnConfig flash_crowd_10k(u64 seed) {
  StreamingChurnConfig c;
  c.churn.viewers = 10000;
  c.churn.seed = seed;
  c.churn.waves = 3;
  c.churn.wave_spacing = seconds(4.0);
  c.churn.wave_spread = seconds(2.0);
  c.churn.mean_session_seconds = 30.0;  // most viewers outlive the horizon
  c.churn.depart_fraction = 0.3;
  c.churn.correlated_fraction = 0.2;
  c.churn.shocks = 2;
  c.churn.horizon = seconds(12.0);
  c.fps = 1;  // keep the data plane affordable at this node count
  c.settle = seconds(6.0);
  return c;
}

TEST(StreamingChurn10k, SameSeedByteIdenticalReplay) {
  const StreamingChurnConfig config = flash_crowd_10k(42);
  const StreamingChurnResult a = run_sim_streaming_churn(config);

  // The flash crowd actually formed and streamed.
  EXPECT_GT(a.schedule.count(ChurnAction::kJoin), 9000u);
  EXPECT_GT(a.frames_delivered(), 10000u);
  std::size_t peak = 0;
  for (const auto& s : a.shape) peak = std::max(peak, s.in_tree);
  EXPECT_GT(peak, 5000u);

  const StreamingChurnResult b = run_sim_streaming_churn(config);
  EXPECT_EQ(a.schedule.to_string(), b.schedule.to_string());
  EXPECT_EQ(a.plan_text, b.plan_text);
  EXPECT_EQ(a.trace_text(), b.trace_text());
  EXPECT_EQ(a.metrics_text, b.metrics_text);
  ASSERT_EQ(a.fingerprint(), b.fingerprint());
}

}  // namespace
}  // namespace iov::scenario
