// The flash-crowd streaming churn harness on the deterministic simulator
// at medium scale: continuity accounting, tree-shape evolution, the
// streaming verify predicates, and same-seed replay identity.
#include <gtest/gtest.h>

#include "obs/metric_names.h"
#include "scenario/streaming_churn.h"
#include "scenario/verify_streaming.h"

namespace iov::scenario {
namespace {

StreamingChurnConfig medium_config(u64 seed, std::size_t viewers = 80) {
  StreamingChurnConfig c;
  c.churn.viewers = viewers;
  c.churn.seed = seed;
  c.churn.waves = 3;
  c.churn.wave_spacing = seconds(6.0);
  c.churn.wave_spread = seconds(2.0);
  c.churn.mean_session_seconds = 10.0;
  c.churn.depart_fraction = 0.35;
  c.churn.correlated_fraction = 0.25;
  c.churn.shocks = 2;
  c.churn.horizon = seconds(20.0);
  c.settle = seconds(8.0);
  return c;
}

TEST(StreamingChurn, SurvivorsRecoverAndReceive) {
  const StreamingChurnConfig config = medium_config(11);
  const StreamingChurnResult r = run_sim_streaming_churn(config);

  // The scenario actually churned.
  EXPECT_GT(r.schedule.count(ChurnAction::kJoin), 40u);
  EXPECT_GT(r.schedule.count(ChurnAction::kDrop), 0u);
  EXPECT_GT(r.schedule.count(ChurnAction::kDepart), 0u);
  EXPECT_FALSE(r.plan_text.empty());
  EXPECT_FALSE(r.trace.empty());
  EXPECT_FALSE(r.shape.empty());

  // Final quiescent point: tree invariants hold and nobody is orphaned.
  EXPECT_TRUE(r.verify_failures.empty())
      << "verify failures:\n"
      << [&] {
           std::string all;
           for (const auto& f : r.verify_failures) all += f + "\n";
           return all;
         }();
  EXPECT_EQ(r.permanent_orphans(), 0u);

  // Data flowed; every surviving viewer saw frames.
  EXPECT_GT(r.frames_delivered(), 0u);
  for (const auto& v : r.viewers) {
    if (!v.ever_joined || v.departed) continue;
    EXPECT_GT(v.continuity.frames, 0u) << "viewer " << v.viewer;
    EXPECT_GE(v.continuity.first_packet_latency, 0.0)
        << "viewer " << v.viewer;
  }

  // Rejoins were observed and measured.
  EXPECT_FALSE(r.rejoin_latencies().empty());

  // Continuity stayed bounded: no viewer silent longer than the horizon,
  // and the worst gap reflects recovery, not permanent loss.
  const chaos::VerifyResult gaps = chaos::verify_bounded_gap_seconds(
      r, to_seconds(config.churn.horizon));
  EXPECT_TRUE(gaps.ok) << gaps.to_string();
}

TEST(StreamingChurn, SameSeedReplaysByteIdentical) {
  const StreamingChurnConfig config = medium_config(23, 60);
  const StreamingChurnResult a = run_sim_streaming_churn(config);
  const StreamingChurnResult b = run_sim_streaming_churn(config);
  EXPECT_EQ(a.schedule.to_string(), b.schedule.to_string());
  EXPECT_EQ(a.plan_text, b.plan_text);
  EXPECT_EQ(a.trace_text(), b.trace_text());
  EXPECT_EQ(a.metrics_text, b.metrics_text);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
}

TEST(StreamingChurn, DifferentSeedsDiverge) {
  const StreamingChurnResult a = run_sim_streaming_churn(medium_config(5, 40));
  const StreamingChurnResult b = run_sim_streaming_churn(medium_config(6, 40));
  EXPECT_NE(a.fingerprint(), b.fingerprint());
}

TEST(StreamingChurn, MetricsExported) {
  const StreamingChurnResult r = run_sim_streaming_churn(medium_config(3, 40));
  for (const char* name :
       {obs::names::kStreamChurnEventsTotal, obs::names::kStreamFramesTotal,
        obs::names::kStreamFirstPacketSeconds,
        obs::names::kStreamGapSeconds, obs::names::kStreamViewersInTree,
        obs::names::kStreamTreeDepth, obs::names::kStreamTreeDegreeMax}) {
    EXPECT_NE(r.metrics_text.find(name), std::string::npos) << name;
  }
}

TEST(StreamingChurn, ShapeCurveTracksTheCrowd) {
  const StreamingChurnResult r = run_sim_streaming_churn(medium_config(9));
  // The crowd grew: peak in-tree count well above the first sample's.
  std::size_t peak = 0;
  for (const auto& s : r.shape) peak = std::max(peak, s.in_tree);
  EXPECT_GT(peak, 30u);
  // The final sample is quiescent: everyone wanting is in the tree.
  const TreeShapeSample& last = r.shape.back();
  EXPECT_EQ(last.orphans, 0u);
  EXPECT_EQ(last.in_tree, last.wanting);
  EXPECT_GE(last.depth, 1u);
  EXPECT_GE(last.max_degree, 1u);
}

// Seeded property matrix: the core robustness claims hold across seeds
// and strategies, not just on one lucky draw.
struct MatrixParam {
  u64 seed;
  trees::TreeStrategy strategy;
};

class StreamingChurnMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(StreamingChurnMatrix, NoOrphansBoundedGaps) {
  StreamingChurnConfig config = medium_config(GetParam().seed, 50);
  config.strategy = GetParam().strategy;
  const StreamingChurnResult r = run_sim_streaming_churn(config);
  EXPECT_TRUE(r.verify_failures.empty()) << [&] {
    std::string all;
    for (const auto& f : r.verify_failures) all += f + "\n";
    return all;
  }();
  EXPECT_EQ(r.permanent_orphans(), 0u);
  EXPECT_GT(r.frames_delivered(), 0u);
  const chaos::VerifyResult gaps = chaos::verify_bounded_gap_seconds(
      r, to_seconds(config.churn.horizon));
  EXPECT_TRUE(gaps.ok) << gaps.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndStrategies, StreamingChurnMatrix,
    ::testing::Values(
        MatrixParam{101, trees::TreeStrategy::kRandomized},
        MatrixParam{102, trees::TreeStrategy::kRandomized},
        MatrixParam{103, trees::TreeStrategy::kAllUnicast},
        MatrixParam{104, trees::TreeStrategy::kNsAware}));

}  // namespace
}  // namespace iov::scenario
