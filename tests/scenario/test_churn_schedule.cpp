// The churn generator: pure, seeded, flash-crowd shaped. These are the
// schedule-level properties; the scenario runner tests live in
// test_streaming_churn.cpp.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "scenario/churn.h"

namespace iov::scenario {
namespace {

ChurnConfig small_config(u64 seed) {
  ChurnConfig c;
  c.viewers = 200;
  c.seed = seed;
  c.waves = 3;
  c.wave_spacing = seconds(6.0);
  c.wave_spread = seconds(2.0);
  c.mean_session_seconds = 10.0;
  c.depart_fraction = 0.4;
  c.correlated_fraction = 0.3;
  c.shocks = 2;
  c.horizon = seconds(25.0);
  return c;
}

TEST(ChurnSchedule, SameSeedSameSchedule) {
  const ChurnSchedule a = generate_churn(small_config(7));
  const ChurnSchedule b = generate_churn(small_config(7));
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_FALSE(a.events.empty());
}

TEST(ChurnSchedule, DifferentSeedsDiffer) {
  const ChurnSchedule a = generate_churn(small_config(7));
  const ChurnSchedule b = generate_churn(small_config(8));
  EXPECT_NE(a.to_string(), b.to_string());
}

TEST(ChurnSchedule, EmptyConfigsYieldEmptySchedules) {
  ChurnConfig c = small_config(1);
  c.viewers = 0;
  EXPECT_TRUE(generate_churn(c).events.empty());
  c = small_config(1);
  c.horizon = 0;
  EXPECT_TRUE(generate_churn(c).events.empty());
}

class ChurnScheduleSeeds : public ::testing::TestWithParam<u64> {};

TEST_P(ChurnScheduleSeeds, WellFormed) {
  const ChurnConfig config = small_config(GetParam());
  const ChurnSchedule s = generate_churn(config);

  // Time-sorted, inside the horizon.
  Duration prev = 0;
  for (const ChurnEvent& e : s.events) {
    EXPECT_GE(e.at, prev);
    EXPECT_LT(e.at, config.horizon);
    EXPECT_LT(e.viewer, config.viewers);
    prev = e.at;
  }

  // Per-viewer lifecycle: first event is the only join; a depart is
  // final; drops and departs only after the join.
  std::map<std::size_t, std::vector<ChurnAction>> per_viewer;
  for (const ChurnEvent& e : s.events) {
    per_viewer[e.viewer].push_back(e.action);
  }
  for (const auto& [viewer, actions] : per_viewer) {
    EXPECT_EQ(actions.front(), ChurnAction::kJoin) << "viewer " << viewer;
    for (std::size_t i = 1; i < actions.size(); ++i) {
      EXPECT_NE(actions[i], ChurnAction::kJoin) << "viewer " << viewer;
      if (actions[i] == ChurnAction::kDepart) {
        EXPECT_EQ(i, actions.size() - 1) << "viewer " << viewer;
      }
    }
  }

  // The flash crowd actually happened: most viewers joined, and both
  // churn flavours occur at these rates.
  EXPECT_GT(s.count(ChurnAction::kJoin), config.viewers / 2);
  EXPECT_GT(s.count(ChurnAction::kDrop), 0u);
  EXPECT_GT(s.count(ChurnAction::kDepart), 0u);

  // Correlated exits: at least one shock instant shared by several
  // non-join events (identical timestamps).
  std::map<Duration, std::size_t> exits_at;
  for (const ChurnEvent& e : s.events) {
    if (e.action != ChurnAction::kJoin) exits_at[e.at]++;
  }
  std::size_t best = 0;
  for (const auto& [at, n] : exits_at) best = std::max(best, n);
  EXPECT_GE(best, 3u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnScheduleSeeds,
                         ::testing::Values(1, 2, 3, 17, 100003));

}  // namespace
}  // namespace iov::scenario
