// Property tests over seeded random FaultPlans: whatever a random burst
// of kills, severs, partitions and loss does to a multicast tree, once
// the plan's final heal drains the overlay must settle back into a valid
// tree — connected to the source, acyclic, in-degree one — and replaying
// the same seed must reproduce the identical fault trace (DESIGN.md §7).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "apps/sink.h"
#include "apps/source.h"
#include "chaos/fault_plan.h"
#include "chaos/sim_driver.h"
#include "chaos/verify.h"
#include "sim/sim_net.h"
#include "trees/tree_algorithm.h"

namespace iov::chaos {
namespace {

constexpr u32 kApp = 1;
constexpr std::size_t kReceivers = 6;
constexpr Duration kHorizon = seconds(10.0);
constexpr std::size_t kFaults = 6;

struct Member {
  sim::SimEngine* engine = nullptr;
  trees::TreeAlgorithm* alg = nullptr;
};

Member add_member(sim::SimNet& net, double bw) {
  auto algorithm = std::make_unique<trees::TreeAlgorithm>(
      trees::TreeStrategy::kNsAware, bw);
  Member m;
  m.alg = algorithm.get();
  sim::SimNodeConfig config;
  config.bandwidth.node_up = bw;
  m.engine = &net.add_node(std::move(algorithm), config);
  return m;
}

struct Overlay {
  sim::SimNet net;
  Member source;
  std::vector<Member> receivers;
  Binding binding;
  std::vector<std::string> names;
  std::map<NodeId, Member*> by_id;

  explicit Overlay(u64 seed) : net(sim::SimNet::Config{seed, 50e6, millis(1)}) {
    source = add_member(net, 200e3);
    source.engine->register_app(
        kApp, std::make_shared<apps::CbrSource>(1000, 200e3));
    for (std::size_t i = 0; i < kReceivers; ++i) {
      receivers.push_back(add_member(net, 100e3));
    }
    names.push_back("n0");
    binding.emplace("n0", source.engine->self());
    by_id[source.engine->self()] = &source;
    for (std::size_t i = 0; i < kReceivers; ++i) {
      const std::string name = "n" + std::to_string(i + 1);
      names.push_back(name);
      binding.emplace(name, receivers[i].engine->self());
      by_id[receivers[i].engine->self()] = &receivers[i];
    }

    for (const auto& m : receivers) net.bootstrap(m.engine->self(), 8);
    net.bootstrap(source.engine->self(), 8);
    const std::string announce = source.engine->self().to_string();
    net.post(source.engine->self(),
             Msg::control(MsgType::kSAnnounce, NodeId(), kControlApp,
                          static_cast<i32>(kApp), 0, announce));
    for (const auto& m : receivers) {
      net.post(m.engine->self(),
               Msg::control(MsgType::kSAnnounce, NodeId(), kControlApp,
                            static_cast<i32>(kApp), 0, announce));
    }
    net.deploy(source.engine->self(), kApp);
    net.run_for(millis(200));
    for (const auto& m : receivers) {
      net.join_app(m.engine->self(), kApp);
      net.run_for(seconds(1.0));
    }
    net.run_for(seconds(3.0));
  }

  bool alive(const NodeId& id) const {
    const sim::SimEngine* n = net.node(id);
    return n != nullptr && n->alive();
  }
};

// Walks parent pointers from `from` to the source; fails on a cycle, a
// dead parent, or a chain that never reaches the root.
void expect_rooted(const Overlay& o, const Member& from) {
  const NodeId root = o.source.engine->self();
  std::set<NodeId> visited;
  NodeId current = from.engine->self();
  while (current != root) {
    ASSERT_TRUE(visited.insert(current).second)
        << "cycle through " << current.to_string();
    ASSERT_LE(visited.size(), kReceivers + 1) << "parent chain too long";
    const auto it = o.by_id.find(current);
    ASSERT_NE(it, o.by_id.end()) << current.to_string();
    const auto parent = it->second->alg->parent(kApp);
    ASSERT_TRUE(parent.has_value())
        << current.to_string() << " is in-tree but parentless";
    ASSERT_TRUE(o.alive(*parent))
        << current.to_string() << " has dead parent " << parent->to_string();
    // In-degree one is structural (a single parent pointer); what needs
    // checking is that the edge is mutual and leads upward.
    current = *parent;
  }
}

class ChaosProperty : public ::testing::TestWithParam<u64> {};

TEST_P(ChaosProperty, TreeRecoversInvariantsAfterFinalHeal) {
  const u64 seed = GetParam();
  Overlay overlay(seed);
  const FaultPlan plan =
      FaultPlan::random(seed, overlay.names, kHorizon, kFaults);
  SimChaosDriver driver(overlay.net, plan, overlay.binding);
  driver.run_for(kHorizon);
  ASSERT_TRUE(driver.done());
  overlay.net.run_for(seconds(12.0));  // post-heal settle and rejoin

  // Every alive receiver still in the session hangs off a valid,
  // acyclic parent chain that reaches the source.
  std::size_t in_tree = 0;
  for (const Member& m : overlay.receivers) {
    if (!overlay.alive(m.engine->self())) continue;
    if (!m.alg->in_tree(kApp)) continue;
    ++in_tree;
    expect_rooted(overlay, m);
  }
  // The heal drained the partition, so the overlay cannot have collapsed
  // entirely: the source is alive (random() never kills n0).
  EXPECT_TRUE(overlay.alive(overlay.source.engine->self()));
  // And the Domino bookkeeping is clean: nobody references dead
  // upstreams over closed links.
  EXPECT_EQ(verify_domino_teardown(overlay.net).to_string(), "ok");

  // Replaying the same seed reproduces the identical fault trace.
  Overlay replay(seed);
  const FaultPlan plan2 =
      FaultPlan::random(seed, replay.names, kHorizon, kFaults);
  SimChaosDriver driver2(replay.net, plan2, replay.binding);
  driver2.run_for(kHorizon);
  EXPECT_EQ(driver.trace_text(), driver2.trace_text());
  EXPECT_FALSE(driver.trace_text().empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosProperty,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace iov::chaos
