// RealChaosDriver integration on live engines over loopback TCP: plans
// execute through the observer control plane (kTerminateNode /
// kSeverLink / kSetLoss) and produce the same teardown behaviour the
// simulator shows — the cross-substrate half of the chaos story.
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "chaos/fault_plan.h"
#include "chaos/real_driver.h"
#include "chaos/verify.h"
#include "engine/engine.h"
#include "obs/metric_names.h"
#include "observer/observer.h"
#include "../engine/engine_test_util.h"

namespace iov::chaos {
namespace {

using test::RecordingRelay;
using test::wait_until;

constexpr u32 kApp = 1;

struct Chain {
  std::unique_ptr<engine::Engine> a, b, c;
  RecordingRelay* relay_a = nullptr;
  RecordingRelay* relay_b = nullptr;
  RecordingRelay* relay_c = nullptr;
  std::shared_ptr<apps::SinkApp> sink;

  ~Chain() {
    for (auto* e : {a.get(), b.get(), c.get()}) {
      if (e != nullptr) e->stop();
    }
    for (auto* e : {a.get(), b.get(), c.get()}) {
      if (e != nullptr) e->join();
    }
  }
};

// A -> B -> C relay chain of real engines reporting to `obs`, with the
// stream already deployed and flowing.
bool make_chain(observer::Observer& obs, Chain* chain) {
  auto alg_a = std::make_unique<RecordingRelay>();
  auto alg_b = std::make_unique<RecordingRelay>();
  auto alg_c = std::make_unique<RecordingRelay>();
  chain->relay_a = alg_a.get();
  chain->relay_b = alg_b.get();
  chain->relay_c = alg_c.get();
  engine::EngineConfig config;
  config.observer = obs.address();
  chain->a = std::make_unique<engine::Engine>(config, std::move(alg_a));
  chain->b = std::make_unique<engine::Engine>(config, std::move(alg_b));
  chain->c = std::make_unique<engine::Engine>(config, std::move(alg_c));
  chain->sink = std::make_shared<apps::SinkApp>();
  chain->a->register_app(kApp,
                         std::make_shared<apps::BackToBackSource>(2000));
  chain->c->register_app(kApp, chain->sink);
  if (!chain->a->start() || !chain->b->start() || !chain->c->start()) {
    return false;
  }
  chain->relay_a->add_child(kApp, chain->b->self());
  chain->relay_b->add_child(kApp, chain->c->self());
  chain->relay_c->set_consume(kApp, true);
  chain->a->deploy_source(kApp);
  return wait_until([&] { return chain->sink->stats(0).bytes > 10000; },
                    seconds(10.0));
}

TEST(ChaosReal, KillMidStreamTearsDownDownstreamSession) {
  observer::Observer obs{observer::ObserverConfig{}};
  ASSERT_TRUE(obs.start());
  {
    Chain chain;
    ASSERT_TRUE(make_chain(obs, &chain));

    FaultPlan plan;
    plan.kill(millis(50), "B");
    RealChaosDriver driver(obs, plan, Binding{{"B", chain.b->self()}});
    driver.run();
    EXPECT_NE(driver.trace_text().find("kill B"), std::string::npos);
    EXPECT_NE(driver.trace_text().find(" ok"), std::string::npos)
        << driver.trace_text();

    // B's engine shuts down; C notices the broken upstream and tears the
    // session down (kBrokenSource Domino at the relay layer).
    const bool recovered = driver.await_recovery(
        [&] {
          return !chain.b->running() &&
                 chain.relay_c->count(MsgType::kBrokenLink) +
                         chain.relay_c->count(MsgType::kBrokenSource) >
                     0;
        },
        millis(50), seconds(10.0));
    EXPECT_TRUE(recovered);

    // The flow actually stopped: bytes stop growing once queues drain.
    EXPECT_TRUE(test::wait_stable<u64>(
                    [&] { return chain.sink->stats(0).bytes; })
                    .has_value());

    const auto snapshot = obs.metrics().snapshot();
    EXPECT_EQ(counter_value(snapshot, obs::names::kChaosFaultsInjectedTotal,
                            {{"kind", "kill"}}),
              1.0);
  }
  obs.stop();
  obs.join();
}

TEST(ChaosReal, SeverBreaksTheLinkLikeACrash) {
  observer::Observer obs{observer::ObserverConfig{}};
  ASSERT_TRUE(obs.start());
  {
    Chain chain;
    ASSERT_TRUE(make_chain(obs, &chain));

    FaultPlan plan;
    plan.sever(millis(50), "B", "A");
    RealChaosDriver driver(
        obs, plan,
        Binding{{"A", chain.a->self()}, {"B", chain.b->self()}});
    driver.run();

    // B drops its link to A as if it had failed: B sees kBrokenLink and
    // the Domino reaches C; all three engines stay up.
    EXPECT_TRUE(wait_until(
        [&] {
          return chain.relay_b->saw(MsgType::kBrokenLink, chain.a->self());
        },
        seconds(10.0)));
    EXPECT_TRUE(wait_until(
        [&] {
          return chain.relay_c->count(MsgType::kBrokenLink) +
                     chain.relay_c->count(MsgType::kBrokenSource) >
                 0;
        },
        seconds(10.0)));
    EXPECT_TRUE(chain.a->running());
    EXPECT_TRUE(chain.b->running());
    EXPECT_TRUE(chain.c->running());
  }
  obs.stop();
  obs.join();
}

TEST(ChaosReal, LossInjectionDropsAndRecovers) {
  observer::Observer obs{observer::ObserverConfig{}};
  ASSERT_TRUE(obs.start());
  {
    Chain chain;
    ASSERT_TRUE(make_chain(obs, &chain));

    // Full loss on A -> B stalls the sink; resetting to 0 revives it.
    // Wait for the in-flight queues to drain and the byte count to go
    // quiet rather than guessing a drain time.
    ASSERT_TRUE(obs.set_loss(chain.a->self(), chain.b->self(), 1.0));
    const auto settled = test::wait_stable<u64>(
        [&] { return chain.sink->stats(0).bytes; });
    ASSERT_TRUE(settled.has_value()) << "sink kept streaming under 100% loss";
    const u64 still = *settled;

    ASSERT_TRUE(obs.set_loss(chain.a->self(), chain.b->self(), 0.0));
    EXPECT_TRUE(wait_until(
        [&] { return chain.sink->stats(0).bytes > still + 100000; },
        seconds(10.0)));
  }
  obs.stop();
  obs.join();
}

}  // namespace
}  // namespace iov::chaos
