// FaultPlan unit tests: builder ordering, DSL round-trip, parse
// diagnostics, and the seeded-random generator's determinism (the
// foundation of the chaos tier's replay guarantees, DESIGN.md §7).
#include <gtest/gtest.h>

#include "chaos/fault_plan.h"

namespace iov::chaos {
namespace {

TEST(FaultPlan, BuilderKeepsEventsTimeSorted) {
  FaultPlan plan;
  plan.sever(seconds(3.0), "a", "b")
      .kill(seconds(1.0), "c")
      .heal(seconds(2.0));
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan.events()[0].kind, FaultKind::kKillNode);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kHeal);
  EXPECT_EQ(plan.events()[2].kind, FaultKind::kSeverLink);
}

TEST(FaultPlan, SameTimeEventsKeepInsertionOrder) {
  FaultPlan plan;
  plan.kill(seconds(1.0), "first").sever(seconds(1.0), "second", "third");
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].a, "first");
  EXPECT_EQ(plan.events()[1].a, "second");
}

TEST(FaultPlan, ToStringParsesBack) {
  FaultPlan plan;
  plan.kill(seconds(2.0), "n1")
      .sever(seconds(2.5), "n1", "n2")
      .loss(seconds(3.0), "n2", "n3", 0.25)
      .slow_link(seconds(3.5), "n3", "n4", 20000)
      .partition(seconds(4.0), {{"n1", "n2"}, {"n3", "n4"}})
      .heal(seconds(5.0));

  const auto parsed = FaultPlan::parse(plan.to_string());
  ASSERT_TRUE(parsed.plan.has_value()) << parsed.error;
  EXPECT_EQ(parsed.plan->to_string(), plan.to_string());
  ASSERT_EQ(parsed.plan->size(), plan.size());
  const FaultEvent& part = parsed.plan->events()[4];
  EXPECT_EQ(part.kind, FaultKind::kPartition);
  ASSERT_EQ(part.groups.size(), 2u);
  EXPECT_EQ(part.groups[0], (std::vector<std::string>{"n1", "n2"}));
  EXPECT_EQ(part.groups[1], (std::vector<std::string>{"n3", "n4"}));
}

TEST(FaultPlan, ParseSkipsCommentsAndBlankLines) {
  const auto r = FaultPlan::parse(
      "# header comment\n"
      "\n"
      "  at 1.5 kill n2   # trailing words are ignored by the verb\n"
      "at 2 heal\n");
  ASSERT_TRUE(r.plan.has_value()) << r.error;
  ASSERT_EQ(r.plan->size(), 2u);
  EXPECT_EQ(r.plan->events()[0].kind, FaultKind::kKillNode);
  EXPECT_EQ(r.plan->events()[0].a, "n2");
  EXPECT_EQ(r.plan->events()[0].at, seconds(1.5));
}

TEST(FaultPlan, ParseReportsLineNumbersOnErrors) {
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"kill n1", "line 1"},                       // missing "at"
      {"at x kill n1", "bad time"},                // unparsable time
      {"at -1 kill n1", "bad time"},               // negative time
      {"at 1 explode n1", "unknown fault"},        // unknown verb
      {"at 1 kill", "kill needs"},                 // missing operand
      {"at 1 sever n1", "sever needs"},            // one operand short
      {"at 1 loss n1 n2 1.5", "[0, 1]"},           // probability range
      {"at 1 slow-link n1 n2 -5", "slow-link"},    // negative rate
      {"at 1 partition n1,n2", "at least two"},    // single group
      {"at 1 heal\nat 2 kill", "line 2"},          // error on later line
  };
  for (const Case& c : cases) {
    const auto r = FaultPlan::parse(c.text);
    EXPECT_FALSE(r.plan.has_value()) << c.text;
    EXPECT_NE(r.error.find(c.needle), std::string::npos)
        << c.text << " -> " << r.error;
  }
}

TEST(FaultPlan, RandomIsDeterministicPerSeed) {
  const std::vector<std::string> nodes = {"n1", "n2", "n3", "n4", "n5"};
  const FaultPlan a = FaultPlan::random(42, nodes, seconds(10.0), 12);
  const FaultPlan b = FaultPlan::random(42, nodes, seconds(10.0), 12);
  const FaultPlan c = FaultPlan::random(43, nodes, seconds(10.0), 12);
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_NE(a.to_string(), c.to_string());
}

TEST(FaultPlan, RandomEndsWithRecoveryDrain) {
  const std::vector<std::string> nodes = {"n1", "n2", "n3"};
  const Duration horizon = seconds(8.0);
  const FaultPlan plan = FaultPlan::random(7, nodes, horizon, 6);
  ASSERT_GE(plan.size(), 7u);  // 6 faults + heal + loss resets
  // Everything scheduled inside the horizon except the final drain.
  bool saw_final_heal = false;
  for (const FaultEvent& e : plan.events()) {
    EXPECT_LE(e.at, horizon);
    if (e.at == horizon && e.kind == FaultKind::kHeal) saw_final_heal = true;
    if (e.at == horizon && e.kind == FaultKind::kSetLoss) {
      EXPECT_EQ(e.value, 0.0);
    }
  }
  EXPECT_TRUE(saw_final_heal);
  // And a random plan round-trips through the DSL like a hand-written one.
  const auto parsed = FaultPlan::parse(plan.to_string());
  ASSERT_TRUE(parsed.plan.has_value()) << parsed.error;
  EXPECT_EQ(parsed.plan->to_string(), plan.to_string());
}

TEST(FaultPlan, RandomNeverKillsTheFirstNode) {
  const std::vector<std::string> nodes = {"src", "r1", "r2", "r3"};
  for (u64 seed = 1; seed <= 20; ++seed) {
    const FaultPlan plan = FaultPlan::random(seed, nodes, seconds(10.0), 10);
    for (const FaultEvent& e : plan.events()) {
      if (e.kind == FaultKind::kKillNode) EXPECT_NE(e.a, "src");
    }
  }
}

}  // namespace
}  // namespace iov::chaos
