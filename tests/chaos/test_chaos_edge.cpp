// FaultPlan DSL edge cases: overlapping partition+sever on the same
// region, the loss-probability extremes (0.0 and 1.0 — zero and a
// million ppm), healing when nothing was ever severed, and the ordering
// guarantee for events that share one timestamp. These are the corners a
// generated flash-crowd plan (mass-exit shocks snap many events onto one
// instant; drops race partitions) actually exercises, so they get their
// own deterministic coverage.
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "chaos/fault_plan.h"
#include "chaos/sim_driver.h"
#include "chaos/verify.h"
#include "sim/sim_net.h"
#include "../engine/engine_test_util.h"

namespace iov::chaos {
namespace {

using test::RecordingRelay;

constexpr u32 kApp = 1;

// A -> B -> C relay chain streaming CBR; returns the net plus handles.
struct Chain {
  sim::SimNet net;
  sim::SimEngine* a = nullptr;
  sim::SimEngine* b = nullptr;
  sim::SimEngine* c = nullptr;
  RecordingRelay* relay_a = nullptr;
  RecordingRelay* relay_b = nullptr;
  RecordingRelay* relay_c = nullptr;
  std::shared_ptr<apps::SinkApp> sink;
};

std::unique_ptr<Chain> make_chain() {
  auto chain = std::make_unique<Chain>();
  auto alg_a = std::make_unique<RecordingRelay>();
  auto alg_b = std::make_unique<RecordingRelay>();
  auto alg_c = std::make_unique<RecordingRelay>();
  chain->relay_a = alg_a.get();
  chain->relay_b = alg_b.get();
  chain->relay_c = alg_c.get();
  chain->a = &chain->net.add_node(std::move(alg_a));
  chain->b = &chain->net.add_node(std::move(alg_b));
  chain->c = &chain->net.add_node(std::move(alg_c));
  chain->sink = std::make_shared<apps::SinkApp>();
  chain->a->register_app(kApp, std::make_shared<apps::CbrSource>(1000, 100e3));
  chain->c->register_app(kApp, chain->sink);
  chain->relay_a->add_child(kApp, chain->b->self());
  chain->relay_b->add_child(kApp, chain->c->self());
  chain->relay_c->set_consume(kApp, true);
  chain->net.deploy(chain->a->self(), kApp);
  return chain;
}

Binding bind(const Chain& chain) {
  return Binding{{"A", chain.a->self()},
                 {"B", chain.b->self()},
                 {"C", chain.c->self()}};
}

// A partition that already cuts B|C plus an explicit sever of A-B at the
// very same instant: every link of the chain dies through a different
// code path (partition cut vs sever), at one timestamp. The Domino must
// still tear the whole session down cleanly, and a later heal must lift
// the cut without resurrecting the severed edge's session state.
TEST(ChaosEdge, OverlappingPartitionAndSeverTearDownCleanly) {
  auto run = [](std::string* trace_out) {
    auto chain = make_chain();
    FaultPlan plan;
    plan.partition(seconds(2.0), {{"A", "B"}, {"C"}});
    plan.sever(seconds(2.0), "A", "B");
    plan.heal(seconds(4.0));
    SimChaosDriver driver(chain->net, plan, bind(*chain));
    driver.run_until(seconds(8.0));

    EXPECT_EQ(verify_domino_teardown(chain->net).to_string(), "ok");
    // Only the source's own session survives; both downstream hops lost
    // their feed (B via the sever, C via the partition cut).
    EXPECT_EQ(verify_session_teardown(
                  chain->net, kApp, {chain->b->self(), chain->c->self()})
                  .to_string(),
              "ok");
    EXPECT_TRUE(chain->a->is_source(kApp));

    // The heal lifted the cut: a fresh dial across the old partition
    // boundary works again (B re-feeds C on request).
    chain->relay_b->add_child(kApp, chain->c->self());
    chain->relay_a->add_child(kApp, chain->b->self());
    const u64 before = chain->sink->stats(0).bytes;
    chain->net.run_for(seconds(2.0));
    EXPECT_GT(chain->sink->stats(0).bytes, before);

    if (trace_out != nullptr) *trace_out = driver.trace_text();
  };
  std::string first, second;
  run(&first);
  run(&second);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);  // same plan, byte-identical fault trace
}

// Loss probability 1.0 (a million ppm) silences the link completely
// without tearing it down; 0.0 restores it losslessly. Both extremes
// must keep flow conservation intact.
TEST(ChaosEdge, LossExtremesSilenceAndRestoreTheLink) {
  auto chain = make_chain();
  chain->net.run_for(seconds(2.0));
  const u64 flowing = chain->sink->stats(0).bytes;
  EXPECT_GT(flowing, 0u);

  FaultPlan plan;
  plan.loss(seconds(0.0), "A", "B", 1.0);
  plan.loss(seconds(4.0), "A", "B", 0.0);
  SimChaosDriver driver(chain->net, plan, bind(*chain));

  // Total loss: the sink stops advancing (everything A sends to B burns).
  driver.run_until(chain->net.now() + seconds(1.0));
  const u64 stalled = chain->sink->stats(0).bytes;
  chain->net.run_for(seconds(2.0));
  EXPECT_EQ(chain->sink->stats(0).bytes, stalled);
  EXPECT_EQ(verify_flow_conservation(chain->net, chain->a->self(),
                                     chain->b->self())
                .to_string(),
            "ok");

  // Loss back to zero: the stream resumes, still conserving flow.
  driver.run_until(chain->net.now() + seconds(3.0));
  EXPECT_GT(chain->sink->stats(0).bytes, stalled);
  EXPECT_EQ(verify_flow_conservation(chain->net, chain->a->self(),
                                     chain->b->self())
                .to_string(),
            "ok");
  EXPECT_EQ(verify_domino_teardown(chain->net).to_string(), "ok");
}

// heal with no preceding partition or sever must be a harmless no-op:
// applied, traced, and invisible to the data plane.
TEST(ChaosEdge, HealWithoutPriorCutIsANoOp) {
  auto chain = make_chain();
  chain->net.run_for(seconds(1.0));
  const u64 before = chain->sink->stats(0).bytes;

  FaultPlan plan;
  plan.heal(seconds(0.5));
  SimChaosDriver driver(chain->net, plan, bind(*chain));
  driver.run_until(chain->net.now() + seconds(2.0));

  EXPECT_TRUE(driver.done());
  EXPECT_NE(driver.trace_text().find("heal"), std::string::npos);
  EXPECT_GT(chain->sink->stats(0).bytes, before);  // stream never blinked
  EXPECT_EQ(verify_domino_teardown(chain->net).to_string(), "ok");
}

// Events sharing one timestamp keep their insertion order — through the
// builder, through to_string()/parse() round-trips, and through two
// independent executions (the mass-exit shocks of a churn schedule put
// dozens of faults on the same instant, so this order is load-bearing).
TEST(ChaosEdge, IdenticalTimestampsKeepInsertionOrder) {
  FaultPlan plan;
  plan.sever(seconds(3.0), "A", "B");
  plan.loss(seconds(3.0), "B", "C", 0.25);
  plan.kill(seconds(3.0), "C");
  plan.heal(seconds(3.0));
  plan.sever(seconds(1.0), "B", "C");  // earlier event sorts first

  const auto& events = plan.events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, FaultKind::kSeverLink);
  EXPECT_EQ(events[0].a, "B");
  EXPECT_EQ(events[1].kind, FaultKind::kSeverLink);
  EXPECT_EQ(events[1].a, "A");
  EXPECT_EQ(events[2].kind, FaultKind::kSetLoss);
  EXPECT_EQ(events[3].kind, FaultKind::kKillNode);
  EXPECT_EQ(events[4].kind, FaultKind::kHeal);

  // DSL round-trip preserves the same-time order byte-for-byte.
  const auto parsed = FaultPlan::parse(plan.to_string());
  ASSERT_TRUE(parsed.plan.has_value()) << parsed.error;
  EXPECT_EQ(parsed.plan->to_string(), plan.to_string());

  // And execution applies them in exactly that order, replayably.
  auto run_trace = [&] {
    auto chain = make_chain();
    SimChaosDriver driver(chain->net, plan, bind(*chain));
    driver.run_until(seconds(8.0));
    EXPECT_TRUE(driver.done());
    return driver.trace_text();
  };
  const std::string first = run_trace();
  EXPECT_EQ(first, run_trace());
  // The trace lists the t=3 events in insertion order.
  const auto sever_pos = first.find("sever");
  const auto second_sever = first.find("sever", sever_pos + 1);
  const auto loss_pos = first.find("loss");
  const auto kill_pos = first.find("kill");
  const auto heal_pos = first.find("heal");
  ASSERT_NE(second_sever, std::string::npos);
  EXPECT_LT(second_sever, loss_pos);
  EXPECT_LT(loss_pos, kill_pos);
  EXPECT_LT(kill_pos, heal_pos);
}

}  // namespace
}  // namespace iov::chaos
