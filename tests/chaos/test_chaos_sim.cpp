// SimChaosDriver integration: killing a relay mid-stream triggers the
// Domino teardown on its downstream while a disjoint flow is untouched
// byte-for-byte, and replaying the same plan yields identical traces and
// surviving-session sets (the determinism the chaos tier exists to
// provide, DESIGN.md §7).
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "chaos/fault_plan.h"
#include "chaos/sim_driver.h"
#include "chaos/verify.h"
#include "obs/metric_names.h"
#include "sim/sim_net.h"
#include "../engine/engine_test_util.h"

namespace iov::chaos {
namespace {

using test::RecordingRelay;

constexpr u32 kStream = 1;    // A -> B -> C, B killed mid-stream
constexpr u32 kDisjoint = 2;  // D -> E, must not notice

struct Result {
  std::string trace;
  std::string surviving;
  u64 stream_bytes = 0;
  u64 disjoint_bytes = 0;
  double kills_injected = 0.0;
  double sessions_torn = 0.0;
  std::string domino;
  std::string teardown;
  std::string conservation;
};

Result run_scenario(bool with_chaos) {
  sim::SimNet net;
  auto alg_a = std::make_unique<RecordingRelay>();
  auto alg_b = std::make_unique<RecordingRelay>();
  auto alg_c = std::make_unique<RecordingRelay>();
  auto alg_d = std::make_unique<RecordingRelay>();
  auto alg_e = std::make_unique<RecordingRelay>();
  auto* relay_a = alg_a.get();
  auto* relay_b = alg_b.get();
  auto* relay_c = alg_c.get();
  auto* relay_d = alg_d.get();
  auto* relay_e = alg_e.get();
  auto& a = net.add_node(std::move(alg_a));
  auto& b = net.add_node(std::move(alg_b));
  auto& c = net.add_node(std::move(alg_c));
  auto& d = net.add_node(std::move(alg_d));
  auto& e = net.add_node(std::move(alg_e));

  auto sink_c = std::make_shared<apps::SinkApp>();
  auto sink_e = std::make_shared<apps::SinkApp>();
  a.register_app(kStream, std::make_shared<apps::CbrSource>(1000, 100e3));
  c.register_app(kStream, sink_c);
  d.register_app(kDisjoint, std::make_shared<apps::CbrSource>(1000, 100e3));
  e.register_app(kDisjoint, sink_e);

  relay_a->add_child(kStream, b.self());
  relay_b->add_child(kStream, c.self());
  relay_c->set_consume(kStream, true);
  relay_d->add_child(kDisjoint, e.self());
  relay_e->set_consume(kDisjoint, true);

  net.deploy(a.self(), kStream);
  net.deploy(d.self(), kDisjoint);

  FaultPlan plan;
  if (with_chaos) plan.kill(seconds(2.0), "B");
  SimChaosDriver driver(net, plan, Binding{{"B", b.self()}});
  driver.run_until(seconds(8.0));

  Result r;
  r.trace = driver.trace_text();
  r.surviving = surviving_sessions(net);
  r.stream_bytes = sink_c->stats(0).bytes;
  r.disjoint_bytes = sink_e->stats(0).bytes;
  const auto snapshot = net.metrics().snapshot();
  r.kills_injected = counter_value(
      snapshot, obs::names::kChaosFaultsInjectedTotal, {{"kind", "kill"}});
  r.domino = verify_domino_teardown(net).to_string();
  if (with_chaos) {
    r.teardown =
        verify_session_teardown(net, kStream, {b.self(), c.self()}).to_string();
    r.sessions_torn = counter_value(net.metrics().snapshot(),
                                    obs::names::kChaosSessionsTornDownTotal);
  }
  r.conservation = verify_flow_conservation(net, d.self(), e.self())
                       .to_string();
  // Keep the surviving-session canon comparable across runs by checking
  // the stream relay ids embedded in it.
  EXPECT_EQ(with_chaos, r.surviving.find(c.self().to_string()) ==
                            std::string::npos)
      << r.surviving;
  EXPECT_NE(r.surviving.find(e.self().to_string()), std::string::npos)
      << r.surviving;
  EXPECT_NE(r.surviving.find(a.self().to_string() + " 1 source"),
            std::string::npos)
      << r.surviving;
  return r;
}

TEST(ChaosSim, KillMidStreamTriggersDominoOnDownstream) {
  const Result r = run_scenario(/*with_chaos=*/true);
  EXPECT_EQ(r.kills_injected, 1.0);
  EXPECT_NE(r.trace.find("kill B"), std::string::npos) << r.trace;
  EXPECT_EQ(r.domino, "ok");
  EXPECT_EQ(r.teardown, "ok");
  EXPECT_EQ(r.sessions_torn, 2.0);  // B and C both cleared the session
  EXPECT_EQ(r.conservation, "ok");
  // The stream delivered data before the kill, then stopped.
  EXPECT_GT(r.stream_bytes, 0u);
}

TEST(ChaosSim, DisjointFlowIsUndisturbedByteForByte) {
  const Result calm = run_scenario(/*with_chaos=*/false);
  const Result chaotic = run_scenario(/*with_chaos=*/true);
  // The disjoint D -> E flow must not notice the kill at all: in the
  // deterministic simulator its delivered byte count is identical with
  // and without the fault.
  EXPECT_EQ(calm.disjoint_bytes, chaotic.disjoint_bytes);
  EXPECT_GT(chaotic.disjoint_bytes, 0u);
  // The faulted stream, by contrast, delivers strictly less.
  EXPECT_LT(chaotic.stream_bytes, calm.stream_bytes);
  EXPECT_EQ(calm.kills_injected, 0.0);
  EXPECT_EQ(calm.domino, "ok");
}

TEST(ChaosSim, SameSeedReplayIsByteIdentical) {
  const Result first = run_scenario(/*with_chaos=*/true);
  const Result second = run_scenario(/*with_chaos=*/true);
  EXPECT_FALSE(first.trace.empty());
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.surviving, second.surviving);
  EXPECT_EQ(first.stream_bytes, second.stream_bytes);
  EXPECT_EQ(first.disjoint_bytes, second.disjoint_bytes);
}

TEST(ChaosSim, SeverAndHealAllowReDial) {
  sim::SimNet net;
  auto alg_a = std::make_unique<RecordingRelay>();
  auto alg_b = std::make_unique<RecordingRelay>();
  auto* relay_a = alg_a.get();
  auto* relay_b = alg_b.get();
  auto& a = net.add_node(std::move(alg_a));
  auto& b = net.add_node(std::move(alg_b));
  auto sink = std::make_shared<apps::SinkApp>();
  a.register_app(kStream, std::make_shared<apps::CbrSource>(1000, 50e3));
  b.register_app(kStream, sink);
  relay_a->add_child(kStream, b.self());
  relay_b->set_consume(kStream, true);
  net.deploy(a.self(), kStream);

  FaultPlan plan;
  plan.partition(seconds(2.0), {{"A"}, {"B"}}).heal(seconds(4.0));
  SimChaosDriver driver(net, plan,
                        Binding{{"A", a.self()}, {"B", b.self()}});
  driver.run_until(seconds(3.0));
  EXPECT_FALSE(net.link_open(a.self(), b.self()));
  const u64 during = sink->stats(0).bytes;
  driver.run_until(seconds(5.0));
  EXPECT_TRUE(driver.done());

  // After heal, a fresh add_child re-dials across the healed cut and
  // data flows again.
  relay_a->add_child(kStream, b.self());
  const bool recovered = driver.await_recovery(
      [&] { return sink->stats(0).bytes > during; }, millis(100),
      seconds(15.0));
  EXPECT_TRUE(recovered);
  const auto snapshot = net.metrics().snapshot();
  EXPECT_EQ(counter_value(snapshot, obs::names::kChaosFaultsInjectedTotal,
                          {{"kind", "partition"}}),
            1.0);
  EXPECT_EQ(counter_value(snapshot, obs::names::kChaosFaultsInjectedTotal,
                          {{"kind", "heal"}}),
            1.0);
  // await_recovery recorded one recovery-latency observation.
  u64 latency_observations = 0;
  for (const auto& s : snapshot.samples) {
    if (s.name == obs::names::kChaosRecoveryLatencySeconds) {
      latency_observations += s.hist.count;
    }
  }
  EXPECT_EQ(latency_observations, 1u);
}

}  // namespace
}  // namespace iov::chaos
