// Gaussian-decoder properties: round-trip through random full-rank
// transfer matrices across a sweep of (k, block size) shapes, rank
// accounting, non-innovative rejection, and mixed plain/coded rows —
// the exact situation the Fig 8 receivers face.
#include "coding/decoder.h"

#include <gtest/gtest.h>

#include "coding/gf256.h"
#include "common/rng.h"

namespace iov::coding {
namespace {

std::vector<std::vector<u8>> random_blocks(Rng& rng, std::size_t k,
                                           std::size_t size) {
  std::vector<std::vector<u8>> blocks(k, std::vector<u8>(size));
  for (auto& block : blocks) {
    for (auto& byte : block) byte = static_cast<u8>(rng.below(256));
  }
  return blocks;
}

std::vector<u8> random_coeffs(Rng& rng, std::size_t k) {
  std::vector<u8> coeffs(k);
  for (auto& c : coeffs) c = static_cast<u8>(rng.below(256));
  return coeffs;
}

TEST(GaussianDecoder, PlainUnitRowsDecodeTrivially) {
  Rng rng(1);
  const auto blocks = random_blocks(rng, 3, 64);
  GaussianDecoder dec(3, 64);
  for (std::size_t s = 0; s < 3; ++s) {
    std::vector<u8> e(3, 0);
    e[s] = 1;
    EXPECT_TRUE(dec.add_row(e, blocks[s].data(), blocks[s].size()));
  }
  ASSERT_TRUE(dec.complete());
  for (std::size_t s = 0; s < 3; ++s) EXPECT_EQ(dec.block(s), blocks[s]);
}

TEST(GaussianDecoder, PaperAPlusBScenario) {
  // Receiver F: has `a` plain and `a+b` coded; must recover `b`.
  Rng rng(2);
  const auto blocks = random_blocks(rng, 2, 100);
  const std::vector<u8> ones{1, 1};
  const auto coded = GaussianDecoder::combine(blocks, ones);

  GaussianDecoder dec(2, 100);
  EXPECT_TRUE(dec.add_row({1, 0}, blocks[0].data(), blocks[0].size()));
  EXPECT_FALSE(dec.complete());
  EXPECT_TRUE(dec.add_row(ones, coded.data(), coded.size()));
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(dec.block(0), blocks[0]);
  EXPECT_EQ(dec.block(1), blocks[1]);
}

TEST(GaussianDecoder, DuplicateRowIsNotInnovative) {
  Rng rng(3);
  const auto blocks = random_blocks(rng, 2, 32);
  GaussianDecoder dec(2, 32);
  EXPECT_TRUE(dec.add_row({1, 0}, blocks[0].data(), blocks[0].size()));
  EXPECT_FALSE(dec.add_row({1, 0}, blocks[0].data(), blocks[0].size()));
  // A scaled duplicate is equally useless.
  std::vector<u8> scaled = blocks[0];
  gf_scale(scaled.data(), 7, scaled.size());
  EXPECT_FALSE(dec.add_row({7, 0}, scaled.data(), scaled.size()));
  EXPECT_EQ(dec.rank(), 1u);
}

TEST(GaussianDecoder, LinearlyDependentCombinationRejected) {
  Rng rng(4);
  const auto blocks = random_blocks(rng, 3, 16);
  GaussianDecoder dec(3, 16);
  const std::vector<u8> c1{1, 2, 0};
  const std::vector<u8> c2{0, 1, 1};
  auto r1 = GaussianDecoder::combine(blocks, c1);
  auto r2 = GaussianDecoder::combine(blocks, c2);
  EXPECT_TRUE(dec.add_row(c1, r1.data(), r1.size()));
  EXPECT_TRUE(dec.add_row(c2, r2.data(), r2.size()));
  // c3 = 5*c1 + 9*c2 is in the span.
  std::vector<u8> c3(3, 0);
  std::vector<u8> r3(16, 0);
  for (int i = 0; i < 3; ++i) {
    c3[i] = gf_add(gf_mul(5, c1[i]), gf_mul(9, c2[i]));
  }
  gf_axpy(r3.data(), r1.data(), 5, r3.size());
  gf_axpy(r3.data(), r2.data(), 9, r3.size());
  EXPECT_FALSE(dec.add_row(c3, r3.data(), r3.size()));
  EXPECT_EQ(dec.rank(), 2u);
}

TEST(GaussianDecoder, ShortPayloadZeroExtended) {
  GaussianDecoder dec(1, 10);
  const u8 partial[4] = {1, 2, 3, 4};
  EXPECT_TRUE(dec.add_row({1}, partial, sizeof(partial)));
  ASSERT_TRUE(dec.complete());
  const std::vector<u8> expected{1, 2, 3, 4, 0, 0, 0, 0, 0, 0};
  EXPECT_EQ(dec.block(0), expected);
}

struct DecodeCase {
  std::size_t k;
  std::size_t block_size;
  u64 seed;
};

class DecoderSweep : public ::testing::TestWithParam<DecodeCase> {};

TEST_P(DecoderSweep, RandomFullRankMatrixRoundTrips) {
  const auto param = GetParam();
  Rng rng(param.seed);
  const auto blocks = random_blocks(rng, param.k, param.block_size);

  GaussianDecoder dec(param.k, param.block_size);
  std::size_t innovative = 0;
  // Feed random combinations until full rank; random coefficients over
  // GF(2^8) are full-rank with overwhelming probability per draw.
  int guard = 0;
  while (!dec.complete() && guard++ < 1000) {
    const auto coeffs = random_coeffs(rng, param.k);
    const auto row = GaussianDecoder::combine(blocks, coeffs);
    innovative += dec.add_row(coeffs, row.data(), row.size()) ? 1 : 0;
  }
  ASSERT_TRUE(dec.complete());
  EXPECT_EQ(innovative, param.k);
  for (std::size_t s = 0; s < param.k; ++s) {
    EXPECT_EQ(dec.block(s), blocks[s]) << "block " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DecoderSweep,
    ::testing::Values(DecodeCase{1, 1, 11}, DecodeCase{2, 100, 12},
                      DecodeCase{2, 5000, 13}, DecodeCase{3, 64, 14},
                      DecodeCase{4, 256, 15}, DecodeCase{8, 128, 16},
                      DecodeCase{16, 32, 17}, DecodeCase{32, 8, 18}));

}  // namespace
}  // namespace iov::coding
