// GF(2^8) field axioms, verified exhaustively where cheap and by seeded
// parameterized sweeps where not.
#include "coding/gf256.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace iov::coding {
namespace {

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(gf_add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(gf_sub(0x57, 0x83), gf_add(0x57, 0x83));
}

TEST(Gf256, MultiplicativeIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    const u8 x = static_cast<u8>(a);
    EXPECT_EQ(gf_mul(x, 1), x);
    EXPECT_EQ(gf_mul(1, x), x);
    EXPECT_EQ(gf_mul(x, 0), 0);
    EXPECT_EQ(gf_mul(0, x), 0);
  }
}

TEST(Gf256, KnownProducts) {
  // Hand-checked products in the 0x11d field.
  EXPECT_EQ(gf_mul(2, 2), 4);
  EXPECT_EQ(gf_mul(0x80, 2), 0x1d);   // overflow wraps via the polynomial
  EXPECT_EQ(gf_mul(3, 7), 9);         // (x+1)(x^2+x+1) = x^3+1
}

TEST(Gf256, MultiplicationCommutes) {
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    const u8 a = static_cast<u8>(rng.below(256));
    const u8 b = static_cast<u8>(rng.below(256));
    EXPECT_EQ(gf_mul(a, b), gf_mul(b, a));
  }
}

TEST(Gf256, MultiplicationAssociates) {
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const u8 a = static_cast<u8>(rng.below(256));
    const u8 b = static_cast<u8>(rng.below(256));
    const u8 c = static_cast<u8>(rng.below(256));
    EXPECT_EQ(gf_mul(gf_mul(a, b), c), gf_mul(a, gf_mul(b, c)));
  }
}

TEST(Gf256, DistributesOverAddition) {
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    const u8 a = static_cast<u8>(rng.below(256));
    const u8 b = static_cast<u8>(rng.below(256));
    const u8 c = static_cast<u8>(rng.below(256));
    EXPECT_EQ(gf_mul(a, gf_add(b, c)), gf_add(gf_mul(a, b), gf_mul(a, c)));
  }
}

TEST(Gf256, EveryNonZeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const u8 x = static_cast<u8>(a);
    EXPECT_EQ(gf_mul(x, gf_inv(x)), 1) << "a=" << a;
  }
}

TEST(Gf256, DivisionInvertsMultiplication) {
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    const u8 a = static_cast<u8>(rng.below(256));
    const u8 b = static_cast<u8>(1 + rng.below(255));
    EXPECT_EQ(gf_div(gf_mul(a, b), b), a);
  }
}

TEST(Gf256, PowMatchesRepeatedMultiplication) {
  for (int a = 0; a < 256; ++a) {
    const u8 x = static_cast<u8>(a);
    u8 expected = 1;
    for (unsigned n = 0; n < 10; ++n) {
      EXPECT_EQ(gf_pow(x, n), expected) << "a=" << a << " n=" << n;
      expected = gf_mul(expected, x);
    }
  }
}

TEST(Gf256, GeneratorHasFullOrder) {
  // 0x02 generates the multiplicative group of the 0x11d field: 255
  // distinct powers. (0x03, a generator of the AES 0x11b field, has
  // order 51 here.)
  std::set<u8> seen;
  for (unsigned n = 0; n < 255; ++n) seen.insert(gf_pow(2, n));
  EXPECT_EQ(seen.size(), 255u);
  std::set<u8> three;
  for (unsigned n = 0; n < 255; ++n) three.insert(gf_pow(3, n));
  EXPECT_EQ(three.size(), 51u);
}

TEST(Gf256, AxpyMatchesScalarLoop) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const u8 coeff = static_cast<u8>(rng.below(256));
    std::vector<u8> src(257);
    std::vector<u8> dst(257);
    for (auto& v : src) v = static_cast<u8>(rng.below(256));
    for (auto& v : dst) v = static_cast<u8>(rng.below(256));
    std::vector<u8> expected = dst;
    for (std::size_t i = 0; i < src.size(); ++i) {
      expected[i] = gf_add(expected[i], gf_mul(coeff, src[i]));
    }
    gf_axpy(dst.data(), src.data(), coeff, src.size());
    EXPECT_EQ(dst, expected);
  }
}

TEST(Gf256, ScaleMatchesScalarLoop) {
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const u8 coeff = static_cast<u8>(rng.below(256));
    std::vector<u8> dst(129);
    for (auto& v : dst) v = static_cast<u8>(rng.below(256));
    std::vector<u8> expected = dst;
    for (auto& v : expected) v = gf_mul(coeff, v);
    gf_scale(dst.data(), coeff, dst.size());
    EXPECT_EQ(dst, expected);
  }
}

}  // namespace
}  // namespace iov::coding
