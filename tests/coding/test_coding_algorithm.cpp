// End-to-end network coding on the simulator: the §3.2 butterfly-style
// seven-node topology of Fig 8, with and without coding at node D, plus
// smaller sanity scenarios.
#include "coding/coding_algorithm.h"

#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "sim/sim_net.h"

namespace iov::coding {
namespace {

using apps::BackToBackSource;
using apps::SinkApp;
using sim::SimEngine;
using sim::SimNet;
using sim::SimNodeConfig;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;

struct CodedNode {
  SimEngine* engine = nullptr;
  CodingAlgorithm* alg = nullptr;
};

CodedNode add_node(SimNet& net, std::size_t buffer_msgs = 10) {
  auto algorithm = std::make_unique<CodingAlgorithm>();
  CodedNode n;
  n.alg = algorithm.get();
  SimNodeConfig config;
  config.recv_buffer_msgs = buffer_msgs;
  config.send_buffer_msgs = buffer_msgs;
  n.engine = &net.add_node(std::move(algorithm), config);
  return n;
}

TEST(CodingAlgorithm, TwoHopSplitAndDecode) {
  // A splits two streams directly to R, which decodes both plainly.
  SimNet net;
  CodedNode a = add_node(net);
  CodedNode r = add_node(net);
  auto sink = std::make_shared<SinkApp>(kPayload);
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, 40));
  r.engine->register_app(kApp, sink);
  a.alg->set_source_split(kApp, {r.engine->self(), r.engine->self()});
  r.alg->set_decoder(kApp, 2, kPayload);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(5.0));
  EXPECT_EQ(sink->stats(0).distinct, 40u);
  EXPECT_EQ(sink->stats(0).corrupt, 0u);
  EXPECT_EQ(r.alg->decoded_blocks(kApp), 40u);
}

// Builds the Fig 8 topology. If `code_at_d` is false, D relays both
// streams to E instead of coding (the Fig 8(a) control case).
struct Butterfly {
  SimNet net;
  CodedNode a, b, c, d, e, f, g;
  std::shared_ptr<SinkApp> sink_d = std::make_shared<SinkApp>(kPayload);
  std::shared_ptr<SinkApp> sink_f = std::make_shared<SinkApp>(kPayload);
  std::shared_ptr<SinkApp> sink_g = std::make_shared<SinkApp>(kPayload);

  explicit Butterfly(bool code_at_d) {
    // Data-dissemination setting: large buffers, so D's capped uplink
    // does not back-pressure its intake over the measurement window
    // (paper §2.4 and Fig 8, where D still receives the full 400 KB/s).
    constexpr std::size_t kBigBuffers = 10000;
    a = add_node(net, kBigBuffers);
    b = add_node(net, kBigBuffers);
    c = add_node(net, kBigBuffers);
    d = add_node(net, kBigBuffers);
    e = add_node(net, kBigBuffers);
    f = add_node(net, kBigBuffers);
    g = add_node(net, kBigBuffers);

    a.engine->register_app(kApp,
                           std::make_shared<BackToBackSource>(kPayload));
    d.engine->register_app(kApp, sink_d);
    f.engine->register_app(kApp, sink_f);
    g.engine->register_app(kApp, sink_g);

    // Per-node total available bandwidth of 400 KB/s at the source, and
    // an uplink bottleneck of 200 KB/s at D (Fig 8).
    a.engine->bandwidth().set_node_up(400e3);
    d.engine->bandwidth().set_node_up(200e3);

    a.alg->set_source_split(kApp, {b.engine->self(), c.engine->self()});
    b.alg->add_relay(kApp, d.engine->self());
    b.alg->add_relay(kApp, f.engine->self());
    c.alg->add_relay(kApp, d.engine->self());
    c.alg->add_relay(kApp, g.engine->self());
    if (code_at_d) {
      d.alg->set_coder(kApp, 2, {1, 1}, {e.engine->self()});
    } else {
      d.alg->add_relay(kApp, e.engine->self());
    }
    d.alg->set_decoder(kApp, 2, kPayload);
    e.alg->add_relay(kApp, f.engine->self());
    e.alg->add_relay(kApp, g.engine->self());
    f.alg->set_decoder(kApp, 2, kPayload);
    g.alg->set_decoder(kApp, 2, kPayload);

    net.deploy(a.engine->self(), kApp);
  }
};

double goodput(const SinkApp& sink, double seconds_run) {
  return static_cast<double>(sink.stats(0).bytes) / seconds_run;
}

TEST(CodingAlgorithm, ButterflyWithCodingReachesFullRate) {
  Butterfly bf(/*code_at_d=*/true);
  constexpr double kRun = 20.0;
  bf.net.run_for(seconds(kRun));

  // With a+b coding at D, the effective throughput at D, F and G is the
  // full 400 KB/s source rate (paper Fig 8(b)).
  EXPECT_GT(goodput(*bf.sink_d, kRun), 330e3);
  EXPECT_GT(goodput(*bf.sink_f, kRun), 330e3);
  EXPECT_GT(goodput(*bf.sink_g, kRun), 330e3);
  EXPECT_EQ(bf.sink_f->stats(0).corrupt, 0u);
  EXPECT_EQ(bf.sink_g->stats(0).corrupt, 0u);
}

TEST(CodingAlgorithm, ButterflyWithoutCodingLeavesReceiversShort) {
  Butterfly bf(/*code_at_d=*/false);
  constexpr double kRun = 20.0;
  bf.net.run_for(seconds(kRun));

  // Without coding D's 200 KB/s uplink carries half of each stream, so F
  // and G top out around 300 KB/s (paper Fig 8(a)).
  EXPECT_LT(goodput(*bf.sink_f, kRun), 330e3);
  EXPECT_GT(goodput(*bf.sink_f, kRun), 230e3);
  EXPECT_LT(goodput(*bf.sink_g, kRun), 330e3);
  EXPECT_GT(goodput(*bf.sink_g, kRun), 230e3);
}

TEST(CodingAlgorithm, CodingBeatsForwardingAtTheBottleneck) {
  Butterfly coded(true);
  Butterfly plain(false);
  constexpr double kRun = 20.0;
  coded.net.run_for(seconds(kRun));
  plain.net.run_for(seconds(kRun));
  const double coded_min = std::min(goodput(*coded.sink_f, kRun),
                                    goodput(*coded.sink_g, kRun));
  const double plain_max = std::max(goodput(*plain.sink_f, kRun),
                                    goodput(*plain.sink_g, kRun));
  EXPECT_GT(coded_min, plain_max * 1.1);
}

TEST(CodingAlgorithm, NonTrivialCoefficientsAlsoDecode) {
  // A splits stream 0 to B and stream 1 to D; B relays `a` to both R and
  // D; D codes 7a + 19b toward R. R therefore sees exactly {a, 7a+19b}
  // per block and must solve for b.
  SimNet net;
  CodedNode a = add_node(net);
  CodedNode b = add_node(net);
  CodedNode d = add_node(net);
  CodedNode r = add_node(net);
  auto sink = std::make_shared<SinkApp>(kPayload);
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, 30));
  r.engine->register_app(kApp, sink);
  a.alg->set_source_split(kApp, {b.engine->self(), d.engine->self()});
  b.alg->add_relay(kApp, r.engine->self());
  b.alg->add_relay(kApp, d.engine->self());
  d.alg->set_coder(kApp, 2, {7, 19}, {r.engine->self()});
  r.alg->set_decoder(kApp, 2, kPayload);
  net.deploy(a.engine->self(), kApp);
  net.run_for(seconds(5.0));
  // All 30 source messages (15 blocks x 2 streams) decoded intact.
  EXPECT_EQ(sink->stats(0).distinct, 30u);
  EXPECT_EQ(sink->stats(0).corrupt, 0u);
}

}  // namespace
}  // namespace iov::coding
