// MetricsRegistry semantics: counter/gauge/histogram behaviour under
// single- and multi-threaded use, snapshot wire round-trips, the
// Prometheus/JSON/CSV renderers, and name/label sanitization.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>

namespace iov::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  MetricsRegistry reg;
  Counter& c = reg.counter("iov_test_total");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAddSub) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("iov_test_depth");
  g.set(10);
  g.add(5);
  g.sub(20);
  EXPECT_EQ(g.value(), -5);
}

TEST(Histogram, BucketsCountAndSum) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("iov_test_seconds", {}, {0.01, 0.1, 1.0});
  h.observe(0.005);  // <= 0.01      -> bucket 0
  h.observe(0.01);   // == bound     -> bucket 0 (le semantics)
  h.observe(0.05);   // <= 0.1       -> bucket 1
  h.observe(0.5);    // <= 1.0       -> bucket 2
  h.observe(3.0);    // > last bound -> +inf bucket
  EXPECT_EQ(h.count(), 5u);
  EXPECT_NEAR(h.sum(), 3.565, 1e-9);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(Histogram, BoundsAreSortedAndDeduped) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("iov_test_seconds", {}, {1.0, 0.1, 1.0, 0.01});
  EXPECT_EQ(h.bounds(), (std::vector<double>{0.01, 0.1, 1.0}));
}

TEST(Registry, SameNameAndLabelsReturnsSameInstance) {
  MetricsRegistry reg;
  Counter& a = reg.counter("iov_x_total", {{"peer", "p1"}});
  Counter& b = reg.counter("iov_x_total", {{"peer", "p1"}});
  Counter& c = reg.counter("iov_x_total", {{"peer", "p2"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &c);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
  EXPECT_EQ(c.value(), 0u);
}

TEST(Registry, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  Counter& a = reg.counter("iov_x_total", {{"a", "1"}, {"b", "2"}});
  Counter& b = reg.counter("iov_x_total", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(Registry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry reg;
  Counter& c = reg.counter("iov_test_total");
  Histogram& h = reg.histogram("iov_test_seconds");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        h.observe(1e-4);
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<u64>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<u64>(kThreads) * kPerThread);
  EXPECT_NEAR(h.sum(), kThreads * kPerThread * 1e-4, 1e-3);
}

TEST(Registry, SanitizesReservedCharacters) {
  MetricsRegistry reg;
  reg.counter("iov_bad,name{x}", {{"peer", "a|b;c=d"}}).inc();
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 1u);
  EXPECT_EQ(snap.samples[0].name, "iov_bad_name_x_");
  ASSERT_EQ(snap.samples[0].labels.size(), 1u);
  EXPECT_EQ(snap.samples[0].labels[0].second, "a_b_c_d");
}

TEST(Snapshot, SerializeParseRoundTrip) {
  MetricsRegistry reg;
  reg.counter("iov_a_total", {{"peer", "1.2.3.4:5"}, {"dir", "up"}}).inc(7);
  reg.gauge("iov_b_depth").set(-3);
  Histogram& h = reg.histogram("iov_c_seconds", {}, {0.1, 1.0});
  h.observe(0.05);
  h.observe(5.0);

  const std::string wire = reg.snapshot().serialize();
  EXPECT_EQ(wire.find('\n'), std::string::npos);  // single-line by contract

  MetricsSnapshot parsed;
  ASSERT_TRUE(MetricsSnapshot::parse(wire, &parsed));
  ASSERT_EQ(parsed.samples.size(), 3u);

  EXPECT_EQ(parsed.samples[0].name, "iov_a_total");
  EXPECT_EQ(parsed.samples[0].kind, MetricKind::kCounter);
  EXPECT_EQ(parsed.samples[0].value, 7.0);
  EXPECT_EQ(parsed.samples[0].labels,
            (Labels{{"dir", "up"}, {"peer", "1.2.3.4:5"}}));

  EXPECT_EQ(parsed.samples[1].kind, MetricKind::kGauge);
  EXPECT_EQ(parsed.samples[1].value, -3.0);

  const auto& hist = parsed.samples[2];
  EXPECT_EQ(hist.kind, MetricKind::kHistogram);
  EXPECT_EQ(hist.hist.bounds, (std::vector<double>{0.1, 1.0}));
  EXPECT_EQ(hist.hist.counts, (std::vector<u64>{1, 0, 1}));
  EXPECT_EQ(hist.hist.count, 2u);
  EXPECT_NEAR(hist.hist.sum, 5.05, 1e-9);
}

TEST(Snapshot, ParseEmptyIsEmptySnapshot) {
  MetricsSnapshot out;
  EXPECT_TRUE(MetricsSnapshot::parse("", &out));
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(MetricsSnapshot::parse("  \t ", &out));
  EXPECT_TRUE(out.empty());
}

TEST(Snapshot, ParseSkipsUnknownKinds) {
  // A future metric kind ("q") must not break an old parser.
  MetricsSnapshot out;
  ASSERT_TRUE(MetricsSnapshot::parse("c:iov_a_total,1|q:iov_new,whatever|"
                                     "g:iov_b_depth,2",
                                     &out));
  ASSERT_EQ(out.samples.size(), 2u);
  EXPECT_EQ(out.samples[0].name, "iov_a_total");
  EXPECT_EQ(out.samples[1].name, "iov_b_depth");
}

TEST(Snapshot, ParseRejectsStructuralGarbage) {
  MetricsSnapshot out;
  EXPECT_FALSE(MetricsSnapshot::parse("not a record", &out));
  EXPECT_FALSE(MetricsSnapshot::parse("c:iov_a_total", &out));     // no payload
  EXPECT_FALSE(MetricsSnapshot::parse("c:iov_a_total,abc", &out)); // bad value
}

TEST(Snapshot, AddLabelDoesNotOverwriteExisting) {
  MetricsRegistry reg;
  reg.counter("iov_a_total", {{"node", "self"}}).inc();
  reg.counter("iov_b_total").inc();
  auto snap = reg.snapshot();
  snap.add_label("node", "1.2.3.4:5");
  EXPECT_EQ(snap.samples[0].labels, (Labels{{"node", "self"}}));
  ASSERT_EQ(snap.samples[1].labels.size(), 1u);
  EXPECT_EQ(snap.samples[1].labels[0],
            (std::pair<std::string, std::string>{"node", "1.2.3.4:5"}));
}

TEST(Snapshot, PrometheusRendering) {
  MetricsRegistry reg;
  reg.counter("iov_a_total", {{"peer", "x"}}).inc(3);
  // 0.5 is exactly representable, so %.17g renders it as "0.5".
  Histogram& h = reg.histogram("iov_c_seconds", {}, {0.5});
  h.observe(0.25);
  h.observe(0.75);
  const std::string text = reg.snapshot().to_prometheus();

  EXPECT_NE(text.find("# TYPE iov_a_total counter"), std::string::npos);
  EXPECT_NE(text.find("iov_a_total{peer=\"x\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE iov_c_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("iov_c_seconds_bucket{le=\"0.5\"} 1"),
            std::string::npos);
  // Cumulative buckets: the +Inf bucket equals the total count.
  EXPECT_NE(text.find("iov_c_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("iov_c_seconds_count 2"), std::string::npos);
}

TEST(Snapshot, PrometheusEmitsOneTypeLinePerNameAfterMerge) {
  // Two nodes' snapshots merged (as the observer does) still yield one
  // # TYPE line per metric name.
  MetricsRegistry a;
  a.counter("iov_a_total").inc(1);
  MetricsRegistry b;
  b.counter("iov_a_total").inc(2);
  auto sa = a.snapshot();
  sa.add_label("node", "n1");
  auto sb = b.snapshot();
  sb.add_label("node", "n2");
  sa.merge(sb);
  const std::string text = sa.to_prometheus();

  std::size_t type_lines = 0;
  for (std::size_t pos = 0;
       (pos = text.find("# TYPE iov_a_total", pos)) != std::string::npos;
       ++pos) {
    ++type_lines;
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("iov_a_total{node=\"n1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("iov_a_total{node=\"n2\"} 2"), std::string::npos);
}

TEST(Snapshot, JsonAndCsvContainSamples) {
  MetricsRegistry reg;
  reg.counter("iov_a_total", {{"peer", "x"}}).inc(3);
  reg.histogram("iov_c_seconds", {}, {0.1}).observe(0.05);
  const auto snap = reg.snapshot();

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"name\":\"iov_a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"peer\":\"x\""), std::string::npos);
  EXPECT_NE(json.find("\"iov_c_seconds\""), std::string::npos);

  const std::string csv = snap.to_csv();
  EXPECT_EQ(csv.find("name,kind,labels,value,count,sum,buckets"), 0u);
  EXPECT_NE(csv.find("iov_a_total,counter,peer=x,3"), std::string::npos);
  EXPECT_NE(csv.find("iov_c_seconds,histogram"), std::string::npos);
}

TEST(Snapshot, EmptySnapshotSerializesEmpty) {
  MetricsRegistry reg;
  EXPECT_TRUE(reg.snapshot().empty());
  EXPECT_EQ(reg.snapshot().serialize(), "");
}

}  // namespace
}  // namespace iov::obs
