// Multi-process integration: spawns the real iov_observerd and iov_node
// binaries, drives the observer's console through a pipe, and verifies
// the deployment workflow end to end — the closest this suite gets to
// the paper's PlanetLab operational story.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"

namespace iov {
namespace {

namespace fs = std::filesystem;

// Locates a tools binary relative to the test's working directory
// (build/tests) with a couple of fallbacks.
std::string find_tool(const std::string& name) {
  for (const char* prefix : {"../tools/", "tools/", "./"}) {
    const fs::path candidate = fs::path(prefix) / name;
    std::error_code ec;
    if (fs::exists(candidate, ec)) return candidate.string();
  }
  return {};
}

struct Process {
  pid_t pid = -1;
  int stdin_fd = -1;
  int stdout_fd = -1;

  void write_line(const std::string& line) const {
    const std::string full = line + "\n";
    [[maybe_unused]] const ssize_t n =
        ::write(stdin_fd, full.data(), full.size());
  }

  ~Process() {
    if (stdin_fd >= 0) ::close(stdin_fd);
    if (stdout_fd >= 0) ::close(stdout_fd);
    if (pid > 0) {
      ::kill(pid, SIGTERM);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
};

// Spawns `argv` with piped stdin/stdout (stdout non-blocking for polling
// reads).
std::unique_ptr<Process> spawn(const std::vector<std::string>& argv) {
  int in_pipe[2];
  int out_pipe[2];
  if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0) return nullptr;
  const pid_t pid = ::fork();
  if (pid < 0) return nullptr;
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<char*> args;
    for (const auto& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    _exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  ::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
  auto process = std::make_unique<Process>();
  process->pid = pid;
  process->stdin_fd = in_pipe[1];
  process->stdout_fd = out_pipe[0];
  return process;
}

// Accumulates a process's stdout until `needle` appears or `timeout`.
bool wait_for_output(const Process& process, std::string& accumulated,
                     const std::string& needle, Duration timeout) {
  const TimePoint deadline = RealClock::instance().now() + timeout;
  char buf[4096];
  while (RealClock::instance().now() < deadline) {
    const ssize_t n = ::read(process.stdout_fd, buf, sizeof(buf));
    if (n > 0) accumulated.append(buf, static_cast<std::size_t>(n));
    if (accumulated.find(needle) != std::string::npos) return true;
    sleep_for(millis(30));
  }
  return accumulated.find(needle) != std::string::npos;
}

TEST(Tools, ObserverAndNodesRunAsProcesses) {
  const std::string observerd = find_tool("iov_observerd");
  const std::string node_bin = find_tool("iov_node");
  if (observerd.empty() || node_bin.empty()) {
    GTEST_SKIP() << "tools binaries not found next to the test";
  }

  // Fixed ports in a range unlikely to collide inside the test container.
  const std::string obs_port = "7911";
  auto observer = spawn({observerd, "--port", obs_port});
  ASSERT_NE(observer, nullptr);
  std::string obs_out;
  ASSERT_TRUE(wait_for_output(*observer, obs_out, "observer listening",
                              seconds(5.0)));

  auto source = spawn({node_bin, "--observer", "127.0.0.1:" + obs_port,
                       "--port", "7912", "--source", "1:2000"});
  auto sink = spawn({node_bin, "--observer", "127.0.0.1:" + obs_port,
                     "--port", "7913", "--sink", "1"});
  ASSERT_NE(source, nullptr);
  ASSERT_NE(sink, nullptr);
  std::string src_out;
  std::string sink_out;
  ASSERT_TRUE(wait_for_output(*source, src_out, "up", seconds(5.0)));
  ASSERT_TRUE(wait_for_output(*sink, sink_out, "up", seconds(5.0)));

  // Drive the deployment through the console.
  observer->write_line("control 127.0.0.1:7912 1 1 127.0.0.1:7913");
  observer->write_line("join 127.0.0.1:7913 1");
  observer->write_line("deploy 127.0.0.1:7912 1");
  sleep_for(seconds(1.0));
  observer->write_line("list");
  ASSERT_TRUE(wait_for_output(*observer, obs_out, "2 alive", seconds(5.0)));
  // The source reports itself as sourcing app 1 and feeding one
  // downstream.
  EXPECT_NE(obs_out.find("src=1"), std::string::npos) << obs_out;

  // Topology dump shows the edge.
  observer->write_line("dot");
  ASSERT_TRUE(wait_for_output(*observer, obs_out,
                              "\"127.0.0.1:7912\" -> \"127.0.0.1:7913\"",
                              seconds(5.0)))
      << obs_out;

  // Kill the source through the console; the observer notices.
  observer->write_line("kill 127.0.0.1:7912");
  ASSERT_TRUE(wait_for_output(*source, src_out, "down", seconds(5.0)));

  observer->write_line("quit");
}

}  // namespace
}  // namespace iov
