// Multi-process integration: spawns the real iov_observerd and iov_node
// binaries, drives the observer's console through a pipe, and verifies
// the deployment workflow end to end — the closest this suite gets to
// the paper's PlanetLab operational story.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/strings.h"

namespace iov {
namespace {

namespace fs = std::filesystem;

// Locates a tools binary relative to the test's working directory
// (build/tests) with a couple of fallbacks.
std::string find_tool(const std::string& name) {
  for (const char* prefix : {"../tools/", "tools/", "./"}) {
    const fs::path candidate = fs::path(prefix) / name;
    std::error_code ec;
    if (fs::exists(candidate, ec)) return candidate.string();
  }
  return {};
}

struct Process {
  pid_t pid = -1;
  int stdin_fd = -1;
  int stdout_fd = -1;

  void write_line(const std::string& line) const {
    const std::string full = line + "\n";
    [[maybe_unused]] const ssize_t n =
        ::write(stdin_fd, full.data(), full.size());
  }

  ~Process() {
    if (stdin_fd >= 0) ::close(stdin_fd);
    if (stdout_fd >= 0) ::close(stdout_fd);
    if (pid > 0) {
      ::kill(pid, SIGTERM);
      int status = 0;
      ::waitpid(pid, &status, 0);
    }
  }
};

// Spawns `argv` with piped stdin/stdout (stdout non-blocking for polling
// reads).
std::unique_ptr<Process> spawn(const std::vector<std::string>& argv) {
  int in_pipe[2];
  int out_pipe[2];
  if (::pipe(in_pipe) != 0 || ::pipe(out_pipe) != 0) return nullptr;
  const pid_t pid = ::fork();
  if (pid < 0) return nullptr;
  if (pid == 0) {
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<char*> args;
    for (const auto& a : argv) args.push_back(const_cast<char*>(a.c_str()));
    args.push_back(nullptr);
    ::execv(args[0], args.data());
    _exit(127);
  }
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  ::fcntl(out_pipe[0], F_SETFL, O_NONBLOCK);
  auto process = std::make_unique<Process>();
  process->pid = pid;
  process->stdin_fd = in_pipe[1];
  process->stdout_fd = out_pipe[0];
  return process;
}

// Accumulates a process's stdout until `needle` appears or `timeout`.
bool wait_for_output(const Process& process, std::string& accumulated,
                     const std::string& needle, Duration timeout) {
  const TimePoint deadline = RealClock::instance().now() + timeout;
  char buf[4096];
  while (RealClock::instance().now() < deadline) {
    const ssize_t n = ::read(process.stdout_fd, buf, sizeof(buf));
    if (n > 0) accumulated.append(buf, static_cast<std::size_t>(n));
    if (accumulated.find(needle) != std::string::npos) return true;
    sleep_for(millis(30));
  }
  return accumulated.find(needle) != std::string::npos;
}

TEST(Tools, ObserverAndNodesRunAsProcesses) {
  const std::string observerd = find_tool("iov_observerd");
  const std::string node_bin = find_tool("iov_node");
  if (observerd.empty() || node_bin.empty()) {
    GTEST_SKIP() << "tools binaries not found next to the test";
  }

  // Fixed ports in a range unlikely to collide inside the test container.
  const std::string obs_port = "7911";
  auto observer = spawn({observerd, "--port", obs_port});
  ASSERT_NE(observer, nullptr);
  std::string obs_out;
  ASSERT_TRUE(wait_for_output(*observer, obs_out, "observer listening",
                              seconds(5.0)));

  auto source = spawn({node_bin, "--observer", "127.0.0.1:" + obs_port,
                       "--port", "7912", "--source", "1:2000"});
  auto sink = spawn({node_bin, "--observer", "127.0.0.1:" + obs_port,
                     "--port", "7913", "--sink", "1"});
  ASSERT_NE(source, nullptr);
  ASSERT_NE(sink, nullptr);
  std::string src_out;
  std::string sink_out;
  ASSERT_TRUE(wait_for_output(*source, src_out, "up", seconds(5.0)));
  ASSERT_TRUE(wait_for_output(*sink, sink_out, "up", seconds(5.0)));

  // Drive the deployment through the console.
  observer->write_line("control 127.0.0.1:7912 1 1 127.0.0.1:7913");
  observer->write_line("join 127.0.0.1:7913 1");
  observer->write_line("deploy 127.0.0.1:7912 1");
  // Poll `list` until the source's report shows it sourcing app 1
  // (node reports arrive on their own cadence; a fixed nap races them).
  bool sourcing = false;
  const TimePoint deploy_deadline = RealClock::instance().now() + seconds(10.0);
  while (!sourcing && RealClock::instance().now() < deploy_deadline) {
    observer->write_line("list");
    sourcing = wait_for_output(*observer, obs_out, "src=1", seconds(1.0));
  }
  EXPECT_TRUE(sourcing) << obs_out;
  ASSERT_TRUE(wait_for_output(*observer, obs_out, "2 alive", seconds(5.0)));

  // Topology dump shows the edge.
  observer->write_line("dot");
  ASSERT_TRUE(wait_for_output(*observer, obs_out,
                              "\"127.0.0.1:7912\" -> \"127.0.0.1:7913\"",
                              seconds(5.0)))
      << obs_out;

  // Kill the source through the console; the observer notices.
  observer->write_line("kill 127.0.0.1:7912");
  ASSERT_TRUE(wait_for_output(*source, src_out, "down", seconds(5.0)));

  observer->write_line("quit");
}

// Chaos console verbs end to end: `sever` injects a link failure into a
// live relay chain, `loss` sets a drop rate, and a killed node vanishes
// from the observer's alive set (the operational story behind
// run_local_overlay.sh --chaos).
TEST(Tools, ChaosConsoleCommandsDriveLiveNodes) {
  const std::string observerd = find_tool("iov_observerd");
  const std::string node_bin = find_tool("iov_node");
  if (observerd.empty() || node_bin.empty()) {
    GTEST_SKIP() << "tools binaries not found next to the test";
  }

  const std::string obs_port = "7921";
  auto observer = spawn({observerd, "--port", obs_port});
  ASSERT_NE(observer, nullptr);
  std::string obs_out;
  ASSERT_TRUE(wait_for_output(*observer, obs_out, "observer listening",
                              seconds(5.0)));

  auto source = spawn({node_bin, "--observer", "127.0.0.1:" + obs_port,
                       "--port", "7922", "--source", "1:2000"});
  auto relay = spawn({node_bin, "--observer", "127.0.0.1:" + obs_port,
                      "--port", "7923"});
  auto sink = spawn({node_bin, "--observer", "127.0.0.1:" + obs_port,
                     "--port", "7924", "--sink", "1"});
  ASSERT_NE(source, nullptr);
  ASSERT_NE(relay, nullptr);
  ASSERT_NE(sink, nullptr);
  std::string src_out, relay_out, sink_out;
  ASSERT_TRUE(wait_for_output(*source, src_out, "up", seconds(5.0)));
  ASSERT_TRUE(wait_for_output(*relay, relay_out, "up", seconds(5.0)));
  ASSERT_TRUE(wait_for_output(*sink, sink_out, "up", seconds(5.0)));

  observer->write_line("control 127.0.0.1:7922 1 1 127.0.0.1:7923");
  observer->write_line("control 127.0.0.1:7923 1 1 127.0.0.1:7924");
  observer->write_line("join 127.0.0.1:7924 1");
  observer->write_line("deploy 127.0.0.1:7922 1");
  // Same polling idiom as above: repeat `list` until all three nodes
  // have reported in.
  bool all_alive = false;
  const TimePoint boot_deadline = RealClock::instance().now() + seconds(10.0);
  while (!all_alive && RealClock::instance().now() < boot_deadline) {
    observer->write_line("list");
    all_alive = wait_for_output(*observer, obs_out, "3 alive", seconds(1.0));
  }
  ASSERT_TRUE(all_alive) << obs_out;

  // Inject a link failure at the relay: the console acknowledges, and
  // every process stays up (sever is a fault, not a kill).
  std::string after_sever;
  observer->write_line("sever 127.0.0.1:7923 127.0.0.1:7922");
  ASSERT_TRUE(wait_for_output(*observer, after_sever, "ok", seconds(5.0)))
      << after_sever;
  std::string after_loss;
  observer->write_line("loss 127.0.0.1:7922 127.0.0.1:7923 0.5");
  ASSERT_TRUE(wait_for_output(*observer, after_loss, "ok", seconds(5.0)))
      << after_loss;
  std::string alive_check;
  observer->write_line("list");
  ASSERT_TRUE(wait_for_output(*observer, alive_check, "3 alive", seconds(5.0)))
      << alive_check;

  // Kill the relay: it departs and drops out of the observer's alive set.
  observer->write_line("kill 127.0.0.1:7923");
  ASSERT_TRUE(wait_for_output(*relay, relay_out, "down", seconds(5.0)));
  std::string after_kill;
  const TimePoint deadline = RealClock::instance().now() + seconds(10.0);
  bool departed = false;
  while (!departed && RealClock::instance().now() < deadline) {
    observer->write_line("list");
    departed = wait_for_output(*observer, after_kill, "2 alive", seconds(1.0));
  }
  EXPECT_TRUE(departed) << after_kill;
  EXPECT_NE(after_kill.find("127.0.0.1:7923"), std::string::npos)
      << after_kill;  // still listed, but as dead
  EXPECT_NE(after_kill.find("dead"), std::string::npos) << after_kill;

  observer->write_line("quit");
}

}  // namespace
}  // namespace iov
