// Federation edge cases: malformed wire inputs never crash or wedge the
// algorithm, empty scenarios behave, and results stay consistent when
// instances vanish mid-federation.
#include <gtest/gtest.h>

#include "../algorithm/fake_engine.h"
#include "common/strings.h"
#include "federation/federation_algorithm.h"
#include "federation/scenario.h"

namespace iov::federation {
namespace {

using test::FakeEngine;

ServiceGraph universe() { return ServiceGraph::chain({1, 2, 3}); }

TEST(FederationEdge, MalformedMessagesAreIgnored) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 100e3);
  engine.attach(alg);
  alg.host_service(1);

  const NodeId peer = NodeId::loopback(4001);
  // Garbage in every protocol slot: none of these may crash or emit
  // anything meaningful.
  alg.process(Msg::control(kSAware, peer, kControlApp, 1, 1, "not;fields"));
  alg.process(Msg::control(kSFederate, peer, kControlApp, 5, 0, "garbage"));
  alg.process(Msg::control(kSFederate, peer, kControlApp, 5, 0,
                           "req=5|origin=bad|graph=bad|map=bad"));
  alg.process(Msg::control(kSPath, peer, kControlApp, 5, 0, "req=x"));
  alg.process(Msg::control(kSFederateAck, peer, kControlApp, 5, 0, ""));
  alg.process(Msg::control(kSPath, peer, kControlApp, 5, 0,
                           "req=5|graph=src=1;sink=2;edges=2-1|map="));
  EXPECT_EQ(alg.load(), 0u);
  EXPECT_TRUE(alg.results().empty());
  // No path install or ack was produced from any of the garbage.
  EXPECT_EQ(engine.count_type(kSPath), 0u);
  EXPECT_EQ(engine.count_type(kSFederateAck), 0u);
}

TEST(FederationEdge, EmptyScenarioProducesNothing) {
  FederationScenarioConfig config;
  config.nodes = 4;
  config.universe_types = 2;
  config.requests = 0;
  config.tail = seconds(5.0);
  const auto result = run_federation_scenario(config);
  EXPECT_TRUE(result.requests.empty());
  EXPECT_EQ(result.completion_rate(), 0.0);
  EXPECT_EQ(result.mean_goodput_ok(), 0.0);
  // Services still announced themselves.
  EXPECT_GT(result.aware_bytes, 0u);
  EXPECT_EQ(result.federate_bytes, 0u);
}

TEST(FederationEdge, SingleTypeRequirement) {
  // A requirement that is just the source==sink type: the designated node
  // satisfies it alone.
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 100e3);
  engine.attach(alg);
  alg.host_service(1);
  const auto trivial = ServiceGraph::chain({1});
  alg.federate(55, trivial);
  // Pump the self-sends.
  std::size_t next = 0;
  while (next < engine.sent.size()) {
    const auto entry = engine.sent[next++];
    if (entry.dest == engine.self()) alg.process(entry.msg);
  }
  ASSERT_EQ(alg.results().size(), 1u);
  EXPECT_TRUE(alg.results()[0].ok);
  EXPECT_EQ(alg.results()[0].mapping.size(), 1u);
  EXPECT_EQ(alg.results()[0].mapping.at(1), engine.self());
}

TEST(FederationEdge, BrokenLinkDoesNotCorruptRegistry) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 100e3);
  engine.attach(alg);
  const NodeId peer = NodeId::loopback(4001);
  alg.process(Msg::control(kSAware, peer, kControlApp, 2, 1,
                           "cap=100000;load=0;ttl=3"));
  ASSERT_EQ(alg.instances_of(2).size(), 1u);
  alg.process(Msg::control(MsgType::kBrokenLink, peer, kControlApp));
  // The registry entry may legitimately persist (aware data is soft
  // state), but instances_of must stay internally consistent.
  const auto instances = alg.instances_of(2);
  for (const auto& id : instances) EXPECT_TRUE(id.valid());
}

}  // namespace
}  // namespace iov::federation
