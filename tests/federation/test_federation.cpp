// Federation protocol end-to-end on the simulator: sAware propagation,
// request completion, mapping validity, data-plane delivery along the
// DAG, strategy behaviour, and the scenario driver's measurements.
#include "federation/federation_algorithm.h"

#include <gtest/gtest.h>

#include "federation/scenario.h"
#include "sim/sim_net.h"

namespace iov::federation {
namespace {

using sim::SimEngine;
using sim::SimNet;
using sim::SimNodeConfig;

struct FedNode {
  SimEngine* engine = nullptr;
  FederationAlgorithm* alg = nullptr;
};

FedNode add_node(SimNet& net, FederationStrategy strategy,
                 const ServiceGraph& universe, double capacity) {
  auto algorithm =
      std::make_unique<FederationAlgorithm>(strategy, universe, capacity);
  FedNode n;
  n.alg = algorithm.get();
  SimNodeConfig config;
  config.bandwidth.node_up = capacity;
  n.engine = &net.add_node(std::move(algorithm), config);
  return n;
}

TEST(Federation, AwarePropagatesAcrossServiceNodes) {
  SimNet net;
  const auto universe = ServiceGraph::chain({1, 2, 3});
  std::vector<FedNode> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(add_node(net, FederationStrategy::kSFlow, universe, 100e3));
  }
  for (const auto& n : nodes) net.bootstrap(n.engine->self(), 8);
  net.run_for(millis(50));
  nodes[0].alg->host_service(1);
  nodes[1].alg->host_service(2);
  nodes[2].alg->host_service(3);
  net.run_for(seconds(2.0));

  // Service nodes learn their neighbour types' instances.
  EXPECT_EQ(nodes[1].alg->instances_of(1),
            std::vector<NodeId>{nodes[0].engine->self()});
  EXPECT_EQ(nodes[1].alg->instances_of(3),
            std::vector<NodeId>{nodes[2].engine->self()});
}

TEST(Federation, ChainRequirementFederatesAndDelivers) {
  FederationScenarioConfig config;
  config.strategy = FederationStrategy::kSFlow;
  config.nodes = 8;
  config.universe_types = 4;
  config.requests = 1;
  config.requirement_length = 4;
  config.allow_branches = false;
  config.tail = seconds(15.0);
  const auto result = run_federation_scenario(config);
  ASSERT_EQ(result.requests.size(), 1u);
  const auto& r = result.requests[0];
  EXPECT_TRUE(r.completed);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.mapping.size(), 4u);
  EXPECT_GT(r.goodput, 10e3);       // data flowed end to end
  EXPECT_GT(r.mean_delay_ms, 0.0);  // across >= 3 hops of 10-50 ms
}

TEST(Federation, MappingOnlyUsesActualHosts) {
  FederationScenarioConfig config;
  config.nodes = 12;
  config.universe_types = 4;
  config.requests = 5;
  config.deploy_streams = false;
  config.seed = 3;
  const auto result = run_federation_scenario(config);
  // Every assignment in every completed mapping refers to a node index
  // whose hosted type matches (host i serves type i % 4 + 1).
  for (const auto& r : result.requests) {
    if (!r.ok) continue;
    for (const auto& [type, id] : r.mapping) {
      EXPECT_TRUE(id.valid());
    }
    // Source and sink of the requirement must be assigned.
    EXPECT_GE(r.hops, 1u);
  }
  EXPECT_GT(result.completion_rate(), 0.9);
}

TEST(Federation, DiamondRequirementDelivers) {
  FederationScenarioConfig config;
  config.nodes = 12;
  config.universe_types = 5;
  config.requests = 3;
  config.requirement_length = 4;
  config.allow_branches = true;
  config.seed = 7;
  config.tail = seconds(15.0);
  const auto result = run_federation_scenario(config);
  EXPECT_GT(result.completion_rate(), 0.9);
  for (const auto& r : result.requests) {
    if (r.ok) EXPECT_GT(r.goodput, 0.0);
  }
}

TEST(Federation, ControlOverheadAccounted) {
  FederationScenarioConfig config;
  config.nodes = 10;
  config.universe_types = 4;
  config.requests = 4;
  config.deploy_streams = false;
  const auto result = run_federation_scenario(config);
  EXPECT_GT(result.aware_bytes, 0u);
  EXPECT_GT(result.federate_bytes, 0u);
  // Fig 15(a): sFederate overhead is small compared to sAware.
  EXPECT_GT(result.aware_bytes, result.federate_bytes);
  u64 per_node_sum = 0;
  for (const auto& [id, bytes] : result.aware_bytes_per_node) {
    per_node_sum += bytes;
  }
  EXPECT_GT(per_node_sum, 0u);
  EXPECT_LE(per_node_sum, result.aware_bytes);
}

TEST(Federation, AwareTimelineDecaysAfterJoinWave) {
  FederationScenarioConfig config;
  config.nodes = 20;
  config.universe_types = 5;
  config.service_interval = seconds(20.0);  // 3 per virtual minute
  config.requests = 0;
  config.deploy_streams = false;
  config.tail = seconds(300.0);
  const auto result = run_federation_scenario(config);
  ASSERT_GE(result.aware_timeline.size(), 8u);
  // Overhead during the join wave dwarfs overhead after it (Fig 16).
  double wave = 0.0;
  double after = 0.0;
  const std::size_t split = 7;  // join wave ends ~400 s in
  for (std::size_t i = 0; i < result.aware_timeline.size(); ++i) {
    (i <= split ? wave : after) += result.aware_timeline[i];
  }
  EXPECT_GT(wave, after);
}

TEST(Federation, SFlowSpreadsLoadComparedToFixed) {
  // Under many concurrent requirements, fixed piles selections onto the
  // highest-capacity instances while sFlow balances by residual capacity,
  // yielding higher end-to-end bandwidth (Fig 19 ordering).
  const auto run = [](FederationStrategy strategy) {
    FederationScenarioConfig config;
    config.strategy = strategy;
    config.nodes = 24;
    config.universe_types = 4;
    config.requests = 12;
    config.request_interval = seconds(1.0);
    config.requirement_length = 3;
    config.allow_branches = false;
    config.seed = 11;
    config.tail = seconds(30.0);
    return run_federation_scenario(config);
  };
  const auto sflow = run(FederationStrategy::kSFlow);
  const auto fixed = run(FederationStrategy::kFixed);
  EXPECT_GT(sflow.completion_rate(), 0.9);
  EXPECT_GT(fixed.completion_rate(), 0.9);
  EXPECT_GT(sflow.mean_goodput_ok(), fixed.mean_goodput_ok());
}

TEST(Federation, ScenarioIsDeterministic) {
  FederationScenarioConfig config;
  config.nodes = 10;
  config.universe_types = 4;
  config.requests = 3;
  config.seed = 21;
  config.tail = seconds(10.0);
  const auto a = run_federation_scenario(config);
  const auto b = run_federation_scenario(config);
  ASSERT_EQ(a.requests.size(), b.requests.size());
  for (std::size_t i = 0; i < a.requests.size(); ++i) {
    EXPECT_EQ(a.requests[i].ok, b.requests[i].ok);
    EXPECT_EQ(a.requests[i].mapping, b.requests[i].mapping);
    EXPECT_DOUBLE_EQ(a.requests[i].goodput, b.requests[i].goodput);
  }
  EXPECT_EQ(a.aware_bytes, b.aware_bytes);
}

}  // namespace
}  // namespace iov::federation
