// Protocol-level unit tests of FederationAlgorithm against FakeEngine:
// aware dissemination/relay rules, version dedup, the three selection
// strategies, the hop-by-hop sFederate walk, failure acks, path
// installation, and data-plane forwarding along a DAG.
#include <gtest/gtest.h>

#include "../algorithm/fake_engine.h"
#include "common/strings.h"
#include "federation/federation_algorithm.h"

namespace iov::federation {
namespace {

using test::FakeEngine;

const NodeId kHostA = NodeId::loopback(4001);
const NodeId kHostB = NodeId::loopback(4002);
const NodeId kHostC = NodeId::loopback(4003);
const NodeId kOrigin = NodeId::loopback(4009);

ServiceGraph universe() { return ServiceGraph::chain({1, 2, 3}); }

// Messages of one type sent to one destination.
std::vector<MsgPtr> typed_to(const FakeEngine& engine, const NodeId& dest,
                             MsgType type) {
  std::vector<MsgPtr> out;
  for (const auto& m : engine.sent_to(dest)) {
    if (m->type() == type) out.push_back(m);
  }
  return out;
}

// Processes messages the algorithm sent to itself (the engine would loop
// them back through the publicized port) until none remain.
void pump_self(FakeEngine& engine, FederationAlgorithm& alg) {
  std::size_t next = 0;
  while (next < engine.sent.size()) {
    const auto entry = engine.sent[next++];
    if (entry.dest == engine.self()) alg.process(entry.msg);
  }
}

MsgPtr aware(const NodeId& origin, ServiceType t, double cap, u32 load,
             u32 version = 1, int ttl = 8) {
  return Msg::control(
      kSAware, origin, kControlApp, static_cast<i32>(t),
      static_cast<i32>(version),
      strf("cap=%.0f;load=%u;ttl=%d", cap, load, ttl));
}

TEST(FederationUnit, HostServiceDisseminatesToAllKnownHosts) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.known_hosts().add(kHostA, engine.self());
  alg.known_hosts().add(kHostB, engine.self());
  alg.host_service(2);
  EXPECT_EQ(engine.count_type(kSAware), 2u);
  for (const auto& s : engine.sent) {
    EXPECT_EQ(s.msg->param(0), 2);  // the hosted type
  }
  // Hosting the same type twice does not re-announce.
  engine.sent.clear();
  alg.host_service(2);
  EXPECT_TRUE(engine.sent.empty());
}

TEST(FederationUnit, AwareRecordsInstancesAndVersionDedups) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.process(aware(kHostA, 1, 120e3, 0, /*version=*/1));
  EXPECT_EQ(alg.instances_of(1), std::vector<NodeId>{kHostA});
  // Re-delivery of the same version is ignored; a newer version updates.
  alg.process(aware(kHostA, 1, 120e3, 5, /*version=*/1));
  alg.process(aware(kHostA, 1, 120e3, 5, /*version=*/2));
  EXPECT_EQ(alg.instances_of(1), std::vector<NodeId>{kHostA});
}

TEST(FederationUnit, NonServiceNodeRelaysAwareOnRandomWalk) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.known_hosts().add(kHostB, engine.self());
  alg.process(aware(kHostA, 1, 120e3, 0));
  // The walk never bounces the message back to its origin.
  EXPECT_TRUE(engine.sent_to(kHostA).empty());
  const auto relayed = typed_to(engine, kHostB, kSAware);
  ASSERT_EQ(relayed.size(), 1u);
  EXPECT_EQ(relayed[0]->origin(), kHostA);  // origin preserved
}

TEST(FederationUnit, AwareTtlExhaustionStopsRelay) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.known_hosts().add(kHostB, engine.self());
  alg.process(aware(kHostA, 1, 120e3, 0, 1, /*ttl=*/0));
  EXPECT_TRUE(engine.sent.empty());
  // ...but the record was still taken.
  EXPECT_EQ(alg.instances_of(1), std::vector<NodeId>{kHostA});
}

TEST(FederationUnit, ServiceNodeForwardsAwareToNeighbourTypes) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.host_service(2);
  // Known instances of type 1 and 3 (neighbours of 2 in the universe).
  alg.process(aware(kHostA, 1, 100e3, 0));
  alg.process(aware(kHostB, 3, 100e3, 0));
  engine.sent.clear();
  // A new type-2 instance announces itself: forward to the type-1 and
  // type-3 instances.
  alg.process(aware(kHostC, 2, 100e3, 0));
  EXPECT_EQ(engine.sent_to(kHostA).size(), 1u);
  EXPECT_EQ(engine.sent_to(kHostB).size(), 1u);
}

TEST(FederationUnit, PickFixedChoosesHighestPathBandwidth) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kFixed, universe(), 150e3);
  engine.attach(alg);
  alg.process(aware(kHostA, 2, 200e3, /*load=*/9));  // fat but loaded
  alg.process(aware(kHostB, 2, 80e3, /*load=*/0));
  alg.host_service(1);
  alg.federate(100, universe());
  pump_self(engine, alg);
  // fixed ignores load: picks the 200 KB/s host despite its 9 sessions.
  EXPECT_EQ(typed_to(engine, kHostA, kSFederate).size(), 1u);
  EXPECT_TRUE(typed_to(engine, kHostB, kSFederate).empty());
}

TEST(FederationUnit, PickSFlowPrefersResidualCapacity) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.process(aware(kHostA, 2, 200e3, /*load=*/9));  // residual 20
  alg.process(aware(kHostB, 2, 80e3, /*load=*/0));   // residual 80
  alg.host_service(1);
  alg.federate(101, universe());
  pump_self(engine, alg);
  EXPECT_EQ(typed_to(engine, kHostB, kSFederate).size(), 1u);
  EXPECT_TRUE(typed_to(engine, kHostA, kSFederate).empty());
}

TEST(FederationUnit, PathBandwidthCapsFixedChoice) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kFixed, universe(), 150e3);
  engine.attach(alg);
  alg.process(aware(kHostA, 2, 200e3, 0));
  alg.process(aware(kHostB, 2, 150e3, 0));
  // The measured path to the fat host is terrible.
  alg.set_path_bandwidth(kHostA, 10e3);
  alg.set_path_bandwidth(kHostB, 140e3);
  alg.host_service(1);
  alg.federate(102, universe());
  pump_self(engine, alg);
  EXPECT_EQ(typed_to(engine, kHostB, kSFederate).size(), 1u);
}

TEST(FederationUnit, MissingInstanceFailsTheRequest) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.host_service(1);
  // No type-2 instance known anywhere.
  const std::string text = strf("req=%u|origin=", 103u) +
                           kOrigin.to_string() + "|graph=" +
                           universe().serialize() + "|map=";
  alg.process(Msg::control(kSFederate, kOrigin, kControlApp, 103, 0, text));
  pump_self(engine, alg);  // the self-assignment hop precedes the failure
  const auto acks = typed_to(engine, kOrigin, kSFederateAck);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0]->type(), kSFederateAck);
  EXPECT_EQ(acks[0]->param(1), 0);  // ok = false
}

TEST(FederationUnit, SinkAssignmentFinalizesWithPathsAndAck) {
  FakeEngine engine;
  // This node hosts the sink type 3; everything else already mapped.
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.host_service(3);
  const std::string text = strf("req=%u|origin=", 104u) +
                           kOrigin.to_string() + "|graph=" +
                           universe().serialize() + "|map=1:" +
                           kHostA.to_string() + ",2:" + kHostB.to_string();
  alg.process(Msg::control(kSFederate, kHostB, kControlApp, 104, 0, text));

  // kSPath to every selected instance (A, B, self) + ack to the origin.
  EXPECT_EQ(engine.count_type(kSPath), 3u);
  const auto acks = engine.sent_to(kOrigin);
  ASSERT_EQ(acks.size(), 1u);
  EXPECT_EQ(acks[0]->param(1), 1);  // ok
  EXPECT_NE(acks[0]->param_text().find("3:" + engine.self().to_string()),
            std::string_view::npos);
}

TEST(FederationUnit, PathInstallBumpsLoadAndReAnnounces) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.known_hosts().add(kHostA, engine.self());
  alg.host_service(2);
  engine.sent.clear();
  const std::string text = strf("req=%u|graph=", 105u) +
                           universe().serialize() + "|map=1:" +
                           kHostA.to_string() + ",2:" +
                           engine.self().to_string() + ",3:" +
                           kHostB.to_string();
  alg.process(Msg::control(kSPath, kHostB, kControlApp, 105, 0, text));
  EXPECT_EQ(alg.load(), 1u);
  EXPECT_GE(engine.count_type(kSAware), 1u);  // load refresh
  ASSERT_TRUE(alg.path_of(105).has_value());
  // Duplicate installs are idempotent.
  alg.process(Msg::control(kSPath, kHostB, kControlApp, 105, 0, text));
  EXPECT_EQ(alg.load(), 1u);
}

TEST(FederationUnit, DataForwardsAlongDagSuccessors) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.host_service(2);
  const std::string text = strf("req=%u|graph=", 106u) +
                           universe().serialize() + "|map=1:" +
                           kHostA.to_string() + ",2:" +
                           engine.self().to_string() + ",3:" +
                           kHostB.to_string();
  alg.process(Msg::control(kSPath, kHostB, kControlApp, 106, 0, text));
  engine.sent.clear();

  const auto m = Msg::data(kHostA, 106, 0, Buffer::pattern(64, 0));
  alg.process(m);
  // Type 2's successor is type 3, hosted at B; not the sink here, so no
  // local delivery.
  ASSERT_EQ(engine.sent_to(kHostB).size(), 1u);
  EXPECT_EQ(engine.sent_to(kHostB)[0].get(), m.get());  // zero copy
  EXPECT_TRUE(engine.delivered_local.empty());
}

TEST(FederationUnit, SinkDeliversLocally) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.host_service(3);
  const std::string text = strf("req=%u|graph=", 107u) +
                           universe().serialize() + "|map=1:" +
                           kHostA.to_string() + ",2:" + kHostB.to_string() +
                           ",3:" + engine.self().to_string();
  alg.process(Msg::control(kSPath, kHostB, kControlApp, 107, 0, text));
  engine.sent.clear();
  alg.process(Msg::data(kHostA, 107, 0, Buffer::pattern(64, 0)));
  EXPECT_EQ(engine.delivered_local.size(), 1u);
  EXPECT_EQ(engine.count_type(MsgType::kData), 0u);  // forwards nowhere
}

TEST(FederationUnit, DataForUnknownRequestDropped) {
  FakeEngine engine;
  FederationAlgorithm alg(FederationStrategy::kSFlow, universe(), 150e3);
  engine.attach(alg);
  alg.process(Msg::data(kHostA, 999, 0, Buffer::pattern(8, 0)));
  EXPECT_TRUE(engine.sent.empty());
  EXPECT_TRUE(engine.delivered_local.empty());
}

}  // namespace
}  // namespace iov::federation
