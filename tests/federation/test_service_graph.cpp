#include "federation/service_graph.h"

#include <gtest/gtest.h>

namespace iov::federation {
namespace {

TEST(ServiceGraph, ChainBasics) {
  const auto g = ServiceGraph::chain({1, 2, 3, 4});
  EXPECT_EQ(g.source(), 1u);
  EXPECT_EQ(g.sink(), 4u);
  EXPECT_EQ(g.size(), 4u);
  EXPECT_EQ(g.types(), (std::vector<ServiceType>{1, 2, 3, 4}));
  EXPECT_EQ(g.successors(2), std::vector<ServiceType>{3});
  EXPECT_EQ(g.predecessors(2), std::vector<ServiceType>{1});
  EXPECT_TRUE(g.successors(4).empty());
  EXPECT_TRUE(g.contains(3));
  EXPECT_FALSE(g.contains(9));
  EXPECT_EQ(g.next_in_order(1), 2u);
  EXPECT_EQ(g.next_in_order(4), std::nullopt);
}

TEST(ServiceGraph, DiamondTopologicalOrder) {
  const auto g = ServiceGraph::make(1, 4, {{1, 2}, {1, 3}, {2, 4}, {3, 4}});
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->types().front(), 1u);
  EXPECT_EQ(g->types().back(), 4u);
  EXPECT_EQ(g->successors(1).size(), 2u);
  EXPECT_EQ(g->predecessors(4).size(), 2u);
}

TEST(ServiceGraph, RejectsCycle) {
  EXPECT_FALSE(
      ServiceGraph::make(1, 3, {{1, 2}, {2, 3}, {3, 1}}).has_value());
}

TEST(ServiceGraph, RejectsSinkNotLast) {
  // 3 is a second leaf: the topological order cannot end at the sink 4.
  EXPECT_FALSE(
      ServiceGraph::make(1, 4, {{1, 2}, {2, 4}, {2, 3}}).has_value());
}

TEST(ServiceGraph, RejectsSecondRoot) {
  EXPECT_FALSE(
      ServiceGraph::make(1, 4, {{1, 2}, {3, 2}, {2, 4}}).has_value());
}

TEST(ServiceGraph, SerializeParseRoundTrip) {
  const auto g = ServiceGraph::make(1, 5, {{1, 2}, {1, 3}, {2, 4}, {3, 4},
                                           {4, 5}});
  ASSERT_TRUE(g.has_value());
  const auto parsed = ServiceGraph::parse(g->serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, *g);
}

TEST(ServiceGraph, ParseRejectsJunk) {
  EXPECT_FALSE(ServiceGraph::parse("").has_value());
  EXPECT_FALSE(ServiceGraph::parse("nonsense").has_value());
  EXPECT_FALSE(ServiceGraph::parse("src=1;sink=2;edges=2-1").has_value());
  EXPECT_FALSE(ServiceGraph::parse("src=1;sink=2;edges=1-x").has_value());
}

TEST(ServiceGraph, RandomGraphsAreValid) {
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto g = ServiceGraph::random(rng, 10, 2 + rng.below(7));
    EXPECT_GE(g.size(), 2u);
    EXPECT_EQ(g.types().front(), g.source());
    EXPECT_EQ(g.types().back(), g.sink());
    // Round-trips through the wire form.
    const auto parsed = ServiceGraph::parse(g.serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, g);
  }
}

}  // namespace
}  // namespace iov::federation
