#include "pubsub/predicate.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"

namespace iov::pubsub {
namespace {

TEST(Event, SerializeParseRoundTrip) {
  Event e;
  e.set("price", 42).set("volume", -1000).set("symbol_7", 0);
  const auto parsed = Event::parse(e.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, e);
}

TEST(Event, EmptyEventIsValid) {
  const auto parsed = Event::parse("");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 0u);
}

TEST(Event, ParseRejectsJunk) {
  EXPECT_FALSE(Event::parse("noequals").has_value());
  EXPECT_FALSE(Event::parse("a=notanumber").has_value());
  EXPECT_FALSE(Event::parse("bad name=1").has_value());
  EXPECT_FALSE(Event::parse("a=1;;b=2").has_value());
  EXPECT_FALSE(Event::parse("a=").has_value());
  EXPECT_FALSE(Event::parse("=5").has_value());
}

TEST(Constraint, AllOperators) {
  EXPECT_TRUE((Constraint{"x", Op::kEq, 5}.matches(5)));
  EXPECT_FALSE((Constraint{"x", Op::kEq, 5}.matches(6)));
  EXPECT_TRUE((Constraint{"x", Op::kNe, 5}.matches(6)));
  EXPECT_TRUE((Constraint{"x", Op::kLt, 5}.matches(4)));
  EXPECT_FALSE((Constraint{"x", Op::kLt, 5}.matches(5)));
  EXPECT_TRUE((Constraint{"x", Op::kLe, 5}.matches(5)));
  EXPECT_TRUE((Constraint{"x", Op::kGt, 5}.matches(6)));
  EXPECT_FALSE((Constraint{"x", Op::kGt, 5}.matches(5)));
  EXPECT_TRUE((Constraint{"x", Op::kGe, 5}.matches(5)));
}

TEST(Predicate, ConjunctionSemantics) {
  Predicate p;
  p.where("price", Op::kGt, 40).where("volume", Op::kGe, 500);
  EXPECT_TRUE(p.matches(Event().set("price", 41).set("volume", 500)));
  EXPECT_FALSE(p.matches(Event().set("price", 40).set("volume", 500)));
  EXPECT_FALSE(p.matches(Event().set("price", 41).set("volume", 499)));
  // Missing constrained attribute: no match.
  EXPECT_FALSE(p.matches(Event().set("price", 41)));
  // Extra attributes are irrelevant.
  EXPECT_TRUE(p.matches(
      Event().set("price", 41).set("volume", 600).set("other", 1)));
}

TEST(Predicate, EmptyMatchesEverything) {
  Predicate p;
  EXPECT_TRUE(p.matches(Event()));
  EXPECT_TRUE(p.matches(Event().set("anything", 1)));
}

TEST(Predicate, SerializeParseRoundTrip) {
  Predicate p;
  p.where("a", Op::kGe, -3)
      .where("b", Op::kNe, 100)
      .where("c", Op::kLt, 7)
      .where("d", Op::kEq, 0);
  const auto parsed = Predicate::parse(p.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, p);
}

TEST(Predicate, ParseRejectsJunk) {
  EXPECT_FALSE(Predicate::parse("noop").has_value());
  EXPECT_FALSE(Predicate::parse("a>>5").has_value());
  EXPECT_FALSE(Predicate::parse("a>x").has_value());
  EXPECT_FALSE(Predicate::parse("a>1&").has_value());
}

TEST(Predicate, RandomRoundTripSweep) {
  Rng rng(77);
  const Op ops[] = {Op::kEq, Op::kNe, Op::kLt, Op::kLe, Op::kGt, Op::kGe};
  for (int trial = 0; trial < 500; ++trial) {
    Predicate p;
    const std::size_t n = 1 + rng.below(5);
    for (std::size_t i = 0; i < n; ++i) {
      p.where(strf("attr%llu", (unsigned long long)rng.below(10)),
              ops[rng.below(6)],
              rng.uniform_int(-1000000, 1000000));
    }
    const auto parsed = Predicate::parse(p.serialize());
    ASSERT_TRUE(parsed.has_value()) << p.serialize();
    EXPECT_EQ(*parsed, p);

    // Parsed and original agree on random events.
    for (int e = 0; e < 20; ++e) {
      Event event;
      const std::size_t attrs = rng.below(6);
      for (std::size_t i = 0; i < attrs; ++i) {
        event.set(strf("attr%llu", (unsigned long long)rng.below(10)),
                  rng.uniform_int(-1000000, 1000000));
      }
      EXPECT_EQ(p.matches(event), parsed->matches(event));
    }
  }
}

}  // namespace
}  // namespace iov::pubsub
