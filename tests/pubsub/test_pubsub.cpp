// Content-based routing over the simulated substrate: subscriptions
// flood the broker tree, events reach exactly the matching subscribers,
// forwarding is pruned where no predicate matches, and unsubscribe stops
// delivery.
#include "pubsub/pubsub_algorithm.h"

#include <gtest/gtest.h>

#include "apps/sink.h"
#include "sim/sim_net.h"
#include "../algorithm/fake_engine.h"

namespace iov::pubsub {
namespace {

using test::FakeEngine;

constexpr u32 kApp = 1;

struct Broker {
  sim::SimEngine* engine = nullptr;
  PubSubAlgorithm* alg = nullptr;
  std::shared_ptr<apps::SinkApp> sink;
};

Broker add_broker(sim::SimNet& net) {
  auto algorithm = std::make_unique<PubSubAlgorithm>(kApp);
  Broker b;
  b.alg = algorithm.get();
  b.engine = &net.add_node(std::move(algorithm), sim::SimNodeConfig{});
  b.sink = std::make_shared<apps::SinkApp>();
  b.engine->register_app(kApp, b.sink);
  return b;
}

void connect(Broker& a, Broker& b) {
  a.alg->add_neighbor(b.engine->self());
  b.alg->add_neighbor(a.engine->self());
}

TEST(PubSub, LocalSubscriptionMatchesOwnPublications) {
  FakeEngine engine;
  PubSubAlgorithm alg(kApp);
  engine.attach(alg);
  alg.subscribe(1, Predicate().where("x", Op::kGt, 10));
  alg.publish(Event().set("x", 11));
  alg.publish(Event().set("x", 10));
  EXPECT_EQ(engine.delivered_local.size(), 1u);
  EXPECT_EQ(alg.delivered(), 1u);
}

TEST(PubSub, EventsRouteAcrossBrokerChainToMatchingSubscriberOnly) {
  // p1 -- b -- s1 / s2: publisher at one end, two subscribers behind the
  // middle broker with disjoint predicates.
  sim::SimNet net;
  Broker publisher = add_broker(net);
  Broker middle = add_broker(net);
  Broker sub_hot = add_broker(net);
  Broker sub_cold = add_broker(net);
  connect(publisher, middle);
  connect(middle, sub_hot);
  connect(middle, sub_cold);

  sub_hot.alg->subscribe(1, Predicate().where("temp", Op::kGt, 50));
  sub_cold.alg->subscribe(1, Predicate().where("temp", Op::kLe, 0));
  net.run_for(seconds(1.0));
  // Subscriptions reached the publisher's routing table via the middle.
  EXPECT_GE(publisher.alg->routing_entries(), 2u);

  publisher.alg->publish(Event().set("temp", 80));
  publisher.alg->publish(Event().set("temp", -5));
  publisher.alg->publish(Event().set("temp", 20));  // matches nobody
  net.run_for(seconds(1.0));

  EXPECT_EQ(sub_hot.sink->stats(0).msgs, 1u);
  EXPECT_EQ(sub_cold.sink->stats(0).msgs, 1u);
  EXPECT_EQ(middle.sink->stats(0).msgs, 0u);  // broker has no local subs
}

TEST(PubSub, ForwardingIsPruned) {
  // Publisher -> middle -> leaf with no subscription anywhere on the
  // leaf side: the event must not travel past the middle broker.
  sim::SimNet net;
  Broker publisher = add_broker(net);
  Broker middle = add_broker(net);
  Broker leaf = add_broker(net);
  connect(publisher, middle);
  connect(middle, leaf);
  net.run_for(millis(100));

  publisher.alg->publish(Event().set("x", 1));
  net.run_for(seconds(1.0));
  EXPECT_EQ(net.accounting().bytes_of(MsgType::kData), 0u)
      << "no subscription anywhere: nothing should leave the publisher";
}

TEST(PubSub, MultipleMatchingSubscriptionsDeliverOncePerNode) {
  sim::SimNet net;
  Broker publisher = add_broker(net);
  Broker subscriber = add_broker(net);
  connect(publisher, subscriber);
  subscriber.alg->subscribe(1, Predicate().where("x", Op::kGt, 0));
  subscriber.alg->subscribe(2, Predicate().where("x", Op::kGt, 5));
  net.run_for(millis(200));

  publisher.alg->publish(Event().set("x", 10));  // matches both
  net.run_for(seconds(1.0));
  EXPECT_EQ(subscriber.sink->stats(0).msgs, 1u);
  EXPECT_EQ(subscriber.sink->stats(0).duplicates, 0u);
}

TEST(PubSub, UnsubscribeStopsDeliveryAndPrunesRoutes) {
  sim::SimNet net;
  Broker publisher = add_broker(net);
  Broker middle = add_broker(net);
  Broker subscriber = add_broker(net);
  connect(publisher, middle);
  connect(middle, subscriber);
  subscriber.alg->subscribe(7, Predicate().where("x", Op::kGe, 0));
  net.run_for(millis(500));
  publisher.alg->publish(Event().set("x", 1));
  net.run_for(millis(500));
  ASSERT_EQ(subscriber.sink->stats(0).msgs, 1u);

  subscriber.alg->unsubscribe(7);
  net.run_for(millis(500));
  EXPECT_EQ(publisher.alg->routing_entries(), 0u);
  EXPECT_EQ(middle.alg->routing_entries(), 0u);
  publisher.alg->publish(Event().set("x", 2));
  net.run_for(millis(500));
  EXPECT_EQ(subscriber.sink->stats(0).msgs, 1u);  // unchanged
}

TEST(PubSub, DeepChainDelivery) {
  sim::SimNet net;
  std::vector<Broker> brokers;
  constexpr int kLen = 8;
  for (int i = 0; i < kLen; ++i) brokers.push_back(add_broker(net));
  for (int i = 0; i + 1 < kLen; ++i) connect(brokers[i], brokers[i + 1]);
  brokers.back().alg->subscribe(1, Predicate().where("k", Op::kEq, 9));
  net.run_for(seconds(2.0));

  for (int k = 0; k < 20; ++k) {
    brokers.front().alg->publish(Event().set("k", k % 10));
  }
  net.run_for(seconds(2.0));
  // Exactly the k==9 events (2 of 20) arrive at the far end.
  EXPECT_EQ(brokers.back().sink->stats(0).msgs, 2u);
  // Intermediate brokers forwarded but did not deliver.
  for (int i = 1; i + 1 < kLen; ++i) {
    EXPECT_EQ(brokers[static_cast<std::size_t>(i)].sink->stats(0).msgs, 0u);
  }
}

TEST(PubSub, SubscriberSideBrokerFailureIsContained) {
  sim::SimNet net;
  Broker publisher = add_broker(net);
  Broker middle = add_broker(net);
  Broker sub_a = add_broker(net);
  Broker sub_b = add_broker(net);
  connect(publisher, middle);
  connect(middle, sub_a);
  connect(publisher, sub_b);  // B hangs off the publisher directly
  sub_a.alg->subscribe(1, Predicate().where("x", Op::kGe, 0));
  sub_b.alg->subscribe(1, Predicate().where("x", Op::kGe, 0));
  net.run_for(seconds(1.0));

  net.kill_node(middle.engine->self());
  net.run_for(seconds(1.0));
  publisher.alg->publish(Event().set("x", 3));
  net.run_for(seconds(1.0));
  // B keeps receiving; A is cut off (its route died with the middle).
  EXPECT_EQ(sub_b.sink->stats(0).msgs, 1u);
  EXPECT_EQ(sub_a.sink->stats(0).msgs, 0u);
}

}  // namespace
}  // namespace iov::pubsub
