// Chord on the simulated substrate: ring formation and stabilization,
// lookup correctness against ground truth, O(log n) routing via fingers,
// the key-value layer, and healing after node failure.
#include "dht/chord.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "sim/sim_net.h"

namespace iov::dht {
namespace {

struct Ring {
  sim::SimNet net;
  std::vector<sim::SimEngine*> engines;
  std::vector<ChordAlgorithm*> algs;

  explicit Ring(std::size_t n, Duration settle = seconds(40.0)) {
    for (std::size_t i = 0; i < n; ++i) {
      auto algorithm = std::make_unique<ChordAlgorithm>();
      algs.push_back(algorithm.get());
      engines.push_back(&net.add_node(std::move(algorithm),
                                      sim::SimNodeConfig{}));
    }
    net.run_for(millis(10));
    for (std::size_t i = 1; i < n; ++i) {
      algs[i]->join(engines[0]->self());
      net.run_for(millis(500));
    }
    net.run_for(settle);
  }

  /// Nodes sorted by ring id.
  std::vector<std::size_t> sorted_by_id() const {
    std::vector<std::size_t> order(engines.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return algs[a]->id() < algs[b]->id();
    });
    return order;
  }

  /// Ground-truth owner of `key`: the first node clockwise from key.
  std::size_t true_owner(u64 key) const {
    std::size_t best = 0;
    u64 best_distance = ~0ULL;
    for (std::size_t i = 0; i < algs.size(); ++i) {
      const u64 distance = algs[i]->id() - key;  // mod 2^64
      if (distance < best_distance) {
        best_distance = distance;
        best = i;
      }
    }
    return best;
  }
};

TEST(Chord, SingleNodeOwnsEverything) {
  Ring ring(1, seconds(2.0));
  EXPECT_EQ(ring.algs[0]->successor(), ring.engines[0]->self());
  ring.algs[0]->put("k", "v");
  ring.algs[0]->get("k", 1);
  ASSERT_EQ(ring.algs[0]->gets().size(), 1u);
  EXPECT_TRUE(ring.algs[0]->gets()[0].found);
  EXPECT_EQ(ring.algs[0]->gets()[0].value, "v");
}

TEST(Chord, RingStabilizesToSortedOrder) {
  Ring ring(8);
  const auto order = ring.sorted_by_id();
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t node = order[i];
    const std::size_t next = order[(i + 1) % order.size()];
    EXPECT_EQ(ring.algs[node]->successor(), ring.engines[next]->self())
        << "node " << node;
    EXPECT_EQ(ring.algs[next]->predecessor(), ring.engines[node]->self())
        << "node " << next;
  }
}

TEST(Chord, LookupsResolveToTrueOwner) {
  Ring ring(10);
  Rng rng(5);
  u32 request = 1;
  std::vector<std::pair<u32, u64>> issued;
  for (int i = 0; i < 30; ++i) {
    const u64 key = rng();
    const std::size_t from = rng.below(ring.algs.size());
    ring.algs[from]->lookup(key, request);
    issued.push_back({request, key});
    ++request;
  }
  ring.net.run_for(seconds(5.0));

  std::size_t resolved = 0;
  for (std::size_t from = 0; from < ring.algs.size(); ++from) {
    for (const auto& result : ring.algs[from]->lookups()) {
      for (const auto& [req, key] : issued) {
        if (req != result.request) continue;
        ++resolved;
        EXPECT_EQ(result.owner,
                  ring.engines[ring.true_owner(key)]->self())
            << "key " << key;
      }
    }
  }
  EXPECT_EQ(resolved, issued.size());
}

TEST(Chord, FingersKeepHopsLogarithmic) {
  Ring ring(16);
  Rng rng(6);
  for (u32 request = 1; request <= 40; ++request) {
    ring.algs[0]->lookup(rng(), request);
  }
  ring.net.run_for(seconds(5.0));
  ASSERT_EQ(ring.algs[0]->lookups().size(), 40u);
  double total_hops = 0;
  for (const auto& result : ring.algs[0]->lookups()) {
    total_hops += result.hops;
    EXPECT_LE(result.hops, 8u);  // lg(16) = 4, generous slack
  }
  EXPECT_LE(total_hops / 40.0, 5.0);
}

TEST(Chord, PutGetAcrossTheRing) {
  Ring ring(8);
  // Writes from one node, reads from another.
  for (int i = 0; i < 20; ++i) {
    ring.algs[1]->put(strf("key%d", i), strf("value%d", i));
  }
  ring.net.run_for(seconds(3.0));
  for (u32 i = 0; i < 20; ++i) {
    ring.algs[5]->get(strf("key%u", i), i);
  }
  ring.net.run_for(seconds(3.0));
  ASSERT_EQ(ring.algs[5]->gets().size(), 20u);
  for (const auto& result : ring.algs[5]->gets()) {
    EXPECT_TRUE(result.found) << "request " << result.request;
    EXPECT_EQ(result.value, strf("value%u", result.request));
  }
  // Keys are spread across nodes, not piled on one.
  std::size_t nodes_with_keys = 0;
  for (const auto* alg : ring.algs) {
    nodes_with_keys += alg->stored_keys() > 0 ? 1 : 0;
  }
  EXPECT_GE(nodes_with_keys, 3u);
}

TEST(Chord, GetMissingKeyReportsNotFound) {
  Ring ring(6);
  ring.algs[2]->get("never-stored", 9);
  ring.net.run_for(seconds(3.0));
  ASSERT_EQ(ring.algs[2]->gets().size(), 1u);
  EXPECT_FALSE(ring.algs[2]->gets()[0].found);
}

TEST(Chord, RingHealsAfterNodeFailure) {
  Ring ring(8);
  const auto order = ring.sorted_by_id();
  // Kill a mid-ring node.
  const std::size_t victim = order[3];
  ring.net.kill_node(ring.engines[victim]->self());
  ring.net.run_for(seconds(30.0));

  // The remaining ring is consistent again: predecessor/successor chains
  // skip the victim.
  std::vector<std::size_t> alive;
  for (const auto idx : order) {
    if (idx != victim) alive.push_back(idx);
  }
  for (std::size_t i = 0; i < alive.size(); ++i) {
    const std::size_t node = alive[i];
    const std::size_t next = alive[(i + 1) % alive.size()];
    EXPECT_EQ(ring.algs[node]->successor(), ring.engines[next]->self())
        << "node " << node;
  }

  // Lookups still resolve (to live nodes).
  Rng rng(7);
  const std::size_t prober = alive[0];
  for (u32 request = 100; request < 110; ++request) {
    ring.algs[prober]->lookup(rng(), request);
  }
  ring.net.run_for(seconds(5.0));
  std::size_t resolved = 0;
  for (const auto& result : ring.algs[prober]->lookups()) {
    if (result.request >= 100) {
      ++resolved;
      EXPECT_NE(result.owner, ring.engines[victim]->self());
    }
  }
  EXPECT_EQ(resolved, 10u);
}

}  // namespace
}  // namespace iov::dht
