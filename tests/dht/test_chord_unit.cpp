// Ring arithmetic and hashing unit tests, plus Chord over *real* engines
// — a four-node ring driven entirely through observer control messages
// and verified through observer status reports, so no test-thread access
// ever races the engine thread.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"
#include "dht/chord.h"
#include "engine/engine.h"
#include "observer/observer.h"
#include "../engine/engine_test_util.h"

namespace iov::dht {
namespace {

using test::wait_until;

TEST(RingMath, OpenClosedInterval) {
  EXPECT_TRUE(in_ring_oc(5, 1, 10));
  EXPECT_TRUE(in_ring_oc(10, 1, 10));   // right-inclusive
  EXPECT_FALSE(in_ring_oc(1, 1, 10));   // left-exclusive
  EXPECT_FALSE(in_ring_oc(11, 1, 10));
  // Wrapping interval (a > b).
  EXPECT_TRUE(in_ring_oc(2, 10, 5));
  EXPECT_TRUE(in_ring_oc(11, 10, 5));
  EXPECT_TRUE(in_ring_oc(5, 10, 5));
  EXPECT_FALSE(in_ring_oc(7, 10, 5));
  EXPECT_FALSE(in_ring_oc(10, 10, 5));
  // Degenerate a == b: the whole ring.
  EXPECT_TRUE(in_ring_oc(0, 7, 7));
  EXPECT_TRUE(in_ring_oc(7, 7, 7));
}

TEST(RingMath, OpenOpenInterval) {
  EXPECT_TRUE(in_ring_oo(5, 1, 10));
  EXPECT_FALSE(in_ring_oo(10, 1, 10));
  EXPECT_FALSE(in_ring_oo(1, 1, 10));
  EXPECT_TRUE(in_ring_oo(2, 10, 5));
  EXPECT_FALSE(in_ring_oo(5, 10, 5));
  EXPECT_FALSE(in_ring_oo(7, 7, 7));
  EXPECT_TRUE(in_ring_oo(8, 7, 7));
}

TEST(RingMath, IntervalPropertySweep) {
  // For distinct x, a, b: x lies in exactly one of (a, b] and (b, a].
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const u64 a = rng();
    const u64 b = rng();
    const u64 x = rng();
    if (a == b || x == a || x == b) continue;
    EXPECT_NE(in_ring_oc(x, a, b), in_ring_oc(x, b, a))
        << x << " " << a << " " << b;
  }
}

TEST(RingMath, HashIsDeterministicAndSpread) {
  EXPECT_EQ(hash_bytes("abc"), hash_bytes("abc"));
  EXPECT_NE(hash_bytes("abc"), hash_bytes("abd"));
  std::vector<u64> ids;
  for (u16 p = 7000; p < 7064; ++p) {
    ids.push_back(hash_node(NodeId::loopback(p)));
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  EXPECT_EQ(ids.size(), 64u);
}

// Extracts "succ=<id>" or similar from a chord status line.
std::optional<NodeId> status_field(const std::string& status,
                                   const std::string& key) {
  const auto pos = status.find(key + "=");
  if (pos == std::string::npos) return std::nullopt;
  const auto start = pos + key.size() + 1;
  const auto end = status.find(' ', start);
  return NodeId::parse(status.substr(start, end - start));
}

TEST(ChordRealEngine, RingFormsAndServesKeysViaObserver) {
  observer::Observer obs{observer::ObserverConfig{}};
  ASSERT_TRUE(obs.start());

  std::vector<std::unique_ptr<engine::Engine>> members;
  for (int i = 0; i < 4; ++i) {
    engine::EngineConfig config;
    config.observer = obs.address();
    config.report_interval = millis(150);
    auto node = std::make_unique<engine::Engine>(
        config, std::make_unique<ChordAlgorithm>());
    ASSERT_TRUE(node->start());
    members.push_back(std::move(node));
  }
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 4; }));

  // Joins via the observer's algorithm-specific control channel.
  for (int i = 1; i < 4; ++i) {
    ASSERT_TRUE(obs.send_control(members[static_cast<std::size_t>(i)]->self(),
                                 MsgType::kControl, ChordAlgorithm::kOpJoin,
                                 0, members[0]->self().to_string()));
  }

  // Ring consistency, read from the observer's status reports.
  const auto reported_successor = [&](const NodeId& node)
      -> std::optional<NodeId> {
    const auto info = obs.node(node);
    if (!info || !info->last_report) return std::nullopt;
    return status_field(info->last_report->algorithm_status, "succ");
  };
  ASSERT_TRUE(wait_until(
      [&] {
        std::set<NodeId> visited;
        NodeId cursor = members[0]->self();
        for (int hop = 0; hop < 4; ++hop) {
          const auto succ = reported_successor(cursor);
          if (!succ) return false;
          visited.insert(cursor);
          cursor = *succ;
        }
        return visited.size() == 4 && cursor == members[0]->self();
      },
      seconds(20.0)));

  // KV traffic, also via the observer. The get is retried until it hits:
  // a single fixed-nap-then-get would race the put's forwarding to the
  // key's home node. Success is "at least one hit" (gets=H/T with H > 0),
  // not an exact attempt count.
  ASSERT_TRUE(obs.send_control(members[1]->self(), MsgType::kControl,
                               ChordAlgorithm::kOpPut, 0, "alpha|42"));
  TimePoint next_get = 0;
  ASSERT_TRUE(wait_until(
      [&] {
        const TimePoint now = RealClock::instance().now();
        if (now >= next_get) {
          next_get = now + millis(500);
          obs.send_control(members[3]->self(), MsgType::kControl,
                           ChordAlgorithm::kOpGet, 7, "alpha");
        }
        const auto info = obs.node(members[3]->self());
        if (!info || !info->last_report) return false;
        const auto& status = info->last_report->algorithm_status;
        const auto pos = status.find("gets=");
        return pos != std::string::npos &&
               status.compare(pos, 7, "gets=0/") != 0;
      },
      seconds(10.0)));

  for (auto& node : members) node->stop();
  for (auto& node : members) node->join();
}

}  // namespace
}  // namespace iov::dht
