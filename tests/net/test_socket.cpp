// Socket and framing tests over real loopback TCP: listener/connect,
// hello exchange, message framing, EOF handling, and shutdown semantics.
#include "net/socket.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "net/framing.h"

namespace iov {
namespace {

struct Pair {
  TcpConn client;
  TcpConn server;
};

// Establishes a connected loopback pair.
Pair make_pair() {
  auto listener = TcpListener::listen(0);
  EXPECT_TRUE(listener.has_value());
  auto client = TcpConn::connect(NodeId::loopback(listener->port()),
                                 seconds(1.0));
  EXPECT_TRUE(client.has_value());
  EXPECT_TRUE(wait_readable(listener->fd(), seconds(1.0)));
  auto server = listener->accept();
  EXPECT_TRUE(server.has_value());
  return Pair{std::move(*client), std::move(*server)};
}

TEST(Socket, ListenerPicksEphemeralPort) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.has_value());
  EXPECT_GT(listener->port(), 0);
}

TEST(Socket, AcceptWithoutPendingReturnsNullopt) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.has_value());
  EXPECT_FALSE(listener->accept().has_value());
}

TEST(Socket, ConnectToClosedPortFails) {
  // Bind a port and close it so nothing is listening there.
  u16 port;
  {
    auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.has_value());
    port = listener->port();
  }
  EXPECT_FALSE(TcpConn::connect(NodeId::loopback(port), millis(500)));
}

TEST(Socket, WriteReadRoundTrip) {
  auto pair = make_pair();
  const char out[] = "hello iOverlay";
  ASSERT_TRUE(pair.client.write_all(out, sizeof(out)));
  char in[sizeof(out)] = {};
  ASSERT_TRUE(pair.server.read_all(in, sizeof(in)));
  EXPECT_STREQ(in, out);
}

TEST(Socket, LargeTransferCrossesBufferBoundaries) {
  auto pair = make_pair();
  std::vector<u8> out(1 << 20);
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = static_cast<u8>(i);
  std::thread writer(
      [&] { EXPECT_TRUE(pair.client.write_all(out.data(), out.size())); });
  std::vector<u8> in(out.size());
  EXPECT_TRUE(pair.server.read_all(in.data(), in.size()));
  writer.join();
  EXPECT_EQ(in, out);
}

TEST(Socket, ReadAllFailsOnEof) {
  auto pair = make_pair();
  pair.client.shutdown_write();
  char buf[4];
  EXPECT_FALSE(pair.server.read_all(buf, sizeof(buf)));
}

TEST(Socket, ShutdownBothWakesBlockedReader) {
  auto pair = make_pair();
  std::thread reader([&] {
    char buf[4];
    EXPECT_FALSE(pair.server.read_all(buf, sizeof(buf)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pair.server.shutdown_both();
  reader.join();
}

TEST(Socket, ReadTimeoutUnblocksIdleReads) {
  auto pair = make_pair();
  ASSERT_TRUE(pair.server.set_read_timeout(millis(50)));
  char buf[4];
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(pair.server.read_all(buf, sizeof(buf)));  // EAGAIN
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
  // Restoring blocking mode works and data still flows.
  ASSERT_TRUE(pair.server.set_read_timeout(0));
  ASSERT_TRUE(pair.client.write_all("abcd", 4));
  EXPECT_TRUE(pair.server.read_all(buf, sizeof(buf)));
}

TEST(Socket, PeerAndLocalAddr) {
  auto pair = make_pair();
  const auto peer = pair.client.peer_addr();
  const auto local = pair.server.local_addr();
  ASSERT_TRUE(peer.has_value());
  ASSERT_TRUE(local.has_value());
  EXPECT_EQ(peer->ip(), 0x7f000001u);
  EXPECT_EQ(peer->port(), local->port());
}

TEST(Framing, HelloRoundTrip) {
  auto pair = make_pair();
  const Hello hello{ConnKind::kPersistent, NodeId::loopback(7777)};
  ASSERT_TRUE(write_hello(pair.client, hello));
  const auto got = read_hello(pair.server);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->kind, ConnKind::kPersistent);
  EXPECT_EQ(got->sender, NodeId::loopback(7777));
}

TEST(Framing, HelloRejectsBadMagic) {
  auto pair = make_pair();
  const u8 junk[16] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16};
  ASSERT_TRUE(pair.client.write_all(junk, sizeof(junk)));
  EXPECT_FALSE(read_hello(pair.server).has_value());
}

TEST(Framing, MessageRoundTrip) {
  auto pair = make_pair();
  const NodeId origin = NodeId::loopback(5001);
  const auto m = Msg::data(origin, 9, 77, Buffer::pattern(5000, 77));
  ASSERT_TRUE(write_msg(pair.client, *m));
  const MsgPtr got = read_msg(pair.server);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->type(), MsgType::kData);
  EXPECT_EQ(got->origin(), origin);
  EXPECT_EQ(got->app(), 9u);
  EXPECT_EQ(got->seq(), 77u);
  EXPECT_EQ(got->payload()->bytes(), m->payload()->bytes());
}

TEST(Framing, EmptyPayloadMessage) {
  auto pair = make_pair();
  const auto m = Msg::control(MsgType::kRequest, NodeId::loopback(1), 0);
  ASSERT_TRUE(write_msg(pair.client, *m));
  const MsgPtr got = read_msg(pair.server);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->type(), MsgType::kRequest);
}

TEST(Framing, BackToBackMessagesStayFramed) {
  auto pair = make_pair();
  for (u32 i = 0; i < 50; ++i) {
    const auto m = Msg::data(NodeId::loopback(1), 1, i, Buffer::pattern(100, i));
    ASSERT_TRUE(write_msg(pair.client, *m));
  }
  for (u32 i = 0; i < 50; ++i) {
    const MsgPtr got = read_msg(pair.server);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->seq(), i);
    EXPECT_EQ(got->payload()->bytes(), Buffer::pattern(100, i)->bytes());
  }
}

TEST(Framing, ReadMsgReturnsNullOnEof) {
  auto pair = make_pair();
  pair.client.shutdown_write();
  EXPECT_EQ(read_msg(pair.server), nullptr);
}

TEST(Framing, ReadMsgRejectsCorruptHeader) {
  auto pair = make_pair();
  u8 bad[Msg::kHeaderSize] = {};
  // payload_size field = 0xffffffff, far beyond kMaxPayload.
  for (int i = 20; i < 24; ++i) bad[i] = 0xff;
  ASSERT_TRUE(pair.client.write_all(bad, sizeof(bad)));
  EXPECT_EQ(read_msg(pair.server), nullptr);
}

// --- MSG_ZEROCOPY mechanics (DESIGN.md §8) --------------------------------
// Loopback accepts SO_ZEROCOPY but always completes with the "copied"
// degradation — which is exactly what these tests verify: the flag round
// trip, completion-id accounting, and byte-perfect data, independent of
// whether the kernel actually pinned pages.

TEST(Zerocopy, FlaggedWriteDeliversIdenticalBytesAndCompletes) {
  auto pair = make_pair();
  if (!pair.client.enable_zerocopy()) {
    GTEST_SKIP() << "kernel lacks SO_ZEROCOPY";
  }
  std::vector<u8> out(200 * 1024);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = static_cast<u8>(i * 31 + 7);
  }
  std::thread reader_thread([&] {
    std::vector<u8> in(out.size());
    EXPECT_TRUE(pair.server.read_all(in.data(), in.size()));
    EXPECT_EQ(in, out);
  });
  iovec iov{out.data(), out.size()};
  u64 syscalls = 0;
  u64 zc_calls = 0;
  ASSERT_TRUE(pair.client.writev_all(&iov, 1, &syscalls, /*zerocopy=*/true,
                                     &zc_calls));
  EXPECT_GE(syscalls, 1u);
  reader_thread.join();

  // Completion ids 0..zc_calls-1 must all surface on the error queue.
  // (zc_calls can be 0 only if every send fell back on ENOBUFS; then
  // there is nothing to reap and the loop exits immediately.)
  std::vector<TcpConn::ZcRange> ranges;
  u64 completed = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (completed < zc_calls &&
         std::chrono::steady_clock::now() < deadline) {
    ranges.clear();
    if (pair.client.reap_zerocopy(ranges) == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    for (const auto& r : ranges) completed += r.hi - r.lo + 1;
  }
  EXPECT_EQ(completed, zc_calls);
}

TEST(Zerocopy, WriteBatchZerocopyInteropsWithFrameReader) {
  auto pair = make_pair();
  if (!pair.client.enable_zerocopy()) {
    GTEST_SKIP() << "kernel lacks SO_ZEROCOPY";
  }
  std::vector<MsgPtr> msgs;
  for (u32 i = 0; i < 8; ++i) {
    msgs.push_back(Msg::data(NodeId::loopback(1), 7, i,
                             Buffer::pattern(20 * 1024, i)));
  }
  std::thread writer([&] {
    std::vector<codec::HeaderBytes> headers;
    u64 zc_calls = 0;
    EXPECT_TRUE(write_batch_zerocopy(pair.client, msgs.data(), msgs.size(),
                                     headers, nullptr, &zc_calls));
    // Headers and payloads must stay alive until completions arrive —
    // reap before letting them go out of scope.
    std::vector<TcpConn::ZcRange> ranges;
    u64 completed = 0;
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (completed < zc_calls &&
           std::chrono::steady_clock::now() < deadline) {
      ranges.clear();
      if (pair.client.reap_zerocopy(ranges) == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        continue;
      }
      for (const auto& r : ranges) completed += r.hi - r.lo + 1;
    }
    EXPECT_EQ(completed, zc_calls);
  });
  FrameReader reader(pair.server);
  for (const auto& want : msgs) {
    MsgPtr got = reader.next();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->seq(), want->seq());
    ASSERT_EQ(got->payload_size(), want->payload_size());
    EXPECT_EQ(got->payload()->view(), want->payload()->view());
  }
  writer.join();
}

TEST(Zerocopy, PlainWritevIgnoresZerocopyWithoutOptIn) {
  // zerocopy=false must not touch the error queue or require reaping.
  auto pair = make_pair();
  std::vector<u8> out(64 * 1024, 0xab);
  iovec iov{out.data(), out.size()};
  u64 zc_calls = 0;
  ASSERT_TRUE(pair.client.writev_all(&iov, 1, nullptr, /*zerocopy=*/false,
                                     &zc_calls));
  EXPECT_EQ(zc_calls, 0u);
  std::vector<TcpConn::ZcRange> ranges;
  EXPECT_EQ(pair.client.reap_zerocopy(ranges), 0u);
  std::vector<u8> in(out.size());
  EXPECT_TRUE(pair.server.read_all(in.data(), in.size()));
  EXPECT_EQ(in, out);
}

}  // namespace
}  // namespace iov
