// Token-bucket conformance: sustained rate accuracy, burst clamping, the
// debt model, unlimited mode, and runtime rate changes — the properties
// the paper's bandwidth emulation accuracy (Fig. 6) rests on.
#include "net/token_bucket.h"

#include <gtest/gtest.h>

namespace iov {
namespace {

TEST(TokenBucket, UnlimitedNeverWaits) {
  TokenBucket bucket(0.0);
  EXPECT_FALSE(bucket.limited());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(bucket.acquire(1 << 20, seconds(0.001) * i), 0);
  }
}

TEST(TokenBucket, SustainedRateIsExact) {
  // 100 KB/s, 5 KB messages: steady state must pace one message per 50 ms.
  TokenBucket bucket(100e3, /*burst=*/5000);
  TimePoint now = 0;
  // Drain the initial burst allowance.
  Duration wait = bucket.acquire(5000, now);
  EXPECT_EQ(wait, 0);
  Duration total_wait = 0;
  for (int i = 0; i < 100; ++i) {
    wait = bucket.acquire(5000, now);
    total_wait += wait;
    now += wait;  // simulate the caller sleeping exactly as told
  }
  // 100 messages * 5000 B at 100 KB/s = 5.0 seconds.
  EXPECT_NEAR(to_seconds(total_wait), 5.0, 0.01);
}

TEST(TokenBucket, BurstAllowsInitialBatch) {
  TokenBucket bucket(1000.0, /*burst=*/10000);
  // Let tokens accrue to the full burst.
  EXPECT_EQ(bucket.acquire(0, seconds(100.0)), 0);
  TimePoint now = seconds(100.0);
  // 10 KB of burst passes immediately...
  EXPECT_EQ(bucket.acquire(10000, now), 0);
  // ...the next byte must wait.
  EXPECT_GT(bucket.acquire(1000, now), 0);
}

TEST(TokenBucket, TokensCappedAtBurst) {
  TokenBucket bucket(1e6, /*burst=*/1000);
  // A long idle period must not bank more than `burst` tokens.
  EXPECT_EQ(bucket.acquire(1000, seconds(1000.0)), 0);
  EXPECT_GT(bucket.acquire(1000, seconds(1000.0)), 0);
}

TEST(TokenBucket, DebtDelaysNextMessage) {
  TokenBucket bucket(1000.0, 1000);
  TimePoint now = seconds(10.0);
  EXPECT_EQ(bucket.acquire(1000, now), 0);
  // 5x oversized message goes into debt: wait ~5 s.
  const Duration wait = bucket.acquire(5000, now);
  EXPECT_NEAR(to_seconds(wait), 5.0, 0.01);
}

TEST(TokenBucket, WouldWaitDoesNotConsume) {
  TokenBucket bucket(1000.0, 1000);
  const TimePoint now = seconds(10.0);
  const Duration peek1 = bucket.would_wait(500, now);
  const Duration peek2 = bucket.would_wait(500, now);
  EXPECT_EQ(peek1, peek2);
  EXPECT_EQ(bucket.acquire(500, now), peek1);
}

TEST(TokenBucket, SetRateAtRuntime) {
  TokenBucket bucket(0.0);
  EXPECT_EQ(bucket.acquire(1 << 20, 0), 0);
  bucket.set_rate(1000.0, 1000);
  EXPECT_TRUE(bucket.limited());
  EXPECT_DOUBLE_EQ(bucket.rate(), 1000.0);
  TimePoint now = seconds(1.0);
  (void)bucket.acquire(1000, now);
  EXPECT_GT(bucket.acquire(1000, now), 0);
  bucket.set_rate(0.0);
  EXPECT_EQ(bucket.acquire(1 << 20, now), 0);
}

TEST(TokenBucket, RateReductionTakesEffect) {
  TokenBucket bucket(100e3, 5000);
  TimePoint now = 0;
  (void)bucket.acquire(5000, now);
  bucket.set_rate(10e3, 5000);  // 10x slower
  Duration total = 0;
  for (int i = 0; i < 10; ++i) {
    const Duration w = bucket.acquire(5000, now);
    total += w;
    now += w;
  }
  // 10 * 5000 B at 10 KB/s = 5 s.
  EXPECT_NEAR(to_seconds(total), 5.0, 0.2);
}

TEST(TokenBucket, DefaultBurstIsSane) {
  TokenBucket bucket(800.0);  // tiny rate
  // Default burst of max(8192, rate/8) lets at least one typical message
  // through without an infinite wait.
  const Duration w = bucket.acquire(8192, seconds(100.0));
  EXPECT_EQ(w, 0);
}

}  // namespace
}  // namespace iov
