// Wire-path batching tests (DESIGN.md §8): write_batch / FrameReader
// against the legacy write_msg / read_msg path over real loopback TCP.
// The two paths must be byte-identical on the wire, so every combination
// of old and new sender/receiver interoperates; the robustness cases
// (corruption, truncation) are exercised against both readers.
#include "net/framing.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "message/codec.h"

namespace iov {
namespace {

struct Pair {
  TcpConn client;
  TcpConn server;
};

Pair make_pair() {
  auto listener = TcpListener::listen(0);
  EXPECT_TRUE(listener.has_value());
  auto client =
      TcpConn::connect(NodeId::loopback(listener->port()), seconds(1.0));
  EXPECT_TRUE(client.has_value());
  EXPECT_TRUE(wait_readable(listener->fd(), seconds(1.0)));
  auto server = listener->accept();
  EXPECT_TRUE(server.has_value());
  return Pair{std::move(*client), std::move(*server)};
}

std::vector<MsgPtr> make_msgs(std::size_t n, std::size_t payload_bytes) {
  std::vector<MsgPtr> msgs;
  msgs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    msgs.push_back(Msg::data(NodeId::loopback(1), 7, static_cast<u32>(i),
                             payload_bytes == 0
                                 ? Buffer::empty_buffer()
                                 : Buffer::pattern(payload_bytes,
                                                   static_cast<u32>(i))));
  }
  return msgs;
}

void expect_same_payload(const MsgPtr& got, const MsgPtr& want) {
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->seq(), want->seq());
  ASSERT_EQ(got->payload_size(), want->payload_size());
  EXPECT_EQ(got->payload()->view(), want->payload()->view());
}

// --- Interop: every sender/reader combination decodes the same stream ----

TEST(WireBatch, BatchedWriteReadByLegacyReader) {
  auto pair = make_pair();
  const auto msgs = make_msgs(50, 100);
  u64 syscalls = 0;
  ASSERT_TRUE(write_batch(pair.client, msgs.data(), msgs.size(), &syscalls));
  // 50 messages coalesce into ceil(50/32) = 2 sendmsg calls.
  EXPECT_LE(syscalls, 4u);
  EXPECT_GE(syscalls, 2u);
  for (const auto& want : msgs) {
    expect_same_payload(read_msg(pair.server), want);
  }
}

TEST(WireBatch, LegacyWritesReadByFrameReader) {
  auto pair = make_pair();
  const auto msgs = make_msgs(50, 100);
  for (const auto& m : msgs) ASSERT_TRUE(write_msg(pair.client, *m));
  FrameReader reader(pair.server);
  for (const auto& want : msgs) {
    expect_same_payload(reader.next(), want);
  }
  EXPECT_EQ(reader.msgs(), 50u);
  // All ~6 KB sit in the socket buffer: far fewer recv calls than frames.
  EXPECT_LT(reader.syscalls(), 50u);
}

TEST(WireBatch, BatchedWriteReadByFrameReader) {
  auto pair = make_pair();
  const auto msgs = make_msgs(64, 200);
  ASSERT_TRUE(write_batch(pair.client, msgs.data(), msgs.size()));
  FrameReader reader(pair.server);
  for (const auto& want : msgs) {
    expect_same_payload(reader.next(), want);
  }
}

TEST(WireBatch, ZeroPayloadMessages) {
  auto pair = make_pair();
  const auto msgs = make_msgs(10, 0);
  ASSERT_TRUE(write_batch(pair.client, msgs.data(), msgs.size()));
  FrameReader reader(pair.server);
  for (const auto& want : msgs) {
    MsgPtr got = reader.next();
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->seq(), want->seq());
    EXPECT_EQ(got->payload_size(), 0u);
  }
}

TEST(WireBatch, SingleMessageBatchEqualsWriteMsg) {
  auto pair = make_pair();
  const auto msgs = make_msgs(1, 333);
  u64 syscalls = 0;
  ASSERT_TRUE(write_batch(pair.client, msgs.data(), 1, &syscalls));
  EXPECT_EQ(syscalls, 1u);
  expect_same_payload(read_msg(pair.server), msgs[0]);
}

// --- FrameReader internals: chunk reuse, compaction, slices ---------------

TEST(FrameReader, FramesStraddlingChunkBoundaries) {
  auto pair = make_pair();
  // 124-byte frames against a 256-byte chunk: nearly every frame straddles
  // a refill, and holding all payloads alive forces the fresh-chunk
  // compaction path (the drained-chunk rewind is never available).
  const auto msgs = make_msgs(40, 100);
  ASSERT_TRUE(write_batch(pair.client, msgs.data(), msgs.size()));
  FrameReader reader(pair.server, 256);
  std::vector<MsgPtr> got;
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    got.push_back(reader.next());
    ASSERT_NE(got.back(), nullptr);
  }
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    expect_same_payload(got[i], msgs[i]);
    EXPECT_TRUE(got[i]->payload()->is_slice());
  }
}

TEST(FrameReader, BufferedReflectsDecodableFrames) {
  auto pair = make_pair();
  const auto msgs = make_msgs(8, 128);
  ASSERT_TRUE(write_batch(pair.client, msgs.data(), msgs.size()));
  FrameReader reader(pair.server);
  EXPECT_FALSE(reader.buffered());  // nothing received yet
  expect_same_payload(reader.next(), msgs[0]);
  // The first refill pulled the whole ~1.2 KB batch from the socket: the
  // remaining frames must decode without another syscall, and buffered()
  // must say so.
  EXPECT_TRUE(reader.buffered());
  const u64 syscalls = reader.syscalls();
  for (std::size_t i = 1; i < msgs.size(); ++i) {
    expect_same_payload(reader.next(), msgs[i]);
  }
  EXPECT_EQ(reader.syscalls(), syscalls);
  EXPECT_FALSE(reader.buffered());  // stream drained
}

TEST(FrameReader, SlicesOutliveTheReader) {
  auto pair = make_pair();
  const auto msgs = make_msgs(5, 64);
  ASSERT_TRUE(write_batch(pair.client, msgs.data(), msgs.size()));
  std::vector<MsgPtr> got;
  {
    FrameReader reader(pair.server);
    for (std::size_t i = 0; i < msgs.size(); ++i) {
      got.push_back(reader.next());
      ASSERT_NE(got.back(), nullptr);
    }
  }  // reader (and its chunk handle) destroyed; slices keep the chunk alive
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    expect_same_payload(got[i], msgs[i]);
  }
}

TEST(FrameReader, LargeFrameFallsBackToDedicatedAllocation) {
  auto pair = make_pair();
  const auto big = make_msgs(1, 1000);
  const auto small = make_msgs(1, 32);
  std::thread writer([&] {
    EXPECT_TRUE(write_msg(pair.client, *big[0]));
    EXPECT_TRUE(write_msg(pair.client, *small[0]));
  });
  FrameReader reader(pair.server, 256);  // frame >> chunk
  MsgPtr got_big = reader.next();
  ASSERT_NE(got_big, nullptr);
  expect_same_payload(got_big, big[0]);
  EXPECT_FALSE(got_big->payload()->is_slice());  // dedicated vector
  // The stream stays framed after the fallback path.
  expect_same_payload(reader.next(), small[0]);
  writer.join();
}

// --- Large-frame edges: chunk-size boundaries, pooled slabs ---------------

TEST(FrameReader, FrameExactlyAtChunkSizeStaysOnSlicePath) {
  auto pair = make_pair();
  // total = 24 + 232 = 256 == chunk: not *larger* than the chunk, so the
  // frame must decode as a chunk slice, not via read_large.
  const auto at = make_msgs(1, 256 - Msg::kHeaderSize);
  const auto after = make_msgs(1, 32);
  std::thread writer([&] {
    EXPECT_TRUE(write_msg(pair.client, *at[0]));
    EXPECT_TRUE(write_msg(pair.client, *after[0]));
  });
  SlabPool pool;
  FrameReader reader(pair.server, 256, &pool);
  MsgPtr got = reader.next();
  expect_same_payload(got, at[0]);
  EXPECT_TRUE(got->payload()->is_slice());
  EXPECT_EQ(pool.hits() + pool.misses(), 0u);  // pool never consulted
  expect_same_payload(reader.next(), after[0]);
  writer.join();
}

TEST(FrameReader, FrameOneByteOverChunkTakesThePooledLargePath) {
  auto pair = make_pair();
  const auto over = make_msgs(1, 256 - Msg::kHeaderSize + 1);
  std::thread writer(
      [&] { EXPECT_TRUE(write_msg(pair.client, *over[0])); });
  SlabPool pool;
  FrameReader reader(pair.server, 256, &pool);
  MsgPtr got = reader.next();
  expect_same_payload(got, over[0]);
  EXPECT_TRUE(got->payload()->is_slice());  // slab-backed view
  EXPECT_EQ(pool.misses(), 1u);
  writer.join();
}

TEST(FrameReader, LargeHeaderStraddlingSlicedChunkCarryOver) {
  auto pair = make_pair();
  // A 220-byte-payload frame occupies 244 of the 256-byte chunk; the
  // following large frame's header straddles the boundary: 12 bytes land
  // in the (already sliced) chunk tail, the rest arrives after the
  // fresh-chunk carry-over. The large payload must still decode intact.
  const auto small = make_msgs(1, 220);
  const auto big = make_msgs(1, 1000);
  std::thread writer([&] {
    EXPECT_TRUE(write_msg(pair.client, *small[0]));
    EXPECT_TRUE(write_msg(pair.client, *big[0]));
  });
  SlabPool pool;
  FrameReader reader(pair.server, 256, &pool);
  MsgPtr got_small = reader.next();
  expect_same_payload(got_small, small[0]);
  EXPECT_TRUE(got_small->payload()->is_slice());
  MsgPtr got_big = reader.next();
  expect_same_payload(got_big, big[0]);
  // The sliced small payload must stay intact after the carry-over.
  expect_same_payload(got_small, small[0]);
  writer.join();
}

TEST(FrameReader, LargeFramesInterleavedWithSlicedSmallFrames) {
  auto pair = make_pair();
  std::vector<MsgPtr> msgs;
  for (std::size_t i = 0; i < 10; ++i) {
    auto batch = make_msgs(1, i % 2 == 0 ? 100 : 1000);
    msgs.push_back(batch[0]);
  }
  std::thread writer([&] {
    for (const auto& m : msgs) EXPECT_TRUE(write_msg(pair.client, *m));
  });
  SlabPool pool;
  FrameReader reader(pair.server, 256, &pool);
  std::vector<MsgPtr> got;  // hold all payloads live across the stream
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    got.push_back(reader.next());
    ASSERT_NE(got.back(), nullptr) << "frame " << i;
  }
  for (std::size_t i = 0; i < msgs.size(); ++i) {
    expect_same_payload(got[i], msgs[i]);
    EXPECT_TRUE(got[i]->payload()->is_slice());
  }
  // All five large frames were pool-served; with every payload held live,
  // no slab could recycle, so each acquire was a miss.
  EXPECT_EQ(pool.hits() + pool.misses(), 5u);
  // Releasing the payloads returns every slab to the freelist.
  got.clear();
  EXPECT_EQ(pool.free_bytes(), 5u * SlabPool::kMinSlabBytes);
  writer.join();
}

TEST(FrameReader, SteadyLargeStreamRecyclesOneSlab) {
  auto pair = make_pair();
  const auto msgs = make_msgs(20, 1000);
  std::thread writer([&] {
    for (const auto& m : msgs) EXPECT_TRUE(write_msg(pair.client, *m));
  });
  SlabPool pool;
  FrameReader reader(pair.server, 256, &pool);
  for (const auto& want : msgs) {
    // Release each payload before reading the next — the steady state of
    // a switch that forwards and drops its reference.
    expect_same_payload(reader.next(), want);
  }
  EXPECT_EQ(pool.misses(), 1u);  // one allocation for the whole stream
  EXPECT_EQ(pool.hits(), 19u);
  writer.join();
}

TEST(FrameReader, PooledAndLegacyReadersDecodeTheSameStream) {
  // Same byte stream into a pooled reader and a pool-less reader: the
  // pooled fast path may not change a single decoded bit.
  const auto msgs = make_msgs(6, 700);
  for (const bool pooled : {true, false}) {
    auto pair = make_pair();
    std::thread writer([&] {
      EXPECT_TRUE(write_batch(pair.client, msgs.data(), msgs.size()));
    });
    SlabPool pool;
    FrameReader reader(pair.server, 256, pooled ? &pool : nullptr);
    for (const auto& want : msgs) {
      MsgPtr got = reader.next();
      expect_same_payload(got, want);
      EXPECT_EQ(got->payload()->is_slice(), pooled);
    }
    writer.join();
  }
}

TEST(FrameReader, PooledPayloadOutlivesReaderAndPool) {
  auto pair = make_pair();
  const auto msgs = make_msgs(1, 2000);
  std::thread writer(
      [&] { EXPECT_TRUE(write_msg(pair.client, *msgs[0])); });
  MsgPtr got;
  {
    SlabPool pool;
    {
      FrameReader reader(pair.server, 256, &pool);
      got = reader.next();
      ASSERT_NE(got, nullptr);
    }  // reader destroyed
  }  // pool destroyed; the slab-backed payload must stay valid
  expect_same_payload(got, msgs[0]);
  writer.join();
}

// --- Robustness: corruption and truncation, both readers ------------------

// A header whose payload_size field exceeds Msg::kMaxPayload.
std::vector<u8> oversize_header() {
  codec::Header h;
  h.type = MsgType::kData;
  h.origin = NodeId::loopback(1);
  h.payload_size = 0;
  auto bytes = codec::encode_header(h);
  for (int i = 20; i < 24; ++i) bytes[static_cast<std::size_t>(i)] = 0xff;
  return {bytes.begin(), bytes.end()};
}

TEST(FrameReader, RejectsOversizePayloadHeader) {
  auto pair = make_pair();
  const auto junk = oversize_header();
  ASSERT_TRUE(pair.client.write_all(junk.data(), junk.size()));
  FrameReader reader(pair.server);
  EXPECT_EQ(reader.next(), nullptr);
  EXPECT_TRUE(reader.corrupt());
  EXPECT_EQ(reader.next(), nullptr);  // failed permanently
}

TEST(FrameReader, RejectsCorruptHeaderMidStream) {
  auto pair = make_pair();
  const auto good = make_msgs(3, 50);
  ASSERT_TRUE(write_batch(pair.client, good.data(), good.size()));
  const auto junk = oversize_header();
  ASSERT_TRUE(pair.client.write_all(junk.data(), junk.size()));
  FrameReader reader(pair.server);
  for (const auto& want : good) expect_same_payload(reader.next(), want);
  EXPECT_EQ(reader.next(), nullptr);
  EXPECT_TRUE(reader.corrupt());
}

TEST(FrameReader, TruncationMidHeaderIsEofNotCorruption) {
  auto pair = make_pair();
  const u8 partial[10] = {};
  ASSERT_TRUE(pair.client.write_all(partial, sizeof(partial)));
  pair.client.shutdown_write();
  FrameReader reader(pair.server);
  EXPECT_EQ(reader.next(), nullptr);
  EXPECT_FALSE(reader.corrupt());
}

TEST(FrameReader, TruncationMidPayloadIsEofNotCorruption) {
  auto pair = make_pair();
  codec::Header h;
  h.type = MsgType::kData;
  h.origin = NodeId::loopback(1);
  h.payload_size = 1000;
  const auto header = codec::encode_header(h);
  ASSERT_TRUE(pair.client.write_all(header.data(), header.size()));
  const u8 partial[10] = {};
  ASSERT_TRUE(pair.client.write_all(partial, sizeof(partial)));
  pair.client.shutdown_write();
  FrameReader reader(pair.server);
  EXPECT_EQ(reader.next(), nullptr);
  EXPECT_FALSE(reader.corrupt());
}

TEST(FrameReader, TruncationMidLargeFrame) {
  auto pair = make_pair();
  codec::Header h;
  h.type = MsgType::kData;
  h.origin = NodeId::loopback(1);
  h.payload_size = 100000;  // forces the read_large fallback
  const auto header = codec::encode_header(h);
  ASSERT_TRUE(pair.client.write_all(header.data(), header.size()));
  const u8 partial[64] = {};
  ASSERT_TRUE(pair.client.write_all(partial, sizeof(partial)));
  pair.client.shutdown_write();
  FrameReader reader(pair.server, 256);
  EXPECT_EQ(reader.next(), nullptr);
  EXPECT_FALSE(reader.corrupt());
}

TEST(LegacyReader, TruncationMidPayloadReturnsNull) {
  auto pair = make_pair();
  codec::Header h;
  h.type = MsgType::kData;
  h.origin = NodeId::loopback(1);
  h.payload_size = 1000;
  const auto header = codec::encode_header(h);
  ASSERT_TRUE(pair.client.write_all(header.data(), header.size()));
  const u8 partial[10] = {};
  ASSERT_TRUE(pair.client.write_all(partial, sizeof(partial)));
  pair.client.shutdown_write();
  EXPECT_EQ(read_msg(pair.server), nullptr);
}

TEST(LegacyReader, TruncationMidHeaderReturnsNull) {
  auto pair = make_pair();
  const u8 partial[10] = {};
  ASSERT_TRUE(pair.client.write_all(partial, sizeof(partial)));
  pair.client.shutdown_write();
  EXPECT_EQ(read_msg(pair.server), nullptr);
}

TEST(FrameReader, EofOnCleanBoundary) {
  auto pair = make_pair();
  const auto msgs = make_msgs(2, 40);
  ASSERT_TRUE(write_batch(pair.client, msgs.data(), msgs.size()));
  pair.client.shutdown_write();
  FrameReader reader(pair.server);
  expect_same_payload(reader.next(), msgs[0]);
  expect_same_payload(reader.next(), msgs[1]);
  EXPECT_EQ(reader.next(), nullptr);
  EXPECT_FALSE(reader.corrupt());
}

}  // namespace
}  // namespace iov
