// BandwidthEmulator composition: the three scopes of §2.2 (per-node
// total, per-node up/down, per-link) and their interaction.
#include "net/bandwidth.h"

#include <gtest/gtest.h>

namespace iov {
namespace {

const NodeId kPeerA = NodeId::loopback(1001);
const NodeId kPeerB = NodeId::loopback(1002);

// Runs `n` sends of `bytes` through the emulator, advancing a virtual
// clock by each returned wait, and returns the achieved rate in B/s.
double drive_send(BandwidthEmulator& bw, const NodeId& peer,
                  std::size_t bytes, int n) {
  TimePoint now = 0;
  for (int i = 0; i < n; ++i) now += bw.acquire_send(peer, bytes, now);
  return now > 0 ? static_cast<double>(bytes) * n / to_seconds(now) : 1e18;
}

double drive_recv(BandwidthEmulator& bw, const NodeId& peer,
                  std::size_t bytes, int n) {
  TimePoint now = 0;
  for (int i = 0; i < n; ++i) now += bw.acquire_recv(peer, bytes, now);
  return now > 0 ? static_cast<double>(bytes) * n / to_seconds(now) : 1e18;
}

TEST(BandwidthEmulator, UnlimitedByDefault) {
  BandwidthEmulator bw;
  TimePoint now = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(bw.acquire_send(kPeerA, 1 << 20, now), 0);
    EXPECT_EQ(bw.acquire_recv(kPeerA, 1 << 20, now), 0);
  }
}

TEST(BandwidthEmulator, NodeUpLimitsSends) {
  BandwidthEmulator bw;
  bw.set_node_up(100e3);
  EXPECT_NEAR(drive_send(bw, kPeerA, 5000, 200), 100e3, 5e3);
}

TEST(BandwidthEmulator, NodeDownLimitsReceives) {
  BandwidthEmulator bw;
  bw.set_node_down(50e3);
  EXPECT_NEAR(drive_recv(bw, kPeerA, 5000, 100), 50e3, 3e3);
}

TEST(BandwidthEmulator, UpLimitDoesNotAffectRecv) {
  BandwidthEmulator bw;
  bw.set_node_up(10e3);
  TimePoint now = 0;
  EXPECT_EQ(bw.acquire_recv(kPeerA, 1 << 20, now), 0);
}

TEST(BandwidthEmulator, TotalCoversBothDirections) {
  // Per-node *total* bandwidth is shared by sends and receives (§2.2
  // category 1). Alternating both directions must together respect it.
  BandwidthEmulator bw;
  bw.set_node_total(100e3);
  TimePoint now = 0;
  constexpr int kRounds = 100;
  for (int i = 0; i < kRounds; ++i) {
    now += bw.acquire_send(kPeerA, 5000, now);
    now += bw.acquire_recv(kPeerB, 5000, now);
  }
  const double rate = 2.0 * 5000 * kRounds / to_seconds(now);
  EXPECT_NEAR(rate, 100e3, 6e3);
}

TEST(BandwidthEmulator, PerLinkIsolatesPeers) {
  BandwidthEmulator bw;
  bw.set_link_up(kPeerA, 20e3);
  EXPECT_NEAR(drive_send(bw, kPeerA, 5000, 50), 20e3, 2e3);
  // Peer B is untouched by A's link cap.
  TimePoint now = 0;
  EXPECT_EQ(bw.acquire_send(kPeerB, 1 << 20, now), 0);
}

TEST(BandwidthEmulator, MostConstrainedScopeWins) {
  BandwidthEmulator bw;
  bw.set_node_up(100e3);
  bw.set_link_up(kPeerA, 20e3);
  EXPECT_NEAR(drive_send(bw, kPeerA, 5000, 50), 20e3, 2e3);
}

TEST(BandwidthEmulator, LinkLimitRemovable) {
  BandwidthEmulator bw;
  bw.set_link_up(kPeerA, 1000.0);
  bw.set_link_up(kPeerA, 0.0);  // relieve the bottleneck at runtime
  TimePoint now = 0;
  EXPECT_EQ(bw.acquire_send(kPeerA, 1 << 20, now), 0);
}

TEST(BandwidthEmulator, ConfigureAppliesSpec) {
  BandwidthSpec spec;
  spec.node_total = 1e6;
  spec.node_up = 2e5;
  spec.node_down = 3e5;
  BandwidthEmulator bw(spec);
  EXPECT_DOUBLE_EQ(bw.node_total(), 1e6);
  EXPECT_DOUBLE_EQ(bw.node_up(), 2e5);
  EXPECT_DOUBLE_EQ(bw.node_down(), 3e5);
}

TEST(BandwidthEmulator, AsymmetricNode) {
  // DSL-style: fast down, slow up (§2.2 category 3).
  BandwidthEmulator bw;
  bw.set_node_up(10e3);
  bw.set_node_down(100e3);
  EXPECT_NEAR(drive_send(bw, kPeerA, 5000, 40), 10e3, 1e3);
  EXPECT_NEAR(drive_recv(bw, kPeerA, 5000, 100), 100e3, 8e3);
}

}  // namespace
}  // namespace iov
