// Reactor tests (DESIGN.md §9), three layers:
//   * Worker/Reactor unit tests — task FIFO, timers + cancellation, and
//     fd readiness callbacks over a socketpair;
//   * a PeerLink-level fd/thread leak regression — open/close 200
//     reactor-mode links and assert process fd and thread counts return
//     to baseline (the shared pool is created once and excluded);
//   * the reactor↔legacy interop matrix — all four combinations of
//     EngineConfig::reactor_threads on a two-node stream must deliver a
//     byte-identical stream (SinkApp checks payload integrity).
#include "net/reactor/reactor.h"

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/epoll.h>
#include <sys/socket.h>

#include <atomic>
#include <fstream>
#include <string>
#include <vector>

#include "apps/sink.h"
#include "apps/source.h"
#include "engine/engine.h"
#include "engine/peer_link.h"
#include "../engine/engine_test_util.h"

namespace iov {
namespace {

using apps::BackToBackSource;
using apps::SinkApp;
using engine::Engine;
using engine::EngineConfig;
using engine::Inbound;
using engine::InternalSink;
using engine::PeerLink;
using reactor::EventHandler;
using reactor::Reactor;
using reactor::Worker;
using test::RecordingRelay;
using test::wait_until;

// ---------------------------------------------------------------------------
// Worker / Reactor unit tests
// ---------------------------------------------------------------------------

TEST(ReactorWorker, SubmittedTasksRunFifo) {
  Worker w;
  w.start();
  std::mutex mu;
  std::vector<int> order;
  std::atomic<int> done{0};
  for (int i = 0; i < 32; ++i) {
    w.submit([&, i] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(i);
      done.fetch_add(1);
    });
  }
  ASSERT_TRUE(wait_until([&] { return done.load() == 32; }));
  std::lock_guard<std::mutex> lock(mu);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
  w.stop_and_join();
}

TEST(ReactorWorker, TimerFiresAfterDelayAndCancelDrops) {
  Worker w;
  w.start();
  std::atomic<bool> fired{false};
  std::atomic<bool> cancelled_fired{false};
  int owner_a = 0;
  int owner_b = 0;
  const TimePoint scheduled_at = RealClock::instance().now();
  w.submit([&] {
    w.schedule_after(millis(30), &owner_a, [&] { fired.store(true); });
    w.schedule_after(millis(30), &owner_b,
                     [&] { cancelled_fired.store(true); });
    w.cancel_timers(&owner_b);
  });
  ASSERT_TRUE(wait_until([&] { return fired.load(); }));
  // The timer must not have fired early...
  EXPECT_GE(RealClock::instance().now() - scheduled_at, millis(25));
  // ...and the cancelled one must never fire.
  sleep_for(millis(60));
  EXPECT_FALSE(cancelled_fired.load());
  w.stop_and_join();
}

/// Echo handler: reads whatever arrives on its fd and records it.
class Recorder final : public EventHandler {
 public:
  Recorder(Worker& w, int fd) : w_(w), fd_(fd) {}

  void on_event(u32 events) override {
    if ((events & EPOLLIN) == 0) return;
    char buf[256];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n <= 0) {
      w_.del_fd(fd_);
      closed_.store(true);
      return;
    }
    std::lock_guard<std::mutex> lock(mu_);
    got_.append(buf, static_cast<std::size_t>(n));
  }

  std::string got() const {
    std::lock_guard<std::mutex> lock(mu_);
    return got_;
  }
  bool closed() const { return closed_.load(); }

 private:
  Worker& w_;
  int fd_;
  mutable std::mutex mu_;
  std::string got_;
  std::atomic<bool> closed_{false};
};

TEST(ReactorWorker, FdReadinessDispatchesToHandler) {
  Worker w;
  w.start();
  int sp[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
  Recorder rec(w, sp[0]);
  w.submit([&] { ASSERT_TRUE(w.add_fd(sp[0], EPOLLIN, &rec)); });
  ASSERT_EQ(::send(sp[1], "ping", 4, 0), 4);
  ASSERT_TRUE(wait_until([&] { return rec.got() == "ping"; }));
  // Peer close surfaces as a readable EOF and the handler deregisters.
  ::close(sp[1]);
  ASSERT_TRUE(wait_until([&] { return rec.closed(); }));
  w.stop_and_join();
  ::close(sp[0]);
}

TEST(ReactorPool, PickRoundRobinsAcrossWorkers) {
  Reactor pool(2);
  EXPECT_EQ(pool.threads(), 2);
  Worker& a = pool.pick();
  Worker& b = pool.pick();
  Worker& c = pool.pick();
  EXPECT_NE(&a, &b);
  EXPECT_EQ(&a, &c);
}

// ---------------------------------------------------------------------------
// fd / thread leak regression (ISSUE 9 satellite)
// ---------------------------------------------------------------------------

std::size_t open_fd_count() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::size_t n = 0;
  while (::readdir(dir) != nullptr) ++n;
  ::closedir(dir);
  return n > 0 ? n - 3 : 0;  // ".", "..", and the DIR's own fd
}

std::size_t thread_count() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<std::size_t>(std::stoul(line.substr(8)));
    }
  }
  return 0;
}

/// Records control posts; enough InternalSink for a bare PeerLink.
class NullSink final : public InternalSink {
 public:
  void post(MsgPtr) override {}
  void wake() override {}
};

TEST(ReactorLeak, TwoHundredLinkCyclesLeakNothing) {
  // One shared fixture outside the measured loop: the pool (persists by
  // design), registries, and emulators.
  Reactor pool(1);
  obs::MetricsRegistry metrics_a;
  obs::MetricsRegistry metrics_b;
  BandwidthEmulator bandwidth;
  NullSink sink;
  EngineConfig config;
  const NodeId self_a(0x7f000001u, 1111);
  const NodeId self_b(0x7f000001u, 2222);

  auto run_cycle = [&] {
    auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.has_value());
    auto client = TcpConn::connect(NodeId::loopback(listener->port()),
                                   seconds(1.0));
    ASSERT_TRUE(client.has_value());
    ASSERT_TRUE(wait_readable(listener->fd(), seconds(1.0)));
    auto server = listener->accept();
    ASSERT_TRUE(server.has_value());

    PeerLink a(self_a, self_b, std::move(*client), config, bandwidth,
               RealClock::instance(), sink, metrics_a, nullptr, &pool.pick());
    PeerLink b(self_b, self_a, std::move(*server), config, bandwidth,
               RealClock::instance(), sink, metrics_b, nullptr, &pool.pick());
    ASSERT_TRUE(a.reactor_mode());
    a.start();
    b.start();

    // Prove the link is live: one data message a→b.
    ASSERT_TRUE(a.send_buffer().try_push(
        Msg::data(self_a, 7, 0, Buffer::from_string("leakcheck"))));
    a.notify_send();
    ASSERT_TRUE(wait_until([&] { return !b.recv_buffer().empty(); }));
    auto in = b.recv_buffer().try_pop();
    ASSERT_TRUE(in.has_value());
    EXPECT_EQ(in->msg->payload()->size(), 9u);

    a.stop();
    b.stop();
    a.join();
    b.join();
  };

  // Warm-up absorbs lazily created process state (metric rows, etc.).
  run_cycle();
  const std::size_t fd_base = open_fd_count();
  const std::size_t thread_base = thread_count();

  for (int i = 0; i < 200; ++i) {
    run_cycle();
    if (HasFatalFailure()) {
      FAIL() << "cycle " << i << " failed";
    }
  }

  EXPECT_EQ(open_fd_count(), fd_base);
  EXPECT_EQ(thread_count(), thread_base);
}

// ---------------------------------------------------------------------------
// Reactor ↔ legacy interop matrix (ISSUE 9 satellite)
// ---------------------------------------------------------------------------

struct Node {
  std::unique_ptr<Engine> engine;
  RecordingRelay* relay = nullptr;  // owned by engine
};

Node make_node(int reactor_threads) {
  auto algorithm = std::make_unique<RecordingRelay>();
  Node n;
  n.relay = algorithm.get();
  EngineConfig config;
  config.reactor_threads = reactor_threads;
  n.engine = std::make_unique<Engine>(config, std::move(algorithm));
  return n;
}

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 1000;
constexpr u64 kMsgs = 300;

/// Streams kMsgs from a sender in `src_mode` to a sink in `dst_mode` and
/// requires a loss-free, duplicate-free, corruption-free delivery. The
/// stream also exercises both directions of the single persistent
/// connection: kJoin/QoS control traffic flows sink→source on the same
/// socket.
void run_interop(int src_mode, int dst_mode) {
  Node a = make_node(src_mode);
  Node b = make_node(dst_mode);
  auto sink = std::make_shared<SinkApp>(kPayload);
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, kMsgs));
  b.engine->register_app(kApp, sink);
  ASSERT_TRUE(b.engine->start());
  ASSERT_TRUE(a.engine->start());
  b.relay->set_consume(kApp, true);
  a.engine->post(Msg::control(MsgType::kControl, NodeId(), kControlApp,
                              RelayAlgorithm::kAddChild,
                              static_cast<i32>(kApp),
                              b.engine->self().to_string()));
  a.engine->deploy_source(kApp);

  ASSERT_TRUE(wait_until([&] {
    return sink->stats(RealClock::instance().now()).distinct == kMsgs;
  }));
  const auto stats = sink->stats(RealClock::instance().now());
  EXPECT_EQ(stats.msgs, kMsgs);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
}

TEST(ReactorInterop, ReactorToReactor) { run_interop(-1, -1); }
TEST(ReactorInterop, ReactorToLegacy) { run_interop(-1, 0); }
TEST(ReactorInterop, LegacyToReactor) { run_interop(0, -1); }
TEST(ReactorInterop, LegacyToLegacy) { run_interop(0, 0); }

}  // namespace
}  // namespace iov
