#include "net/throughput.h"

#include <gtest/gtest.h>

namespace iov {
namespace {

TEST(ThroughputMeter, EmptyMeterReadsZero) {
  ThroughputMeter meter;
  EXPECT_EQ(meter.rate(seconds(1.0)), 0.0);
  EXPECT_EQ(meter.total_bytes(), 0u);
  EXPECT_EQ(meter.total_msgs(), 0u);
}

TEST(ThroughputMeter, SteadyRateMeasuredAccurately) {
  ThroughputMeter meter(seconds(2.0), 20);
  // 5 KB every 50 ms = 100 KB/s for 2 full windows.
  for (int i = 0; i < 80; ++i) {
    meter.record(5000, millis(50) * i);
  }
  EXPECT_NEAR(meter.rate(millis(50) * 80), 100e3, 10e3);
}

TEST(ThroughputMeter, RateDecaysAfterTrafficStops) {
  ThroughputMeter meter(seconds(1.0), 10);
  for (int i = 0; i < 20; ++i) meter.record(1000, millis(50) * i);
  const double live = meter.rate(seconds(1.0));
  EXPECT_GT(live, 0.0);
  // 2 seconds of silence: the window has fully rolled past all samples.
  EXPECT_EQ(meter.rate(seconds(3.0)), 0.0);
}

TEST(ThroughputMeter, TotalsAreCumulative) {
  ThroughputMeter meter;
  meter.record(100, 0);
  meter.record(200, millis(10));
  meter.record(300, millis(20));
  EXPECT_EQ(meter.total_bytes(), 600u);
  EXPECT_EQ(meter.total_msgs(), 3u);
}

TEST(ThroughputMeter, LossAccounting) {
  ThroughputMeter meter;
  meter.record(100, 0);
  meter.record_loss(500);
  meter.record_loss(200);
  EXPECT_EQ(meter.lost_bytes(), 700u);
  EXPECT_EQ(meter.lost_msgs(), 2u);
  // Losses never count toward throughput.
  EXPECT_EQ(meter.total_bytes(), 100u);
}

TEST(ThroughputMeter, IdleTracking) {
  ThroughputMeter meter;
  EXPECT_EQ(meter.idle_for(seconds(5.0)),
            std::numeric_limits<Duration>::max());
  meter.record(100, seconds(1.0));
  EXPECT_EQ(meter.idle_for(seconds(1.0)), 0);
  EXPECT_EQ(meter.idle_for(seconds(3.5)), seconds(2.5));
}

TEST(ThroughputMeter, BurstThenGapAveragesOverWindow) {
  ThroughputMeter meter(seconds(1.0), 10);
  // 10 KB all at once at t=0; read at t=0.5: the window average counts it.
  meter.record(10000, 0);
  EXPECT_NEAR(meter.rate(millis(500)), 10e3, 1.0);
}

TEST(ThroughputMeter, OldBinsExpireExactly) {
  ThroughputMeter meter(seconds(1.0), 10);
  meter.record(1000, 0);
  meter.record(1000, millis(950));
  // At t=1.05 the t=0 bin (bin 0) has rolled out of the 10-bin window.
  const double rate = meter.rate(millis(1050));
  EXPECT_NEAR(rate, 1000.0, 1.0);
}

}  // namespace
}  // namespace iov
