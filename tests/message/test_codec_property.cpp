// Property sweep: arbitrary headers survive the wire round trip, and
// arbitrary payload bytes survive framing over real sockets.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "message/codec.h"
#include "net/framing.h"
#include "net/socket.h"

namespace iov {
namespace {

class HeaderRoundTrip : public ::testing::TestWithParam<u64> {};

TEST_P(HeaderRoundTrip, RandomHeadersSurvive) {
  Rng rng(GetParam());
  for (int i = 0; i < 2000; ++i) {
    codec::Header h;
    h.type = from_wire(static_cast<u32>(rng()));
    h.origin = NodeId(static_cast<u32>(rng()),
                      static_cast<u16>(rng.below(65536)));
    h.app = static_cast<u32>(rng());
    h.seq = static_cast<u32>(rng());
    h.payload_size = static_cast<u32>(rng.below(Msg::kMaxPayload + 1));
    const auto bytes = codec::encode_header(h);
    const auto parsed = codec::decode_header(bytes.data());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->type, h.type);
    EXPECT_EQ(parsed->origin, h.origin);
    EXPECT_EQ(parsed->app, h.app);
    EXPECT_EQ(parsed->seq, h.seq);
    EXPECT_EQ(parsed->payload_size, h.payload_size);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeaderRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u));

TEST(FramingProperty, RandomPayloadsSurviveSockets) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.has_value());
  auto client =
      TcpConn::connect(NodeId::loopback(listener->port()), seconds(1.0));
  ASSERT_TRUE(client.has_value());
  ASSERT_TRUE(wait_readable(listener->fd(), seconds(1.0)));
  auto server = listener->accept();
  ASSERT_TRUE(server.has_value());

  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const std::size_t size = rng.below(2000);
    std::vector<u8> payload(size);
    for (auto& b : payload) b = static_cast<u8>(rng.below(256));
    const auto m = std::make_shared<Msg>(
        from_wire(static_cast<u32>(rng.below(0x400))),
        NodeId(static_cast<u32>(rng()), static_cast<u16>(rng.below(65536))),
        static_cast<u32>(rng()), static_cast<u32>(rng()),
        Buffer::wrap(std::move(payload)));
    ASSERT_TRUE(write_msg(*client, *m));
    const MsgPtr got = read_msg(*server);
    ASSERT_NE(got, nullptr);
    EXPECT_EQ(got->type(), m->type());
    EXPECT_EQ(got->origin(), m->origin());
    EXPECT_EQ(got->app(), m->app());
    EXPECT_EQ(got->seq(), m->seq());
    EXPECT_EQ(got->payload()->bytes(), m->payload()->bytes());
  }
}

}  // namespace
}  // namespace iov
