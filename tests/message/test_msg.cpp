// Message, buffer and header-codec tests: the 24-byte wire layout of
// paper Fig. 3, zero-copy payload sharing, the §2.3 clone semantics, and
// the control-parameter convention.
#include "message/msg.h"

#include <gtest/gtest.h>

#include "message/codec.h"

namespace iov {
namespace {

const NodeId kOrigin(0x0a000001, 4242);  // 10.0.0.1:4242

TEST(Buffer, PatternIsDeterministicAndSeedSensitive) {
  const auto a = Buffer::pattern(64, 1);
  const auto b = Buffer::pattern(64, 1);
  const auto c = Buffer::pattern(64, 2);
  EXPECT_EQ(a->bytes(), b->bytes());
  EXPECT_NE(a->bytes(), c->bytes());
  EXPECT_EQ(a->size(), 64u);
}

TEST(Buffer, FromStringRoundTrip) {
  const auto buf = Buffer::from_string("hello overlay");
  EXPECT_EQ(buf->view(), "hello overlay");
}

TEST(Buffer, EmptyBufferIsShared) {
  EXPECT_EQ(Buffer::empty_buffer().get(), Buffer::empty_buffer().get());
  EXPECT_TRUE(Buffer::empty_buffer()->empty());
}

TEST(Msg, HeaderIs24Bytes) {
  EXPECT_EQ(Msg::kHeaderSize, 24u);
}

TEST(Msg, WireSizeIncludesHeader) {
  const auto m = Msg::data(kOrigin, 3, 7, Buffer::pattern(100, 0));
  EXPECT_EQ(m->payload_size(), 100u);
  EXPECT_EQ(m->wire_size(), 124u);
}

TEST(Msg, HeaderEncodeDecodeRoundTrip) {
  const auto m = Msg::data(kOrigin, 17, 0xdeadbeef, Buffer::pattern(5000, 9));
  const auto bytes = codec::encode_header(*m);
  const auto h = codec::decode_header(bytes.data());
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->type, MsgType::kData);
  EXPECT_EQ(h->origin, kOrigin);
  EXPECT_EQ(h->app, 17u);
  EXPECT_EQ(h->seq, 0xdeadbeefu);
  EXPECT_EQ(h->payload_size, 5000u);
}

TEST(Msg, HeaderWireLayoutIsBigEndian) {
  codec::Header h;
  h.type = MsgType::kData;
  h.origin = NodeId(0x01020304, 0x0506);
  h.app = 0x0708090a;
  h.seq = 0x0b0c0d0e;
  h.payload_size = 0x0f101112;
  const auto bytes = codec::encode_header(h);
  const u8 expected[24] = {0x00, 0x00, 0x00, 0x01,   // type = kData
                           0x01, 0x02, 0x03, 0x04,   // ip
                           0x00, 0x00, 0x05, 0x06,   // port (4-byte field)
                           0x07, 0x08, 0x09, 0x0a,   // app
                           0x0b, 0x0c, 0x0d, 0x0e,   // seq
                           0x0f, 0x10, 0x11, 0x12};  // payload size
  EXPECT_EQ(std::memcmp(bytes.data(), expected, 24), 0);
}

TEST(Msg, DecodeRejectsOversizedPayload) {
  codec::Header h;
  h.type = MsgType::kData;
  h.payload_size = static_cast<u32>(Msg::kMaxPayload + 1);
  const auto bytes = codec::encode_header(h);
  EXPECT_FALSE(codec::decode_header(bytes.data()).has_value());
}

TEST(Msg, DecodeRejectsBadPort) {
  u8 bytes[24] = {};
  codec::write_u32(bytes, to_wire(MsgType::kData));
  codec::write_u32(bytes + 8, 0x10000);  // port field > 65535
  EXPECT_FALSE(codec::decode_header(bytes).has_value());
}

TEST(Msg, SeqIsTheOnlyMutableField) {
  const auto m = Msg::data(kOrigin, 1, 5, Buffer::pattern(10, 0));
  m->set_seq(99);
  EXPECT_EQ(m->seq(), 99u);
  EXPECT_EQ(m->type(), MsgType::kData);
  EXPECT_EQ(m->origin(), kOrigin);
}

TEST(Msg, CloneSharesPayloadZeroCopy) {
  const auto m = Msg::data(kOrigin, 1, 5, Buffer::pattern(10, 0));
  const auto c = m->clone();
  EXPECT_NE(c.get(), m.get());
  EXPECT_EQ(c->payload().get(), m->payload().get());  // shared, not copied
  c->set_seq(42);
  EXPECT_EQ(m->seq(), 5u);  // header is independent
}

TEST(Msg, CloneWithPayloadSwapsOnlyPayload) {
  const auto m = Msg::data(kOrigin, 1, 5, Buffer::pattern(10, 0));
  const auto c = m->clone_with_payload(Buffer::from_string("new"));
  EXPECT_EQ(c->text(), "new");
  EXPECT_EQ(c->app(), 1u);
  EXPECT_EQ(c->seq(), 5u);
}

TEST(Msg, ControlParams) {
  const auto m =
      Msg::control(MsgType::kControl, kOrigin, kControlApp, -7, 123, "args");
  EXPECT_EQ(m->param(0), -7);
  EXPECT_EQ(m->param(1), 123);
  EXPECT_EQ(m->param_text(), "args");
}

TEST(Msg, ControlParamsWithoutText) {
  const auto m = Msg::control(MsgType::kSJoin, kOrigin, kControlApp, 5);
  EXPECT_EQ(m->param(0), 5);
  EXPECT_EQ(m->param(1), 0);
  EXPECT_EQ(m->param_text(), "");
  EXPECT_EQ(m->payload_size(), 8u);
}

TEST(Msg, ParamOnShortPayloadIsZero) {
  const auto m = Msg::text_msg(MsgType::kTrace, kOrigin, kControlApp, "ab");
  EXPECT_EQ(m->param(0), 0);
  EXPECT_EQ(m->param(1), 0);
  EXPECT_EQ(m->param(2), 0);   // out of range
  EXPECT_EQ(m->param(-1), 0);  // out of range
}

TEST(Msg, TextMsg) {
  const auto m = Msg::text_msg(MsgType::kReport, kOrigin, kControlApp, "body");
  EXPECT_EQ(m->text(), "body");
  EXPECT_EQ(m->type(), MsgType::kReport);
}

TEST(Msg, DescribeMentionsTypeAndOrigin) {
  const auto m = Msg::data(kOrigin, 1, 2, Buffer::pattern(3, 0));
  const auto d = m->describe();
  EXPECT_NE(d.find("data"), std::string::npos);
  EXPECT_NE(d.find("10.0.0.1:4242"), std::string::npos);
}

TEST(MsgTypes, NamesAreStable) {
  EXPECT_STREQ(msg_type_name(MsgType::kData), "data");
  EXPECT_STREQ(msg_type_name(MsgType::kBoot), "boot");
  EXPECT_STREQ(msg_type_name(MsgType::kBrokenSource), "BrokenSource");
  EXPECT_STREQ(msg_type_name(MsgType::kUpThroughput), "UpThroughput");
  EXPECT_STREQ(msg_type_name(static_cast<MsgType>(0x0400)), "user");
}

TEST(MsgTypes, Classification) {
  EXPECT_TRUE(is_observer_type(MsgType::kSDeploy));
  EXPECT_TRUE(is_observer_type(MsgType::kBoot));
  EXPECT_FALSE(is_observer_type(MsgType::kData));
  EXPECT_TRUE(is_engine_internal(MsgType::kPeerFailed));
  EXPECT_TRUE(is_engine_internal(MsgType::kSendFailed));
  EXPECT_FALSE(is_engine_internal(MsgType::kBrokenSource));
}

TEST(Codec, U64RoundTrip) {
  u8 buf[8];
  codec::write_u64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(codec::read_u64(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[7], 0xef);
}

}  // namespace
}  // namespace iov
