// SlabPool — size classing, recycle semantics, retention cap, metric
// mirrors, slab-outlives-pool lifetime, and a multi-thread smoke for the
// sanitizer builds (DESIGN.md §8, large-payload fast path).
#include "message/slab_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "message/buffer.h"
#include "obs/metrics.h"

namespace iov {
namespace {

TEST(SlabPoolTest, ClassRoundingCoversTheFullPayloadRange) {
  // Below the minimum rounds up to it.
  EXPECT_EQ(SlabPool::class_for(0), 0u);
  EXPECT_EQ(SlabPool::class_for(1), 0u);
  EXPECT_EQ(SlabPool::class_bytes(SlabPool::class_for(1)),
            SlabPool::kMinSlabBytes);
  // Exact powers of two land in their own class.
  EXPECT_EQ(SlabPool::class_bytes(SlabPool::class_for(4 * 1024)), 4u * 1024);
  EXPECT_EQ(SlabPool::class_bytes(SlabPool::class_for(64 * 1024)),
            64u * 1024);
  // One past a class boundary moves up a class.
  EXPECT_EQ(SlabPool::class_bytes(SlabPool::class_for(64 * 1024 + 1)),
            128u * 1024);
  // The top class covers the maximum payload.
  EXPECT_EQ(SlabPool::class_bytes(SlabPool::class_for(SlabPool::kMaxSlabBytes)),
            SlabPool::kMaxSlabBytes);
}

TEST(SlabPoolTest, AcquireGrantsRequestedCapacity) {
  SlabPool pool;
  for (std::size_t n : {std::size_t{1}, std::size_t{4096},
                        std::size_t{64 * 1024 + 24}, std::size_t{1 << 20}}) {
    SlabPtr slab = pool.acquire(n);
    ASSERT_NE(slab, nullptr);
    EXPECT_GE(slab->capacity(), n);
  }
}

TEST(SlabPoolTest, ReleasedSlabIsRecycledNotReallocated) {
  SlabPool pool;
  SlabPtr slab = pool.acquire(64 * 1024);
  Slab* raw = slab.get();
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 1u);

  slab.reset();  // back to the freelist
  EXPECT_EQ(pool.free_bytes(), SlabPool::class_bytes(SlabPool::class_for(
                                   64 * 1024)));

  SlabPtr again = pool.acquire(64 * 1024);
  EXPECT_EQ(again.get(), raw);  // literally the same slab
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(pool.free_bytes(), 0u);
}

TEST(SlabPoolTest, DistinctClassesDoNotShareSlabs) {
  SlabPool pool;
  SlabPtr small = pool.acquire(4 * 1024);
  small.reset();
  // A larger request must not be served by the retained 4 KB slab.
  SlabPtr big = pool.acquire(128 * 1024);
  EXPECT_GE(big->capacity(), 128u * 1024);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.misses(), 2u);
}

TEST(SlabPoolTest, RetentionCapBoundsIdleMemory) {
  SlabPool pool;
  std::vector<SlabPtr> live;
  const std::size_t extra = 8;
  for (std::size_t i = 0; i < SlabPool::kMaxFreePerClass + extra; ++i) {
    live.push_back(pool.acquire(SlabPool::kMinSlabBytes));
  }
  live.clear();  // release all; only kMaxFreePerClass may be retained
  EXPECT_EQ(pool.free_bytes(),
            SlabPool::kMaxFreePerClass * SlabPool::kMinSlabBytes);
}

TEST(SlabPoolTest, MetricsMirrorHitsMissesAndFreeBytes) {
  obs::MetricsRegistry registry;
  auto& hits = registry.counter("test_pool_hits");
  auto& misses = registry.counter("test_pool_misses");
  auto& free_bytes = registry.gauge("test_pool_free_bytes");
  SlabPool pool;
  pool.set_metrics(&hits, &misses, &free_bytes);

  SlabPtr a = pool.acquire(4 * 1024);
  a.reset();
  SlabPtr b = pool.acquire(4 * 1024);

  EXPECT_EQ(misses.value(), 1u);
  EXPECT_EQ(hits.value(), 1u);
  EXPECT_EQ(free_bytes.value(), 0);
  b.reset();
  EXPECT_EQ(free_bytes.value(), static_cast<i64>(SlabPool::kMinSlabBytes));
}

TEST(SlabPoolTest, SlabOutlivesThePool) {
  SlabPtr slab;
  const u8 sentinel[] = {0xde, 0xad, 0xbe, 0xef};
  {
    SlabPool pool;
    slab = pool.acquire(4 * 1024);
    std::memcpy(slab->data(), sentinel, sizeof(sentinel));
  }  // pool destroyed with the slab still out
  ASSERT_NE(slab, nullptr);
  EXPECT_EQ(std::memcmp(slab->data(), sentinel, sizeof(sentinel)), 0);
  slab.reset();  // release after the pool is gone: must free cleanly
}

TEST(SlabPoolTest, BufferSliceReturnsSlabOnLastRelease) {
  SlabPool pool;
  SlabPtr slab = pool.acquire(64 * 1024);
  Slab* raw = slab.get();
  std::memset(slab->data(), 0x5a, 16);
  BufferPtr payload = Buffer::slice(slab, slab->data(), 16);
  slab.reset();  // the Buffer's owner reference keeps the slab out
  EXPECT_EQ(pool.free_bytes(), 0u);
  EXPECT_EQ(payload->data()[0], 0x5a);

  payload.reset();  // last reference: slab rejoins the freelist
  EXPECT_GT(pool.free_bytes(), 0u);
  SlabPtr again = pool.acquire(64 * 1024);
  EXPECT_EQ(again.get(), raw);
}

TEST(SlabPoolTest, ConcurrentAcquireReleaseIsRaceFree) {
  // Exercised under ASan and TSan by tools/run_sanitizers.sh: several
  // threads churn acquire/release on overlapping size classes, including
  // cross-thread releases through a shared hand-off vector.
  SlabPool pool;
  std::vector<SlabPtr> shared(64);
  std::mutex shared_mu;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      u32 x = 0x9e3779b9u + static_cast<u32>(t);
      for (int i = 0; i < 2000; ++i) {
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        const std::size_t n = (x % 2 == 0) ? 4 * 1024 : 64 * 1024;
        SlabPtr slab = pool.acquire(n);
        slab->data()[0] = static_cast<u8>(x);
        std::lock_guard<std::mutex> lock(shared_mu);
        shared[x % shared.size()] = std::move(slab);  // may release another's
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true);
  shared.clear();
  EXPECT_EQ(pool.hits() + pool.misses(), 4u * 2000u);
  EXPECT_GT(pool.free_bytes(), 0u);
}

}  // namespace
}  // namespace iov
