// Tree construction over *real* engines and the real observer: the full
// §3.3 stack — bootstrap through the observer, sAnnounce, observer-driven
// joins, the sQuery/sQueryAck/sAttach handshake over TCP, stress
// exchange on engine timers, and live data dissemination down the tree.
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "engine/engine.h"
#include "observer/observer.h"
#include "trees/tree_algorithm.h"
#include "../engine/engine_test_util.h"

namespace iov::trees {
namespace {

using test::wait_until;

constexpr u32 kApp = 1;

// TreeAlgorithm whose session state can be observed from the test thread
// (the engine thread mutates the real state; we mirror it under a mutex
// after every processed message).
class ObservableTree : public TreeAlgorithm {
 public:
  using TreeAlgorithm::TreeAlgorithm;

  struct Snapshot {
    bool in_tree = false;
    NodeId parent;
    std::size_t children = 0;
  };

  Snapshot snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snap_;
  }

  Disposition process(const MsgPtr& m) override {
    const Disposition d = TreeAlgorithm::process(m);
    Snapshot fresh;
    fresh.in_tree = in_tree(kApp);
    if (const auto p = parent(kApp)) fresh.parent = *p;
    fresh.children = children(kApp).size();
    std::lock_guard<std::mutex> lock(mu_);
    snap_ = fresh;
    return d;
  }

 private:
  mutable std::mutex mu_;
  Snapshot snap_;
};

struct Member {
  std::unique_ptr<engine::Engine> engine;
  ObservableTree* alg = nullptr;
  std::shared_ptr<apps::SinkApp> sink;
};

Member make_member(const NodeId& observer, TreeStrategy strategy, double bw,
                   bool is_source) {
  auto algorithm = std::make_unique<ObservableTree>(strategy, bw);
  Member m;
  m.alg = algorithm.get();
  engine::EngineConfig config;
  config.observer = observer;
  config.bandwidth.node_up = bw;
  m.engine = std::make_unique<engine::Engine>(config, std::move(algorithm));
  if (is_source) {
    m.engine->register_app(kApp,
                           std::make_shared<apps::CbrSource>(1000, bw));
  } else {
    m.sink = std::make_shared<apps::SinkApp>();
    m.engine->register_app(kApp, m.sink);
  }
  return m;
}

class TreeRealEngine : public ::testing::TestWithParam<TreeStrategy> {};

TEST_P(TreeRealEngine, SessionAssemblesAndStreams) {
  const TreeStrategy strategy = GetParam();
  observer::Observer obs{observer::ObserverConfig{}};
  ASSERT_TRUE(obs.start());

  Member source = make_member(obs.address(), strategy, 200e3, true);
  ASSERT_TRUE(source.engine->start());
  std::vector<Member> receivers;
  for (const double bw : {100e3, 500e3, 200e3}) {
    receivers.push_back(make_member(obs.address(), strategy, bw, false));
    ASSERT_TRUE(receivers.back().engine->start());
  }
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 4; }));

  // Observer-side orchestration, exactly as the GUI would drive it.
  ASSERT_TRUE(obs.announce(source.engine->self(), kApp,
                           source.engine->self()));
  for (const auto& r : receivers) {
    ASSERT_TRUE(obs.announce(r.engine->self(), kApp, source.engine->self()));
  }
  ASSERT_TRUE(obs.deploy(source.engine->self(), kApp));
  for (const auto& r : receivers) {
    ASSERT_TRUE(obs.join_app(r.engine->self(), kApp,
                             source.engine->self().to_string()));
    ASSERT_TRUE(wait_until([&] { return r.alg->snapshot().in_tree; }))
        << strategy_name(strategy);
  }

  // Everyone attached with a valid parent and receives data.
  for (const auto& r : receivers) {
    ASSERT_TRUE(wait_until([&] { return r.sink->stats(0).msgs > 20; }))
        << strategy_name(strategy);
  }

  // The observer's topology dump names the session edges.
  ASSERT_TRUE(wait_until([&] {
    return obs.topology_dot().find("->") != std::string::npos;
  }));

  for (auto& r : receivers) r.engine->stop();
  source.engine->stop();
  for (auto& r : receivers) r.engine->join();
  source.engine->join();
}

INSTANTIATE_TEST_SUITE_P(Strategies, TreeRealEngine,
                         ::testing::Values(TreeStrategy::kAllUnicast,
                                           TreeStrategy::kRandomized,
                                           TreeStrategy::kNsAware));

TEST(TreeRealEngine, UnicastStarMatchesPaperShape) {
  observer::Observer obs{observer::ObserverConfig{}};
  ASSERT_TRUE(obs.start());
  Member source =
      make_member(obs.address(), TreeStrategy::kAllUnicast, 200e3, true);
  ASSERT_TRUE(source.engine->start());
  std::vector<Member> receivers;
  for (int i = 0; i < 3; ++i) {
    receivers.push_back(
        make_member(obs.address(), TreeStrategy::kAllUnicast, 100e3, false));
    ASSERT_TRUE(receivers.back().engine->start());
  }
  ASSERT_TRUE(wait_until([&] { return obs.alive_count() == 4; }));
  obs.announce(source.engine->self(), kApp, source.engine->self());
  obs.deploy(source.engine->self(), kApp);
  for (const auto& r : receivers) {
    obs.announce(r.engine->self(), kApp, source.engine->self());
    obs.join_app(r.engine->self(), kApp,
                 source.engine->self().to_string());
    ASSERT_TRUE(wait_until([&] { return r.alg->snapshot().in_tree; }));
  }
  // All-unicast: every receiver is a direct child of the source.
  for (const auto& r : receivers) {
    EXPECT_EQ(r.alg->snapshot().parent, source.engine->self());
  }
  ASSERT_TRUE(wait_until(
      [&] { return source.alg->snapshot().children == 3; }));
}

}  // namespace
}  // namespace iov::trees
