// Tree-construction protocol tests on the simulator: join handshake,
// strategy-specific topology shapes, stress accounting, failure
// handling, and tree invariants across seeds (property sweep).
#include "trees/tree_algorithm.h"

#include <gtest/gtest.h>

#include <map>

#include "trees/scenario.h"

namespace iov::trees {
namespace {

TreeExperimentConfig small_config(TreeStrategy strategy, u64 seed = 1) {
  TreeExperimentConfig config;
  config.strategy = strategy;
  config.seed = seed;
  config.source_bandwidth = 200e3;
  config.receiver_bandwidth = {100e3, 500e3, 200e3, 100e3};
  config.join_spacing = seconds(2.0);
  config.settle = seconds(2.0);
  config.measure = seconds(10.0);
  return config;
}

// Validates the tree structure: every attached receiver has a valid
// parent chain ending at the source, with no cycles.
void expect_valid_tree(const TreeExperimentResult& result) {
  std::map<NodeId, NodeId> parent_of;
  for (const auto* r : result.receivers()) {
    if (r->in_tree) {
      EXPECT_TRUE(r->parent.valid()) << r->id.to_string();
      parent_of[r->id] = r->parent;
    }
  }
  const NodeId root = result.source().id;
  for (const auto& [node, first_parent] : parent_of) {
    NodeId cursor = node;
    std::set<NodeId> seen;
    while (cursor != root) {
      ASSERT_TRUE(seen.insert(cursor).second)
          << "cycle through " << cursor.to_string();
      const auto it = parent_of.find(cursor);
      ASSERT_NE(it, parent_of.end())
          << cursor.to_string() << " attached to a node outside the tree";
      cursor = it->second;
    }
  }
}

TEST(TreeAlgorithm, AllReceiversAttachUnderEveryStrategy) {
  for (const auto strategy :
       {TreeStrategy::kAllUnicast, TreeStrategy::kRandomized,
        TreeStrategy::kNsAware}) {
    const auto result = run_tree_experiment(small_config(strategy));
    EXPECT_EQ(result.attach_rate(), 1.0) << strategy_name(strategy);
    expect_valid_tree(result);
  }
}

TEST(TreeAlgorithm, AllUnicastBuildsAStar) {
  const auto result = run_tree_experiment(
      small_config(TreeStrategy::kAllUnicast));
  // Every receiver hangs directly off the source.
  for (const auto* r : result.receivers()) {
    EXPECT_EQ(r->parent, result.source().id);
  }
  EXPECT_EQ(result.source().degree, result.receivers().size());
}

TEST(TreeAlgorithm, AllUnicastSplitsSourceBandwidth) {
  const auto result = run_tree_experiment(
      small_config(TreeStrategy::kAllUnicast));
  // Four receivers share the source's 200 KB/s last mile: ~50 KB/s each
  // (paper Fig 9(b)).
  for (const auto* r : result.receivers()) {
    EXPECT_GT(r->goodput, 30e3) << r->id.to_string();
    EXPECT_LT(r->goodput, 75e3) << r->id.to_string();
  }
}

TEST(TreeAlgorithm, NsAwareBeatsUnicastOnThroughput) {
  const auto unicast =
      run_tree_experiment(small_config(TreeStrategy::kAllUnicast));
  const auto ns_aware =
      run_tree_experiment(small_config(TreeStrategy::kNsAware));
  // Table 3 / Fig 9: "with respect to end-to-end throughput, our new
  // algorithm has the upper hand".
  EXPECT_GT(ns_aware.mean_receiver_goodput(),
            unicast.mean_receiver_goodput() * 1.3);
}

TEST(TreeAlgorithm, NsAwareBoundsSourceDegree) {
  const auto result = run_tree_experiment(small_config(TreeStrategy::kNsAware));
  // The stress-aware tree never degenerates into the unicast star.
  EXPECT_LT(result.source().degree, result.receivers().size());
}

TEST(TreeAlgorithm, StressMatchesDegreeOverBandwidth) {
  const auto result = run_tree_experiment(small_config(TreeStrategy::kNsAware));
  for (const auto& node : result.nodes) {
    const double expected =
        node.last_mile > 0
            ? static_cast<double>(node.degree) / (node.last_mile / 100e3)
            : 0.0;
    EXPECT_DOUBLE_EQ(node.stress, expected) << node.id.to_string();
  }
}

TEST(TreeAlgorithm, DotOutputNamesAllAttachedNodes) {
  const auto result = run_tree_experiment(small_config(TreeStrategy::kNsAware));
  for (const auto* r : result.receivers()) {
    if (r->in_tree) {
      EXPECT_NE(result.dot.find(r->id.to_string()), std::string::npos);
    }
  }
}

struct SweepCase {
  TreeStrategy strategy;
  std::size_t receivers;
  u64 seed;
};

class TreeSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(TreeSweep, TreesAreValidAcrossSeedsAndSizes) {
  const auto param = GetParam();
  TreeExperimentConfig config;
  config.strategy = param.strategy;
  config.seed = param.seed;
  config.source_bandwidth = 100e3;
  Rng rng(param.seed * 77 + 1);
  for (std::size_t i = 0; i < param.receivers; ++i) {
    config.receiver_bandwidth.push_back(rng.uniform(50e3, 200e3));
  }
  config.join_spacing = seconds(1.0);
  config.settle = seconds(2.0);
  config.measure = seconds(5.0);
  const auto result = run_tree_experiment(config);
  EXPECT_GE(result.attach_rate(), 0.9);
  expect_valid_tree(result);
  // Attached receivers actually receive data.
  for (const auto* r : result.receivers()) {
    if (r->in_tree) EXPECT_GT(r->goodput, 0.0) << r->id.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeSweep,
    ::testing::Values(SweepCase{TreeStrategy::kAllUnicast, 8, 1},
                      SweepCase{TreeStrategy::kRandomized, 8, 2},
                      SweepCase{TreeStrategy::kNsAware, 8, 3},
                      SweepCase{TreeStrategy::kRandomized, 20, 4},
                      SweepCase{TreeStrategy::kNsAware, 20, 5},
                      SweepCase{TreeStrategy::kNsAware, 20, 6}));

}  // namespace
}  // namespace iov::trees
