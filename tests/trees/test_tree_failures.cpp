// Fault tolerance of the tree algorithms on the simulator: parent death
// triggers Domino teardown and automatic rejoin; the session recovers
// and data flows again (the §3.1 "fault tolerance, robustness and
// availability" use case).
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "sim/sim_net.h"
#include "trees/tree_algorithm.h"

namespace iov::trees {
namespace {

constexpr u32 kApp = 1;

struct Member {
  sim::SimEngine* engine = nullptr;
  TreeAlgorithm* alg = nullptr;
  std::shared_ptr<apps::SinkApp> sink;
};

Member add_member(sim::SimNet& net, double bw, bool with_sink) {
  auto algorithm = std::make_unique<TreeAlgorithm>(TreeStrategy::kNsAware, bw);
  Member m;
  m.alg = algorithm.get();
  sim::SimNodeConfig config;
  config.bandwidth.node_up = bw;
  m.engine = &net.add_node(std::move(algorithm), config);
  if (with_sink) {
    m.sink = std::make_shared<apps::SinkApp>();
    m.engine->register_app(kApp, m.sink);
  }
  return m;
}

TEST(TreeFailures, ReceiverRejoinsAfterParentDies) {
  sim::SimNet net;
  Member source = add_member(net, 200e3, false);
  source.engine->register_app(kApp,
                              std::make_shared<apps::CbrSource>(1000, 200e3));
  std::vector<Member> receivers;
  for (int i = 0; i < 6; ++i) receivers.push_back(add_member(net, 100e3, true));

  for (const auto& m : receivers) net.bootstrap(m.engine->self(), 8);
  net.bootstrap(source.engine->self(), 8);
  const std::string announce = source.engine->self().to_string();
  net.post(source.engine->self(),
           Msg::control(MsgType::kSAnnounce, NodeId(), kControlApp,
                        static_cast<i32>(kApp), 0, announce));
  for (const auto& m : receivers) {
    net.post(m.engine->self(),
             Msg::control(MsgType::kSAnnounce, NodeId(), kControlApp,
                          static_cast<i32>(kApp), 0, announce));
  }
  net.deploy(source.engine->self(), kApp);
  net.run_for(millis(200));
  for (const auto& m : receivers) {
    net.join_app(m.engine->self(), kApp);
    net.run_for(seconds(1.0));
  }
  net.run_for(seconds(3.0));
  for (const auto& m : receivers) {
    ASSERT_TRUE(m.alg->in_tree(kApp)) << m.engine->self().to_string();
  }

  // Kill a receiver that has children (an interior node); its orphans
  // must rejoin automatically and resume receiving.
  Member* interior = nullptr;
  for (auto& m : receivers) {
    if (!m.alg->children(kApp).empty()) interior = &m;
  }
  ASSERT_NE(interior, nullptr) << "tree is a star; test needs an interior";
  std::vector<Member*> orphans;
  for (auto& m : receivers) {
    if (m.alg->parent(kApp) == interior->engine->self()) {
      orphans.push_back(&m);
    }
  }
  ASSERT_FALSE(orphans.empty());

  net.kill_node(interior->engine->self());
  net.run_for(seconds(8.0));

  for (Member* orphan : orphans) {
    EXPECT_TRUE(orphan->alg->in_tree(kApp))
        << orphan->engine->self().to_string() << " did not rejoin";
    EXPECT_NE(orphan->alg->parent(kApp), interior->engine->self());
  }

  // Data flows again to the rejoined orphans.
  std::vector<u64> before;
  for (Member* orphan : orphans) {
    before.push_back(orphan->sink->stats(0).msgs);
  }
  net.run_for(seconds(5.0));
  for (std::size_t i = 0; i < orphans.size(); ++i) {
    EXPECT_GT(orphans[i]->sink->stats(0).msgs, before[i] + 10)
        << orphans[i]->engine->self().to_string();
  }
}

TEST(TreeFailures, SourceDeathCascadesBrokenSource) {
  sim::SimNet net;
  Member source = add_member(net, 200e3, false);
  source.engine->register_app(kApp,
                              std::make_shared<apps::CbrSource>(1000, 200e3));
  std::vector<Member> receivers;
  for (int i = 0; i < 4; ++i) receivers.push_back(add_member(net, 100e3, true));
  for (const auto& m : receivers) net.bootstrap(m.engine->self(), 8);
  const std::string announce = source.engine->self().to_string();
  for (const auto& m : receivers) {
    net.post(m.engine->self(),
             Msg::control(MsgType::kSAnnounce, NodeId(), kControlApp,
                          static_cast<i32>(kApp), 0, announce));
  }
  net.deploy(source.engine->self(), kApp);
  net.run_for(millis(200));
  for (const auto& m : receivers) {
    net.join_app(m.engine->self(), kApp);
    net.run_for(seconds(1.0));
  }
  net.run_for(seconds(2.0));

  net.kill_node(source.engine->self());
  net.run_for(seconds(5.0));
  // Every receiver eventually clears its session state (BrokenSource
  // Domino; direct children via BrokenLink with no rejoin target left
  // may retry forever — but none may still claim the dead parent).
  for (const auto& m : receivers) {
    EXPECT_NE(m.alg->parent(kApp), source.engine->self());
  }
}

}  // namespace
}  // namespace iov::trees
