// Protocol-level unit tests of TreeAlgorithm against FakeEngine:
// query routing per strategy, the join handshake, visited-list loop
// freedom, TTL exhaustion, stress exchange, and failure reactions —
// without any substrate.
#include <gtest/gtest.h>

#include "../algorithm/fake_engine.h"
#include "trees/tree_algorithm.h"

namespace iov::trees {
namespace {

using test::FakeEngine;

constexpr u32 kApp = 1;
const NodeId kJoiner = NodeId::loopback(3001);
const NodeId kSource = NodeId::loopback(3002);
const NodeId kChild = NodeId::loopback(3003);
const NodeId kParent = NodeId::loopback(3004);

MsgPtr query(const NodeId& joiner, i32 ttl = 16, std::string_view visited = "") {
  return Msg::control(kSQuery, joiner, kApp, ttl, 0,
                      visited.empty() ? joiner.to_string()
                                      : std::string(visited));
}

MsgPtr stress_report(const NodeId& from, double stress) {
  return Msg::control(kSStress, from, kApp,
                      static_cast<i32>(stress * 1e6));
}

// Puts `alg` in the tree as the source of kApp.
void deploy(FakeEngine& engine, TreeAlgorithm& alg) {
  engine.attach(alg);
  alg.process(Msg::control(MsgType::kSDeploy, NodeId(), kControlApp,
                           static_cast<i32>(kApp)));
}

TEST(TreeUnit, SourceAcceptsFirstJoinerUnderEveryStrategy) {
  for (const auto strategy :
       {TreeStrategy::kAllUnicast, TreeStrategy::kRandomized,
        TreeStrategy::kNsAware}) {
    FakeEngine engine;
    TreeAlgorithm alg(strategy, 100e3);
    deploy(engine, alg);
    alg.process(query(kJoiner));
    const auto acks = engine.sent_to(kJoiner);
    ASSERT_EQ(acks.size(), 1u) << strategy_name(strategy);
    EXPECT_EQ(acks[0]->type(), kSQueryAck);
  }
}

TEST(TreeUnit, JoinHandshakeSetsParentAndAttaches) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 100e3);
  engine.attach(alg);
  alg.process(Msg::control(MsgType::kSJoin, NodeId(), kControlApp,
                           static_cast<i32>(kApp), 0, kSource.to_string()));
  // The hinted entry point receives the query.
  ASSERT_EQ(engine.sent_to(kSource).size(), 1u);
  EXPECT_EQ(engine.sent_to(kSource)[0]->type(), kSQuery);

  // An ack from the acceptor attaches us.
  alg.process(Msg::control(kSQueryAck, kParent, kApp));
  EXPECT_TRUE(alg.in_tree(kApp));
  EXPECT_EQ(alg.parent(kApp), kParent);
  const auto to_parent = engine.sent_to(kParent);
  ASSERT_EQ(to_parent.size(), 1u);
  EXPECT_EQ(to_parent[0]->type(), kSAttach);
  EXPECT_EQ(alg.degree(kApp), 1u);
}

TEST(TreeUnit, SecondAckIsIgnored) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kRandomized, 100e3);
  engine.attach(alg);
  alg.process(Msg::control(MsgType::kSJoin, NodeId(), kControlApp,
                           static_cast<i32>(kApp)));
  alg.process(Msg::control(kSQueryAck, kParent, kApp));
  alg.process(Msg::control(kSQueryAck, kSource, kApp));  // late duplicate
  EXPECT_EQ(alg.parent(kApp), kParent);
  EXPECT_EQ(engine.count_type(kSAttach), 1u);
}

TEST(TreeUnit, AttachAddsChildAndDegree) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 200e3);
  deploy(engine, alg);
  alg.process(Msg::control(kSAttach, kChild, kApp));
  EXPECT_EQ(alg.children(kApp), std::vector<NodeId>{kChild});
  EXPECT_EQ(alg.degree(kApp), 1u);
  // stress = degree / (200 KB/s / 100 KB/s) = 0.5
  EXPECT_DOUBLE_EQ(alg.node_stress(kApp), 0.5);
}

TEST(TreeUnit, UnicastForwardsQueryToSource) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kAllUnicast, 100e3);
  engine.attach(alg);
  // In-tree non-source node that knows the announced source.
  alg.process(Msg::control(MsgType::kSAnnounce, NodeId(), kControlApp,
                           static_cast<i32>(kApp), 0, kSource.to_string()));
  alg.process(Msg::control(MsgType::kSJoin, NodeId(), kControlApp,
                           static_cast<i32>(kApp)));
  alg.process(Msg::control(kSQueryAck, kParent, kApp));  // now in tree
  engine.sent.clear();

  alg.process(query(kJoiner));
  const auto forwarded = engine.sent_to(kSource);
  ASSERT_EQ(forwarded.size(), 1u);
  EXPECT_EQ(forwarded[0]->type(), kSQuery);
  EXPECT_EQ(forwarded[0]->origin(), kJoiner);  // joiner preserved
  EXPECT_TRUE(engine.sent_to(kJoiner).empty());  // did not accept
}

TEST(TreeUnit, RandomizedAcceptsImmediately) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kRandomized, 100e3);
  engine.attach(alg);
  alg.process(Msg::control(MsgType::kSJoin, NodeId(), kControlApp,
                           static_cast<i32>(kApp)));
  alg.process(Msg::control(kSQueryAck, kParent, kApp));
  engine.sent.clear();
  alg.process(query(kJoiner));
  ASSERT_EQ(engine.sent_to(kJoiner).size(), 1u);
  EXPECT_EQ(engine.sent_to(kJoiner)[0]->type(), kSQueryAck);
}

TEST(TreeUnit, NsAwareForwardsTowardLowerStressNeighbor) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 100e3);  // own stress grows fast
  deploy(engine, alg);
  alg.process(Msg::control(kSAttach, kChild, kApp));  // degree 1 -> stress 1.0
  alg.process(stress_report(kChild, 0.2));            // child is less stressed
  engine.sent.clear();

  alg.process(query(kJoiner));
  // Must route to the child rather than accept.
  ASSERT_EQ(engine.sent_to(kChild).size(), 1u);
  EXPECT_EQ(engine.sent_to(kChild)[0]->type(), kSQuery);
  EXPECT_TRUE(engine.sent_to(kJoiner).empty());
  // The visited list now names this node.
  EXPECT_NE(engine.sent_to(kChild)[0]->param_text().find(
                engine.self().to_string()),
            std::string_view::npos);
}

TEST(TreeUnit, NsAwareAcceptsAtLocalMinimum) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 500e3);  // high bandwidth
  deploy(engine, alg);
  alg.process(Msg::control(kSAttach, kChild, kApp));
  alg.process(stress_report(kChild, 3.0));  // child is worse
  engine.sent.clear();
  alg.process(query(kJoiner));
  ASSERT_EQ(engine.sent_to(kJoiner).size(), 1u);
  EXPECT_EQ(engine.sent_to(kJoiner)[0]->type(), kSQueryAck);
}

TEST(TreeUnit, NsAwareSkipsVisitedNeighbors) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 100e3);
  deploy(engine, alg);
  alg.process(Msg::control(kSAttach, kChild, kApp));
  alg.process(stress_report(kChild, 0.1));
  engine.sent.clear();
  // The better neighbour already routed this query: accept instead of
  // bouncing it back (loop freedom).
  const std::string visited =
      kJoiner.to_string() + "," + kChild.to_string();
  alg.process(query(kJoiner, 16, visited));
  ASSERT_EQ(engine.sent_to(kJoiner).size(), 1u);
  EXPECT_EQ(engine.sent_to(kJoiner)[0]->type(), kSQueryAck);
}

TEST(TreeUnit, NonTreeNodeRelaysWithTtl) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 100e3);
  engine.attach(alg);
  alg.known_hosts().add(kChild, engine.self());
  alg.process(query(kJoiner, 5));
  ASSERT_EQ(engine.sent.size(), 1u);
  EXPECT_EQ(engine.sent[0].msg->type(), kSQuery);
  EXPECT_EQ(engine.sent[0].msg->param(0), 4);  // TTL decremented
}

TEST(TreeUnit, NonTreeNodeDropsAtTtlZero) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 100e3);
  engine.attach(alg);
  alg.known_hosts().add(kChild, engine.self());
  alg.process(query(kJoiner, 1));
  EXPECT_TRUE(engine.sent.empty());
}

TEST(TreeUnit, StressTimerExchangesWithNeighbors) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 100e3);
  deploy(engine, alg);
  alg.on_start();
  ASSERT_FALSE(engine.timers.empty());
  alg.process(Msg::control(kSAttach, kChild, kApp));
  engine.sent.clear();
  alg.process(Msg::control(MsgType::kTimer, engine.self(), kControlApp,
                           engine.timers[0].second));
  const auto to_child = engine.sent_to(kChild);
  ASSERT_EQ(to_child.size(), 1u);
  EXPECT_EQ(to_child[0]->type(), kSStress);
  EXPECT_EQ(to_child[0]->param(0), 1000000);  // stress 1.0 scaled by 1e6
}

TEST(TreeUnit, ParentLossDropsOutOfTree) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 100e3);
  engine.attach(alg);
  alg.process(Msg::control(MsgType::kSJoin, NodeId(), kControlApp,
                           static_cast<i32>(kApp)));
  alg.process(Msg::control(kSQueryAck, kParent, kApp));
  ASSERT_TRUE(alg.in_tree(kApp));
  alg.process(Msg::control(MsgType::kBrokenLink, kParent, kControlApp));
  EXPECT_FALSE(alg.in_tree(kApp));
  EXPECT_EQ(alg.parent(kApp), std::nullopt);
}

TEST(TreeUnit, BrokenSourceClearsSession) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 100e3);
  engine.attach(alg);
  alg.process(Msg::control(MsgType::kSJoin, NodeId(), kControlApp,
                           static_cast<i32>(kApp)));
  alg.process(Msg::control(kSQueryAck, kParent, kApp));
  alg.process(Msg::control(kSAttach, kChild, kApp));
  alg.process(std::make_shared<Msg>(MsgType::kBrokenSource, kSource, kApp, 0,
                                    Buffer::empty_buffer()));
  EXPECT_FALSE(alg.in_tree(kApp));
  EXPECT_EQ(alg.degree(kApp), 0u);
}

TEST(TreeUnit, DataForwardsToChildrenAndConsumes) {
  FakeEngine engine;
  TreeAlgorithm alg(TreeStrategy::kNsAware, 100e3);
  engine.attach(alg);
  alg.process(Msg::control(MsgType::kSJoin, NodeId(), kControlApp,
                           static_cast<i32>(kApp)));
  alg.process(Msg::control(kSQueryAck, kParent, kApp));
  alg.process(Msg::control(kSAttach, kChild, kApp));
  engine.sent.clear();
  const auto m = Msg::data(kSource, kApp, 0, Buffer::pattern(32, 0));
  alg.process(m);
  EXPECT_EQ(engine.delivered_local.size(), 1u);
  ASSERT_EQ(engine.sent_to(kChild).size(), 1u);
  EXPECT_EQ(engine.sent_to(kChild)[0].get(), m.get());  // zero copy
}

}  // namespace
}  // namespace iov::trees
