// Failure handling (paper §2.2 "Handling of failures"): detection of
// dead peers via socket errors, kBrokenLink notification, the Domino
// effect (kBrokenSource propagation down a dissemination chain), link
// purging, and graceful node termination that leaves bystanders
// undisturbed.
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "engine/engine.h"
#include "engine_test_util.h"

namespace iov::engine {
namespace {

using apps::BackToBackSource;
using apps::SinkApp;
using test::RecordingRelay;
using test::wait_until;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 1000;

struct Node {
  std::unique_ptr<Engine> engine;
  RecordingRelay* relay = nullptr;
};

Node make_node(const EngineConfig& base = {}) {
  auto algorithm = std::make_unique<RecordingRelay>();
  Node n;
  n.relay = algorithm.get();
  n.engine = std::make_unique<Engine>(base, std::move(algorithm));
  return n;
}

TEST(EngineFailures, SendToUnreachableNodeNotifiesAlgorithm) {
  Node a = make_node();
  // Reserve a port with nothing behind it.
  NodeId dead;
  {
    const auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.has_value());
    dead = NodeId::loopback(listener->port());
  }
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload, 5));
  ASSERT_TRUE(a.engine->start());
  a.relay->add_child(kApp, dead);
  a.engine->deploy_source(kApp);

  // send() itself never fails; the engine reports the unreachable
  // destination as a broken link message instead (§2.3).
  ASSERT_TRUE(wait_until(
      [&] { return a.relay->saw(MsgType::kBrokenLink, dead); }));
}

TEST(EngineFailures, PeerDeathDetectedAndLinkTornDown) {
  Node a = make_node();
  Node b = make_node();
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  b.engine->register_app(kApp, sink);
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  const NodeId b_id = b.engine->self();
  a.relay->add_child(kApp, b_id);
  b.relay->set_consume(kApp, true);
  a.engine->deploy_source(kApp);
  ASSERT_TRUE(wait_until([&] { return sink->stats(0).msgs > 10; }));

  // Kill B abruptly; A must notice (EPIPE / EOF), notify its algorithm,
  // and clear the link.
  b.engine->stop();
  b.engine->join();
  ASSERT_TRUE(wait_until(
      [&] { return a.relay->saw(MsgType::kBrokenLink, b_id); }));
  ASSERT_TRUE(wait_until([&] { return a.engine->snapshot().links.empty(); }));
}

TEST(EngineFailures, DominoEffectPropagatesBrokenSource) {
  // Chain A -> B -> C. Terminating A must cascade a BrokenSource to C via
  // B ("if an upstream link in a multicast tree has failed, it causes a
  // 'Domino Effect'").
  Node a = make_node();
  Node b = make_node();
  Node c = make_node();
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  c.engine->register_app(kApp, sink);
  for (auto* n : {&a, &b, &c}) ASSERT_TRUE(n->engine->start());
  const NodeId a_id = a.engine->self();
  a.relay->add_child(kApp, b.engine->self());
  b.relay->add_child(kApp, c.engine->self());
  c.relay->set_consume(kApp, true);
  a.engine->deploy_source(kApp);
  ASSERT_TRUE(wait_until([&] { return sink->stats(0).msgs > 10; }));

  a.engine->stop();
  a.engine->join();

  // B detects the dead upstream and propagates kBrokenSource downstream;
  // C's algorithm hears about a source it has no direct link to.
  ASSERT_TRUE(wait_until([&] {
    return b.relay->count(MsgType::kBrokenLink) > 0 &&
           c.relay->saw(MsgType::kBrokenSource, a_id);
  }));
}

TEST(EngineFailures, BystanderFlowsUndisturbedByTermination) {
  // Two independent flows: A -> C and B -> C. Terminating A must not
  // disturb B's flow (paper Fig. 6(c)/(d) property).
  Node a = make_node();
  Node b = make_node();
  Node c = make_node();
  auto sink = std::make_shared<SinkApp>();
  constexpr u32 kAppB = 2;
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  b.engine->register_app(kAppB, std::make_shared<BackToBackSource>(kPayload));
  c.engine->register_app(kApp, sink);
  c.engine->register_app(kAppB, sink);
  for (auto* n : {&a, &b, &c}) ASSERT_TRUE(n->engine->start());
  a.relay->add_child(kApp, c.engine->self());
  b.relay->add_child(kAppB, c.engine->self());
  c.relay->set_consume(kApp, true);
  c.relay->set_consume(kAppB, true);
  a.engine->deploy_source(kApp);
  b.engine->deploy_source(kAppB);
  ASSERT_TRUE(wait_until([&] { return sink->stats(0).msgs > 50; }));

  a.engine->stop();
  a.engine->join();
  // Bounded drain window for A's queued tail (the sink aggregates both
  // flows, so its count never goes quiet while B streams); the growth
  // asserted below is then B's flow.
  sleep_for(millis(100));
  const u64 before = sink->stats(0).msgs;
  ASSERT_TRUE(wait_until([&] { return sink->stats(0).msgs > before + 50; }));
}

TEST(EngineFailures, DeliberateCloseLinkDoesNotRaiseBrokenLinkLocally) {
  Node a = make_node();
  Node b = make_node();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(kPayload));
  b.engine->register_app(kApp, std::make_shared<SinkApp>());
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  const NodeId b_id = b.engine->self();
  a.relay->add_child(kApp, b_id);
  b.relay->set_consume(kApp, true);
  a.engine->deploy_source(kApp);
  ASSERT_TRUE(wait_until([&] { return !a.engine->snapshot().links.empty(); }));

  // The algorithm decides to drop the link; locally this is not a
  // failure. Wait for the termination to land (source flag clears) and
  // the last queued sends to drain before removing the child.
  a.engine->terminate_source(kApp);
  ASSERT_TRUE(wait_until([&] { return !a.engine->is_source(kApp); }));
  a.engine->post(Msg::control(MsgType::kControl, NodeId(), kControlApp,
                              RelayAlgorithm::kRemoveChild,
                              static_cast<i32>(kApp), b_id.to_string()));
  // Tear down via a small adapter message: drive close_link through the
  // algorithm by terminating the peer instead.
  b.engine->stop();
  b.engine->join();
  ASSERT_TRUE(wait_until([&] { return a.engine->snapshot().links.empty(); }));
}

TEST(EngineFailures, TerminateNodeViaControlMessage) {
  Node n = make_node();
  ASSERT_TRUE(n.engine->start());
  n.engine->post(Msg::control(MsgType::kTerminateNode, NodeId(), kControlApp));
  ASSERT_TRUE(wait_until([&] { return !n.engine->running(); }));
  n.engine->join();
}

TEST(EngineFailures, IdleTimeoutDetectsSilentUpstream) {
  EngineConfig watchful;
  watchful.idle_failure_timeout = millis(300);
  Node a = make_node();
  Node b = make_node(watchful);
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, 20));
  b.engine->register_app(kApp, std::make_shared<SinkApp>());
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  const NodeId a_id = a.engine->self();
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  a.engine->deploy_source(kApp);

  // The bounded source stops after 20 messages; B's inactivity detector
  // must eventually declare the upstream dead without any probes.
  ASSERT_TRUE(wait_until(
      [&] { return b.relay->saw(MsgType::kBrokenLink, a_id); }, seconds(5.0)));
}

}  // namespace
}  // namespace iov::engine
