// Local trace logging (§2.2's high-volume mode) and the collection
// script's input format.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/strings.h"
#include "engine/engine.h"
#include "engine_test_util.h"

namespace iov::engine {
namespace {

using test::wait_until;

class Tracer : public Algorithm {
 public:
  void on_start() override { engine().set_timer(millis(20), 1); }
  void on_timer(i32 id) override {
    engine().trace(strf("tick %d", count_));
    if (++count_ < 3) engine().set_timer(millis(20), id);
  }

 private:
  int count_ = 0;
};

TEST(LocalTrace, TracesLandInConfiguredFile) {
  const auto path = std::filesystem::temp_directory_path() /
                    "iov_trace_test.log";
  std::filesystem::remove(path);

  EngineConfig config;
  config.local_trace_path = path.string();
  Engine node(config, std::make_unique<Tracer>());
  ASSERT_TRUE(node.start());
  ASSERT_TRUE(wait_until([&] {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str().find("tick 2") != std::string::npos;
  }));
  node.stop();
  node.join();

  // Each record carries the fixed-width timestamp and the node id the
  // collection script merges on.
  std::ifstream in(path);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.front(), '[') << line;
    EXPECT_NE(line.find(node.self().to_string()), std::string::npos) << line;
  }
  EXPECT_EQ(lines, 3);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace iov::engine
