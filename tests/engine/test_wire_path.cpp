// Wire-path knob integration over real engines and loopback TCP
// (DESIGN.md §8): the pooled large-frame receive path (wire_payload_pool)
// and the MSG_ZEROCOPY send path (wire_zerocopy_min_bytes), each verified
// end to end with payload integrity plus the metrics that prove which
// path actually ran.
#include <gtest/gtest.h>

#include <memory>

#include "apps/sink.h"
#include "apps/source.h"
#include "chaos/verify.h"
#include "engine/engine.h"
#include "engine_test_util.h"
#include "obs/metric_names.h"

namespace iov::engine {
namespace {

using apps::BackToBackSource;
using apps::SinkApp;
using chaos::counter_value;
using test::RecordingRelay;
using test::wait_until;

constexpr u32 kApp = 1;
// Larger than FrameReader's 64 KB chunk: every data frame takes the
// large-frame path.
constexpr std::size_t kBigPayload = 100 * 1000;
constexpr u64 kMsgs = 30;

struct Node {
  std::unique_ptr<Engine> engine;
  RecordingRelay* relay = nullptr;
};

Node make_node(EngineConfig config = {}) {
  auto algorithm = std::make_unique<RecordingRelay>();
  Node n;
  n.relay = algorithm.get();
  n.engine = std::make_unique<Engine>(config, std::move(algorithm));
  return n;
}

// Streams kMsgs big messages A -> B and returns B's sink for integrity
// checks. Caller inspects each engine's metrics afterwards.
std::shared_ptr<SinkApp> stream_big(Node& a, Node& b) {
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kBigPayload,
                                                            kMsgs));
  auto sink = std::make_shared<SinkApp>(kBigPayload);
  b.engine->register_app(kApp, sink);
  EXPECT_TRUE(a.engine->start());
  EXPECT_TRUE(b.engine->start());
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  a.engine->deploy_source(kApp);
  EXPECT_TRUE(wait_until([&] {
    return sink->stats(RealClock::instance().now()).distinct == kMsgs;
  }));
  return sink;
}

TEST(WirePath, PooledLargeFramesDeliverIntactWithHighHitRate) {
  Node a = make_node();
  Node b = make_node();  // wire_payload_pool defaults on
  auto sink = stream_big(a, b);
  EXPECT_EQ(sink->stats(0).corrupt, 0u);

  const auto snap = b.engine->metrics().snapshot();
  const double hits = counter_value(snap, obs::names::kPoolSlabAcquiresTotal,
                                    {{"result", "hit"}});
  const double misses = counter_value(snap, obs::names::kPoolSlabAcquiresTotal,
                                      {{"result", "miss"}});
  // Every large data frame drew a slab...
  EXPECT_GE(hits + misses, static_cast<double>(kMsgs));
  // ...and the pool recycled nearly all of them: misses are bounded by
  // the number of slabs live at once (receive buffer depth + in flight),
  // not by the message count.
  EXPECT_LE(misses, 12.0);
  EXPECT_GE(hits, static_cast<double>(kMsgs) - 12.0);
}

TEST(WirePath, PoolKnobOffRestoresDedicatedAllocations) {
  EngineConfig no_pool;
  no_pool.wire_payload_pool = false;
  Node a = make_node();
  Node b = make_node(no_pool);
  auto sink = stream_big(a, b);
  EXPECT_EQ(sink->stats(0).corrupt, 0u);
  EXPECT_EQ(counter_value(b.engine->metrics().snapshot(),
                          obs::names::kPoolSlabAcquiresTotal),
            0.0);
}

TEST(WirePath, ZerocopySendPathCompletesAndDeliversIntact) {
  EngineConfig zc;
  zc.wire_zerocopy_min_bytes = 16 * 1024;
  Node a = make_node(zc);
  Node b = make_node();
  auto sink = stream_big(a, b);
  EXPECT_EQ(sink->stats(0).corrupt, 0u);

  // Stop the sender first: sender_main's teardown drain reaps the last
  // completions before the snapshot is taken.
  a.engine->stop();
  a.engine->join();
  const auto snap = a.engine->metrics().snapshot();
  const double sends =
      counter_value(snap, obs::names::kLinkZerocopySendsTotal);
  const double completions =
      counter_value(snap, obs::names::kLinkZerocopyCompletionsTotal);
  if (sends == 0.0) {
    GTEST_SKIP() << "kernel lacks SO_ZEROCOPY; plain sends were used";
  }
  // Every flagged send's completion id was reaped, so no payload page
  // was released while the kernel could still read it.
  EXPECT_EQ(completions, sends);
  // Loopback degrades every zerocopy transmit to an internal copy and
  // says so; if this ever fails the kernel genuinely pinned our pages —
  // which the in-flight tracking already handles.
  EXPECT_EQ(counter_value(snap, obs::names::kLinkZerocopyCopiedTotal),
            completions);
  b.engine->stop();
  b.engine->join();
}

TEST(WirePath, ZerocopyOffByDefault) {
  Node a = make_node();
  Node b = make_node();
  auto sink = stream_big(a, b);
  EXPECT_EQ(sink->stats(0).corrupt, 0u);
  EXPECT_EQ(counter_value(a.engine->metrics().snapshot(),
                          obs::names::kLinkZerocopySendsTotal),
            0.0);
}

}  // namespace
}  // namespace iov::engine
