// Shared helpers for engine integration tests: condition polling and a
// recording relay algorithm whose observations a test thread can read
// safely.
#pragma once

#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "algorithm/relay.h"
#include "common/clock.h"
#include "common/types.h"

namespace iov::test {

/// Polls `pred` every 5 ms until it holds or `timeout` elapses.
inline bool wait_until(const std::function<bool()>& pred,
                       Duration timeout = seconds(5.0)) {
  const TimePoint deadline = RealClock::instance().now() + timeout;
  while (RealClock::instance().now() < deadline) {
    if (pred()) return true;
    sleep_for(millis(5));
  }
  return pred();
}

/// Polls `sample` until its value has held unchanged for `quiet`, or
/// gives up after `timeout`; returns the stable value, or nullopt if it
/// never settled. This replaces the flaky "sleep, read, sleep, expect
/// equal" idiom: instead of hoping one fixed nap outlasts queue drain,
/// the test waits for drain to actually finish (and a still-moving value
/// fails by timeout instead of by race).
template <typename T>
std::optional<T> wait_stable(const std::function<T()>& sample,
                             Duration quiet = seconds(1.0),
                             Duration timeout = seconds(10.0)) {
  const TimePoint deadline = RealClock::instance().now() + timeout;
  T last = sample();
  TimePoint last_change = RealClock::instance().now();
  while (RealClock::instance().now() < deadline) {
    sleep_for(millis(10));
    const T cur = sample();
    const TimePoint now = RealClock::instance().now();
    if (cur != last) {
      last = cur;
      last_change = now;
    } else if (now - last_change >= quiet) {
      return cur;
    }
  }
  return std::nullopt;
}

/// True if `pred` holds continuously (polled every 5 ms) for `window` —
/// the positive-assertion twin of wait_until for "X stays true" claims,
/// catching transient flips a single sleep-then-check would miss.
inline bool holds_for(const std::function<bool()>& pred, Duration window) {
  const TimePoint until = RealClock::instance().now() + window;
  while (RealClock::instance().now() < until) {
    if (!pred()) return false;
    sleep_for(millis(5));
  }
  return pred();
}

/// RelayAlgorithm that additionally records every non-data event it sees,
/// for assertions from the test thread.
class RecordingRelay : public RelayAlgorithm {
 public:
  struct Event {
    MsgType type;
    NodeId origin;
    u32 app;
    i32 p0;
  };

  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  std::size_t count(MsgType type) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& e : events_) n += (e.type == type) ? 1 : 0;
    return n;
  }

  bool saw(MsgType type, const NodeId& origin) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : events_) {
      if (e.type == type && e.origin == origin) return true;
    }
    return false;
  }

  /// Thread-safe snapshot of KnownHosts, refreshed after every processed
  /// message. Tests must use this instead of known_hosts(), which is
  /// engine-thread state.
  std::vector<NodeId> hosts_snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hosts_;
  }

  bool knows(const NodeId& id) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& host : hosts_) {
      if (host == id) return true;
    }
    return false;
  }

  Disposition process(const MsgPtr& m) override {
    if (m->type() != MsgType::kData) {
      std::lock_guard<std::mutex> lock(mu_);
      events_.push_back(Event{m->type(), m->origin(), m->app(), m->param(0)});
    }
    const Disposition disposition = RelayAlgorithm::process(m);
    if (m->type() != MsgType::kData) {
      std::lock_guard<std::mutex> lock(mu_);
      hosts_ = known_hosts().all();
    }
    return disposition;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::vector<NodeId> hosts_;
};

}  // namespace iov::test
