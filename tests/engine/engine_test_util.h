// Shared helpers for engine integration tests: condition polling and a
// recording relay algorithm whose observations a test thread can read
// safely.
#pragma once

#include <functional>
#include <mutex>
#include <vector>

#include "algorithm/relay.h"
#include "common/clock.h"
#include "common/types.h"

namespace iov::test {

/// Polls `pred` every 5 ms until it holds or `timeout` elapses.
inline bool wait_until(const std::function<bool()>& pred,
                       Duration timeout = seconds(5.0)) {
  const TimePoint deadline = RealClock::instance().now() + timeout;
  while (RealClock::instance().now() < deadline) {
    if (pred()) return true;
    sleep_for(millis(5));
  }
  return pred();
}

/// RelayAlgorithm that additionally records every non-data event it sees,
/// for assertions from the test thread.
class RecordingRelay : public RelayAlgorithm {
 public:
  struct Event {
    MsgType type;
    NodeId origin;
    u32 app;
    i32 p0;
  };

  std::vector<Event> events() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  std::size_t count(MsgType type) const {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto& e : events_) n += (e.type == type) ? 1 : 0;
    return n;
  }

  bool saw(MsgType type, const NodeId& origin) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : events_) {
      if (e.type == type && e.origin == origin) return true;
    }
    return false;
  }

  /// Thread-safe snapshot of KnownHosts, refreshed after every processed
  /// message. Tests must use this instead of known_hosts(), which is
  /// engine-thread state.
  std::vector<NodeId> hosts_snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hosts_;
  }

  bool knows(const NodeId& id) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& host : hosts_) {
      if (host == id) return true;
    }
    return false;
  }

  Disposition process(const MsgPtr& m) override {
    if (m->type() != MsgType::kData) {
      std::lock_guard<std::mutex> lock(mu_);
      events_.push_back(Event{m->type(), m->origin(), m->app(), m->param(0)});
    }
    const Disposition disposition = RelayAlgorithm::process(m);
    if (m->type() != MsgType::kData) {
      std::lock_guard<std::mutex> lock(mu_);
      hosts_ = known_hosts().all();
    }
    return disposition;
  }

 private:
  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::vector<NodeId> hosts_;
};

}  // namespace iov::test
