// Engine integration tests over real loopback TCP: lifecycle, data flow
// through the switch, zero-loss delivery with integrity checks, chains,
// fan-out, bandwidth caps, timers and the ping/pong probe.
#include "engine/engine.h"

#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "engine_test_util.h"

namespace iov::engine {
namespace {

using apps::BackToBackSource;
using apps::SinkApp;
using test::RecordingRelay;
using test::wait_until;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 1000;

struct Node {
  std::unique_ptr<Engine> engine;
  RecordingRelay* relay = nullptr;  // owned by engine
};

Node make_node(const EngineConfig& base = {}) {
  auto algorithm = std::make_unique<RecordingRelay>();
  Node n;
  n.relay = algorithm.get();
  EngineConfig config = base;
  n.engine = std::make_unique<Engine>(config, std::move(algorithm));
  return n;
}

TEST(EngineBasic, StartAssignsEphemeralPortAndStops) {
  Node n = make_node();
  ASSERT_TRUE(n.engine->start());
  EXPECT_TRUE(n.engine->self().valid());
  EXPECT_EQ(n.engine->self().ip(), 0x7f000001u);
  EXPECT_TRUE(n.engine->running());
  n.engine->stop();
  n.engine->join();
  EXPECT_FALSE(n.engine->running());
}

TEST(EngineBasic, TwoNodesDeliverBoundedStreamWithoutLoss) {
  Node a = make_node();
  Node b = make_node();
  auto sink = std::make_shared<SinkApp>(kPayload);
  constexpr u64 kMsgs = 300;
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, kMsgs));
  b.engine->register_app(kApp, sink);
  ASSERT_TRUE(b.engine->start());
  ASSERT_TRUE(a.engine->start());
  b.relay->set_consume(kApp, true);

  // Runtime configuration through the control path.
  a.engine->post(Msg::control(MsgType::kControl, NodeId(), kControlApp,
                              RelayAlgorithm::kAddChild,
                              static_cast<i32>(kApp),
                              b.engine->self().to_string()));
  a.engine->deploy_source(kApp);

  ASSERT_TRUE(wait_until([&] {
    return sink->stats(RealClock::instance().now()).distinct == kMsgs;
  }));
  const auto stats = sink->stats(RealClock::instance().now());
  EXPECT_EQ(stats.msgs, kMsgs);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.corrupt, 0u);
}

TEST(EngineBasic, FourNodeChainDeliversEndToEnd) {
  std::vector<Node> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(make_node());
  auto sink = std::make_shared<SinkApp>(kPayload);
  constexpr u64 kMsgs = 200;
  nodes[0].engine->register_app(
      kApp, std::make_shared<BackToBackSource>(kPayload, kMsgs));
  nodes[3].engine->register_app(kApp, sink);
  for (auto& n : nodes) ASSERT_TRUE(n.engine->start());
  for (int i = 0; i < 3; ++i) {
    nodes[i].relay->add_child(kApp, nodes[i + 1].engine->self());
  }
  nodes[3].relay->set_consume(kApp, true);
  nodes[0].engine->deploy_source(kApp);

  ASSERT_TRUE(wait_until([&] {
    return sink->stats(RealClock::instance().now()).distinct == kMsgs;
  }));
  EXPECT_EQ(sink->stats(RealClock::instance().now()).corrupt, 0u);
}

TEST(EngineBasic, FanOutCopiesToAllChildren) {
  Node a = make_node();
  Node b = make_node();
  Node c = make_node();
  auto sink_b = std::make_shared<SinkApp>(kPayload);
  auto sink_c = std::make_shared<SinkApp>(kPayload);
  constexpr u64 kMsgs = 150;
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, kMsgs));
  b.engine->register_app(kApp, sink_b);
  c.engine->register_app(kApp, sink_c);
  for (auto* n : {&a, &b, &c}) ASSERT_TRUE(n->engine->start());
  a.relay->add_child(kApp, b.engine->self());
  a.relay->add_child(kApp, c.engine->self());
  b.relay->set_consume(kApp, true);
  c.relay->set_consume(kApp, true);
  a.engine->deploy_source(kApp);

  ASSERT_TRUE(wait_until([&] {
    const TimePoint t = RealClock::instance().now();
    return sink_b->stats(t).distinct == kMsgs &&
           sink_c->stats(t).distinct == kMsgs;
  }));
  EXPECT_EQ(sink_b->stats(0).duplicates, 0u);
  EXPECT_EQ(sink_c->stats(0).duplicates, 0u);
}

TEST(EngineBasic, SnapshotShowsLinksAndApps) {
  Node a = make_node();
  Node b = make_node();
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, 50));
  b.engine->register_app(kApp, std::make_shared<SinkApp>());
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  a.engine->deploy_source(kApp);
  a.engine->join_app(kApp);

  ASSERT_TRUE(wait_until([&] {
    const auto snap = a.engine->snapshot();
    return !snap.links.empty() && snap.links[0].down.total_msgs >= 50;
  }));
  const auto snap = a.engine->snapshot();
  ASSERT_EQ(snap.links.size(), 1u);
  EXPECT_EQ(snap.links[0].peer, b.engine->self());
  EXPECT_EQ(snap.source_apps, std::vector<u32>{kApp});
  EXPECT_EQ(snap.joined_apps, std::vector<u32>{kApp});
  EXPECT_GT(snap.links[0].down.total_bytes, 50u * kPayload);
}

TEST(EngineBasic, NodeUplinkCapThrottlesGoodput) {
  EngineConfig capped;
  capped.bandwidth.node_up = 100e3;  // 100 KB/s
  Node a = make_node(capped);
  Node b = make_node();
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(5000));
  b.engine->register_app(kApp, sink);
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  a.engine->deploy_source(kApp);

  sleep_for(seconds(2.0));
  a.engine->terminate_source(kApp);
  const double goodput = sink->mean_goodput();
  // Payload goodput must be near (and never above) the 100 KB/s wire cap.
  EXPECT_GT(goodput, 60e3);
  EXPECT_LT(goodput, 110e3);
}

TEST(EngineBasic, RuntimeBandwidthChangeTakesEffect) {
  Node a = make_node();
  Node b = make_node();
  auto sink = std::make_shared<SinkApp>();
  a.engine->register_app(kApp, std::make_shared<BackToBackSource>(5000));
  b.engine->register_app(kApp, sink);
  ASSERT_TRUE(a.engine->start());
  ASSERT_TRUE(b.engine->start());
  a.relay->add_child(kApp, b.engine->self());
  b.relay->set_consume(kApp, true);
  // Cap before deploying, via the control-message path the observer uses.
  a.engine->post(Msg::control(MsgType::kSetBandwidth, NodeId(), kControlApp,
                              kBwNodeUp, 50000));
  a.engine->deploy_source(kApp);

  sleep_for(seconds(2.0));
  a.engine->terminate_source(kApp);
  const double goodput = sink->mean_goodput();
  EXPECT_GT(goodput, 25e3);
  EXPECT_LT(goodput, 60e3);
}

// Algorithm that arms a timer chain and counts firings.
class TimerAlgorithm : public Algorithm {
 public:
  void on_start() override { engine().set_timer(millis(10), 7); }
  void on_timer(i32 id) override {
    std::lock_guard<std::mutex> lock(mu_);
    ids_.push_back(id);
    if (ids_.size() < 5) engine().set_timer(millis(10), id + 1);
  }
  std::vector<i32> ids() const {
    std::lock_guard<std::mutex> lock(mu_);
    return ids_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<i32> ids_;
};

TEST(EngineBasic, TimersFireInOrder) {
  auto algorithm = std::make_unique<TimerAlgorithm>();
  auto* alg = algorithm.get();
  Engine engine(EngineConfig{}, std::move(algorithm));
  ASSERT_TRUE(engine.start());
  ASSERT_TRUE(wait_until([&] { return alg->ids().size() == 5; }));
  EXPECT_EQ(alg->ids(), (std::vector<i32>{7, 8, 9, 10, 11}));
}

// Algorithm that pings a peer on start and records the measured RTT.
class PingAlgorithm : public Algorithm {
 public:
  void set_target(const NodeId& target) { target_ = target; }
  void on_start() override { engine().set_timer(millis(20), 1); }
  void on_timer(i32) override { ping(target_); }
  void on_pong(const NodeId& peer, Duration rtt) override {
    std::lock_guard<std::mutex> lock(mu_);
    pong_peer_ = peer;
    rtt_ = rtt;
  }
  Duration rtt() const {
    std::lock_guard<std::mutex> lock(mu_);
    return rtt_;
  }
  NodeId pong_peer() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pong_peer_;
  }

 private:
  NodeId target_;
  mutable std::mutex mu_;
  NodeId pong_peer_;
  Duration rtt_ = -1;
};

TEST(EngineBasic, PingPongMeasuresRoundTrip) {
  auto pinger = std::make_unique<PingAlgorithm>();
  auto* ping_alg = pinger.get();
  Node responder = make_node();
  ASSERT_TRUE(responder.engine->start());
  ping_alg->set_target(responder.engine->self());
  Engine engine(EngineConfig{}, std::move(pinger));
  ASSERT_TRUE(engine.start());

  ASSERT_TRUE(wait_until([&] { return ping_alg->rtt() >= 0; }));
  EXPECT_EQ(ping_alg->pong_peer(), responder.engine->self());
  EXPECT_LT(ping_alg->rtt(), seconds(1.0));
}

TEST(EngineBasic, IdleEngineUsesLittleCpu) {
  // §2.4: "we observe that the CPU load is 0.00" without traffic.
  Node n = make_node();
  ASSERT_TRUE(n.engine->start());
  sleep_for(millis(200));
  struct timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  const double before = ts.tv_sec + ts.tv_nsec * 1e-9;
  sleep_for(millis(500));
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  const double used = ts.tv_sec + ts.tv_nsec * 1e-9 - before;
  EXPECT_LT(used, 0.15);  // well under 30% of one core while idle
}

}  // namespace
}  // namespace iov::engine
