#include "engine/report.h"

#include <gtest/gtest.h>

namespace iov::engine {
namespace {

NodeReport sample_report() {
  NodeReport r;
  r.node = NodeId::loopback(9001);
  r.uptime = seconds(12.5);
  r.upstreams.push_back(
      LinkReport{NodeId::loopback(9002), 12345.5, 999999, 3, 4, 10});
  r.upstreams.push_back(
      LinkReport{NodeId::loopback(9003), 0.0, 0, 0, 0, 10});
  r.downstreams.push_back(
      LinkReport{NodeId::loopback(9004), 54321.0, 42, 0, 9, 10});
  r.source_apps = {1, 7};
  r.joined_apps = {3};
  r.algorithm_status = "relay apps=2 edges=3";
  return r;
}

TEST(NodeReport, SerializeParseRoundTrip) {
  const NodeReport r = sample_report();
  const auto parsed = NodeReport::parse(r.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->node, r.node);
  EXPECT_EQ(parsed->uptime, r.uptime);
  ASSERT_EQ(parsed->upstreams.size(), 2u);
  EXPECT_EQ(parsed->upstreams[0].peer, NodeId::loopback(9002));
  EXPECT_NEAR(parsed->upstreams[0].rate_bps, 12345.5, 0.1);
  EXPECT_EQ(parsed->upstreams[0].total_bytes, 999999u);
  EXPECT_EQ(parsed->upstreams[0].lost_msgs, 3u);
  EXPECT_EQ(parsed->upstreams[0].buffer_len, 4u);
  EXPECT_EQ(parsed->upstreams[0].buffer_cap, 10u);
  ASSERT_EQ(parsed->downstreams.size(), 1u);
  EXPECT_EQ(parsed->downstreams[0].peer, NodeId::loopback(9004));
  EXPECT_EQ(parsed->source_apps, (std::vector<u32>{1, 7}));
  EXPECT_EQ(parsed->joined_apps, std::vector<u32>{3});
  EXPECT_EQ(parsed->algorithm_status, "relay apps=2 edges=3");
}

TEST(NodeReport, EmptyListsRoundTrip) {
  NodeReport r;
  r.node = NodeId::loopback(1);
  const auto parsed = NodeReport::parse(r.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->upstreams.empty());
  EXPECT_TRUE(parsed->downstreams.empty());
  EXPECT_TRUE(parsed->source_apps.empty());
  EXPECT_EQ(parsed->algorithm_status, "");
}

TEST(NodeReport, ParseRejectsMissingNode) {
  EXPECT_FALSE(NodeReport::parse("uptime=5\nup=\n").has_value());
}

TEST(NodeReport, ParseRejectsGarbage) {
  EXPECT_FALSE(NodeReport::parse("node=not-an-address\n").has_value());
  EXPECT_FALSE(NodeReport::parse("just some text").has_value());
  EXPECT_FALSE(
      NodeReport::parse("node=1.2.3.4:5\nup=badlink\n").has_value());
}

TEST(NodeReport, ParseToleratesBlankLines) {
  const auto parsed =
      NodeReport::parse("\nnode=1.2.3.4:5\n\nuptime=7\n\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->uptime, 7);
}

TEST(NodeReport, V2MetricsRoundTrip) {
  NodeReport r = sample_report();
  r.version = NodeReport::kVersion;
  r.metrics_wire = "c:iov_switch_messages_total,42|g:iov_link_queue_depth,3";
  const auto parsed = NodeReport::parse(r.serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, NodeReport::kVersion);
  EXPECT_EQ(parsed->metrics_wire, r.metrics_wire);
}

TEST(NodeReport, V1ReportParsesWithDefaults) {
  // A report from an old node: no ver=, no metrics= lines.
  const auto parsed = NodeReport::parse("node=1.2.3.4:5\nuptime=7\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->version, 1);
  EXPECT_TRUE(parsed->metrics_wire.empty());
}

TEST(NodeReport, EmptyMetricsOmittedFromWire) {
  // A snapshot-less report serializes exactly like v1 so old observers
  // see nothing new.
  NodeReport r;
  r.node = NodeId::loopback(1);
  const std::string text = r.serialize();
  EXPECT_EQ(text.find("ver="), std::string::npos);
  EXPECT_EQ(text.find("metrics="), std::string::npos);
}

TEST(NodeReport, ParseSkipsUnknownKeys) {
  // Future versions may append lines; today's parser must ignore them.
  const auto parsed = NodeReport::parse(
      "node=1.2.3.4:5\nuptime=7\nfuture_key=whatever\n");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->uptime, 7);
}

}  // namespace
}  // namespace iov::engine
