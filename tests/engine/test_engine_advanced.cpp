// Advanced real-engine integration: the hold mechanism driving GF(2^8)
// network coding over actual threads and TCP, persistent-connection
// reuse for bidirectional traffic, weighted round-robin tuning, the
// observer-style kRequest path, multi-app multiplexing on one link, and
// trace emission.
#include <gtest/gtest.h>

#include "apps/sink.h"
#include "apps/source.h"
#include "coding/coding_algorithm.h"
#include "engine/engine.h"
#include "engine_test_util.h"

namespace iov::engine {
namespace {

using apps::BackToBackSource;
using apps::SinkApp;
using coding::CodingAlgorithm;
using test::RecordingRelay;
using test::wait_until;

constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 1000;

TEST(EngineAdvanced, NetworkCodingOverRealEngines) {
  // A splits stream 0 -> B and stream 1 -> D; B relays `a` to R and D;
  // D holds pairs and codes 7a+19b toward R; R solves for b. The full
  // §3.2 machinery — hold disposition, n-to-1 merge, Gaussian decode —
  // over real threads and loopback TCP.
  struct CodedNode {
    std::unique_ptr<Engine> engine;
    CodingAlgorithm* alg = nullptr;
  };
  const auto make = [] {
    auto algorithm = std::make_unique<CodingAlgorithm>();
    CodedNode n;
    n.alg = algorithm.get();
    n.engine = std::make_unique<Engine>(EngineConfig{}, std::move(algorithm));
    return n;
  };
  CodedNode a = make(), b = make(), d = make(), r = make();
  constexpr u64 kMsgs = 60;
  a.engine->register_app(kApp,
                         std::make_shared<BackToBackSource>(kPayload, kMsgs));
  auto sink = std::make_shared<SinkApp>(kPayload);
  r.engine->register_app(kApp, sink);
  for (auto* n : {&a, &b, &d, &r}) ASSERT_TRUE(n->engine->start());

  a.alg->set_source_split(kApp, {b.engine->self(), d.engine->self()});
  b.alg->add_relay(kApp, r.engine->self());
  b.alg->add_relay(kApp, d.engine->self());
  d.alg->set_coder(kApp, 2, {7, 19}, {r.engine->self()});
  r.alg->set_decoder(kApp, 2, kPayload);
  a.engine->deploy_source(kApp);

  ASSERT_TRUE(wait_until([&] {
    return sink->stats(RealClock::instance().now()).distinct == kMsgs;
  }));
  EXPECT_EQ(sink->stats(0).corrupt, 0u);
}

TEST(EngineAdvanced, PersistentConnectionCarriesBothDirections) {
  // A sources app 1 toward B; B sources app 2 toward A. Per §2.2
  // ("persistent connections ... all the messages between two nodes are
  // carried with the same connection") each node must end up with
  // exactly one link.
  auto alg_a = std::make_unique<RecordingRelay>();
  auto alg_b = std::make_unique<RecordingRelay>();
  auto* relay_a = alg_a.get();
  auto* relay_b = alg_b.get();
  Engine a(EngineConfig{}, std::move(alg_a));
  Engine b(EngineConfig{}, std::move(alg_b));
  auto sink_a = std::make_shared<SinkApp>();
  auto sink_b = std::make_shared<SinkApp>();
  a.register_app(1, std::make_shared<BackToBackSource>(kPayload, 100));
  a.register_app(2, sink_a);
  b.register_app(2, std::make_shared<BackToBackSource>(kPayload, 100));
  b.register_app(1, sink_b);
  ASSERT_TRUE(a.start());
  ASSERT_TRUE(b.start());
  relay_a->add_child(1, b.self());
  relay_a->set_consume(2, true);
  relay_b->add_child(2, a.self());
  relay_b->set_consume(1, true);
  a.deploy_source(1);
  b.deploy_source(2);

  ASSERT_TRUE(wait_until([&] {
    return sink_a->stats(0).distinct == 100 &&
           sink_b->stats(0).distinct == 100;
  }));
  EXPECT_EQ(a.snapshot().links.size(), 1u);
  EXPECT_EQ(b.snapshot().links.size(), 1u);
  // The single link at A carried app 1 out and app 2 in.
  const auto snap = a.snapshot();
  EXPECT_GT(snap.links[0].down.total_bytes, 100 * kPayload);
  EXPECT_GT(snap.links[0].up.total_bytes, 100 * kPayload);
}

TEST(EngineAdvanced, SwitchWeightsKeepCorrectnessUnderSaturation) {
  // Two back-to-back sources saturate relay R's two input slots while
  // A1's slot carries a non-default round-robin weight. The throughput
  // *ratio* on a single-core host is dominated by TCP feedback and
  // scheduling (both directions observed run to run), so this test pins
  // down what must hold regardless: both apps keep flowing, nothing is
  // lost or duplicated, and the weight plumbing itself works.
  auto make_relay = [](EngineConfig config = {}) {
    auto algorithm = std::make_unique<RecordingRelay>();
    auto* raw = algorithm.get();
    auto engine = std::make_unique<Engine>(config, std::move(algorithm));
    return std::make_pair(std::move(engine), raw);
  };
  auto [a1, relay_a1] = make_relay();
  auto [a2, relay_a2] = make_relay();
  EngineConfig deep;  // deep input buffers keep both slots saturated
  deep.recv_buffer_msgs = 64;
  auto [r, relay_r] = make_relay(deep);
  auto [s, relay_s] = make_relay();
  auto sink1 = std::make_shared<SinkApp>();
  auto sink2 = std::make_shared<SinkApp>();
  a1->register_app(1, std::make_shared<BackToBackSource>(kPayload));
  a2->register_app(2, std::make_shared<BackToBackSource>(kPayload));
  s->register_app(1, sink1);
  s->register_app(2, sink2);
  ASSERT_TRUE(a1->start());
  ASSERT_TRUE(a2->start());
  ASSERT_TRUE(r->start());
  ASSERT_TRUE(s->start());
  relay_a1->add_child(1, r->self());
  relay_a2->add_child(2, r->self());
  relay_r->add_child(1, s->self());
  relay_r->add_child(2, s->self());
  relay_s->set_consume(1, true);
  relay_s->set_consume(2, true);
  r->set_switch_weight(a1->self(), 4);
  a1->deploy_source(1);
  a2->deploy_source(2);

  // Poll for both flows clearing the bar instead of betting on one
  // fixed-length nap being enough on a loaded machine.
  EXPECT_TRUE(test::wait_until(
      [&] { return sink1->stats(0).msgs > 100 && sink2->stats(0).msgs > 100; },
      seconds(10.0)));
  a1->stop();
  a2->stop();
  const auto s1 = sink1->stats(0);
  const auto s2 = sink2->stats(0);
  EXPECT_GT(s1.msgs, 100u);
  EXPECT_GT(s2.msgs, 100u);
  EXPECT_EQ(s1.duplicates, 0u);
  EXPECT_EQ(s2.duplicates, 0u);
  a1->join();
  a2->join();
}

TEST(EngineAdvanced, RequestProducesImmediateReport) {
  // kRequest via post() exercises the observer's on-demand status pull.
  auto algorithm = std::make_unique<RecordingRelay>();
  auto* relay = algorithm.get();
  Engine engine(EngineConfig{}, std::move(algorithm));
  ASSERT_TRUE(engine.start());
  engine.post(Msg::control(MsgType::kRequest, NodeId(), kControlApp));
  // The algorithm also sees the request (Table 2 lists it).
  ASSERT_TRUE(wait_until(
      [&] { return relay->count(MsgType::kRequest) == 1; }));
}

TEST(EngineAdvanced, ThroughputReportsReachAlgorithm) {
  auto alg_a = std::make_unique<RecordingRelay>();
  auto* relay_a = alg_a.get();
  EngineConfig fast_reports;
  fast_reports.throughput_interval = millis(100);
  Engine a(fast_reports, std::move(alg_a));
  auto alg_b = std::make_unique<RecordingRelay>();
  Engine b(EngineConfig{}, std::move(alg_b));
  a.register_app(kApp, std::make_shared<BackToBackSource>(kPayload, 500));
  b.register_app(kApp, std::make_shared<SinkApp>());
  ASSERT_TRUE(a.start());
  ASSERT_TRUE(b.start());
  relay_a->add_child(kApp, b.self());
  a.deploy_source(kApp);
  ASSERT_TRUE(wait_until([&] {
    return relay_a->count(MsgType::kDownThroughput) >= 3;
  }));
  // The recorded rate eventually reflects real traffic.
  ASSERT_TRUE(wait_until([&] {
    for (const auto& e : relay_a->events()) {
      if (e.type == MsgType::kDownThroughput && e.p0 > 1000) return true;
    }
    return false;
  }));
}

}  // namespace
}  // namespace iov::engine
