// Structured search on iOverlay: a Chord ring of simulated nodes storing
// and retrieving keys — the "global storage systems that respond to
// queries" application layer of the paper, over the ChordAlgorithm
// prefab.
//
//   $ ./dht_demo [nodes]            (default 12)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <algorithm>
#include <cmath>
#include <vector>

#include "common/strings.h"
#include "dht/chord.h"
#include "sim/sim_net.h"

namespace {
using namespace iov;       // NOLINT
using namespace iov::dht;  // NOLINT
}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::max(1, std::atoi(argv[1])) : 12;

  sim::SimNet net;
  std::vector<sim::SimEngine*> engines;
  std::vector<ChordAlgorithm*> ring;
  for (int i = 0; i < n; ++i) {
    auto algorithm = std::make_unique<ChordAlgorithm>();
    ring.push_back(algorithm.get());
    engines.push_back(&net.add_node(std::move(algorithm),
                                    sim::SimNodeConfig{}));
  }
  net.run_for(millis(10));
  std::printf("joining %d nodes through %s...\n", n,
              engines[0]->self().to_string().c_str());
  for (int i = 1; i < n; ++i) {
    ring[static_cast<std::size_t>(i)]->join(engines[0]->self());
    net.run_for(millis(500));
  }
  net.run_for(seconds(40.0));  // stabilize + fingers

  std::printf("\nring order (by 64-bit id):\n");
  std::vector<std::size_t> order(ring.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ring[a]->id() < ring[b]->id();
  });
  for (const auto i : order) {
    std::printf("  %016llx  %s -> succ %s\n",
                (unsigned long long)ring[i]->id(),
                engines[i]->self().to_string().c_str(),
                ring[i]->successor().to_string().c_str());
  }

  std::printf("\nstoring 30 keys from node 1, reading from node %d...\n",
              n - 1);
  for (int i = 0; i < 30; ++i) {
    ring[1 % ring.size()]->put(strf("user:%d", i), strf("profile-%d", i));
  }
  net.run_for(seconds(3.0));
  for (u32 i = 0; i < 30; ++i) {
    ring.back()->get(strf("user:%u", i), i);
  }
  net.run_for(seconds(3.0));

  std::size_t found = 0;
  for (const auto& r : ring.back()->gets()) found += r.found ? 1 : 0;
  std::printf("retrieved %zu/30 keys\n", found);
  std::printf("key distribution:");
  for (const auto i : order) {
    std::printf(" %zu", ring[i]->stored_keys());
  }
  std::printf("\n");

  // A few lookups to show O(log n) routing.
  Rng rng(3);
  for (u32 request = 0; request < 8; ++request) {
    ring[0]->lookup(rng(), 1000 + request);
  }
  net.run_for(seconds(2.0));
  std::printf("lookup hops from node 0:");
  for (const auto& r : ring[0]->lookups()) std::printf(" %u", r.hops);
  std::printf("  (lg %d = %.1f)\n", n, std::log2(n));
  return 0;
}
