// Network coding on overlay nodes (§3.2) as a runnable demo: builds the
// butterfly topology on the deterministic simulator and shows the
// throughput gain of GF(2^8) coding at the bottleneck node.
//
//   $ ./netcoding_butterfly
#include <cstdio>
#include <memory>

#include "apps/sink.h"
#include "apps/source.h"
#include "coding/coding_algorithm.h"
#include "sim/sim_net.h"

namespace {
using namespace iov;  // NOLINT
using coding::CodingAlgorithm;
constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;
}  // namespace

int main() {
  for (const bool with_coding : {false, true}) {
    sim::SimNet net;
    sim::SimNodeConfig big;
    big.recv_buffer_msgs = 10000;
    big.send_buffer_msgs = 10000;

    struct N {
      sim::SimEngine* engine;
      CodingAlgorithm* alg;
    };
    const auto add = [&] {
      auto algorithm = std::make_unique<CodingAlgorithm>();
      N n{nullptr, algorithm.get()};
      n.engine = &net.add_node(std::move(algorithm), big);
      return n;
    };
    N a = add(), b = add(), c = add(), d = add(), e = add(), f = add(),
      g = add();

    a.engine->register_app(kApp,
                           std::make_shared<apps::BackToBackSource>(kPayload));
    auto sink_f = std::make_shared<apps::SinkApp>(kPayload);
    auto sink_g = std::make_shared<apps::SinkApp>(kPayload);
    f.engine->register_app(kApp, sink_f);
    g.engine->register_app(kApp, sink_g);

    a.engine->bandwidth().set_node_up(400e3);
    d.engine->bandwidth().set_node_up(200e3);

    a.alg->set_source_split(kApp, {b.engine->self(), c.engine->self()});
    b.alg->add_relay(kApp, d.engine->self());
    b.alg->add_relay(kApp, f.engine->self());
    c.alg->add_relay(kApp, d.engine->self());
    c.alg->add_relay(kApp, g.engine->self());
    if (with_coding) {
      d.alg->set_coder(kApp, 2, /*coeffs=*/{1, 1}, {e.engine->self()});
    } else {
      d.alg->add_relay(kApp, e.engine->self());
    }
    e.alg->add_relay(kApp, f.engine->self());
    e.alg->add_relay(kApp, g.engine->self());
    f.alg->set_decoder(kApp, 2, kPayload);
    g.alg->set_decoder(kApp, 2, kPayload);

    net.deploy(a.engine->self(), kApp);
    net.run_for(seconds(10.0));

    const auto f_stats = sink_f->stats(net.now());
    const auto g_stats = sink_g->stats(net.now());
    std::printf("%s coding at D:\n", with_coding ? "WITH a+b" : "without");
    std::printf("  F: %6.1f KB/s effective (%llu msgs, %llu corrupt)\n",
                static_cast<double>(f_stats.bytes) / 10.0 / 1000.0,
                static_cast<unsigned long long>(f_stats.msgs),
                static_cast<unsigned long long>(f_stats.corrupt));
    std::printf("  G: %6.1f KB/s effective (%llu msgs, %llu corrupt)\n\n",
                static_cast<double>(g_stats.bytes) / 10.0 / 1000.0,
                static_cast<unsigned long long>(g_stats.msgs),
                static_cast<unsigned long long>(g_stats.corrupt));
  }
  std::printf(
      "the bottleneck (D's 200 KB/s uplink) carries a+b instead of half of\n"
      "each stream, so both receivers decode the full 400 KB/s session.\n");
  return 0;
}
