// Service federation in a service overlay network (§3.4) as a runnable
// demo: twelve simulated wide-area nodes host services from a six-type
// universe; one DAG requirement is federated with sFlow and a live data
// stream is pushed through the selected instances.
//
//   $ ./federation_demo
#include <cstdio>

#include "federation/scenario.h"

namespace {
using namespace iov;              // NOLINT
using namespace iov::federation;  // NOLINT
}  // namespace

int main() {
  FederationScenarioConfig config;
  config.strategy = FederationStrategy::kSFlow;
  config.nodes = 12;
  config.universe_types = 6;
  config.seed = 2026;
  config.requests = 1;
  config.requirement_length = 5;
  config.allow_branches = true;
  config.tail = seconds(20.0);

  std::printf(
      "federating one complex service across 12 nodes (types 1..6, "
      "sFlow)...\n\n");
  const auto result = run_federation_scenario(config);
  if (result.requests.empty() || !result.requests[0].ok) {
    std::printf("federation failed\n");
    return 1;
  }
  const auto& r = result.requests[0];
  std::printf("selected instances:\n");
  for (const auto& [type, id] : r.mapping) {
    std::printf("  service type %u -> %s\n", type, id.to_string().c_str());
  }
  std::printf("\nlive session measurements over ~20 s:\n");
  std::printf("  end-to-end goodput : %.1f KB/s\n", r.goodput / 1000.0);
  std::printf("  mean data delay    : %.1f ms\n", r.mean_delay_ms);
  std::printf("\ncontrol overhead of the whole run:\n");
  std::printf("  sAware    : %llu bytes\n",
              static_cast<unsigned long long>(result.aware_bytes));
  std::printf("  sFederate : %llu bytes (incl. acks and path installs)\n",
              static_cast<unsigned long long>(result.federate_bytes));
  return 0;
}
