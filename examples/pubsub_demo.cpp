// Content-based networking on iOverlay (§3.1) as a runnable demo: a
// small broker tree where subscribers advertise predicates and a
// publisher's events are routed only toward matching interests.
//
//   $ ./pubsub_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/sink.h"
#include "pubsub/pubsub_algorithm.h"
#include "sim/sim_net.h"

namespace {
using namespace iov;          // NOLINT
using namespace iov::pubsub;  // NOLINT
constexpr u32 kApp = 1;
}  // namespace

int main() {
  sim::SimNet net;
  struct Broker {
    sim::SimEngine* engine;
    PubSubAlgorithm* alg;
    std::shared_ptr<apps::SinkApp> sink;
    const char* name;
  };
  const auto add = [&](const char* name) {
    auto algorithm = std::make_unique<PubSubAlgorithm>(kApp);
    Broker b{nullptr, algorithm.get(), std::make_shared<apps::SinkApp>(),
             name};
    b.engine = &net.add_node(std::move(algorithm), sim::SimNodeConfig{});
    b.engine->register_app(kApp, b.sink);
    return b;
  };
  //            exchange
  //            /      \
  //       traders    analytics
  Broker exchange = add("exchange");
  Broker traders = add("traders");
  Broker analytics = add("analytics");
  const auto connect = [](Broker& a, Broker& b) {
    a.alg->add_neighbor(b.engine->self());
    b.alg->add_neighbor(a.engine->self());
  };
  connect(exchange, traders);
  connect(exchange, analytics);

  traders.alg->subscribe(1, Predicate()
                                .where("symbol", Op::kEq, 7)
                                .where("price", Op::kLt, 100));
  analytics.alg->subscribe(1, Predicate().where("volume", Op::kGt, 5000));
  net.run_for(seconds(1.0));
  std::printf("routing tables: exchange=%zu entries, traders=%zu, "
              "analytics=%zu\n",
              exchange.alg->routing_entries(), traders.alg->routing_entries(),
              analytics.alg->routing_entries());

  struct Tick {
    i64 symbol, price, volume;
  };
  const Tick ticks[] = {
      {7, 95, 100},    // traders only (symbol 7, cheap)
      {7, 120, 9000},  // analytics only (expensive but big volume)
      {3, 50, 12000},  // analytics only
      {7, 90, 8000},   // both
      {3, 42, 10},     // nobody
  };
  for (const auto& t : ticks) {
    exchange.alg->publish(Event()
                              .set("symbol", t.symbol)
                              .set("price", t.price)
                              .set("volume", t.volume));
  }
  net.run_for(seconds(1.0));

  std::printf("published %llu events:\n",
              static_cast<unsigned long long>(exchange.alg->published()));
  std::printf("  traders received   %llu (expect 2)\n",
              static_cast<unsigned long long>(traders.sink->stats(0).msgs));
  std::printf("  analytics received %llu (expect 3)\n",
              static_cast<unsigned long long>(analytics.sink->stats(0).msgs));
  std::printf("  events on the wire %llu (matching routes only)\n",
              static_cast<unsigned long long>(
                  net.accounting().total.count(MsgType::kData)
                      ? net.accounting().total.at(MsgType::kData).msgs
                      : 0));
  return 0;
}
