// Streaming over a chain of virtualized nodes (the paper's §2.4
// workload as a runnable demo): a back-to-back source at one end, a
// measuring sink at the other, live per-second throughput readout, and
// an emulated mid-chain bottleneck tightened at runtime through the
// observer — watch the back-pressure arrive at the source.
//
//   $ ./multicast_chain [nodes]      (default 5)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "algorithm/relay.h"
#include "apps/sink.h"
#include "apps/source.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "observer/observer.h"

namespace {
using namespace iov;  // NOLINT
constexpr u32 kApp = 1;
constexpr std::size_t kPayload = 5000;
}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::max(2, std::atoi(argv[1])) : 5;

  observer::Observer obs{observer::ObserverConfig{}};
  if (!obs.start()) return 1;

  std::vector<std::unique_ptr<engine::Engine>> engines;
  std::vector<RelayAlgorithm*> relays;
  auto sink = std::make_shared<apps::SinkApp>();
  for (int i = 0; i < n; ++i) {
    auto algorithm = std::make_unique<RelayAlgorithm>();
    relays.push_back(algorithm.get());
    engine::EngineConfig config;
    config.observer = obs.address();
    auto node = std::make_unique<engine::Engine>(config, std::move(algorithm));
    if (i == 0) {
      node->register_app(kApp,
                         std::make_shared<apps::BackToBackSource>(kPayload));
    }
    if (i == n - 1) node->register_app(kApp, sink);
    if (!node->start()) return 1;
    engines.push_back(std::move(node));
  }
  for (int i = 0; i + 1 < n; ++i) {
    relays[i]->add_child(kApp, engines[i + 1]->self());
  }
  relays[n - 1]->set_consume(kApp, true);
  engines[0]->deploy_source(kApp);
  std::printf("chain of %d nodes streaming 5 KB messages...\n", n);

  for (int second = 1; second <= 6; ++second) {
    sleep_for(seconds(1.0));
    const auto stats = sink->stats(RealClock::instance().now());
    std::printf("t=%ds  end-to-end %8.2f MB/s  (%llu msgs delivered)\n",
                second, stats.rate_bps / 1e6,
                static_cast<unsigned long long>(stats.msgs));
    if (second == 3) {
      // Emulate a 2 MB/s bottleneck in the middle of the chain, from the
      // observer, while traffic flows.
      const NodeId middle = engines[n / 2]->self();
      obs.set_bandwidth(middle, engine::kBwNodeUp, 2e6);
      std::printf("-- observer capped %s uplink at 2 MB/s --\n",
                  middle.to_string().c_str());
    }
  }

  std::printf("\nfinal topology as the observer sees it:\n%s",
              obs.topology_dot().c_str());
  for (auto& node : engines) node->stop();
  for (auto& node : engines) node->join();
  obs.stop();
  obs.join();
  return 0;
}
