// Quickstart: the minimum an iOverlay application developer writes.
//
// Two virtualized nodes run on this machine over loopback TCP, plus the
// (headless) observer. The algorithm is ~20 lines: a message handler
// that greets back — everything else (sockets, threads, switching,
// bootstrap, reports) is the middleware's job. Per the paper's interface
// claim, the only engine function the algorithm calls is send().
//
//   $ ./quickstart
#include <cstdio>

#include "algorithm/algorithm.h"
#include "common/clock.h"
#include "engine/engine.h"
#include "observer/observer.h"

namespace {

using namespace iov;  // NOLINT

// The application-specific algorithm: on any data message, print it; if
// it is a greeting, reply. Runs single-threaded inside the engine — no
// locks anywhere.
class GreeterAlgorithm : public Algorithm {
 public:
  explicit GreeterAlgorithm(NodeId peer = NodeId()) : peer_(peer) {}

  void on_start() override {
    // Kick things off once the engine is up: say hello if we know whom
    // to greet (timers keep the algorithm purely reactive).
    if (peer_.valid()) engine().set_timer(millis(50), 1);
  }

  void on_timer(i32) override {
    const auto hello =
        Msg::text_msg(MsgType::kData, engine().self(), /*app=*/1, "ping");
    engine().send(hello, peer_);
  }

 protected:
  Disposition on_data(const MsgPtr& m) override {
    std::printf("[%s] got \"%.*s\" from %s\n",
                engine().self().to_string().c_str(),
                static_cast<int>(m->text().size()), m->text().data(),
                m->origin().to_string().c_str());
    if (m->text() == "ping") {
      const auto reply =
          Msg::text_msg(MsgType::kData, engine().self(), m->app(), "pong");
      engine().send(reply, m->origin());
      done_ = true;
    } else if (m->text() == "pong") {
      done_ = true;
    }
    return Disposition::kDone;
  }

 public:
  bool done() const { return done_; }

 private:
  NodeId peer_;
  bool done_ = false;
};

}  // namespace

int main() {
  // A centralized observer for bootstrap/monitoring (optional but
  // standard).
  observer::Observer obs{observer::ObserverConfig{}};
  if (!obs.start()) return 1;

  // Node 1: waits for greetings.
  engine::EngineConfig config;
  config.observer = obs.address();
  auto responder_alg = std::make_unique<GreeterAlgorithm>();
  engine::Engine responder(config, std::move(responder_alg));
  if (!responder.start()) return 1;
  std::printf("responder listening at %s\n",
              responder.self().to_string().c_str());

  // Node 2: greets node 1.
  auto greeter_alg = std::make_unique<GreeterAlgorithm>(responder.self());
  auto* greeter_ptr = greeter_alg.get();
  engine::Engine greeter(config, std::move(greeter_alg));
  if (!greeter.start()) return 1;
  std::printf("greeter running at %s\n", greeter.self().to_string().c_str());

  // Wait for the exchange, then shut everything down gracefully.
  const TimePoint deadline = RealClock::instance().now() + seconds(5.0);
  while (!greeter_ptr->done() && RealClock::instance().now() < deadline) {
    sleep_for(millis(20));
  }
  std::printf("observer saw %zu alive nodes\n", obs.alive_count());

  greeter.stop();
  responder.stop();
  greeter.join();
  responder.join();
  obs.stop();
  obs.join();
  std::printf("done\n");
  return 0;
}
