// Node-stress-aware dissemination trees (§3.3) as a runnable demo:
// receivers join a session one by one and the tree is printed after
// every join — the analogue of the paper's Fig 9(d)-(g) walkthrough.
//
//   $ ./tree_join [receivers]        (default 8)
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "apps/sink.h"
#include "apps/source.h"
#include "common/rng.h"
#include "sim/sim_net.h"
#include "trees/tree_algorithm.h"

namespace {
using namespace iov;         // NOLINT
using namespace iov::trees;  // NOLINT
constexpr u32 kApp = 1;
}  // namespace

int main(int argc, char** argv) {
  const int receivers = argc > 1 ? std::max(1, std::atoi(argv[1])) : 8;

  sim::SimNet net;
  Rng rng(7);
  struct Member {
    sim::SimEngine* engine;
    TreeAlgorithm* alg;
    double bw;
  };
  std::vector<Member> members;
  const auto add = [&](double bw) {
    auto algorithm =
        std::make_unique<TreeAlgorithm>(TreeStrategy::kNsAware, bw);
    Member m{nullptr, algorithm.get(), bw};
    sim::SimNodeConfig config;
    config.bandwidth.node_up = bw;
    m.engine = &net.add_node(std::move(algorithm), config);
    return m;
  };

  members.push_back(add(100e3));  // the source, 100 KB/s last mile
  Member& source = members.front();
  source.engine->register_app(
      kApp, std::make_shared<apps::CbrSource>(1000, 100e3));
  members.reserve(receivers + 1);
  for (int i = 0; i < receivers; ++i) {
    members.push_back(add(rng.uniform(50e3, 200e3)));
    members.back().engine->register_app(kApp,
                                        std::make_shared<apps::SinkApp>());
  }
  for (const auto& m : members) net.bootstrap(m.engine->self(), 8);
  const std::string announce = members[0].engine->self().to_string();
  for (const auto& m : members) {
    net.post(m.engine->self(),
             Msg::control(MsgType::kSAnnounce, NodeId(), kControlApp,
                          static_cast<i32>(kApp), 0, announce));
  }
  net.deploy(members[0].engine->self(), kApp);
  net.run_for(millis(200));

  for (int i = 1; i <= receivers; ++i) {
    net.join_app(members[static_cast<std::size_t>(i)].engine->self(), kApp);
    net.run_for(seconds(2.0));
    std::printf("after join %d (last mile %.0f KB/s):\n", i,
                members[static_cast<std::size_t>(i)].bw / 1000.0);
    for (const auto& m : members) {
      if (!m.alg->in_tree(kApp)) continue;
      const auto parent = m.alg->parent(kApp);
      std::printf("  %-18s degree=%zu stress=%.2f%s%s\n",
                  m.engine->self().to_string().c_str(), m.alg->degree(kApp),
                  m.alg->node_stress(kApp),
                  parent ? (" parent=" + parent->to_string()).c_str() : "",
                  m.engine == members[0].engine ? "  [source]" : "");
    }
  }
  return 0;
}
