// Delay-sensitive media streaming over iOverlay (the §4 MPEG-4 claim as
// a runnable demo): a GOP-structured 25 fps stream crosses a relay whose
// uplink the "operator" throttles mid-session; playout continuity at the
// receiver tells the story.
//
//   $ ./streaming_demo
#include <cstdio>
#include <memory>

#include "algorithm/relay.h"
#include "apps/streaming.h"
#include "sim/sim_net.h"

namespace {
using namespace iov;  // NOLINT
constexpr u32 kApp = 1;
}  // namespace

int main() {
  sim::SimNet net;
  auto alg_a = std::make_unique<RelayAlgorithm>();
  auto alg_b = std::make_unique<RelayAlgorithm>();
  auto alg_c = std::make_unique<RelayAlgorithm>();
  auto* relay_a = alg_a.get();
  auto* relay_b = alg_b.get();
  auto* relay_c = alg_c.get();
  sim::SimNodeConfig small;  // strict latency => small buffers (§2.4)
  small.recv_buffer_msgs = 5;
  small.send_buffer_msgs = 5;
  auto& a = net.add_node(std::move(alg_a), small);
  auto& b = net.add_node(std::move(alg_b), small);
  auto& c = net.add_node(std::move(alg_c), small);

  auto source = std::make_shared<apps::VideoSource>(
      25.0, /*gop=*/10, /*iframe=*/20000, /*pframe=*/6000);
  auto sink = std::make_shared<apps::PlayoutSink>(25.0, millis(500));
  a.register_app(kApp, source);
  c.register_app(kApp, sink);
  relay_a->add_child(kApp, b.self());
  relay_b->add_child(kApp, c.self());
  relay_c->set_consume(kApp, true);

  std::printf("streaming %.0f KB/s video through relay %s...\n",
              source->mean_bitrate() / 1000.0, b.self().to_string().c_str());
  net.deploy(a.self(), kApp);

  const auto report = [&](const char* phase) {
    const auto s = sink->stats(net.now());
    std::printf(
        "%-34s on-time %5.1f%%  late %llu  missing %llu  delay %.0f ms\n",
        phase, s.on_time_ratio(net.now()) * 100.0,
        static_cast<unsigned long long>(s.late),
        static_cast<unsigned long long>(s.missing(net.now())),
        s.mean_delay_ms);
  };

  net.run_for(seconds(10.0));
  report("clean path, 10 s:");

  b.bandwidth().set_node_up(100e3);  // below the ~194 KB/s bitrate
  net.run_for(seconds(10.0));
  report("relay capped to 100 KB/s, +10 s:");

  b.bandwidth().set_node_up(0);  // bottleneck relieved
  net.run_for(seconds(10.0));
  report("bottleneck relieved, +10 s:");

  std::printf(
      "\n(the on-time ratio collapses while the relay cannot carry the\n"
      "bitrate and stops degrading once the operator lifts the cap —\n"
      "frames lost to the congested period are gone for good, as a\n"
      "delay-sensitive application would experience.)\n");
  return 0;
}
