#include "message/slab_pool.h"

#include <cassert>

namespace iov {

namespace {

// Smallest power of two >= n, starting at kMinSlabBytes.
std::size_t round_up_class(std::size_t n) {
  std::size_t c = SlabPool::kMinSlabBytes;
  std::size_t idx = 0;
  while (c < n) {
    c <<= 1;
    ++idx;
  }
  return idx;
}

}  // namespace

std::size_t SlabPool::class_for(std::size_t n) {
  assert(n <= kMaxSlabBytes && "request exceeds the largest slab class");
  const std::size_t idx = round_up_class(n);
  return idx < kClasses ? idx : kClasses - 1;
}

std::size_t SlabPool::class_bytes(std::size_t idx) {
  return kMinSlabBytes << idx;
}

SlabPool::SlabPool() : core_(std::make_shared<Core>()) {
  static_assert((kMinSlabBytes << (kClasses - 1)) == kMaxSlabBytes,
                "class ladder must end exactly at kMaxSlabBytes");
}

void SlabPool::set_metrics(obs::Counter* hits, obs::Counter* misses,
                           obs::Gauge* free_bytes) {
  core_->hit_counter.store(hits, std::memory_order_relaxed);
  core_->miss_counter.store(misses, std::memory_order_relaxed);
  core_->free_gauge.store(free_bytes, std::memory_order_relaxed);
}

SlabPtr SlabPool::acquire(std::size_t n) {
  const std::size_t idx = class_for(n);
  Core::ClassList& cl = core_->classes[idx];
  std::unique_ptr<Slab> slab;
  {
    std::lock_guard<std::mutex> lock(cl.mu);
    if (!cl.free.empty()) {
      slab = std::move(cl.free.back());
      cl.free.pop_back();
    }
  }
  if (slab) {
    core_->hits.fetch_add(1, std::memory_order_relaxed);
    if (auto* c = core_->hit_counter.load(std::memory_order_relaxed)) {
      c->inc();
    }
    const std::size_t fb = core_->free_bytes.fetch_sub(
        slab->capacity(), std::memory_order_relaxed);
    if (auto* g = core_->free_gauge.load(std::memory_order_relaxed)) {
      g->set(static_cast<i64>(fb - slab->capacity()));
    }
  } else {
    slab = std::make_unique<Slab>(class_bytes(idx), idx);
    core_->misses.fetch_add(1, std::memory_order_relaxed);
    if (auto* c = core_->miss_counter.load(std::memory_order_relaxed)) {
      c->inc();
    }
  }
  // The deleter owns a reference to the core, so releasing a slab after
  // the SlabPool object is destroyed still finds the freelists alive.
  auto core = core_;
  return SlabPtr(slab.release(), [core](Slab* raw) {
    core->release(std::unique_ptr<Slab>(raw));
  });
}

void SlabPool::Core::release(std::unique_ptr<Slab> slab) {
  ClassList& cl = classes[slab->class_idx()];
  const std::size_t cap = slab->capacity();
  {
    std::lock_guard<std::mutex> lock(cl.mu);
    if (cl.free.size() >= kMaxFreePerClass) return;  // unlock, then free
    cl.free.push_back(std::move(slab));
  }
  const std::size_t fb =
      free_bytes.fetch_add(cap, std::memory_order_relaxed) + cap;
  if (auto* g = free_gauge.load(std::memory_order_relaxed)) {
    g->set(static_cast<i64>(fb));
  }
}

}  // namespace iov
