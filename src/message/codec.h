// Header serialization for the 24-byte wire header (paper Fig. 3) plus
// the primitive big-endian read/write helpers every protocol payload
// encoder in this repo uses.
#pragma once

#include <array>
#include <cstring>
#include <optional>

#include "common/node_id.h"
#include "common/types.h"
#include "message/msg.h"

namespace iov::codec {

// --- Primitive big-endian accessors ----------------------------------------

inline void write_u32(u8* p, u32 v) {
  p[0] = static_cast<u8>(v >> 24);
  p[1] = static_cast<u8>(v >> 16);
  p[2] = static_cast<u8>(v >> 8);
  p[3] = static_cast<u8>(v);
}

inline u32 read_u32(const u8* p) {
  return (static_cast<u32>(p[0]) << 24) | (static_cast<u32>(p[1]) << 16) |
         (static_cast<u32>(p[2]) << 8) | static_cast<u32>(p[3]);
}

inline void write_u64(u8* p, u64 v) {
  write_u32(p, static_cast<u32>(v >> 32));
  write_u32(p + 4, static_cast<u32>(v));
}

inline u64 read_u64(const u8* p) {
  return (static_cast<u64>(read_u32(p)) << 32) | read_u32(p + 4);
}

// --- The fixed message header ----------------------------------------------

/// Decoded form of the 24-byte header.
struct Header {
  MsgType type = MsgType::kInvalid;
  NodeId origin;
  u32 app = 0;
  u32 seq = 0;
  u32 payload_size = 0;
};

using HeaderBytes = std::array<u8, Msg::kHeaderSize>;

/// Serializes `m`'s header.
HeaderBytes encode_header(const Msg& m);

/// Serializes a header from parts (used by the framing layer when the
/// payload is streamed separately).
HeaderBytes encode_header(const Header& h);

/// Parses a header; returns nullopt if the payload size exceeds
/// Msg::kMaxPayload (a corrupt or hostile frame).
std::optional<Header> decode_header(const u8* bytes);

}  // namespace iov::codec
