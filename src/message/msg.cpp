#include "message/msg.h"

#include "common/strings.h"
#include "message/codec.h"

namespace iov {

i32 Msg::param(int i) const {
  const std::size_t off = static_cast<std::size_t>(i) * 4;
  if (i < 0 || i > 1 || payload_->size() < off + 4) return 0;
  return static_cast<i32>(codec::read_u32(payload_->data() + off));
}

std::string_view Msg::param_text() const {
  if (payload_->size() <= 8) return {};
  const auto full = payload_->view();
  return full.substr(8);
}

MsgPtr Msg::control(MsgType type, NodeId origin, u32 app, i32 p0, i32 p1,
                    std::string_view text) {
  std::vector<u8> bytes(8 + text.size());
  codec::write_u32(bytes.data(), static_cast<u32>(p0));
  codec::write_u32(bytes.data() + 4, static_cast<u32>(p1));
  if (!text.empty()) std::memcpy(bytes.data() + 8, text.data(), text.size());
  return std::make_shared<Msg>(type, origin, app, 0,
                               Buffer::wrap(std::move(bytes)));
}

std::string Msg::describe() const {
  return strf("%s{origin=%s app=%u seq=%u payload=%zuB}",
              msg_type_name(type_), origin_.to_string().c_str(), app_, seq_,
              payload_size());
}

}  // namespace iov
