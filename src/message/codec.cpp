#include "message/codec.h"

namespace iov::codec {

HeaderBytes encode_header(const Header& h) {
  HeaderBytes out{};
  write_u32(out.data(), to_wire(h.type));
  write_u32(out.data() + 4, h.origin.ip());
  write_u32(out.data() + 8, h.origin.port());
  write_u32(out.data() + 12, h.app);
  write_u32(out.data() + 16, h.seq);
  write_u32(out.data() + 20, h.payload_size);
  return out;
}

HeaderBytes encode_header(const Msg& m) {
  Header h;
  h.type = m.type();
  h.origin = m.origin();
  h.app = m.app();
  h.seq = m.seq();
  h.payload_size = static_cast<u32>(m.payload_size());
  return encode_header(h);
}

std::optional<Header> decode_header(const u8* bytes) {
  Header h;
  h.type = from_wire(read_u32(bytes));
  const u32 ip = read_u32(bytes + 4);
  const u32 port = read_u32(bytes + 8);
  if (port > 0xffff) return std::nullopt;
  h.origin = NodeId(ip, static_cast<u16>(port));
  h.app = read_u32(bytes + 12);
  h.seq = read_u32(bytes + 16);
  h.payload_size = read_u32(bytes + 20);
  if (h.payload_size > Msg::kMaxPayload) return std::nullopt;
  return h;
}

}  // namespace iov::codec
