// Recycled, size-classed payload slabs (DESIGN.md §8).
//
// The large-frame receive path needs a payload-sized destination buffer
// per message; allocating one from the heap costs an allocation plus a
// full zero-fill of the payload (std::vector value-initializes), which
// is what made the 64 KB wire tier copy- and allocation-bound. A
// SlabPool keeps freelists of recycled byte slabs in power-of-two size
// classes: the steady state acquires a warm slab (no allocation, no
// zeroing, the previous payload's bytes are simply overwritten by the
// next recv) and releases it back to the freelist when the last
// reference drops.
//
// A slab is handed out as a SlabPtr (shared_ptr with a pool-returning
// deleter), so it can be threaded straight into Buffer::slice as the
// keep-alive owner: the payload travels zero-copy through the switch to
// every downstream link, and the slab rejoins the freelist exactly when
// the last BufferPtr releases it — from whichever thread that happens
// on. Slabs may outlive the pool: the deleter shares ownership of the
// pool core, so releases after the pool is destroyed simply free.
//
// Locking: one mutex per size class, held only for a freelist push/pop
// (no allocation under the lock on the hit path). Hit/miss counts are
// relaxed atomics, optionally mirrored into obs::Counter handles so the
// engine can publish them (iov_pool_slab_acquires_total).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "common/types.h"
#include "obs/metrics.h"

namespace iov {

/// A recycled byte slab. Capacity is fixed at the slab's size class;
/// the bytes are whatever the previous user left (never zeroed on
/// reuse) — callers overwrite before reading.
class Slab {
 public:
  explicit Slab(std::size_t capacity, std::size_t class_idx)
      : bytes_(capacity), class_idx_(class_idx) {}

  u8* data() { return bytes_.data(); }
  const u8* data() const { return bytes_.data(); }
  std::size_t capacity() const { return bytes_.size(); }
  std::size_t class_idx() const { return class_idx_; }

 private:
  std::vector<u8> bytes_;
  std::size_t class_idx_;
};

using SlabPtr = std::shared_ptr<Slab>;

class SlabPool {
 public:
  /// Smallest slab handed out; requests below round up to this.
  static constexpr std::size_t kMinSlabBytes = 4 * 1024;
  /// Largest slab class; must cover Msg::kMaxPayload (16 MB).
  static constexpr std::size_t kMaxSlabBytes = 16 * 1024 * 1024;
  /// Power-of-two classes from kMinSlabBytes to kMaxSlabBytes.
  static constexpr std::size_t kClasses = 13;
  /// Free slabs retained per class; releases beyond this cap free the
  /// slab instead of hoarding it (bounds idle memory at
  /// sum(class_size * kMaxFreePerClass), dominated by what the workload
  /// actually cycles).
  static constexpr std::size_t kMaxFreePerClass = 32;

  SlabPool();

  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  /// A slab with capacity >= n (n <= kMaxSlabBytes; larger requests are
  /// a programming error and assert). The slab returns to the pool when
  /// the last SlabPtr copy — including copies held as Buffer::slice
  /// owners — is released. Thread safe.
  SlabPtr acquire(std::size_t n);

  /// Acquires recycled / freshly allocated, respectively.
  u64 hits() const { return core_->hits.load(std::memory_order_relaxed); }
  u64 misses() const {
    return core_->misses.load(std::memory_order_relaxed);
  }

  /// Bytes currently parked on the freelists.
  std::size_t free_bytes() const {
    return core_->free_bytes.load(std::memory_order_relaxed);
  }

  /// Mirrors hit/miss/free-bytes into registry handles (all optional;
  /// pass nullptr to skip). The handles must outlive the pool *and*
  /// every outstanding slab.
  void set_metrics(obs::Counter* hits, obs::Counter* misses,
                   obs::Gauge* free_bytes);

  /// The size class index serving a request of `n` bytes.
  static std::size_t class_for(std::size_t n);
  /// Slab capacity of class `idx`.
  static std::size_t class_bytes(std::size_t idx);

 private:
  // Shared with every outstanding slab's deleter, so a slab released
  // after the pool is gone still has a freelist (or frees cleanly once
  // the last deleter drops the core).
  struct Core {
    struct ClassList {
      std::mutex mu;
      std::vector<std::unique_ptr<Slab>> free;
    };
    std::array<ClassList, kClasses> classes;
    std::atomic<u64> hits{0};
    std::atomic<u64> misses{0};
    std::atomic<std::size_t> free_bytes{0};
    std::atomic<obs::Counter*> hit_counter{nullptr};
    std::atomic<obs::Counter*> miss_counter{nullptr};
    std::atomic<obs::Gauge*> free_gauge{nullptr};

    void release(std::unique_ptr<Slab> slab);
  };

  std::shared_ptr<Core> core_;
};

}  // namespace iov
