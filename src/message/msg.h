// The application-layer message (paper Fig. 3).
//
// Wire layout — a fixed 24-byte header followed by the payload:
//
//     message type            4 bytes
//     original sender IP      4 bytes   (host byte order on the wire is
//     original sender port    4 bytes    big-endian; port uses the low 16
//     application identifier  4 bytes    bits of its field)
//     sequence number         4 bytes   (the only modifiable field)
//     size of the payload     4 bytes
//     payload                 `payload size` bytes
//
// A Msg's content is "mostly immutable, initialized at the time of
// construction" (§2.2): everything except the sequence number is fixed.
// The payload is shared by reference (see buffer.h) so that forwarding a
// message to n downstream nodes performs zero payload copies.
//
// Ownership (§2.3): algorithms never destruct messages. MsgPtr is a
// shared_ptr, so "the engine is responsible for destruction" falls out of
// reference counting — the last holder (a sender thread, usually) frees
// it. Algorithms may re-`send()` a *data* message they received; for any
// other type they must clone() first, which Engine::send enforces in
// debug builds.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <string_view>

#include "common/node_id.h"
#include "common/types.h"
#include "message/buffer.h"
#include "message/types.h"

namespace iov {

class Msg;
using MsgPtr = std::shared_ptr<Msg>;

/// Application identifier 0 is reserved for the middleware's own control
/// plane (observer, engine notifications).
constexpr u32 kControlApp = 0;

class Msg {
 public:
  /// Fixed header length on the wire.
  static constexpr std::size_t kHeaderSize = 24;

  /// Largest payload the framing layer will accept (defensive bound; the
  /// paper's messages are a few KB).
  static constexpr std::size_t kMaxPayload = 16 * 1024 * 1024;

  Msg(MsgType type, NodeId origin, u32 app, u32 seq, BufferPtr payload)
      : type_(type),
        origin_(origin),
        app_(app),
        seq_(seq),
        payload_(payload ? std::move(payload) : Buffer::empty_buffer()) {}

  MsgType type() const { return type_; }
  /// The original sender — *not* the previous hop; it is preserved
  /// verbatim as the message is switched across the overlay.
  NodeId origin() const { return origin_; }
  /// The application session this message belongs to.
  u32 app() const { return app_; }

  u32 seq() const { return seq_; }
  /// The sequence number is the single mutable header field (Fig. 3).
  void set_seq(u32 seq) { seq_ = seq; }

  const BufferPtr& payload() const { return payload_; }
  std::size_t payload_size() const { return payload_->size(); }
  /// Total bytes this message occupies on the wire.
  std::size_t wire_size() const { return kHeaderSize + payload_->size(); }

  /// Payload interpreted as text.
  std::string_view text() const { return payload_->view(); }

  /// Deep-copies the header, shares the payload. This is the clone §2.3
  /// requires before re-sending a non-data message.
  MsgPtr clone() const { return std::make_shared<Msg>(*this); }

  /// Clone with a different payload (for transformation services).
  MsgPtr clone_with_payload(BufferPtr payload) const {
    return std::make_shared<Msg>(type_, origin_, app_, seq_,
                                 std::move(payload));
  }

  // --- Control-parameter convention ---------------------------------------
  // The observer can send algorithm-specific control messages carrying
  // "two optional integer parameters" (paper §2.2). The paper embeds them
  // in its (larger) header; we keep the 24-byte header of Fig. 3 intact
  // and carry the two parameters as the first 8 payload bytes of control
  // messages, big-endian. Everything downstream only uses the accessors
  // below, so the placement is an implementation detail.

  /// Parameter `i` (0 or 1) of a control-style message; 0 if absent.
  i32 param(int i) const;

  /// Text following the two integer parameters (control messages may carry
  /// an argument string, e.g. a NodeId for kSJoin).
  std::string_view param_text() const;

  // --- Factories -----------------------------------------------------------

  /// A data message.
  static MsgPtr data(NodeId origin, u32 app, u32 seq, BufferPtr payload) {
    return std::make_shared<Msg>(MsgType::kData, origin, app, seq,
                                 std::move(payload));
  }

  /// A control-style message carrying two integer parameters and an
  /// optional text argument.
  static MsgPtr control(MsgType type, NodeId origin, u32 app, i32 p0 = 0,
                        i32 p1 = 0, std::string_view text = {});

  /// A message whose payload is a plain string (trace, report, ...).
  static MsgPtr text_msg(MsgType type, NodeId origin, u32 app,
                         std::string_view body) {
    return std::make_shared<Msg>(type, origin, app, 0,
                                 Buffer::from_string(body));
  }

  /// Debug rendering for logs.
  std::string describe() const;

 private:
  MsgType type_;
  NodeId origin_;
  u32 app_;
  u32 seq_;
  BufferPtr payload_;
};

}  // namespace iov
