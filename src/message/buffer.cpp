#include "message/buffer.h"

namespace iov {

std::vector<u8> Buffer::pattern_bytes(std::size_t n, u32 seed) {
  std::vector<u8> bytes(n);
  u32 x = seed * 0x9e3779b9u + 0x85ebca6bu;
  for (std::size_t i = 0; i < n; ++i) {
    // xorshift32 keeps the pattern cheap yet position dependent.
    x ^= x << 13;
    x ^= x >> 17;
    x ^= x << 5;
    bytes[i] = static_cast<u8>(x);
  }
  return bytes;
}

BufferPtr Buffer::pattern(std::size_t n, u32 seed) {
  return wrap(pattern_bytes(n, seed));
}

BufferPtr Buffer::slice(std::shared_ptr<const void> owner, const u8* data,
                        std::size_t n) {
  if (n == 0) return empty_buffer();
  auto out = std::make_shared<Buffer>();
  out->owner_ = std::move(owner);
  out->data_ = data;
  out->size_ = n;
  return out;
}

BufferPtr Buffer::empty_buffer() {
  static const BufferPtr kEmpty = std::make_shared<const Buffer>();
  return kEmpty;
}

}  // namespace iov
