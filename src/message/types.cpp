#include "message/types.h"

namespace iov {

const char* msg_type_name(MsgType t) {
  switch (t) {
    case MsgType::kInvalid: return "invalid";
    case MsgType::kData: return "data";
    case MsgType::kBoot: return "boot";
    case MsgType::kBootReply: return "bootReply";
    case MsgType::kRequest: return "request";
    case MsgType::kReport: return "report";
    case MsgType::kTrace: return "trace";
    case MsgType::kSDeploy: return "sDeploy";
    case MsgType::kSTerminate: return "sTerminate";
    case MsgType::kSJoin: return "sJoin";
    case MsgType::kSLeave: return "sLeave";
    case MsgType::kTerminateNode: return "terminateNode";
    case MsgType::kSetBandwidth: return "setBandwidth";
    case MsgType::kControl: return "control";
    case MsgType::kSAnnounce: return "sAnnounce";
    case MsgType::kSeverLink: return "severLink";
    case MsgType::kSetLoss: return "setLoss";
    case MsgType::kBrokenSource: return "BrokenSource";
    case MsgType::kBrokenLink: return "BrokenLink";
    case MsgType::kUpThroughput: return "UpThroughput";
    case MsgType::kDownThroughput: return "DownThroughput";
    case MsgType::kTimer: return "timer";
    case MsgType::kPeerFailed: return "peerFailed";
    case MsgType::kSendFailed: return "sendFailed";
    case MsgType::kPing: return "ping";
    case MsgType::kPong: return "pong";
    case MsgType::kFirstUserType: break;
  }
  return "user";
}

}  // namespace iov
