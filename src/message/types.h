// Message-type registry.
//
// Every application-layer message in iOverlay carries a 4-byte type in its
// header, and the whole middleware is message driven: the engine and the
// observer communicate with algorithms exclusively by producing messages of
// well-known types, and algorithms are switch statements over these types
// (paper §2.3, Table 2).
//
// The numeric space is partitioned:
//   [0x0000, 0x00ff]  engine & transport plumbing
//   [0x0100, 0x01ff]  observer control plane
//   [0x0200, 0x02ff]  engine -> algorithm notifications (QoS, failures)
//   [0x0300, ...)     algorithm-specific types (kFirstUserType), e.g. the
//                     tree-construction and service-federation protocols.
#pragma once

#include "common/types.h"

namespace iov {

enum class MsgType : u32 {
  kInvalid = 0,

  // --- Application data ---------------------------------------------------
  /// An application data message; the only type an algorithm *must* handle.
  kData = 0x0001,

  // --- Bootstrap / observer plane ------------------------------------------
  /// Node -> observer: request to join the network (paper type `boot`).
  kBoot = 0x0100,
  /// Observer -> node: random subset of alive nodes (bootstrap reply).
  kBootReply = 0x0101,
  /// Observer -> node: request for a status update (paper type `request`).
  kRequest = 0x0102,
  /// Node -> observer: periodic status update (buffer lengths, QoS
  /// measurements, upstream/downstream lists).
  kReport = 0x0103,
  /// Node -> observer: free-form debugging/trace record, logged centrally.
  kTrace = 0x0104,
  /// Observer -> node: deploy an application data source (paper `sDeploy`).
  kSDeploy = 0x0105,
  /// Observer -> node: terminate an application data source (`sTerminate`).
  kSTerminate = 0x0106,
  /// Observer -> node: join a particular application session (`sJoin`).
  kSJoin = 0x0107,
  /// Observer -> node: leave a particular application session (`sLeave`).
  kSLeave = 0x0108,
  /// Observer -> node: terminate this node entirely and exit gracefully.
  kTerminateNode = 0x0109,
  /// Observer -> node: update emulated bandwidth. Params select the scope
  /// (per-node total / uplink / downlink / per-link) and the rate.
  kSetBandwidth = 0x010a,
  /// Observer -> node: algorithm-specific control with two integer
  /// parameters (paper §2.2, "the observer is also able to send new types
  /// of algorithm-specific control messages ... with two optional integer
  /// parameters").
  kControl = 0x010b,
  /// Observer -> node: announce the data source of a session (`sAnnounce`).
  kSAnnounce = 0x010c,
  /// Observer -> node: tear down the link to the peer named in the text
  /// argument as if it had failed (fault injection; the peer perceives
  /// the TCP EOF and runs the same non-deliberate failure path).
  kSeverLink = 0x010d,
  /// Observer -> node: set the emulated message-loss probability towards
  /// the peer named in the text argument; param0 carries the probability
  /// in parts per million (fault injection).
  kSetLoss = 0x010e,

  // --- Engine -> algorithm notifications -----------------------------------
  /// The application source at the origin of this message has failed; clear
  /// internal state (paper type `BrokenSource`, the Domino effect carrier).
  kBrokenSource = 0x0200,
  /// A directly connected peer link failed or was torn down. The origin
  /// field names the lost peer.
  kBrokenLink = 0x0201,
  /// Periodic throughput measurement from an upstream link (paper type
  /// `UpThroughput`); param0 carries bytes/s.
  kUpThroughput = 0x0202,
  /// Periodic throughput measurement to a downstream link; param0 carries
  /// bytes/s.
  kDownThroughput = 0x0203,
  /// A timer previously scheduled by the algorithm fired; param0 carries
  /// the algorithm-chosen timer id.
  kTimer = 0x0204,
  /// Engine-internal: a receiver thread detected a failed upstream. Never
  /// delivered to algorithms; the engine converts it to kBrokenLink /
  /// kBrokenSource after teardown.
  kPeerFailed = 0x0205,
  /// Engine-internal: a sender connection reported a write failure.
  kSendFailed = 0x0206,
  /// Round-trip latency probe and its echo.
  kPing = 0x0207,
  kPong = 0x0208,

  // --- First identifier available to algorithm protocols -------------------
  kFirstUserType = 0x0300,
};

constexpr u32 to_wire(MsgType t) { return static_cast<u32>(t); }
constexpr MsgType from_wire(u32 v) { return static_cast<MsgType>(v); }

/// Human-readable name for logs and the observer's trace files; returns
/// "user(0xNNN)" style names for algorithm-specific types.
const char* msg_type_name(MsgType t);

/// True for types originated by the observer's control plane.
constexpr bool is_observer_type(MsgType t) {
  return to_wire(t) >= 0x0100 && to_wire(t) <= 0x01ff;
}

/// True for engine-internal types that must never reach an algorithm.
constexpr bool is_engine_internal(MsgType t) {
  return t == MsgType::kPeerFailed || t == MsgType::kSendFailed;
}

}  // namespace iov
