// Immutable, reference-counted payload storage.
//
// This is the heart of the paper's "zero copying of messages" property
// (§2.2): a payload is allocated once when a message enters the node (or
// is produced by the application) and only its reference travels from the
// receiving socket, through the engine switch, to every outgoing socket.
// Copy-on-write never happens implicitly; algorithms that need a mutable
// payload must clone explicitly (Msg::clone_with_payload).
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace iov {

class Buffer;
using BufferPtr = std::shared_ptr<const Buffer>;

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<u8> bytes) : bytes_(std::move(bytes)) {}

  const u8* data() const { return bytes_.data(); }
  std::size_t size() const { return bytes_.size(); }
  bool empty() const { return bytes_.empty(); }

  /// Payload viewed as text (used by trace and report messages).
  std::string_view view() const {
    return {reinterpret_cast<const char*>(bytes_.data()), bytes_.size()};
  }

  const std::vector<u8>& bytes() const { return bytes_; }

  /// Wraps a byte vector (moved) without copying.
  static BufferPtr wrap(std::vector<u8> bytes) {
    return std::make_shared<const Buffer>(std::move(bytes));
  }

  /// Copies raw memory into a fresh buffer.
  static BufferPtr copy(const void* data, std::size_t n) {
    std::vector<u8> bytes(n);
    if (n > 0) std::memcpy(bytes.data(), data, n);
    return wrap(std::move(bytes));
  }

  /// Copies a string payload.
  static BufferPtr from_string(std::string_view s) {
    return copy(s.data(), s.size());
  }

  /// A buffer of `n` bytes filled with a deterministic pattern derived
  /// from `seed`; the apps module uses this for payload integrity checks.
  static BufferPtr pattern(std::size_t n, u32 seed);

  /// The shared empty buffer.
  static BufferPtr empty_buffer();

 private:
  std::vector<u8> bytes_;
};

}  // namespace iov
