// Immutable, reference-counted payload storage.
//
// This is the heart of the paper's "zero copying of messages" property
// (§2.2): a payload is allocated once when a message enters the node (or
// is produced by the application) and only its reference travels from the
// receiving socket, through the engine switch, to every outgoing socket.
// Copy-on-write never happens implicitly; algorithms that need a mutable
// payload must clone explicitly (Msg::clone_with_payload).
//
// A Buffer either owns its bytes (a vector) or is a *slice*: a view into
// storage kept alive by a shared owner. Slices are how the bulk frame
// decoder (net::FrameReader) hands out many payloads from one recv'd
// chunk without a per-message allocation — the chunk stays alive until
// the last slice referencing it is released.
#pragma once

#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace iov {

class Buffer;
using BufferPtr = std::shared_ptr<const Buffer>;

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<u8> bytes)
      : bytes_(std::move(bytes)), data_(bytes_.data()), size_(bytes_.size()) {}

  Buffer(const Buffer& other) { assign(other); }
  Buffer& operator=(const Buffer& other) {
    if (this != &other) assign(other);
    return *this;
  }

  // Without these, every Buffer "move" silently fell back to the copy
  // constructor above — a deep copy of the payload vector.
  Buffer(Buffer&& other) noexcept { steal(std::move(other)); }
  Buffer& operator=(Buffer&& other) noexcept {
    if (this != &other) steal(std::move(other));
    return *this;
  }

  const u8* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Payload viewed as text (used by trace and report messages).
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }

  /// The payload as an owned vector — always the viewed bytes, for
  /// vector-backed buffers and slices alike. (This used to return a
  /// reference to the owned storage, which is silently *empty* for a
  /// slice; every caller now gets the bytes it can see via data().)
  std::vector<u8> bytes() const { return {data_, data_ + size_}; }

  /// True when this buffer is a view into externally owned storage.
  bool is_slice() const { return owner_ != nullptr; }

  /// Wraps a byte vector (moved) without copying.
  static BufferPtr wrap(std::vector<u8> bytes) {
    return std::make_shared<const Buffer>(std::move(bytes));
  }

  /// Copies raw memory into a fresh buffer.
  static BufferPtr copy(const void* data, std::size_t n) {
    std::vector<u8> bytes(n);
    if (n > 0) std::memcpy(bytes.data(), data, n);
    return wrap(std::move(bytes));
  }

  /// Copies a string payload.
  static BufferPtr from_string(std::string_view s) {
    return copy(s.data(), s.size());
  }

  /// A zero-copy view of `n` bytes at `data`, keeping `owner` alive for
  /// the buffer's lifetime. `data` must point into storage owned (directly
  /// or transitively) by `owner` and must stay immutable.
  static BufferPtr slice(std::shared_ptr<const void> owner, const u8* data,
                         std::size_t n);

  /// A buffer of `n` bytes filled with a deterministic pattern derived
  /// from `seed`; the apps module uses this for payload integrity checks.
  static BufferPtr pattern(std::size_t n, u32 seed);

  /// The same pattern as a plain vector, for callers that stamp extra
  /// fields into the bytes before wrapping (avoids pattern() + a deep
  /// copy of the freshly built buffer).
  static std::vector<u8> pattern_bytes(std::size_t n, u32 seed);

  /// The shared empty buffer.
  static BufferPtr empty_buffer();

 private:
  void assign(const Buffer& other) {
    bytes_ = other.bytes_;
    owner_ = other.owner_;
    data_ = owner_ ? other.data_ : bytes_.data();
    size_ = other.size_;
  }

  void steal(Buffer&& other) noexcept {
    bytes_ = std::move(other.bytes_);
    owner_ = std::move(other.owner_);
    // A moved vector keeps its allocation, but recompute data_ anyway so
    // an empty (inline) vector can't leave a dangling pointer.
    data_ = owner_ ? other.data_ : bytes_.data();
    size_ = other.size_;
    other.bytes_.clear();
    other.owner_ = nullptr;
    other.data_ = nullptr;
    other.size_ = 0;
  }

  std::vector<u8> bytes_;              ///< owned storage (empty for slices)
  std::shared_ptr<const void> owner_;  ///< keepalive for sliced storage
  const u8* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace iov
