// The observer — iOverlay's centralized monitoring, debugging and control
// authority (paper §2.2, "The observer and its proxy").
//
// The paper's observer is a Windows/C# GUI; its *protocol* roles are what
// algorithms and engines depend on, and this class implements all of them
// headlessly (the substitution is documented in DESIGN.md):
//
//   * bootstrap: replies to kBoot with a random subset of alive nodes;
//   * monitoring: collects periodic kReport status updates (buffer
//     lengths, QoS measurements, upstream/downstream lists) and exposes
//     them programmatically (the GUI's topology map becomes the
//     `topology_dot()` dump);
//   * control panel: deploys applications, makes nodes join/leave
//     sessions, terminates sources and nodes, adjusts emulated
//     bandwidth at runtime, and sends arbitrary algorithm-specific
//     control messages with two integer parameters;
//   * trace sink: records the content of kTrace messages centrally.
//
// Each node holds one persistent control connection to the observer
// (dialed at engine start); the observer writes commands down the same
// connection the node reports on.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/node_id.h"
#include "common/rng.h"
#include "engine/report.h"
#include "net/framing.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace iov::observer {

struct ObserverConfig {
  /// Listening port; 0 picks an ephemeral port.
  u16 port = 0;
  bool loopback_only = true;
  /// "The number of initial nodes in such a subset is configurable."
  std::size_t bootstrap_subset = 8;
  /// Path of the trace log file; empty keeps traces in memory only.
  std::string trace_path;
  u64 seed = 42;
};

struct TraceRecord {
  TimePoint at = 0;
  NodeId node;
  std::string text;
};

class Observer {
 public:
  explicit Observer(ObserverConfig config);
  ~Observer();

  Observer(const Observer&) = delete;
  Observer& operator=(const Observer&) = delete;

  /// Binds the port and spawns the observer thread.
  bool start();
  void stop();
  void join();

  /// Address nodes should be configured with (EngineConfig::observer).
  NodeId address() const { return self_; }

  // --- Monitoring (thread safe) ----------------------------------------------

  struct NodeInfo {
    NodeId id;
    bool alive = false;
    TimePoint booted_at = 0;
    TimePoint last_seen = 0;
    std::optional<engine::NodeReport> last_report;
    /// Parsed from the v2 `metrics=` report line; absent for v1 nodes.
    std::optional<obs::MetricsSnapshot> last_metrics;
  };

  std::vector<NodeInfo> nodes() const;
  std::optional<NodeInfo> node(const NodeId& id) const;
  std::size_t alive_count() const;

  /// All traces collected so far (also mirrored to trace_path if set).
  std::vector<TraceRecord> traces() const;

  /// Graphviz rendering of the current overlay topology as reported by the
  /// nodes (each node's downstream list becomes directed edges) — the
  /// headless stand-in for the paper's live topology map (Fig. 2/10).
  std::string topology_dot() const;

  // --- Metrics aggregation (thread safe, docs/METRICS.md) ----------------------

  /// Merge of every node's latest metrics snapshot (each sample labeled
  /// `node=<id>`) plus the observer's own registry (`node=observer`).
  obs::MetricsSnapshot metrics_snapshot() const;

  /// Prometheus text exposition of metrics_snapshot().
  std::string prometheus_text() const { return metrics_snapshot().to_prometheus(); }

  /// JSON array dump of metrics_snapshot().
  std::string metrics_json() const { return metrics_snapshot().to_json(); }

  /// CSV dump of metrics_snapshot().
  std::string metrics_csv() const { return metrics_snapshot().to_csv(); }

  /// The observer's own registry (report/trace/boot counts, report RTT).
  obs::MetricsRegistry& metrics() { return metrics_; }

  // --- Control panel (thread safe) ---------------------------------------------

  /// Sends an arbitrary control message to `node`. Returns false if the
  /// node has no live connection.
  bool send_control(const NodeId& node, MsgType type, i32 p0 = 0, i32 p1 = 0,
                    std::string_view text = {});

  /// Deploys the application data source for session `app` on `node`.
  bool deploy(const NodeId& node, u32 app) {
    return send_control(node, MsgType::kSDeploy, static_cast<i32>(app));
  }

  /// Terminates the data source of `app` on `node`.
  bool terminate_source(const NodeId& node, u32 app) {
    return send_control(node, MsgType::kSTerminate, static_cast<i32>(app));
  }

  /// Asks `node` to join session `app` (arg is algorithm-specific).
  bool join_app(const NodeId& node, u32 app, std::string_view arg = {}) {
    return send_control(node, MsgType::kSJoin, static_cast<i32>(app), 0, arg);
  }

  bool leave_app(const NodeId& node, u32 app) {
    return send_control(node, MsgType::kSLeave, static_cast<i32>(app));
  }

  /// Terminates `node` entirely ("the observer may choose to terminate a
  /// node at will").
  bool terminate_node(const NodeId& node) {
    return send_control(node, MsgType::kTerminateNode);
  }

  /// Fault injection: tears down the node↔peer link as if it had failed;
  /// both ends run the non-deliberate failure path (kBrokenLink, Domino).
  bool sever_link(const NodeId& node, const NodeId& peer) {
    return send_control(node, MsgType::kSeverLink, 0, 0, peer.to_string());
  }

  /// Fault injection: sets the emulated message-loss probability on
  /// `node`'s sender side towards `peer` (0 disables).
  bool set_loss(const NodeId& node, const NodeId& peer, double probability) {
    if (probability < 0.0) probability = 0.0;
    if (probability > 1.0) probability = 1.0;
    return send_control(node, MsgType::kSetLoss,
                        static_cast<i32>(probability * 1e6), 0,
                        peer.to_string());
  }

  /// Runtime bandwidth emulation control; `scope` is a
  /// engine::BandwidthScope, rate in bytes/second, `peer` only for the
  /// link scopes.
  bool set_bandwidth(const NodeId& node, i32 scope, double bytes_per_sec,
                     const NodeId& peer = NodeId());

  /// Announces session `app`'s data source to `node` (paper type
  /// sAnnounce; the tree algorithms use it to learn the session root).
  bool announce(const NodeId& node, u32 app, const NodeId& source) {
    return send_control(node, MsgType::kSAnnounce, static_cast<i32>(app), 0,
                        source.to_string());
  }

  /// Requests an immediate status report from `node`; the next kReport
  /// from it closes the round-trip for iov_observer_report_rtt_seconds.
  bool request_report(const NodeId& node);

 private:
  struct Conn {
    NodeId node;
    TcpConn conn;
  };

  void observer_main();
  void handle_accept();
  void handle_msg(Conn& c, const MsgPtr& m);
  void mark_dead(const NodeId& node);

  ObserverConfig config_;
  Rng rng_;
  NodeId self_;
  TcpListener listener_;

  // Observability: registry first, cached handles after (reference
  // members — declaration order fixes ctor init order).
  obs::MetricsRegistry metrics_;
  obs::Counter& boots_seen_;
  obs::Counter& reports_seen_;
  obs::Counter& malformed_reports_;
  obs::Counter& traces_seen_;
  obs::Histogram& report_rtt_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::map<NodeId, NodeInfo> nodes_;
  std::vector<TraceRecord> traces_;
  std::map<NodeId, TimePoint> pending_requests_;  ///< kRequest sent, no reply

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace iov::observer
