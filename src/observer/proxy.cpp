#include "observer/proxy.h"

#include <poll.h>

#include "common/clock.h"
#include "common/logging.h"

namespace iov::observer {

namespace {
constexpr Duration kPollTimeout = millis(50);
constexpr Duration kHelloTimeout = seconds(1.0);
constexpr Duration kConnectTimeout = millis(500);
}  // namespace

Proxy::Proxy(ProxyConfig config) : config_(std::move(config)) {}

Proxy::~Proxy() {
  stop();
  join();
}

bool Proxy::start() {
  suppress_sigpipe();
  auto listener = TcpListener::listen(config_.port, config_.loopback_only);
  if (!listener) return false;
  listener_ = std::move(*listener);
  self_ = NodeId::loopback(listener_.port());
  thread_ = std::thread([this] { proxy_main(); });
  return true;
}

void Proxy::stop() { stop_requested_.store(true, std::memory_order_release); }

void Proxy::join() {
  if (thread_.joinable()) thread_.join();
}

void Proxy::proxy_main() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& conn : inbound_) {
      fds.push_back({conn->fd(), POLLIN, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(kPollTimeout / kNanosPerMilli));
    if (rc <= 0) continue;

    std::vector<std::size_t> dead;
    for (std::size_t i = 0; i < inbound_.size(); ++i) {
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP))) continue;
      if (MsgPtr m = read_msg(*inbound_[i])) {
        if (relay(m)) relayed_.fetch_add(1, std::memory_order_relaxed);
      } else {
        dead.push_back(i);
      }
    }
    for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
      inbound_.erase(inbound_.begin() + static_cast<std::ptrdiff_t>(*it));
    }

    if (fds[0].revents & POLLIN) handle_accept();
  }
  listener_.close();
  inbound_.clear();
  if (upstream_) upstream_->close();
}

void Proxy::handle_accept() {
  while (auto conn = listener_.accept()) {
    if (!wait_readable(conn->fd(), kHelloTimeout)) continue;
    const auto hello = read_hello(*conn);
    if (!hello || hello->kind != ConnKind::kControl) continue;
    inbound_.push_back(std::make_unique<TcpConn>(std::move(*conn)));
  }
}

bool Proxy::relay(const MsgPtr& m) {
  for (int attempt = 0; attempt < 2; ++attempt) {
    if (!upstream_) {
      auto conn = TcpConn::connect(config_.observer, kConnectTimeout);
      if (!conn) return false;
      if (!write_hello(*conn, Hello{ConnKind::kControl, self_})) return false;
      upstream_ = std::move(*conn);
    }
    if (write_msg(*upstream_, *m)) return true;
    upstream_.reset();  // broken: redial once
  }
  return false;
}

}  // namespace iov::observer
