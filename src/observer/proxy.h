// The observer's report proxy (paper §2.2): a UNIX-side relay that
// fans in status updates from many overlay nodes and forwards them to
// the observer over a single connection, working around desktop-side
// connection-backlog limits and firewalls ("the status updates from
// overlay nodes are submitted to the proxy, who relay them with a single
// connection to the observer").
//
// The relay is one-directional by design — reports, traces and other
// node-originated updates flow node -> proxy -> observer; bootstrap and
// control-panel traffic uses each node's direct observer connection.
// Message origin fields identify the reporting node, so the observer
// needs no unwrapping.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/node_id.h"
#include "net/framing.h"
#include "net/socket.h"

namespace iov::observer {

struct ProxyConfig {
  u16 port = 0;  ///< 0 picks an ephemeral port
  bool loopback_only = true;
  NodeId observer;  ///< upstream observer to relay to
};

class Proxy {
 public:
  explicit Proxy(ProxyConfig config);
  ~Proxy();

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  bool start();
  void stop();
  void join();

  /// Address nodes should use as their report sink
  /// (EngineConfig::report_proxy).
  NodeId address() const { return self_; }

  /// Messages relayed so far (for tests).
  u64 relayed() const { return relayed_.load(std::memory_order_relaxed); }

 private:
  void proxy_main();
  void handle_accept();
  bool relay(const MsgPtr& m);

  ProxyConfig config_;
  NodeId self_;
  TcpListener listener_;
  std::vector<std::unique_ptr<TcpConn>> inbound_;
  std::optional<TcpConn> upstream_;
  std::atomic<u64> relayed_{0};

  std::thread thread_;
  std::atomic<bool> stop_requested_{false};
};

}  // namespace iov::observer
