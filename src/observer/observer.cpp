#include "observer/observer.h"

#include <poll.h>

#include <cstdio>
#include <fstream>

#include "common/clock.h"
#include "common/logging.h"
#include "common/strings.h"
#include "obs/metric_names.h"

namespace iov::observer {

namespace {
constexpr Duration kPollTimeout = millis(50);
constexpr Duration kHelloTimeout = seconds(1.0);
}  // namespace

Observer::Observer(ObserverConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      boots_seen_(metrics_.counter(obs::names::kObserverBootsTotal)),
      reports_seen_(metrics_.counter(obs::names::kObserverReportsTotal)),
      malformed_reports_(
          metrics_.counter(obs::names::kObserverMalformedReportsTotal)),
      traces_seen_(metrics_.counter(obs::names::kObserverTracesTotal)),
      report_rtt_(
          metrics_.histogram(obs::names::kObserverReportRttSeconds)) {}

Observer::~Observer() {
  stop();
  join();
}

bool Observer::start() {
  suppress_sigpipe();
  auto listener = TcpListener::listen(config_.port, config_.loopback_only);
  if (!listener) return false;
  listener_ = std::move(*listener);
  self_ = NodeId::loopback(listener_.port());
  thread_ = std::thread([this] { observer_main(); });
  return true;
}

void Observer::stop() { stop_requested_.store(true, std::memory_order_release); }

void Observer::join() {
  if (thread_.joinable()) thread_.join();
}

void Observer::observer_main() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    std::vector<pollfd> fds;
    std::vector<Conn*> polled;
    fds.push_back({listener_.fd(), POLLIN, 0});
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& c : conns_) {
        fds.push_back({c->conn.fd(), POLLIN, 0});
        polled.push_back(c.get());
      }
    }

    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(kPollTimeout / kNanosPerMilli));
    if (rc <= 0) continue;

    // Process existing connections before accepting new ones: a
    // reconnect in handle_accept() erases the stale Conn the `polled`
    // snapshot still points at.
    std::vector<NodeId> dead;
    for (std::size_t i = 0; i < polled.size(); ++i) {
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP))) continue;
      if (MsgPtr m = read_msg(polled[i]->conn)) {
        handle_msg(*polled[i], m);
      } else {
        dead.push_back(polled[i]->node);
      }
    }
    for (const auto& node : dead) mark_dead(node);

    if (fds[0].revents & POLLIN) handle_accept();
  }
  listener_.close();
  std::lock_guard<std::mutex> lock(mu_);
  conns_.clear();
}

void Observer::handle_accept() {
  while (auto conn = listener_.accept()) {
    if (!wait_readable(conn->fd(), kHelloTimeout)) continue;
    const auto hello = read_hello(*conn);
    if (!hello || hello->kind != ConnKind::kControl) continue;
    auto entry = std::make_unique<Conn>();
    entry->node = hello->sender;
    entry->conn = std::move(*conn);
    std::lock_guard<std::mutex> lock(mu_);
    // A reconnecting node replaces its stale connection.
    std::erase_if(conns_,
                  [&](const auto& c) { return c->node == hello->sender; });
    conns_.push_back(std::move(entry));
  }
}

void Observer::handle_msg(Conn& c, const MsgPtr& m) {
  const TimePoint t = RealClock::instance().now();
  switch (m->type()) {
    case MsgType::kBoot: {
      boots_seen_.inc();
      std::string subset;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto& info = nodes_[m->origin()];
        info.id = m->origin();
        info.alive = true;
        info.booted_at = t;
        info.last_seen = t;

        // "responding to any bootstrap requests with a random subset of
        // existing nodes that are alive" (§2.2).
        std::vector<NodeId> alive;
        for (const auto& [id, n] : nodes_) {
          if (n.alive && id != m->origin()) alive.push_back(id);
        }
        for (const auto& id : rng_.sample(alive, config_.bootstrap_subset)) {
          if (!subset.empty()) subset += ',';
          subset += id.to_string();
        }
      }
      const auto reply = Msg::control(MsgType::kBootReply, self_, kControlApp,
                                      0, 0, subset);
      std::lock_guard<std::mutex> lock(mu_);
      if (!write_msg(c.conn, *reply)) {
        IOV_LOG_WARN("observer") << "bootstrap reply to "
                                 << m->origin().to_string() << " failed";
      }
      return;
    }

    case MsgType::kReport: {
      reports_seen_.inc();
      auto report = engine::NodeReport::parse(m->text());
      if (!report) malformed_reports_.inc();

      // A v2 report carries a single-line metrics snapshot; a v1 report
      // (or a v2 line that fails to parse) leaves last_metrics untouched.
      std::optional<obs::MetricsSnapshot> snap;
      if (report && !report->metrics_wire.empty()) {
        obs::MetricsSnapshot parsed;
        if (obs::MetricsSnapshot::parse(report->metrics_wire, &parsed)) {
          snap = std::move(parsed);
        } else {
          malformed_reports_.inc();
        }
      }

      std::lock_guard<std::mutex> lock(mu_);
      auto& info = nodes_[m->origin()];
      info.id = m->origin();
      info.alive = true;
      info.last_seen = t;
      if (report) info.last_report = std::move(*report);
      if (snap) info.last_metrics = std::move(*snap);
      const auto pending = pending_requests_.find(m->origin());
      if (pending != pending_requests_.end()) {
        report_rtt_.observe_duration(t - pending->second);
        pending_requests_.erase(pending);
      }
      return;
    }

    case MsgType::kTrace: {
      traces_seen_.inc();
      TraceRecord record{t, m->origin(), std::string(m->text())};
      std::lock_guard<std::mutex> lock(mu_);
      if (!config_.trace_path.empty()) {
        std::ofstream out(config_.trace_path, std::ios::app);
        out << strf("[%12.6f] %s ", to_seconds(t),
                    record.node.to_string().c_str())
            << record.text << '\n';
      }
      traces_.push_back(std::move(record));
      return;
    }

    default:
      IOV_LOG_DEBUG("observer")
          << "unexpected message " << m->describe() << " from "
          << m->origin().to_string();
      return;
  }
}

void Observer::mark_dead(const NodeId& node) {
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(conns_, [&](const auto& c) { return c->node == node; });
  const auto it = nodes_.find(node);
  if (it != nodes_.end()) it->second.alive = false;
}

std::vector<Observer::NodeInfo> Observer::nodes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<NodeInfo> out;
  out.reserve(nodes_.size());
  for (const auto& [id, info] : nodes_) out.push_back(info);
  return out;
}

std::optional<Observer::NodeInfo> Observer::node(const NodeId& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) return std::nullopt;
  return it->second;
}

std::size_t Observer::alive_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& [id, info] : nodes_) n += info.alive ? 1 : 0;
  return n;
}

std::vector<TraceRecord> Observer::traces() const {
  std::lock_guard<std::mutex> lock(mu_);
  return traces_;
}

std::string Observer::topology_dot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "digraph overlay {\n";
  for (const auto& [id, info] : nodes_) {
    out += strf("  \"%s\" [style=%s];\n", id.to_string().c_str(),
                info.alive ? "solid" : "dashed");
    if (!info.last_report) continue;
    for (const auto& down : info.last_report->downstreams) {
      out += strf("  \"%s\" -> \"%s\" [label=\"%.1f KB/s\"];\n",
                  id.to_string().c_str(), down.peer.to_string().c_str(),
                  down.rate_bps / 1000.0);
    }
  }
  out += "}\n";
  return out;
}

obs::MetricsSnapshot Observer::metrics_snapshot() const {
  obs::MetricsSnapshot own = metrics_.snapshot();
  own.add_label("node", "observer");
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, info] : nodes_) {
    if (!info.last_metrics) continue;
    obs::MetricsSnapshot node_snap = *info.last_metrics;
    node_snap.add_label("node", id.to_string());
    own.merge(node_snap);
  }
  return own;
}

bool Observer::request_report(const NodeId& node) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Keep the earliest outstanding request so overlapping requests do
    // not shrink the measured round-trip.
    pending_requests_.try_emplace(node, RealClock::instance().now());
  }
  return send_control(node, MsgType::kRequest);
}

bool Observer::send_control(const NodeId& node, MsgType type, i32 p0, i32 p1,
                            std::string_view text) {
  const auto m = Msg::control(type, self_, kControlApp, p0, p1, text);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : conns_) {
    if (c->node == node) return write_msg(c->conn, *m);
  }
  return false;
}

bool Observer::set_bandwidth(const NodeId& node, i32 scope,
                             double bytes_per_sec, const NodeId& peer) {
  return send_control(node, MsgType::kSetBandwidth, scope,
                      static_cast<i32>(bytes_per_sec),
                      peer.valid() ? peer.to_string() : std::string());
}

}  // namespace iov::observer
