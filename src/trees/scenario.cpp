#include "trees/scenario.h"

#include "apps/sink.h"
#include "apps/source.h"
#include "common/strings.h"
#include "sim/sim_net.h"

namespace iov::trees {

namespace {

struct Participant {
  sim::SimEngine* engine = nullptr;
  TreeAlgorithm* algorithm = nullptr;
  std::shared_ptr<apps::SinkApp> sink;
  double last_mile = 0.0;
};

}  // namespace

std::vector<const TreeNodeResult*> TreeExperimentResult::receivers() const {
  std::vector<const TreeNodeResult*> out;
  for (std::size_t i = 1; i < nodes.size(); ++i) out.push_back(&nodes[i]);
  return out;
}

double TreeExperimentResult::mean_receiver_goodput() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto* r : receivers()) {
    sum += r->goodput;
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double TreeExperimentResult::attach_rate() const {
  std::size_t attached = 0;
  std::size_t n = 0;
  for (const auto* r : receivers()) {
    attached += r->in_tree ? 1 : 0;
    ++n;
  }
  return n > 0 ? static_cast<double>(attached) / static_cast<double>(n) : 0.0;
}

TreeExperimentResult run_tree_experiment(const TreeExperimentConfig& config) {
  sim::SimNet::Config net_config;
  net_config.seed = config.seed;
  sim::SimNet net(net_config);

  // Build the source and receivers. Each node's emulated uplink cap is
  // its last-mile bandwidth — "the 'last-mile' available bandwidth on
  // overlay nodes is the bottleneck" (§3.3).
  std::vector<Participant> participants;
  const auto add = [&](double last_mile) {
    auto algorithm =
        std::make_unique<TreeAlgorithm>(config.strategy, last_mile);
    Participant p;
    p.algorithm = algorithm.get();
    p.last_mile = last_mile;
    sim::SimNodeConfig node_config;
    node_config.bandwidth.node_up = last_mile;
    p.engine = &net.add_node(std::move(algorithm), node_config);
    return p;
  };

  participants.reserve(config.receiver_bandwidth.size() + 1);
  participants.push_back(add(config.source_bandwidth));
  participants.front().engine->register_app(
      config.app, std::make_shared<apps::CbrSource>(config.payload_bytes,
                                                    config.source_bandwidth));
  for (const double bw : config.receiver_bandwidth) {
    Participant p = add(bw);
    p.sink = std::make_shared<apps::SinkApp>();
    p.engine->register_app(config.app, p.sink);
    participants.push_back(std::move(p));
  }
  const Participant& source = participants.front();

  // Bootstrap membership, announce the source, deploy it.
  for (const auto& p : participants) {
    net.bootstrap(p.engine->self(), config.bootstrap_subset);
  }
  const std::string source_id = source.engine->self().to_string();
  for (const auto& p : participants) {
    net.post(p.engine->self(),
             Msg::control(MsgType::kSAnnounce, NodeId(), kControlApp,
                          static_cast<i32>(config.app), 0, source_id));
  }
  net.deploy(source.engine->self(), config.app);
  net.run_for(millis(100));

  // Receivers join one at a time, as in the paper's Fig 9 walkthrough.
  for (std::size_t i = 1; i < participants.size(); ++i) {
    net.join_app(participants[i].engine->self(), config.app);
    net.run_for(config.join_spacing);
  }
  net.run_for(config.settle);

  // Measurement window.
  std::vector<u64> bytes_before(participants.size(), 0);
  for (std::size_t i = 1; i < participants.size(); ++i) {
    bytes_before[i] = participants[i].sink->stats(net.now()).bytes;
  }
  net.run_for(config.measure);

  TreeExperimentResult result;
  for (std::size_t i = 0; i < participants.size(); ++i) {
    const Participant& p = participants[i];
    TreeNodeResult r;
    r.id = p.engine->self();
    r.last_mile = p.last_mile;
    r.is_source = (i == 0);
    r.in_tree = p.algorithm->in_tree(config.app);
    r.degree = p.algorithm->degree(config.app);
    r.stress = p.algorithm->node_stress(config.app);
    if (i > 0) {
      r.goodput = static_cast<double>(p.sink->stats(net.now()).bytes -
                                      bytes_before[i]) /
                  to_seconds(config.measure);
      if (const auto parent = p.algorithm->parent(config.app)) {
        r.parent = *parent;
      }
    }
    result.nodes.push_back(r);
  }

  // Topology dump (the Fig 12/13 stand-in).
  std::string dot = "digraph tree {\n";
  dot += strf("  \"%s\" [shape=box];\n", source_id.c_str());
  for (std::size_t i = 1; i < result.nodes.size(); ++i) {
    const auto& r = result.nodes[i];
    if (r.parent.valid()) {
      dot += strf("  \"%s\" -> \"%s\";\n", r.parent.to_string().c_str(),
                  r.id.to_string().c_str());
    }
  }
  dot += "}\n";
  result.dot = std::move(dot);
  return result;
}

}  // namespace iov::trees
