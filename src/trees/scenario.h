// Reusable driver for the §3.3 tree-construction experiments on the
// simulated substrate: builds a session with per-node last-mile
// bandwidth, joins receivers on a schedule, streams data, and collects
// the quantities the paper reports (per-receiver end-to-end throughput,
// node degree, node stress, and the resulting topology).
//
// Used by both the test suite and the Fig 9 / Table 3 / Fig 11-13 bench
// harnesses.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "trees/tree_algorithm.h"

namespace iov::trees {

struct TreeExperimentConfig {
  TreeStrategy strategy = TreeStrategy::kNsAware;
  u32 app = 1;
  std::size_t payload_bytes = 1000;
  /// Source last-mile bandwidth, bytes/second.
  double source_bandwidth = 100e3;
  /// One entry per receiver, bytes/second; receivers join in this order.
  std::vector<double> receiver_bandwidth;
  u64 seed = 1;
  /// Virtual time between successive joins.
  Duration join_spacing = seconds(2.0);
  /// Extra settling time after the last join before measurement starts.
  Duration settle = seconds(3.0);
  /// Measurement window.
  Duration measure = seconds(15.0);
  /// Bootstrap subset size handed to every node.
  std::size_t bootstrap_subset = 8;
};

struct TreeNodeResult {
  NodeId id;
  double last_mile = 0.0;     // bytes/second
  bool is_source = false;
  bool in_tree = false;
  std::size_t degree = 0;
  double stress = 0.0;        // 1/(100 KB/s) units, as in Table 3
  double goodput = 0.0;       // bytes/second over the measurement window
  NodeId parent;              // invalid for the source / unattached
};

struct TreeExperimentResult {
  std::vector<TreeNodeResult> nodes;  // [0] is the source
  /// Graphviz rendering of the final tree (Fig 12/13 stand-in).
  std::string dot;

  const TreeNodeResult& source() const { return nodes.front(); }
  std::vector<const TreeNodeResult*> receivers() const;
  double mean_receiver_goodput() const;
  /// Fraction of receivers attached to the tree at measurement time.
  double attach_rate() const;
};

TreeExperimentResult run_tree_experiment(const TreeExperimentConfig& config);

}  // namespace iov::trees
