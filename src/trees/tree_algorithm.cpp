#include "trees/tree_algorithm.h"

#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace iov::trees {

namespace {

constexpr i32 kStressTimer = 100;
constexpr Duration kStressPeriod = millis(500);
constexpr i32 kInitialQueryTtl = 16;

std::set<NodeId> parse_visited(std::string_view text) {
  std::set<NodeId> out;
  for (const auto& entry : split(text, ',')) {
    if (const auto id = NodeId::parse(trim(entry))) out.insert(*id);
  }
  return out;
}

std::string append_visited(std::string_view text, const NodeId& self) {
  std::string out(text);
  if (!out.empty()) out += ',';
  out += self.to_string();
  return out;
}

}  // namespace

const char* strategy_name(TreeStrategy s) {
  switch (s) {
    case TreeStrategy::kAllUnicast: return "unicast";
    case TreeStrategy::kRandomized: return "random";
    case TreeStrategy::kNsAware: return "ns-aware";
  }
  return "?";
}

TreeAlgorithm::TreeAlgorithm(TreeStrategy strategy,
                             double last_mile_bytes_per_sec)
    : strategy_(strategy), last_mile_(last_mile_bytes_per_sec) {}

void TreeAlgorithm::on_start() {
  engine().set_timer(kStressPeriod, kStressTimer);
}

std::size_t TreeAlgorithm::degree(u32 app) const {
  const auto it = sessions_.find(app);
  if (it == sessions_.end()) return 0;
  return it->second.children.size() + (it->second.parent ? 1 : 0);
}

double TreeAlgorithm::node_stress(u32 app) const {
  if (last_mile_ <= 0.0) return 0.0;
  return static_cast<double>(degree(app)) / (last_mile_ / 100e3);
}

std::optional<NodeId> TreeAlgorithm::parent(u32 app) const {
  const auto it = sessions_.find(app);
  return it == sessions_.end() ? std::nullopt : it->second.parent;
}

std::vector<NodeId> TreeAlgorithm::children(u32 app) const {
  const auto it = sessions_.find(app);
  if (it == sessions_.end()) return {};
  return {it->second.children.begin(), it->second.children.end()};
}

bool TreeAlgorithm::in_tree(u32 app) const {
  const auto it = sessions_.find(app);
  return it != sessions_.end() && it->second.in_tree;
}

void TreeAlgorithm::on_deploy(u32 app) {
  Session& s = session(app);
  s.in_tree = true;
  s.is_source = true;
  s.source = engine().self();
}

void TreeAlgorithm::on_announce(u32 app, std::string_view source) {
  if (const auto id = NodeId::parse(trim(source))) session(app).source = *id;
}

void TreeAlgorithm::on_join(u32 app, std::string_view arg) {
  Session& s = session(app);
  s.consume = true;
  if (s.in_tree) return;
  s.join_pending = true;
  s.join_hint = std::string(trim(arg));
  send_join_queries(app, s);
}

void TreeAlgorithm::send_join_queries(u32 app, Session& s) {
  const auto query = [&](const NodeId& target) {
    auto m = Msg::control(kSQuery, engine().self(), app, kInitialQueryTtl, 0,
                          engine().self().to_string());
    engine().send(m, target);
  };
  if (const auto hint = NodeId::parse(s.join_hint)) {
    query(*hint);
    return;
  }
  // No hint: disseminate the query to a few known hosts (§3.3 "locates a
  // node that is currently in the tree by using one of the utility
  // functions supported in iOverlay, which disseminates a sQuery").
  for (const auto& host : known_hosts().sample(3, engine().rng())) {
    query(host);
  }
}

Disposition TreeAlgorithm::on_data(const MsgPtr& m) {
  Session& s = session(m->app());
  // Loop/duplicate guard: per-source data seqs are monotone down a tree,
  // so a non-increasing seq means this message already passed through
  // here — it came around a cycle created by an unlucky rejoin (attaching
  // into one's own subtree) or from a stale extra parent. Forwarding it
  // again would circulate it forever.
  const auto [it, first] = s.last_data_seq.try_emplace(m->origin(), m->seq());
  if (!first) {
    if (m->seq() <= it->second) return Disposition::kDone;
    it->second = m->seq();
  }
  s.last_data_at = engine().now();
  if (s.consume) engine().deliver_local(m);
  for (const auto& child : s.children) engine().send(m, child);
  return Disposition::kDone;
}

Disposition TreeAlgorithm::on_user(const MsgPtr& m) {
  switch (m->type()) {
    case kSQuery: handle_query(m); break;
    case kSQueryAck: handle_query_ack(m); break;
    case kSAttach: handle_attach(m); break;
    case kSStress: handle_stress(m); break;
    case kSPrune: handle_prune(m); break;
    default: break;
  }
  return Disposition::kDone;
}

void TreeAlgorithm::handle_query(const MsgPtr& m) {
  const u32 app = m->app();
  const NodeId joiner = m->origin();
  Session& s = session(app);
  const auto visited = parse_visited(m->param_text());
  const i32 ttl = m->param(0) - 1;

  if (!s.in_tree) {
    // Not in the tree: relay toward somebody who might be.
    if (ttl <= 0) return;
    for (const auto& host : known_hosts().sample(8, engine().rng())) {
      if (visited.count(host) == 0 && host != joiner) {
        engine().send(
            Msg::control(kSQuery, joiner, app, ttl, 0,
                         append_visited(m->param_text(), engine().self())),
            host);
        return;
      }
    }
    return;
  }

  switch (strategy_) {
    case TreeStrategy::kAllUnicast: {
      // Forward to the data source, which accepts everyone (§3.3: "node B
      // simply forwards the sQuery to the data source of the session").
      if (s.is_source || !s.source.valid() ||
          visited.count(s.source) > 0 || ttl <= 0) {
        accept_joiner(app, joiner);
      } else {
        engine().send(
            Msg::control(kSQuery, joiner, app, ttl, 0,
                         append_visited(m->param_text(), engine().self())),
            s.source);
      }
      return;
    }
    case TreeStrategy::kRandomized:
      // First in-tree node acknowledges directly.
      accept_joiner(app, joiner);
      return;
    case TreeStrategy::kNsAware:
      if (ttl <= 0) {
        accept_joiner(app, joiner);
        return;
      }
      route_query_ns_aware(s, app, joiner, visited, m->param_text());
      return;
  }
}

void TreeAlgorithm::route_query_ns_aware(Session& s, u32 app,
                                         const NodeId& joiner,
                                         const std::set<NodeId>& visited,
                                         std::string_view visited_text) {
  // Compare own stress against tree neighbours; accept at a local
  // minimum, otherwise forward to the minimum-stress neighbour.
  const double own = node_stress(app);
  NodeId best;
  double best_stress = std::numeric_limits<double>::infinity();
  const auto consider = [&](const NodeId& neighbor) {
    if (neighbor == joiner || visited.count(neighbor) > 0) return;
    const auto it = s.neighbor_stress.find(neighbor);
    // A neighbour we have no measurement for cannot be preferred.
    if (it == s.neighbor_stress.end()) return;
    if (it->second < best_stress) {
      best_stress = it->second;
      best = neighbor;
    }
  };
  if (s.parent) consider(*s.parent);
  for (const auto& child : s.children) consider(child);

  if (!best.valid() || own <= best_stress) {
    accept_joiner(app, joiner);
    return;
  }
  const i32 ttl = kInitialQueryTtl;  // bounded by the visited list instead
  engine().send(Msg::control(kSQuery, joiner, app, ttl, 0,
                             append_visited(visited_text, engine().self())),
                best);
}

void TreeAlgorithm::accept_joiner(u32 app, const NodeId& joiner) {
  if (joiner == engine().self()) return;
  engine().send(Msg::control(kSQueryAck, engine().self(), app), joiner);
}

void TreeAlgorithm::handle_query_ack(const MsgPtr& m) {
  Session& s = session(m->app());
  if (s.in_tree) return;  // keep the first acknowledgment only
  s.parent = m->origin();
  s.in_tree = true;
  s.join_pending = false;
  s.last_data_at = engine().now();  // fresh starvation grace period
  engine().send(Msg::control(kSAttach, engine().self(), m->app()),
                m->origin());
}

void TreeAlgorithm::handle_attach(const MsgPtr& m) {
  Session& s = session(m->app());
  if (!s.in_tree) return;
  s.children.insert(m->origin());
  s.child_seen[m->origin()] = engine().now();
}

void TreeAlgorithm::handle_stress(const MsgPtr& m) {
  session(m->app()).neighbor_stress[m->origin()] =
      static_cast<double>(m->param(0)) / 1e6;
}

void TreeAlgorithm::handle_prune(const MsgPtr& m) {
  Session& s = session(m->app());
  s.children.erase(m->origin());
  s.child_seen.erase(m->origin());
  s.neighbor_stress.erase(m->origin());
}

void TreeAlgorithm::reaffirm_and_expire_children() {
  const TimePoint now = engine().now();
  const Duration lease = 4 * kStressPeriod;
  for (auto& [app, s] : sessions_) {
    // Children re-affirm their attachment every stress period (sAttach is
    // idempotent at the parent), and parents expire children that have
    // gone quiet for a full lease. This is classic soft state: a child
    // that re-parented without managing to prune us — or whose prune was
    // lost — stops being fed after the lease instead of receiving a
    // stale forwarded stream forever.
    if (s.in_tree && !s.is_source && s.parent) {
      engine().send(Msg::control(kSAttach, engine().self(), app), *s.parent);
    }
    for (auto it = s.children.begin(); it != s.children.end();) {
      const auto seen = s.child_seen.find(*it);
      if (seen == s.child_seen.end()) {
        s.child_seen[*it] = now;  // grace for a child added out-of-band
        ++it;
      } else if (now - seen->second > lease) {
        s.neighbor_stress.erase(*it);
        s.child_seen.erase(seen);
        it = s.children.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void TreeAlgorithm::self_heal_starved_sessions() {
  if (data_timeout_ <= 0) return;
  const TimePoint now = engine().now();
  for (auto& [app, s] : sessions_) {
    if (!s.in_tree || s.is_source) continue;
    if (!s.consume && s.children.empty()) continue;
    if (s.last_data_at < 0 || now - s.last_data_at <= data_timeout_) continue;
    if (s.parent) {
      engine().send(Msg::control(kSPrune, engine().self(), app), *s.parent);
      s.neighbor_stress.erase(*s.parent);
      s.parent.reset();
    }
    s.in_tree = false;
    s.join_pending = true;
    s.last_data_at = now;  // restart the grace clock for the rejoin
  }
}

void TreeAlgorithm::on_timer(i32 timer_id) {
  if (timer_id != kStressTimer) return;
  // Only the ns-aware strategy consumes sStress; the others skip the
  // exchange so large randomized/unicast overlays don't pay a per-node
  // background message load for numbers nobody reads.
  if (strategy_ == TreeStrategy::kNsAware) exchange_stress();
  reaffirm_and_expire_children();
  self_heal_starved_sessions();
  // Join queries are random walks and can exhaust their TTL without
  // reaching the tree; retry until attached.
  for (auto& [app, s] : sessions_) {
    if (s.join_pending && !s.in_tree) send_join_queries(app, s);
  }
  engine().set_timer(kStressPeriod, kStressTimer);
}

void TreeAlgorithm::exchange_stress() {
  for (auto& [app, s] : sessions_) {
    if (!s.in_tree) continue;
    const i32 scaled = static_cast<i32>(node_stress(app) * 1e6);
    const auto tell = [&](const NodeId& neighbor) {
      engine().send(Msg::control(kSStress, engine().self(), app, scaled),
                    neighbor);
    };
    if (s.parent) tell(*s.parent);
    for (const auto& child : s.children) tell(child);
  }
}

void TreeAlgorithm::on_broken_link(const NodeId& peer) {
  for (auto& [app, s] : sessions_) {
    if (s.parent && *s.parent == peer) {
      // Lost our parent: fall out of the tree and, if we are a consumer,
      // rejoin automatically on the periodic timer (the fault-tolerance
      // behaviour §3.1 motivates).
      s.parent.reset();
      s.in_tree = s.is_source;
      if (s.consume && !s.is_source) s.join_pending = true;
    }
    s.children.erase(peer);
    s.child_seen.erase(peer);
    s.neighbor_stress.erase(peer);
  }
}

void TreeAlgorithm::on_broken_source(const MsgPtr& m) {
  const auto it = sessions_.find(m->app());
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (!s.is_source) {
    // Tell the old parent to drop its child entry: its link to us may well
    // be alive (the break was further upstream), and a stale child edge
    // would keep feeding us data — masking the outage from the starvation
    // self-heal and pinning half-torn tree shapes in place forever.
    if (s.parent) {
      engine().send(Msg::control(kSPrune, engine().self(), m->app()),
                    *s.parent);
    }
    s.in_tree = false;
    s.parent.reset();
    s.children.clear();
    s.child_seen.clear();
    s.neighbor_stress.clear();
    // The Domino tore this subtree's feed down, but that usually means an
    // interior link or node died — not the source itself. A consumer
    // re-locates the tree (§3.1 fault tolerance); if the source really is
    // gone, its queries simply find nobody in the tree.
    if (s.consume) s.join_pending = true;
  }
}

std::string TreeAlgorithm::status() const {
  std::string out = strategy_name(strategy_);
  for (const auto& [app, s] : sessions_) {
    out += strf(" app%u[deg=%zu stress=%.2f%s%s]", app, degree(app),
                node_stress(app), s.is_source ? " src" : "",
                s.in_tree ? "" : " out");
  }
  return out;
}

}  // namespace iov::trees
