// Data-dissemination tree construction (paper §3.3).
//
// Three join strategies over one shared protocol skeleton, exactly the
// algorithms the paper compares:
//
//   * all-unicast — any in-tree node that receives a join query forwards
//     it to the session's data source (learned from sAnnounce); the
//     source accepts every joiner directly, so the tree is a star and
//     the source's last mile is split N ways;
//   * randomized — the first in-tree node reached by the query accepts
//     immediately;
//   * node-stress aware (ns-aware) — nodes periodically exchange node
//     stress (degree / last-mile bandwidth) with their tree neighbours;
//     a query is routed greedily toward the minimum-stress neighbour
//     until it reaches a local minimum, which accepts.
//
// Join protocol (all types in the algorithm-specific space):
//   sQuery   joiner -> known host -> (relayed per strategy); the payload
//            carries the visited-node list for loop freedom
//   sQueryAck acceptor -> joiner ("you may attach to me")
//   sAttach  joiner -> acceptor (commit; duplicate acks are ignored)
//   sStress  periodic stress exchange between tree neighbours
//
// The data plane is plain copy-forwarding down the tree; receivers
// deliver locally via the registered application.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "algorithm/algorithm.h"

namespace iov::trees {

/// Protocol message types.
constexpr MsgType kSQuery = static_cast<MsgType>(0x0301);
constexpr MsgType kSQueryAck = static_cast<MsgType>(0x0302);
constexpr MsgType kSAttach = static_cast<MsgType>(0x0303);
constexpr MsgType kSStress = static_cast<MsgType>(0x0304);

enum class TreeStrategy { kAllUnicast, kRandomized, kNsAware };

const char* strategy_name(TreeStrategy s);

class TreeAlgorithm : public Algorithm {
 public:
  /// `last_mile_bytes_per_sec` is this node's advertised last-mile
  /// bandwidth — the denominator of node stress. It should match the
  /// node's emulated uplink cap.
  TreeAlgorithm(TreeStrategy strategy, double last_mile_bytes_per_sec);

  void on_start() override;
  std::string status() const override;

  // --- Introspection for experiments ----------------------------------------

  /// Degree in the dissemination topology (parent + children).
  std::size_t degree(u32 app) const;

  /// Node stress as the paper defines it, in units of 1/(100 KB/s):
  /// degree / (last-mile bandwidth / 100 KB/s).
  double node_stress(u32 app) const;

  std::optional<NodeId> parent(u32 app) const;
  std::vector<NodeId> children(u32 app) const;
  bool in_tree(u32 app) const;
  double last_mile() const { return last_mile_; }

 protected:
  Disposition on_data(const MsgPtr& m) override;
  void on_deploy(u32 app) override;
  void on_join(u32 app, std::string_view arg) override;
  void on_announce(u32 app, std::string_view source) override;
  void on_timer(i32 timer_id) override;
  void on_broken_link(const NodeId& peer) override;
  void on_broken_source(const MsgPtr& m) override;
  Disposition on_user(const MsgPtr& m) override;

 private:
  struct Session {
    bool in_tree = false;
    bool is_source = false;
    bool consume = false;
    bool join_pending = false;  // retried on the periodic timer
    std::string join_hint;
    std::optional<NodeId> parent;
    std::set<NodeId> children;
    NodeId source;                          // from sAnnounce
    std::map<NodeId, double> neighbor_stress;  // from sStress
  };

  void send_join_queries(u32 app, Session& s);
  void handle_query(const MsgPtr& m);
  void handle_query_ack(const MsgPtr& m);
  void handle_attach(const MsgPtr& m);
  void handle_stress(const MsgPtr& m);
  void accept_joiner(u32 app, const NodeId& joiner);
  void route_query_ns_aware(Session& session, u32 app, const NodeId& joiner,
                            const std::set<NodeId>& visited,
                            std::string_view visited_text);
  void exchange_stress();
  Session& session(u32 app) { return sessions_[app]; }

  const TreeStrategy strategy_;
  const double last_mile_;
  std::map<u32, Session> sessions_;
};

}  // namespace iov::trees
