// Data-dissemination tree construction (paper §3.3).
//
// Three join strategies over one shared protocol skeleton, exactly the
// algorithms the paper compares:
//
//   * all-unicast — any in-tree node that receives a join query forwards
//     it to the session's data source (learned from sAnnounce); the
//     source accepts every joiner directly, so the tree is a star and
//     the source's last mile is split N ways;
//   * randomized — the first in-tree node reached by the query accepts
//     immediately;
//   * node-stress aware (ns-aware) — nodes periodically exchange node
//     stress (degree / last-mile bandwidth) with their tree neighbours;
//     a query is routed greedily toward the minimum-stress neighbour
//     until it reaches a local minimum, which accepts.
//
// Join protocol (all types in the algorithm-specific space):
//   sQuery   joiner -> known host -> (relayed per strategy); the payload
//            carries the visited-node list for loop freedom
//   sQueryAck acceptor -> joiner ("you may attach to me")
//   sAttach  joiner -> acceptor (commit; duplicate acks are ignored)
//   sStress  periodic stress exchange between tree neighbours
//
// The data plane is plain copy-forwarding down the tree; receivers
// deliver locally via the registered application.
#pragma once

#include <map>
#include <optional>
#include <set>

#include "algorithm/algorithm.h"

namespace iov::trees {

/// Protocol message types.
constexpr MsgType kSQuery = static_cast<MsgType>(0x0301);
constexpr MsgType kSQueryAck = static_cast<MsgType>(0x0302);
constexpr MsgType kSAttach = static_cast<MsgType>(0x0303);
constexpr MsgType kSStress = static_cast<MsgType>(0x0304);
/// Child -> parent: "I am detaching from you" (starvation self-heal or a
/// deliberate leave); the parent drops the sender from its child set.
constexpr MsgType kSPrune = static_cast<MsgType>(0x0305);

enum class TreeStrategy { kAllUnicast, kRandomized, kNsAware };

const char* strategy_name(TreeStrategy s);

class TreeAlgorithm : public Algorithm {
 public:
  /// `last_mile_bytes_per_sec` is this node's advertised last-mile
  /// bandwidth — the denominator of node stress. It should match the
  /// node's emulated uplink cap.
  TreeAlgorithm(TreeStrategy strategy, double last_mile_bytes_per_sec);

  void on_start() override;
  std::string status() const override;

  /// Starvation self-heal (0 = disabled, the default): an attached
  /// non-source node that has seen no session data for this long prunes
  /// itself from its parent and rejoins through a fresh sQuery walk.
  /// This is the recovery path for states link-failure detection cannot
  /// see — most importantly a rejoin that accidentally attached to the
  /// node's own (now source-disconnected) subtree. Churn harnesses set
  /// it to a few frame intervals.
  void set_data_timeout(Duration timeout) { data_timeout_ = timeout; }

  // --- Introspection for experiments ----------------------------------------

  /// Degree in the dissemination topology (parent + children).
  std::size_t degree(u32 app) const;

  /// Node stress as the paper defines it, in units of 1/(100 KB/s):
  /// degree / (last-mile bandwidth / 100 KB/s).
  double node_stress(u32 app) const;

  std::optional<NodeId> parent(u32 app) const;
  std::vector<NodeId> children(u32 app) const;
  bool in_tree(u32 app) const;
  double last_mile() const { return last_mile_; }

 protected:
  Disposition on_data(const MsgPtr& m) override;
  void on_deploy(u32 app) override;
  void on_join(u32 app, std::string_view arg) override;
  void on_announce(u32 app, std::string_view source) override;
  void on_timer(i32 timer_id) override;
  void on_broken_link(const NodeId& peer) override;
  void on_broken_source(const MsgPtr& m) override;
  Disposition on_user(const MsgPtr& m) override;

 private:
  struct Session {
    bool in_tree = false;
    bool is_source = false;
    bool consume = false;
    bool join_pending = false;  // retried on the periodic timer
    std::string join_hint;
    std::optional<NodeId> parent;
    std::set<NodeId> children;
    NodeId source;                          // from sAnnounce
    std::map<NodeId, double> neighbor_stress;  // from sStress
    /// Highest data seq forwarded, per origin — the loop/duplicate guard:
    /// data seqs are monotone per source, so a repeat means the message
    /// came around a dissemination cycle (or a stale double-parent) and
    /// must not be forwarded again.
    std::map<NodeId, u32> last_data_seq;
    TimePoint last_data_at = -1;  ///< attach or last data arrival
    /// Child-lease soft state: when each child last re-affirmed its
    /// attachment. A child that stops re-affirming (it re-parented
    /// elsewhere, or its notifications were lost) is expired, so stale
    /// child edges — which would keep feeding data into detached or
    /// cyclic fragments, masking them from the starvation self-heal —
    /// age out instead of living forever.
    std::map<NodeId, TimePoint> child_seen;
  };

  void send_join_queries(u32 app, Session& s);
  void handle_query(const MsgPtr& m);
  void handle_query_ack(const MsgPtr& m);
  void handle_attach(const MsgPtr& m);
  void handle_stress(const MsgPtr& m);
  void handle_prune(const MsgPtr& m);
  void self_heal_starved_sessions();
  void reaffirm_and_expire_children();
  void accept_joiner(u32 app, const NodeId& joiner);
  void route_query_ns_aware(Session& session, u32 app, const NodeId& joiner,
                            const std::set<NodeId>& visited,
                            std::string_view visited_text);
  void exchange_stress();
  Session& session(u32 app) { return sessions_[app]; }

  const TreeStrategy strategy_;
  const double last_mile_;
  Duration data_timeout_ = 0;
  std::map<u32, Session> sessions_;
};

}  // namespace iov::trees
