// Content-based publish/subscribe over iOverlay — the §3.1 use case
// ("content-based networks ... a natural fit to be supported by
// iOverlay") as a working algorithm.
//
// Brokers form an acyclic overlay (the neighbor set). Subscriptions are
// predicates; they flood the broker topology, and every broker records,
// per neighbor, the predicates reachable through it. A published event
// is delivered to matching local subscribers and forwarded only toward
// neighbors with at least one matching predicate — reverse-path
// content-based routing. A bounded seen-set makes forwarding loop-safe
// even if the configured topology accidentally has a cycle.
//
// Protocol messages (algorithm-specific space):
//   kSubscribe / kUnsubscribe    param0 = subscription id,
//                                text   = "relay=<hop>|pred=<predicate>"
//   events                       kData, payload = Event::serialize()
#pragma once

#include <deque>
#include <map>
#include <set>

#include "algorithm/algorithm.h"
#include "pubsub/predicate.h"

namespace iov::pubsub {

constexpr MsgType kSubscribe = static_cast<MsgType>(0x0321);
constexpr MsgType kUnsubscribe = static_cast<MsgType>(0x0322);

class PubSubAlgorithm : public Algorithm {
 public:
  /// `app` is the session id events travel under.
  explicit PubSubAlgorithm(u32 app = 1) : app_(app) {}

  /// Adds a broker-topology edge (call on both endpoints).
  void add_neighbor(const NodeId& neighbor) { neighbors_.insert(neighbor); }

  /// Registers a local subscription and floods it to the brokers.
  /// Matching events are handed to the registered Application.
  void subscribe(u32 sub_id, const Predicate& predicate);

  /// Withdraws a local subscription everywhere.
  void unsubscribe(u32 sub_id);

  /// Publishes an event from this node into the overlay.
  void publish(const Event& event);

  u64 published() const { return next_seq_; }
  u64 delivered() const { return delivered_; }
  u64 forwarded() const { return forwarded_; }
  std::size_t local_subscriptions() const { return local_subs_.size(); }
  /// Number of (neighbor, subscription) routing entries.
  std::size_t routing_entries() const { return remote_subs_.size(); }

  std::string status() const override;

 protected:
  Disposition on_data(const MsgPtr& m) override;
  Disposition on_user(const MsgPtr& m) override;
  void on_broken_link(const NodeId& peer) override;

 private:
  /// Identity of a subscription: its subscriber plus the id it chose.
  struct SubKey {
    NodeId subscriber;
    u32 id = 0;
    auto operator<=>(const SubKey&) const = default;
  };

  void handle_subscribe(const MsgPtr& m);
  void handle_unsubscribe(const MsgPtr& m);
  void flood_subscription(const SubKey& key, const Predicate& predicate,
                          const NodeId& skip);
  bool remember_event(const NodeId& origin, u32 seq);

  const u32 app_;
  std::set<NodeId> neighbors_;
  std::map<u32, Predicate> local_subs_;
  // (neighbor to route toward, subscription) -> predicate
  std::map<std::pair<NodeId, SubKey>, Predicate> remote_subs_;
  std::set<SubKey> subs_seen_;  // flood dedup

  std::set<std::pair<NodeId, u32>> events_seen_;
  std::deque<std::pair<NodeId, u32>> events_order_;
  static constexpr std::size_t kEventMemory = 8192;

  u32 next_seq_ = 0;
  u64 delivered_ = 0;
  u64 forwarded_ = 0;
};

}  // namespace iov::pubsub
