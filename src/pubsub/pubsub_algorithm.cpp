#include "pubsub/pubsub_algorithm.h"

#include "common/logging.h"
#include "common/strings.h"

namespace iov::pubsub {

namespace {

struct SubWire {
  NodeId relay;
  std::string predicate;
};

std::optional<SubWire> parse_sub_text(std::string_view text) {
  SubWire out;
  for (const auto& field : split(text, '|')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const auto key = field.substr(0, eq);
    const auto value = field.substr(eq + 1);
    if (key == "relay") {
      const auto id = NodeId::parse(value);
      if (!id) return std::nullopt;
      out.relay = *id;
    } else if (key == "pred") {
      out.predicate = value;
    } else {
      return std::nullopt;
    }
  }
  return out;
}

std::string sub_text(const NodeId& relay, std::string_view predicate) {
  return "relay=" + relay.to_string() + "|pred=" + std::string(predicate);
}

}  // namespace

void PubSubAlgorithm::subscribe(u32 sub_id, const Predicate& predicate) {
  local_subs_[sub_id] = predicate;
  const SubKey key{engine().self(), sub_id};
  subs_seen_.insert(key);
  flood_subscription(key, predicate, /*skip=*/NodeId());
}

void PubSubAlgorithm::unsubscribe(u32 sub_id) {
  if (local_subs_.erase(sub_id) == 0) return;
  const auto m = Msg::control(
      kUnsubscribe, engine().self(), app_, static_cast<i32>(sub_id), 0,
      sub_text(engine().self(), ""));
  for (const auto& neighbor : neighbors_) engine().send(m->clone(), neighbor);
}

void PubSubAlgorithm::flood_subscription(const SubKey& key,
                                         const Predicate& predicate,
                                         const NodeId& skip) {
  const auto m = Msg::control(
      kSubscribe, key.subscriber, app_, static_cast<i32>(key.id), 0,
      sub_text(engine().self(), predicate.serialize()));
  for (const auto& neighbor : neighbors_) {
    if (neighbor != skip) engine().send(m->clone(), neighbor);
  }
}

void PubSubAlgorithm::publish(const Event& event) {
  const auto m = Msg::data(engine().self(), app_, next_seq_++,
                           Buffer::from_string(event.serialize()));
  // Route through the normal data path so local subscribers and
  // forwarding behave identically for local and remote publications.
  on_data(m);
}

bool PubSubAlgorithm::remember_event(const NodeId& origin, u32 seq) {
  if (!events_seen_.insert({origin, seq}).second) return false;
  events_order_.push_back({origin, seq});
  if (events_order_.size() > kEventMemory) {
    events_seen_.erase(events_order_.front());
    events_order_.pop_front();
  }
  return true;
}

Disposition PubSubAlgorithm::on_data(const MsgPtr& m) {
  if (m->app() != app_) return Disposition::kDone;
  if (!remember_event(m->origin(), m->seq())) return Disposition::kDone;

  const auto event = Event::parse(m->text());
  if (!event) {
    IOV_LOG_WARN("pubsub") << "malformed event " << m->describe();
    return Disposition::kDone;
  }

  // Local delivery: any matching local subscription.
  for (const auto& [id, predicate] : local_subs_) {
    if (predicate.matches(*event)) {
      engine().deliver_local(m);
      ++delivered_;
      break;
    }
  }

  // Content-based forwarding: only toward neighbors with a matching
  // predicate in the routing table.
  std::set<NodeId> targets;
  for (const auto& [route, predicate] : remote_subs_) {
    if (targets.count(route.first) == 0 && predicate.matches(*event)) {
      targets.insert(route.first);
    }
  }
  for (const auto& target : targets) {
    engine().send(m, target);
    ++forwarded_;
  }
  return Disposition::kDone;
}

void PubSubAlgorithm::handle_subscribe(const MsgPtr& m) {
  const auto wire = parse_sub_text(m->param_text());
  if (!wire) return;
  const auto predicate = Predicate::parse(wire->predicate);
  if (!predicate) return;
  const SubKey key{m->origin(), static_cast<u32>(m->param(0))};
  remote_subs_[{wire->relay, key}] = *predicate;
  if (!subs_seen_.insert(key).second) return;  // already flooded onward
  flood_subscription(key, *predicate, /*skip=*/wire->relay);
}

void PubSubAlgorithm::handle_unsubscribe(const MsgPtr& m) {
  const SubKey key{m->origin(), static_cast<u32>(m->param(0))};
  bool removed = false;
  for (auto it = remote_subs_.begin(); it != remote_subs_.end();) {
    if (it->first.second == key) {
      it = remote_subs_.erase(it);
      removed = true;
    } else {
      ++it;
    }
  }
  subs_seen_.erase(key);
  if (!removed) return;
  const auto wire = parse_sub_text(m->param_text());
  const NodeId skip = wire ? wire->relay : NodeId();
  const auto onward = Msg::control(
      kUnsubscribe, m->origin(), app_, m->param(0), 0,
      sub_text(engine().self(), ""));
  for (const auto& neighbor : neighbors_) {
    if (neighbor != skip) engine().send(onward->clone(), neighbor);
  }
}

Disposition PubSubAlgorithm::on_user(const MsgPtr& m) {
  switch (m->type()) {
    case kSubscribe: handle_subscribe(m); break;
    case kUnsubscribe: handle_unsubscribe(m); break;
    default: break;
  }
  return Disposition::kDone;
}

void PubSubAlgorithm::on_broken_link(const NodeId& peer) {
  neighbors_.erase(peer);
  for (auto it = remote_subs_.begin(); it != remote_subs_.end();) {
    it = it->first.first == peer ? remote_subs_.erase(it) : std::next(it);
  }
}

std::string PubSubAlgorithm::status() const {
  return strf("pubsub neighbors=%zu local=%zu routes=%zu delivered=%llu",
              neighbors_.size(), local_subs_.size(), remote_subs_.size(),
              static_cast<unsigned long long>(delivered_));
}

}  // namespace iov::pubsub
