// Events and predicates for content-based networking (paper §3.1: "a
// node advertises predicates that define messages of interest ... the
// content-based service consists of delivering a message to all the
// client nodes that advertised predicates matching the message").
//
// An Event is a set of named integer attributes; a Predicate is a
// conjunction of attribute constraints. Both have compact text forms so
// they travel inside messages:
//
//   event:      "price=42;volume=1000;symbol=7"
//   predicate:  "price>40&volume>=500"
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.h"

namespace iov::pubsub {

/// An event: attribute name -> integer value.
class Event {
 public:
  Event() = default;

  Event& set(std::string name, i64 value) {
    attributes_[std::move(name)] = value;
    return *this;
  }

  std::optional<i64> get(const std::string& name) const;
  std::size_t size() const { return attributes_.size(); }
  const std::map<std::string, i64>& attributes() const { return attributes_; }

  std::string serialize() const;
  static std::optional<Event> parse(std::string_view text);

  bool operator==(const Event&) const = default;

 private:
  std::map<std::string, i64> attributes_;
};

enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };

const char* op_name(Op op);

/// One attribute constraint.
struct Constraint {
  std::string name;
  Op op = Op::kEq;
  i64 value = 0;

  bool matches(i64 attribute_value) const;
  bool operator==(const Constraint&) const = default;
};

/// A conjunction of constraints. An event matches iff every constrained
/// attribute is present and satisfies its constraint.
class Predicate {
 public:
  Predicate() = default;

  Predicate& where(std::string name, Op op, i64 value) {
    constraints_.push_back(Constraint{std::move(name), op, value});
    return *this;
  }

  bool matches(const Event& event) const;
  bool empty() const { return constraints_.empty(); }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  std::string serialize() const;
  static std::optional<Predicate> parse(std::string_view text);

  bool operator==(const Predicate&) const = default;

 private:
  std::vector<Constraint> constraints_;
};

}  // namespace iov::pubsub
