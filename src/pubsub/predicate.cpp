#include "pubsub/predicate.h"

#include <cstdlib>
#include <cstring>

#include "common/strings.h"

namespace iov::pubsub {

namespace {

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    if (!ok) return false;
  }
  return true;
}

bool parse_i64(std::string_view s, i64* out) {
  if (s.empty()) return false;
  std::size_t i = 0;
  bool negative = false;
  if (s[0] == '-') {
    negative = true;
    i = 1;
    if (s.size() == 1) return false;
  }
  i64 value = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    value = value * 10 + (s[i] - '0');
  }
  *out = negative ? -value : value;
  return true;
}

}  // namespace

std::optional<i64> Event::get(const std::string& name) const {
  const auto it = attributes_.find(name);
  if (it == attributes_.end()) return std::nullopt;
  return it->second;
}

std::string Event::serialize() const {
  std::string out;
  for (const auto& [name, value] : attributes_) {
    if (!out.empty()) out += ';';
    out += name + "=" + strf("%lld", static_cast<long long>(value));
  }
  return out;
}

std::optional<Event> Event::parse(std::string_view text) {
  Event event;
  if (trim(text).empty()) return event;
  for (const auto& field : split(text, ';')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const auto name = field.substr(0, eq);
    i64 value = 0;
    if (!valid_name(name) ||
        !parse_i64(std::string_view(field).substr(eq + 1), &value)) {
      return std::nullopt;
    }
    event.set(name, value);
  }
  return event;
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kEq: return "=";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kLe: return "<=";
    case Op::kGt: return ">";
    case Op::kGe: return ">=";
  }
  return "?";
}

bool Constraint::matches(i64 v) const {
  switch (op) {
    case Op::kEq: return v == value;
    case Op::kNe: return v != value;
    case Op::kLt: return v < value;
    case Op::kLe: return v <= value;
    case Op::kGt: return v > value;
    case Op::kGe: return v >= value;
  }
  return false;
}

bool Predicate::matches(const Event& event) const {
  for (const auto& constraint : constraints_) {
    const auto value = event.get(constraint.name);
    if (!value || !constraint.matches(*value)) return false;
  }
  return true;
}

std::string Predicate::serialize() const {
  std::string out;
  for (const auto& c : constraints_) {
    if (!out.empty()) out += '&';
    out += c.name + op_name(c.op) +
           strf("%lld", static_cast<long long>(c.value));
  }
  return out;
}

std::optional<Predicate> Predicate::parse(std::string_view text) {
  Predicate predicate;
  if (trim(text).empty()) return predicate;
  for (const auto& field : split(text, '&')) {
    // Find the operator: two-char ops first.
    static const std::pair<const char*, Op> kOps[] = {
        {"!=", Op::kNe}, {"<=", Op::kLe}, {">=", Op::kGe},
        {"=", Op::kEq},  {"<", Op::kLt},  {">", Op::kGt}};
    std::size_t pos = std::string::npos;
    std::size_t len = 0;
    Op op = Op::kEq;
    for (const auto& [token, candidate] : kOps) {
      const auto found = field.find(token);
      if (found != std::string::npos && found < pos) {
        pos = found;
        len = std::strlen(token);
        op = candidate;
      }
    }
    if (pos == std::string::npos) return std::nullopt;
    const auto name = field.substr(0, pos);
    i64 value = 0;
    if (!valid_name(name) ||
        !parse_i64(std::string_view(field).substr(pos + len), &value)) {
      return std::nullopt;
    }
    predicate.where(std::string(name), op, value);
  }
  return predicate;
}

}  // namespace iov::pubsub
