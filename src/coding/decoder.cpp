#include "coding/decoder.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "coding/gf256.h"

namespace iov::coding {

GaussianDecoder::GaussianDecoder(std::size_t k, std::size_t block_size)
    : k_(k),
      block_size_(block_size),
      coeff_rows_(k, std::vector<u8>(k, 0)),
      payload_rows_(k, std::vector<u8>(block_size, 0)),
      have_pivot_(k, false) {}

bool GaussianDecoder::add_row(const std::vector<u8>& coeffs, const u8* payload,
                              std::size_t payload_size) {
  assert(coeffs.size() == k_);
  std::vector<u8> c = coeffs;
  std::vector<u8> p(block_size_, 0);
  std::memcpy(p.data(), payload, std::min(payload_size, block_size_));

  // Forward-eliminate against existing pivots.
  for (std::size_t col = 0; col < k_; ++col) {
    if (c[col] == 0) continue;
    if (!have_pivot_[col]) {
      // Normalize so the pivot is 1 and store.
      const u8 inv = gf_inv(c[col]);
      gf_scale(c.data(), inv, k_);
      gf_scale(p.data(), inv, block_size_);
      coeff_rows_[col] = std::move(c);
      payload_rows_[col] = std::move(p);
      have_pivot_[col] = true;
      ++rank_;
      decoded_ = false;
      return true;
    }
    const u8 factor = c[col];
    gf_axpy(c.data(), coeff_rows_[col].data(), factor, k_);
    gf_axpy(p.data(), payload_rows_[col].data(), factor, block_size_);
  }
  return false;  // reduced to zero: not innovative
}

void GaussianDecoder::back_substitute() {
  blocks_.assign(k_, std::vector<u8>(block_size_, 0));
  // Rows are in echelon form with unit pivots; eliminate bottom-up.
  std::vector<std::vector<u8>> coeffs = coeff_rows_;
  std::vector<std::vector<u8>> payloads = payload_rows_;
  for (std::size_t col = k_; col-- > 0;) {
    for (std::size_t row = 0; row < col; ++row) {
      const u8 factor = coeffs[row][col];
      if (factor == 0) continue;
      gf_axpy(coeffs[row].data(), coeffs[col].data(), factor, k_);
      gf_axpy(payloads[row].data(), payloads[col].data(), factor,
              block_size_);
    }
  }
  for (std::size_t i = 0; i < k_; ++i) blocks_[i] = std::move(payloads[i]);
  decoded_ = true;
}

const std::vector<u8>& GaussianDecoder::block(std::size_t i) const {
  assert(complete());
  if (!decoded_) const_cast<GaussianDecoder*>(this)->back_substitute();
  return blocks_[i];
}

std::vector<u8> GaussianDecoder::combine(
    const std::vector<std::vector<u8>>& blocks, const std::vector<u8>& coeffs) {
  std::size_t longest = 0;
  for (const auto& b : blocks) longest = std::max(longest, b.size());
  std::vector<u8> out(longest, 0);
  for (std::size_t i = 0; i < blocks.size() && i < coeffs.size(); ++i) {
    gf_axpy(out.data(), blocks[i].data(), coeffs[i], blocks[i].size());
  }
  return out;
}

}  // namespace iov::coding
