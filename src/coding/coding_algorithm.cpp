#include "coding/coding_algorithm.h"

#include <cstring>

#include "common/logging.h"
#include "common/strings.h"

namespace iov::coding {

namespace {

constexpr u8 kPlain = 0;
constexpr u8 kCoded = 1;

struct ParsedBlock {
  bool coded = false;
  u8 stream = 0;                // plain only
  std::vector<u8> coeffs;       // coded only, k entries
  const u8* data = nullptr;
  std::size_t size = 0;
};

bool parse_block(const Msg& m, ParsedBlock* out) {
  const u8* p = m.payload()->data();
  const std::size_t n = m.payload_size();
  if (n < 2) return false;
  if (p[0] == kPlain) {
    out->coded = false;
    out->stream = p[1];
    out->data = p + 2;
    out->size = n - 2;
    return true;
  }
  if (p[0] == kCoded) {
    const std::size_t k = p[1];
    if (k == 0 || n < 2 + k) return false;
    out->coded = true;
    out->coeffs.assign(p + 2, p + 2 + k);
    out->data = p + 2 + k;
    out->size = n - 2 - k;
    return true;
  }
  return false;
}

BufferPtr make_plain_payload(u8 stream, const u8* data, std::size_t n) {
  std::vector<u8> bytes(2 + n);
  bytes[0] = kPlain;
  bytes[1] = stream;
  std::memcpy(bytes.data() + 2, data, n);
  return Buffer::wrap(std::move(bytes));
}

BufferPtr make_coded_payload(const std::vector<u8>& coeffs,
                             const std::vector<u8>& data) {
  std::vector<u8> bytes(2 + coeffs.size() + data.size());
  bytes[0] = kCoded;
  bytes[1] = static_cast<u8>(coeffs.size());
  std::memcpy(bytes.data() + 2, coeffs.data(), coeffs.size());
  std::memcpy(bytes.data() + 2 + coeffs.size(), data.data(), data.size());
  return Buffer::wrap(std::move(bytes));
}

}  // namespace

void CodingAlgorithm::set_source_split(u32 app, std::vector<NodeId> children) {
  splits_[app] = SplitConfig{std::move(children)};
}

void CodingAlgorithm::add_relay(u32 app, const NodeId& child) {
  relays_[app].push_back(child);
}

void CodingAlgorithm::set_coder(u32 app, std::size_t k, std::vector<u8> coeffs,
                                std::vector<NodeId> children) {
  CoderConfig config;
  config.k = k;
  config.coeffs = std::move(coeffs);
  config.children = std::move(children);
  coders_[app] = std::move(config);
}

void CodingAlgorithm::set_decoder(u32 app, std::size_t k,
                                  std::size_t block_bytes) {
  DecoderConfig config;
  config.k = k;
  config.block_bytes = block_bytes;
  decoders_[app] = std::move(config);
}

u64 CodingAlgorithm::decoded_blocks(u32 app) const {
  const auto it = decoders_.find(app);
  return it == decoders_.end() ? 0 : it->second.delivered;
}

Disposition CodingAlgorithm::on_data(const MsgPtr& m) {
  const auto split_it = splits_.find(m->app());
  if (split_it != splits_.end() && m->origin() == engine().self()) {
    return handle_source_block(m, split_it->second);
  }
  return handle_network_block(m);
}

Disposition CodingAlgorithm::handle_source_block(const MsgPtr& m,
                                                 SplitConfig& split) {
  const std::size_t k = split.children.size();
  if (k == 0) return Disposition::kDone;
  const u32 seq = m->seq();
  const u8 stream = static_cast<u8>(seq % k);
  const u32 block = static_cast<u32>(seq / k);
  auto wrapped = Msg::data(
      m->origin(), m->app(), block,
      make_plain_payload(stream, m->payload()->data(), m->payload_size()));
  engine().send(wrapped, split.children[stream]);
  return Disposition::kDone;
}

Disposition CodingAlgorithm::handle_network_block(const MsgPtr& m) {
  ParsedBlock parsed;
  if (!parse_block(*m, &parsed)) {
    IOV_LOG_WARN("coding") << "malformed coding block "
                           << m->describe();
    return Disposition::kDone;
  }
  Disposition disposition = Disposition::kDone;

  // Plain store-and-forward (helper nodes B, C, E): zero copy.
  const auto relay_it = relays_.find(m->app());
  if (relay_it != relays_.end()) {
    for (const auto& child : relay_it->second) engine().send(m, child);
  }

  // The n-to-1 coder (node D): hold until the block is complete.
  const auto coder_it = coders_.find(m->app());
  if (coder_it != coders_.end() && !parsed.coded) {
    CoderConfig& coder = coder_it->second;
    auto& pending = coder.pending[m->seq()];
    pending[parsed.stream] = m;
    disposition = Disposition::kHold;
    if (pending.size() == coder.k) {
      std::vector<std::vector<u8>> blocks(coder.k);
      for (const auto& [stream, held] : pending) {
        ParsedBlock held_parsed;
        if (parse_block(*held, &held_parsed) && stream < coder.k) {
          blocks[stream].assign(held_parsed.data,
                                held_parsed.data + held_parsed.size);
        }
      }
      const auto combined = GaussianDecoder::combine(blocks, coder.coeffs);
      auto coded = Msg::data(m->origin(), m->app(), m->seq(),
                             make_coded_payload(coder.coeffs, combined));
      for (const auto& child : coder.children) engine().send(coded, child);
      coder.pending.erase(m->seq());
    }
  }

  // The decoder (nodes D, F, G in the case study). Plain blocks are
  // delivered to the application the moment they arrive (they need no
  // decoding); the remaining streams of a block are delivered once the
  // Gaussian solve completes.
  const auto dec_it = decoders_.find(m->app());
  if (dec_it != decoders_.end()) {
    DecoderConfig& dec = dec_it->second;
    const u32 block = m->seq();
    if (dec.done.count(block) == 0) {
      BlockState& state = dec.pending[block];
      if (!state.solver) {
        state.solver =
            std::make_unique<GaussianDecoder>(dec.k, dec.block_bytes);
      }
      const auto deliver_stream = [&](u8 stream, const u8* data,
                                      std::size_t size) {
        if (!state.delivered_streams.insert(stream).second) return;
        auto original = Msg::data(
            m->origin(), m->app(),
            block * static_cast<u32>(dec.k) + stream,
            Buffer::copy(data, size));
        engine().deliver_local(original);
        ++dec.delivered;
      };

      std::vector<u8> coeffs;
      if (parsed.coded) {
        coeffs = parsed.coeffs;
        coeffs.resize(dec.k, 0);
      } else {
        coeffs.assign(dec.k, 0);
        if (parsed.stream < dec.k) coeffs[parsed.stream] = 1;
        deliver_stream(parsed.stream, parsed.data, parsed.size);
      }
      state.solver->add_row(coeffs, parsed.data, parsed.size);
      if (state.solver->complete()) {
        for (std::size_t s = 0; s < dec.k; ++s) {
          const auto& data = state.solver->block(s);
          deliver_stream(static_cast<u8>(s), data.data(), data.size());
        }
        dec.pending.erase(block);
        dec.done.insert(block);
      }
    }
  }

  return disposition;
}

std::string CodingAlgorithm::status() const {
  u64 delivered = 0;
  for (const auto& [app, dec] : decoders_) delivered += dec.delivered;
  return strf("coding splits=%zu relays=%zu coders=%zu decoded=%llu",
              splits_.size(), relays_.size(), coders_.size(),
              static_cast<unsigned long long>(delivered));
}

}  // namespace iov::coding
