#include "coding/gf256.h"

namespace iov::coding {

namespace {

struct Tables {
  u8 exp[512];   // doubled so mul can skip one modulo
  u8 log[256];

  Tables() {
    u16 x = 1;
    for (int i = 0; i < 255; ++i) {
      exp[i] = static_cast<u8>(x);
      log[x] = static_cast<u8>(i);
      // Multiply by the generator 0x02 (primitive for 0x11d).
      x = static_cast<u16>(x << 1);
      if (x & 0x100) x ^= 0x11d;
    }
    for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
    log[0] = 0;  // never consulted for 0 operands
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

u8 gf_mul(u8 a, u8 b) {
  if (a == 0 || b == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + t.log[b]];
}

u8 gf_inv(u8 a) {
  const Tables& t = tables();
  return t.exp[255 - t.log[a]];
}

u8 gf_div(u8 a, u8 b) {
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

u8 gf_pow(u8 a, unsigned n) {
  if (n == 0) return 1;
  if (a == 0) return 0;
  const Tables& t = tables();
  return t.exp[(static_cast<unsigned>(t.log[a]) * n) % 255];
}

void gf_axpy(u8* dst, const u8* src, u8 coeff, std::size_t n) {
  if (coeff == 0) return;
  if (coeff == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const Tables& t = tables();
  const unsigned log_c = t.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const u8 s = src[i];
    if (s != 0) dst[i] ^= t.exp[t.log[s] + log_c];
  }
}

void gf_scale(u8* dst, u8 coeff, std::size_t n) {
  if (coeff == 1) return;
  if (coeff == 0) {
    for (std::size_t i = 0; i < n; ++i) dst[i] = 0;
    return;
  }
  const Tables& t = tables();
  const unsigned log_c = t.log[coeff];
  for (std::size_t i = 0; i < n; ++i) {
    const u8 d = dst[i];
    if (d != 0) dst[i] = t.exp[t.log[d] + log_c];
  }
}

}  // namespace iov::coding
