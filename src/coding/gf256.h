// Arithmetic in the Galois field GF(2^8) — the algebra behind the
// paper's network-coding case study (§3.2: "messages from multiple
// incoming streams are coded into one stream using linear codes in the
// Galois Field, and more specifically, with GF(2^8)").
//
// Elements are bytes; addition is XOR; multiplication is carried out via
// logarithm/antilogarithm tables over the generator 0x02 of the field
// defined by the primitive polynomial x^8 + x^4 + x^3 + x^2 + 1 (0x11d).
// Tables are built once at static-initialization time.
#pragma once

#include <cstddef>

#include "common/types.h"

namespace iov::coding {

/// Field addition (and subtraction — characteristic 2).
constexpr u8 gf_add(u8 a, u8 b) { return a ^ b; }
constexpr u8 gf_sub(u8 a, u8 b) { return a ^ b; }

/// Field multiplication.
u8 gf_mul(u8 a, u8 b);

/// Multiplicative inverse; precondition a != 0.
u8 gf_inv(u8 a);

/// a / b; precondition b != 0.
u8 gf_div(u8 a, u8 b);

/// a^n in the field (n >= 0; a^0 == 1).
u8 gf_pow(u8 a, unsigned n);

// --- Byte-vector kernels (the hot path of coding at line rate) --------------

/// dst[i] ^= coeff * src[i] for i in [0, n).
void gf_axpy(u8* dst, const u8* src, u8 coeff, std::size_t n);

/// dst[i] = coeff * dst[i].
void gf_scale(u8* dst, u8 coeff, std::size_t n);

}  // namespace iov::coding
