// The network-coding overlay algorithm of §3.2, built on the engine's
// `hold` mechanism: a coder node buffers messages from its n incoming
// streams (Disposition::kHold) until one block of every stream for the
// same block index has arrived, then emits a single GF(2^8) linear
// combination downstream; receivers run incremental Gaussian elimination
// over whatever mix of plain and coded blocks reaches them and deliver
// the reconstructed stream to the local application.
//
// Node roles are configured per application session:
//   * source splitter — wraps the local source's messages into stream
//     blocks (block index = seq / k, stream = seq % k) and routes stream
//     s to the s-th child ("A sends half of the messages to B, and the
//     other half to C");
//   * relay — forwards coding-app messages verbatim (zero copy);
//   * coder — the n-to-m merge at node D, coefficients configurable
//     (the paper uses a + b, i.e. coefficients {1, 1});
//   * decoder — any consuming node; plain blocks enter the decoder as
//     unit-coefficient rows, so decoding works transparently whether a
//     node receives originals, combinations, or both.
//
// Wire format inside the data payload (the 24-byte engine header is
// untouched; seq carries the block index):
//   byte 0          kPlain | kCoded
//   byte 1          stream index (plain) or k (coded)
//   bytes 2..       coefficient vector (coded only, k bytes)
//   remaining       block data
#pragma once

#include <map>
#include <set>
#include <memory>
#include <vector>

#include "algorithm/algorithm.h"
#include "coding/decoder.h"

namespace iov::coding {

class CodingAlgorithm : public Algorithm {
 public:
  /// Configures this node as the origin splitter of `app` with one child
  /// per stream (k = children.size()).
  void set_source_split(u32 app, std::vector<NodeId> children);

  /// Configures plain store-and-forward of `app` to `children`.
  void add_relay(u32 app, const NodeId& child);

  /// Configures this node to code all k streams of `app` into one
  /// outgoing stream sent to `children`. `coeffs` has k entries, all
  /// nonzero; {1,1} reproduces the paper's a+b.
  void set_coder(u32 app, std::size_t k, std::vector<u8> coeffs,
                 std::vector<NodeId> children);

  /// Configures this node to decode `app` (k streams of `block_bytes`
  /// each) and deliver reconstructed blocks to the local application.
  void set_decoder(u32 app, std::size_t k, std::size_t block_bytes);

  /// Blocks fully decoded and delivered locally so far.
  u64 decoded_blocks(u32 app) const;

  std::string status() const override;

 protected:
  Disposition on_data(const MsgPtr& m) override;

 private:
  struct SplitConfig {
    std::vector<NodeId> children;
  };
  struct CoderConfig {
    std::size_t k = 0;
    std::vector<u8> coeffs;
    std::vector<NodeId> children;
    // block index -> (stream -> held message)
    std::map<u32, std::map<u8, MsgPtr>> pending;
  };
  struct BlockState {
    std::unique_ptr<GaussianDecoder> solver;
    std::set<u8> delivered_streams;  ///< plain blocks handed up eagerly
  };
  struct DecoderConfig {
    std::size_t k = 0;
    std::size_t block_bytes = 0;
    std::map<u32, BlockState> pending;
    std::set<u32> done;  ///< completed blocks (late duplicates ignored)
    u64 delivered = 0;
  };

  Disposition handle_source_block(const MsgPtr& m, SplitConfig& split);
  Disposition handle_network_block(const MsgPtr& m);

  std::map<u32, SplitConfig> splits_;
  std::map<u32, std::vector<NodeId>> relays_;
  std::map<u32, CoderConfig> coders_;
  std::map<u32, DecoderConfig> decoders_;
};

}  // namespace iov::coding
