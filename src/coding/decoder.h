// Incremental Gaussian elimination over GF(2^8).
//
// A GaussianDecoder collects linear combinations of k source blocks (each
// row = coefficient vector + combined payload) and recovers the originals
// once k innovative rows have arrived. Rows that add no rank are reported
// non-innovative and discarded — exactly what an overlay node running
// network coding needs to decide whether a received coded message is
// useful (§3.2).
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"

namespace iov::coding {

class GaussianDecoder {
 public:
  /// `k` source blocks of `block_size` bytes each.
  GaussianDecoder(std::size_t k, std::size_t block_size);

  /// Adds one received combination; `coeffs` has k entries and `payload`
  /// block_size bytes (shorter payloads are zero-extended). Returns true
  /// iff the row increased the decoding rank (was innovative).
  bool add_row(const std::vector<u8>& coeffs, const u8* payload,
               std::size_t payload_size);

  std::size_t k() const { return k_; }
  std::size_t rank() const { return rank_; }
  bool complete() const { return rank_ == k_; }

  /// Decoded source block `i` (only when complete()).
  const std::vector<u8>& block(std::size_t i) const;

  /// Encodes a fresh combination of `blocks` with `coeffs` (helper used
  /// by coders; all blocks zero-extended to the longest).
  static std::vector<u8> combine(const std::vector<std::vector<u8>>& blocks,
                                 const std::vector<u8>& coeffs);

 private:
  void back_substitute();

  std::size_t k_;
  std::size_t block_size_;
  std::size_t rank_ = 0;
  // Row-echelon state: rows_[p] holds the row whose pivot column is p.
  std::vector<std::vector<u8>> coeff_rows_;   // k x k (0-filled until used)
  std::vector<std::vector<u8>> payload_rows_;  // k x block_size
  std::vector<bool> have_pivot_;
  bool decoded_ = false;
  std::vector<std::vector<u8>> blocks_;
};

}  // namespace iov::coding
