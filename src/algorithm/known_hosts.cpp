#include "algorithm/known_hosts.h"

#include <algorithm>

#include "common/strings.h"

namespace iov {

bool KnownHosts::add(const NodeId& id, const NodeId& self) {
  if (!id.valid() || id == self) return false;
  if (!hosts_.insert(id).second) return false;
  order_.push_back(id);
  return true;
}

bool KnownHosts::remove(const NodeId& id) {
  if (hosts_.erase(id) == 0) return false;
  order_.erase(std::find(order_.begin(), order_.end(), id));
  return true;
}

std::vector<NodeId> KnownHosts::all() const {
  std::vector<NodeId> out(hosts_.begin(), hosts_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> KnownHosts::sample(std::size_t k, Rng& rng) const {
  const std::size_t n = order_.size();
  if (k >= n) return rng.sample(order_, k);
  // Small sample from a large set: draw distinct indices instead of
  // shuffling a full copy. The rejection loop stays cheap because
  // k < n; fall back to the copying path when k is a large fraction.
  if (k * 2 >= n) return rng.sample(order_, k);
  std::vector<NodeId> out;
  out.reserve(k);
  std::unordered_set<std::size_t> picked;
  while (out.size() < k) {
    const std::size_t i = static_cast<std::size_t>(rng.below(n));
    if (picked.insert(i).second) out.push_back(order_[i]);
  }
  return out;
}

std::size_t KnownHosts::add_from_list(std::string_view list,
                                      const NodeId& self) {
  std::size_t added = 0;
  for (const auto& entry : split(list, ',')) {
    const auto trimmed = trim(entry);
    if (trimmed.empty()) continue;
    if (const auto id = NodeId::parse(trimmed)) {
      if (add(*id, self)) ++added;
    }
  }
  return added;
}

std::string KnownHosts::to_list() const {
  std::string out;
  for (const auto& id : all()) {
    if (!out.empty()) out += ',';
    out += id.to_string();
  }
  return out;
}

}  // namespace iov
