#include "algorithm/known_hosts.h"

#include <algorithm>

#include "common/strings.h"

namespace iov {

bool KnownHosts::add(const NodeId& id, const NodeId& self) {
  if (!id.valid() || id == self) return false;
  return hosts_.insert(id).second;
}

bool KnownHosts::remove(const NodeId& id) { return hosts_.erase(id) > 0; }

std::vector<NodeId> KnownHosts::all() const {
  std::vector<NodeId> out(hosts_.begin(), hosts_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> KnownHosts::sample(std::size_t k, Rng& rng) const {
  return rng.sample(all(), k);
}

std::size_t KnownHosts::add_from_list(std::string_view list,
                                      const NodeId& self) {
  std::size_t added = 0;
  for (const auto& entry : split(list, ',')) {
    const auto trimmed = trim(entry);
    if (trimmed.empty()) continue;
    if (const auto id = NodeId::parse(trimmed)) {
      if (add(*id, self)) ++added;
    }
  }
  return added;
}

std::string KnownHosts::to_list() const {
  std::string out;
  for (const auto& id : all()) {
    if (!out.empty()) out += ',';
    out += id.to_string();
  }
  return out;
}

}  // namespace iov
