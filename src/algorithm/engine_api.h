// The interface an algorithm sees of its engine.
//
// The paper's central interface claim (§2.1) is that "the application
// developer only needs to be aware of one function of the engine: the
// send function", with everything else message driven. EngineApi::send is
// that function. The remaining members are the engine facilities the
// paper exposes implicitly — measurements on request, emulated bandwidth
// control, timers (delivered as kTimer *messages*, keeping algorithms
// purely reactive), and local application delivery.
//
// Two substrates implement this interface:
//   * engine::Engine  — real threads + TCP (src/engine), and
//   * sim::SimEngine  — deterministic discrete-event execution (src/sim),
// which is what lets one algorithm implementation run both on live
// sockets and inside reproducible large-scale experiments.
//
// Threading contract: every method here may only be called from within
// Algorithm callbacks (i.e., on the engine thread). The engine guarantees
// the whole algorithm executes single-threaded (§2.1), so algorithms need
// no locks — and in exchange must never block.
#pragma once

#include <optional>
#include <string_view>
#include <vector>

#include "common/node_id.h"
#include "common/rng.h"
#include "common/types.h"
#include "message/msg.h"
#include "net/bandwidth.h"

namespace iov {

/// Measurements of one direction of one virtual link.
struct LinkStats {
  NodeId peer;
  double rate_bps = 0.0;  ///< bytes per second over the meter window
  u64 total_bytes = 0;
  u64 total_msgs = 0;
  u64 lost_bytes = 0;     ///< bytes dropped by failures
  u64 lost_msgs = 0;
  std::size_t buffer_len = 0;  ///< current queue occupancy
  std::size_t buffer_cap = 0;
};

class EngineApi {
 public:
  virtual ~EngineApi() = default;

  // --- The interface of §2.1 ----------------------------------------------

  /// Sends `m` to `dest`, opening a persistent connection if none exists.
  /// Never fails from the algorithm's perspective ("send() has a return
  /// type of void, and all abnormal results ... are handled by the engine
  /// transparently", §2.3): failures surface later as kBrokenLink /
  /// kBrokenSource messages.
  ///
  /// A *data* message received in process() may be passed here verbatim
  /// (zero copy); any other received message must be clone()d first
  /// (§2.3). Debug builds assert on violations.
  virtual void send(const MsgPtr& m, const NodeId& dest) = 0;

  // --- Identity and time ----------------------------------------------------

  /// This node's publicized id (IP:port).
  virtual NodeId self() const = 0;

  /// Current time on this substrate's clock (virtual under simulation).
  virtual TimePoint now() const = 0;

  /// Deterministic per-node random stream.
  virtual Rng& rng() = 0;

  // --- Timers ----------------------------------------------------------------

  /// Schedules a kTimer message with param0 == `timer_id` to be delivered
  /// to the algorithm after `delay`. One-shot; re-arm from the handler for
  /// periodic behaviour.
  virtual void set_timer(Duration delay, i32 timer_id) = 0;

  // --- Topology and measurements --------------------------------------------

  /// Peers with live incoming connections to this node.
  virtual std::vector<NodeId> upstreams() const = 0;

  /// Peers with live outgoing connections from this node.
  virtual std::vector<NodeId> downstreams() const = 0;

  /// Measurements of the incoming link from `peer`, if one exists.
  virtual std::optional<LinkStats> upstream_stats(
      const NodeId& peer) const = 0;

  /// Measurements of the outgoing link to `peer`, if one exists.
  virtual std::optional<LinkStats> downstream_stats(
      const NodeId& peer) const = 0;

  // --- Emulation -------------------------------------------------------------

  /// This node's emulated-bandwidth control (per-node and per-link caps).
  virtual BandwidthEmulator& bandwidth() = 0;

  // --- Local application -----------------------------------------------------

  /// Hands a data message to the locally registered application for
  /// session m->app(), if this node joined it as a receiver. Called by
  /// algorithms when they decide a message is (also) consumed locally.
  virtual void deliver_local(const MsgPtr& m) = 0;

  /// True if this node currently hosts the data source of `app`.
  virtual bool is_source(u32 app) const = 0;

  // --- Control ----------------------------------------------------------------

  /// Appends a line to the centralized trace log (observer type kTrace).
  virtual void trace(std::string_view text) = 0;

  /// Tears down the persistent connection to `peer` (both directions),
  /// notifying the peer's engine via EOF.
  virtual void close_link(const NodeId& peer) = 0;

  /// Requests graceful termination of this node.
  virtual void shutdown() = 0;
};

}  // namespace iov
