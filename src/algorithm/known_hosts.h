// KnownHosts — the local membership view every algorithm keeps
// (paper §2.2, "upon receiving the bootstrap message from the observer,
// it records the set of initial nodes in a local data structure referred
// to as KnownHosts").
//
// Hosts are learned from the observer's bootstrap reply and from protocol
// traffic (any message's origin can be recorded), and forgotten when a
// failure notification arrives.
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "common/node_id.h"
#include "common/rng.h"

namespace iov {

class KnownHosts {
 public:
  /// Records `id`; returns true if it was new. The local node's own id and
  /// invalid ids are ignored.
  bool add(const NodeId& id, const NodeId& self);

  /// Removes a host (e.g., after kBrokenLink); returns true if present.
  bool remove(const NodeId& id);

  bool contains(const NodeId& id) const { return hosts_.count(id) > 0; }
  std::size_t size() const { return hosts_.size(); }
  bool empty() const { return hosts_.empty(); }

  /// Stable snapshot, sorted for determinism.
  std::vector<NodeId> all() const;

  /// Uniform random sample of up to `k` distinct hosts.
  std::vector<NodeId> sample(std::size_t k, Rng& rng) const;

  /// Parses a bootstrap reply payload: comma-separated "ip:port" list.
  /// Unparseable entries are skipped. Returns how many were added.
  std::size_t add_from_list(std::string_view list, const NodeId& self);

  /// Serializes to the bootstrap-reply wire form.
  std::string to_list() const;

 private:
  std::unordered_set<NodeId> hosts_;
  // Insertion-order mirror of `hosts_` so sample() can pick indices in
  // O(k) instead of copying the whole set per call — the query relay
  // path samples on every hop, which made O(n) sampling the dominant
  // cost of large join waves.
  std::vector<NodeId> order_;
};

}  // namespace iov
