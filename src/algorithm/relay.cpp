#include "algorithm/relay.h"

#include "common/strings.h"

namespace iov {

namespace {
const std::set<NodeId> kNoChildren;
}  // namespace

void RelayAlgorithm::set_consume(u32 app, bool consume) {
  if (consume) {
    consume_.insert(app);
  } else {
    consume_.erase(app);
  }
}

const std::set<NodeId>& RelayAlgorithm::children(u32 app) const {
  const auto it = children_.find(app);
  return it == children_.end() ? kNoChildren : it->second;
}

Disposition RelayAlgorithm::on_data(const MsgPtr& m) {
  if (consume_.count(m->app()) > 0) engine().deliver_local(m);
  // Zero-copy fan-out: the same MsgPtr goes to every child; the engine's
  // switch layer handles per-destination queueing.
  for (const auto& child : children(m->app())) {
    engine().send(m, child);
  }
  return Disposition::kDone;
}

void RelayAlgorithm::on_control(const MsgPtr& m) {
  const auto child = NodeId::parse(trim(m->param_text()));
  if (!child) return;
  const u32 app = static_cast<u32>(m->param(1));
  switch (m->param(0)) {
    case kAddChild:
      add_child(app, *child);
      break;
    case kRemoveChild:
      remove_child(app, *child);
      break;
    default:
      break;
  }
}

void RelayAlgorithm::on_join(u32 app, std::string_view arg) {
  (void)arg;
  set_consume(app, true);
}

void RelayAlgorithm::on_broken_link(const NodeId& peer) {
  for (auto& [app, kids] : children_) kids.erase(peer);
}

std::string RelayAlgorithm::status() const {
  std::size_t edges = 0;
  for (const auto& [app, kids] : children_) edges += kids.size();
  return strf("relay apps=%zu edges=%zu", children_.size(), edges);
}

}  // namespace iov
