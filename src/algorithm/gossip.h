// GossipAlgorithm — an epidemic dissemination prefab built on the
// iAlgorithm `disseminate` utility (paper §2.2), extending the
// prefabricated-algorithm library the paper's conclusion calls for.
//
// Each data message is flooded epidemically: on first sight of a
// (origin, seq) pair, the node delivers it locally (if consuming) and
// re-disseminates it to `fanout` random known hosts with probability
// `p`. Duplicates are suppressed by a bounded recently-seen set, so the
// flood terminates; with fanout f and probability p, coverage follows
// the usual epidemic threshold (f·p > 1 reaches almost all nodes).
#pragma once

#include <deque>
#include <set>

#include "algorithm/algorithm.h"

namespace iov {

class GossipAlgorithm : public Algorithm {
 public:
  /// `fanout` targets per round, each infected with probability `p`.
  explicit GossipAlgorithm(std::size_t fanout = 4, double p = 1.0,
                           std::size_t memory = 4096)
      : fanout_(fanout), p_(p), memory_(memory) {}

  /// Marks this node as a local consumer of `app`.
  void set_consume(u32 app, bool consume);

  /// Distinct messages seen so far.
  u64 seen_count() const { return seen_total_; }
  /// Duplicates suppressed so far.
  u64 suppressed() const { return suppressed_; }

  std::string status() const override;

 protected:
  Disposition on_data(const MsgPtr& m) override;
  void on_join(u32 app, std::string_view arg) override;

 private:
  struct Key {
    NodeId origin;
    u32 app;
    u32 seq;
    auto operator<=>(const Key&) const = default;
  };

  const std::size_t fanout_;
  const double p_;
  const std::size_t memory_;
  std::set<u32> consume_;
  std::set<Key> seen_;
  std::deque<Key> seen_order_;  // FIFO eviction keeps `seen_` bounded
  u64 seen_total_ = 0;
  u64 suppressed_ = 0;
};

}  // namespace iov
