#include "algorithm/gossip.h"

#include "common/strings.h"

namespace iov {

void GossipAlgorithm::set_consume(u32 app, bool consume) {
  if (consume) {
    consume_.insert(app);
  } else {
    consume_.erase(app);
  }
}

void GossipAlgorithm::on_join(u32 app, std::string_view arg) {
  (void)arg;
  set_consume(app, true);
}

Disposition GossipAlgorithm::on_data(const MsgPtr& m) {
  const Key key{m->origin(), m->app(), m->seq()};
  if (!seen_.insert(key).second) {
    ++suppressed_;
    return Disposition::kDone;
  }
  seen_order_.push_back(key);
  if (seen_order_.size() > memory_) {
    seen_.erase(seen_order_.front());
    seen_order_.pop_front();
  }
  ++seen_total_;

  if (consume_.count(m->app()) > 0) engine().deliver_local(m);
  disseminate(m, known_hosts().sample(fanout_, engine().rng()), p_);
  return Disposition::kDone;
}

std::string GossipAlgorithm::status() const {
  return strf("gossip fanout=%zu p=%.2f seen=%llu dup=%llu", fanout_, p_,
              static_cast<unsigned long long>(seen_total_),
              static_cast<unsigned long long>(suppressed_));
}

}  // namespace iov
