// The algorithm layer base class — the paper's `iAlgorithm` (§2.2 "Basic
// elements of algorithms", §2.3 Table 2).
//
// An application-specific algorithm derives from Algorithm and overrides
// the handlers it cares about; everything it does not handle falls
// through to the defaults here ("if a message type is not handled in the
// algorithm, the default process() function provided by the base
// iAlgorithm class takes this responsibility. In fact, the only message
// type that the algorithm must handle is the type data").
//
// Two equivalent extension styles are supported:
//   * override process() wholesale and write the paper's switch statement
//     (call Algorithm::process(m) as the default branch, exactly Table 2);
//   * or override the typed on_*() hooks, which the base process()
//     dispatches to. This is what the bundled algorithms do.
//
// Everything runs on the engine thread; no locking anywhere (§2.1).
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "algorithm/engine_api.h"
#include "algorithm/known_hosts.h"
#include "common/node_id.h"
#include "message/msg.h"

namespace iov {

/// What the algorithm tells the engine about a message it was handed.
enum class Disposition {
  /// Processing complete; the engine may reclaim its reference.
  kDone,
  /// The algorithm buffered the message for n-to-m merging/coding and
  /// will emit results later (§2.2, the `hold` mechanism). The engine
  /// keeps hands off; the algorithm now co-owns the reference.
  kHold,
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// Called by the engine exactly once before any message is delivered.
  void bind(EngineApi& api) { api_ = &api; }

  /// Called once the engine is running and (if configured) bootstrapped.
  virtual void on_start() {}

  /// The message handler (paper Table 2). The default implementation
  /// dispatches to the typed hooks below and implements the iAlgorithm
  /// default behaviours (recording KnownHosts from bootstrap replies,
  /// replying to pings, tracking throughput reports, ...).
  virtual Disposition process(const MsgPtr& m);

  /// One-line algorithm status appended to the periodic observer report.
  virtual std::string status() const { return {}; }

  /// Membership view (bootstrap subset plus origins learned since).
  const KnownHosts& known_hosts() const { return known_hosts_; }
  KnownHosts& known_hosts() { return known_hosts_; }

 protected:
  /// The engine this algorithm is bound to. Only valid inside callbacks.
  EngineApi& engine() const { return *api_; }

  // --- Typed hooks (defaults are no-ops unless stated) -----------------------

  /// A data message arrived (from the network or from the local source
  /// pump). This is the one handler real algorithms must implement; the
  /// default consumes the message locally (delivers it to the registered
  /// application) without forwarding.
  virtual Disposition on_data(const MsgPtr& m);

  /// Observer deployed an application source at this node. The engine has
  /// already started pumping the application; the hook lets the algorithm
  /// set up dissemination state.
  virtual void on_deploy(u32 app) { (void)app; }

  /// Observer terminated the application source hosted here.
  virtual void on_terminate_source(u32 app) { (void)app; }

  /// Observer asked this node to join session `app`. `arg` is the
  /// control message's text parameter (algorithm-specific, e.g. a hint
  /// about an existing member).
  virtual void on_join(u32 app, std::string_view arg) {
    (void)app;
    (void)arg;
  }

  /// Observer asked this node to leave session `app`.
  virtual void on_leave(u32 app) { (void)app; }

  /// Algorithm-specific observer control (paper: a type plus two integer
  /// parameters).
  virtual void on_control(const MsgPtr& m) { (void)m; }

  /// The observer announced the data source of session `app` (paper type
  /// sAnnounce); `source` is the source node's id in text form.
  virtual void on_announce(u32 app, std::string_view source) {
    (void)app;
    (void)source;
  }

  /// The session source at `m->origin()` failed; clear per-app state
  /// (paper Table 2, case BrokenSource).
  virtual void on_broken_source(const MsgPtr& m) { (void)m; }

  /// The direct link to `peer` failed or was torn down.
  virtual void on_broken_link(const NodeId& peer) { (void)peer; }

  /// A timer armed via engine().set_timer fired.
  virtual void on_timer(i32 timer_id) { (void)timer_id; }

  /// Throughput report for the incoming link from `peer` (case
  /// UpThroughput in Table 2). Default records it; see upstream_rate().
  virtual void on_up_throughput(const NodeId& peer, double bytes_per_sec);

  /// Throughput report for the outgoing link to `peer`.
  virtual void on_down_throughput(const NodeId& peer, double bytes_per_sec);

  /// A kPong echo came back; `rtt` is the measured round trip.
  virtual void on_pong(const NodeId& peer, Duration rtt) {
    (void)peer;
    (void)rtt;
  }

  /// Any message whose type is >= kFirstUserType (an algorithm protocol
  /// message from a peer). Default ignores it.
  virtual Disposition on_user(const MsgPtr& m) {
    (void)m;
    return Disposition::kDone;
  }

  // --- iAlgorithm utility library --------------------------------------------

  /// Gossip primitive (§2.2): sends a clone of `m` to each host in
  /// `targets` independently with probability `p`. Returns the number of
  /// copies sent.
  std::size_t disseminate(const MsgPtr& m, const std::vector<NodeId>& targets,
                          double p);

  /// disseminate() over the whole KnownHosts set.
  std::size_t disseminate(const MsgPtr& m, double p);

  /// Sends a latency probe; the base class will invoke on_pong() when the
  /// echo returns.
  void ping(const NodeId& peer);

  /// Most recent throughput report for the given peer, bytes/s (0 if none).
  double upstream_rate(const NodeId& peer) const;
  double downstream_rate(const NodeId& peer) const;

  const std::unordered_map<NodeId, double>& upstream_rates() const {
    return up_rate_;
  }
  const std::unordered_map<NodeId, double>& downstream_rates() const {
    return down_rate_;
  }

 private:
  EngineApi* api_ = nullptr;
  KnownHosts known_hosts_;
  std::unordered_map<NodeId, double> up_rate_;
  std::unordered_map<NodeId, double> down_rate_;
};

}  // namespace iov
