// RelayAlgorithm — the prefabricated forwarding algorithm the paper uses
// for its engine-correctness experiments (§2.4): "when the number of
// downstream nodes is more than one, we use the simple algorithm that
// identical copies of the messages are sent to all downstream nodes. When
// more than one upstream node exists, no merging is performed."
//
// The dissemination topology is static per application session: each node
// is configured with the set of children it forwards to, either
// programmatically before the engine starts or at runtime via observer
// control messages (op kAddChild / kRemoveChild).
#pragma once

#include <map>
#include <set>

#include "algorithm/algorithm.h"

namespace iov {

class RelayAlgorithm : public Algorithm {
 public:
  /// Control-message opcodes (kControl param0) understood at runtime;
  /// param1 is the application id and the text argument is the child
  /// NodeId.
  enum ControlOp : i32 { kAddChild = 1, kRemoveChild = 2 };

  /// Configures a forwarding edge for `app` (harness-side setup).
  void add_child(u32 app, const NodeId& child) { children_[app].insert(child); }
  void remove_child(u32 app, const NodeId& child) {
    const auto it = children_.find(app);
    if (it != children_.end()) it->second.erase(child);
  }

  /// Marks this node as a local consumer of `app`: data is handed to the
  /// registered Application in addition to being forwarded.
  void set_consume(u32 app, bool consume);

  const std::set<NodeId>& children(u32 app) const;

  std::string status() const override;

 protected:
  Disposition on_data(const MsgPtr& m) override;
  void on_control(const MsgPtr& m) override;
  void on_join(u32 app, std::string_view arg) override;
  void on_broken_link(const NodeId& peer) override;

 private:
  std::map<u32, std::set<NodeId>> children_;
  std::set<u32> consume_;
};

}  // namespace iov
