// The application layer (paper §2): "produces and interprets the data
// portion of application-layer messages at both the sending and the
// receiving ends".
//
// A node that is deployed as a *source* of an application session is
// pumped by the engine: whenever the engine's switch has room, it asks
// the application for the next message and routes it through the
// algorithm exactly like a message that arrived from the network. This
// keeps the algorithm purely reactive while giving sources natural
// back-pressure — a back-to-back source simply always has a message
// ready, and is throttled by its sender buffers filling up (which is how
// the paper's "as fast as possible" chain workload behaves).
#pragma once

#include "common/node_id.h"
#include "common/types.h"
#include "message/msg.h"

namespace iov {

class Application {
 public:
  virtual ~Application() = default;

  /// Called by the engine when this node is an active source of `app` and
  /// the switch can accept another message. Return nullptr when no message
  /// is ready yet (e.g., a constant-bit-rate source pacing itself against
  /// `now`); the engine will ask again.
  virtual MsgPtr next_message(u32 app, const NodeId& self, TimePoint now) = 0;

  /// Called when the algorithm delivers a data message of this application
  /// to the local node (EngineApi::deliver_local).
  virtual void deliver(const MsgPtr& m, TimePoint now) = 0;
};

}  // namespace iov
