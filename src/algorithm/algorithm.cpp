#include "algorithm/algorithm.h"

#include "common/logging.h"
#include "message/codec.h"

namespace iov {

Disposition Algorithm::process(const MsgPtr& m) {
  // Any peer message teaches us its origin (cheap passive membership
  // learning). Observer control-plane messages are excluded — the
  // observer is not an overlay node and must not enter KnownHosts.
  if (m->origin().valid() && !is_observer_type(m->type())) {
    known_hosts_.add(m->origin(), engine().self());
  }

  switch (m->type()) {
    case MsgType::kData:
      return on_data(m);

    case MsgType::kBootReply:
      known_hosts_.add_from_list(m->param_text(), engine().self());
      return Disposition::kDone;

    case MsgType::kSDeploy:
      on_deploy(static_cast<u32>(m->param(0)));
      return Disposition::kDone;

    case MsgType::kSTerminate:
      on_terminate_source(static_cast<u32>(m->param(0)));
      return Disposition::kDone;

    case MsgType::kSJoin:
      on_join(static_cast<u32>(m->param(0)), m->param_text());
      return Disposition::kDone;

    case MsgType::kSLeave:
      on_leave(static_cast<u32>(m->param(0)));
      return Disposition::kDone;

    case MsgType::kControl:
      on_control(m);
      return Disposition::kDone;

    case MsgType::kSAnnounce:
      on_announce(static_cast<u32>(m->param(0)), m->param_text());
      return Disposition::kDone;

    case MsgType::kBrokenSource:
      known_hosts_.remove(m->origin());
      on_broken_source(m);
      return Disposition::kDone;

    case MsgType::kBrokenLink:
      up_rate_.erase(m->origin());
      down_rate_.erase(m->origin());
      on_broken_link(m->origin());
      return Disposition::kDone;

    case MsgType::kUpThroughput:
      on_up_throughput(m->origin(), static_cast<double>(m->param(0)));
      return Disposition::kDone;

    case MsgType::kDownThroughput:
      on_down_throughput(m->origin(), static_cast<double>(m->param(0)));
      return Disposition::kDone;

    case MsgType::kTimer:
      on_timer(m->param(0));
      return Disposition::kDone;

    case MsgType::kPing: {
      // Echo the probe payload (the sender's timestamp) straight back.
      auto pong = std::make_shared<Msg>(MsgType::kPong, engine().self(),
                                        kControlApp, 0, m->payload());
      engine().send(pong, m->origin());
      return Disposition::kDone;
    }

    case MsgType::kPong: {
      if (m->payload_size() >= 8) {
        const auto t0 =
            static_cast<TimePoint>(codec::read_u64(m->payload()->data()));
        on_pong(m->origin(), engine().now() - t0);
      }
      return Disposition::kDone;
    }

    default:
      if (to_wire(m->type()) >= to_wire(MsgType::kFirstUserType)) {
        return on_user(m);
      }
      IOV_LOG_DEBUG("algorithm")
          << "unhandled message " << m->describe() << " at "
          << engine().self().to_string();
      return Disposition::kDone;
  }
}

Disposition Algorithm::on_data(const MsgPtr& m) {
  engine().deliver_local(m);
  return Disposition::kDone;
}

void Algorithm::on_up_throughput(const NodeId& peer, double bytes_per_sec) {
  up_rate_[peer] = bytes_per_sec;
}

void Algorithm::on_down_throughput(const NodeId& peer, double bytes_per_sec) {
  down_rate_[peer] = bytes_per_sec;
}

std::size_t Algorithm::disseminate(const MsgPtr& m,
                                   const std::vector<NodeId>& targets,
                                   double p) {
  std::size_t sent = 0;
  for (const auto& target : targets) {
    if (target == engine().self()) continue;
    if (engine().rng().chance(p)) {
      engine().send(m->clone(), target);
      ++sent;
    }
  }
  return sent;
}

std::size_t Algorithm::disseminate(const MsgPtr& m, double p) {
  return disseminate(m, known_hosts_.all(), p);
}

void Algorithm::ping(const NodeId& peer) {
  std::vector<u8> payload(8);
  codec::write_u64(payload.data(), static_cast<u64>(engine().now()));
  auto probe = std::make_shared<Msg>(MsgType::kPing, engine().self(),
                                     kControlApp, 0,
                                     Buffer::wrap(std::move(payload)));
  engine().send(probe, peer);
}

double Algorithm::upstream_rate(const NodeId& peer) const {
  const auto it = up_rate_.find(peer);
  return it == up_rate_.end() ? 0.0 : it->second;
}

double Algorithm::downstream_rate(const NodeId& peer) const {
  const auto it = down_rate_.find(peer);
  return it == down_rate_.end() ? 0.0 : it->second;
}

}  // namespace iov
