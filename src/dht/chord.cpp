#include "dht/chord.h"

#include "common/logging.h"
#include "common/strings.h"

namespace iov::dht {

namespace {

constexpr i32 kStabilizeTimer = 50;
constexpr i32 kFingerTimer = 51;
constexpr Duration kStabilizePeriod = millis(400);
constexpr Duration kFingerPeriod = millis(120);
constexpr u32 kJoinRequest = 0xffffffffu;
constexpr u32 kFingerRequestBase = 0xffff0000u;
constexpr int kInitialTtl = 128;

std::map<std::string, std::string> parse_fields(std::string_view text) {
  std::map<std::string, std::string> out;
  for (const auto& field : split(text, '|')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) continue;
    out[field.substr(0, eq)] = field.substr(eq + 1);
  }
  return out;
}

std::string hex(u64 v) { return strf("%llx", (unsigned long long)v); }

std::optional<u64> parse_hex(const std::string& s) {
  if (s.empty()) return std::nullopt;
  char* end = nullptr;
  const u64 v = std::strtoull(s.c_str(), &end, 16);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

}  // namespace

u64 hash_bytes(std::string_view bytes) {
  u64 h = 0x9e3779b97f4a7c15ULL;
  for (const char c : bytes) {
    h ^= static_cast<u8>(c);
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 31;
  }
  h ^= h >> 33;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 29;
  return h;
}

u64 hash_node(const NodeId& id) { return hash_bytes(id.to_string()); }

bool in_ring_oc(u64 x, u64 a, u64 b) {
  if (a == b) return true;  // the whole ring (single-node case)
  if (a < b) return x > a && x <= b;
  return x > a || x <= b;  // wrapping interval
}

bool in_ring_oo(u64 x, u64 a, u64 b) {
  if (a == b) return x != a;
  if (a < b) return x > a && x < b;
  return x > a || x < b;
}

NodeId ChordAlgorithm::successor() const {
  return successors_.empty() ? engine().self() : successors_.front();
}

void ChordAlgorithm::on_start() {
  id_ = hash_node(engine().self());
  if (successors_.empty()) successors_.push_back(engine().self());
  engine().set_timer(kStabilizePeriod, kStabilizeTimer);
  engine().set_timer(kFingerPeriod, kFingerTimer);
}

bool ChordAlgorithm::owns(u64 key) const {
  if (successor() == engine().self()) return true;  // alone: own the ring
  if (!predecessor_.valid()) return false;          // still joining
  return in_ring_oc(key, hash_node(predecessor_), id_);
}

NodeId ChordAlgorithm::closest_preceding(u64 key) const {
  NodeId best;
  u64 best_distance = ~0ULL;
  const auto consider = [&](const NodeId& candidate) {
    if (!candidate.valid() || candidate == engine().self()) return;
    const u64 h = hash_node(candidate);
    if (!in_ring_oo(h, id_, key)) return;
    const u64 distance = key - h;  // ring distance below key (mod 2^64)
    if (distance < best_distance) {
      best_distance = distance;
      best = candidate;
    }
  };
  for (const auto& finger : fingers_) consider(finger);
  for (const auto& succ : successors_) consider(succ);
  return best.valid() ? best : successor();
}

void ChordAlgorithm::join(const NodeId& known) {
  route_find(id_, kJoinRequest, engine().self(), 0);
  // The local route immediately forwards through `known` when we know
  // nobody else yet.
  if (successor() == engine().self() && known.valid() &&
      known != engine().self()) {
    const std::string text = "key=" + hex(id_) +
                             "|req=" + strf("%u", kJoinRequest) +
                             "|reply=" + engine().self().to_string() +
                             "|hops=0|ttl=" + strf("%d", kInitialTtl);
    engine().send(Msg::control(kFindSucc, engine().self(), kControlApp, 0, 0,
                               text),
                  known);
  }
}

void ChordAlgorithm::lookup(u64 key, u32 request) {
  route_find(key, request, engine().self(), 0);
}

void ChordAlgorithm::route_find(u64 key, u32 request, const NodeId& reply_to,
                                u32 hops, int ttl) {
  if (ttl <= 0) return;  // routing loop guard (pre-stabilization rings)
  NodeId owner;
  if (successor() == engine().self()) {
    owner = engine().self();  // one-node ring
  } else if (in_ring_oc(key, id_, hash_node(successor()))) {
    owner = successor();
  }
  if (owner.valid()) {
    if (reply_to == engine().self()) {
      const LookupResult result{request, key, owner, hops};
      if (request == kJoinRequest) {
        adopt_successor(result.owner);
      } else if (request >= kFingerRequestBase && request != kJoinRequest) {
        fingers_[request - kFingerRequestBase] = result.owner;
      } else {
        lookups_.push_back(result);
        on_lookup(result);
      }
    } else {
      const std::string text = "key=" + hex(key) +
                               "|req=" + strf("%u", request) +
                               "|owner=" + owner.to_string() +
                               "|hops=" + strf("%u", hops);
      engine().send(Msg::control(kSuccIs, engine().self(), kControlApp, 0, 0,
                                 text),
                    reply_to);
    }
    return;
  }
  const std::string text = "key=" + hex(key) + "|req=" +
                           strf("%u", request) + "|reply=" +
                           reply_to.to_string() + "|hops=" +
                           strf("%u", hops + 1) + "|ttl=" +
                           strf("%d", ttl - 1);
  engine().send(
      Msg::control(kFindSucc, engine().self(), kControlApp, 0, 0, text),
      closest_preceding(key));
}

void ChordAlgorithm::put(std::string_view key, std::string_view value) {
  const u64 h = hash_bytes(key);
  if (owns(h)) {
    store_[std::string(key)] = std::string(value);
    return;
  }
  const std::string text = "key=" + std::string(key) +
                           "|value=" + std::string(value) +
                           "|ttl=" + strf("%d", kInitialTtl);
  engine().send(Msg::control(kPut, engine().self(), kControlApp, 0, 0, text),
                in_ring_oc(h, id_, hash_node(successor()))
                    ? successor()
                    : closest_preceding(h));
}

void ChordAlgorithm::get(std::string_view key, u32 request) {
  const u64 h = hash_bytes(key);
  if (owns(h)) {
    const auto it = store_.find(std::string(key));
    gets_.push_back(GetResult{request, it != store_.end(),
                              it != store_.end() ? it->second : ""});
    return;
  }
  const std::string text = "key=" + std::string(key) +
                           "|req=" + strf("%u", request) +
                           "|reply=" + engine().self().to_string() +
                           "|ttl=" + strf("%d", kInitialTtl);
  engine().send(Msg::control(kGet, engine().self(), kControlApp, 0, 0, text),
                in_ring_oc(h, id_, hash_node(successor()))
                    ? successor()
                    : closest_preceding(h));
}

Disposition ChordAlgorithm::on_user(const MsgPtr& m) {
  const auto fields = parse_fields(m->param_text());
  const auto field = [&](const char* name) -> std::string {
    const auto it = fields.find(name);
    return it == fields.end() ? std::string() : it->second;
  };
  const auto ttl_ok = [&]() -> bool {
    const long long ttl = std::strtoll(field("ttl").c_str(), nullptr, 10);
    return ttl > 0;
  };

  switch (m->type()) {
    case kFindSucc: {
      const auto key = parse_hex(field("key"));
      const auto reply = NodeId::parse(field("reply"));
      if (!key || !reply || !ttl_ok()) return Disposition::kDone;
      const auto hops =
          static_cast<u32>(std::strtoul(field("hops").c_str(), nullptr, 10));
      const auto request =
          static_cast<u32>(std::strtoul(field("req").c_str(), nullptr, 10));
      const int ttl =
          static_cast<int>(std::strtol(field("ttl").c_str(), nullptr, 10));
      route_find(*key, request, *reply, hops, ttl);
      return Disposition::kDone;
    }

    case kSuccIs: {
      const auto key = parse_hex(field("key"));
      const auto owner = NodeId::parse(field("owner"));
      if (!key || !owner) return Disposition::kDone;
      const auto hops =
          static_cast<u32>(std::strtoul(field("hops").c_str(), nullptr, 10));
      const auto request =
          static_cast<u32>(std::strtoul(field("req").c_str(), nullptr, 10));
      if (request == kJoinRequest) {
        adopt_successor(*owner);
      } else if (request >= kFingerRequestBase) {
        const std::size_t index = request - kFingerRequestBase;
        if (index < fingers_.size()) fingers_[index] = *owner;
      } else {
        const LookupResult result{request, *key, *owner, hops};
        lookups_.push_back(result);
        on_lookup(result);
      }
      return Disposition::kDone;
    }

    case kGetPred: {
      std::string succs;
      succs += engine().self().to_string();
      for (const auto& s : successors_) {
        if (s == engine().self()) continue;
        succs += ',' + s.to_string();
      }
      const std::string text =
          "pred=" + predecessor_.to_string() + "|succs=" + succs;
      engine().send(
          Msg::control(kPredIs, engine().self(), kControlApp, 0, 0, text),
          m->origin());
      return Disposition::kDone;
    }

    case kPredIs: {
      // Reply from our successor during stabilization.
      if (m->origin() != successor()) return Disposition::kDone;
      const auto pred = NodeId::parse(field("pred"));
      if (pred && pred->valid() && *pred != engine().self() &&
          in_ring_oo(hash_node(*pred), id_, hash_node(successor()))) {
        adopt_successor(*pred);
      }
      // Refresh the successor list with the successor's own chain.
      std::vector<NodeId> fresh{successor()};
      for (const auto& entry : split(field("succs"), ',')) {
        const auto id = NodeId::parse(trim(entry));
        if (!id || *id == engine().self()) continue;
        bool duplicate = false;
        for (const auto& existing : fresh) duplicate |= existing == *id;
        if (!duplicate) fresh.push_back(*id);
        if (fresh.size() >= kSuccessorListLen) break;
      }
      successors_ = std::move(fresh);
      engine().send(
          Msg::control(kNotify, engine().self(), kControlApp), successor());
      return Disposition::kDone;
    }

    case kNotify: {
      const NodeId candidate = m->origin();
      if (!predecessor_.valid() ||
          in_ring_oo(hash_node(candidate), hash_node(predecessor_), id_)) {
        predecessor_ = candidate;
      }
      return Disposition::kDone;
    }

    case kPut: {
      const std::string key = field("key");
      if (key.empty() || !ttl_ok()) return Disposition::kDone;
      route_towards(hash_bytes(key), m);
      return Disposition::kDone;
    }

    case kGet: {
      const std::string key = field("key");
      if (key.empty() || !ttl_ok()) return Disposition::kDone;
      route_towards(hash_bytes(key), m);
      return Disposition::kDone;
    }

    case kValue: {
      GetResult result;
      result.request =
          static_cast<u32>(std::strtoul(field("req").c_str(), nullptr, 10));
      result.found = field("found") == "1";
      result.value = field("value");
      gets_.push_back(std::move(result));
      return Disposition::kDone;
    }

    default:
      return Disposition::kDone;
  }
}

// Handles kPut/kGet at each hop: consume if owned, else forward with a
// decremented TTL.
void ChordAlgorithm::route_towards(u64 key, const MsgPtr& m) {
  auto fields = parse_fields(m->param_text());
  if (owns(key)) {
    if (m->type() == kPut) {
      store_[fields["key"]] = fields["value"];
    } else {
      const auto reply = NodeId::parse(fields["reply"]);
      if (!reply) return;
      const auto it = store_.find(fields["key"]);
      const std::string text = "key=" + fields["key"] +
                               "|req=" + fields["req"] +
                               "|found=" + (it != store_.end() ? "1" : "0") +
                               "|value=" +
                               (it != store_.end() ? it->second : "");
      engine().send(
          Msg::control(kValue, engine().self(), kControlApp, 0, 0, text),
          *reply);
    }
    return;
  }
  const long long ttl = std::strtoll(fields["ttl"].c_str(), nullptr, 10);
  fields["ttl"] = strf("%lld", ttl - 1);
  std::string text;
  for (const auto& [k, v] : fields) {
    if (!text.empty()) text += '|';
    text += k + "=" + v;
  }
  const NodeId next = in_ring_oc(key, id_, hash_node(successor()))
                          ? successor()
                          : closest_preceding(key);
  if (next == engine().self()) return;  // nowhere to go yet
  engine().send(Msg::control(m->type(), m->origin(), kControlApp, 0, 0, text),
                next);
}

void ChordAlgorithm::adopt_successor(const NodeId& candidate) {
  if (!candidate.valid() || candidate == engine().self()) return;
  if (successors_.empty()) {
    successors_.push_back(candidate);
  } else {
    successors_.front() = candidate;
  }
}

void ChordAlgorithm::stabilize() {
  if (successor() == engine().self()) {
    // The bootstrap node: once somebody notifies us (becoming our
    // predecessor), it is also our best successor candidate — this is
    // how the first edge of the ring closes.
    if (predecessor_.valid() && predecessor_ != engine().self()) {
      adopt_successor(predecessor_);
    } else {
      return;
    }
  }
  engine().send(Msg::control(kGetPred, engine().self(), kControlApp),
                successor());
}

void ChordAlgorithm::fix_next_finger() {
  if (successor() == engine().self()) return;
  const std::size_t i = next_finger_;
  next_finger_ = (next_finger_ + 1) % kFingers;
  const u64 target = id_ + (i == 63 ? (1ULL << 63) : (1ULL << i));
  route_find(target, kFingerRequestBase + static_cast<u32>(i),
             engine().self(), 0);
}

void ChordAlgorithm::on_timer(i32 timer_id) {
  if (timer_id == kStabilizeTimer) {
    stabilize();
    engine().set_timer(kStabilizePeriod, kStabilizeTimer);
  } else if (timer_id == kFingerTimer) {
    fix_next_finger();
    engine().set_timer(kFingerPeriod, kFingerTimer);
  }
}

void ChordAlgorithm::drop_node(const NodeId& peer) {
  if (predecessor_ == peer) predecessor_ = NodeId();
  for (auto& finger : fingers_) {
    if (finger == peer) finger = NodeId();
  }
  std::erase(successors_, peer);
  if (successors_.empty()) successors_.push_back(engine().self());
}

void ChordAlgorithm::on_broken_link(const NodeId& peer) { drop_node(peer); }

void ChordAlgorithm::on_control(const MsgPtr& m) {
  switch (m->param(0)) {
    case kOpJoin: {
      if (const auto known = NodeId::parse(trim(m->param_text()))) {
        join(*known);
      }
      return;
    }
    case kOpPut: {
      // text = "<key>|<value>"
      const auto parts = split(m->param_text(), '|');
      if (parts.size() == 2) put(parts[0], parts[1]);
      return;
    }
    case kOpGet:
      get(trim(m->param_text()), static_cast<u32>(m->param(1)));
      return;
    default:
      return;
  }
}

std::string ChordAlgorithm::status() const {
  std::size_t gets_found = 0;
  for (const auto& g : gets_) gets_found += g.found ? 1 : 0;
  return strf("chord id=%llx succ=%s pred=%s keys=%zu gets=%zu/%zu",
              (unsigned long long)id_, successor().to_string().c_str(),
              predecessor_.to_string().c_str(), store_.size(), gets_found,
              gets_.size());
}

}  // namespace iov::dht
