// A Chord-style structured search overlay (Stoica et al., SIGCOMM'01) as
// an iOverlay algorithm — the paper's opening example of what overlay
// research builds ("structured search protocols such as Pastry and
// Chord"), and a demonstration that iAlgorithm accommodates DHTs (§4's
// comparison with Macedon makes exactly this claim).
//
// Identifier space: the full 64-bit ring; node ids and keys are
// splitmix64 hashes. Each node keeps a predecessor, a successor list
// (for failure healing), and a 64-entry finger table maintained by the
// classic periodic trio — stabilize / notify / fix-fingers — driven by
// engine timers, so the whole protocol stays message-driven and
// lock-free like every other iOverlay algorithm.
//
// find_successor routing is recursive: each hop forwards toward the
// closest preceding finger, and the terminal node answers the requester
// directly. A minimal key-value store rides on top (kPut/kGet routed the
// same way) — the "global storage systems that respond to queries" of
// the paper's application layer.
#pragma once

#include <array>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "algorithm/algorithm.h"

namespace iov::dht {

/// Protocol message types.
constexpr MsgType kFindSucc = static_cast<MsgType>(0x0331);
constexpr MsgType kSuccIs = static_cast<MsgType>(0x0332);
constexpr MsgType kGetPred = static_cast<MsgType>(0x0333);
constexpr MsgType kPredIs = static_cast<MsgType>(0x0334);
constexpr MsgType kNotify = static_cast<MsgType>(0x0335);
constexpr MsgType kPut = static_cast<MsgType>(0x0336);
constexpr MsgType kGet = static_cast<MsgType>(0x0337);
constexpr MsgType kValue = static_cast<MsgType>(0x0338);

/// splitmix64 of a byte string / node address — the ring hash.
u64 hash_bytes(std::string_view bytes);
u64 hash_node(const NodeId& id);

/// True iff x lies in the half-open ring interval (a, b] (wrapping).
bool in_ring_oc(u64 x, u64 a, u64 b);
/// True iff x lies in the open ring interval (a, b) (wrapping).
bool in_ring_oo(u64 x, u64 a, u64 b);

class ChordAlgorithm : public Algorithm {
 public:
  ChordAlgorithm() = default;

  /// Observer-control opcodes (kControl param0): the DHT can be driven
  /// entirely from the observer's console. kOpGet uses param1 as the
  /// request id.
  enum ControlOp : i32 { kOpJoin = 1, kOpPut = 2, kOpGet = 3 };

  /// This node's ring identifier (valid after on_start).
  u64 id() const { return id_; }
  NodeId successor() const;
  NodeId predecessor() const { return predecessor_; }
  const std::vector<NodeId>& successor_list() const { return successors_; }

  /// Joins the ring through `known` (any member). A node with no join
  /// call forms a one-node ring.
  void join(const NodeId& known);

  /// Asynchronously resolves the owner of `key`; the answer lands in
  /// lookups() (and on_lookup for subclasses).
  void lookup(u64 key, u32 request);

  /// Stores / retrieves through the ring.
  void put(std::string_view key, std::string_view value);
  void get(std::string_view key, u32 request);

  struct LookupResult {
    u32 request = 0;
    u64 key = 0;
    NodeId owner;
    u32 hops = 0;
  };
  struct GetResult {
    u32 request = 0;
    bool found = false;
    std::string value;
  };
  const std::vector<LookupResult>& lookups() const { return lookups_; }
  const std::vector<GetResult>& gets() const { return gets_; }

  /// Keys stored at this node (the keyspace it owns).
  std::size_t stored_keys() const { return store_.size(); }

  void on_start() override;
  std::string status() const override;

 protected:
  Disposition on_user(const MsgPtr& m) override;
  void on_timer(i32 timer_id) override;
  void on_broken_link(const NodeId& peer) override;
  void on_control(const MsgPtr& m) override;

  /// Subclass hook invoked when a lookup completes.
  virtual void on_lookup(const LookupResult& result) { (void)result; }

 private:
  static constexpr std::size_t kFingers = 64;
  static constexpr std::size_t kSuccessorListLen = 4;

  void route_find(u64 key, u32 request, const NodeId& reply_to,
                  u32 hops, int ttl = 128);
  void route_towards(u64 key, const MsgPtr& m);
  NodeId closest_preceding(u64 key) const;
  bool owns(u64 key) const;
  void stabilize();
  void fix_next_finger();
  void adopt_successor(const NodeId& candidate);
  void drop_node(const NodeId& peer);

  u64 id_ = 0;
  NodeId predecessor_;
  std::vector<NodeId> successors_;  // [0] is THE successor; self if alone
  std::array<NodeId, kFingers> fingers_{};
  std::size_t next_finger_ = 0;

  std::map<std::string, std::string> store_;
  std::vector<LookupResult> lookups_;
  std::vector<GetResult> gets_;
};

}  // namespace iov::dht
