#include "federation/federation_algorithm.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"
#include "common/strings.h"

namespace iov::federation {

namespace {

constexpr i32 kAwareTtl = 8;

/// kControl opcodes (param0) accepted at runtime.
enum ControlOp : i32 { kOpHostService = 10, kOpFederate = 20 };

std::map<std::string, std::string> parse_fields(std::string_view text,
                                                char sep) {
  std::map<std::string, std::string> out;
  for (const auto& field : split(text, sep)) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) continue;
    out[field.substr(0, eq)] = field.substr(eq + 1);
  }
  return out;
}

std::string serialize_mapping(const std::map<ServiceType, NodeId>& mapping) {
  std::string out;
  for (const auto& [t, id] : mapping) {
    if (!out.empty()) out += ',';
    out += strf("%u:", t) + id.to_string();
  }
  return out;
}

std::optional<std::map<ServiceType, NodeId>> parse_mapping(
    std::string_view text) {
  std::map<ServiceType, NodeId> out;
  if (trim(text).empty()) return out;
  for (const auto& entry : split(text, ',')) {
    const auto colon = entry.find(':');
    if (colon == std::string::npos) return std::nullopt;
    unsigned long long t = 0;
    if (!parse_u64(std::string_view(entry).substr(0, colon), 0xffffffffULL,
                   &t)) {
      return std::nullopt;
    }
    const auto id = NodeId::parse(std::string_view(entry).substr(colon + 1));
    if (!id) return std::nullopt;
    out[static_cast<ServiceType>(t)] = *id;
  }
  return out;
}

}  // namespace

const char* strategy_name(FederationStrategy s) {
  switch (s) {
    case FederationStrategy::kSFlow: return "sFlow";
    case FederationStrategy::kFixed: return "fixed";
    case FederationStrategy::kRandom: return "random";
  }
  return "?";
}

FederationAlgorithm::FederationAlgorithm(FederationStrategy strategy,
                                         ServiceGraph universe,
                                         double capacity)
    : strategy_(strategy), universe_(std::move(universe)),
      capacity_(capacity) {}

void FederationAlgorithm::on_start() {
  for (const auto t : hosted_) disseminate_aware(t);
}

void FederationAlgorithm::host_service(ServiceType t) {
  if (!hosted_.insert(t).second) return;
  disseminate_aware(t);
}

void FederationAlgorithm::disseminate_aware(ServiceType t) {
  ++aware_version_;
  const std::string body =
      strf("cap=%.0f;load=%zu;ttl=%d", capacity_, load_, kAwareTtl);
  const auto m = Msg::control(kSAware, engine().self(), kControlApp,
                              static_cast<i32>(t),
                              static_cast<i32>(aware_version_), body);
  // "disseminates its existence to all its known hosts via the sAware
  // message" (§3.4).
  for (const auto& host : known_hosts().all()) {
    engine().send(m->clone(), host);
  }
}

void FederationAlgorithm::handle_aware(const MsgPtr& m) {
  const auto t = static_cast<ServiceType>(m->param(0));
  const auto version = static_cast<u32>(m->param(1));
  const NodeId origin = m->origin();
  if (origin == engine().self()) return;

  const auto fields = parse_fields(m->param_text(), ';');
  AwareInfo info;
  info.capacity = std::strtod(fields.count("cap") ? fields.at("cap").c_str()
                                                  : "0", nullptr);
  unsigned long long v = 0;
  if (fields.count("load")) parse_u64(fields.at("load"), 1u << 30, &v);
  info.load = static_cast<u32>(v);
  info.version = version;
  long long ttl = 0;
  if (fields.count("ttl")) {
    ttl = std::strtoll(fields.at("ttl").c_str(), nullptr, 10);
  }

  const auto key = std::make_pair(origin, t);
  const auto seen = aware_seen_.find(key);
  if (seen != aware_seen_.end() && seen->second >= version) return;
  aware_seen_[key] = version;
  registry_[t][origin] = info;

  if (ttl <= 0) return;
  const std::string body = strf("cap=%.0f;load=%u;ttl=%lld", info.capacity,
                                info.load, ttl - 1);
  const auto relay = Msg::control(kSAware, origin, kControlApp,
                                  static_cast<i32>(t),
                                  static_cast<i32>(version), body);
  if (hosted_.empty()) {
    // Not a service node: keep the random walk going (§3.4 "the message
    // is further relayed until an existing service node is reached").
    for (const auto& host : known_hosts().sample(3, engine().rng())) {
      if (host != origin) {
        engine().send(relay, host);
        break;
      }
    }
    return;
  }
  // A service node forwards the announcement to the known instances of
  // the new service's neighbour types in the universe graph ("the direct
  // upstream and downstream nodes of the new service in its service
  // graph").
  std::set<NodeId> targets;
  const auto neighbours = [&](const std::vector<ServiceType>& types) {
    for (const auto nt : types) {
      const auto it = registry_.find(nt);
      if (it == registry_.end()) continue;
      for (const auto& [id, ignored] : it->second) targets.insert(id);
    }
  };
  neighbours(universe_.successors(t));
  neighbours(universe_.predecessors(t));
  targets.erase(origin);
  targets.erase(engine().self());
  for (const auto& target : targets) engine().send(relay->clone(), target);
}

std::vector<NodeId> FederationAlgorithm::instances_of(ServiceType t) const {
  std::vector<NodeId> out;
  const auto it = registry_.find(t);
  if (it != registry_.end()) {
    for (const auto& [id, info] : it->second) out.push_back(id);
  }
  if (hosted_.count(t) > 0) out.push_back(engine().self());
  std::sort(out.begin(), out.end());
  return out;
}

NodeId FederationAlgorithm::pick_instance(ServiceType t) {
  struct Candidate {
    NodeId id;
    double capacity;
    u32 load;
  };
  std::vector<Candidate> candidates;
  const auto it = registry_.find(t);
  if (it != registry_.end()) {
    for (const auto& [id, info] : it->second) {
      candidates.push_back({id, info.capacity, info.load});
    }
  }
  if (hosted_.count(t) > 0) {
    candidates.push_back(
        {engine().self(), capacity_, static_cast<u32>(load_)});
  }
  if (candidates.empty()) return NodeId();
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.id < b.id; });

  // "Available bandwidth to the corresponding downstream service": the
  // path from here to the candidate is capped by both the measured
  // point-to-point bandwidth and the candidate's own last mile.
  const auto path_capacity = [&](const Candidate& c) {
    if (c.id == engine().self()) return c.capacity;
    const auto it = path_bw_.find(c.id);
    const double pair_bw =
        it == path_bw_.end() ? c.capacity : it->second;
    return std::min(pair_bw, c.capacity);
  };

  switch (strategy_) {
    case FederationStrategy::kRandom:
      return candidates[engine().rng().below(candidates.size())].id;
    case FederationStrategy::kFixed: {
      // Highest static path bandwidth, blind to current load.
      const auto best = std::max_element(
          candidates.begin(), candidates.end(),
          [&](const Candidate& a, const Candidate& b) {
            return path_capacity(a) < path_capacity(b);
          });
      return best->id;
    }
    case FederationStrategy::kSFlow: {
      // Most bandwidth-efficient: residual path bandwidth given the
      // sessions already assigned to the candidate.
      const auto score = [&](const Candidate& c) {
        return path_capacity(c) / (1.0 + static_cast<double>(c.load));
      };
      const auto best = std::max_element(
          candidates.begin(), candidates.end(),
          [&](const Candidate& a, const Candidate& b) {
            return score(a) < score(b);
          });
      return best->id;
    }
  }
  return NodeId();
}

void FederationAlgorithm::federate(u32 request,
                                   const ServiceGraph& requirement) {
  const std::string text = strf("req=%u|origin=", request) +
                           engine().self().to_string() + "|graph=" +
                           requirement.serialize() + "|map=";
  const auto m = Msg::control(kSFederate, engine().self(), kControlApp,
                              static_cast<i32>(request), 0, text);
  engine().send(m, engine().self());
}

void FederationAlgorithm::fail_request(u32 request, const NodeId& origin) {
  if (origin == engine().self()) {
    results_.push_back(FederationResult{request, false, {}});
    return;
  }
  engine().send(Msg::control(kSFederateAck, engine().self(), kControlApp,
                             static_cast<i32>(request), 0,
                             strf("req=%u|ok=0|map=", request)),
                origin);
}

void FederationAlgorithm::finalize_request(
    u32 request, const NodeId& origin, const ServiceGraph& graph,
    const std::map<ServiceType, NodeId>& mapping) {
  const std::string text = strf("req=%u|graph=", request) +
                           graph.serialize() + "|map=" +
                           serialize_mapping(mapping);
  std::set<NodeId> instances;
  for (const auto& [t, id] : mapping) instances.insert(id);
  for (const auto& id : instances) {
    const auto path = Msg::control(kSPath, engine().self(), kControlApp,
                                   static_cast<i32>(request), 0, text);
    engine().send(path, id);  // self-sends loop back through the engine
  }

  const std::string ack_text = strf("req=%u|ok=1|map=", request) +
                               serialize_mapping(mapping);
  if (origin == engine().self()) {
    results_.push_back(FederationResult{request, true, mapping});
  } else {
    engine().send(Msg::control(kSFederateAck, engine().self(), kControlApp,
                               static_cast<i32>(request), 1, ack_text),
                  origin);
  }
}

void FederationAlgorithm::handle_federate(const MsgPtr& m) {
  const auto fields = parse_fields(m->param_text(), '|');
  if (!fields.count("req") || !fields.count("origin") ||
      !fields.count("graph") || !fields.count("map")) {
    return;
  }
  unsigned long long req = 0;
  if (!parse_u64(fields.at("req"), 0xffffffffULL, &req)) return;
  const auto origin = NodeId::parse(fields.at("origin"));
  const auto graph = ServiceGraph::parse(fields.at("graph"));
  auto mapping = parse_mapping(fields.at("map"));
  if (!origin || !graph || !mapping) return;
  const auto request = static_cast<u32>(req);

  // First unassigned type in topological order.
  ServiceType next = 0;
  bool found = false;
  for (const auto t : graph->types()) {
    if (mapping->count(t) == 0) {
      next = t;
      found = true;
      break;
    }
  }
  if (!found) return;  // fully assigned copy; nothing to do

  // The designated source service node assigns itself to the source type
  // (§3.4: the requirement is "specified in a sFederate message to the
  // designated source service node").
  NodeId chosen;
  if (next == graph->source() && hosted_.count(next) > 0) {
    chosen = engine().self();
  } else {
    chosen = pick_instance(next);
  }
  if (!chosen.valid()) {
    fail_request(request, *origin);
    return;
  }
  (*mapping)[next] = chosen;
  // Optimistic local load accounting: the chosen instance is about to
  // carry one more session. Bumping our registry immediately keeps
  // back-to-back selections from piling onto the same instance before
  // its sAware refresh propagates.
  if (chosen != engine().self()) {
    const auto reg_it = registry_.find(next);
    if (reg_it != registry_.end()) {
      const auto inst_it = reg_it->second.find(chosen);
      if (inst_it != reg_it->second.end()) inst_it->second.load += 1;
    }
  }

  if (next == graph->sink()) {
    finalize_request(request, *origin, *graph, *mapping);
    return;
  }
  const std::string text = strf("req=%u|origin=", request) +
                           origin->to_string() + "|graph=" +
                           graph->serialize() + "|map=" +
                           serialize_mapping(*mapping);
  engine().send(Msg::control(kSFederate, engine().self(), kControlApp,
                             static_cast<i32>(request), 0, text),
                chosen);
}

void FederationAlgorithm::handle_path(const MsgPtr& m) {
  const auto fields = parse_fields(m->param_text(), '|');
  if (!fields.count("req") || !fields.count("graph") || !fields.count("map")) {
    return;
  }
  unsigned long long req = 0;
  if (!parse_u64(fields.at("req"), 0xffffffffULL, &req)) return;
  const auto graph = ServiceGraph::parse(fields.at("graph"));
  const auto mapping = parse_mapping(fields.at("map"));
  if (!graph || !mapping) return;
  const auto request = static_cast<u32>(req);
  if (paths_.count(request) > 0) return;

  paths_[request] = PathRecord{*graph, *mapping};
  ++load_;
  // Load changed: refresh our advertisements so future sFlow selections
  // see it.
  for (const auto t : hosted_) disseminate_aware(t);
}

void FederationAlgorithm::handle_ack(const MsgPtr& m) {
  const auto fields = parse_fields(m->param_text(), '|');
  if (!fields.count("req")) return;
  unsigned long long req = 0;
  if (!parse_u64(fields.at("req"), 0xffffffffULL, &req)) return;
  FederationResult result;
  result.request = static_cast<u32>(req);
  result.ok = m->param(1) != 0;
  if (fields.count("map")) {
    if (const auto mapping = parse_mapping(fields.at("map"))) {
      result.mapping = *mapping;
    }
  }
  results_.push_back(std::move(result));
}

std::optional<std::map<ServiceType, NodeId>> FederationAlgorithm::path_of(
    u32 request) const {
  const auto it = paths_.find(request);
  if (it == paths_.end()) return std::nullopt;
  return it->second.mapping;
}

Disposition FederationAlgorithm::on_data(const MsgPtr& m) {
  const auto it = paths_.find(m->app());
  if (it == paths_.end()) return Disposition::kDone;
  const PathRecord& record = it->second;

  std::set<NodeId> targets;
  for (const auto& [t, instance] : record.mapping) {
    if (instance != engine().self()) continue;
    if (t == record.graph.sink()) engine().deliver_local(m);
    for (const auto succ : record.graph.successors(t)) {
      const auto succ_it = record.mapping.find(succ);
      if (succ_it != record.mapping.end() &&
          succ_it->second != engine().self()) {
        targets.insert(succ_it->second);
      }
    }
  }
  for (const auto& target : targets) engine().send(m, target);
  return Disposition::kDone;
}

Disposition FederationAlgorithm::on_user(const MsgPtr& m) {
  switch (m->type()) {
    case kSAware: handle_aware(m); break;
    case kSFederate: handle_federate(m); break;
    case kSFederateAck: handle_ack(m); break;
    case kSPath: handle_path(m); break;
    default: break;
  }
  return Disposition::kDone;
}

void FederationAlgorithm::on_control(const MsgPtr& m) {
  switch (m->param(0)) {
    case kOpHostService:
      host_service(static_cast<ServiceType>(m->param(1)));
      return;
    case kOpFederate: {
      const auto graph = ServiceGraph::parse(m->param_text());
      if (graph) federate(static_cast<u32>(m->param(1)), *graph);
      return;
    }
    default:
      return;
  }
}

std::string FederationAlgorithm::status() const {
  return strf("%s hosted=%zu known_types=%zu load=%zu done=%zu",
              strategy_name(strategy_), hosted_.size(), registry_.size(),
              load_, results_.size());
}

}  // namespace iov::federation
