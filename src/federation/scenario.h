// Driver for the §3.4 service-federation experiments on the simulated
// substrate. Builds a service overlay network with heterogeneous
// last-mile bandwidth and wide-area latencies, establishes services on a
// schedule, issues federation requests, deploys the resulting data
// streams, and collects everything Figs 14-19 report: per-request
// end-to-end bandwidth and delay, and control-message overhead by type,
// per node, and over time.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "federation/federation_algorithm.h"
#include "sim/sim_net.h"

namespace iov::federation {

struct FederationScenarioConfig {
  FederationStrategy strategy = FederationStrategy::kSFlow;
  std::size_t nodes = 16;
  /// Service-type universe 1..universe_types; the universe graph is the
  /// chain 1 -> 2 -> ... -> universe_types.
  ServiceType universe_types = 6;
  u64 seed = 1;
  /// Last-mile bandwidth drawn uniformly from [cap_lo, cap_hi] (bytes/s).
  double cap_lo = 50e3;
  double cap_hi = 200e3;
  /// Wide-area propagation delays drawn uniformly per directed pair.
  Duration latency_lo = millis(10);
  Duration latency_hi = millis(50);
  /// Per-directed-pair path bandwidth drawn uniformly from
  /// [cap_lo, cap_hi], applied as an emulated per-link cap and injected
  /// into each algorithm as its "measured point-to-point throughput".
  /// This heterogeneity is what separates the fixed and random
  /// strategies (Fig 19).
  bool heterogeneous_links = true;
  /// Range for the per-pair path bandwidths (defaults to [cap_lo,
  /// cap_hi] when zero). A wider spread separates the strategies more.
  double link_lo = 0.0;
  double link_hi = 0.0;
  std::size_t bootstrap_subset = 8;
  /// Virtual time between successive service establishments; 0 brings
  /// all services up immediately (Fig 16 uses ~3 per minute).
  Duration service_interval = 0;
  /// Requirement workload.
  std::size_t requests = 1;
  Duration request_interval = seconds(5.0);
  std::size_t requirement_length = 4;
  bool allow_branches = true;
  /// Data streams deployed through completed federations.
  bool deploy_streams = true;
  std::size_t payload_bytes = 1000;
  /// Each deployed stream is terminated after this long; 0 streams until
  /// the end of the run. Bounds how many sessions are concurrently live.
  Duration stream_duration = 0;
  /// Virtual run time after the last request before measurement ends.
  Duration tail = seconds(20.0);
};

struct RequestResult {
  u32 request = 0;
  bool completed = false;  ///< an ack (ok or failed) was observed
  bool ok = false;
  std::map<ServiceType, NodeId> mapping;
  std::size_t hops = 0;      ///< distinct instances in the mapping
  double goodput = 0.0;      ///< sink payload bytes/s while deployed
  double mean_delay_ms = 0;  ///< source-to-sink delay of delivered data
};

struct FederationScenarioResult {
  std::vector<RequestResult> requests;
  /// Wire bytes by message type over the whole run (sAware vs sFederate
  /// overhead, Figs 15-18).
  u64 aware_bytes = 0;
  u64 federate_bytes = 0;  ///< sFederate + ack + path plumbing
  std::map<NodeId, u64> aware_bytes_per_node;     // keyed by sender
  std::map<NodeId, u64> federate_bytes_per_node;  // keyed by sender
  /// sAware bytes per virtual-minute bin (Fig 16).
  std::vector<double> aware_timeline;
  /// Per-node totals of everything sent/received (Fig 15(b)).
  struct NodeTraffic {
    NodeId id;
    double capacity = 0.0;
    u64 sent_bytes = 0;
    u64 received_bytes = 0;
  };
  std::vector<NodeTraffic> node_traffic;

  double mean_goodput_ok() const;
  double completion_rate() const;
};

FederationScenarioResult run_federation_scenario(
    const FederationScenarioConfig& config);

}  // namespace iov::federation
