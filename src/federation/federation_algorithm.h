// Service federation in service overlay networks — the sFlow case study
// (paper §3.4) and its two controls.
//
// Every node may host service instances (types from a shared
// producer-consumer universe graph). The protocol:
//
//   sAware     a node that establishes a service disseminates its
//              existence (type, capacity, current load) to known hosts;
//              non-service nodes relay the message on a TTL-bounded
//              random walk; service nodes record it and forward it to
//              the known instances of the new service's neighbour types
//              in the universe graph;
//   sFederate  carries a ServiceGraph requirement plus the partial
//              type->instance mapping; each holder assigns the next
//              unassigned type (topological order) using its local
//              strategy and forwards the message to the chosen instance;
//   sPath      sent by the final assignee to every selected instance so
//              the data plane knows its successors; recipients bump
//              their advertised load and re-disseminate sAware;
//   sFederateAck reports the completed (or failed) mapping back to the
//              designated source service node.
//
// Selection strategies (paper §3.4):
//   * sFlow  — most bandwidth-efficient candidate: highest residual
//     capacity estimate capacity/(1+load). (The paper measures
//     point-to-point throughput with iOverlay probes; the advertised
//     residual is this repo's deterministic stand-in — see DESIGN.md.)
//   * fixed  — highest raw capacity, ignoring load;
//   * random — uniformly random known instance.
//
// The data plane forwards each request's stream along the requirement's
// DAG edges over the selected instances; the sink instance delivers
// locally.
#pragma once

#include <map>
#include <optional>
#include <set>
#include <vector>

#include "algorithm/algorithm.h"
#include "federation/service_graph.h"

namespace iov::federation {

/// Protocol message types.
constexpr MsgType kSAware = static_cast<MsgType>(0x0311);
constexpr MsgType kSFederate = static_cast<MsgType>(0x0312);
constexpr MsgType kSFederateAck = static_cast<MsgType>(0x0313);
constexpr MsgType kSPath = static_cast<MsgType>(0x0314);

enum class FederationStrategy { kSFlow, kFixed, kRandom };

const char* strategy_name(FederationStrategy s);

/// Outcome of one federation request, collected at the designated source
/// service node.
struct FederationResult {
  u32 request = 0;
  bool ok = false;
  std::map<ServiceType, NodeId> mapping;
};

class FederationAlgorithm : public Algorithm {
 public:
  /// `universe` is the global producer-consumer graph over service
  /// types; `capacity` this node's advertised bandwidth (bytes/s),
  /// normally equal to its emulated uplink cap.
  FederationAlgorithm(FederationStrategy strategy, ServiceGraph universe,
                      double capacity);

  /// Establishes a service instance of `t` on this node and disseminates
  /// sAware (paper: the observer's sAssign). Callable before or after
  /// start.
  void host_service(ServiceType t);

  /// Starts a federation session for `requirement` with request id
  /// `request` — this node is the "designated source service node" and
  /// must host the requirement's source type. The outcome arrives in
  /// results().
  void federate(u32 request, const ServiceGraph& requirement);

  const std::vector<FederationResult>& results() const { return results_; }

  /// Known instances of `t` (learned via sAware; self included if
  /// hosting).
  std::vector<NodeId> instances_of(ServiceType t) const;

  /// Current number of federated sessions flowing through this node.
  std::size_t load() const { return load_; }

  /// Records the measured point-to-point bandwidth from this node to
  /// `peer` (bytes/s). The paper's sFlow "takes advantage of iOverlay's
  /// feature that measures point-to-point throughput to selected known
  /// hosts"; on the simulated substrate the scenario driver injects the
  /// emulated per-pair path capacity here (see DESIGN.md substitutions).
  void set_path_bandwidth(const NodeId& peer, double bytes_per_sec) {
    path_bw_[peer] = bytes_per_sec;
  }

  std::set<ServiceType> hosted() const { return hosted_; }

  /// The stored mapping for `request` if this node is part of it.
  std::optional<std::map<ServiceType, NodeId>> path_of(u32 request) const;

  void on_start() override;
  std::string status() const override;

 protected:
  Disposition on_data(const MsgPtr& m) override;
  Disposition on_user(const MsgPtr& m) override;
  void on_control(const MsgPtr& m) override;

 private:
  struct AwareInfo {
    double capacity = 0.0;
    u32 load = 0;
    u32 version = 0;
  };
  struct PathRecord {
    ServiceGraph graph;
    std::map<ServiceType, NodeId> mapping;
  };

  void disseminate_aware(ServiceType t);
  void handle_aware(const MsgPtr& m);
  void handle_federate(const MsgPtr& m);
  void handle_path(const MsgPtr& m);
  void handle_ack(const MsgPtr& m);
  NodeId pick_instance(ServiceType t);
  void fail_request(u32 request, const NodeId& origin);
  void finalize_request(u32 request, const NodeId& origin,
                        const ServiceGraph& graph,
                        const std::map<ServiceType, NodeId>& mapping);

  const FederationStrategy strategy_;
  const ServiceGraph universe_;
  const double capacity_;

  std::set<ServiceType> hosted_;
  std::size_t load_ = 0;
  u32 aware_version_ = 0;
  // type -> instance -> info
  std::map<ServiceType, std::map<NodeId, AwareInfo>> registry_;
  // (origin, type) -> highest version seen, for flood dedup
  std::map<std::pair<NodeId, ServiceType>, u32> aware_seen_;
  std::map<NodeId, double> path_bw_;  // measured path capacity to peers
  std::map<u32, PathRecord> paths_;
  std::vector<FederationResult> results_;
};

}  // namespace iov::federation
