#include "federation/service_graph.h"

#include <algorithm>
#include <queue>

#include "common/strings.h"

namespace iov::federation {

std::optional<ServiceGraph> ServiceGraph::make(
    ServiceType source, ServiceType sink,
    std::vector<std::pair<ServiceType, ServiceType>> edges) {
  ServiceGraph g;
  g.source_ = source;
  g.sink_ = sink;
  g.edges_.insert(edges.begin(), edges.end());
  if (!g.finalize()) return std::nullopt;
  return g;
}

ServiceGraph ServiceGraph::chain(const std::vector<ServiceType>& types) {
  ServiceGraph g;
  if (types.empty()) return g;
  g.source_ = types.front();
  g.sink_ = types.back();
  for (std::size_t i = 0; i + 1 < types.size(); ++i) {
    g.edges_.insert({types[i], types[i + 1]});
  }
  g.finalize();
  return g;
}

ServiceGraph ServiceGraph::random(Rng& rng, ServiceType universe,
                                  std::size_t length, bool allow_branches) {
  length = std::max<std::size_t>(2, std::min<std::size_t>(length, universe));
  std::vector<ServiceType> pool;
  for (ServiceType t = 1; t <= universe; ++t) pool.push_back(t);
  rng.shuffle(pool);
  std::vector<ServiceType> chain_types(pool.begin(),
                                       pool.begin() + static_cast<long>(length));
  ServiceGraph g = chain(chain_types);
  if (allow_branches && length >= 4 && rng.chance(0.5)) {
    // Add a diamond: a shortcut edge skipping one chain stage, making the
    // skipped stage's neighbour a fan-out/fan-in pair.
    const std::size_t i = 1 + rng.below(length - 3);
    g.edges_.insert({chain_types[i - 1], chain_types[i + 1]});
    g.finalize();
  }
  return g;
}

bool ServiceGraph::contains(ServiceType t) const {
  return std::find(topo_order_.begin(), topo_order_.end(), t) !=
         topo_order_.end();
}

std::vector<ServiceType> ServiceGraph::successors(ServiceType t) const {
  std::vector<ServiceType> out;
  for (const auto& [from, to] : edges_) {
    if (from == t) out.push_back(to);
  }
  return out;
}

std::vector<ServiceType> ServiceGraph::predecessors(ServiceType t) const {
  std::vector<ServiceType> out;
  for (const auto& [from, to] : edges_) {
    if (to == t) out.push_back(from);
  }
  return out;
}

std::optional<ServiceType> ServiceGraph::next_in_order(ServiceType t) const {
  for (std::size_t i = 0; i + 1 < topo_order_.size(); ++i) {
    if (topo_order_[i] == t) return topo_order_[i + 1];
  }
  return std::nullopt;
}

bool ServiceGraph::finalize() {
  topo_order_.clear();
  // Collect the vertex set.
  std::set<ServiceType> vertices{source_, sink_};
  std::map<ServiceType, std::size_t> in_degree;
  for (const auto& [from, to] : edges_) {
    vertices.insert(from);
    vertices.insert(to);
  }
  for (const auto v : vertices) in_degree[v] = 0;
  for (const auto& [from, to] : edges_) in_degree[to]++;

  // Kahn's algorithm with a sorted frontier for a deterministic order.
  std::set<ServiceType> frontier;
  for (const auto& [v, d] : in_degree) {
    if (d == 0) frontier.insert(v);
  }
  while (!frontier.empty()) {
    const ServiceType v = *frontier.begin();
    frontier.erase(frontier.begin());
    topo_order_.push_back(v);
    for (const auto to : successors(v)) {
      if (--in_degree[to] == 0) frontier.insert(to);
    }
  }
  if (topo_order_.size() != vertices.size()) return false;  // cycle

  // Structural validity: the source is the unique root and the sink the
  // unique leaf, so all data enters at the source and leaves at the sink.
  std::map<ServiceType, std::size_t> out_degree;
  for (const auto v : vertices) out_degree[v] = 0;
  for (const auto& [from, to] : edges_) out_degree[from]++;
  for (const auto v : vertices) {
    if (in_degree_of(v) == 0 && v != source_) return false;
    if (out_degree[v] == 0 && v != sink_) return false;
  }
  if (in_degree_of(source_) != 0) return false;
  if (out_degree[sink_] != 0 && vertices.size() > 1) return false;
  return true;
}

std::size_t ServiceGraph::in_degree_of(ServiceType t) const {
  std::size_t n = 0;
  for (const auto& [from, to] : edges_) n += (to == t) ? 1 : 0;
  return n;
}

std::string ServiceGraph::serialize() const {
  std::string edges;
  for (const auto& [from, to] : edges_) {
    if (!edges.empty()) edges += ',';
    edges += strf("%u-%u", from, to);
  }
  return strf("src=%u;sink=%u;edges=", source_, sink_) + edges;
}

std::optional<ServiceGraph> ServiceGraph::parse(std::string_view text) {
  ServiceGraph g;
  for (const auto& field : split(text, ';')) {
    const auto eq = field.find('=');
    if (eq == std::string::npos) return std::nullopt;
    const auto key = field.substr(0, eq);
    const auto value = std::string_view(field).substr(eq + 1);
    unsigned long long v = 0;
    if (key == "src") {
      if (!parse_u64(value, 0xffffffffULL, &v)) return std::nullopt;
      g.source_ = static_cast<ServiceType>(v);
    } else if (key == "sink") {
      if (!parse_u64(value, 0xffffffffULL, &v)) return std::nullopt;
      g.sink_ = static_cast<ServiceType>(v);
    } else if (key == "edges") {
      if (trim(value).empty()) continue;
      for (const auto& edge : split(value, ',')) {
        const auto dash = edge.find('-');
        if (dash == std::string::npos) return std::nullopt;
        unsigned long long from = 0;
        unsigned long long to = 0;
        if (!parse_u64(std::string_view(edge).substr(0, dash), 0xffffffffULL,
                       &from) ||
            !parse_u64(std::string_view(edge).substr(dash + 1), 0xffffffffULL,
                       &to)) {
          return std::nullopt;
        }
        g.edges_.insert({static_cast<ServiceType>(from),
                         static_cast<ServiceType>(to)});
      }
    }
  }
  if (!g.finalize()) return std::nullopt;
  return g;
}

}  // namespace iov::federation
