// Service requirements for service overlay networks (paper §3.4).
//
// A complex service is specified as a directed acyclic graph over
// *service types*: data enters at the source type, flows along the DAG's
// producer-consumer edges through transformation services, and leaves at
// the sink type. The sFlow/fixed/random federation algorithms select one
// hosting node per type; the data plane then follows the DAG edges over
// the selected instances.
//
// Requirements travel inside sFederate messages, so the graph has a
// compact text serialization: "src=1;sink=4;edges=1-2,1-3,2-4,3-4".
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace iov::federation {

/// A service type identifier (e.g., "transcode", "watermark" — opaque
/// numbers here).
using ServiceType = u32;

class ServiceGraph {
 public:
  ServiceGraph() = default;

  /// Builds a graph; returns nullopt if the edge set is cyclic, has
  /// types unreachable from the source, or cannot reach the sink.
  static std::optional<ServiceGraph> make(
      ServiceType source, ServiceType sink,
      std::vector<std::pair<ServiceType, ServiceType>> edges);

  /// A simple chain source -> ... -> sink over `types`.
  static ServiceGraph chain(const std::vector<ServiceType>& types);

  /// A random requirement over the type universe [1, universe]: a chain
  /// of `length` distinct types with optional diamond branches.
  static ServiceGraph random(Rng& rng, ServiceType universe,
                             std::size_t length, bool allow_branches = true);

  ServiceType source() const { return source_; }
  ServiceType sink() const { return sink_; }

  const std::vector<ServiceType>& types() const { return topo_order_; }
  std::size_t size() const { return topo_order_.size(); }

  std::vector<ServiceType> successors(ServiceType t) const;
  std::vector<ServiceType> predecessors(ServiceType t) const;
  bool contains(ServiceType t) const;

  /// The type after `t` in topological order (nullopt for the last).
  std::optional<ServiceType> next_in_order(ServiceType t) const;

  std::string serialize() const;
  static std::optional<ServiceGraph> parse(std::string_view text);

  bool operator==(const ServiceGraph& other) const {
    return source_ == other.source_ && sink_ == other.sink_ &&
           edges_ == other.edges_;
  }

 private:
  bool finalize();  // computes topo order; false on cycle/disconnection
  std::size_t in_degree_of(ServiceType t) const;

  ServiceType source_ = 0;
  ServiceType sink_ = 0;
  std::set<std::pair<ServiceType, ServiceType>> edges_;
  std::vector<ServiceType> topo_order_;
};

}  // namespace iov::federation
