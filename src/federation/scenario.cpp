#include "federation/scenario.h"

#include <algorithm>

#include "apps/sink.h"
#include "apps/source.h"

namespace iov::federation {

namespace {

constexpr Duration kTimelineBin = seconds(60.0);
constexpr u32 kFirstRequestId = 1000;

/// kControl opcodes of FederationAlgorithm (kept in sync with the .cpp).
constexpr i32 kOpHostService = 10;
constexpr i32 kOpFederate = 20;

struct Node {
  sim::SimEngine* engine = nullptr;
  FederationAlgorithm* algorithm = nullptr;
  double capacity = 0.0;
  ServiceType service = 0;
};

struct PendingRequest {
  u32 id = 0;
  std::size_t designated = 0;  // index into nodes
  ServiceGraph requirement;
  bool acked = false;
  bool ok = false;
  std::map<ServiceType, NodeId> mapping;
  std::shared_ptr<apps::SinkApp> sink;
  TimePoint deployed_at = -1;
  TimePoint stopped_at = -1;
};

}  // namespace

double FederationScenarioResult::mean_goodput_ok() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (const auto& r : requests) {
    if (r.ok) {
      sum += r.goodput;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double FederationScenarioResult::completion_rate() const {
  std::size_t done = 0;
  for (const auto& r : requests) done += r.completed ? 1 : 0;
  return requests.empty()
             ? 0.0
             : static_cast<double>(done) / static_cast<double>(requests.size());
}

FederationScenarioResult run_federation_scenario(
    const FederationScenarioConfig& config) {
  sim::SimNet::Config net_config;
  net_config.seed = config.seed;
  sim::SimNet net(net_config);
  Rng rng(config.seed * 0x9e37 + 17);

  // The universe graph: chain over the whole type space.
  std::vector<ServiceType> all_types;
  for (ServiceType t = 1; t <= config.universe_types; ++t) {
    all_types.push_back(t);
  }
  const ServiceGraph universe = ServiceGraph::chain(all_types);

  // Build nodes with heterogeneous capacity; each will host one type so
  // every type has at least one instance when nodes >= universe_types.
  std::vector<Node> nodes;
  nodes.reserve(config.nodes);
  for (std::size_t i = 0; i < config.nodes; ++i) {
    Node n;
    n.capacity = rng.uniform(config.cap_lo, config.cap_hi);
    n.service = static_cast<ServiceType>(i % config.universe_types) + 1;
    auto algorithm = std::make_unique<FederationAlgorithm>(
        config.strategy, universe, n.capacity);
    n.algorithm = algorithm.get();
    sim::SimNodeConfig node_config;
    node_config.bandwidth.node_up = n.capacity;
    n.engine = &net.add_node(std::move(algorithm), node_config);
    nodes.push_back(n);
  }

  // Wide-area latencies and per-pair path bandwidths.
  for (const auto& a : nodes) {
    for (const auto& b : nodes) {
      if (a.engine == b.engine) continue;
      net.set_latency(a.engine->self(), b.engine->self(),
                      rng.uniform_int(config.latency_lo, config.latency_hi));
      if (config.heterogeneous_links) {
        const double link_lo =
            config.link_lo > 0 ? config.link_lo : config.cap_lo;
        const double link_hi =
            config.link_hi > 0 ? config.link_hi : config.cap_hi;
        const double pair_bw = rng.uniform(link_lo, link_hi);
        a.engine->bandwidth().set_link_up(b.engine->self(), pair_bw);
        a.algorithm->set_path_bandwidth(b.engine->self(), pair_bw);
      }
    }
  }

  for (const auto& n : nodes) {
    net.bootstrap(n.engine->self(), config.bootstrap_subset);
  }
  net.run_for(millis(100));

  // Action timeline.
  struct Action {
    TimePoint at;
    bool is_service;  // else request
    std::size_t index;
  };
  std::vector<Action> actions;
  TimePoint t = net.now() + millis(100);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    actions.push_back({t, true, i});
    t += config.service_interval;
  }
  TimePoint requests_start = t + seconds(2.0);  // let sAware settle
  std::vector<PendingRequest> pending;
  for (std::size_t r = 0; r < config.requests; ++r) {
    actions.push_back({requests_start, false, r});
    requests_start += config.request_interval;
  }
  std::sort(actions.begin(), actions.end(),
            [](const Action& a, const Action& b) {
              return std::tie(a.at, a.is_service, a.index) <
                     std::tie(b.at, b.is_service, b.index);
            });
  const TimePoint end_time =
      (actions.empty() ? net.now() : actions.back().at) + config.tail;

  // Timeline sampling state (Fig 16).
  std::vector<double> aware_samples;  // cumulative bytes at bin edges
  TimePoint next_sample = 0;
  const auto sample_timeline = [&] {
    while (net.now() >= next_sample) {
      aware_samples.push_back(
          static_cast<double>(net.accounting().bytes_of(kSAware)));
      next_sample += kTimelineBin;
    }
  };

  const auto scan_acks = [&] {
    for (auto& p : pending) {
      // Bounded stream lifetimes keep the number of concurrently live
      // sessions realistic.
      if (config.stream_duration > 0 && p.deployed_at >= 0 &&
          p.stopped_at < 0 &&
          net.now() >= p.deployed_at + config.stream_duration) {
        net.terminate_source(p.mapping.at(p.requirement.source()), p.id);
        p.stopped_at = net.now();
      }
      if (p.acked) continue;
      for (const auto& result : nodes[p.designated].algorithm->results()) {
        if (result.request != p.id) continue;
        p.acked = true;
        p.ok = result.ok;
        p.mapping = result.mapping;
        if (p.ok && config.deploy_streams) {
          const NodeId source_id = p.mapping.at(p.requirement.source());
          const NodeId sink_id = p.mapping.at(p.requirement.sink());
          sim::SimEngine* source_engine = net.node(source_id);
          sim::SimEngine* sink_engine = net.node(sink_id);
          if (source_engine != nullptr && sink_engine != nullptr) {
            double source_cap = config.cap_hi;
            for (const auto& n : nodes) {
              if (n.engine->self() == source_id) source_cap = n.capacity;
            }
            source_engine->register_app(
                p.id, std::make_shared<apps::CbrSource>(
                          config.payload_bytes, source_cap,
                          /*timestamped=*/true));
            p.sink = std::make_shared<apps::SinkApp>();
            p.sink->track_delay(true);
            sink_engine->register_app(p.id, p.sink);
            net.deploy(source_id, p.id);
            p.deployed_at = net.now();
          }
        }
        break;
      }
    }
  };

  // Main loop: execute actions in order, sampling and scanning between.
  for (const auto& action : actions) {
    while (net.now() < action.at) {
      const TimePoint step =
          std::min<TimePoint>(action.at, std::min(next_sample, end_time));
      net.run_until(std::max<TimePoint>(step, net.now() + millis(10)));
      sample_timeline();
      scan_acks();
    }
    if (action.is_service) {
      const Node& n = nodes[action.index];
      net.post(n.engine->self(),
               Msg::control(MsgType::kControl, NodeId(), kControlApp,
                            kOpHostService, static_cast<i32>(n.service)));
    } else {
      PendingRequest p;
      p.id = kFirstRequestId + static_cast<u32>(action.index);
      p.requirement = ServiceGraph::random(rng, config.universe_types,
                                           config.requirement_length,
                                           config.allow_branches);
      // The designated source service node (paper §3.4): the first host
      // of the requirement's source type. Deterministic designation
      // concentrates request handling on a few nodes, the skew Fig 18
      // reports.
      std::vector<std::size_t> hosts;
      for (std::size_t i = 0; i < nodes.size(); ++i) {
        if (nodes[i].service == p.requirement.source()) hosts.push_back(i);
      }
      if (hosts.empty()) continue;  // cannot designate; count as failed
      p.designated = hosts.front();
      net.post(nodes[p.designated].engine->self(),
               Msg::control(MsgType::kControl, NodeId(), kControlApp,
                            kOpFederate, static_cast<i32>(p.id),
                            p.requirement.serialize()));
      pending.push_back(std::move(p));
    }
  }
  while (net.now() < end_time) {
    net.run_until(std::min(end_time, net.now() + seconds(1.0)));
    sample_timeline();
    scan_acks();
  }

  // Collect results.
  FederationScenarioResult result;
  for (const auto& p : pending) {
    RequestResult r;
    r.request = p.id;
    r.completed = p.acked;
    r.ok = p.ok;
    r.mapping = p.mapping;
    std::set<NodeId> distinct;
    for (const auto& [type, id] : p.mapping) distinct.insert(id);
    r.hops = distinct.size();
    if (p.sink && p.deployed_at >= 0 && net.now() > p.deployed_at) {
      const TimePoint stop = p.stopped_at >= 0 ? p.stopped_at : net.now();
      const auto stats = p.sink->stats(net.now());
      if (stop > p.deployed_at) {
        r.goodput = static_cast<double>(stats.bytes) /
                    to_seconds(stop - p.deployed_at);
      }
      r.mean_delay_ms = p.sink->mean_delay() / 1e6;
    }
    result.requests.push_back(std::move(r));
  }

  const auto& acct = net.accounting();
  result.aware_bytes = acct.bytes_of(kSAware);
  result.federate_bytes = acct.bytes_of(kSFederate) +
                          acct.bytes_of(kSFederateAck) +
                          acct.bytes_of(kSPath);
  for (const auto& n : nodes) {
    const NodeId id = n.engine->self();
    result.aware_bytes_per_node[id] = acct.node_bytes_of(id, kSAware);
    result.federate_bytes_per_node[id] =
        acct.node_bytes_of(id, kSFederate) +
        acct.node_bytes_of(id, kSFederateAck) +
        acct.node_bytes_of(id, kSPath);

    FederationScenarioResult::NodeTraffic traffic;
    traffic.id = id;
    traffic.capacity = n.capacity;
    const auto sent_it = acct.per_node.find(id);
    if (sent_it != acct.per_node.end()) {
      for (const auto& [type, counter] : sent_it->second) {
        traffic.sent_bytes += counter.bytes;
      }
    }
    const auto recv_it = acct.per_dest.find(id);
    if (recv_it != acct.per_dest.end()) {
      for (const auto& [type, counter] : recv_it->second) {
        traffic.received_bytes += counter.bytes;
      }
    }
    result.node_traffic.push_back(traffic);
  }

  // Convert cumulative samples into per-bin increments (Fig 16 shape).
  double prev = 0.0;
  for (const double sample : aware_samples) {
    result.aware_timeline.push_back(sample - prev);
    prev = sample;
  }
  return result;
}

}  // namespace iov::federation
