// Real-substrate streaming churn runner: the same ChurnSchedule executed
// against live engines over loopback TCP, with the observer control plane
// carrying the fault events (RealChaosDriver). Wall-clock timing, so keep
// viewer counts and horizons small — the cross-substrate conformance test
// compares surviving-viewer sets and bounded metric aggregates against
// the simulator run, not exact traces.
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "apps/streaming.h"
#include "chaos/real_driver.h"
#include "common/logging.h"
#include "common/strings.h"
#include "engine/engine.h"
#include "obs/metric_names.h"
#include "observer/observer.h"
#include "scenario/streaming_churn.h"
#include "scenario/verify_streaming.h"

namespace iov::scenario {

namespace {

/// TreeAlgorithm whose session state the scenario thread can read while
/// the engine thread mutates it: every processed message (timers
/// included — they arrive as kTimer messages) refreshes a mutex-guarded
/// mirror.
class WatchedTree : public trees::TreeAlgorithm {
 public:
  WatchedTree(u32 app, trees::TreeStrategy strategy, double last_mile)
      : trees::TreeAlgorithm(strategy, last_mile), app_(app) {}

  struct Snap {
    bool in_tree = false;
    std::optional<NodeId> parent;
    std::set<NodeId> children;
  };

  Snap snap() const {
    std::lock_guard<std::mutex> lock(mu_);
    return snap_;
  }

  Disposition process(const MsgPtr& m) override {
    const Disposition d = trees::TreeAlgorithm::process(m);
    Snap fresh;
    fresh.in_tree = in_tree(app_);
    fresh.parent = parent(app_);
    for (const NodeId& c : children(app_)) fresh.children.insert(c);
    std::lock_guard<std::mutex> lock(mu_);
    snap_ = std::move(fresh);
    return d;
  }

 private:
  const u32 app_;
  mutable std::mutex mu_;
  Snap snap_;
};

struct RealViewer {
  std::unique_ptr<engine::Engine> engine;
  WatchedTree* alg = nullptr;
  std::shared_ptr<ViewerSink> sink;
  bool joined = false;
  bool departed = false;
};

/// Depth of every node whose parent chain reaches the source, computed
/// from the watched snapshots (parallel of the sim runner's ShapeView).
std::map<NodeId, std::size_t> rooted_depths(
    const std::map<NodeId, WatchedTree::Snap>& views, const NodeId& source) {
  std::map<NodeId, std::size_t> depth;
  const auto src = views.find(source);
  if (src != views.end() && src->second.in_tree) depth[source] = 0;
  for (const auto& [id, v] : views) {
    if (depth.count(id) || !v.in_tree) continue;
    std::vector<NodeId> path;
    std::set<NodeId> on_path;
    NodeId cur = id;
    i64 base = -1;
    while (true) {
      const auto known = depth.find(cur);
      if (known != depth.end()) {
        base = static_cast<i64>(known->second);
        break;
      }
      if (on_path.count(cur)) break;
      const auto it = views.find(cur);
      if (it == views.end() || !it->second.in_tree || !it->second.parent) {
        break;
      }
      path.push_back(cur);
      on_path.insert(cur);
      cur = *it->second.parent;
    }
    if (base >= 0) {
      for (std::size_t i = 0; i < path.size(); ++i) {
        depth[path[i]] = static_cast<std::size_t>(base) + (path.size() - i);
      }
    }
  }
  return depth;
}

}  // namespace

StreamingChurnResult run_real_streaming_churn(
    const StreamingChurnConfig& config) {
  namespace names = obs::names;
  StreamingChurnResult out;
  out.schedule = generate_churn(config.churn);
  const u32 app = config.app;

  observer::ObserverConfig oc;
  oc.bootstrap_subset = config.bootstrap_subset;
  oc.seed = config.churn.seed;
  observer::Observer obs{oc};
  if (!obs.start()) {
    out.verify_failures.push_back("observer failed to start");
    return out;
  }
  obs::MetricsRegistry& reg = obs.metrics();

  const double last_mile =
      config.viewer_bandwidth > 0 ? config.viewer_bandwidth : 200e3;
  const auto make_engine = [&](WatchedTree** alg_out) {
    auto algorithm =
        std::make_unique<WatchedTree>(app, config.strategy, last_mile);
    algorithm->set_data_timeout(config.data_timeout);
    *alg_out = algorithm.get();
    engine::EngineConfig ec;
    ec.observer = obs.address();
    return std::make_unique<engine::Engine>(ec, std::move(algorithm));
  };

  WatchedTree* source_alg = nullptr;
  auto source_engine = make_engine(&source_alg);
  source_engine->register_app(
      app, std::make_shared<apps::VideoSource>(config.fps, config.gop,
                                               config.iframe_bytes,
                                               config.pframe_bytes));
  if (!source_engine->start()) {
    out.verify_failures.push_back("source engine failed to start");
    return out;
  }
  const NodeId source = source_engine->self();

  std::vector<RealViewer> viewers(out.schedule.viewers);
  for (auto& v : viewers) {
    v.engine = make_engine(&v.alg);
    v.sink = std::make_shared<ViewerSink>(config.fps);
    v.engine->register_app(app, v.sink);
    if (!v.engine->start()) {
      out.verify_failures.push_back("viewer engine failed to start");
      return out;
    }
  }

  const auto deadline_wait = [&](const auto& pred, Duration limit) {
    const TimePoint until = RealClock::instance().now() + limit;
    while (!pred()) {
      if (RealClock::instance().now() >= until) return false;
      sleep_for(millis(10));
    }
    return true;
  };
  if (!deadline_wait(
          [&] { return obs.alive_count() == viewers.size() + 1; },
          seconds(10.0))) {
    out.verify_failures.push_back("nodes never registered with observer");
    return out;
  }
  obs.announce(source, app, source);
  for (const auto& v : viewers) obs.announce(v.engine->self(), app, source);
  obs.deploy(source, app);

  chaos::FaultPlan executed;
  const TimePoint t0 = RealClock::instance().now();
  const auto scenario_seconds = [&] {
    return to_seconds(RealClock::instance().now() - t0);
  };
  const auto churn_count = [&](const char* action) -> obs::Counter& {
    return reg.counter(names::kStreamChurnEventsTotal, {{"action", action}});
  };

  const auto collect_views = [&] {
    std::map<NodeId, WatchedTree::Snap> views;
    views.emplace(source, source_alg->snap());
    for (const auto& v : viewers) {
      if (v.joined && !v.departed) {
        views.emplace(v.engine->self(), v.alg->snap());
      }
    }
    return views;
  };

  const auto do_sample = [&] {
    const auto views = collect_views();
    const auto depth = rooted_depths(views, source);
    TreeShapeSample s;
    s.at = RealClock::instance().now() - t0;
    std::size_t degree_nodes = 0;
    std::size_t degree_sum = 0;
    const auto fold_degree = [&](const WatchedTree::Snap& v) {
      const std::size_t d = v.children.size() + (v.parent ? 1 : 0);
      degree_nodes++;
      degree_sum += d;
      s.max_degree = std::max(s.max_degree, d);
    };
    if (depth.count(source)) fold_degree(views.at(source));
    for (const auto& v : viewers) {
      if (!v.joined || v.departed) continue;
      s.wanting++;
      const NodeId id = v.engine->self();
      const auto it = views.find(id);
      if (it != views.end() && it->second.in_tree) s.in_tree++;
      const auto d = depth.find(id);
      if (d != depth.end()) {
        s.depth = std::max(s.depth, d->second);
        fold_degree(it->second);
      } else {
        s.orphans++;
      }
    }
    s.mean_degree = degree_nodes == 0
                        ? 0.0
                        : static_cast<double>(degree_sum) /
                              static_cast<double>(degree_nodes);
    out.shape.push_back(s);
    reg.gauge(names::kStreamViewersInTree).set(static_cast<i64>(s.in_tree));
    reg.gauge(names::kStreamOrphans).set(static_cast<i64>(s.orphans));
    reg.gauge(names::kStreamTreeDepth).set(static_cast<i64>(s.depth));
    reg.gauge(names::kStreamTreeDegreeMax)
        .set(static_cast<i64>(s.max_degree));
  };

  const auto apply_event = [&](const ChurnEvent& e) {
    RealViewer& vs = viewers[e.viewer];
    const NodeId id = vs.engine->self();
    switch (e.action) {
      case ChurnAction::kJoin: {
        if (vs.joined || vs.departed) break;
        vs.joined = true;
        vs.sink->mark_join(RealClock::instance().now());
        obs.join_app(id, app);
        churn_count("join").inc();
        out.trace.push_back(strf("[%12.6f] join v%zu (%s)",
                                 scenario_seconds(), e.viewer,
                                 id.to_string().c_str()));
        break;
      }
      case ChurnAction::kDrop: {
        if (!vs.joined || vs.departed) break;
        const auto parent = vs.alg->snap().parent;
        if (!parent) {
          out.trace.push_back(strf("[%12.6f] drop v%zu skipped (no parent)",
                                   scenario_seconds(), e.viewer));
          break;
        }
        chaos::FaultPlan plan;
        plan.sever(0, id.to_string(), parent->to_string());
        chaos::RealChaosDriver driver(obs, std::move(plan), {});
        driver.run();
        for (const std::string& line : driver.trace()) {
          out.trace.push_back(line);
        }
        executed.sever(RealClock::instance().now() - t0, id.to_string(),
                       parent->to_string());
        vs.sink->mark_drop(RealClock::instance().now());
        churn_count("drop").inc();
        break;
      }
      case ChurnAction::kDepart: {
        if (!vs.joined || vs.departed) break;
        chaos::FaultPlan plan;
        plan.kill(0, id.to_string());
        chaos::RealChaosDriver driver(obs, std::move(plan), {});
        driver.run();
        for (const std::string& line : driver.trace()) {
          out.trace.push_back(line);
        }
        executed.kill(RealClock::instance().now() - t0, id.to_string());
        vs.departed = true;
        vs.sink->mark_depart(RealClock::instance().now());
        churn_count("depart").inc();
        break;
      }
    }
  };

  // Wall-clock merge of churn events and shape samples.
  const Duration total = config.churn.horizon + config.settle;
  std::size_t ei = 0;
  Duration next_sample = config.sample_period;
  while (true) {
    Duration target = std::min(total, next_sample);
    if (ei < out.schedule.events.size() &&
        out.schedule.events[ei].at < target) {
      target = out.schedule.events[ei].at;
    }
    const Duration wait = t0 + target - RealClock::instance().now();
    if (wait > 0) sleep_for(wait);
    while (ei < out.schedule.events.size() &&
           out.schedule.events[ei].at <= target) {
      apply_event(out.schedule.events[ei]);
      ++ei;
    }
    if (target == next_sample) {
      do_sample();
      next_sample += config.sample_period;
    }
    if (target == total) break;
  }

  out.plan_text = executed.to_string();
  const TimePoint end = RealClock::instance().now();
  const auto final_views = collect_views();
  const auto final_depth = rooted_depths(final_views, source);

  obs::Counter& frames_total = reg.counter(names::kStreamFramesTotal);
  obs::Histogram& h_first = reg.histogram(names::kStreamFirstPacketSeconds);
  obs::Histogram& h_rejoin = reg.histogram(names::kStreamRejoinSeconds);
  obs::Histogram& h_gap = reg.histogram(names::kStreamGapSeconds);
  out.viewers.resize(viewers.size());
  for (std::size_t v = 0; v < viewers.size(); ++v) {
    RealViewer& vs = viewers[v];
    vs.sink->finish(end);
    ViewerOutcome& o = out.viewers[v];
    o.viewer = v;
    o.id = vs.engine->self();
    o.ever_joined = vs.joined;
    o.departed = vs.departed;
    o.alive_in_tree = final_depth.count(o.id) > 0;
    o.continuity = vs.sink->stats();
    if (!o.ever_joined) continue;
    frames_total.inc(o.continuity.frames);
    if (o.continuity.first_packet_latency >= 0) {
      h_first.observe(o.continuity.first_packet_latency);
    }
    for (const double r : o.continuity.rejoin_latencies) h_rejoin.observe(r);
    h_gap.observe(o.continuity.gap_seconds);
  }

  const chaos::VerifyResult orphans_ok =
      chaos::verify_no_permanent_orphans(out);
  out.verify_failures.insert(out.verify_failures.end(),
                             orphans_ok.failures.begin(),
                             orphans_ok.failures.end());
  out.metrics_text = reg.snapshot().serialize();

  for (auto& v : viewers) v.engine->stop();
  source_engine->stop();
  return out;
}

}  // namespace iov::scenario
