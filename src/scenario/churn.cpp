#include "scenario/churn.h"

#include <algorithm>

#include "common/rng.h"
#include "common/strings.h"

namespace iov::scenario {

const char* churn_action_name(ChurnAction action) {
  switch (action) {
    case ChurnAction::kJoin: return "join";
    case ChurnAction::kDrop: return "drop";
    case ChurnAction::kDepart: return "depart";
  }
  return "?";
}

std::string ChurnEvent::to_string() const {
  return strf("at %.6f %s v%zu", to_seconds(at), churn_action_name(action),
              viewer);
}

std::size_t ChurnSchedule::count(ChurnAction action) const {
  std::size_t n = 0;
  for (const ChurnEvent& e : events) n += (e.action == action) ? 1 : 0;
  return n;
}

std::string ChurnSchedule::to_string() const {
  std::string out;
  for (const ChurnEvent& e : events) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

ChurnSchedule generate_churn(const ChurnConfig& config) {
  ChurnSchedule out;
  out.viewers = config.viewers;
  if (config.viewers == 0 || config.horizon <= 0) return out;
  Rng rng(config.seed);
  const std::size_t waves = std::max<std::size_t>(config.waves, 1);

  // Mass-exit shock instants, after the first wave has had time to land.
  std::vector<Duration> shocks;
  const Duration earliest = config.wave_spread;
  if (config.horizon > earliest) {
    for (std::size_t i = 0; i < config.shocks; ++i) {
      shocks.push_back(earliest +
                       static_cast<Duration>(
                           rng.uniform01() *
                           static_cast<double>(config.horizon - earliest)));
    }
    std::sort(shocks.begin(), shocks.end());
  }

  // Viewers spread round-robin across the arrival waves; each then lives
  // through exponentially long sessions until it departs for good or the
  // horizon cuts the story short.
  for (std::size_t v = 0; v < config.viewers; ++v) {
    const std::size_t wave = v % waves;
    Duration t = static_cast<Duration>(wave) * config.wave_spacing +
                 static_cast<Duration>(rng.uniform01() *
                                       static_cast<double>(config.wave_spread));
    if (t >= config.horizon) continue;
    out.events.push_back({t, v, ChurnAction::kJoin});

    while (true) {
      Duration end =
          t + seconds(rng.exponential(config.mean_session_seconds));
      const bool depart = rng.chance(config.depart_fraction);
      // Correlated exits: snap a share of the session ends onto the next
      // shock instant after this viewer's current session start.
      if (!shocks.empty() && rng.chance(config.correlated_fraction)) {
        const auto shock =
            std::upper_bound(shocks.begin(), shocks.end(), t);
        if (shock != shocks.end()) end = *shock;
      }
      if (end >= config.horizon) break;
      out.events.push_back(
          {end, v, depart ? ChurnAction::kDepart : ChurnAction::kDrop});
      if (depart) break;
      // A dropped viewer rejoins on its own; give the repair a beat
      // before the next session clock starts ticking.
      t = end + seconds(1.0);
    }
  }

  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const ChurnEvent& a, const ChurnEvent& b) {
                     return a.at < b.at;
                   });
  return out;
}

}  // namespace iov::scenario
