// Flash-crowd streaming churn harness: drives a generated ChurnSchedule
// against a §3.3 dissemination tree carrying a VideoSource stream, with
// every drop/depart executed through the chaos FaultPlan machinery
// (single-event plans resolved against the live tree, so a "drop"
// severs the viewer's *current* parent link). Runs on both substrates:
//
//   * run_sim_streaming_churn — SimNet, deterministic: same config (seed
//     included) gives byte-identical schedules, fault traces, per-viewer
//     continuity accounting, tree-shape curves and metric snapshots.
//     This is the 10k-viewer scale harness.
//   * run_real_streaming_churn — real engines over loopback TCP plus the
//     observer control plane (RealChaosDriver wire commands), small
//     scale; the cross-substrate conformance tests compare its surviving
//     viewer set and metric aggregates against the sim run.
//
// Per-viewer continuity accounting (the Ripeanu-style QoS story):
// first-packet latency, per-drop rejoin latency, and gap seconds — total
// stream silence beyond one grace interval while the viewer wanted the
// stream. Tree shape (depth / degree / orphans) is sampled over time.
// Everything is exported as iov_stream_* metrics through src/obs.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "algorithm/application.h"
#include "chaos/fault_plan.h"
#include "obs/metrics.h"
#include "scenario/churn.h"
#include "trees/tree_algorithm.h"

namespace iov::scenario {

/// Continuity-accounting receiver: the runner marks subscription edges
/// (join / drop / depart) and the sink folds every delivered frame into
/// gap/latency accounting incrementally. Thread-safe — on the real
/// substrate deliveries come from the engine thread.
class ViewerSink : public Application {
 public:
  explicit ViewerSink(double fps);

  MsgPtr next_message(u32 app, const NodeId& self, TimePoint now) override;
  void deliver(const MsgPtr& m, TimePoint now) override;

  void mark_join(TimePoint now);
  void mark_drop(TimePoint now);
  void mark_depart(TimePoint now);
  /// Closes the accounting window (tail gap up to `now`).
  void finish(TimePoint now);

  struct Stats {
    u64 frames = 0;
    u64 duplicate_or_stale = 0;  ///< non-increasing frame ids seen
    /// Join -> first frame, seconds; < 0 when no frame ever arrived.
    double first_packet_latency = -1.0;
    /// One entry per drop that recovered: drop -> next frame, seconds.
    std::vector<double> rejoin_latencies;
    std::size_t drops = 0;
    std::size_t unrecovered_drops = 0;  ///< dropped and never saw data again
    /// Stream silence beyond the grace interval while subscribed.
    double gap_seconds = 0.0;
  };
  Stats stats() const;

 private:
  void account_gap_locked(TimePoint now);

  const double fps_;
  const Duration grace_;  ///< 1.5 frame intervals
  mutable std::mutex mu_;
  Stats stats_;
  bool subscribed_ = false;
  bool waiting_rejoin_ = false;
  TimePoint join_at_ = -1;
  TimePoint drop_at_ = -1;
  TimePoint last_mark_ = -1;  ///< last arrival or subscription edge
  bool saw_frame_ = false;
  u32 last_frame_id_ = 0;
};

struct StreamingChurnConfig {
  ChurnConfig churn;
  u32 app = 1;
  trees::TreeStrategy strategy = trees::TreeStrategy::kRandomized;

  // Stream shape (VideoSource): frames/second, GOP length, frame sizes.
  double fps = 2.0;
  std::size_t gop = 8;
  std::size_t iframe_bytes = 1200;
  std::size_t pframe_bytes = 400;

  /// Last-mile uplink caps, bytes/second; 0 = uncapped (the 10k runs
  /// leave bandwidth uncapped so sim time is spent on churn, not pacing).
  double source_bandwidth = 0.0;
  double viewer_bandwidth = 0.0;

  std::size_t bootstrap_subset = 8;
  /// Starvation self-heal handed to every TreeAlgorithm
  /// (TreeAlgorithm::set_data_timeout); 0 disables.
  Duration data_timeout = seconds(3.0);
  /// Tree-shape sampling period.
  Duration sample_period = seconds(1.0);
  /// Drain time after the last churn event before final verification.
  Duration settle = seconds(6.0);
};

struct ViewerOutcome {
  std::size_t viewer = 0;
  NodeId id;
  bool ever_joined = false;
  bool departed = false;       ///< permanently left (killed)
  bool alive_in_tree = false;  ///< final state
  ViewerSink::Stats continuity;
};

struct TreeShapeSample {
  TimePoint at = 0;
  std::size_t wanting = 0;         ///< alive viewers subscribed right now
  std::size_t in_tree = 0;
  std::size_t orphans = 0;         ///< wanting but detached (rejoining)
  std::size_t depth = 0;           ///< max hops source -> viewer
  std::size_t max_degree = 0;
  double mean_degree = 0.0;

  std::string to_string() const;
};

struct StreamingChurnResult {
  ChurnSchedule schedule;
  std::vector<ViewerOutcome> viewers;
  std::vector<TreeShapeSample> shape;
  /// Every executed fault event in FaultPlan DSL form with resolved node
  /// ids, absolute scenario times — the churn counterpart of a chaos
  /// driver trace.
  std::string plan_text;
  /// Chaos driver trace lines plus join markers, in execution order.
  std::vector<std::string> trace;
  /// Serialized obs::MetricsSnapshot of the runner's registry (sim: the
  /// SimNet registry, including the iov_sim_* substrate metrics).
  std::string metrics_text;
  /// Verification outcome at the final quiescent point (and, on the sim
  /// substrate, at every intermediate quiescent point): empty == ok.
  std::vector<std::string> verify_failures;

  std::string trace_text() const;
  /// Canonical digest of everything above that must replay identically:
  /// schedule, plan, trace, shape curve, per-viewer continuity, metrics.
  std::string fingerprint() const;

  // Aggregates for benches and predicates.
  std::vector<double> rejoin_latencies() const;
  double max_gap_seconds() const;
  double total_gap_seconds() const;
  std::size_t permanent_orphans() const;
  u64 frames_delivered() const;
};

/// Runs the scenario on the deterministic simulator.
StreamingChurnResult run_sim_streaming_churn(
    const StreamingChurnConfig& config);

/// Runs the scenario on real engines over loopback with an in-process
/// observer (faults travel the kSeverLink/kTerminateNode wire commands).
/// Wall-clock, so only aggregates — not the fingerprint — are comparable
/// across runs. Keep viewer counts small.
StreamingChurnResult run_real_streaming_churn(
    const StreamingChurnConfig& config);

}  // namespace iov::scenario
