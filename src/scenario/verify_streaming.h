// chaos::verify predicates for streaming trees under churn — the
// streaming-specific members of the recovery-verification family
// (chaos/verify.h). They turn the flash-crowd robustness story into
// assertable properties:
//
//   * structural tree invariants at a quiescent point — every in-tree
//     non-source has an alive, in-tree parent; parent/child bookkeeping
//     is symmetric (no stale children); parent pointers are acyclic and
//     rooted at a deployed source;
//   * no permanent orphans — every viewer that ever joined and did not
//     permanently depart is back in the tree once the churn settles;
//   * bounded gap seconds — no surviving viewer's accumulated stream
//     silence (beyond the playout grace) exceeds a budget.
#pragma once

#include "chaos/verify.h"
#include "scenario/streaming_churn.h"
#include "sim/sim_net.h"

namespace iov::chaos {

/// Structural invariants of the `app` dissemination tree across all alive
/// simulated nodes running a TreeAlgorithm. Only meaningful at quiescent
/// points (attach handshakes in flight legitimately break symmetry).
VerifyResult verify_streaming_tree(const sim::SimNet& net, u32 app);

/// Every viewer that joined and never permanently departed finished the
/// scenario attached to the tree.
VerifyResult verify_no_permanent_orphans(
    const scenario::StreamingChurnResult& result);

/// No surviving viewer accumulated more than `max_gap_seconds` of stream
/// silence beyond the grace interval.
VerifyResult verify_bounded_gap_seconds(
    const scenario::StreamingChurnResult& result, double max_gap_seconds);

}  // namespace iov::chaos
