// Seeded flash-crowd churn generation (the workload ROADMAP's streaming
// item names and the paper's §3 trees never face): thousands of viewers
// arriving in a handful of tight bursts, staying for exponentially
// distributed sessions, and departing either for good or abruptly enough
// that they immediately fight to rejoin — with a configurable share of
// the departures correlated into mass-exit shocks (the "everyone closes
// the player when the match ends" pattern of Andreev et al.'s live
// streaming traces).
//
// The generator is pure: a ChurnConfig (seed included) maps to exactly
// one ChurnSchedule, so two runs of the same config drive byte-identical
// scenarios through the deterministic simulator. The schedule speaks in
// viewer indices; the scenario runner maps those to nodes and turns
// drops/departs into chaos FaultPlan events (sever/kill) at execution
// time, when the tree shape — and hence the sever peer — is known.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/types.h"

namespace iov::scenario {

enum class ChurnAction {
  kJoin,    ///< viewer joins the session (flash-crowd arrival)
  kDrop,    ///< abrupt disconnect (link sever); the viewer auto-rejoins
  kDepart,  ///< permanent leave (node kill); never comes back
};

const char* churn_action_name(ChurnAction action);

struct ChurnEvent {
  Duration at = 0;
  std::size_t viewer = 0;
  ChurnAction action = ChurnAction::kJoin;

  /// One schedule line, e.g. "at 4.25 drop v17".
  std::string to_string() const;
};

struct ChurnConfig {
  std::size_t viewers = 1000;
  u64 seed = 1;

  /// Flash-crowd arrivals: `waves` bursts, starting `wave_spacing`
  /// apart, each viewer's arrival uniform inside its wave's
  /// `wave_spread` window.
  std::size_t waves = 3;
  Duration wave_spacing = seconds(8.0);
  Duration wave_spread = seconds(2.0);

  /// Session length drawn Exp(mean_session_seconds) per stay; a viewer
  /// whose drop resolves before the horizon gets another session and may
  /// churn repeatedly.
  double mean_session_seconds = 15.0;
  /// Share of session ends that are permanent departures (kill); the
  /// rest are abrupt drops (sever) followed by an automatic rejoin.
  double depart_fraction = 0.4;
  /// Share of departures/drops pulled out of their natural time and
  /// snapped onto one of `shocks` mass-exit instants (identical
  /// timestamps, so same-time ordering is exercised too).
  double correlated_fraction = 0.2;
  std::size_t shocks = 2;

  /// Events at or beyond the horizon are discarded; the runner's settle
  /// window starts here.
  Duration horizon = seconds(30.0);
};

struct ChurnSchedule {
  std::size_t viewers = 0;
  std::vector<ChurnEvent> events;  ///< time-sorted; ties keep draw order

  std::size_t count(ChurnAction action) const;
  /// The whole schedule, one event per line — the replay artifact
  /// determinism tests compare byte-for-byte.
  std::string to_string() const;
};

/// Expands `config` into its schedule; identical configs yield identical
/// schedules.
ChurnSchedule generate_churn(const ChurnConfig& config);

}  // namespace iov::scenario
