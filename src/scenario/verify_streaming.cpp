#include "scenario/verify_streaming.h"

#include <map>
#include <optional>
#include <set>

#include "common/strings.h"
#include "trees/tree_algorithm.h"

namespace iov::chaos {

namespace {

struct TreeView {
  bool in_tree = false;
  bool is_source = false;
  std::optional<NodeId> parent;
  std::set<NodeId> children;
};

std::map<NodeId, TreeView> collect(const sim::SimNet& net, u32 app) {
  std::map<NodeId, TreeView> out;
  for (const NodeId& id : net.node_ids()) {
    const sim::SimEngine* e = net.node(id);
    if (!e || !e->alive()) continue;
    const auto* tree =
        dynamic_cast<const trees::TreeAlgorithm*>(&e->algorithm());
    if (!tree) continue;
    TreeView v;
    v.in_tree = tree->in_tree(app);
    v.is_source = e->is_source(app);
    v.parent = tree->parent(app);
    for (const NodeId& c : tree->children(app)) v.children.insert(c);
    out.emplace(id, std::move(v));
  }
  return out;
}

}  // namespace

VerifyResult verify_streaming_tree(const sim::SimNet& net, u32 app) {
  VerifyResult r;
  const auto views = collect(net, app);

  for (const auto& [id, v] : views) {
    if (!v.in_tree) {
      // A detached node must not believe it still has a parent.
      if (v.parent) {
        r.fail(strf("%s out of tree but keeps parent %s",
                    id.to_string().c_str(), v.parent->to_string().c_str()));
      }
      continue;
    }
    if (v.is_source) continue;
    if (!v.parent) {
      r.fail(strf("%s in tree without a parent (non-source)",
                  id.to_string().c_str()));
      continue;
    }
    const auto p = views.find(*v.parent);
    if (p == views.end()) {
      r.fail(strf("%s's parent %s is dead or not a tree node",
                  id.to_string().c_str(), v.parent->to_string().c_str()));
      continue;
    }
    if (!p->second.in_tree) {
      r.fail(strf("%s's parent %s is not in the tree",
                  id.to_string().c_str(), v.parent->to_string().c_str()));
    }
    if (p->second.children.count(id) == 0) {
      r.fail(strf("%s's parent %s does not list it as a child",
                  id.to_string().c_str(), v.parent->to_string().c_str()));
    }
  }

  // Stale children: every child entry must be an alive node whose parent
  // pointer agrees.
  for (const auto& [id, v] : views) {
    if (!v.in_tree) continue;
    for (const NodeId& c : v.children) {
      const auto it = views.find(c);
      if (it == views.end()) {
        r.fail(strf("%s keeps dead child %s", id.to_string().c_str(),
                    c.to_string().c_str()));
      } else if (!it->second.parent || *it->second.parent != id) {
        r.fail(strf("%s lists %s as child but the child disagrees",
                    id.to_string().c_str(), c.to_string().c_str()));
      }
    }
  }

  // Acyclicity / rootedness: parent chains of in-tree nodes must reach a
  // source. -1 marks nodes known detached or on a cycle.
  std::map<NodeId, int> depth;
  for (const auto& [id, v] : views) {
    if (v.is_source && v.in_tree) depth[id] = 0;
  }
  for (const auto& [id, v] : views) {
    if (!v.in_tree || depth.count(id)) continue;
    std::vector<NodeId> path;
    std::set<NodeId> on_path;
    NodeId cur = id;
    int base = -1;
    while (true) {
      const auto known = depth.find(cur);
      if (known != depth.end()) {
        base = known->second;
        break;
      }
      if (on_path.count(cur)) {
        r.fail(strf("parent cycle through %s", cur.to_string().c_str()));
        break;
      }
      const auto it = views.find(cur);
      if (it == views.end() || !it->second.in_tree || !it->second.parent) {
        break;  // falls off the tree; the checks above already reported it
      }
      path.push_back(cur);
      on_path.insert(cur);
      cur = *it->second.parent;
    }
    for (std::size_t i = 0; i < path.size(); ++i) {
      depth[path[i]] =
          base < 0 ? -1 : base + static_cast<int>(path.size() - i);
    }
    if (base < 0 && !path.empty()) {
      for (const NodeId& n : path) depth[n] = -1;
    }
  }
  for (const auto& [id, v] : views) {
    if (v.in_tree && !v.is_source) {
      const auto it = depth.find(id);
      if (it == depth.end() || it->second < 0) {
        r.fail(strf("%s is in the tree but no parent chain reaches a source",
                    id.to_string().c_str()));
      }
    }
  }
  return r;
}

VerifyResult verify_no_permanent_orphans(
    const scenario::StreamingChurnResult& result) {
  VerifyResult r;
  for (const auto& v : result.viewers) {
    if (!v.ever_joined || v.departed) continue;
    if (!v.alive_in_tree) {
      r.fail(strf("viewer v%zu (%s) never made it back into the tree",
                  v.viewer, v.id.to_string().c_str()));
    }
  }
  return r;
}

VerifyResult verify_bounded_gap_seconds(
    const scenario::StreamingChurnResult& result, double max_gap_seconds) {
  VerifyResult r;
  for (const auto& v : result.viewers) {
    if (!v.ever_joined) continue;
    if (v.continuity.gap_seconds > max_gap_seconds) {
      r.fail(strf("viewer v%zu (%s) gap %.3fs exceeds budget %.3fs", v.viewer,
                  v.id.to_string().c_str(), v.continuity.gap_seconds,
                  max_gap_seconds));
    }
  }
  return r;
}

}  // namespace iov::chaos
