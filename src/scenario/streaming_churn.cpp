#include "scenario/streaming_churn.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "apps/streaming.h"
#include "chaos/sim_driver.h"
#include "common/strings.h"
#include "obs/metric_names.h"
#include "scenario/verify_streaming.h"
#include "sim/sim_net.h"

namespace iov::scenario {

// --- ViewerSink -----------------------------------------------------------

ViewerSink::ViewerSink(double fps)
    : fps_(fps > 0 ? fps : 1.0), grace_(seconds(1.5 / fps_)) {}

MsgPtr ViewerSink::next_message(u32, const NodeId&, TimePoint) {
  return nullptr;
}

void ViewerSink::account_gap_locked(TimePoint now) {
  if (!subscribed_ || last_mark_ < 0) return;
  const Duration silent = now - last_mark_;
  if (silent > grace_) stats_.gap_seconds += to_seconds(silent - grace_);
}

void ViewerSink::deliver(const MsgPtr& m, TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!subscribed_) return;  // tail frames after depart/finish
  account_gap_locked(now);
  stats_.frames++;
  apps::FrameInfo info;
  if (apps::FrameInfo::parse(*m, &info)) {
    if (saw_frame_ && info.frame_id <= last_frame_id_) {
      stats_.duplicate_or_stale++;
    } else {
      last_frame_id_ = info.frame_id;
    }
  }
  if (!saw_frame_) {
    saw_frame_ = true;
    if (join_at_ >= 0) {
      stats_.first_packet_latency = to_seconds(now - join_at_);
    }
  }
  if (waiting_rejoin_) {
    waiting_rejoin_ = false;
    stats_.rejoin_latencies.push_back(to_seconds(now - drop_at_));
  }
  last_mark_ = now;
}

void ViewerSink::mark_join(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  subscribed_ = true;
  join_at_ = now;
  last_mark_ = now;
}

void ViewerSink::mark_drop(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!subscribed_) return;
  // No gap flush here: the silence from the last frame through the rejoin
  // is one silence period, charged one grace interval at the next arrival.
  stats_.drops++;
  waiting_rejoin_ = true;
  drop_at_ = now;
}

void ViewerSink::mark_depart(TimePoint now) { finish(now); }

void ViewerSink::finish(TimePoint now) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!subscribed_) return;
  account_gap_locked(now);
  subscribed_ = false;
  if (waiting_rejoin_) {
    waiting_rejoin_ = false;
    stats_.unrecovered_drops++;
  }
}

ViewerSink::Stats ViewerSink::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

// --- Shape sampling -------------------------------------------------------

std::string TreeShapeSample::to_string() const {
  return strf(
      "[%12.6f] wanting=%zu in_tree=%zu orphans=%zu depth=%zu "
      "max_degree=%zu mean_degree=%.3f",
      to_seconds(at), wanting, in_tree, orphans, depth, max_degree,
      mean_degree);
}

namespace {

struct TreeView {
  bool in_tree = false;
  std::optional<NodeId> parent;
  std::size_t children = 0;
};

/// Per-node tree state plus the set of nodes whose parent chain reaches
/// the source (acyclic, rooted) with their hop depths.
struct ShapeView {
  std::map<NodeId, TreeView> views;
  std::map<NodeId, std::size_t> depth;  ///< rooted nodes only

  bool rooted(const NodeId& id) const { return depth.count(id) > 0; }
};

ShapeView collect_shape(const sim::SimNet& net, u32 app, const NodeId& source,
                        const std::vector<NodeId>& ids) {
  ShapeView out;
  const auto look = [&](const NodeId& id) -> const TreeView* {
    const auto it = out.views.find(id);
    if (it != out.views.end()) return &it->second;
    const sim::SimEngine* e = net.node(id);
    if (!e || !e->alive()) return nullptr;
    const auto* tree =
        dynamic_cast<const trees::TreeAlgorithm*>(&e->algorithm());
    if (!tree) return nullptr;
    TreeView v;
    v.in_tree = tree->in_tree(app);
    v.parent = tree->parent(app);
    v.children = tree->children(app).size();
    return &out.views.emplace(id, v).first->second;
  };

  if (const TreeView* s = look(source); s && s->in_tree) {
    out.depth[source] = 0;
  }
  for (const NodeId& id : ids) {
    if (out.rooted(id)) continue;
    const TreeView* v = look(id);
    if (!v || !v->in_tree) continue;
    // Walk the parent chain until a node of known depth, the source, a
    // dead end, or a cycle.
    std::vector<NodeId> path;
    std::set<NodeId> on_path;
    NodeId cur = id;
    i64 base = -1;
    while (true) {
      const auto known = out.depth.find(cur);
      if (known != out.depth.end()) {
        base = static_cast<i64>(known->second);
        break;
      }
      if (on_path.count(cur)) break;  // parent cycle
      const TreeView* cv = look(cur);
      if (!cv || !cv->in_tree || !cv->parent) break;
      path.push_back(cur);
      on_path.insert(cur);
      cur = *cv->parent;
    }
    if (base >= 0) {
      for (std::size_t i = 0; i < path.size(); ++i) {
        out.depth[path[i]] =
            static_cast<std::size_t>(base) + (path.size() - i);
      }
    }
  }
  return out;
}

}  // namespace

// --- Result ---------------------------------------------------------------

std::string StreamingChurnResult::trace_text() const {
  std::string out;
  for (const std::string& line : trace) {
    out += line;
    out += '\n';
  }
  return out;
}

std::vector<double> StreamingChurnResult::rejoin_latencies() const {
  std::vector<double> out;
  for (const auto& v : viewers) {
    out.insert(out.end(), v.continuity.rejoin_latencies.begin(),
               v.continuity.rejoin_latencies.end());
  }
  return out;
}

double StreamingChurnResult::max_gap_seconds() const {
  double worst = 0.0;
  for (const auto& v : viewers) {
    worst = std::max(worst, v.continuity.gap_seconds);
  }
  return worst;
}

double StreamingChurnResult::total_gap_seconds() const {
  double total = 0.0;
  for (const auto& v : viewers) total += v.continuity.gap_seconds;
  return total;
}

std::size_t StreamingChurnResult::permanent_orphans() const {
  std::size_t n = 0;
  for (const auto& v : viewers) {
    if (v.ever_joined && !v.departed && !v.alive_in_tree) ++n;
  }
  return n;
}

u64 StreamingChurnResult::frames_delivered() const {
  u64 n = 0;
  for (const auto& v : viewers) n += v.continuity.frames;
  return n;
}

std::string StreamingChurnResult::fingerprint() const {
  std::string out = "== schedule ==\n";
  out += schedule.to_string();
  out += "== plan ==\n";
  out += plan_text;
  out += "== trace ==\n";
  out += trace_text();
  out += "== shape ==\n";
  for (const auto& s : shape) {
    out += s.to_string();
    out += '\n';
  }
  out += "== viewers ==\n";
  for (const auto& v : viewers) {
    out += strf("v%zu id=%s joined=%d departed=%d in_tree=%d frames=%llu "
                "dup=%llu first=%.6f drops=%zu unrec=%zu gap=%.6f rejoin=[",
                v.viewer, v.id.to_string().c_str(), v.ever_joined ? 1 : 0,
                v.departed ? 1 : 0, v.alive_in_tree ? 1 : 0,
                static_cast<unsigned long long>(v.continuity.frames),
                static_cast<unsigned long long>(
                    v.continuity.duplicate_or_stale),
                v.continuity.first_packet_latency, v.continuity.drops,
                v.continuity.unrecovered_drops, v.continuity.gap_seconds);
    for (std::size_t i = 0; i < v.continuity.rejoin_latencies.size(); ++i) {
      if (i > 0) out += ' ';
      out += strf("%.6f", v.continuity.rejoin_latencies[i]);
    }
    out += "]\n";
  }
  out += "== verify ==\n";
  for (const auto& f : verify_failures) {
    out += f;
    out += '\n';
  }
  out += "== metrics ==\n";
  out += metrics_text;
  return out;
}

// --- Sim runner -----------------------------------------------------------

namespace {

struct SimViewer {
  NodeId id;
  std::shared_ptr<ViewerSink> sink;
  bool joined = false;
  bool departed = false;
  std::size_t stuck = 0;  ///< consecutive samples wanting but unrooted
};

}  // namespace

StreamingChurnResult run_sim_streaming_churn(
    const StreamingChurnConfig& config) {
  namespace names = obs::names;
  StreamingChurnResult out;
  out.schedule = generate_churn(config.churn);
  const u32 app = config.app;

  sim::SimNet::Config nc;
  nc.seed = config.churn.seed;
  sim::SimNet net(nc);
  obs::MetricsRegistry& reg = net.metrics();

  // The last-mile figure only feeds the ns-aware stress formula; give
  // uncapped nodes a nominal 200 kB/s so stress stays finite.
  const double last_mile =
      config.viewer_bandwidth > 0 ? config.viewer_bandwidth : 200e3;
  const auto make_tree = [&] {
    auto t = std::make_unique<trees::TreeAlgorithm>(config.strategy,
                                                    last_mile);
    t->set_data_timeout(config.data_timeout);
    return t;
  };
  // Throughput self-reports are pure background load here; stretch the
  // interval so a 10k-node run is not dominated by them.
  sim::SimNodeConfig src_cfg;
  src_cfg.bandwidth.node_up = config.source_bandwidth;
  src_cfg.throughput_interval = seconds(10.0);
  sim::SimEngine& src = net.add_node(make_tree(), src_cfg);
  const NodeId source = src.self();
  src.register_app(app, std::make_shared<apps::VideoSource>(
                            config.fps, config.gop, config.iframe_bytes,
                            config.pframe_bytes));
  net.deploy(source, app);

  sim::SimNodeConfig viewer_cfg;
  viewer_cfg.bandwidth.node_up = config.viewer_bandwidth;
  viewer_cfg.throughput_interval = seconds(10.0);
  std::vector<SimViewer> viewers(out.schedule.viewers);
  for (std::size_t v = 0; v < viewers.size(); ++v) {
    sim::SimEngine& e = net.add_node(make_tree(), viewer_cfg);
    viewers[v].id = e.self();
    viewers[v].sink = std::make_shared<ViewerSink>(config.fps);
    e.register_app(app, viewers[v].sink);
  }

  // The rendezvous view: viewers currently part of the session, in join
  // order. Bootstrap replies are sampled from here (plus the source), the
  // way the observer samples announced-alive nodes.
  std::vector<NodeId> member_pool;
  const auto bootstrap_viewer = [&](const SimViewer& vs) {
    std::vector<NodeId> hosts{source};
    if (config.bootstrap_subset > 1 && !member_pool.empty()) {
      // Draw indices instead of Rng::sample's copy-and-shuffle: at 10k
      // viewers a full pool copy per join dominates the whole run.
      const std::size_t want =
          std::min(config.bootstrap_subset - 1, member_pool.size());
      std::set<std::size_t> picked;
      while (picked.size() < want) {
        picked.insert(
            static_cast<std::size_t>(net.rng().below(member_pool.size())));
      }
      for (const std::size_t i : picked) {
        if (member_pool[i] != vs.id) hosts.push_back(member_pool[i]);
      }
    }
    net.bootstrap(vs.id, hosts);
  };

  chaos::FaultPlan executed;
  const auto tree_of = [&](const NodeId& id) -> const trees::TreeAlgorithm* {
    const sim::SimEngine* e = net.node(id);
    if (!e || !e->alive()) return nullptr;
    return dynamic_cast<const trees::TreeAlgorithm*>(&e->algorithm());
  };

  const TimePoint t0 = net.now();
  const auto scenario_seconds = [&] { return to_seconds(net.now() - t0); };
  const auto churn_count = [&](const char* action) -> obs::Counter& {
    return reg.counter(names::kStreamChurnEventsTotal, {{"action", action}});
  };

  const auto apply_event = [&](const ChurnEvent& e) {
    SimViewer& vs = viewers[e.viewer];
    switch (e.action) {
      case ChurnAction::kJoin: {
        if (vs.joined || vs.departed) break;
        bootstrap_viewer(vs);
        vs.joined = true;
        vs.sink->mark_join(net.now());
        net.join_app(vs.id, app);
        member_pool.push_back(vs.id);
        churn_count("join").inc();
        out.trace.push_back(strf("[%12.6f] join v%zu (%s)",
                                 scenario_seconds(), e.viewer,
                                 vs.id.to_string().c_str()));
        break;
      }
      case ChurnAction::kDrop: {
        if (!vs.joined || vs.departed) break;
        const trees::TreeAlgorithm* tree = tree_of(vs.id);
        std::optional<NodeId> parent;
        if (tree) parent = tree->parent(app);
        if (!parent) {
          // Not attached right now (still joining or already healing); the
          // disconnect it models is already in progress.
          out.trace.push_back(strf("[%12.6f] drop v%zu skipped (no parent)",
                                   scenario_seconds(), e.viewer));
          break;
        }
        chaos::FaultPlan plan;
        plan.sever(0, vs.id.to_string(), parent->to_string());
        chaos::SimChaosDriver driver(net, std::move(plan), {});
        driver.run_until(net.now());
        for (const std::string& line : driver.trace()) {
          out.trace.push_back(line);
        }
        executed.sever(net.now() - t0, vs.id.to_string(),
                       parent->to_string());
        vs.sink->mark_drop(net.now());
        churn_count("drop").inc();
        break;
      }
      case ChurnAction::kDepart: {
        if (!vs.joined || vs.departed) break;
        chaos::FaultPlan plan;
        plan.kill(0, vs.id.to_string());
        chaos::SimChaosDriver driver(net, std::move(plan), {});
        driver.run_until(net.now());
        for (const std::string& line : driver.trace()) {
          out.trace.push_back(line);
        }
        executed.kill(net.now() - t0, vs.id.to_string());
        vs.departed = true;
        vs.sink->mark_depart(net.now());
        std::erase(member_pool, vs.id);
        churn_count("depart").inc();
        break;
      }
    }
  };

  obs::Gauge& g_in_tree = reg.gauge(names::kStreamViewersInTree);
  obs::Gauge& g_orphans = reg.gauge(names::kStreamOrphans);
  obs::Gauge& g_depth = reg.gauge(names::kStreamTreeDepth);
  obs::Gauge& g_degree = reg.gauge(names::kStreamTreeDegreeMax);

  const auto do_sample = [&] {
    std::vector<NodeId> wanting_ids;
    for (const SimViewer& vs : viewers) {
      if (vs.joined && !vs.departed) wanting_ids.push_back(vs.id);
    }
    const ShapeView shape = collect_shape(net, app, source, wanting_ids);
    TreeShapeSample s;
    s.at = net.now() - t0;
    s.wanting = wanting_ids.size();
    std::size_t degree_nodes = 0;
    std::size_t degree_sum = 0;
    const auto fold_degree = [&](const NodeId& id) {
      const auto it = shape.views.find(id);
      if (it == shape.views.end()) return;
      const std::size_t d =
          it->second.children + (it->second.parent ? 1 : 0);
      degree_nodes++;
      degree_sum += d;
      s.max_degree = std::max(s.max_degree, d);
    };
    if (shape.rooted(source)) fold_degree(source);
    for (const NodeId& id : wanting_ids) {
      const auto it = shape.views.find(id);
      const bool in = it != shape.views.end() && it->second.in_tree;
      if (in) s.in_tree++;
      if (shape.rooted(id)) {
        s.depth = std::max(s.depth, shape.depth.at(id));
        fold_degree(id);
      } else {
        s.orphans++;
      }
    }
    s.mean_degree = degree_nodes == 0
                        ? 0.0
                        : static_cast<double>(degree_sum) /
                              static_cast<double>(degree_nodes);
    out.shape.push_back(s);
    g_in_tree.set(static_cast<i64>(s.in_tree));
    g_orphans.set(static_cast<i64>(s.orphans));
    g_depth.set(static_cast<i64>(s.depth));
    g_degree.set(static_cast<i64>(s.max_degree));

    // Orphan self-rescue: a viewer can wedge with every known host dead or
    // detached; refresh its rendezvous view (the real-world "ask the
    // tracker again") after a few stuck samples.
    for (SimViewer& vs : viewers) {
      if (!vs.joined || vs.departed) continue;
      if (shape.rooted(vs.id)) {
        vs.stuck = 0;
        continue;
      }
      if (++vs.stuck >= 3) {
        bootstrap_viewer(vs);
        vs.stuck = 0;
      }
    }
  };

  // Merge-ordered execution: churn events and shape samples interleave at
  // their exact sim times.
  const TimePoint end = t0 + config.churn.horizon + config.settle;
  std::size_t ei = 0;
  TimePoint next_sample = t0 + config.sample_period;
  while (true) {
    TimePoint target = std::min(end, next_sample);
    if (ei < out.schedule.events.size() &&
        t0 + out.schedule.events[ei].at < target) {
      target = t0 + out.schedule.events[ei].at;
    }
    net.run_until(target);
    while (ei < out.schedule.events.size() &&
           t0 + out.schedule.events[ei].at <= target) {
      apply_event(out.schedule.events[ei]);
      ++ei;
    }
    if (target == next_sample) {
      do_sample();
      next_sample += config.sample_period;
    }
    if (target == end) break;
  }

  // Final accounting at the quiescent point.
  out.plan_text = executed.to_string();
  std::vector<NodeId> final_ids;
  for (const SimViewer& vs : viewers) {
    if (vs.joined && !vs.departed) final_ids.push_back(vs.id);
  }
  const ShapeView final_shape = collect_shape(net, app, source, final_ids);
  if (std::getenv("IOV_SCENARIO_DEBUG") != nullptr) {
    for (const SimViewer& vs : viewers) {
      if (!vs.joined || vs.departed || final_shape.rooted(vs.id)) continue;
      std::string line = "STUCK " + vs.id.to_string() + " chain:";
      NodeId cur = vs.id;
      std::set<NodeId> seen;
      while (true) {
        if (!seen.insert(cur).second) {
          line += " CYCLE";
          break;
        }
        const trees::TreeAlgorithm* t = tree_of(cur);
        if (!t) {
          line += " " + cur.to_string() + "(DEAD)";
          break;
        }
        if (!t->in_tree(app)) {
          line += " " + cur.to_string() + "(OUT)";
          break;
        }
        const auto p = t->parent(app);
        if (!p) {
          line += " " + cur.to_string() + "(NO-PARENT)";
          break;
        }
        line += " " + cur.to_string();
        cur = *p;
      }
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }

  obs::Counter& frames_total = reg.counter(names::kStreamFramesTotal);
  obs::Histogram& h_first = reg.histogram(names::kStreamFirstPacketSeconds);
  obs::Histogram& h_rejoin = reg.histogram(names::kStreamRejoinSeconds);
  obs::Histogram& h_gap = reg.histogram(names::kStreamGapSeconds);
  out.viewers.resize(viewers.size());
  for (std::size_t v = 0; v < viewers.size(); ++v) {
    SimViewer& vs = viewers[v];
    vs.sink->finish(net.now());
    ViewerOutcome& o = out.viewers[v];
    o.viewer = v;
    o.id = vs.id;
    o.ever_joined = vs.joined;
    o.departed = vs.departed;
    o.alive_in_tree = final_shape.rooted(vs.id);
    o.continuity = vs.sink->stats();
    if (!o.ever_joined) continue;
    frames_total.inc(o.continuity.frames);
    if (o.continuity.first_packet_latency >= 0) {
      h_first.observe(o.continuity.first_packet_latency);
    }
    for (const double r : o.continuity.rejoin_latencies) h_rejoin.observe(r);
    h_gap.observe(o.continuity.gap_seconds);
  }

  const chaos::VerifyResult tree_ok = chaos::verify_streaming_tree(net, app);
  out.verify_failures = tree_ok.failures;
  const chaos::VerifyResult orphans_ok =
      chaos::verify_no_permanent_orphans(out);
  out.verify_failures.insert(out.verify_failures.end(),
                             orphans_ok.failures.begin(),
                             orphans_ok.failures.end());

  out.metrics_text = reg.snapshot().serialize();
  return out;
}

}  // namespace iov::scenario
