#include "sim/sim_net.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"
#include "engine/engine.h"  // BandwidthScope constants
#include "obs/metric_names.h"

namespace iov::sim {

namespace {
/// Delay after which a peer notices a vanished neighbour (models the
/// kernel surfacing the RST/EOF to the receiver thread).
constexpr Duration kFailureNoticeDelay = millis(2);
}  // namespace

// --- MsgAccounting ------------------------------------------------------------

void MsgAccounting::record(const NodeId& src, const NodeId& dst,
                           const Msg& m) {
  const auto add = [&](Counter& c) {
    c.msgs += 1;
    c.bytes += m.wire_size();
  };
  add(total[m.type()]);
  add(per_node[src][m.type()]);
  add(per_dest[dst][m.type()]);
}

u64 MsgAccounting::bytes_of(MsgType t) const {
  const auto it = total.find(t);
  return it == total.end() ? 0 : it->second.bytes;
}

u64 MsgAccounting::node_bytes_of(const NodeId& node, MsgType t) const {
  const auto it = per_node.find(node);
  if (it == per_node.end()) return 0;
  const auto jt = it->second.find(t);
  return jt == it->second.end() ? 0 : jt->second.bytes;
}

// --- SimEngine ------------------------------------------------------------------

SimEngine::SimEngine(SimNet& net, NodeId id,
                     std::unique_ptr<Algorithm> algorithm,
                     SimNodeConfig config)
    : net_(net),
      self_(id),
      algorithm_(std::move(algorithm)),
      config_(config),
      rng_(net.rng().split()),
      bandwidth_(config.bandwidth) {
  algorithm_->bind(*this);
  // Periodic throughput reports, mirroring the real engine.
  net_.events_.schedule_in(config_.throughput_interval, [this] {
    emit_throughput_reports();
  });
}

SimEngine::~SimEngine() = default;

TimePoint SimEngine::now() const { return net_.now(); }

void SimEngine::register_app(u32 app, std::shared_ptr<Application> impl) {
  sources_[app].app_impl = std::move(impl);
}

void SimEngine::set_timer(Duration delay, i32 timer_id) {
  net_.events_.schedule_in(delay, [this, timer_id] {
    if (!alive_) return;
    deliver_to_algorithm(
        Msg::control(MsgType::kTimer, self_, kControlApp, timer_id));
    schedule_pump();
  });
}

void SimEngine::emit_throughput_reports() {
  if (!alive_) return;
  for (const auto& [peer, apps] : up_apps_) {
    if (const SimLink* l = net_.find_link(peer, self_)) {
      deliver_to_algorithm(Msg::control(
          MsgType::kUpThroughput, peer, kControlApp,
          static_cast<i32>(l->rx_meter.rate(now()))));
    }
  }
  for (const auto& [peer, apps] : down_apps_) {
    if (const SimLink* l = net_.find_link(self_, peer)) {
      deliver_to_algorithm(Msg::control(
          MsgType::kDownThroughput, peer, kControlApp,
          static_cast<i32>(l->tx_meter.rate(now()))));
    }
  }
  schedule_pump();
  net_.events_.schedule_in(config_.throughput_interval, [this] {
    emit_throughput_reports();
  });
}

void SimEngine::deliver_to_algorithm(const MsgPtr& m) {
  if (!alive_) return;
  algorithm_->process(m);
}

void SimEngine::dispatch(const MsgPtr& m) {
  if (!alive_) return;
  switch (m->type()) {
    case MsgType::kPeerFailed:
    case MsgType::kSendFailed:
      handle_link_failure(m->origin(), /*deliberate=*/false);
      return;

    case MsgType::kTerminateNode:
      shutdown();
      return;

    case MsgType::kSetBandwidth: {
      const double rate = static_cast<double>(m->param(1));
      switch (m->param(0)) {
        case engine::kBwNodeTotal: bandwidth_.set_node_total(rate); return;
        case engine::kBwNodeUp: bandwidth_.set_node_up(rate); return;
        case engine::kBwNodeDown: bandwidth_.set_node_down(rate); return;
        case engine::kBwLinkUp:
        case engine::kBwLinkDown: {
          const auto peer = NodeId::parse(trim(m->param_text()));
          if (!peer) return;
          if (m->param(0) == engine::kBwLinkUp) {
            bandwidth_.set_link_up(*peer, rate);
          } else {
            bandwidth_.set_link_down(*peer, rate);
          }
          return;
        }
        default: return;
      }
    }

    case MsgType::kSeverLink: {
      // Fault injection, mirroring the real engine: our side fails the
      // link non-deliberately; the peer notices its EOF shortly after.
      const auto parsed = NodeId::parse(trim(m->param_text()));
      if (!parsed) return;
      const NodeId peer = *parsed;
      handle_link_failure(peer, /*deliberate=*/false);
      net_.events_.schedule_in(kFailureNoticeDelay, [this, peer] {
        if (SimEngine* other = net_.node(peer)) {
          other->handle_link_failure(self_, /*deliberate=*/false);
        }
      });
      return;
    }

    case MsgType::kSetLoss: {
      const auto peer = NodeId::parse(trim(m->param_text()));
      if (peer) {
        net_.set_loss(self_, *peer,
                      static_cast<double>(m->param(0)) / 1e6);
      }
      return;
    }

    case MsgType::kSDeploy: {
      const u32 app = static_cast<u32>(m->param(0));
      const auto it = sources_.find(app);
      if (it == sources_.end() || !it->second.app_impl) {
        IOV_LOG_WARN("sim") << self_.to_string()
                            << ": sDeploy with no registered app " << app;
        return;
      }
      it->second.active = true;
      deliver_to_algorithm(m);
      schedule_pump();
      return;
    }

    case MsgType::kSTerminate: {
      const auto it = sources_.find(static_cast<u32>(m->param(0)));
      if (it != sources_.end()) it->second.active = false;
      deliver_to_algorithm(m);
      return;
    }

    case MsgType::kSJoin:
      joined_.insert(static_cast<u32>(m->param(0)));
      deliver_to_algorithm(m);
      return;

    case MsgType::kSLeave:
      joined_.erase(static_cast<u32>(m->param(0)));
      deliver_to_algorithm(m);
      return;

    case MsgType::kBrokenSource:
      propagate_broken_source(m->app(), m->origin());
      return;

    default:
      deliver_to_algorithm(m);
      schedule_pump();
      return;
  }
}

void SimEngine::send(const MsgPtr& m, const NodeId& dest) {
  if (!alive_ || !m || !dest.valid()) return;
  if (dest == self_) {
    net_.events_.schedule_in(0, [this, m] { dispatch(m); });
    return;
  }
  if (m->type() == MsgType::kData && current_outbox_ != nullptr) {
    current_outbox_->entries.push_back({m, dest});
    return;
  }
  SimLink& l = net_.link(self_, dest, config_);
  if (l.closed) return;
  if (l.send_buf.size() < l.send_cap) {
    l.send_buf.push_back(m);
    // Only data messages define the per-app up/downstream topology the
    // Domino walks. Control traffic (query relays, acks, stress probes)
    // reaches many more peers than the dissemination structure does, and
    // counting it would turn a broken-source cascade into an
    // overlay-wide flood.
    if (m->type() == MsgType::kData) down_apps_[dest].insert(m->app());
    net_.pump_link(l);
  } else {
    control_backlog_[dest].push_back(m);
  }
}

bool SimEngine::flush_outbox(Outbox& outbox) {
  if (outbox.empty()) return false;
  bool progress = false;
  std::set<NodeId> stuck;
  auto& entries = outbox.entries;
  for (auto it = entries.begin(); it != entries.end();) {
    const NodeId dest = it->second;
    if (stuck.count(dest) > 0) {
      ++it;
      continue;
    }
    SimLink& l = net_.link(self_, dest, config_);
    SimEngine* peer = net_.node(dest);
    if (l.closed || peer == nullptr || !peer->alive_) {
      net_.events_.schedule_in(0, [this, dest] {
        dispatch(Msg::control(MsgType::kBrokenLink, dest, kControlApp));
      });
      it = entries.erase(it);
      progress = true;
      continue;
    }
    if (l.send_buf.size() < l.send_cap) {
      l.send_buf.push_back(it->first);
      down_apps_[dest].insert(it->first->app());
      net_.pump_link(l);
      it = entries.erase(it);
      progress = true;
    } else {
      stuck.insert(dest);
      ++it;
    }
  }
  return progress;
}

void SimEngine::flush_control_backlogs() {
  for (auto it = control_backlog_.begin(); it != control_backlog_.end();) {
    SimLink& l = net_.link(self_, it->first, config_);
    auto& queue = it->second;
    while (!queue.empty() && !l.closed && l.send_buf.size() < l.send_cap) {
      l.send_buf.push_back(queue.front());
      queue.pop_front();
      net_.pump_link(l);
    }
    it = queue.empty() ? control_backlog_.erase(it) : std::next(it);
  }
}

void SimEngine::schedule_pump() {
  if (pump_scheduled_ || !alive_) return;
  pump_scheduled_ = true;
  net_.events_.schedule_in(0, [this] {
    pump_scheduled_ = false;
    pump();
  });
}

void SimEngine::pump() {
  if (!alive_) return;
  // The switch processes at most this many wire bytes per event — the sim
  // analogue of the real engine's finite switching capacity. Without the
  // budget, an algorithm that consumes or drops an unbounded back-to-back
  // stream (e.g. a source with no children yet) would loop forever at one
  // virtual instant.
  constexpr std::size_t kBudgetBytes = 256 * 1024;
  std::size_t cost = 0;
  std::size_t round = 1;
  while (round > 0 && cost < kBudgetBytes) {
    round = 0;
    flush_control_backlogs();
    // Deterministic order: the peer index is sorted by NodeId. Copied
    // first — delivering a message can dial new links, which mutates
    // the index mid-walk.
    std::vector<NodeId> ups;
    if (const auto it = net_.in_peers_.find(self_);
        it != net_.in_peers_.end()) {
      ups.assign(it->second.begin(), it->second.end());
    }
    for (const auto& peer : ups) round += pump_upstream(peer);
    for (auto& [app, slot] : sources_) round += pump_source(app, slot);
    cost += round;
  }
  if (round > 0) {
    // Budget exhausted with work remaining: continue after the time the
    // engine would have spent switching these bytes.
    const Duration busy = static_cast<Duration>(
        static_cast<double>(cost) / net_.config_.default_link_rate *
        static_cast<double>(kNanosPerSec));
    if (!pump_scheduled_) {
      pump_scheduled_ = true;
      net_.events_.schedule_in(busy, [this] {
        pump_scheduled_ = false;
        pump();
      });
    }
  }

  // Paced sources (CBR) return no message until their allowance accrues;
  // nothing else will wake this node, so poll them.
  bool active_source = false;
  for (const auto& [app, slot] : sources_) {
    active_source |= slot.active && slot.app_impl != nullptr;
  }
  if (active_source && !source_poll_scheduled_) {
    source_poll_scheduled_ = true;
    net_.events_.schedule_in(millis(20), [this] {
      source_poll_scheduled_ = false;
      schedule_pump();
    });
  }
}

std::size_t SimEngine::pump_upstream(const NodeId& peer) {
  Outbox& outbox = upstream_outbox_[peer];
  std::size_t progress = flush_outbox(outbox) ? 1 : 0;
  if (!outbox.empty()) return progress;
  SimLink* l = net_.find_link(peer, self_);
  if (l == nullptr || l->recv_buf.empty()) return progress;

  MsgPtr m = l->recv_buf.front();
  l->recv_buf.pop_front();
  if (!l->recv_enq.empty()) {
    // Sim-time analogue of the real switch latency: virtual-time delta
    // between recv-buffer enqueue and this switch pop.
    net_.sim_switch_latency_.observe(to_seconds(now() - l->recv_enq.front()));
    l->recv_enq.pop_front();
  }
  net_.sim_switch_msgs_.inc();
  net_.on_recv_space(self_, peer);
  // Data-plane only: a peer is an "upstream" for an app when it feeds us
  // that app's data, not when it merely relays control for it.
  if (m->type() == MsgType::kData) up_apps_[peer].insert(m->app());
  const std::size_t size = m->wire_size();

  current_outbox_ = &outbox;
  deliver_to_algorithm(m);
  current_outbox_ = nullptr;
  flush_outbox(outbox);
  return progress + size;
}

std::size_t SimEngine::pump_source(u32 app, SourceSlot& slot) {
  std::size_t progress = flush_outbox(slot.outbox) ? 1 : 0;
  if (!slot.outbox.empty() || !slot.active || !slot.app_impl) return progress;

  MsgPtr m = slot.app_impl->next_message(app, self_, now());
  if (!m) return progress;
  m->set_seq(slot.next_seq++);
  const std::size_t size = m->wire_size();
  current_outbox_ = &slot.outbox;
  deliver_to_algorithm(m);
  current_outbox_ = nullptr;
  flush_outbox(slot.outbox);
  return progress + size;
}

std::vector<NodeId> SimEngine::upstreams() const {
  std::vector<NodeId> out;
  for (const auto& [peer, apps] : up_apps_) out.push_back(peer);
  return out;
}

std::vector<NodeId> SimEngine::downstreams() const {
  std::vector<NodeId> out;
  for (const auto& [peer, apps] : down_apps_) out.push_back(peer);
  return out;
}

std::optional<LinkStats> SimEngine::upstream_stats(const NodeId& peer) const {
  const SimLink* l = net_.find_link(peer, self_);
  if (l == nullptr) return std::nullopt;
  LinkStats s;
  s.peer = peer;
  s.rate_bps = l->rx_meter.rate(now());
  s.total_bytes = l->rx_meter.total_bytes();
  s.total_msgs = l->rx_meter.total_msgs();
  s.lost_bytes = l->rx_meter.lost_bytes();
  s.lost_msgs = l->rx_meter.lost_msgs();
  s.buffer_len = l->recv_buf.size();
  s.buffer_cap = l->recv_cap;
  return s;
}

std::optional<LinkStats> SimEngine::downstream_stats(
    const NodeId& peer) const {
  const SimLink* l = net_.find_link(self_, peer);
  if (l == nullptr) return std::nullopt;
  LinkStats s;
  s.peer = peer;
  s.rate_bps = l->tx_meter.rate(now());
  s.total_bytes = l->tx_meter.total_bytes();
  s.total_msgs = l->tx_meter.total_msgs();
  s.lost_bytes = l->tx_meter.lost_bytes();
  s.lost_msgs = l->tx_meter.lost_msgs();
  s.buffer_len = l->send_buf.size();
  s.buffer_cap = l->send_cap;
  return s;
}

void SimEngine::deliver_local(const MsgPtr& m) {
  const auto it = sources_.find(m->app());
  if (it != sources_.end() && it->second.app_impl) {
    it->second.app_impl->deliver(m, now());
  }
}

bool SimEngine::is_source(u32 app) const {
  const auto it = sources_.find(app);
  return it != sources_.end() && it->second.active;
}

void SimEngine::trace(std::string_view text) {
  net_.record_trace(self_, text);
}

void SimEngine::close_link(const NodeId& peer) {
  handle_link_failure(peer, /*deliberate=*/true);
  // The peer sees EOF shortly after.
  net_.events_.schedule_in(kFailureNoticeDelay, [this, peer] {
    if (SimEngine* other = net_.node(peer)) {
      other->handle_link_failure(self_, /*deliberate=*/false);
    }
  });
}

void SimEngine::shutdown() {
  if (!alive_) return;
  alive_ = false;
  net_.close_links_of(self_);
}

void SimEngine::handle_link_failure(const NodeId& peer, bool deliberate) {
  // Notify the algorithm if any link slot ever existed in either
  // direction (the slot may already be marked closed by the time a
  // failure notice is processed; up/down_apps_ can't stand in for this —
  // they only track data-plane traffic).
  const auto touch = net_.touch_peers_.find(self_);
  const bool had_links =
      touch != net_.touch_peers_.end() && touch->second.count(peer) > 0;
  net_.close_links_of(self_, peer);
  upstream_outbox_.erase(peer);
  control_backlog_.erase(peer);
  for (auto& [slot_peer, outbox] : upstream_outbox_) {
    std::erase_if(outbox.entries,
                  [&](const auto& e) { return e.second == peer; });
  }
  for (auto& [app, slot] : sources_) {
    std::erase_if(slot.outbox.entries,
                  [&](const auto& e) { return e.second == peer; });
  }

  const std::set<u32> lost_apps = [&] {
    const auto it = up_apps_.find(peer);
    return it == up_apps_.end() ? std::set<u32>{} : it->second;
  }();
  up_apps_.erase(peer);
  down_apps_.erase(peer);

  if (!deliberate && had_links) {
    deliver_to_algorithm(
        Msg::control(MsgType::kBrokenLink, peer, kControlApp));
  }

  for (const u32 app : lost_apps) {
    if (is_source(app)) continue;
    bool other_upstream = false;
    for (const auto& [other, apps] : up_apps_) {
      if (apps.count(app) > 0) {
        other_upstream = true;
        break;
      }
    }
    if (!other_upstream) propagate_broken_source(app, peer);
  }
  schedule_pump();
}

void SimEngine::propagate_broken_source(u32 app, const NodeId& origin) {
  if (!broken_seen_.insert({app, origin}).second) return;
  auto notice = std::make_shared<Msg>(MsgType::kBrokenSource, origin, app, 0,
                                      Buffer::empty_buffer());
  std::vector<NodeId> targets;
  for (const auto& [peer, apps] : down_apps_) {
    if (apps.count(app) > 0) targets.push_back(peer);
  }
  for (const auto& target : targets) send(notice, target);
  deliver_to_algorithm(notice);
}

// --- SimNet ------------------------------------------------------------------------

SimNet::SimNet() : SimNet(Config{}) {}

SimNet::SimNet(Config config)
    : config_(config),
      rng_(config.seed),
      sim_switch_latency_(
          metrics_.histogram(obs::names::kSimSwitchLatencySeconds)),
      sim_switch_msgs_(metrics_.counter(obs::names::kSimSwitchMessagesTotal)),
      sim_delivered_bytes_(
          metrics_.counter(obs::names::kSimDeliveredBytesTotal)),
      sim_delivered_msgs_(
          metrics_.counter(obs::names::kSimDeliveredMessagesTotal)),
      sim_send_wait_(metrics_.histogram(obs::names::kSimThrottleWaitSeconds,
                                        {{"dir", "send"}})),
      sim_recv_wait_(metrics_.histogram(obs::names::kSimThrottleWaitSeconds,
                                        {{"dir", "recv"}})) {}

SimNet::~SimNet() = default;

SimEngine& SimNet::add_node(std::unique_ptr<Algorithm> algorithm,
                            SimNodeConfig config) {
  const u32 host = next_host_++;
  const NodeId id(0x0a000000u | host, static_cast<u16>(7000 + host % 50000));
  return add_node(id, std::move(algorithm), config);
}

SimEngine& SimNet::add_node(NodeId id, std::unique_ptr<Algorithm> algorithm,
                            SimNodeConfig config) {
  auto node = std::make_unique<SimEngine>(*this, id, std::move(algorithm),
                                          config);
  SimEngine& ref = *node;
  nodes_[id] = std::move(node);
  events_.schedule_in(0, [&ref] { ref.algorithm().on_start(); });
  return ref;
}

SimEngine* SimNet::node(const NodeId& id) {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

const SimEngine* SimNet::node(const NodeId& id) const {
  const auto it = nodes_.find(id);
  return it == nodes_.end() ? nullptr : it->second.get();
}

std::vector<NodeId> SimNet::node_ids() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) out.push_back(id);
  return out;
}

void SimNet::set_latency(const NodeId& a, const NodeId& b, Duration latency) {
  latency_override_[{a, b}] = latency;
  if (SimLink* l = find_link(a, b)) l->latency = latency;
}

void SimNet::set_loss(const NodeId& a, const NodeId& b, double probability) {
  probability = std::clamp(probability, 0.0, 1.0);
  loss_override_[{a, b}] = probability;
  if (SimLink* l = find_link(a, b)) l->loss = probability;
}

Duration SimNet::latency_of(const NodeId& a, const NodeId& b) const {
  const auto it = latency_override_.find({a, b});
  return it == latency_override_.end() ? config_.default_latency : it->second;
}

SimLink& SimNet::link(const NodeId& src, const NodeId& dst,
                      const SimNodeConfig& src_cfg) {
  auto& slot = links_[{src, dst}];
  if (!slot) {
    slot = std::make_unique<SimLink>();
    in_peers_[dst].insert(src);
    touch_peers_[src].insert(dst);
    touch_peers_[dst].insert(src);
    slot->src = src;
    slot->dst = dst;
    slot->latency = latency_of(src, dst);
    const auto loss_it = loss_override_.find({src, dst});
    if (loss_it != loss_override_.end()) slot->loss = loss_it->second;
    slot->send_cap = src_cfg.send_buffer_msgs;
    const SimEngine* dst_node = node(dst);
    slot->recv_cap =
        dst_node ? dst_node->config_.recv_buffer_msgs : src_cfg.recv_buffer_msgs;
    // A partition cut blocks the pair: the link exists but stays dead, so
    // senders hit the closed-link path (kBrokenLink) instead of talking
    // across the cut.
    if (blocked(src, dst)) slot->closed = true;
  } else if (slot->closed && blocked(src, dst)) {
    // Re-dial across an active partition: stays dead until heal().
  } else if (slot->closed) {
    // Re-dial after a failure: reset state *in place* — in-flight events
    // hold references to this SimLink, so the object must never move.
    slot->latency = latency_of(src, dst);
    slot->send_cap = src_cfg.send_buffer_msgs;
    const SimEngine* dst_node = node(dst);
    slot->recv_cap =
        dst_node ? dst_node->config_.recv_buffer_msgs : src_cfg.recv_buffer_msgs;
    slot->send_buf.clear();
    slot->recv_buf.clear();
    slot->recv_enq.clear();
    slot->stalled = nullptr;
    slot->busy = false;
    slot->closed = false;
    const auto loss_it = loss_override_.find({src, dst});
    slot->loss = loss_it == loss_override_.end() ? 0.0 : loss_it->second;
  }
  return *slot;
}

SimLink* SimNet::find_link(const NodeId& src, const NodeId& dst) {
  const auto it = links_.find({src, dst});
  if (it == links_.end() || it->second->closed) return nullptr;
  return it->second.get();
}

const SimLink* SimNet::find_link(const NodeId& src, const NodeId& dst) const {
  const auto it = links_.find({src, dst});
  if (it == links_.end() || it->second->closed) return nullptr;
  return it->second.get();
}

void SimNet::pump_link(SimLink& l) {
  if (l.closed || l.busy || l.send_buf.empty()) return;
  SimEngine* src = node(l.src);
  if (src == nullptr || !src->alive_) return;

  MsgPtr m = l.send_buf.front();
  l.send_buf.pop_front();
  l.busy = true;

  const std::size_t size = m->wire_size();
  const Duration pace = src->bandwidth_.acquire_send(l.dst, size, now());
  if (pace > 0) sim_send_wait_.observe_duration(pace);
  const Duration tx = static_cast<Duration>(
      static_cast<double>(size) / config_.default_link_rate *
      static_cast<double>(kNanosPerSec));
  l.tx_meter.record(size, now() + pace + tx);

  // Sender-buffer space freed: a blocked slot at the source may resume.
  src->schedule_pump();

  events_.schedule_in(pace + tx + l.latency, [this, &l, m] { arrive(l, m); });
}

void SimNet::arrive(SimLink& l, MsgPtr m) {
  if (l.closed) return;
  SimEngine* dst = node(l.dst);
  if (dst == nullptr || !dst->alive_) {
    l.rx_meter.record_loss(m->wire_size());
    l.busy = false;
    pump_link(l);
    return;
  }
  // Emulated wire loss (set_loss): the message vanishes, accounted in the
  // receiver-side loss meter.
  if (l.loss > 0.0 && rng_.chance(l.loss)) {
    l.rx_meter.record_loss(m->wire_size());
    l.busy = false;
    pump_link(l);
    return;
  }
  const Duration pace = dst->bandwidth_.acquire_recv(l.src, m->wire_size(),
                                                     now());
  if (pace > 0) sim_recv_wait_.observe_duration(pace);
  if (pace > 0) {
    events_.schedule_in(pace, [this, &l, m] { try_deliver(l, m); });
  } else {
    try_deliver(l, m);
  }
}

void SimNet::try_deliver(SimLink& l, MsgPtr m) {
  if (l.closed) return;
  SimEngine* dst = node(l.dst);
  if (dst == nullptr || !dst->alive_) {
    l.rx_meter.record_loss(m->wire_size());
    l.busy = false;
    pump_link(l);
    return;
  }
  if (m->type() == MsgType::kData && l.recv_buf.size() >= l.recv_cap) {
    // Receive buffer full: the link stalls, modelling a full TCP window
    // pushing back on the sender (§2.4 "back pressure").
    l.stalled = std::move(m);
    return;
  }
  l.rx_meter.record(m->wire_size(), now());
  sim_delivered_bytes_.inc(m->wire_size());
  sim_delivered_msgs_.inc();
  accounting_.record(l.src, l.dst, *m);
  if (m->type() == MsgType::kData) {
    l.recv_buf.push_back(std::move(m));
    l.recv_enq.push_back(now());
    dst->schedule_pump();
  } else {
    // Control traffic bypasses the data buffers (receiver threads post it
    // straight to the engine in the real implementation).
    dst->dispatch(m);
  }
  l.busy = false;
  pump_link(l);
}

void SimNet::on_recv_space(const NodeId& dst, const NodeId& src) {
  SimLink* l = find_link(src, dst);
  if (l == nullptr || !l->stalled) return;
  MsgPtr m = std::move(l->stalled);
  l->stalled = nullptr;
  try_deliver(*l, std::move(m));
}

void SimNet::close_links_of(const NodeId& id, const NodeId& only_peer) {
  std::vector<NodeId> failed_peers;
  const auto close_one = [&](const NodeId& src, const NodeId& dst,
                             const NodeId& peer) {
    const auto it = links_.find({src, dst});
    if (it == links_.end() || it->second->closed) return;
    SimLink* l = it->second.get();
    l->closed = true;
    for (const auto& m : l->send_buf) l->tx_meter.record_loss(m->wire_size());
    if (l->stalled) l->rx_meter.record_loss(l->stalled->wire_size());
    l->send_buf.clear();
    l->recv_buf.clear();  // already delivered to the meter; drop silently
    l->recv_enq.clear();
    l->stalled = nullptr;
    failed_peers.push_back(peer);
  };
  const auto touch = touch_peers_.find(id);
  if (touch != touch_peers_.end()) {
    for (const NodeId& peer : touch->second) {
      if (only_peer.valid() && peer != only_peer) continue;
      close_one(id, peer, peer);
      close_one(peer, id, peer);
    }
  }
  // Peers detect the broken links shortly after (only when the closure
  // was initiated by this node going down, not a targeted link teardown).
  if (!only_peer.valid()) {
    const SimEngine* self_node = node(id);
    const bool node_down = self_node == nullptr || !self_node->alive_;
    if (node_down) {
      std::sort(failed_peers.begin(), failed_peers.end());
      failed_peers.erase(
          std::unique(failed_peers.begin(), failed_peers.end()),
          failed_peers.end());
      for (const auto& peer : failed_peers) {
        events_.schedule_in(kFailureNoticeDelay, [this, peer, id] {
          if (SimEngine* other = node(peer)) {
            other->handle_link_failure(id, /*deliberate=*/false);
          }
        });
      }
    }
  }
}

void SimNet::post(const NodeId& target, MsgPtr m) {
  events_.schedule_in(0, [this, target, m] {
    if (SimEngine* n = node(target)) n->dispatch(m);
  });
}

void SimNet::deploy(const NodeId& target, u32 app) {
  post(target, Msg::control(MsgType::kSDeploy, NodeId(), kControlApp,
                            static_cast<i32>(app)));
}

void SimNet::terminate_source(const NodeId& target, u32 app) {
  post(target, Msg::control(MsgType::kSTerminate, NodeId(), kControlApp,
                            static_cast<i32>(app)));
}

void SimNet::join_app(const NodeId& target, u32 app, std::string_view arg) {
  post(target, Msg::control(MsgType::kSJoin, NodeId(), kControlApp,
                            static_cast<i32>(app), 0, arg));
}

void SimNet::bootstrap(const NodeId& target, std::size_t k) {
  std::vector<NodeId> alive;
  for (const auto& [id, n] : nodes_) {
    if (n->alive_ && id != target) alive.push_back(id);
  }
  bootstrap(target, rng_.sample(alive, k));
}

void SimNet::bootstrap(const NodeId& target,
                       const std::vector<NodeId>& hosts) {
  std::string list;
  for (const auto& id : hosts) {
    if (!list.empty()) list += ',';
    list += id.to_string();
  }
  post(target, Msg::control(MsgType::kBootReply, NodeId(), kControlApp, 0, 0,
                            list));
}

void SimNet::kill_node(const NodeId& id) {
  events_.schedule_in(0, [this, id] {
    if (SimEngine* n = node(id)) n->shutdown();
  });
}

bool SimNet::blocked(const NodeId& a, const NodeId& b) const {
  return blocked_.count({a, b}) > 0;
}

void SimNet::sever_link(const NodeId& a, const NodeId& b) {
  events_.schedule_in(0, [this, a, b] {
    if (SimEngine* n = node(a); n != nullptr && n->alive_) {
      n->handle_link_failure(b, /*deliberate=*/false);
    }
    if (SimEngine* n = node(b); n != nullptr && n->alive_) {
      n->handle_link_failure(a, /*deliberate=*/false);
    }
  });
}

void SimNet::partition(const std::vector<std::vector<NodeId>>& groups) {
  events_.schedule_in(0, [this, groups] {
    std::map<NodeId, std::size_t> group_of;
    for (std::size_t g = 0; g < groups.size(); ++g) {
      for (const NodeId& id : groups[g]) group_of[id] = g;
    }
    blocked_.clear();
    for (const auto& [a, ga] : group_of) {
      for (const auto& [b, gb] : group_of) {
        if (ga != gb) blocked_.insert({a, b});
      }
    }
    // Existing links across the cut fail like severed ones. Collect the
    // pairs first: handle_link_failure mutates links_.
    std::set<std::pair<NodeId, NodeId>> cut;
    for (const auto& [key, l] : links_) {
      if (!l->closed && blocked(key.first, key.second)) {
        cut.insert(std::minmax(key.first, key.second));
      }
    }
    for (const auto& [a, b] : cut) {
      if (SimEngine* n = node(a); n != nullptr && n->alive_) {
        n->handle_link_failure(b, /*deliberate=*/false);
      }
      if (SimEngine* n = node(b); n != nullptr && n->alive_) {
        n->handle_link_failure(a, /*deliberate=*/false);
      }
    }
  });
}

void SimNet::heal() {
  events_.schedule_in(0, [this] { blocked_.clear(); });
}

double SimNet::link_rate(const NodeId& a, const NodeId& b) const {
  const auto it = links_.find({a, b});
  if (it == links_.end()) return 0.0;
  return it->second->rx_meter.rate(now());
}

bool SimNet::link_open(const NodeId& a, const NodeId& b) const {
  const auto it = links_.find({a, b});
  return it != links_.end() && !it->second->closed;
}

u64 SimNet::link_delivered_bytes(const NodeId& a, const NodeId& b) const {
  const auto it = links_.find({a, b});
  if (it == links_.end()) return 0;
  return it->second->rx_meter.total_bytes();
}

u64 SimNet::link_sent_bytes(const NodeId& a, const NodeId& b) const {
  const auto it = links_.find({a, b});
  if (it == links_.end()) return 0;
  return it->second->tx_meter.total_bytes();
}

u64 SimNet::link_lost_bytes(const NodeId& a, const NodeId& b) const {
  const auto it = links_.find({a, b});
  if (it == links_.end()) return 0;
  return it->second->rx_meter.lost_bytes() + it->second->tx_meter.lost_bytes();
}

void SimNet::record_trace(const NodeId& node_id, std::string_view text) {
  traces_.push_back(TraceRecord{now(), node_id, std::string(text)});
}

}  // namespace iov::sim
