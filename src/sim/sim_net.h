// SimNet — the deterministic discrete-event substrate.
//
// Algorithms written against EngineApi run unmodified on SimNet; this is
// how the repository reproduces the paper's PlanetLab-scale experiments
// (81-node tree construction, 5–40-node service federation) without the
// long-gone testbed: wide-area heterogeneity is injected through the same
// BandwidthEmulator used by the real engine plus per-link propagation
// latencies, and the whole run is reproducible from one seed.
//
// The network model deliberately mirrors the real engine's mechanics
// (DESIGN.md §4): per-upstream receive buffers and per-downstream send
// buffers of bounded message capacity, a switch that refuses new input
// from a slot whose previous output could not be fully placed
// (back-pressure), one-message-at-a-time link serialization with pacing
// from the token buckets, and a stalled-delivery state that models a full
// TCP receive window. The paper's Fig 6/7 behaviours (bottleneck
// propagation with small buffers, containment with large ones) emerge
// from this model rather than being special-cased.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "algorithm/algorithm.h"
#include "algorithm/application.h"
#include "algorithm/engine_api.h"
#include "common/node_id.h"
#include "common/rng.h"
#include "net/throughput.h"
#include "obs/metrics.h"
#include "sim/event_queue.h"

namespace iov::sim {

class SimNet;

/// Per-node start-up parameters (the sim analogue of EngineConfig).
struct SimNodeConfig {
  std::size_t recv_buffer_msgs = 10;
  std::size_t send_buffer_msgs = 10;
  BandwidthSpec bandwidth;
  Duration throughput_interval = millis(500);
};

/// EngineApi implementation over SimNet. Created via SimNet::add_node.
class SimEngine final : public EngineApi {
 public:
  SimEngine(SimNet& net, NodeId id, std::unique_ptr<Algorithm> algorithm,
            SimNodeConfig config);
  ~SimEngine() override;

  // EngineApi.
  void send(const MsgPtr& m, const NodeId& dest) override;
  NodeId self() const override { return self_; }
  TimePoint now() const override;
  Rng& rng() override { return rng_; }
  void set_timer(Duration delay, i32 timer_id) override;
  std::vector<NodeId> upstreams() const override;
  std::vector<NodeId> downstreams() const override;
  std::optional<LinkStats> upstream_stats(const NodeId& peer) const override;
  std::optional<LinkStats> downstream_stats(const NodeId& peer) const override;
  BandwidthEmulator& bandwidth() override { return bandwidth_; }
  void deliver_local(const MsgPtr& m) override;
  bool is_source(u32 app) const override;
  void trace(std::string_view text) override;
  void close_link(const NodeId& peer) override;
  void shutdown() override;

  // Driver-side.
  Algorithm& algorithm() { return *algorithm_; }
  const Algorithm& algorithm() const { return *algorithm_; }
  void register_app(u32 app, std::shared_ptr<Application> application);
  bool alive() const { return alive_; }

  /// Session bookkeeping, exposed read-only so chaos recovery
  /// verification can compute surviving-session sets (chaos::verify).
  const std::map<NodeId, std::set<u32>>& up_apps() const { return up_apps_; }
  const std::map<NodeId, std::set<u32>>& down_apps() const {
    return down_apps_;
  }
  const std::set<u32>& joined_apps() const { return joined_; }

 private:
  friend class SimNet;

  struct Outbox {
    std::vector<std::pair<MsgPtr, NodeId>> entries;
    bool empty() const { return entries.empty(); }
  };

  struct SourceSlot {
    std::shared_ptr<Application> app_impl;
    bool active = false;
    u32 next_seq = 0;
    Outbox outbox;
  };

  void dispatch(const MsgPtr& m);
  void deliver_to_algorithm(const MsgPtr& m);
  void schedule_pump();
  void pump();
  /// Returns the wire bytes processed (0 = no progress; flush-only
  /// progress counts as 1).
  std::size_t pump_upstream(const NodeId& peer);
  std::size_t pump_source(u32 app, SourceSlot& slot);
  bool flush_outbox(Outbox& outbox);
  void flush_control_backlogs();
  void handle_link_failure(const NodeId& peer, bool deliberate);
  void propagate_broken_source(u32 app, const NodeId& origin);
  void emit_throughput_reports();

  SimNet& net_;
  const NodeId self_;
  std::unique_ptr<Algorithm> algorithm_;
  SimNodeConfig config_;
  Rng rng_;
  BandwidthEmulator bandwidth_;
  bool alive_ = true;
  bool pump_scheduled_ = false;
  bool source_poll_scheduled_ = false;
  Outbox* current_outbox_ = nullptr;

  std::map<u32, SourceSlot> sources_;
  std::set<u32> joined_;
  std::map<NodeId, Outbox> upstream_outbox_;
  std::map<NodeId, std::deque<MsgPtr>> control_backlog_;
  std::map<NodeId, std::set<u32>> up_apps_;
  std::map<NodeId, std::set<u32>> down_apps_;
  std::set<std::pair<u32, NodeId>> broken_seen_;
};

/// One direction of a virtual link (src -> dst), created lazily on first
/// send. Holds the sender-side buffer and the in-flight/stall state.
struct SimLink {
  NodeId src;
  NodeId dst;
  Duration latency = 0;
  std::deque<MsgPtr> send_buf;     // sender-thread queue (bounded)
  std::size_t send_cap = 10;
  std::deque<MsgPtr> recv_buf;     // receiver-thread queue at dst (bounded)
  std::deque<TimePoint> recv_enq;  // sim-time enqueue stamp per recv_buf entry
  std::size_t recv_cap = 10;
  bool busy = false;               // a message is serializing / in flight
  MsgPtr stalled;                  // arrived but dst receive buffer was full
  ThroughputMeter tx_meter{seconds(2.0)};
  ThroughputMeter rx_meter{seconds(2.0)};
  double loss = 0.0;  // per-message drop probability
  bool closed = false;
};

/// Global protocol-overhead accounting (for the federation figures):
/// bytes and message counts per message type, total and per node.
struct MsgAccounting {
  struct Counter {
    u64 msgs = 0;
    u64 bytes = 0;
  };
  std::map<MsgType, Counter> total;
  std::map<NodeId, std::map<MsgType, Counter>> per_node;  // keyed by sender
  std::map<NodeId, std::map<MsgType, Counter>> per_dest;

  void record(const NodeId& src, const NodeId& dst, const Msg& m);
  u64 bytes_of(MsgType t) const;
  u64 node_bytes_of(const NodeId& node, MsgType t) const;
};

class SimNet {
 public:
  struct Config {
    u64 seed = 1;
    /// Serialization rate of an uncapped link, bytes/second. Gives every
    /// hop a nonzero cost so virtual time always advances (the sim
    /// analogue of the real engine's per-hop switching cost).
    double default_link_rate = 50e6;
    /// Propagation delay applied to links without an explicit override.
    Duration default_latency = millis(1);
  };

  SimNet();  // default Config
  explicit SimNet(Config config);
  ~SimNet();

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  // --- Topology ------------------------------------------------------------

  /// Creates a node; ids are synthesized as 10.0.0.x:7000+x unless given.
  SimEngine& add_node(std::unique_ptr<Algorithm> algorithm,
                      SimNodeConfig config = {});
  SimEngine& add_node(NodeId id, std::unique_ptr<Algorithm> algorithm,
                      SimNodeConfig config = {});

  SimEngine* node(const NodeId& id);
  const SimEngine* node(const NodeId& id) const;
  std::vector<NodeId> node_ids() const;

  /// Propagation delay for the directed pair (applies to links created
  /// afterwards and updates an existing link).
  void set_latency(const NodeId& a, const NodeId& b, Duration latency);

  /// Message-loss probability for the directed pair in [0, 1]; lost
  /// messages are counted in the link's loss meters (the "bytes (or
  /// messages) lost" QoS metric of §2.2). Applies to links created
  /// afterwards and updates an existing link.
  void set_loss(const NodeId& a, const NodeId& b, double probability);

  // --- Execution -------------------------------------------------------------

  TimePoint now() const { return events_.now(); }
  void run_for(Duration d) { events_.run_for(d); }
  void run_until(TimePoint t) { events_.run_until(t); }

  // --- Observer-style control -------------------------------------------------

  /// Delivers a control message to `node` as if from the observer.
  void post(const NodeId& node, MsgPtr m);

  void deploy(const NodeId& node, u32 app);
  void terminate_source(const NodeId& node, u32 app);
  void join_app(const NodeId& node, u32 app, std::string_view arg = {});

  /// Gives `node` a kBootReply naming up to `k` random alive nodes
  /// (or the provided explicit list).
  void bootstrap(const NodeId& node, std::size_t k);
  void bootstrap(const NodeId& node, const std::vector<NodeId>& hosts);

  /// Abrupt node failure: all its links break; peers detect and Domino.
  void kill_node(const NodeId& id);

  /// Cuts the (undirected) link between `a` and `b` as a fault: both ends
  /// run the non-deliberate failure path (kBrokenLink + Domino), exactly
  /// like a kSeverLink control command on the real engine.
  void sever_link(const NodeId& a, const NodeId& b);

  /// Partitions the network: nodes in different groups cannot talk until
  /// heal(). Existing links across the cut fail like severed ones, and
  /// re-dials across the cut yield dead links (kBrokenLink on use).
  /// Nodes not named in any group are unaffected.
  void partition(const std::vector<std::vector<NodeId>>& groups);

  /// Lifts the current partition; subsequent dials succeed again.
  void heal();

  // --- Measurements -------------------------------------------------------------

  /// Delivered throughput of the directed link a->b over the meter
  /// window, bytes/second (0 if the link does not exist).
  double link_rate(const NodeId& a, const NodeId& b) const;
  /// True when the directed link a->b exists and has not been closed.
  bool link_open(const NodeId& a, const NodeId& b) const;
  u64 link_delivered_bytes(const NodeId& a, const NodeId& b) const;
  u64 link_sent_bytes(const NodeId& a, const NodeId& b) const;
  u64 link_lost_bytes(const NodeId& a, const NodeId& b) const;

  const MsgAccounting& accounting() const { return accounting_; }

  /// Sim-time metric registry shared by all simulated nodes: switch
  /// latency and message counts, delivered traffic, throttle waits
  /// (docs/METRICS.md, `iov_sim_*`).
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  struct TraceRecord {
    TimePoint at;
    NodeId node;
    std::string text;
  };
  const std::vector<TraceRecord>& traces() const { return traces_; }

  Rng& rng() { return rng_; }
  const Config& config() const { return config_; }

 private:
  friend class SimEngine;

  SimLink& link(const NodeId& src, const NodeId& dst,
                const SimNodeConfig& src_cfg);
  SimLink* find_link(const NodeId& src, const NodeId& dst);
  const SimLink* find_link(const NodeId& src, const NodeId& dst) const;
  void pump_link(SimLink& l);
  void arrive(SimLink& l, MsgPtr m);
  void try_deliver(SimLink& l, MsgPtr m);
  void on_recv_space(const NodeId& dst, const NodeId& src);
  void close_links_of(const NodeId& id, const NodeId& only_peer = NodeId());
  Duration latency_of(const NodeId& a, const NodeId& b) const;
  bool blocked(const NodeId& a, const NodeId& b) const;
  void record_trace(const NodeId& node, std::string_view text);

  Config config_;
  EventQueue events_;
  Rng rng_;

  // Sim-time observability (registry first; the refs are cached handles).
  obs::MetricsRegistry metrics_;
  obs::Histogram& sim_switch_latency_;
  obs::Counter& sim_switch_msgs_;
  obs::Counter& sim_delivered_bytes_;
  obs::Counter& sim_delivered_msgs_;
  obs::Histogram& sim_send_wait_;
  obs::Histogram& sim_recv_wait_;

  u32 next_host_ = 1;
  std::map<NodeId, std::unique_ptr<SimEngine>> nodes_;
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<SimLink>> links_;
  // Per-node link-peer indexes so per-node scans (the engine pump loop,
  // close_links_of) don't walk the global link map — at flash-crowd
  // scale that walk dominated the whole simulation. Link slots are never
  // erased, so these only grow; std::set iteration keeps the same
  // NodeId-sorted deterministic order the links_ walk produced.
  std::map<NodeId, std::set<NodeId>> in_peers_;     // key: dst, values: src
  std::map<NodeId, std::set<NodeId>> touch_peers_;  // either direction
  std::map<std::pair<NodeId, NodeId>, Duration> latency_override_;
  std::map<std::pair<NodeId, NodeId>, double> loss_override_;
  std::set<std::pair<NodeId, NodeId>> blocked_;  // partition cut (directed)
  MsgAccounting accounting_;
  std::vector<TraceRecord> traces_;
};

}  // namespace iov::sim
