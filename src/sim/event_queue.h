// Discrete-event core: a time-ordered queue of callbacks with a stable
// FIFO tie-break, so simulations are bit-for-bit deterministic for a
// given seed regardless of container iteration quirks.
#pragma once

#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/types.h"

namespace iov::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `at` (clamped to now).
  void schedule_at(TimePoint at, Action action) {
    heap_.push(Event{std::max(at, now_), seq_++, std::move(action)});
  }

  /// Schedules `action` after `delay` (clamped to non-negative).
  void schedule_in(Duration delay, Action action) {
    schedule_at(now_ + std::max<Duration>(delay, 0), std::move(action));
  }

  TimePoint now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Runs events in order until the queue empties or the next event lies
  /// beyond `until`; time ends at min(until, last event). Returns the
  /// number of events executed.
  std::size_t run_until(TimePoint until);

  /// run_until(now + d).
  std::size_t run_for(Duration d) { return run_until(now_ + d); }

  /// Drains everything (use only when the simulation is known to quiesce).
  std::size_t run_all();

 private:
  struct Event {
    TimePoint at;
    u64 seq;
    Action action;
    bool operator>(const Event& o) const {
      return std::tie(at, seq) > std::tie(o.at, o.seq);
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  TimePoint now_ = 0;
  u64 seq_ = 0;
};

inline std::size_t EventQueue::run_until(TimePoint until) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_.top().at <= until) {
    // Move the action out before popping so it can schedule new events.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.at;
    event.action();
    ++executed;
  }
  now_ = std::max(now_, until);
  return executed;
}

inline std::size_t EventQueue::run_all() {
  std::size_t executed = 0;
  while (!heap_.empty()) {
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = std::max(now_, event.at);
    event.action();
    ++executed;
  }
  return executed;
}

}  // namespace iov::sim
