// The node status report — the payload of kReport messages that nodes
// push to the observer every report interval (paper §2.2: "status
// updates, which include lengths of all engine buffers, measurements of
// QoS metrics, and the list of upstream and downstream nodes").
//
// Serialized as line-oriented text so reports remain greppable in the
// observer's logs; both the engine and the observer use this codec.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/node_id.h"
#include "common/types.h"

namespace iov::engine {

struct LinkReport {
  NodeId peer;
  double rate_bps = 0.0;
  u64 total_bytes = 0;
  u64 lost_msgs = 0;
  std::size_t buffer_len = 0;
  std::size_t buffer_cap = 0;
};

struct NodeReport {
  /// Current report format version. v1 is the original field set; v2 adds
  /// the single-line `metrics=` snapshot (obs::MetricsSnapshot wire form).
  /// Both directions stay compatible because parse() ignores unknown keys:
  /// a v1 observer skips `ver=`/`metrics=`, and a v2 observer treats a
  /// report without them as v1 (docs/PROTOCOLS.md, "kReport payload").
  static constexpr int kVersion = 2;

  NodeId node;
  TimePoint uptime = 0;              ///< nanoseconds since engine start
  std::vector<LinkReport> upstreams;
  std::vector<LinkReport> downstreams;
  std::vector<u32> source_apps;      ///< sessions this node sources
  std::vector<u32> joined_apps;      ///< sessions consumed locally
  std::string algorithm_status;      ///< Algorithm::status() line
  int version = 1;                   ///< as parsed; kVersion when emitting v2
  std::string metrics_wire;          ///< metrics snapshot; empty in v1

  std::string serialize() const;
  static std::optional<NodeReport> parse(std::string_view text);
};

}  // namespace iov::engine
