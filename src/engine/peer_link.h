// PeerLink — one persistent connection to a peer node, with its receiver
// thread, sender thread, buffers and meters (paper Fig. 4).
//
// The paper's engine is "thread-per-receiver and thread-per-sender ...
// along with a separate engine thread"; because connections are
// persistent and full duplex ("all the messages between two nodes are
// carried with the same connection"), both threads share one TCP socket.
//
// Data-plane flow (batched wire path, DESIGN.md §8):
//   receiver thread:  socket --FrameReader bulk decode--> per message:
//                     [bandwidth recv pacing] --> recv buffer
//                     (blocking push = back-pressure)
//   engine thread:    recv buffer --batch pop, switch/algorithm--> send
//                     buffer
//   sender thread:    send buffer --pop_batch--> per message: [bandwidth
//                     send pacing, splitting the flush at every throttle
//                     boundary] --write_batch (scatter-gather)--> socket
//
// Control-plane messages received on the link (anything but kData) bypass
// the buffers and are posted straight to the engine's internal sink —
// the moral equivalent of the paper's trick of "passing application-layer
// messages across thread boundaries via the publicized port". Failures
// are reported the same way (kPeerFailed / kSendFailed).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>

#include <vector>

#include "common/bounded_queue.h"
#include "common/clock.h"
#include "common/node_id.h"
#include "common/rng.h"
#include "engine/config.h"
#include "message/msg.h"
#include "net/bandwidth.h"
#include "net/framing.h"
#include "net/socket.h"
#include "net/throughput.h"
#include "obs/metrics.h"

namespace iov::reactor {
class Worker;
}  // namespace iov::reactor

namespace iov::engine {

class ReactorLink;

/// A data message waiting in a receive buffer, stamped with the time the
/// receiver thread enqueued it so the switch can measure enqueue→dequeue
/// latency (docs/METRICS.md: iov_switch_latency_seconds).
struct Inbound {
  MsgPtr msg;
  TimePoint enqueued_at = 0;
};

/// Where link threads deposit messages for the engine thread.
class InternalSink {
 public:
  virtual ~InternalSink() = default;
  /// Enqueues a message for the engine thread and wakes it.
  virtual void post(MsgPtr m) = 0;
  /// Wakes the engine thread without a message (buffer state changed).
  virtual void wake() = 0;
};

/// Sleep that a stop() can cut short, so tearing down a link never waits
/// out a long bandwidth-pacing delay.
class InterruptibleSleeper {
 public:
  /// Sleeps for `d` or until interrupt(); returns false if interrupted.
  bool sleep(Duration d);
  void interrupt();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool interrupted_ = false;
};

class PeerLink {
 public:
  /// Takes ownership of an established, hello-completed connection.
  /// `config` supplies buffer capacities and the wire-batching knobs;
  /// `metrics` must outlive the link (the engine owns both). `pool`,
  /// when non-null, serves the receiver's large-frame payload slabs
  /// (config.wire_payload_pool; the engine owns the pool, which must
  /// outlive the link).
  ///
  /// `worker`, when non-null, selects reactor mode (DESIGN.md §9): the
  /// link is driven by that shared epoll worker's state machine instead
  /// of spawning a receiver + sender thread. `dial_pending` (reactor mode
  /// only) means `conn` came from TcpConn::connect_start and the TCP
  /// handshake + our hello still have to complete on the worker.
  PeerLink(NodeId self, NodeId peer, TcpConn conn, const EngineConfig& config,
           BandwidthEmulator& bandwidth, const Clock& clock,
           InternalSink& sink, obs::MetricsRegistry& metrics,
           SlabPool* pool = nullptr, reactor::Worker* worker = nullptr,
           bool dial_pending = false);
  ~PeerLink();

  PeerLink(const PeerLink&) = delete;
  PeerLink& operator=(const PeerLink&) = delete;

  /// Spawns the receiver and sender threads (legacy mode) or registers
  /// the socket with the reactor worker (reactor mode).
  void start();

  /// True when this link runs on the shared epoll reactor instead of a
  /// receiver + sender thread pair.
  bool reactor_mode() const { return rlink_ != nullptr; }

  /// Reactor mode: the engine pushed into the send buffer — schedule a
  /// send pump on the worker (deduplicated). No-op in legacy mode (the
  /// sender thread blocks on the queue instead).
  void notify_send();

  /// Reactor mode: the engine drained the receive buffer — resume a
  /// reader parked on a full buffer. No-op in legacy mode.
  void notify_recv_space();

  /// Initiates teardown: closes both buffers, shuts the socket down (which
  /// unblocks both threads), and interrupts pacing sleeps. Idempotent;
  /// safe from the engine thread.
  void stop();

  /// Joins both threads. Call after stop().
  void join();

  const NodeId& peer() const { return peer_; }

  /// Receive buffer the engine's switch drains. Engine-thread consumers
  /// should use try_pop().
  BoundedQueue<Inbound>& recv_buffer() { return recv_buffer_; }
  const BoundedQueue<Inbound>& recv_buffer() const { return recv_buffer_; }

  /// Send buffer the switch fills (try_push from the engine thread).
  BoundedQueue<MsgPtr>& send_buffer() { return send_buffer_; }
  const BoundedQueue<MsgPtr>& send_buffer() const { return send_buffer_; }

  /// Refreshes the queue-depth gauges; the engine calls this from the
  /// switch so depth tracks the data plane without extra locking here.
  void update_queue_gauges();

  const ThroughputMeter& up_meter() const { return up_meter_; }
  const ThroughputMeter& down_meter() const { return down_meter_; }
  ThroughputMeter& down_meter() { return down_meter_; }

  /// True once either thread has observed a fatal socket error.
  bool failed() const { return failed_.load(std::memory_order_relaxed); }

  /// Emulated sender-side message loss (kSetLoss fault injection): each
  /// queued message is dropped with this probability before hitting the
  /// wire, accounted in the down-direction loss meters. Thread safe.
  void set_send_loss(double probability);

 private:
  friend class ReactorLink;  // the reactor-mode implementation of this link

  void receiver_main();
  void sender_main();

  /// Scatter-gather flush of the pacing-cleared messages accumulated by
  /// sender_main; records meters/metrics per message and wakes the
  /// engine once. Clears `pending`. False on socket error (pending
  /// counted as lost). When the zerocopy path is active and the flush
  /// contains a frame at or above wire_zerocopy_min_bytes, the flush
  /// goes out with MSG_ZEROCOPY and the messages + encoded headers are
  /// retained in zc_inflight_ until their completions are reaped.
  bool flush_pending(std::vector<MsgPtr>& pending);

  /// Drains pending MSG_ZEROCOPY completions from the error queue and
  /// releases the in-flight records they cover. Sender-thread only;
  /// best-effort and non-blocking.
  void reap_zerocopy_completions();

  /// Loss accounting shared by every sender-side drop site.
  void count_send_loss(const Msg& m);

  const NodeId self_;
  const NodeId peer_;
  TcpConn conn_;
  const std::size_t wire_batch_msgs_;
  const bool wire_bulk_reader_;
  SlabPool* const pool_;
  const std::size_t zerocopy_min_bytes_;
  BandwidthEmulator& bandwidth_;
  const Clock& clock_;
  InternalSink& sink_;

  BoundedQueue<Inbound> recv_buffer_;
  BoundedQueue<MsgPtr> send_buffer_;
  ThroughputMeter up_meter_;    // bytes received from peer
  ThroughputMeter down_meter_;  // bytes sent to peer

  // Cached registry handles (lock-free atomics on the hot path); `dir` is
  // "up" for peer→us traffic, "down" for us→peer (paper Fig. 4).
  obs::Counter& up_bytes_;
  obs::Counter& up_msgs_;
  obs::Counter& down_bytes_;
  obs::Counter& down_msgs_;
  obs::Counter& down_lost_bytes_;
  obs::Counter& down_lost_msgs_;
  obs::Gauge& recv_depth_;
  obs::Gauge& send_depth_;
  obs::Histogram& recv_throttle_wait_;
  obs::Histogram& send_throttle_wait_;
  obs::Counter& up_syscalls_;    ///< recv syscalls (FrameReader / read_msg)
  obs::Counter& down_syscalls_;  ///< sendmsg calls issued by flushes
  obs::Histogram& up_flush_msgs_;    ///< frames decoded per recv refill
  obs::Histogram& down_flush_msgs_;  ///< messages per scatter-gather flush
  obs::Counter& zc_sends_;        ///< MSG_ZEROCOPY sendmsg calls issued
  obs::Counter& zc_completions_;  ///< completion ids reaped
  obs::Counter& zc_copied_;       ///< completions the kernel copied anyway
  obs::Counter& zc_fallbacks_;    ///< flagged sends demoted to plain sendmsg

  // --- MSG_ZEROCOPY in-flight tracking (sender-thread only) ---------------
  // The kernel reads the iovec'd pages at transmit time, so each flagged
  // flush's MsgPtrs *and* encoded headers stay alive here until the
  // error-queue completion covering their id range is reaped.
  struct ZcInFlight {
    u32 lo = 0;  ///< first completion id of the flush (32-bit wrapping)
    u32 hi = 0;  ///< last completion id of the flush
    std::vector<MsgPtr> msgs;
    std::vector<codec::HeaderBytes> headers;
  };
  /// In-flight records above which flush_pending pauses to reap before
  /// sending more (keeps pinned memory bounded when completions lag).
  static constexpr std::size_t kZcInFlightWatermark = 256;
  bool zerocopy_enabled_ = false;  ///< SO_ZEROCOPY accepted on this socket
  u32 zc_next_id_ = 0;            ///< next completion id the kernel assigns
  std::deque<ZcInFlight> zc_inflight_;
  std::vector<TcpConn::ZcRange> zc_ranges_;  ///< reap scratch

  InterruptibleSleeper recv_sleeper_;
  InterruptibleSleeper send_sleeper_;

  // Injected loss, parts per million; the rng is sender-thread-only.
  std::atomic<u32> send_loss_ppm_{0};
  Rng loss_rng_;

  std::thread receiver_;
  std::thread sender_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> failed_{false};

  /// Reactor-mode state machine; null in legacy thread-per-link mode.
  std::unique_ptr<ReactorLink> rlink_;
};

}  // namespace iov::engine
