#include "engine/peer_link.h"

#include <algorithm>

#include "common/logging.h"
#include "engine/reactor_link.h"
#include "obs/metric_names.h"

namespace iov::engine {

namespace {
obs::Labels link_labels(const NodeId& peer, const char* dir) {
  return {{"peer", peer.to_string()}, {"dir", dir}};
}

// Bucket bounds for the flush/refill batch-size histograms (messages per
// syscall batch, not seconds).
const std::vector<double>& flush_bounds() {
  static const std::vector<double> kBounds{1, 2, 4, 8, 16, 32, 64, 128};
  return kBounds;
}
}  // namespace

bool InterruptibleSleeper::sleep(Duration d) {
  if (d <= 0) return true;
  std::unique_lock<std::mutex> lock(mu_);
  return !cv_.wait_for(lock, std::chrono::nanoseconds(d),
                       [&] { return interrupted_; });
}

void InterruptibleSleeper::interrupt() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    interrupted_ = true;
  }
  cv_.notify_all();
}

PeerLink::PeerLink(NodeId self, NodeId peer, TcpConn conn,
                   const EngineConfig& config, BandwidthEmulator& bandwidth,
                   const Clock& clock, InternalSink& sink,
                   obs::MetricsRegistry& metrics, SlabPool* pool,
                   reactor::Worker* worker, bool dial_pending)
    : self_(self),
      peer_(peer),
      conn_(std::move(conn)),
      wire_batch_msgs_(std::max<std::size_t>(config.wire_batch_msgs, 1)),
      wire_bulk_reader_(config.wire_bulk_reader),
      pool_(pool),
      zerocopy_min_bytes_(config.wire_zerocopy_min_bytes),
      bandwidth_(bandwidth),
      clock_(clock),
      sink_(sink),
      recv_buffer_(config.recv_buffer_msgs),
      send_buffer_(config.send_buffer_msgs),
      up_bytes_(metrics.counter(obs::names::kLinkBytesTotal,
                                link_labels(peer, "up"))),
      up_msgs_(metrics.counter(obs::names::kLinkMessagesTotal,
                               link_labels(peer, "up"))),
      down_bytes_(metrics.counter(obs::names::kLinkBytesTotal,
                                  link_labels(peer, "down"))),
      down_msgs_(metrics.counter(obs::names::kLinkMessagesTotal,
                                 link_labels(peer, "down"))),
      down_lost_bytes_(metrics.counter(obs::names::kLinkLostBytesTotal,
                                       link_labels(peer, "down"))),
      down_lost_msgs_(metrics.counter(obs::names::kLinkLostMessagesTotal,
                                      link_labels(peer, "down"))),
      recv_depth_(metrics.gauge(obs::names::kLinkQueueDepth,
                                link_labels(peer, "up"))),
      send_depth_(metrics.gauge(obs::names::kLinkQueueDepth,
                                link_labels(peer, "down"))),
      recv_throttle_wait_(metrics.histogram(obs::names::kThrottleWaitSeconds,
                                            link_labels(peer, "up"))),
      send_throttle_wait_(metrics.histogram(obs::names::kThrottleWaitSeconds,
                                            link_labels(peer, "down"))),
      up_syscalls_(metrics.counter(obs::names::kLinkSyscallsTotal,
                                   link_labels(peer, "up"))),
      down_syscalls_(metrics.counter(obs::names::kLinkSyscallsTotal,
                                     link_labels(peer, "down"))),
      up_flush_msgs_(metrics.histogram(obs::names::kLinkFlushMsgs,
                                       link_labels(peer, "up"),
                                       flush_bounds())),
      down_flush_msgs_(metrics.histogram(obs::names::kLinkFlushMsgs,
                                         link_labels(peer, "down"),
                                         flush_bounds())),
      zc_sends_(metrics.counter(obs::names::kLinkZerocopySendsTotal,
                                link_labels(peer, "down"))),
      zc_completions_(metrics.counter(obs::names::kLinkZerocopyCompletionsTotal,
                                      link_labels(peer, "down"))),
      zc_copied_(metrics.counter(obs::names::kLinkZerocopyCopiedTotal,
                                 link_labels(peer, "down"))),
      zc_fallbacks_(metrics.counter(obs::names::kLinkZerocopyFallbacksTotal,
                                    link_labels(peer, "down"))),
      loss_rng_((static_cast<u64>(self.ip()) << 32) ^
                (static_cast<u64>(peer.ip()) << 16) ^ peer.port()) {
  metrics.gauge(obs::names::kLinkQueueCapacity, link_labels(peer, "up"))
      .set(static_cast<i64>(recv_buffer_.capacity()));
  metrics.gauge(obs::names::kLinkQueueCapacity, link_labels(peer, "down"))
      .set(static_cast<i64>(send_buffer_.capacity()));
  if (worker != nullptr) {
    rlink_ = std::make_unique<ReactorLink>(
        *this, *worker,
        metrics.histogram(obs::names::kReactorLoopLagSeconds),
        dial_pending, config.connect_timeout);
  }
}

PeerLink::~PeerLink() {
  stop();
  join();
}

void PeerLink::start() {
  if (rlink_) {
    rlink_->start();
    return;
  }
  receiver_ = std::thread([this] { receiver_main(); });
  sender_ = std::thread([this] { sender_main(); });
}

void PeerLink::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  recv_buffer_.close();
  send_buffer_.close();
  recv_sleeper_.interrupt();
  send_sleeper_.interrupt();
  // Shutting down (not closing) the socket wakes any blocked read/write in
  // the link threads without racing descriptor reuse.
  conn_.shutdown_both();
  if (rlink_) rlink_->request_stop();
}

void PeerLink::join() {
  if (rlink_) {
    rlink_->wait_stopped();
    return;
  }
  if (receiver_.joinable()) receiver_.join();
  if (sender_.joinable()) sender_.join();
}

void PeerLink::notify_send() {
  if (rlink_) rlink_->notify_send();
}

void PeerLink::notify_recv_space() {
  if (rlink_) rlink_->notify_recv_space();
}

void PeerLink::receiver_main() {
  FrameReader reader(conn_, FrameReader::kDefaultChunkBytes, pool_);
  u64 seen_syscalls = 0;   // reader.syscalls() already accounted
  u64 refill_msgs = 0;     // frames decoded since the last recv refill
  std::vector<Inbound> inbound;  // decoded data frames awaiting one push
  // Hand the accumulated frames to the switch in one queue operation and
  // one engine wake. A short count means the buffer was closed (teardown).
  const auto flush_inbound = [&] {
    if (inbound.empty()) return true;
    const bool ok = recv_buffer_.push_batch(inbound) == inbound.size();
    inbound.clear();
    if (!ok) return false;
    recv_depth_.set(static_cast<i64>(recv_buffer_.size()));
    sink_.wake();
    return true;
  };
  while (!stopping_.load(std::memory_order_relaxed)) {
    MsgPtr m = wire_bulk_reader_ ? reader.next() : read_msg(conn_);
    if (wire_bulk_reader_) {
      const u64 s = reader.syscalls();
      if (s != seen_syscalls) {
        // The reader went back to the socket, so the frames decoded since
        // the previous refill formed one bulk batch.
        if (refill_msgs > 0) {
          up_flush_msgs_.observe(static_cast<double>(refill_msgs));
        }
        up_syscalls_.inc(s - seen_syscalls);
        seen_syscalls = s;
        refill_msgs = 0;
      }
      if (m) ++refill_msgs;
    } else if (m) {
      // Legacy path: one recv for the header, one for the payload.
      up_syscalls_.inc(m->payload_size() > 0 ? 2 : 1);
      up_flush_msgs_.observe(1.0);
    }
    if (!m) {
      flush_inbound();  // deliver what already decoded before failing
      if (!stopping_.load(std::memory_order_relaxed)) {
        failed_.store(true, std::memory_order_relaxed);
        sink_.post(Msg::control(MsgType::kPeerFailed, peer_, kControlApp));
      }
      return;
    }

    // Download-side bandwidth emulation: pace before the message becomes
    // visible. While we sleep (or block on a full buffer below) the kernel
    // receive window fills and TCP pushes back on the sender — exactly the
    // "back pressure" of §2.4. A non-zero wait is a pacing boundary:
    // everything decoded so far becomes visible before we sleep, so
    // batching never delays a message past its emulated arrival time.
    const Duration wait =
        bandwidth_.acquire_recv(peer_, m->wire_size(), clock_.now());
    if (wait > 0) {
      if (!flush_inbound()) return;
      recv_throttle_wait_.observe_duration(wait);
      if (!recv_sleeper_.sleep(wait)) return;
    }
    up_meter_.record(m->wire_size(), clock_.now());
    up_bytes_.inc(m->wire_size());
    up_msgs_.inc();

    if (m->type() == MsgType::kData) {
      inbound.push_back(Inbound{std::move(m), clock_.now()});
      // Keep accumulating only while the reader can hand out more frames
      // without going back to the socket; flush before any blocking read
      // so the switch never waits on delivered-but-unpushed messages.
      if (!wire_bulk_reader_ || inbound.size() >= wire_batch_msgs_ ||
          !reader.buffered()) {
        if (!flush_inbound()) return;  // closed: teardown
      }
    } else {
      // Protocol/control traffic bypasses the data buffers so it cannot be
      // starved by a congested data plane (flush first to preserve arrival
      // order between the two planes).
      if (!flush_inbound()) return;
      sink_.post(std::move(m));
    }
  }
  flush_inbound();
}

void PeerLink::sender_main() {
  if (zerocopy_min_bytes_ > 0) {
    // Opt in once; if the kernel refuses, every flush simply stays on the
    // plain write_batch path.
    zerocopy_enabled_ = conn_.enable_zerocopy();
  }
  std::vector<MsgPtr> batch;
  std::vector<MsgPtr> pending;  // pacing-cleared, awaiting one flush
  bool running = true;
  while (running) {
    batch.clear();
    if (send_buffer_.pop_batch(batch, wire_batch_msgs_) == 0) break;
    send_depth_.set(static_cast<i64>(send_buffer_.size()));
    pending.clear();
    for (std::size_t i = 0; i < batch.size(); ++i) {
      MsgPtr& m = batch[i];
      const u32 loss_ppm = send_loss_ppm_.load(std::memory_order_relaxed);
      if (loss_ppm > 0 && loss_rng_.below(1000000) < loss_ppm) {
        // Injected wire loss (kSetLoss): the message vanishes before
        // pacing, accounted like any other sender-side drop.
        count_send_loss(*m);
        sink_.wake();
        continue;
      }
      const Duration wait =
          bandwidth_.acquire_send(peer_, m->wire_size(), clock_.now());
      if (wait > 0) {
        // Pacing boundary: everything accumulated so far cleared the
        // token bucket with zero wait, so flush it before sleeping.
        // Batching therefore never shifts a message past its emulated
        // departure time.
        if (!flush_pending(pending)) {
          for (std::size_t j = i; j < batch.size(); ++j) {
            count_send_loss(*batch[j]);
          }
          running = false;
          break;
        }
        send_throttle_wait_.observe_duration(wait);
        if (!send_sleeper_.sleep(wait)) {
          // Interrupted mid-teardown: account the remainder as lost.
          for (std::size_t j = i; j < batch.size(); ++j) {
            count_send_loss(*batch[j]);
          }
          running = false;
          break;
        }
      }
      pending.push_back(std::move(m));
    }
    if (running && !flush_pending(pending)) running = false;
  }
  // Drain whatever remains so engine-side pushes never wedge, and count it
  // as loss ("the number of bytes (or messages) lost due to failures").
  batch.clear();
  while (send_buffer_.try_pop_batch(batch, wire_batch_msgs_) > 0) {
    for (const auto& rest : batch) count_send_loss(*rest);
    batch.clear();
  }
  // Bounded teardown drain of outstanding zerocopy completions: give the
  // kernel a moment to finish transmitting from our buffers before they
  // are released. Past the deadline the records are dropped regardless —
  // the connection is already down, and the kernel holds its own page
  // references, so freeing early can at worst garble a dead stream's
  // final bytes, never this process's memory.
  for (int spins = 0; !zc_inflight_.empty() && spins < 50; ++spins) {
    reap_zerocopy_completions();
    if (zc_inflight_.empty()) break;
    if (!send_sleeper_.sleep(millis(1))) break;
  }
  zc_inflight_.clear();
}

void PeerLink::reap_zerocopy_completions() {
  if (zc_inflight_.empty()) return;
  zc_ranges_.clear();
  if (conn_.reap_zerocopy(zc_ranges_) == 0) return;
  for (const auto& r : zc_ranges_) {
    const u32 count = r.hi - r.lo + 1;  // wrapping-safe id arithmetic
    zc_completions_.inc(count);
    if (r.copied) zc_copied_.inc(count);
    // TCP completions arrive in send order, so every record whose last id
    // is at or below the range's high end is fully transmitted. The
    // signed-difference compare handles 32-bit id wraparound.
    while (!zc_inflight_.empty() &&
           static_cast<i32>(r.hi - zc_inflight_.front().hi) >= 0) {
      zc_inflight_.pop_front();
    }
  }
}

bool PeerLink::flush_pending(std::vector<MsgPtr>& pending) {
  if (pending.empty()) return true;
  // Zerocopy is worth the page-pinning bookkeeping only when the flush
  // actually carries a large frame; small flushes stay on the copy path
  // (cheaper than a pin + completion round-trip per send).
  bool use_zc = false;
  if (zerocopy_enabled_) {
    for (const auto& m : pending) {
      if (m->payload_size() >= zerocopy_min_bytes_) {
        use_zc = true;
        break;
      }
    }
  }
  if (use_zc) {
    reap_zerocopy_completions();
    // Completions lagging far behind sends means unbounded pinned memory;
    // pause briefly for the kernel to catch up before pinning more.
    for (int spins = 0;
         zc_inflight_.size() >= kZcInFlightWatermark && spins < 100; ++spins) {
      if (!send_sleeper_.sleep(millis(1))) break;
      reap_zerocopy_completions();
    }
  }
  u64 syscalls = 0;
  u64 zc_calls = 0;
  std::vector<codec::HeaderBytes> headers;
  const bool ok =
      use_zc ? write_batch_zerocopy(conn_, pending.data(), pending.size(),
                                    headers, &syscalls, &zc_calls)
             : write_batch(conn_, pending.data(), pending.size(), &syscalls);
  down_syscalls_.inc(syscalls);
  if (use_zc) {
    zc_sends_.inc(zc_calls);
    if (syscalls > zc_calls) zc_fallbacks_.inc(syscalls - zc_calls);
  }
  if (!ok) {
    for (const auto& m : pending) count_send_loss(*m);
    pending.clear();
    if (!stopping_.load(std::memory_order_relaxed)) {
      failed_.store(true, std::memory_order_relaxed);
      sink_.post(Msg::control(MsgType::kSendFailed, peer_, kControlApp));
    }
    return false;
  }
  down_flush_msgs_.observe(static_cast<double>(pending.size()));
  const TimePoint now = clock_.now();
  for (const auto& m : pending) {
    down_meter_.record(m->wire_size(), now);
    down_bytes_.inc(m->wire_size());
  }
  down_msgs_.inc(pending.size());
  if (zc_calls > 0) {
    // The kernel reads the payload pages and header bytes at transmit
    // time: park both until the completion ids this flush consumed are
    // reaped. zc_next_id_ mirrors the kernel's per-socket id counter
    // (one id per flagged sendmsg, assigned sequentially from 0).
    ZcInFlight rec;
    rec.lo = zc_next_id_;
    rec.hi = zc_next_id_ + static_cast<u32>(zc_calls) - 1;
    zc_next_id_ += static_cast<u32>(zc_calls);
    rec.msgs = std::move(pending);
    rec.headers = std::move(headers);
    zc_inflight_.push_back(std::move(rec));
    pending.clear();  // restore the moved-from vector to a known state
  } else {
    pending.clear();
  }
  sink_.wake();  // switch may have been waiting for sender-buffer space
  return true;
}

void PeerLink::count_send_loss(const Msg& m) {
  down_meter_.record_loss(m.wire_size());
  down_lost_bytes_.inc(m.wire_size());
  down_lost_msgs_.inc();
}

void PeerLink::set_send_loss(double probability) {
  if (probability < 0.0) probability = 0.0;
  if (probability > 1.0) probability = 1.0;
  send_loss_ppm_.store(static_cast<u32>(probability * 1e6),
                       std::memory_order_relaxed);
}

void PeerLink::update_queue_gauges() {
  recv_depth_.set(static_cast<i64>(recv_buffer_.size()));
  send_depth_.set(static_cast<i64>(send_buffer_.size()));
}

}  // namespace iov::engine
