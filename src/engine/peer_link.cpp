#include "engine/peer_link.h"

#include "common/logging.h"
#include "obs/metric_names.h"

namespace iov::engine {

namespace {
obs::Labels link_labels(const NodeId& peer, const char* dir) {
  return {{"peer", peer.to_string()}, {"dir", dir}};
}
}  // namespace

bool InterruptibleSleeper::sleep(Duration d) {
  if (d <= 0) return true;
  std::unique_lock<std::mutex> lock(mu_);
  return !cv_.wait_for(lock, std::chrono::nanoseconds(d),
                       [&] { return interrupted_; });
}

void InterruptibleSleeper::interrupt() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    interrupted_ = true;
  }
  cv_.notify_all();
}

PeerLink::PeerLink(NodeId self, NodeId peer, TcpConn conn,
                   std::size_t recv_buf_msgs, std::size_t send_buf_msgs,
                   BandwidthEmulator& bandwidth, const Clock& clock,
                   InternalSink& sink, obs::MetricsRegistry& metrics)
    : self_(self),
      peer_(peer),
      conn_(std::move(conn)),
      bandwidth_(bandwidth),
      clock_(clock),
      sink_(sink),
      recv_buffer_(recv_buf_msgs),
      send_buffer_(send_buf_msgs),
      up_bytes_(metrics.counter(obs::names::kLinkBytesTotal,
                                link_labels(peer, "up"))),
      up_msgs_(metrics.counter(obs::names::kLinkMessagesTotal,
                               link_labels(peer, "up"))),
      down_bytes_(metrics.counter(obs::names::kLinkBytesTotal,
                                  link_labels(peer, "down"))),
      down_msgs_(metrics.counter(obs::names::kLinkMessagesTotal,
                                 link_labels(peer, "down"))),
      down_lost_bytes_(metrics.counter(obs::names::kLinkLostBytesTotal,
                                       link_labels(peer, "down"))),
      down_lost_msgs_(metrics.counter(obs::names::kLinkLostMessagesTotal,
                                      link_labels(peer, "down"))),
      recv_depth_(metrics.gauge(obs::names::kLinkQueueDepth,
                                link_labels(peer, "up"))),
      send_depth_(metrics.gauge(obs::names::kLinkQueueDepth,
                                link_labels(peer, "down"))),
      recv_throttle_wait_(metrics.histogram(obs::names::kThrottleWaitSeconds,
                                            link_labels(peer, "up"))),
      send_throttle_wait_(metrics.histogram(obs::names::kThrottleWaitSeconds,
                                            link_labels(peer, "down"))),
      loss_rng_((static_cast<u64>(self.ip()) << 32) ^
                (static_cast<u64>(peer.ip()) << 16) ^ peer.port()) {
  metrics.gauge(obs::names::kLinkQueueCapacity, link_labels(peer, "up"))
      .set(static_cast<i64>(recv_buffer_.capacity()));
  metrics.gauge(obs::names::kLinkQueueCapacity, link_labels(peer, "down"))
      .set(static_cast<i64>(send_buffer_.capacity()));
}

PeerLink::~PeerLink() {
  stop();
  join();
}

void PeerLink::start() {
  receiver_ = std::thread([this] { receiver_main(); });
  sender_ = std::thread([this] { sender_main(); });
}

void PeerLink::stop() {
  bool expected = false;
  if (!stopping_.compare_exchange_strong(expected, true)) return;
  recv_buffer_.close();
  send_buffer_.close();
  recv_sleeper_.interrupt();
  send_sleeper_.interrupt();
  // Shutting down (not closing) the socket wakes any blocked read/write in
  // the link threads without racing descriptor reuse.
  conn_.shutdown_both();
}

void PeerLink::join() {
  if (receiver_.joinable()) receiver_.join();
  if (sender_.joinable()) sender_.join();
}

void PeerLink::receiver_main() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    MsgPtr m = read_msg(conn_);
    if (!m) {
      if (!stopping_.load(std::memory_order_relaxed)) {
        failed_.store(true, std::memory_order_relaxed);
        sink_.post(Msg::control(MsgType::kPeerFailed, peer_, kControlApp));
      }
      return;
    }

    // Download-side bandwidth emulation: pace before the message becomes
    // visible. While we sleep (or block on a full buffer below) the kernel
    // receive window fills and TCP pushes back on the sender — exactly the
    // "back pressure" of §2.4.
    const Duration wait =
        bandwidth_.acquire_recv(peer_, m->wire_size(), clock_.now());
    if (wait > 0) recv_throttle_wait_.observe_duration(wait);
    if (!recv_sleeper_.sleep(wait)) return;
    up_meter_.record(m->wire_size(), clock_.now());
    up_bytes_.inc(m->wire_size());
    up_msgs_.inc();

    if (m->type() == MsgType::kData) {
      Inbound in{std::move(m), clock_.now()};
      if (!recv_buffer_.push(std::move(in))) return;  // closed: teardown
      recv_depth_.set(static_cast<i64>(recv_buffer_.size()));
      sink_.wake();
    } else {
      // Protocol/control traffic bypasses the data buffers so it cannot be
      // starved by a congested data plane.
      sink_.post(std::move(m));
    }
  }
}

void PeerLink::sender_main() {
  while (true) {
    auto m = send_buffer_.pop();
    if (!m) return;  // closed and drained
    send_depth_.set(static_cast<i64>(send_buffer_.size()));
    const u32 loss_ppm = send_loss_ppm_.load(std::memory_order_relaxed);
    if (loss_ppm > 0 && loss_rng_.below(1000000) < loss_ppm) {
      // Injected wire loss (kSetLoss): the message vanishes before
      // pacing, accounted like any other sender-side drop.
      down_meter_.record_loss((*m)->wire_size());
      down_lost_bytes_.inc((*m)->wire_size());
      down_lost_msgs_.inc();
      sink_.wake();
      continue;
    }
    const Duration wait =
        bandwidth_.acquire_send(peer_, (*m)->wire_size(), clock_.now());
    if (wait > 0) send_throttle_wait_.observe_duration(wait);
    if (!send_sleeper_.sleep(wait)) {
      // Interrupted mid-teardown: account the remaining queue as lost.
      down_meter_.record_loss((*m)->wire_size());
      down_lost_bytes_.inc((*m)->wire_size());
      down_lost_msgs_.inc();
      break;
    }
    if (!write_msg(conn_, **m)) {
      down_meter_.record_loss((*m)->wire_size());
      down_lost_bytes_.inc((*m)->wire_size());
      down_lost_msgs_.inc();
      if (!stopping_.load(std::memory_order_relaxed)) {
        failed_.store(true, std::memory_order_relaxed);
        sink_.post(Msg::control(MsgType::kSendFailed, peer_, kControlApp));
      }
      break;
    }
    down_meter_.record((*m)->wire_size(), clock_.now());
    down_bytes_.inc((*m)->wire_size());
    down_msgs_.inc();
    sink_.wake();  // switch may have been waiting for sender-buffer space
  }
  // Drain whatever remains so engine-side pushes never wedge, and count it
  // as loss ("the number of bytes (or messages) lost due to failures").
  while (auto rest = send_buffer_.try_pop()) {
    down_meter_.record_loss((*rest)->wire_size());
    down_lost_bytes_.inc((*rest)->wire_size());
    down_lost_msgs_.inc();
  }
}

void PeerLink::set_send_loss(double probability) {
  if (probability < 0.0) probability = 0.0;
  if (probability > 1.0) probability = 1.0;
  send_loss_ppm_.store(static_cast<u32>(probability * 1e6),
                       std::memory_order_relaxed);
}

void PeerLink::update_queue_gauges() {
  recv_depth_.set(static_cast<i64>(recv_buffer_.size()));
  send_depth_.set(static_cast<i64>(send_buffer_.size()));
}

}  // namespace iov::engine
