#include "engine/engine.h"

#include <poll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <fstream>

#include "common/logging.h"
#include "common/strings.h"
#include "net/reactor/reactor.h"
#include "obs/metric_names.h"

namespace iov::engine {

namespace {
constexpr Duration kIdlePollTimeout = millis(50);
constexpr Duration kHelloTimeout = seconds(1.0);
constexpr Duration kObserverRetry = seconds(1.0);
/// How long the listener sits out of the poll set after EMFILE/ENFILE on
/// accept — long enough for fds to free up, short enough that peers'
/// connect attempts (still queued in the kernel backlog) aren't dropped.
constexpr Duration kAcceptBackoff = millis(100);
}  // namespace

Engine::Engine(EngineConfig config, std::unique_ptr<Algorithm> algorithm)
    : config_(std::move(config)),
      algorithm_(std::move(algorithm)),
      clock_(&RealClock::instance()),
      rng_(config_.seed),
      bandwidth_(config_.bandwidth),
      switch_latency_(metrics_.histogram(obs::names::kSwitchLatencySeconds)),
      switch_process_(metrics_.histogram(obs::names::kSwitchProcessSeconds)),
      switch_msgs_(metrics_.counter(obs::names::kSwitchMessagesTotal)),
      switch_rounds_(metrics_.counter(obs::names::kSwitchRoundsTotal)),
      ctrl_msgs_(metrics_.counter(obs::names::kEngineControlMessagesTotal)),
      timers_fired_(metrics_.counter(obs::names::kEngineTimersFiredTotal)),
      reports_sent_(metrics_.counter(obs::names::kEngineReportsSentTotal)),
      traces_sent_(metrics_.counter(obs::names::kEngineTracesTotal)),
      link_closes_(metrics_.counter(obs::names::kEngineLinkClosesTotal)),
      link_failures_(metrics_.counter(obs::names::kEngineLinkFailuresTotal)),
      engine_threads_(metrics_.gauge(obs::names::kEngineThreads)),
      engine_open_fds_(metrics_.gauge(obs::names::kEngineOpenFds)) {
  // Register the reactor lag histogram up front so every node's kReport
  // carries the metric even before its first link exists.
  metrics_.histogram(obs::names::kReactorLoopLagSeconds);
  slab_pool_.set_metrics(
      &metrics_.counter(obs::names::kPoolSlabAcquiresTotal,
                        {{"result", "hit"}}),
      &metrics_.counter(obs::names::kPoolSlabAcquiresTotal,
                        {{"result", "miss"}}),
      &metrics_.gauge(obs::names::kPoolSlabFreeBytes));
}

Engine::~Engine() {
  stop();
  join();
}

// --- Lifecycle ---------------------------------------------------------------

bool Engine::start() {
  suppress_sigpipe();
  // A process hosting many nodes needs an fd per link; lift the soft
  // RLIMIT_NOFILE to the hard cap before the first socket is made.
  const u64 fd_cap = raise_nofile_limit();
  if (config_.reactor_threads != 0) {
    reactor_ = &reactor::Reactor::shared(config_.reactor_threads);
  }
  static std::once_flag boot_log_once;
  std::call_once(boot_log_once, [&] {
    IOV_LOG_INFO("engine") << "socket path: "
                           << (reactor_ != nullptr
                                   ? strf("shared epoll reactor, %d worker(s)",
                                          reactor_->threads())
                                   : std::string("legacy thread-per-link"))
                           << "; fd cap " << fd_cap;
  });
  auto listener = TcpListener::listen(config_.port, config_.loopback_only,
                                      128, config_.socket_buffer_bytes);
  if (!listener) return false;
  listener_ = std::move(*listener);
  self_ = NodeId(config_.advertised_ip, listener_.port());

  wake_fd_ = Fd(::eventfd(0, EFD_NONBLOCK));
  if (!wake_fd_.valid()) return false;

  started_ = true;
  running_.store(true, std::memory_order_release);
  engine_thread_ = std::thread([this] { engine_main(); });
  return true;
}

void Engine::stop() {
  stop_requested_.store(true, std::memory_order_release);
  wake();
}

void Engine::join() {
  if (engine_thread_.joinable()) engine_thread_.join();
}

void Engine::register_app(u32 app, std::shared_ptr<Application> application) {
  std::lock_guard<std::mutex> lock(state_mu_);
  sources_[app].app_impl = std::move(application);
}

void Engine::post(MsgPtr m) {
  {
    std::lock_guard<std::mutex> lock(internal_mu_);
    internal_q_.push_back(std::move(m));
  }
  wake();
}

void Engine::wake() {
  if (!wake_fd_.valid()) return;
  const u64 one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(wake_fd_.get(), &one, sizeof(one));
}

void Engine::deploy_source(u32 app) {
  post(Msg::control(MsgType::kSDeploy, NodeId(), kControlApp,
                    static_cast<i32>(app)));
}

void Engine::terminate_source(u32 app) {
  post(Msg::control(MsgType::kSTerminate, NodeId(), kControlApp,
                    static_cast<i32>(app)));
}

void Engine::join_app(u32 app, std::string_view arg) {
  post(Msg::control(MsgType::kSJoin, NodeId(), kControlApp,
                    static_cast<i32>(app), 0, arg));
}

Engine::Snapshot Engine::snapshot() const {
  Snapshot snap;
  snap.node = self_;
  const TimePoint t = clock_->now();
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const auto& [peer, link] : links_) {
    LinkSnapshot ls;
    ls.peer = peer;
    ls.up.peer = peer;
    ls.up.rate_bps = link->up_meter().rate(t);
    ls.up.total_bytes = link->up_meter().total_bytes();
    ls.up.total_msgs = link->up_meter().total_msgs();
    ls.up.lost_bytes = link->up_meter().lost_bytes();
    ls.up.lost_msgs = link->up_meter().lost_msgs();
    ls.up.buffer_len = link->recv_buffer().size();
    ls.up.buffer_cap = link->recv_buffer().capacity();
    ls.down.peer = peer;
    ls.down.rate_bps = link->down_meter().rate(t);
    ls.down.total_bytes = link->down_meter().total_bytes();
    ls.down.total_msgs = link->down_meter().total_msgs();
    ls.down.lost_bytes = link->down_meter().lost_bytes();
    ls.down.lost_msgs = link->down_meter().lost_msgs();
    ls.down.buffer_len = link->send_buffer().size();
    ls.down.buffer_cap = link->send_buffer().capacity();
    snap.links.push_back(ls);
  }
  for (const auto& [app, slot] : sources_) {
    if (slot.active) snap.source_apps.push_back(app);
  }
  snap.joined_apps.assign(joined_.begin(), joined_.end());
  return snap;
}

// --- Engine thread ------------------------------------------------------------

void Engine::engine_main() {
  algorithm_->bind(*this);
  start_time_ = clock_->now();
  next_report_ = start_time_ + config_.report_interval;
  next_throughput_ = start_time_ + config_.throughput_interval;
  connect_observer();
  algorithm_->on_start();

  bool progress = false;
  while (!stop_requested_.load(std::memory_order_acquire)) {
    Duration timeout = 0;
    if (!progress) {
      const TimePoint t = clock_->now();
      timeout = kIdlePollTimeout;
      if (!timers_.empty()) {
        timeout = std::min(timeout, timers_.top().due - t);
      }
      timeout = std::min(timeout, next_throughput_ - t);
      if (observer_conn_) timeout = std::min(timeout, next_report_ - t);
      timeout = std::max<Duration>(timeout, 0);
    }
    poll_once(timeout);

    // Drain the internal queue (link-thread notifications, driver posts,
    // protocol messages that arrived over persistent links).
    while (true) {
      MsgPtr m;
      {
        std::lock_guard<std::mutex> lock(internal_mu_);
        if (internal_q_.empty()) break;
        m = std::move(internal_q_.front());
        internal_q_.pop_front();
      }
      dispatch(m);
      if (stop_requested_.load(std::memory_order_acquire)) break;
    }

    fire_due_timers();
    run_periodic();
    progress = run_switch();
  }

  // Graceful teardown (paper §2.2: "all the data structures and threads in
  // both the engine and the algorithm will be cleared up, and the program
  // terminates gracefully").
  listener_.close();
  std::unordered_map<NodeId, std::unique_ptr<PeerLink>> links;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    links.swap(links_);
  }
  for (auto& [peer, link] : links) link->stop();
  for (auto& [peer, link] : links) link->join();
  links.clear();
  control_conns_.clear();
  if (observer_conn_) observer_conn_->close();
  running_.store(false, std::memory_order_release);
}

void Engine::poll_once(Duration timeout) {
  std::vector<pollfd> fds;
  fds.push_back({wake_fd_.get(), POLLIN, 0});
  // During fd-exhaustion backoff the listener sits out of the poll set
  // (a negative fd is ignored by poll); pending connects stay queued in
  // the kernel backlog instead of spinning accept -> EMFILE.
  const bool accepting = clock_->now() >= accept_backoff_until_;
  fds.push_back({accepting ? listener_.fd() : -1, POLLIN, 0});
  const std::size_t observer_idx = fds.size();
  if (observer_conn_) fds.push_back({observer_conn_->fd(), POLLIN, 0});
  const std::size_t control_base = fds.size();
  for (const auto& conn : control_conns_) {
    fds.push_back({conn.fd(), POLLIN, 0});
  }

  const int timeout_ms = static_cast<int>(timeout / kNanosPerMilli);
  const int rc = ::poll(fds.data(), fds.size(), timeout_ms);
  if (rc <= 0) return;

  if (fds[0].revents & POLLIN) {
    u64 count = 0;
    [[maybe_unused]] const ssize_t n =
        ::read(wake_fd_.get(), &count, sizeof(count));
  }
  if (fds[1].revents & (POLLIN | POLLERR)) handle_accept();

  if (observer_conn_ && (fds[observer_idx].revents & (POLLIN | POLLHUP))) {
    if (MsgPtr m = read_msg(*observer_conn_)) {
      dispatch(m);
    } else {
      observer_conn_.reset();
      next_observer_retry_ = clock_->now() + kObserverRetry;
    }
  }

  // Transient control connections: one frame per readiness; EOF removes.
  std::vector<std::size_t> dead;
  for (std::size_t i = 0; i < control_conns_.size(); ++i) {
    if (!(fds[control_base + i].revents & (POLLIN | POLLHUP))) continue;
    if (MsgPtr m = read_msg(control_conns_[i])) {
      dispatch(m);
    } else {
      dead.push_back(i);
    }
  }
  for (auto it = dead.rbegin(); it != dead.rend(); ++it) {
    control_conns_.erase(control_conns_.begin() +
                         static_cast<std::ptrdiff_t>(*it));
  }
}

void Engine::handle_accept() {
  while (true) {
    errno = 0;
    auto conn = listener_.accept();
    if (!conn) {
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: not fatal. Back off, let links close and
        // free fds, and retry; the node itself stays up.
        accept_backoff_until_ = clock_->now() + kAcceptBackoff;
        log_fd_exhaustion("accept");
      }
      return;
    }
    if (!wait_readable(conn->fd(), kHelloTimeout)) continue;  // drop
    const auto hello = read_hello(*conn);
    if (!hello) continue;  // bad magic: drop
    if (hello->kind == ConnKind::kPersistent) {
      adopt_persistent(hello->sender, std::move(*conn));
    } else {
      control_conns_.push_back(std::move(*conn));
    }
  }
}

void Engine::log_fd_exhaustion(const char* where) {
  const TimePoint t = clock_->now();
  if (t - last_fd_warn_ < seconds(1.0) && last_fd_warn_ != 0) return;
  last_fd_warn_ = t;
  IOV_LOG_WARN("engine") << self_.to_string()
                         << ": out of file descriptors (" << where
                         << "); backing off and retrying (process fd cap "
                         << raise_nofile_limit() << ")";
}

void Engine::adopt_persistent(const NodeId& peer, TcpConn conn) {
  conn.set_buffer_sizes(config_.socket_buffer_bytes);
  if (find_link(peer) != nullptr) {
    // Simultaneous dial: both ends agree that the connection dialed by the
    // numerically smaller node id survives.
    if (self_ < peer) return;  // keep ours; drop the incoming socket
    remove_link(peer);
  }
  auto link = std::make_unique<PeerLink>(
      self_, peer, std::move(conn), config_, bandwidth_, *clock_, *this,
      metrics_, config_.wire_payload_pool ? &slab_pool_ : nullptr,
      reactor_ != nullptr ? &reactor_->pick() : nullptr,
      /*dial_pending=*/false);
  PeerLink* raw = link.get();
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    links_[peer] = std::move(link);
  }
  rr_dirty_ = true;
  raw->start();
}

PeerLink* Engine::find_link(const NodeId& peer) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  const auto it = links_.find(peer);
  return it == links_.end() ? nullptr : it->second.get();
}

void Engine::remove_link(const NodeId& peer) {
  std::unique_ptr<PeerLink> link;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const auto it = links_.find(peer);
    if (it == links_.end()) return;
    link = std::move(it->second);
    links_.erase(it);
  }
  rr_dirty_ = true;
  link->stop();
  link->join();
}

PeerLink* Engine::get_or_dial(const NodeId& dest) {
  if (PeerLink* existing = find_link(dest)) return existing;
  if (reactor_ != nullptr) {
    // Reactor path: non-blocking connect. The link exists immediately
    // (messages queue into its send buffer); the worker completes the
    // TCP handshake + hello asynchronously, and a failed connect surfaces
    // as kPeerFailed -> the usual kBrokenLink teardown.
    auto conn = TcpConn::connect_start(dest, config_.socket_buffer_bytes);
    if (!conn) {
      if (errno == EMFILE || errno == ENFILE) log_fd_exhaustion("dial");
      return nullptr;
    }
    auto link = std::make_unique<PeerLink>(
        self_, dest, std::move(*conn), config_, bandwidth_, *clock_, *this,
        metrics_, config_.wire_payload_pool ? &slab_pool_ : nullptr,
        &reactor_->pick(), /*dial_pending=*/true);
    PeerLink* raw = link.get();
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      links_[dest] = std::move(link);
    }
    rr_dirty_ = true;
    raw->start();
    return raw;
  }
  auto conn = TcpConn::connect(dest, config_.connect_timeout,
                               config_.socket_buffer_bytes);
  if (!conn) {
    if (errno == EMFILE || errno == ENFILE) log_fd_exhaustion("dial");
    return nullptr;
  }
  if (!write_hello(*conn, Hello{ConnKind::kPersistent, self_})) return nullptr;
  adopt_persistent(dest, std::move(*conn));
  return find_link(dest);
}

// --- Dispatch -------------------------------------------------------------------

void Engine::deliver_to_algorithm(const MsgPtr& m) {
  current_msg_ = m.get();
  algorithm_->process(m);
  current_msg_ = nullptr;
}

void Engine::dispatch(const MsgPtr& m) {
  ctrl_msgs_.inc();
  switch (m->type()) {
    case MsgType::kPeerFailed:
    case MsgType::kSendFailed:
      handle_link_failure(m->origin(), /*deliberate=*/false);
      return;

    case MsgType::kTerminateNode:
      stop_requested_.store(true, std::memory_order_release);
      return;

    case MsgType::kSetBandwidth:
      apply_set_bandwidth(m);
      return;

    case MsgType::kSeverLink: {
      // Fault injection: drop the link as if it had failed. Our side runs
      // the non-deliberate path (the algorithm sees kBrokenLink); the
      // peer perceives the TCP EOF and does the same.
      const auto peer = NodeId::parse(trim(m->param_text()));
      if (peer) handle_link_failure(*peer, /*deliberate=*/false);
      return;
    }

    case MsgType::kSetLoss: {
      const auto peer = NodeId::parse(trim(m->param_text()));
      if (!peer) return;
      if (PeerLink* link = find_link(*peer)) {
        link->set_send_loss(static_cast<double>(m->param(0)) / 1e6);
      }
      return;
    }

    case MsgType::kRequest:
      send_report();
      deliver_to_algorithm(m);  // Table 2 also shows algorithms reacting
      return;

    case MsgType::kSDeploy: {
      const u32 app = static_cast<u32>(m->param(0));
      bool known = false;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        const auto it = sources_.find(app);
        if (it != sources_.end() && it->second.app_impl) {
          it->second.active = true;
          known = true;
        }
      }
      if (!known) {
        IOV_LOG_WARN("engine") << self_.to_string() << ": sDeploy for app "
                               << app << " with no registered application";
        return;
      }
      deliver_to_algorithm(m);
      return;
    }

    case MsgType::kSTerminate: {
      const u32 app = static_cast<u32>(m->param(0));
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        const auto it = sources_.find(app);
        if (it != sources_.end()) it->second.active = false;
      }
      deliver_to_algorithm(m);
      return;
    }

    case MsgType::kSJoin: {
      std::lock_guard<std::mutex> lock(state_mu_);
      joined_.insert(static_cast<u32>(m->param(0)));
      break;
    }

    case MsgType::kSLeave: {
      std::lock_guard<std::mutex> lock(state_mu_);
      joined_.erase(static_cast<u32>(m->param(0)));
      break;
    }

    case MsgType::kBrokenSource:
      propagate_broken_source(m->app(), m->origin());
      return;

    default:
      break;
  }
  deliver_to_algorithm(m);
}

void Engine::handle_link_failure(const NodeId& peer, bool deliberate) {
  if (find_link(peer) == nullptr) return;  // already torn down
  (deliberate ? link_closes_ : link_failures_).inc();
  remove_link(peer);

  // Purge queued work involving the dead peer.
  link_outbox_.erase(peer);
  control_backlog_.erase(peer);
  for (auto& [slot_peer, outbox] : link_outbox_) {
    std::erase_if(outbox.entries,
                  [&](const auto& e) { return e.second == peer; });
  }
  for (auto& [app, slot] : sources_) {
    std::erase_if(slot.outbox.entries,
                  [&](const auto& e) { return e.second == peer; });
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    switch_weight_.erase(peer);
  }

  const std::set<u32> lost_apps = [&] {
    const auto it = up_apps_.find(peer);
    return it == up_apps_.end() ? std::set<u32>{} : it->second;
  }();
  up_apps_.erase(peer);
  down_apps_.erase(peer);

  if (!deliberate) {
    deliver_to_algorithm(
        Msg::control(MsgType::kBrokenLink, peer, kControlApp));
  }

  // Domino effect (§2.2): sessions whose only upstream vanished are dead
  // from this node's perspective; propagate downstream.
  for (const u32 app : lost_apps) {
    if (is_source(app)) continue;
    bool other_upstream = false;
    for (const auto& [other, apps] : up_apps_) {
      if (apps.count(app) > 0) {
        other_upstream = true;
        break;
      }
    }
    if (!other_upstream) propagate_broken_source(app, peer);
  }
}

void Engine::propagate_broken_source(u32 app, const NodeId& origin) {
  if (!broken_seen_.insert({app, origin}).second) return;
  auto notice = std::make_shared<Msg>(MsgType::kBrokenSource, origin, app, 0,
                                      Buffer::empty_buffer());
  std::vector<NodeId> targets;
  for (const auto& [peer, apps] : down_apps_) {
    if (apps.count(app) > 0) targets.push_back(peer);
  }
  for (const auto& target : targets) {
    if (PeerLink* link = find_link(target)) {
      if (link->send_buffer().try_push(notice)) {
        link->notify_send();
      } else {
        control_backlog_[target].push_back(notice);
      }
    }
  }
  deliver_to_algorithm(notice);
}

void Engine::apply_set_bandwidth(const MsgPtr& m) {
  const double rate = static_cast<double>(m->param(1));
  switch (m->param(0)) {
    case kBwNodeTotal:
      bandwidth_.set_node_total(rate);
      return;
    case kBwNodeUp:
      bandwidth_.set_node_up(rate);
      return;
    case kBwNodeDown:
      bandwidth_.set_node_down(rate);
      return;
    case kBwLinkUp:
    case kBwLinkDown: {
      const auto peer = NodeId::parse(trim(m->param_text()));
      if (!peer) return;
      if (m->param(0) == kBwLinkUp) {
        bandwidth_.set_link_up(*peer, rate);
      } else {
        bandwidth_.set_link_down(*peer, rate);
      }
      return;
    }
    default:
      return;
  }
}

// --- Timers and periodic work ----------------------------------------------------

void Engine::set_timer(Duration delay, i32 timer_id) {
  timers_.push(TimerEntry{clock_->now() + std::max<Duration>(delay, 0),
                          timer_id, timer_seq_++});
}

void Engine::fire_due_timers() {
  const TimePoint t = clock_->now();
  while (!timers_.empty() && timers_.top().due <= t) {
    const TimerEntry entry = timers_.top();
    timers_.pop();
    timers_fired_.inc();
    deliver_to_algorithm(
        Msg::control(MsgType::kTimer, self_, kControlApp, entry.id));
  }
}

void Engine::run_periodic() {
  const TimePoint t = clock_->now();

  if (t >= next_throughput_) {
    next_throughput_ = t + config_.throughput_interval;
    std::vector<std::pair<NodeId, std::pair<double, double>>> rates;
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      rates.reserve(links_.size());
      for (const auto& [peer, link] : links_) {
        rates.push_back({peer,
                         {link->up_meter().rate(t), link->down_meter().rate(t)}});
      }
    }

    // Resource-budget gauges (docs/METRICS.md). Threads: the engine
    // thread, plus two per link only in legacy mode — the whole point of
    // the reactor is that this gauge stays flat as links grow (the shared
    // pool is process-wide and not attributable to one node). Fds: the
    // listener, the wake eventfd, one per link, plus observer/proxy/
    // control connections.
    engine_threads_.set(static_cast<i64>(
        1 + (reactor_ != nullptr ? 0 : 2 * rates.size())));
    std::size_t fds = 2 + rates.size() + control_conns_.size();
    if (observer_conn_) ++fds;
    if (proxy_conn_) ++fds;
    engine_open_fds_.set(static_cast<i64>(fds));
    for (const auto& [peer, updown] : rates) {
      deliver_to_algorithm(Msg::control(MsgType::kUpThroughput, peer,
                                        kControlApp,
                                        static_cast<i32>(updown.first)));
      deliver_to_algorithm(Msg::control(MsgType::kDownThroughput, peer,
                                        kControlApp,
                                        static_cast<i32>(updown.second)));
    }

    // Inactivity-based failure detection (§2.2): an upstream that has
    // delivered traffic before but has been silent beyond the timeout is
    // presumed dead. No probes, no heartbeats.
    if (config_.idle_failure_timeout > 0) {
      std::vector<NodeId> idle;
      {
        std::lock_guard<std::mutex> lock(state_mu_);
        for (const auto& [peer, link] : links_) {
          if (link->up_meter().total_msgs() > 0 &&
              link->up_meter().idle_for(t) > config_.idle_failure_timeout) {
            idle.push_back(peer);
          }
        }
      }
      for (const auto& peer : idle) {
        handle_link_failure(peer, /*deliberate=*/false);
      }
    }
  }

  if (observer_conn_ && t >= next_report_) {
    next_report_ = t + config_.report_interval;
    send_report();
  }

  if (!observer_conn_ && config_.observer.valid() &&
      t >= next_observer_retry_) {
    connect_observer();
  }
}

// --- Observer plane -----------------------------------------------------------------

void Engine::connect_observer() {
  if (!config_.observer.valid()) return;
  next_observer_retry_ = clock_->now() + kObserverRetry;
  auto conn = TcpConn::connect(config_.observer, config_.connect_timeout);
  if (!conn) return;
  if (!write_hello(*conn, Hello{ConnKind::kControl, self_})) return;
  if (!write_msg(*conn, *Msg::control(MsgType::kBoot, self_, kControlApp))) {
    return;
  }
  observer_conn_ = std::move(*conn);

  if (config_.report_proxy.valid() && !proxy_conn_) {
    auto proxy = TcpConn::connect(config_.report_proxy,
                                  config_.connect_timeout);
    if (proxy && write_hello(*proxy, Hello{ConnKind::kControl, self_})) {
      proxy_conn_ = std::move(*proxy);
    }
  }
}

NodeReport Engine::build_report() const {
  NodeReport r;
  r.node = self_;
  r.uptime = clock_->now() - start_time_;
  const TimePoint t = clock_->now();
  std::lock_guard<std::mutex> lock(state_mu_);
  for (const auto& [peer, apps] : up_apps_) {
    const auto it = links_.find(peer);
    if (it == links_.end()) continue;
    const auto& link = *it->second;
    r.upstreams.push_back(LinkReport{peer, link.up_meter().rate(t),
                                     link.up_meter().total_bytes(),
                                     link.up_meter().lost_msgs(),
                                     link.recv_buffer().size(),
                                     link.recv_buffer().capacity()});
  }
  for (const auto& [peer, apps] : down_apps_) {
    const auto it = links_.find(peer);
    if (it == links_.end()) continue;
    const auto& link = *it->second;
    r.downstreams.push_back(LinkReport{peer, link.down_meter().rate(t),
                                       link.down_meter().total_bytes(),
                                       link.down_meter().lost_msgs(),
                                       link.send_buffer().size(),
                                       link.send_buffer().capacity()});
  }
  for (const auto& [app, slot] : sources_) {
    if (slot.active) r.source_apps.push_back(app);
  }
  r.joined_apps.assign(joined_.begin(), joined_.end());
  r.algorithm_status = algorithm_->status();
  r.version = NodeReport::kVersion;
  r.metrics_wire = metrics_.snapshot().serialize();
  return r;
}

void Engine::send_report() {
  if (!observer_conn_ && !proxy_conn_) return;
  reports_sent_.inc();
  const auto report = Msg::text_msg(MsgType::kReport, self_, kControlApp,
                                    build_report().serialize());
  if (proxy_conn_) {
    if (write_msg(*proxy_conn_, *report)) return;
    proxy_conn_.reset();  // fall back to the direct connection
  }
  if (observer_conn_ && !write_msg(*observer_conn_, *report)) {
    observer_conn_.reset();
    next_observer_retry_ = clock_->now() + kObserverRetry;
  }
}

void Engine::trace(std::string_view text) {
  traces_sent_.inc();
  if (!config_.local_trace_path.empty()) {
    // High-volume mode: log locally, collect later (§2.2).
    std::ofstream out(config_.local_trace_path, std::ios::app);
    if (out) {
      out << strf("[%12.6f] %s ", to_seconds(clock_->now()),
                  self_.to_string().c_str())
          << text << '\n';
      return;
    }
  }
  const auto m = Msg::text_msg(MsgType::kTrace, self_, kControlApp, text);
  if (proxy_conn_) {
    if (write_msg(*proxy_conn_, *m)) return;
    proxy_conn_.reset();
  }
  if (observer_conn_) {
    if (write_msg(*observer_conn_, *m)) return;
    observer_conn_.reset();
  }
  IOV_LOG_INFO("trace") << self_.to_string() << ": " << text;
}

// --- The switch -------------------------------------------------------------------

bool Engine::run_switch() {
  flush_control_backlogs();

  if (rr_dirty_) {
    rr_order_.clear();
    std::lock_guard<std::mutex> lock(state_mu_);
    rr_order_.reserve(links_.size());
    for (const auto& [peer, link] : links_) rr_order_.push_back(peer);
    std::sort(rr_order_.begin(), rr_order_.end());
    rr_dirty_ = false;
  }

  bool progress = false;
  const std::size_t n = rr_order_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const NodeId peer = rr_order_[(rr_offset_ + i) % n];
    progress |= pump_link_slot(peer);
  }
  if (n > 0) rr_offset_ = (rr_offset_ + 1) % n;

  for (auto& [app, slot] : sources_) {
    progress |= pump_source_slot(app, slot);
  }
  if (progress) switch_rounds_.inc();
  return progress;
}

bool Engine::pump_link_slot(const NodeId& peer) {
  PeerLink* link = find_link(peer);
  if (link == nullptr) return false;
  Outbox& outbox = link_outbox_[peer];
  bool progress = flush_outbox(outbox);
  if (!outbox.empty()) return progress;

  int weight = config_.default_switch_weight;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const auto weight_it = switch_weight_.find(peer);
    if (weight_it != switch_weight_.end()) weight = weight_it->second;
  }
  // One batch pop per slot visit: up to `weight` messages leave the
  // receive buffer under a single lock, and every popped message is
  // processed this round (WRR order is unchanged; the default weight of
  // 1 makes this identical to the per-message pop).
  switch_batch_.clear();
  const std::size_t popped = link->recv_buffer().try_pop_batch(
      switch_batch_, weight > 0 ? static_cast<std::size_t>(weight) : 0);
  // Reactor mode: a reader parked on this (previously full) buffer can
  // resume now — kick it before processing so decode overlaps the switch.
  if (popped > 0) link->notify_recv_space();
  for (std::size_t w = 0; w < popped; ++w) {
    Inbound& in = switch_batch_[w];
    // Switch latency (paper Fig. 5): receiver-thread enqueue to switch
    // dequeue, covering the time the message sat in the receive buffer.
    const TimePoint t0 = clock_->now();
    switch_latency_.observe(to_seconds(t0 - in.enqueued_at));
    // Data-plane only: a peer is an "upstream" for an app when it feeds
    // us that app's data, not when it merely relays control for it.
    if (in.msg->type() == MsgType::kData) up_apps_[peer].insert(in.msg->app());
    current_outbox_ = &outbox;
    deliver_to_algorithm(in.msg);
    current_outbox_ = nullptr;
    switch_process_.observe(to_seconds(clock_->now() - t0));
    switch_msgs_.inc();
    progress = true;
    flush_outbox(outbox);
  }
  switch_batch_.clear();
  link->update_queue_gauges();
  return progress;
}

bool Engine::pump_source_slot(u32 app, SourceSlot& slot) {
  bool progress = flush_outbox(slot.outbox);
  if (!slot.outbox.empty() || !slot.active || !slot.app_impl) return progress;

  for (int w = 0; w < config_.default_switch_weight; ++w) {
    MsgPtr m = slot.app_impl->next_message(app, self_, clock_->now());
    if (!m) break;
    m->set_seq(slot.next_seq++);
    current_outbox_ = &slot.outbox;
    deliver_to_algorithm(m);
    current_outbox_ = nullptr;
    progress = true;
    flush_outbox(slot.outbox);
    if (!slot.outbox.empty()) break;
  }
  return progress;
}

bool Engine::flush_outbox(Outbox& outbox) {
  if (outbox.empty()) return false;
  bool progress = false;
  std::set<NodeId> stuck;  // preserve per-destination ordering
  auto& entries = outbox.entries;
  for (auto it = entries.begin(); it != entries.end();) {
    const NodeId dest = it->second;
    if (stuck.count(dest) > 0) {
      ++it;
      continue;
    }
    PeerLink* link = get_or_dial(dest);
    if (link == nullptr) {
      // Destination unreachable: drop and notify the algorithm via the
      // usual message path (send() itself never fails, §2.3).
      post(Msg::control(MsgType::kBrokenLink, dest, kControlApp));
      it = entries.erase(it);
      progress = true;
      continue;
    }
    if (link->send_buffer().try_push(it->first)) {
      link->notify_send();
      down_apps_[dest].insert(it->first->app());
      it = entries.erase(it);
      progress = true;
    } else {
      stuck.insert(dest);
      ++it;
    }
  }
  return progress;
}

void Engine::flush_control_backlogs() {
  for (auto it = control_backlog_.begin(); it != control_backlog_.end();) {
    auto& queue = it->second;
    PeerLink* link = find_link(it->first);
    if (link == nullptr) {
      it = control_backlog_.erase(it);
      continue;
    }
    bool pushed = false;
    while (!queue.empty() && link->send_buffer().try_push(queue.front())) {
      queue.pop_front();
      pushed = true;
    }
    if (pushed) link->notify_send();
    it = queue.empty() ? control_backlog_.erase(it) : std::next(it);
  }
}

// --- EngineApi --------------------------------------------------------------------

void Engine::send(const MsgPtr& m, const NodeId& dest) {
  if (!m || !dest.valid()) return;
  if (dest == self_) {
    post(m);
    return;
  }
  // §2.3: a received non-data message must be cloned before re-sending.
  assert(!(current_msg_ == m.get() && m->type() != MsgType::kData) &&
         "clone() required before re-sending a non-data message");

  if (m->type() == MsgType::kData && current_outbox_ != nullptr) {
    current_outbox_->entries.push_back({m, dest});
    return;
  }

  PeerLink* link = get_or_dial(dest);
  if (link == nullptr) {
    post(Msg::control(MsgType::kBrokenLink, dest, kControlApp));
    return;
  }
  if (link->send_buffer().try_push(m)) {
    link->notify_send();
    // Only data messages define the per-app up/downstream topology the
    // Domino walks (see SimEngine::send for the full rationale).
    if (m->type() == MsgType::kData) down_apps_[dest].insert(m->app());
  } else {
    control_backlog_[dest].push_back(m);
  }
}

std::vector<NodeId> Engine::upstreams() const {
  std::vector<NodeId> out;
  out.reserve(up_apps_.size());
  for (const auto& [peer, apps] : up_apps_) out.push_back(peer);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> Engine::downstreams() const {
  std::vector<NodeId> out;
  out.reserve(down_apps_.size());
  for (const auto& [peer, apps] : down_apps_) out.push_back(peer);
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<LinkStats> Engine::upstream_stats(const NodeId& peer) const {
  PeerLink* link = find_link(peer);
  if (link == nullptr) return std::nullopt;
  LinkStats s;
  s.peer = peer;
  s.rate_bps = link->up_meter().rate(clock_->now());
  s.total_bytes = link->up_meter().total_bytes();
  s.total_msgs = link->up_meter().total_msgs();
  s.lost_bytes = link->up_meter().lost_bytes();
  s.lost_msgs = link->up_meter().lost_msgs();
  s.buffer_len = link->recv_buffer().size();
  s.buffer_cap = link->recv_buffer().capacity();
  return s;
}

std::optional<LinkStats> Engine::downstream_stats(const NodeId& peer) const {
  PeerLink* link = find_link(peer);
  if (link == nullptr) return std::nullopt;
  LinkStats s;
  s.peer = peer;
  s.rate_bps = link->down_meter().rate(clock_->now());
  s.total_bytes = link->down_meter().total_bytes();
  s.total_msgs = link->down_meter().total_msgs();
  s.lost_bytes = link->down_meter().lost_bytes();
  s.lost_msgs = link->down_meter().lost_msgs();
  s.buffer_len = link->send_buffer().size();
  s.buffer_cap = link->send_buffer().capacity();
  return s;
}

void Engine::deliver_local(const MsgPtr& m) {
  std::shared_ptr<Application> app_impl;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    const auto it = sources_.find(m->app());
    if (it != sources_.end()) app_impl = it->second.app_impl;
  }
  if (app_impl) app_impl->deliver(m, clock_->now());
}

bool Engine::is_source(u32 app) const {
  std::lock_guard<std::mutex> lock(state_mu_);
  const auto it = sources_.find(app);
  return it != sources_.end() && it->second.active;
}

void Engine::set_switch_weight(const NodeId& peer, int weight) {
  std::lock_guard<std::mutex> lock(state_mu_);
  switch_weight_[peer] = std::max(weight, 1);
}

void Engine::close_link(const NodeId& peer) {
  handle_link_failure(peer, /*deliberate=*/true);
}

void Engine::shutdown() {
  stop_requested_.store(true, std::memory_order_release);
}

}  // namespace iov::engine
