// Engine start-up configuration. Everything an iOverlay node can be
// parameterized with at launch (paper §2.2): port, buffer capacities,
// emulated bandwidth, and the observer's address for bootstrap.
#pragma once

#include "common/node_id.h"
#include "common/types.h"
#include "net/bandwidth.h"

namespace iov::engine {

struct EngineConfig {
  /// TCP port to publicize; 0 lets the engine pick an available port
  /// (paper §2.2). Virtualized nodes on one host simply use distinct
  /// ports.
  u16 port = 0;

  /// IPv4 address other nodes reach this node at, host byte order.
  /// Defaults to loopback, the virtualized single-server deployment.
  u32 advertised_ip = 0x7f000001;

  /// Bind only to 127.0.0.1 (safe default for local experiments).
  bool loopback_only = true;

  /// Capacity, in messages, of each receiver buffer (paper experiments
  /// use 5 for the back-pressure runs and 10000 for the large-buffer
  /// runs).
  std::size_t recv_buffer_msgs = 10;

  /// Capacity, in messages, of each sender buffer.
  std::size_t send_buffer_msgs = 10;

  /// Emulated bandwidth limits at start-up; adjustable at runtime.
  BandwidthSpec bandwidth;

  /// The observer's address; an invalid NodeId runs the node standalone
  /// (no bootstrap, no status reports) — handy for unit tests.
  NodeId observer;

  /// Optional report relay (observer::Proxy). When set, kReport and
  /// kTrace messages go here instead of the direct observer connection
  /// (paper §2.2, the firewall/fan-in proxy); bootstrap and control
  /// traffic always uses the direct connection.
  NodeId report_proxy;

  /// Period of status reports to the observer.
  Duration report_interval = seconds(1.0);

  /// Period of kUp/DownThroughput measurements delivered to the algorithm.
  Duration throughput_interval = millis(500);

  /// If > 0, an incoming link with no traffic for this long while other
  /// links are active is treated as failed (§2.2 failure detection by
  /// inactivity). Disabled by default.
  Duration idle_failure_timeout = 0;

  /// Timeout for dialing a peer.
  Duration connect_timeout = millis(500);

  /// Default switch weight of every input slot (messages per round;
  /// the weighted-round-robin weights of §2.2). Tunable per upstream at
  /// runtime via Engine::set_switch_weight.
  int default_switch_weight = 1;

  /// If > 0, caps each persistent connection's kernel socket buffers
  /// (SO_SNDBUF + SO_RCVBUF) at roughly this many bytes. Modern kernels
  /// auto-tune buffers into the megabytes, which masks back-pressure at
  /// emulated-KB/s rates for a long time; bandwidth-emulation experiments
  /// set this to a 2004-era 64 KB so Fig 6's dynamics converge within
  /// seconds. 0 leaves the system defaults (auto-tuning).
  ///
  /// The default is a locked 256 KB, not 0 (DESIGN.md §8): an explicit
  /// size locks the buffers (SOCK_RCVBUF_LOCK), exempting them from the
  /// kernel's window clamp. Under auto-tuning a saturated loopback link
  /// can hoard a multi-megabyte send buffer, trip that clamp, and shrink
  /// the peer's receive window below the loopback MSS, collapsing the
  /// link into RTO-paced retransmission stalls (~100 msgs/s) — a mode
  /// the batched wire path's 32-message bursts reach readily, stalling
  /// even control-plane traffic (kBrokenSource behind a clamped
  /// backlog). 256 KB is the smallest locked size that keeps two
  /// loopback-MSS segments in flight; smaller locked sizes reintroduce
  /// the stall from the other side (window below one MSS).
  int socket_buffer_bytes = 256 * 1024;

  /// Maximum messages a sender thread drains from its buffer and flushes
  /// to the wire in one scatter-gather batch (DESIGN.md §8). Pacing stays
  /// per-message: a batch is split and flushed at every throttle boundary,
  /// so bandwidth emulation is unaffected. 1 restores the per-message
  /// write path (still a single writev per message).
  std::size_t wire_batch_msgs = 32;

  /// Receiver threads decode frames in bulk via net::FrameReader (one
  /// recv syscall yields many messages, payloads are zero-copy slices of
  /// the chunk). false restores the legacy read_msg path: two recv
  /// syscalls and one allocation per message. The wire format is
  /// identical either way, so mixed settings interoperate.
  bool wire_bulk_reader = true;

  /// Frames larger than the reader chunk are recv'd directly into
  /// recycled slabs from the engine's SlabPool — zero payload copies and
  /// zero per-message payload allocations on the large-frame path
  /// (DESIGN.md §8; iov_pool_slab_acquires_total tracks hit rate).
  /// false restores the per-message dedicated allocation, the legacy
  /// interop baseline. Only meaningful with wire_bulk_reader.
  bool wire_payload_pool = true;

  /// When > 0, sender flushes that contain a frame with at least this
  /// many payload bytes are sent with MSG_ZEROCOPY: the kernel transmits
  /// straight from the message buffers (pinned until the error-queue
  /// completion is reaped) instead of copying into the socket buffer.
  /// Worthwhile for ≥16 KB frames on real NICs; loopback always degrades
  /// to an internal copy (the completion reports it, counted in
  /// iov_link_zerocopy_copied_total), so the default is off. Falls back
  /// to plain sends automatically when the kernel lacks SO_ZEROCOPY or
  /// signals ENOBUFS. Wire bytes are identical either way.
  std::size_t wire_zerocopy_min_bytes = 0;

  /// Size of the shared epoll reactor pool driving every PeerLink socket
  /// (DESIGN.md §9). The pool is process-wide — the first engine started
  /// fixes its size, and all reactor-mode engines in the process share
  /// it, so total OS threads are `pool + one engine thread per node`
  /// regardless of how many links exist.
  ///   < 0  auto: min(4, hardware_concurrency) workers (the default)
  ///     0  legacy thread-per-link mode (two blocking threads per peer
  ///        connection) — the interop/rollback baseline
  ///   > 0  exactly this many workers
  /// Reactor and legacy nodes interoperate freely: the wire bytes are
  /// identical, only the threading model differs. Note the reactor send
  /// path ignores wire_zerocopy_min_bytes (MSG_ZEROCOPY completion
  /// reaping needs a dedicated sender thread to be worth it).
  int reactor_threads = -1;

  /// When set, kTrace output is appended to this local file *instead of*
  /// being sent to the observer ("if the volume of traces becomes large,
  /// it may be more favorable to log them locally at each node, in which
  /// case iOverlay provides scripts to collect them", §2.2 — see
  /// tools/collect_traces.sh).
  std::string local_trace_path;

  /// Seed for this node's deterministic random stream.
  u64 seed = 1;
};

}  // namespace iov::engine
