#include "engine/report.h"

#include "common/strings.h"

namespace iov::engine {

namespace {

std::string serialize_links(const std::vector<LinkReport>& links) {
  std::string out;
  for (const auto& l : links) {
    if (!out.empty()) out += ';';
    out += strf("%s,%.1f,%llu,%llu,%zu,%zu", l.peer.to_string().c_str(),
                l.rate_bps, static_cast<unsigned long long>(l.total_bytes),
                static_cast<unsigned long long>(l.lost_msgs), l.buffer_len,
                l.buffer_cap);
  }
  return out;
}

bool parse_links(std::string_view text, std::vector<LinkReport>* out) {
  if (trim(text).empty()) return true;
  for (const auto& entry : split(text, ';')) {
    const auto fields = split(entry, ',');
    if (fields.size() != 6) return false;
    LinkReport l;
    const auto peer = NodeId::parse(fields[0]);
    if (!peer) return false;
    l.peer = *peer;
    l.rate_bps = std::strtod(fields[1].c_str(), nullptr);
    unsigned long long v = 0;
    if (!parse_u64(fields[2], ~0ULL, &v)) return false;
    l.total_bytes = v;
    if (!parse_u64(fields[3], ~0ULL, &v)) return false;
    l.lost_msgs = v;
    if (!parse_u64(fields[4], ~0ULL, &v)) return false;
    l.buffer_len = static_cast<std::size_t>(v);
    if (!parse_u64(fields[5], ~0ULL, &v)) return false;
    l.buffer_cap = static_cast<std::size_t>(v);
    out->push_back(l);
  }
  return true;
}

std::string serialize_apps(const std::vector<u32>& apps) {
  std::string out;
  for (const u32 app : apps) {
    if (!out.empty()) out += ';';
    out += strf("%u", app);
  }
  return out;
}

bool parse_apps(std::string_view text, std::vector<u32>* out) {
  if (trim(text).empty()) return true;
  for (const auto& entry : split(text, ';')) {
    unsigned long long v = 0;
    if (!parse_u64(entry, 0xffffffffULL, &v)) return false;
    out->push_back(static_cast<u32>(v));
  }
  return true;
}

}  // namespace

std::string NodeReport::serialize() const {
  std::string out;
  out += "node=" + node.to_string() + '\n';
  out += strf("uptime=%lld\n", static_cast<long long>(uptime));
  out += "up=" + serialize_links(upstreams) + '\n';
  out += "down=" + serialize_links(downstreams) + '\n';
  out += "src=" + serialize_apps(source_apps) + '\n';
  out += "joined=" + serialize_apps(joined_apps) + '\n';
  out += "alg=" + algorithm_status + '\n';
  if (!metrics_wire.empty()) {
    // v2 extension. Emitted last so v1-era tooling that truncates on the
    // first unknown key still sees every v1 field.
    out += strf("ver=%d\n", kVersion);
    out += "metrics=" + metrics_wire + '\n';
  }
  return out;
}

std::optional<NodeReport> NodeReport::parse(std::string_view text) {
  NodeReport r;
  bool saw_node = false;
  for (const auto& raw_line : split(text, '\n')) {
    const auto line = trim(raw_line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) return std::nullopt;
    const auto key = line.substr(0, eq);
    const auto value = line.substr(eq + 1);
    if (key == "node") {
      const auto id = NodeId::parse(value);
      if (!id) return std::nullopt;
      r.node = *id;
      saw_node = true;
    } else if (key == "uptime") {
      r.uptime = std::strtoll(std::string(value).c_str(), nullptr, 10);
    } else if (key == "up") {
      if (!parse_links(value, &r.upstreams)) return std::nullopt;
    } else if (key == "down") {
      if (!parse_links(value, &r.downstreams)) return std::nullopt;
    } else if (key == "src") {
      if (!parse_apps(value, &r.source_apps)) return std::nullopt;
    } else if (key == "joined") {
      if (!parse_apps(value, &r.joined_apps)) return std::nullopt;
    } else if (key == "alg") {
      r.algorithm_status = std::string(value);
    } else if (key == "ver") {
      unsigned long long v = 0;
      if (parse_u64(value, 0xffffULL, &v)) r.version = static_cast<int>(v);
    } else if (key == "metrics") {
      r.metrics_wire = std::string(value);
    }
    // Unknown keys are skipped: future versions may append more fields.
  }
  if (!saw_node) return std::nullopt;
  return r;
}

}  // namespace iov::engine
