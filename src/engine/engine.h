// The iOverlay engine — an application-layer message switch (paper §2.2,
// Fig. 4, Table 1).
//
// Threads:
//   * one engine thread running the event loop in engine_main(): it owns
//     the listener and control connections (polled non-blocking, the
//     paper's select() on the publicized port), fires timers, produces
//     periodic QoS reports, and runs the switch — which is the only place
//     Algorithm::process() is ever invoked, giving algorithms the paper's
//     single-threaded guarantee;
//   * one receiver + one sender thread per persistent peer connection
//     (see peer_link.h).
//
// The switch pulls messages from input slots (each upstream link's
// receive buffer, plus one virtual slot per locally deployed application
// source) in weighted round-robin order, hands each to the algorithm, and
// flushes the sends the algorithm issued into the per-downstream sender
// buffers. A message that could only be forwarded to a subset of its
// destinations stays in its slot's outbox, "labeled with its set of
// remaining senders, so that they may be tried in the next round" (§2.2);
// a slot with a non-empty outbox does not accept new input, which is what
// propagates back-pressure from a slow downstream all the way into the
// upstream TCP connections.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <set>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "algorithm/algorithm.h"
#include "algorithm/application.h"
#include "algorithm/engine_api.h"
#include "common/clock.h"
#include "engine/config.h"
#include "engine/peer_link.h"
#include "engine/report.h"
#include "net/socket.h"
#include "obs/metrics.h"

namespace iov::reactor {
class Reactor;
}  // namespace iov::reactor

namespace iov::engine {

/// Scopes accepted by kSetBandwidth control messages (param0); param1 is
/// the rate in bytes/second (0 = unlimited) and the text argument names
/// the peer for the link scopes.
enum BandwidthScope : i32 {
  kBwNodeTotal = 0,
  kBwNodeUp = 1,
  kBwNodeDown = 2,
  kBwLinkUp = 3,
  kBwLinkDown = 4,
};

class Engine final : public EngineApi, public InternalSink {
 public:
  /// The engine owns the algorithm; bind() happens on the engine thread.
  Engine(EngineConfig config, std::unique_ptr<Algorithm> algorithm);
  ~Engine() override;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- Lifecycle (driver-side, thread safe) ----------------------------------

  /// Binds the listener, connects to the observer (if configured) and
  /// sends the bootstrap request, then spawns the engine thread. Returns
  /// false if the port could not be bound.
  bool start();

  /// Requests graceful termination (equivalent to receiving
  /// kTerminateNode).
  void stop();

  /// Blocks until the engine thread has exited and all links are joined.
  void join();

  bool running() const { return running_.load(std::memory_order_acquire); }

  // --- Driver-side configuration (before start()) -----------------------------

  /// Registers the application implementation for session `app`. Sources
  /// are activated later by kSDeploy (or deploy_source), receivers by
  /// kSJoin.
  void register_app(u32 app, std::shared_ptr<Application> application);

  /// Pre-start access to the algorithm for topology configuration.
  Algorithm& algorithm_for_setup() { return *algorithm_; }

  // --- Driver-side interaction (after start(), thread safe) -------------------

  /// Injects a message as if it had arrived on the publicized port — the
  /// same path observer commands and link-thread notifications take
  /// (this is the InternalSink implementation).
  void post(MsgPtr m) override;

  /// Convenience wrappers that post the corresponding observer control
  /// message.
  void deploy_source(u32 app);
  void terminate_source(u32 app);
  void join_app(u32 app, std::string_view arg = {});

  /// Sets the weighted-round-robin weight of the input slot fed by
  /// `peer` — how many messages the switch drains from it per round
  /// ("dynamically tunable weights", §2.2). Thread safe; weight < 1 is
  /// clamped to 1.
  void set_switch_weight(const NodeId& peer, int weight);

  /// Point-in-time view of this node's links, for harnesses and tests.
  struct LinkSnapshot {
    NodeId peer;
    LinkStats up;
    LinkStats down;
  };
  struct Snapshot {
    NodeId node;
    std::vector<LinkSnapshot> links;
    std::vector<u32> source_apps;
    std::vector<u32> joined_apps;
  };
  Snapshot snapshot() const;

  /// This node's metric registry (docs/METRICS.md). Thread safe; tools
  /// and benches read it via snapshot(), the engine ships it to the
  /// observer inside v2 kReport payloads.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  // --- EngineApi (engine thread only) -----------------------------------------

  void send(const MsgPtr& m, const NodeId& dest) override;
  NodeId self() const override { return self_; }
  TimePoint now() const override { return clock_->now(); }
  Rng& rng() override { return rng_; }
  void set_timer(Duration delay, i32 timer_id) override;
  std::vector<NodeId> upstreams() const override;
  std::vector<NodeId> downstreams() const override;
  std::optional<LinkStats> upstream_stats(const NodeId& peer) const override;
  std::optional<LinkStats> downstream_stats(const NodeId& peer) const override;
  BandwidthEmulator& bandwidth() override { return bandwidth_; }
  void deliver_local(const MsgPtr& m) override;
  bool is_source(u32 app) const override;
  void trace(std::string_view text) override;
  void close_link(const NodeId& peer) override;
  void shutdown() override;

 private:
  struct Outbox {
    /// (message, remaining destination) pairs awaiting sender-buffer space.
    std::vector<std::pair<MsgPtr, NodeId>> entries;
    bool empty() const { return entries.empty(); }
  };

  struct SourceSlot {
    std::shared_ptr<Application> app_impl;
    bool active = false;
    u32 next_seq = 0;
    Outbox outbox;
  };

  // InternalSink (called from link threads).
  void wake() override;

  void engine_main();
  void poll_once(Duration timeout);
  void handle_accept();
  void adopt_persistent(const NodeId& peer, TcpConn conn);
  void dispatch(const MsgPtr& m);
  void handle_link_failure(const NodeId& peer, bool deliberate);
  void propagate_broken_source(u32 app, const NodeId& origin);
  void fire_due_timers();
  void run_periodic();
  bool run_switch();
  bool pump_link_slot(const NodeId& peer);
  bool pump_source_slot(u32 app, SourceSlot& slot);
  bool flush_outbox(Outbox& outbox);
  void flush_control_backlogs();
  PeerLink* get_or_dial(const NodeId& dest);
  PeerLink* find_link(const NodeId& peer) const;
  void remove_link(const NodeId& peer);
  void apply_set_bandwidth(const MsgPtr& m);
  void log_fd_exhaustion(const char* where);
  void send_report();
  NodeReport build_report() const;
  void connect_observer();
  void deliver_to_algorithm(const MsgPtr& m);

  EngineConfig config_;
  std::unique_ptr<Algorithm> algorithm_;
  const Clock* clock_;
  Rng rng_;
  BandwidthEmulator bandwidth_;

  // Observability: registry first, then cached hot-path handles (reference
  // members, so declaration order matters for the ctor init list).
  obs::MetricsRegistry metrics_;
  obs::Histogram& switch_latency_;   ///< recv-buffer enqueue -> switch pop
  obs::Histogram& switch_process_;   ///< algorithm process + outbox flush
  obs::Counter& switch_msgs_;
  obs::Counter& switch_rounds_;
  obs::Counter& ctrl_msgs_;
  obs::Counter& timers_fired_;
  obs::Counter& reports_sent_;
  obs::Counter& traces_sent_;
  obs::Counter& link_closes_;    ///< deliberate teardowns (close_link/sever)
  obs::Counter& link_failures_;  ///< crash detections (EOF, error, timeout)
  obs::Gauge& engine_threads_;   ///< OS threads this node owns (not the pool)
  obs::Gauge& engine_open_fds_;  ///< fds this node holds open

  NodeId self_;
  TcpListener listener_;
  TimePoint start_time_ = 0;

  /// The process-shared epoll pool (DESIGN.md §9); null when
  /// config.reactor_threads == 0 (legacy thread-per-link mode).
  reactor::Reactor* reactor_ = nullptr;

  /// While now() < this, the listener is left out of the poll set —
  /// fd-exhaustion backoff (EMFILE/ENFILE on accept). Engine thread only.
  TimePoint accept_backoff_until_ = 0;
  TimePoint last_fd_warn_ = 0;  ///< throttles the fd-exhaustion warning

  /// Recycled large-frame payload slabs shared by every link's receiver
  /// (DESIGN.md §8). Declared before links_ so it outlives them; the
  /// slabs themselves may outlive both (shared pool core).
  SlabPool slab_pool_;

  // Links and app registry; state_mu_ guards map *structure* so snapshot()
  // can read from other threads (contents are engine-thread-owned or
  // internally synchronized).
  mutable std::mutex state_mu_;
  std::unordered_map<NodeId, std::unique_ptr<PeerLink>> links_;
  std::map<u32, SourceSlot> sources_;
  std::set<u32> joined_;

  // Engine-thread-only state (switch_weight_ is additionally guarded by
  // state_mu_ so drivers can tune it at runtime).
  std::unordered_map<NodeId, Outbox> link_outbox_;
  std::unordered_map<NodeId, int> switch_weight_;
  std::unordered_map<NodeId, std::deque<MsgPtr>> control_backlog_;
  std::unordered_map<NodeId, std::set<u32>> up_apps_;    // peer -> apps recvd
  std::unordered_map<NodeId, std::set<u32>> down_apps_;  // peer -> apps sent
  std::set<std::pair<u32, NodeId>> broken_seen_;  // Domino dedup
  std::vector<NodeId> rr_order_;
  std::vector<Inbound> switch_batch_;  // scratch for pump_link_slot
  std::size_t rr_offset_ = 0;
  bool rr_dirty_ = true;
  Outbox* current_outbox_ = nullptr;
  const Msg* current_msg_ = nullptr;

  struct TimerEntry {
    TimePoint due;
    i32 id;
    u64 seq;
    bool operator>(const TimerEntry& o) const {
      return std::tie(due, seq) > std::tie(o.due, o.seq);
    }
  };
  std::priority_queue<TimerEntry, std::vector<TimerEntry>,
                      std::greater<TimerEntry>>
      timers_;
  u64 timer_seq_ = 0;

  // Observer plane (engine thread only).
  std::optional<TcpConn> observer_conn_;
  std::optional<TcpConn> proxy_conn_;
  TimePoint next_report_ = 0;
  TimePoint next_throughput_ = 0;
  TimePoint next_observer_retry_ = 0;

  // Internal message queue (link threads -> engine thread).
  std::mutex internal_mu_;
  std::deque<MsgPtr> internal_q_;
  Fd wake_fd_;

  // Transient control connections accepted on the publicized port.
  std::vector<TcpConn> control_conns_;

  std::thread engine_thread_;
  std::atomic<bool> stop_requested_{false};
  std::atomic<bool> running_{false};
  bool started_ = false;
};

}  // namespace iov::engine
