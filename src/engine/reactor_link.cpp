#include "engine/reactor_link.h"

#include <sys/epoll.h>

#include <algorithm>

#include "common/logging.h"

namespace iov::engine {

ReactorLink::ReactorLink(PeerLink& link, reactor::Worker& worker,
                         obs::Histogram& loop_lag, bool dial_pending,
                         Duration connect_timeout)
    : link_(link),
      worker_(worker),
      loop_lag_(loop_lag),
      dial_pending_(dial_pending),
      connect_timeout_(connect_timeout),
      reader_(link.conn_, FrameReader::kDefaultChunkBytes, link.pool_) {}

int ReactorLink::fd() const { return link_.conn_.fd(); }

// --- Engine-thread API ------------------------------------------------------

void ReactorLink::start() {
  worker_.submit([this] { ws_start(); }, &loop_lag_);
}

void ReactorLink::request_stop() {
  if (stop_requested_.exchange(true)) return;
  // FIFO task order is the teardown guarantee: every notify task submitted
  // before this one runs first, so after this task no worker code touches
  // the link.
  worker_.submit([this] {
    detach();
    std::lock_guard<std::mutex> lock(stop_mu_);
    stopped_ = true;
    stop_cv_.notify_all();  // under the lock: the waiter may destroy us
  });
}

void ReactorLink::wait_stopped() {
  if (!stop_requested_.load()) return;
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [&] { return stopped_; });
}

void ReactorLink::notify_send() {
  if (send_scheduled_.exchange(true)) return;
  worker_.submit(
      [this] {
        send_scheduled_.store(false);
        pump_send();
      },
      &loop_lag_);
}

void ReactorLink::notify_recv_space() {
  if (!recv_blocked_.exchange(false)) return;
  worker_.submit([this] { resume_recv(); }, &loop_lag_);
}

// --- Worker-thread state machine --------------------------------------------

void ReactorLink::ws_start() {
  if (detached_) return;
  if (!link_.conn_.valid()) {
    fail(MsgType::kPeerFailed);
    return;
  }
  if (dial_pending_) {
    state_ = State::kConnecting;
    if (!worker_.add_fd(fd(), EPOLLOUT, this)) {
      fail(MsgType::kPeerFailed);
      return;
    }
    registered_ = true;
    interest_ = EPOLLOUT;
    worker_.schedule_after(
        connect_timeout_, this,
        [this] {
          if (!detached_ && state_ == State::kConnecting) {
            errno = ETIMEDOUT;
            fail(MsgType::kPeerFailed);
          }
        },
        &loop_lag_);
  } else {
    // Accepted socket, hello already consumed by the engine's blocking
    // handshake read: go straight to established.
    link_.conn_.set_nonblocking(true);
    state_ = State::kEstablished;
    if (!worker_.add_fd(fd(), EPOLLIN, this)) {
      fail(MsgType::kPeerFailed);
      return;
    }
    registered_ = true;
    interest_ = EPOLLIN;
    pump_send();  // the engine may have queued sends before we registered
  }
}

void ReactorLink::ws_connect_ready() {
  worker_.cancel_timers(this);  // the connect deadline
  if (!link_.conn_.finish_connect()) {
    fail(MsgType::kPeerFailed);
    return;
  }
  state_ = State::kHandshaking;
  const auto hello = encode_hello(Hello{ConnKind::kPersistent, link_.self_});
  raw_head_.assign(hello.begin(), hello.end());
  raw_off_ = 0;
  update_interest();
  if (flush_wire() && state_ == State::kEstablished) {
    pump_send();
    pump_recv();
  }
}

void ReactorLink::on_event(u32 events) {
  if (detached_) return;
  if (state_ == State::kConnecting) {
    // EPOLLOUT (or ERR/HUP) resolves the pending connect either way.
    ws_connect_ready();
    return;
  }
  if ((events & (EPOLLERR | EPOLLHUP)) != 0 && read_parked() &&
      !write_blocked_) {
    // A dead socket reports ERR/HUP on every epoll_wait even with an empty
    // interest mask; while parked (pacing timer or full buffer) we cannot
    // consume the error, so leave the epoll set entirely to avoid a busy
    // loop. update_interest() re-adds the fd on resume and the resumed
    // read then observes the error.
    if (registered_ && !suspended_) {
      worker_.del_fd(fd());
      suspended_ = true;
    }
    return;
  }
  if ((events & EPOLLOUT) != 0) {
    if (flush_wire() && state_ == State::kEstablished) pump_send();
    if (detached_) return;
  }
  if ((events & (EPOLLIN | EPOLLERR | EPOLLHUP)) != 0) pump_recv();
}

// --- Send path --------------------------------------------------------------

void ReactorLink::pump_send() {
  if (detached_ || state_ != State::kEstablished) return;
  if (!flush_wire()) return;  // backlogged (EPOLLOUT armed) or dead
  if (send_paced_) return;    // the pacing timer owns progress
  bool popped_any = false;
  while (!link_.stopping_.load(std::memory_order_relaxed)) {
    if (popped_idx_ >= popped_.size()) {
      popped_.clear();
      popped_idx_ = 0;
      if (link_.send_buffer_.try_pop_batch(popped_, link_.wire_batch_msgs_) ==
          0) {
        break;
      }
      popped_any = true;
      link_.send_depth_.set(static_cast<i64>(link_.send_buffer_.size()));
    }
    while (popped_idx_ < popped_.size()) {
      MsgPtr& m = popped_[popped_idx_];
      const u32 loss_ppm =
          link_.send_loss_ppm_.load(std::memory_order_relaxed);
      if (loss_ppm > 0 && link_.loss_rng_.below(1000000) < loss_ppm) {
        // Injected wire loss (kSetLoss): the message vanishes before
        // pacing, accounted like any other sender-side drop.
        link_.count_send_loss(*m);
        m.reset();
        ++popped_idx_;
        link_.sink_.wake();
        continue;
      }
      const Duration wait = link_.bandwidth_.acquire_send(
          link_.peer_, m->wire_size(), link_.clock_.now());
      if (wait > 0) {
        // Pacing boundary: everything accumulated so far cleared the
        // token bucket with zero wait, so flush it before the emulated
        // sleep — batching never shifts a message past its departure
        // time. The sleep itself becomes a reactor timer; the message
        // stays parked in popped_ until it fires.
        stage_pending();
        flush_wire();
        if (detached_) return;
        link_.send_throttle_wait_.observe_duration(wait);
        send_paced_ = true;
        worker_.schedule_after(
            wait, this, [this] { on_send_pace_done(); }, &loop_lag_);
        if (popped_any) link_.sink_.wake();
        return;
      }
      pending_.push_back(std::move(m));
      ++popped_idx_;
    }
    stage_pending();
    if (!flush_wire()) break;  // EAGAIN: EPOLLOUT resumes; error: detached
  }
  if (detached_) return;
  stage_pending();
  flush_wire();
  if (popped_any) link_.sink_.wake();
}

void ReactorLink::on_send_pace_done() {
  send_paced_ = false;
  if (detached_) return;
  if (popped_idx_ < popped_.size() && popped_[popped_idx_]) {
    pending_.push_back(std::move(popped_[popped_idx_]));
    ++popped_idx_;
  }
  pump_send();
}

void ReactorLink::stage_pending() {
  if (pending_.empty()) return;
  link_.down_flush_msgs_.observe(static_cast<double>(pending_.size()));
  for (auto& m : pending_) {
    wire_headers_.push_back(codec::encode_header(*m));
    wire_msgs_.push_back(std::move(m));
  }
  pending_.clear();
}

bool ReactorLink::flush_wire() {
  if (detached_) return false;
  // The raw handshake bytes precede any frame.
  while (raw_off_ < raw_head_.size()) {
    iovec v{raw_head_.data() + raw_off_, raw_head_.size() - raw_off_};
    const long n = link_.conn_.writev_some(&v, 1);
    if (n == 0) {
      write_blocked_ = true;
      update_interest();
      return false;
    }
    if (n < 0) {
      fail(MsgType::kPeerFailed);  // handshake never made it out
      return false;
    }
    raw_off_ += static_cast<std::size_t>(n);
  }
  if (state_ == State::kHandshaking) {
    state_ = State::kEstablished;
    raw_head_.clear();
    raw_off_ = 0;
  }
  std::size_t completed = 0;
  bool drained = true;
  while (!wire_msgs_.empty()) {
    // Same shape as write_batch: up to kMaxWireBatch frames, two iovecs
    // each, one sendmsg — byte-identical on the wire, so reactor and
    // legacy peers interoperate. Only the front frame can be partial.
    std::array<iovec, 2 * kMaxWireBatch> iov;
    int iovcnt = 0;
    const std::size_t take = std::min(wire_msgs_.size(), kMaxWireBatch);
    std::size_t skip = wire_off_;
    for (std::size_t i = 0; i < take; ++i) {
      const Msg& m = *wire_msgs_[i];
      const u8* hdr = wire_headers_[i].data();
      std::size_t hdr_len = wire_headers_[i].size();
      const u8* pay =
          m.payload_size() > 0 ? m.payload()->data() : nullptr;
      std::size_t pay_len = m.payload_size();
      if (skip > 0) {
        const std::size_t h = std::min(skip, hdr_len);
        hdr += h;
        hdr_len -= h;
        skip -= h;
        const std::size_t p = std::min(skip, pay_len);
        pay += p;
        pay_len -= p;
        skip -= p;
      }
      if (hdr_len > 0) {
        iov[iovcnt++] = {const_cast<u8*>(hdr), hdr_len};
      }
      if (pay_len > 0) {
        iov[iovcnt++] = {const_cast<u8*>(pay), pay_len};
      }
    }
    u64 sys = 0;
    const long n = link_.conn_.writev_some(iov.data(), iovcnt, &sys);
    link_.down_syscalls_.inc(sys);
    if (n == 0) {
      write_blocked_ = true;
      update_interest();
      drained = false;
      break;
    }
    if (n < 0) {
      if (completed > 0) link_.sink_.wake();
      fail(MsgType::kSendFailed);
      return false;
    }
    wire_off_ += static_cast<std::size_t>(n);
    const TimePoint now = link_.clock_.now();
    while (!wire_msgs_.empty()) {
      const std::size_t frame = wire_msgs_.front()->wire_size();
      if (wire_off_ < frame) break;
      wire_off_ -= frame;
      link_.down_meter_.record(frame, now);
      link_.down_bytes_.inc(frame);
      link_.down_msgs_.inc();
      wire_msgs_.pop_front();
      wire_headers_.pop_front();
      ++completed;
    }
  }
  if (drained && write_blocked_) {
    write_blocked_ = false;
    update_interest();
  }
  if (completed > 0) link_.sink_.wake();
  return drained;
}

// --- Receive path -----------------------------------------------------------

void ReactorLink::pump_recv() {
  if (detached_ || state_ == State::kConnecting || read_parked()) return;
  while (!link_.stopping_.load(std::memory_order_relaxed)) {
    MsgPtr m = reader_.next();
    const u64 s = reader_.syscalls();
    if (s != seen_syscalls_) {
      // The reader went back to the socket, so the frames decoded since
      // the previous refill formed one bulk batch.
      if (refill_msgs_ > 0) {
        link_.up_flush_msgs_.observe(static_cast<double>(refill_msgs_));
      }
      link_.up_syscalls_.inc(s - seen_syscalls_);
      seen_syscalls_ = s;
      refill_msgs_ = 0;
    }
    if (m) ++refill_msgs_;
    if (!m) {
      flush_inbound();  // deliver what already decoded before any verdict
      if (reader_.would_block()) return;  // EPOLLIN resumes the pump
      fail(MsgType::kPeerFailed);         // EOF, socket error, corrupt frame
      return;
    }

    // Download-side bandwidth emulation: pace before the message becomes
    // visible. Instead of sleeping we park the message and stop reading;
    // the kernel receive window fills and TCP pushes back on the sender —
    // exactly the "back pressure" of §2.4. A non-zero wait is a pacing
    // boundary: everything decoded so far becomes visible before the
    // emulated delay.
    const Duration wait = link_.bandwidth_.acquire_recv(
        link_.peer_, m->wire_size(), link_.clock_.now());
    if (wait > 0) {
      flush_inbound();
      if (detached_) return;
      link_.recv_throttle_wait_.observe_duration(wait);
      paced_ = std::move(m);
      update_interest();
      worker_.schedule_after(
          wait, this, [this] { on_recv_pace_done(); }, &loop_lag_);
      return;
    }
    account_and_route(std::move(m));
    if (detached_ || read_parked()) return;
  }
}

void ReactorLink::on_recv_pace_done() {
  if (detached_ || !paced_) return;
  MsgPtr m = std::move(paced_);
  account_and_route(std::move(m));
  if (detached_ || read_parked()) return;
  update_interest();
  pump_recv();
}

void ReactorLink::resume_recv() {
  if (detached_) return;
  if (!flush_inbound()) return;  // still full: re-parked, flag re-set
  if (held_ctrl_) link_.sink_.post(std::move(held_ctrl_));
  if (paced_) return;  // the pacing timer continues the pump
  update_interest();
  pump_recv();
}

void ReactorLink::account_and_route(MsgPtr m) {
  const TimePoint now = link_.clock_.now();
  link_.up_meter_.record(m->wire_size(), now);
  link_.up_bytes_.inc(m->wire_size());
  link_.up_msgs_.inc();
  if (m->type() == MsgType::kData) {
    inbound_.push_back(Inbound{std::move(m), now});
    // Keep accumulating only while the reader can hand out more frames
    // without going back to the socket; flush at every syscall boundary
    // so the switch never waits on delivered-but-unpushed messages.
    if (inbound_.size() >= link_.wire_batch_msgs_ || !reader_.buffered()) {
      flush_inbound();
    }
  } else {
    // Protocol/control traffic bypasses the data buffers so it cannot be
    // starved by a congested data plane (flush first to preserve arrival
    // order between the two planes; if the flush parks, hold the control
    // message so order is still preserved on resume).
    if (flush_inbound()) {
      link_.sink_.post(std::move(m));
    } else {
      held_ctrl_ = std::move(m);
    }
  }
}

bool ReactorLink::flush_inbound() {
  for (;;) {
    if (inbound_.empty()) {
      if (recv_full_) {
        recv_full_ = false;
        update_interest();
      }
      return true;
    }
    const std::size_t pushed = link_.recv_buffer_.try_push_batch(inbound_);
    if (pushed > 0) {
      inbound_.erase(inbound_.begin(),
                     inbound_.begin() + static_cast<std::ptrdiff_t>(pushed));
      link_.recv_depth_.set(static_cast<i64>(link_.recv_buffer_.size()));
      link_.sink_.wake();
      continue;
    }
    if (link_.recv_buffer_.closed()) {
      inbound_.clear();  // teardown: the engine no longer drains
      continue;
    }
    if (recv_full_ && recv_blocked_.load()) return false;  // already parked
    // Full: park. Publish the flag, then loop for one more push attempt —
    // if the engine drained between our failed push and the store, its
    // notify_recv_space saw the flag unset and no resume would ever come.
    recv_full_ = true;
    recv_blocked_.store(true);
    update_interest();
    link_.sink_.wake();
  }
}

// --- Failure and teardown ---------------------------------------------------

void ReactorLink::fail(MsgType kind) {
  if (detached_) return;
  if (!link_.stopping_.load(std::memory_order_relaxed)) {
    link_.failed_.store(true, std::memory_order_relaxed);
    link_.sink_.post(Msg::control(kind, link_.peer_, kControlApp));
  }
  detach();
}

void ReactorLink::detach() {
  if (detached_) return;
  detached_ = true;
  if (registered_ && !suspended_) worker_.del_fd(fd());
  registered_ = false;
  suspended_ = false;
  worker_.cancel_timers(this);
  // Account every undelivered egress message as lost ("the number of
  // bytes (or messages) lost due to failures"), exactly like the legacy
  // sender's teardown drain.
  for (const auto& m : wire_msgs_) link_.count_send_loss(*m);
  wire_msgs_.clear();
  wire_headers_.clear();
  wire_off_ = 0;
  for (const auto& m : pending_) link_.count_send_loss(*m);
  pending_.clear();
  for (std::size_t i = popped_idx_; i < popped_.size(); ++i) {
    if (popped_[i]) link_.count_send_loss(*popped_[i]);
  }
  popped_.clear();
  popped_idx_ = 0;
  std::vector<MsgPtr> rest;
  while (link_.send_buffer_.try_pop_batch(rest, link_.wire_batch_msgs_) > 0) {
    for (const auto& m : rest) link_.count_send_loss(*m);
    rest.clear();
  }
  inbound_.clear();
  paced_.reset();
  held_ctrl_.reset();
  state_ = State::kDraining;
}

void ReactorLink::update_interest() {
  if (detached_ || !registered_) return;
  u32 want = 0;
  if (state_ == State::kConnecting) {
    want = EPOLLOUT;
  } else {
    if (!read_parked()) want |= EPOLLIN;
    if (write_blocked_) want |= EPOLLOUT;
  }
  if (suspended_) {
    if (want == 0) return;
    if (worker_.add_fd(fd(), want, this)) {
      suspended_ = false;
      interest_ = want;
    }
    return;
  }
  if (want != interest_) {
    worker_.mod_fd(fd(), want);
    interest_ = want;
  }
}

}  // namespace iov::engine
