// ReactorLink — the event-driven wire path of a PeerLink (DESIGN.md §9).
//
// In reactor mode the two blocking threads of the legacy PeerLink
// (receiver + sender) are replaced by this state machine, pinned to one
// worker of the process-shared epoll reactor:
//
//   kConnecting --connect done--> kHandshaking --hello flushed-->
//   kEstablished --stop()/failure--> kDraining
//
// Everything the blocking threads did is preserved at the same points:
// per-message token-bucket pacing (sleeps become reactor timers),
// loss injection, the batched FrameReader decode and write_batch-shaped
// scatter-gather flushes, per-link meters/metrics, and the
// flush-before-sleep rule that keeps emulated departure/arrival times
// exact. Back-pressure translates from blocking queue calls to
// event-loop parking:
//   * recv buffer full  -> stop reading (drop EPOLLIN; kernel window
//     fills; TCP pushes back) until the engine drains the buffer and
//     calls notify_recv_space();
//   * send buffer empty -> do nothing until the engine pushes and calls
//     notify_send().
//
// Threading: start/request_stop/wait_stopped/notify_* are called from
// the engine thread; every other method runs on the owning reactor
// worker. The two sides meet only through atomics, the thread-safe
// queues, and Worker::submit (whose per-worker FIFO ordering guarantees
// that a notify task submitted before the stop task can never observe
// the link after teardown).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "engine/peer_link.h"
#include "message/codec.h"
#include "message/msg.h"
#include "net/framing.h"
#include "net/reactor/reactor.h"
#include "obs/metrics.h"

namespace iov::engine {

class ReactorLink final : public reactor::EventHandler {
 public:
  /// `link` owns this object and outlives it. `dial_pending` means the
  /// connection came from TcpConn::connect_start and the TCP handshake
  /// (then our hello) must complete before frames flow — `connect_timeout`
  /// bounds that; false means an accepted, hello-completed socket.
  ReactorLink(PeerLink& link, reactor::Worker& worker,
              obs::Histogram& loop_lag, bool dial_pending,
              Duration connect_timeout);

  // --- Engine-thread API ---------------------------------------------------

  /// Registers the socket with the worker (asynchronously).
  void start();

  /// Submits the teardown task. Call after PeerLink::stop closed the
  /// queues and shut the socket down. Idempotent.
  void request_stop();

  /// Blocks until the teardown task has run on the worker; after this no
  /// worker code touches the link again.
  void wait_stopped();

  /// The engine pushed into the send buffer: schedule a send pump
  /// (deduplicated — at most one pump task in flight).
  void notify_send();

  /// The engine drained the receive buffer: resume a reader parked on a
  /// full buffer (no-op otherwise).
  void notify_recv_space();

  // --- Worker-thread entry points ------------------------------------------

  void on_event(u32 events) override;

 private:
  enum class State { kConnecting, kHandshaking, kEstablished, kDraining };

  // All private methods run on the worker thread.
  void ws_start();
  void ws_connect_ready();
  void pump_send();
  void pump_recv();
  void on_send_pace_done();
  void on_recv_pace_done();
  void resume_recv();

  /// Moves pacing-cleared messages onto the wire queue (headers encoded
  /// here, so a partial write can resume byte-exactly).
  void stage_pending();

  /// Writes the raw handshake bytes, then wire frames, until drained or
  /// EAGAIN (arms EPOLLOUT) or error (fails the link). Returns true only
  /// when everything staged so far is on the wire.
  bool flush_wire();

  /// Hands the decoded batch to the switch. On a full buffer parks the
  /// reader (recv_full_, EPOLLIN off, engine woken) and returns false.
  bool flush_inbound();

  /// Post-pacing half of message delivery: meters, then route to the
  /// recv buffer (kData) or the internal sink (control).
  void account_and_route(MsgPtr m);

  /// True while the reader must not consume more input.
  bool read_parked() const { return paced_ || held_ctrl_ || recv_full_; }

  /// Marks the link failed, notifies the engine (unless stopping), and
  /// detaches.
  void fail(MsgType kind);

  /// Removes the fd and timers from the worker and accounts every
  /// undelivered egress message as lost. Idempotent.
  void detach();

  /// Recomputes the epoll interest mask from the parked/blocked flags.
  void update_interest();

  int fd() const;

  PeerLink& link_;
  reactor::Worker& worker_;
  obs::Histogram& loop_lag_;
  const bool dial_pending_;
  const Duration connect_timeout_;

  // --- Worker-thread state -------------------------------------------------
  State state_ = State::kConnecting;
  bool detached_ = false;
  bool registered_ = false;   ///< fd currently added to the worker's epoll
  bool suspended_ = false;    ///< deregistered while parked (HUP/ERR storm)
  u32 interest_ = 0;          ///< current epoll interest mask

  std::vector<u8> raw_head_;  ///< hello bytes to send before any frame
  std::size_t raw_off_ = 0;

  // Receive path.
  FrameReader reader_;
  std::vector<Inbound> inbound_;  ///< decoded kData awaiting one batch push
  MsgPtr paced_;      ///< decoded message waiting out a recv pacing timer
  MsgPtr held_ctrl_;  ///< control message waiting for inbound_ to flush
  bool recv_full_ = false;  ///< recv buffer refused part of inbound_
  u64 seen_syscalls_ = 0;
  u64 refill_msgs_ = 0;

  // Send path.
  std::vector<MsgPtr> popped_;   ///< batch popped from the send buffer
  std::size_t popped_idx_ = 0;   ///< first unprocessed element of popped_
  std::vector<MsgPtr> pending_;  ///< pacing-cleared, not yet staged
  std::deque<MsgPtr> wire_msgs_;              ///< staged frames
  std::deque<codec::HeaderBytes> wire_headers_;
  std::size_t wire_off_ = 0;   ///< bytes of the front frame already sent
  bool send_paced_ = false;    ///< a send pacing timer is pending
  bool write_blocked_ = false; ///< last write hit EAGAIN; EPOLLOUT armed

  // --- Cross-thread state --------------------------------------------------
  std::atomic<bool> send_scheduled_{false};
  std::atomic<bool> recv_blocked_{false};
  std::atomic<bool> stop_requested_{false};
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopped_ = false;  // guarded by stop_mu_
};

}  // namespace iov::engine
