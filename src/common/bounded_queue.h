// Thread-safe bounded circular queue — the shared buffer between the
// engine thread and its receiver/sender threads (paper §2.2).
//
// The paper's design deliberately has exactly one reader and one writer
// per buffer ("we adopt such a design to avoid the complex wait/signal
// scenario where the receiver or sender buffer is shared by more than one
// reader or writer threads"), but the queue itself is written to be safe
// for any number of each so tests can abuse it freely.
//
// Blocking semantics match the paper:
//   * a receiver thread pushing into a full buffer sleeps until the engine
//     drains it (back-pressure toward the upstream TCP connection);
//   * a sender thread popping from an empty buffer sleeps until the engine
//     signals it by pushing.
// close() releases all sleepers; subsequent pushes fail and pops drain the
// remaining elements then fail, which is how graceful teardown proceeds.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "common/types.h"

namespace iov {

template <class T>
class BoundedQueue {
 public:
  /// Creates a queue holding at most `capacity` (> 0) elements.
  explicit BoundedQueue(std::size_t capacity)
      : ring_(capacity > 0 ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until space is available (or the queue is closed).
  /// Returns false iff the queue was closed.
  bool push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] { return size_ < ring_.size() || closed_; });
    if (closed_) return false;
    emplace_locked(std::move(value));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false if the queue is full or closed.
  bool try_push(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || size_ == ring_.size()) return false;
      emplace_locked(std::move(value));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking bulk push: moves as many leading elements of `items` as
  /// fit (one lock, one wake for the lot) and returns how many were
  /// accepted — 0 when full or closed. Consumed elements are left
  /// moved-from in `items`.
  std::size_t try_push_batch(std::vector<T>& items) {
    std::size_t pushed = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return 0;
      while (pushed < items.size() && size_ < ring_.size()) {
        emplace_locked(std::move(items[pushed]));
        ++pushed;
      }
    }
    notify_popped(not_empty_, pushed);
    return pushed;
  }

  /// Blocking bulk push: pushes every element of `items`, sleeping for
  /// space as needed (full-queue back-pressure applies to batch pushers
  /// exactly as to push()). Returns the number accepted, which is less
  /// than items.size() only if the queue was closed mid-batch.
  std::size_t push_batch(std::vector<T>& items) {
    std::size_t pushed = 0;
    while (pushed < items.size()) {
      std::size_t round = 0;
      {
        std::unique_lock<std::mutex> lock(mu_);
        not_full_.wait(lock,
                       [&] { return size_ < ring_.size() || closed_; });
        if (closed_) break;
        while (pushed < items.size() && size_ < ring_.size()) {
          emplace_locked(std::move(items[pushed]));
          ++pushed;
          ++round;
        }
      }
      notify_popped(not_empty_, round);
    }
    return pushed;
  }

  /// Blocks until an element is available (or the queue is closed *and*
  /// drained). Returns nullopt only in the latter case.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
    if (size_ == 0) return std::nullopt;
    T out = take_locked();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::optional<T> out;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (size_ == 0) return std::nullopt;
      out = take_locked();
    }
    not_full_.notify_one();
    return out;
  }

  /// Non-blocking bulk pop: appends up to `max` elements to `out` under a
  /// single lock acquisition and wakes blocked pushers once. Returns the
  /// number popped (0 when empty).
  std::size_t try_pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t popped = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      popped = drain_locked(out, max);
    }
    notify_popped(not_full_, popped);
    return popped;
  }

  /// Blocking bulk pop: sleeps until at least one element is available
  /// (or the queue is closed and drained, returning 0), then appends up
  /// to `max` elements to `out`. One lock + one wake per batch — the
  /// sender-thread counterpart of pop().
  std::size_t pop_batch(std::vector<T>& out, std::size_t max) {
    std::size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [&] { return size_ > 0 || closed_; });
      popped = drain_locked(out, max);
    }
    notify_popped(not_full_, popped);
    return popped;
  }

  /// pop_batch with a deadline; returns 0 on timeout as well.
  std::size_t pop_batch_for(std::vector<T>& out, std::size_t max,
                            Duration timeout) {
    std::size_t popped = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait_for(lock, std::chrono::nanoseconds(timeout),
                          [&] { return size_ > 0 || closed_; });
      popped = drain_locked(out, max);
    }
    notify_popped(not_full_, popped);
    return popped;
  }

  /// Pop with a deadline; returns nullopt on timeout or closed-and-drained.
  std::optional<T> pop_for(Duration timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    const bool ready = not_empty_.wait_for(
        lock, std::chrono::nanoseconds(timeout),
        [&] { return size_ > 0 || closed_; });
    if (!ready || size_ == 0) return std::nullopt;
    T out = take_locked();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Wakes all blocked threads; pushes fail afterwards, pops drain whatever
  /// remains and then fail.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  std::size_t capacity() const { return ring_.size(); }

  bool empty() const { return size() == 0; }

  bool full() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_ == ring_.size();
  }

 private:
  std::size_t drain_locked(std::vector<T>& out, std::size_t max) {
    std::size_t popped = 0;
    while (popped < max && size_ > 0) {
      out.push_back(take_locked());
      ++popped;
    }
    return popped;
  }

  /// One wake for a batch of 1, a broadcast for more (several sleepers
  /// may now make progress).
  static void notify_popped(std::condition_variable& cv, std::size_t n) {
    if (n == 1) {
      cv.notify_one();
    } else if (n > 1) {
      cv.notify_all();
    }
  }

  void emplace_locked(T&& value) {
    ring_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % ring_.size();
    ++size_;
  }

  T take_locked() {
    T out = std::move(ring_[head_]);
    head_ = (head_ + 1) % ring_.size();
    --size_;
    return out;
  }

  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::vector<T> ring_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace iov
