#include "common/rng.h"

#include <cmath>

namespace iov {

namespace {
u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

void Rng::reseed(u64 seed) {
  u64 x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

u64 Rng::operator()() {
  const u64 result = rotl(s_[1] * 5, 7) * 9;
  const u64 t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

u64 Rng::below(u64 bound) {
  // Lemire's unbiased bounded generation.
  u64 x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  u64 l = static_cast<u64>(m);
  if (l < bound) {
    const u64 threshold = (0 - bound) % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<u64>(m);
    }
  }
  return static_cast<u64>(m >> 64);
}

i64 Rng::uniform_int(i64 lo, i64 hi) {
  return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + uniform01() * (hi - lo);
}

double Rng::exponential(double mean) {
  double u = uniform01();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() {
  Rng child(0);
  for (auto& s : child.s_) s = (*this)();
  // Guard against the (astronomically unlikely) all-zero state, which is a
  // fixed point of xoshiro.
  child.s_[0] |= 1;
  return child;
}

}  // namespace iov
