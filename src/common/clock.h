// Clock abstraction: the real engine reads the machine's monotonic clock,
// while the simulator supplies virtual time. Algorithms and measurement
// utilities only ever see the Clock interface, which is what allows the
// same algorithm implementation to run unmodified on both substrates.
#pragma once

#include "common/types.h"

namespace iov {

/// A monotonically non-decreasing source of time.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in nanoseconds since this clock's epoch.
  virtual TimePoint now() const = 0;
};

/// Wall-clock-backed monotonic clock (CLOCK_MONOTONIC).
class RealClock final : public Clock {
 public:
  TimePoint now() const override;

  /// Process-wide shared instance.
  static const RealClock& instance();
};

/// A manually advanced clock, used by the simulator and by unit tests
/// that need deterministic time.
class ManualClock final : public Clock {
 public:
  explicit ManualClock(TimePoint start = 0) : now_(start) {}

  TimePoint now() const override { return now_; }

  /// Moves time forward by `d`; `d` must be non-negative.
  void advance(Duration d) { now_ += d; }

  /// Jumps directly to `t`; `t` must not be earlier than now().
  void set(TimePoint t) { now_ = t; }

 private:
  TimePoint now_;
};

/// Blocks the calling thread for `d` of real time.
void sleep_for(Duration d);

}  // namespace iov
