#include "common/clock.h"

#include <ctime>
#include <thread>

namespace iov {

TimePoint RealClock::now() const {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<TimePoint>(ts.tv_sec) * kNanosPerSec + ts.tv_nsec;
}

const RealClock& RealClock::instance() {
  static const RealClock clock;
  return clock;
}

void sleep_for(Duration d) {
  if (d <= 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(d));
}

}  // namespace iov
