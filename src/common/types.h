// Basic fixed-width type aliases and time primitives shared by every
// iOverlay module.
//
// Time is represented as a signed nanosecond count since an arbitrary
// epoch. Using a plain arithmetic representation (instead of
// std::chrono::time_point) lets real and simulated clocks share one
// currency: the discrete-event simulator advances a virtual TimePoint,
// the real engine reads CLOCK_MONOTONIC, and algorithm code is oblivious
// to which substrate it runs on.
#pragma once

#include <chrono>
#include <cstdint>

namespace iov {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Nanoseconds since an arbitrary (per-clock) epoch.
using TimePoint = i64;

/// A span of time in nanoseconds.
using Duration = i64;

constexpr Duration kNanosPerSec = 1'000'000'000;
constexpr Duration kNanosPerMilli = 1'000'000;
constexpr Duration kNanosPerMicro = 1'000;

/// Converts whole seconds to a Duration.
constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kNanosPerSec));
}

/// Converts whole milliseconds to a Duration.
constexpr Duration millis(i64 ms) { return ms * kNanosPerMilli; }

/// Converts a Duration to fractional seconds.
constexpr double to_seconds(Duration d) {
  return static_cast<double>(d) / static_cast<double>(kNanosPerSec);
}

/// Converts a std::chrono duration to an iov::Duration.
template <class Rep, class Period>
constexpr Duration from_chrono(std::chrono::duration<Rep, Period> d) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(d).count();
}

}  // namespace iov
