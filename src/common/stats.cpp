#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace iov {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void EmpiricalCdf::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

void EmpiricalCdf::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double p) const {
  ensure_sorted();
  if (samples_.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p * static_cast<double>(samples_.size())));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return samples_[std::min(idx, samples_.size() - 1)];
}

std::vector<std::pair<double, double>> EmpiricalCdf::table(
    double lo, double hi, std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (points < 2 || hi <= lo) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

void TimeSeriesBins::add(TimePoint t, double value) {
  if (t < 0 || width_ <= 0) return;
  const auto idx = static_cast<std::size_t>(t / width_);
  if (idx >= bins_.size()) bins_.resize(idx + 1, 0.0);
  bins_[idx] += value;
}

double TimeSeriesBins::bin(std::size_t i) const {
  return i < bins_.size() ? bins_[i] : 0.0;
}

std::string format_row(const std::vector<std::string>& cells,
                       std::size_t cell_width) {
  std::string out;
  for (const auto& cell : cells) {
    std::string padded = cell;
    if (padded.size() < cell_width) {
      padded.append(cell_width - padded.size(), ' ');
    } else {
      padded.push_back(' ');
    }
    out += padded;
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

}  // namespace iov
