// Small statistics toolkit used by the benchmark harnesses to reproduce
// the paper's figures: running summaries (mean / min / max / stddev),
// empirical CDFs (Fig 11b), and fixed-width time-series bins (Fig 16).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/types.h"

namespace iov {

/// Streaming summary statistics (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Empirical cumulative distribution over a stored sample set.
class EmpiricalCdf {
 public:
  void add(double x) { samples_.push_back(x); }
  void add_all(const std::vector<double>& xs);

  std::size_t count() const { return samples_.size(); }

  /// Fraction of samples <= x. Sorts lazily.
  double at(double x) const;

  /// p-quantile for p in [0,1] (nearest-rank). Undefined when empty.
  double quantile(double p) const;

  /// Evaluates the CDF at `points` evenly spaced values across [lo, hi];
  /// used to print Fig 11(b)-style tables.
  std::vector<std::pair<double, double>> table(double lo, double hi,
                                               std::size_t points) const;

 private:
  void ensure_sorted() const;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

/// Accumulates values into fixed-width time bins starting at t = 0;
/// used for "overhead over time" figures (Fig 16).
class TimeSeriesBins {
 public:
  explicit TimeSeriesBins(Duration bin_width) : width_(bin_width) {}

  /// Adds `value` to the bin containing time `t` (>= 0).
  void add(TimePoint t, double value);

  Duration bin_width() const { return width_; }
  std::size_t bin_count() const { return bins_.size(); }

  /// Sum accumulated in bin `i` (0 if never touched).
  double bin(std::size_t i) const;

  /// All bins up to and including the last touched one.
  const std::vector<double>& bins() const { return bins_; }

 private:
  Duration width_;
  std::vector<double> bins_;
};

/// Renders a plain-text table row; the harnesses use this to print
/// aligned paper-style tables.
std::string format_row(const std::vector<std::string>& cells,
                       std::size_t cell_width = 14);

}  // namespace iov
