#include "common/node_id.h"

#include "common/strings.h"

namespace iov {

std::string NodeId::to_string() const {
  return strf("%u.%u.%u.%u:%u", (ip_ >> 24) & 0xff, (ip_ >> 16) & 0xff,
              (ip_ >> 8) & 0xff, ip_ & 0xff, port_);
}

std::optional<NodeId> NodeId::parse(std::string_view text) {
  const auto colon = text.rfind(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const auto host = text.substr(0, colon);
  const auto port_text = text.substr(colon + 1);

  unsigned long long port = 0;
  if (!parse_u64(port_text, 65535, &port)) return std::nullopt;

  const auto octets = split(host, '.');
  if (octets.size() != 4) return std::nullopt;
  u32 ip = 0;
  for (const auto& octet : octets) {
    unsigned long long v = 0;
    if (!parse_u64(octet, 255, &v)) return std::nullopt;
    ip = (ip << 8) | static_cast<u32>(v);
  }
  return NodeId(ip, static_cast<u16>(port));
}

}  // namespace iov
