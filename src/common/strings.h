// String helpers shared across modules (parsing node addresses,
// formatting figures, splitting observer command lines).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iov {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parses a non-negative integer; returns false on any non-digit input
/// or overflow past `max`.
bool parse_u64(std::string_view s, unsigned long long max,
               unsigned long long* out);

/// printf-style formatting into a std::string.
std::string strf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace iov
