#include "common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace iov {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool parse_u64(std::string_view s, unsigned long long max,
               unsigned long long* out) {
  if (s.empty()) return false;
  unsigned long long value = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    const unsigned digit = static_cast<unsigned>(c - '0');
    if (value > (max - digit) / 10) return false;
    value = value * 10 + digit;
  }
  *out = value;
  return true;
}

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace iov
