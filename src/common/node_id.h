// A node in iOverlay is uniquely identified by its IPv4 address and port
// number (paper §2.2). NodeId is a small value type used as the key of
// every per-peer table in the engine, the algorithms, and the observer.
#pragma once

#include <compare>
#include <functional>
#include <optional>
#include <string>
#include <string_view>

#include "common/types.h"

namespace iov {

class NodeId {
 public:
  /// The "no node" sentinel (0.0.0.0:0); also what default construction
  /// yields. Used e.g. as the origin of engine-internal messages.
  constexpr NodeId() = default;

  /// `ip` is the IPv4 address in host byte order, e.g. 127.0.0.1 is
  /// 0x7f000001.
  constexpr NodeId(u32 ip, u16 port) : ip_(ip), port_(port) {}

  constexpr u32 ip() const { return ip_; }
  constexpr u16 port() const { return port_; }

  constexpr bool valid() const { return ip_ != 0 || port_ != 0; }

  /// Dotted-quad "a.b.c.d:port" form.
  std::string to_string() const;

  /// Parses "a.b.c.d:port". Returns nullopt on malformed input.
  static std::optional<NodeId> parse(std::string_view text);

  /// Builds a loopback id 127.0.0.1:port — the address of virtualized
  /// nodes co-located on one host.
  static constexpr NodeId loopback(u16 port) {
    return NodeId(0x7f000001u, port);
  }

  friend constexpr auto operator<=>(const NodeId&, const NodeId&) = default;

 private:
  u32 ip_ = 0;
  u16 port_ = 0;
};

}  // namespace iov

template <>
struct std::hash<iov::NodeId> {
  std::size_t operator()(const iov::NodeId& id) const noexcept {
    const iov::u64 v =
        (static_cast<iov::u64>(id.ip()) << 16) ^ id.port();
    // splitmix64 finalizer for good bit diffusion.
    iov::u64 z = v + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
