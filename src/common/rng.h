// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in iOverlay (gossip dissemination probability,
// randomized tree construction, the simulator's bandwidth/latency draws,
// the observer's random bootstrap subsets) flows through this generator so
// that experiments are reproducible from a single seed. The engine never
// consults global random state.
//
// The generator is xoshiro256**, seeded through splitmix64 — small, fast,
// and of far better quality than std::minstd/rand.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.h"

namespace iov {

/// Seedable, copyable PRNG. Satisfies UniformRandomBitGenerator so it can
/// also drive <random> distributions when needed.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x1e0feedd) { reseed(seed); }

  /// Re-initializes the state from `seed` via splitmix64.
  void reseed(u64 seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<u64>::max();
  }

  /// Next raw 64-bit draw.
  u64 operator()();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift method.
  /// `bound` must be > 0.
  u64 below(u64 bound);

  /// Uniform integer in [lo, hi] inclusive.
  i64 uniform_int(i64 lo, i64 hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Bernoulli trial with success probability `p`.
  bool chance(double p) { return uniform01() < p; }

  /// Exponentially distributed draw with the given mean (> 0).
  double exponential(double mean);

  /// Fisher–Yates shuffle of `v`.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (u64 i = v.size(); i > 1; --i) {
      const u64 j = below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Picks `k` distinct elements of `v` uniformly at random (or all of `v`
  /// if it has fewer than `k` elements). Order of the sample is random.
  template <class T>
  std::vector<T> sample(const std::vector<T>& v, u64 k) {
    std::vector<T> pool = v;
    shuffle(pool);
    if (pool.size() > k) pool.resize(k);
    return pool;
  }

  /// Derives an independent child generator; used to give each simulated
  /// node its own stream so that event order does not perturb draws.
  Rng split();

 private:
  u64 s_[4];
};

}  // namespace iov
