#include "common/logging.h"

#include <cstdio>

#include "common/clock.h"

namespace iov {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& text) {
  const double t = to_seconds(RealClock::instance().now());
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%12.6f] %s %-10s %s\n", t, level_name(level),
               component.c_str(), text.c_str());
}

}  // namespace iov
