// Minimal leveled logging for the middleware. The engine is a
// multi-threaded program, so log emission is serialized through one
// mutex; formatting happens outside the lock.
//
// The observer additionally collects `trace`-type messages from nodes
// (see observer/trace_log.h); this logger is for local diagnostics only.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace iov {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log configuration.
class Logger {
 public:
  /// Returns the singleton logger.
  static Logger& instance();

  /// Only records at or above `level` are emitted.
  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Emits one formatted line; thread safe.
  void write(LogLevel level, const std::string& component,
             const std::string& text);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::mutex mu_;
};

namespace detail {

/// Stream-style accumulator that flushes one log line on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* component)
      : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { Logger::instance().write(level_, component_, out_.str()); }

  template <class T>
  LogLine& operator<<(const T& v) {
    out_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream out_;
};

}  // namespace detail

}  // namespace iov

// Usage: IOV_LOG_INFO("engine") << "node " << id << " bootstrapped";
#define IOV_LOG(lvl, component)                               \
  if (static_cast<int>(lvl) <                                 \
      static_cast<int>(::iov::Logger::instance().level())) {} \
  else ::iov::detail::LogLine(lvl, component)

#define IOV_LOG_DEBUG(component) IOV_LOG(::iov::LogLevel::kDebug, component)
#define IOV_LOG_INFO(component) IOV_LOG(::iov::LogLevel::kInfo, component)
#define IOV_LOG_WARN(component) IOV_LOG(::iov::LogLevel::kWarn, component)
#define IOV_LOG_ERROR(component) IOV_LOG(::iov::LogLevel::kError, component)
