// FaultPlan — a deterministic, ordered, seeded schedule of fault events
// (DESIGN.md §7). iOverlay's robustness story (§2.2: failure detection,
// Domino teardown, disjoint flows undisturbed) is only testable if faults
// can be *scheduled*: the same plan must be replayable on the simulator
// (exact virtual times, byte-identical traces) and on live loopback
// deployments (observer control plane), so a plan speaks in abstract node
// names that a Binding maps to concrete NodeIds at execution time.
//
// The text DSL, one event per line ('#' starts a comment):
//
//   at <seconds> kill <node>
//   at <seconds> sever <a> <b>
//   at <seconds> loss <a> <b> <probability>
//   at <seconds> slow-link <a> <b> <bytes_per_sec>
//   at <seconds> partition <n1,n2|n3,...>
//   at <seconds> heal
//
// Times are relative to the moment a driver starts executing the plan.
// parse() and to_string() round-trip; FaultPlan::random() derives a plan
// from a seed (identical seeds yield identical plans and, through the
// deterministic simulator, identical fault traces).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "common/node_id.h"
#include "common/types.h"

namespace iov::chaos {

enum class FaultKind {
  kKillNode,
  kSeverLink,
  kSetLoss,
  kPartition,
  kHeal,
  kSlowLink,
};

/// Short name used in the DSL, traces and the `kind` metric label.
const char* fault_kind_name(FaultKind kind);

struct FaultEvent {
  Duration at = 0;
  FaultKind kind = FaultKind::kHeal;
  std::string a;       ///< first node name (kill/sever/loss/slow-link)
  std::string b;       ///< second node name (sever/loss/slow-link)
  double value = 0.0;  ///< loss probability / slow-link bytes per second
  std::vector<std::vector<std::string>> groups;  ///< partition only

  /// The event as one DSL line (no trailing newline).
  std::string to_string() const;
};

/// Maps the plan's abstract node names to concrete NodeIds. Names missing
/// from the binding are tried as literal "ip:port" strings, so plans may
/// also name nodes directly.
using Binding = std::map<std::string, NodeId, std::less<>>;

class FaultPlan {
 public:
  // --- Programmatic builder (chainable; events are kept time-sorted) ------
  FaultPlan& kill(Duration at, std::string node);
  FaultPlan& sever(Duration at, std::string a, std::string b);
  FaultPlan& loss(Duration at, std::string a, std::string b,
                  double probability);
  FaultPlan& slow_link(Duration at, std::string a, std::string b,
                       double bytes_per_sec);
  FaultPlan& partition(Duration at,
                       std::vector<std::vector<std::string>> groups);
  FaultPlan& heal(Duration at);

  /// Events sorted by time; same-time events keep insertion order.
  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// The whole plan in DSL form; parse(to_string()) round-trips.
  std::string to_string() const;

  struct ParseResult;
  static ParseResult parse(std::string_view text);

  /// Seeded random plan over `nodes` within `[0, horizon)`; identical
  /// seeds produce identical plans. Every partition/sever/loss burst is
  /// followed by a final heal + loss reset at `horizon` so recovery
  /// properties can be asserted after the plan drains.
  static FaultPlan random(u64 seed, const std::vector<std::string>& nodes,
                          Duration horizon, std::size_t count);

 private:
  void add(FaultEvent e);

  std::vector<FaultEvent> events_;
};

struct FaultPlan::ParseResult {
  std::optional<FaultPlan> plan;
  std::string error;  ///< "line N: what went wrong" when !plan
};

}  // namespace iov::chaos
