#include "chaos/fault_plan.h"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/rng.h"
#include "common/strings.h"

namespace iov::chaos {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKillNode: return "kill";
    case FaultKind::kSeverLink: return "sever";
    case FaultKind::kSetLoss: return "loss";
    case FaultKind::kPartition: return "partition";
    case FaultKind::kHeal: return "heal";
    case FaultKind::kSlowLink: return "slow-link";
  }
  return "?";
}

namespace {

/// Seconds with enough digits to round-trip the sub-millisecond event
/// times the sim schedules at, without trailing-zero noise for the
/// common "at 2.5" cases.
std::string format_seconds(Duration d) {
  std::string s = strf("%.6f", to_seconds(d));
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.push_back('0');
  return s;
}

std::string format_value(double v) {
  std::string s = strf("%.6f", v);
  while (s.size() > 1 && s.back() == '0') s.pop_back();
  if (!s.empty() && s.back() == '.') s.push_back('0');
  return s;
}

}  // namespace

std::string FaultEvent::to_string() const {
  std::string line = "at " + format_seconds(at);
  line += ' ';
  line += fault_kind_name(kind);
  switch (kind) {
    case FaultKind::kKillNode:
      line += ' ' + a;
      break;
    case FaultKind::kSeverLink:
      line += ' ' + a + ' ' + b;
      break;
    case FaultKind::kSetLoss:
    case FaultKind::kSlowLink:
      line += ' ' + a + ' ' + b + ' ' + format_value(value);
      break;
    case FaultKind::kPartition: {
      line += ' ';
      for (std::size_t g = 0; g < groups.size(); ++g) {
        if (g > 0) line += '|';
        for (std::size_t i = 0; i < groups[g].size(); ++i) {
          if (i > 0) line += ',';
          line += groups[g][i];
        }
      }
      break;
    }
    case FaultKind::kHeal:
      break;
  }
  return line;
}

void FaultPlan::add(FaultEvent e) {
  // Stable insert: events fire in time order, ties keep insertion order.
  const auto pos = std::upper_bound(
      events_.begin(), events_.end(), e.at,
      [](Duration at, const FaultEvent& other) { return at < other.at; });
  events_.insert(pos, std::move(e));
}

FaultPlan& FaultPlan::kill(Duration at, std::string node) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kKillNode;
  e.a = std::move(node);
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::sever(Duration at, std::string a, std::string b) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kSeverLink;
  e.a = std::move(a);
  e.b = std::move(b);
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::loss(Duration at, std::string a, std::string b,
                           double probability) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kSetLoss;
  e.a = std::move(a);
  e.b = std::move(b);
  e.value = std::clamp(probability, 0.0, 1.0);
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::slow_link(Duration at, std::string a, std::string b,
                                double bytes_per_sec) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kSlowLink;
  e.a = std::move(a);
  e.b = std::move(b);
  e.value = std::max(bytes_per_sec, 0.0);
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::partition(Duration at,
                                std::vector<std::vector<std::string>> groups) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kPartition;
  e.groups = std::move(groups);
  add(std::move(e));
  return *this;
}

FaultPlan& FaultPlan::heal(Duration at) {
  FaultEvent e;
  e.at = at;
  e.kind = FaultKind::kHeal;
  add(std::move(e));
  return *this;
}

std::string FaultPlan::to_string() const {
  std::string out;
  for (const FaultEvent& e : events_) {
    out += e.to_string();
    out += '\n';
  }
  return out;
}

namespace {

bool parse_double(std::string_view s, double* out) {
  const std::string text(s);
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

FaultPlan::ParseResult FaultPlan::parse(std::string_view text) {
  FaultPlan plan;
  std::size_t line_no = 0;
  const auto fail = [&](const std::string& what) {
    ParseResult r;
    r.error = strf("line %zu: ", line_no) + what;
    return r;
  };

  for (const std::string& raw : split(text, '\n')) {
    ++line_no;
    const std::string_view line = trim(raw);
    if (line.empty() || line.front() == '#') continue;

    std::istringstream in{std::string(line)};
    std::string word;
    in >> word;
    if (word != "at") return fail("expected 'at <seconds> ...'");
    std::string when;
    in >> when;
    double at_s = 0.0;
    if (!parse_double(when, &at_s) || at_s < 0.0) {
      return fail("bad time '" + when + "'");
    }
    const Duration at = seconds(at_s);

    std::string verb;
    in >> verb;
    if (verb == "kill") {
      std::string node;
      in >> node;
      if (node.empty()) return fail("kill needs a node name");
      plan.kill(at, node);
    } else if (verb == "sever") {
      std::string a, b;
      in >> a >> b;
      if (a.empty() || b.empty()) return fail("sever needs two node names");
      plan.sever(at, a, b);
    } else if (verb == "loss") {
      std::string a, b, p;
      in >> a >> b >> p;
      double prob = 0.0;
      if (a.empty() || b.empty() || !parse_double(p, &prob)) {
        return fail("loss needs '<a> <b> <probability>'");
      }
      if (prob < 0.0 || prob > 1.0) {
        return fail("loss probability must be in [0, 1]");
      }
      plan.loss(at, a, b, prob);
    } else if (verb == "slow-link") {
      std::string a, b, r;
      in >> a >> b >> r;
      double bps = 0.0;
      if (a.empty() || b.empty() || !parse_double(r, &bps) || bps < 0.0) {
        return fail("slow-link needs '<a> <b> <bytes_per_sec>'");
      }
      plan.slow_link(at, a, b, bps);
    } else if (verb == "partition") {
      std::string rest;
      std::getline(in, rest);
      std::vector<std::vector<std::string>> groups;
      for (const std::string& group_text : split(trim(rest), '|')) {
        std::vector<std::string> group;
        for (const std::string& name : split(group_text, ',')) {
          const std::string_view trimmed = trim(name);
          if (!trimmed.empty()) group.emplace_back(trimmed);
        }
        if (!group.empty()) groups.push_back(std::move(group));
      }
      if (groups.size() < 2) {
        return fail("partition needs at least two '|'-separated groups");
      }
      plan.partition(at, std::move(groups));
    } else if (verb == "heal") {
      plan.heal(at);
    } else {
      return fail("unknown fault '" + verb + "'");
    }
  }

  ParseResult r;
  r.plan = std::move(plan);
  return r;
}

FaultPlan FaultPlan::random(u64 seed, const std::vector<std::string>& nodes,
                            Duration horizon, std::size_t count) {
  FaultPlan plan;
  if (nodes.empty() || horizon <= 0) return plan;
  Rng rng(seed);

  // Event times strictly inside the horizon, sorted so the plan reads
  // naturally; same-seed runs regenerate the identical sequence.
  std::vector<Duration> times;
  times.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    times.push_back(static_cast<Duration>(
        rng.uniform01() * 0.9 * static_cast<double>(horizon)));
  }
  std::sort(times.begin(), times.end());

  const auto pick = [&]() -> const std::string& {
    return nodes[rng.below(nodes.size())];
  };
  const auto pick_pair = [&](std::string* a, std::string* b) {
    *a = pick();
    do {
      *b = pick();
    } while (*b == *a && nodes.size() > 1);
  };

  for (std::size_t i = 0; i < count; ++i) {
    const u64 roll = rng.below(100);
    std::string a, b;
    if (roll < 20 && nodes.size() > 2) {
      // Killing too many nodes leaves nothing to assert on; keep kills a
      // minority and never kill the first node (by convention the source).
      plan.kill(times[i], nodes[1 + rng.below(nodes.size() - 1)]);
    } else if (roll < 50) {
      pick_pair(&a, &b);
      plan.sever(times[i], a, b);
    } else if (roll < 70) {
      pick_pair(&a, &b);
      plan.loss(times[i], a, b, 0.05 + 0.4 * rng.uniform01());
    } else if (roll < 80 && nodes.size() >= 3) {
      // Random two-way partition, never isolating the first node alone.
      std::vector<std::string> left{nodes[0]};
      std::vector<std::string> right;
      for (std::size_t n = 1; n < nodes.size(); ++n) {
        (rng.chance(0.5) ? left : right).push_back(nodes[n]);
      }
      if (right.empty()) right.push_back(left.back()), left.pop_back();
      plan.partition(times[i], {std::move(left), std::move(right)});
    } else {
      plan.heal(times[i]);
    }
  }

  // Drain to a recoverable state: lift any partition and reset loss on
  // every ordered pair so post-plan invariants (tree reconnects, flows
  // resume) can hold.
  plan.heal(horizon);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      if (i != j) plan.loss(horizon, nodes[i], nodes[j], 0.0);
    }
  }
  return plan;
}

}  // namespace iov::chaos
